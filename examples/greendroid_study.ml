(* GreenDroid-style study (paper Section VI): place energy-motivated
   conservation-core functions (A = 1.5) on the speedup map for a
   high-performance and a low-performance core, and check which
   functions risk slowing the program down under the cheap coupling
   modes.

   Run with: dune exec examples/greendroid_study.exe *)

open Tca_model
open Tca_workloads

(* A fixed-function accelerator of granularity g invoked often enough to
   cover fraction [a] of the program has v = a / g. *)
let speedup core ~g ~cov mode =
  let s =
    Params.scenario_of_granularity_exn ~a:cov ~g
      ~accel:(Params.Factor Greendroid.accel_factor) ()
  in
  Equations.speedup_exn core s mode

let () =
  List.iter
    (fun (core_name, core) ->
      Printf.printf "=== %s core ===\n" core_name;
      Tca_util.Table.print
        ~headers:
          [ "function"; "instrs"; "NL_NT@20%"; "L_T@20%"; "NL_NT@60%"; "L_T@60%" ]
        (List.map
           (fun (f : Greendroid.fn) ->
             let g = float_of_int f.Greendroid.static_instrs in
             [
               f.Greendroid.name;
               string_of_int f.Greendroid.static_instrs;
               Tca_util.Table.float_cell (speedup core ~g ~cov:0.2 Mode.NL_NT);
               Tca_util.Table.float_cell (speedup core ~g ~cov:0.2 Mode.L_T);
               Tca_util.Table.float_cell (speedup core ~g ~cov:0.6 Mode.NL_NT);
               Tca_util.Table.float_cell (speedup core ~g ~cov:0.6 Mode.L_T);
             ])
           Greendroid.functions);
      (* Which functions can be built with the cheap NL_NT design without
         slowing the program at 60% coverage? *)
      let safe, unsafe =
        List.partition
          (fun (f : Greendroid.fn) ->
            speedup core
              ~g:(float_of_int f.Greendroid.static_instrs)
              ~cov:0.6 Mode.NL_NT
            >= 1.0)
          Greendroid.functions
      in
      Printf.printf
        "NL_NT-safe at 60%% coverage: %d of %d functions%s\n\n"
        (List.length safe)
        (List.length Greendroid.functions)
        (if unsafe = [] then ""
         else
           " (needs OoO support: "
           ^ String.concat ", "
               (List.map (fun (f : Greendroid.fn) -> f.Greendroid.name) unsafe)
           ^ ")"))
    [ ("HP", Presets.hp_core); ("LP", Presets.lp_core) ];
  (* The heap manager for contrast: finer-grained, hence mode-critical. *)
  let g = Greendroid.heap_manager_granularity in
  Printf.printf
    "Heap manager (g = %.0f) on HP at 60%% coverage: NL_NT %.3fx vs L_T \
     %.3fx — fine-grained TCAs are the ones that punish cheap coupling.\n"
    g
    (speedup Presets.hp_core ~g ~cov:0.6 Mode.NL_NT)
    (speedup Presets.hp_core ~g ~cov:0.6 Mode.L_T)
