(* The configuration wall, in one what-if: the same accelerator under
   the three configuration mechanisms of MODEL.md (T1)-(T3).

   Scenario: a candidate TCA covers 30% of the program (A = 3), invoked
   once every 1000 instructions (g = a/v = 300 acceleratable
   instructions per invocation), but programming its operand registers
   takes 200 cycles. Does the coupling investment survive the
   configuration cost — and which mechanism do you need to build?

   Run with: dune exec examples/config_wall_demo.exe *)

open Tca_model

let core = Presets.arm_a72
let a = 0.3
let v = 1.0 /. 1000.0
let accel = Params.Factor 3.0
let t_config = 200.0

(* One scenario per mechanism. At t_config = 0 every one of these would
   be identical to [none] — the terms are strictly opt-in. *)
let variants =
  [
    ("none", Params.No_config);
    ("sync", Params.Sync t_config);
    ("queued", Params.Queued { t_config; depth = 4 });
    ("preprog", Params.Preprogrammed { t_config; invocations = 10_000 });
  ]

let () =
  Format.printf "Configuration wall on %a@." Params.pp_core core;
  Format.printf
    "a = %.0f%%, A = 3x, one invocation per %.0f instructions, t_config = \
     %.0f cycles@.@."
    (100.0 *. a) (1.0 /. v) t_config;
  (* Per-mechanism speedups under every coupling: the wall is tallest
     for synchronous CSR writes and vanishes under pre-programming. *)
  Format.printf "%-8s" "config";
  List.iter
    (fun m -> Format.printf "  %6s" (Mode.to_string m))
    Mode.all;
  Format.printf "@.";
  List.iter
    (fun (name, config) ->
      let s = Params.scenario_exn ~config ~a ~v ~accel () in
      Format.printf "%-8s" name;
      List.iter
        (fun m ->
          Format.printf "  %6.3f" (Equations.speedup_exn core s m))
        Mode.all;
      Format.printf "@.")
    variants;
  (* Break-even granularity: the smallest invocation size at which the
     configured accelerator stops losing to its own programming cost.
     Compare against your workload's measured granularity (tca analyze
     --config-break-even G turns this into a lint warning). *)
  Format.printf
    "@.break-even granularity (smallest g = a/v with L_T speedup >= 1):@.";
  List.iter
    (fun (name, config) ->
      match
        Equations.config_break_even_exn core ~a ~accel ~config Mode.L_T
      with
      | Some g -> Format.printf "  %-8s g >= %.0f@." name g
      | None -> Format.printf "  %-8s never (below g = 1e9)@." name)
    variants;
  (* The decision this example exists for. *)
  let speedup config =
    Equations.speedup_exn core
      (Params.scenario_exn ~config ~a ~v ~accel ())
      Mode.L_T
  in
  Format.printf
    "@.At g = 300: sync loses %.0f%% of the unconfigured speedup, queued \
     loses %.0f%%, preprog loses %.1f%% — a descriptor queue (or \
     one-time programming) is the difference between shipping the \
     accelerator and shelving it.@."
    (100.0 *. (1.0 -. (speedup (List.assoc "sync" variants) /. speedup Params.No_config)))
    (100.0 *. (1.0 -. (speedup (List.assoc "queued" variants) /. speedup Params.No_config)))
    (100.0 *. (1.0 -. (speedup (List.assoc "preprog" variants) /. speedup Params.No_config)))
