(* Early-design-stage flow, fully simulator-free (the use case the paper
   opens with: "reduces the turnaround time in early design stages ...
   prior to the laborious development of a detailed simulator").

   Step 1: estimate the program's IPC from event counts with the
   mechanistic CPI model (Eyerman-style).
   Step 2: feed that IPC to the TCA analytical model and compare the four
   coupling designs.
   Step 3: check hardware cost, energy, and how robust the decision is to
   the estimates being off.

   Run with: dune exec examples/early_design.exe *)

open Tca_model

let () =
  (* A hypothetical workload characterised only by counters: one branch
     per 7 instructions at 2% mispredict, a quarter loads with 1% of them
     reaching DRAM, dependence-limited at ~2.2 IPC. *)
  let machine =
    Tca_interval.Mechanistic.machine ~dispatch_width:4 ~rob_size:256
      ~frontend_depth:12 ()
  in
  let stats =
    Tca_interval.Mechanistic.stats ~chain_ipc:2.2 ~branch_rate:(1.0 /. 7.0)
      ~mispredict_rate:0.02 ~load_rate:0.25 ~dram_miss_rate:0.01 ~mlp:2.0 ()
  in
  let b = Tca_interval.Mechanistic.evaluate machine stats in
  Printf.printf
    "Step 1 — mechanistic IPC estimate: %.2f (base %.2f + mispredict %.2f \
     + memory %.2f CPI)\n\n"
    b.Tca_interval.Mechanistic.ipc b.Tca_interval.Mechanistic.base_cpi
    b.Tca_interval.Mechanistic.mispredict_cpi
    b.Tca_interval.Mechanistic.memory_cpi;
  (* Candidate TCA: replaces 250-instruction regions covering 40% of the
     program, 5x faster than software. *)
  let core =
    Params.core_exn ~ipc:b.Tca_interval.Mechanistic.ipc ~rob_size:256
      ~issue_width:4 ~commit_stall:10.0 ()
  in
  let scenario =
    Params.scenario_of_granularity_exn ~a:0.4 ~g:250.0 ~accel:(Params.Factor 5.0)
      ()
  in
  print_endline "Step 2 — the four coupling designs:";
  Tca_util.Table.print
    ~headers:[ "mode"; "speedup"; "hw cost"; "rel. energy"; "status" ]
    (let designs = Hw_cost.designs core scenario in
     let front = Hw_cost.pareto_front designs in
     let verdicts = Energy.evaluate (Energy.make ()) core scenario in
     List.map2
       (fun (d : Hw_cost.design) (v : Energy.verdict) ->
         [
           Mode.to_string d.Hw_cost.mode;
           Tca_util.Table.float_cell d.Hw_cost.speedup;
           Tca_util.Table.float_cell ~decimals:2 d.Hw_cost.cost;
           Tca_util.Table.float_cell v.Energy.relative_energy;
           (if List.exists (fun (f : Hw_cost.design) -> f.Hw_cost.mode = d.Hw_cost.mode) front
            then "pareto"
            else "dominated");
         ])
       designs verdicts);
  print_newline ();
  let best, speedup = Equations.best_mode_exn core scenario in
  Printf.printf "Step 3 — recommendation: build %s (%.2fx); decision stable \
                 under +/-20%% parameter error: %b\n"
    (Mode.to_string best) speedup
    (Sensitivity.decision_stable_exn core scenario);
  print_endline "Largest speedup sensitivities for that design:";
  Tca_util.Table.print ~headers:Sensitivity.headers
    (Sensitivity.rows
       (List.filteri (fun i _ -> i < 3) (Sensitivity.swings_exn core scenario best)))
