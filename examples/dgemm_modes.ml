(* Matrix-multiply-accumulate TCA study: verify the MMA kernels compute
   the right numbers, then compare the three accelerator widths under all
   four coupling modes in the cycle-level simulator — the workload of the
   paper's Fig. 6, at an example-friendly size.

   Run with: dune exec examples/dgemm_modes.exe *)

open Tca_dgemm
open Tca_workloads

let () =
  (* 1. The accelerator semantics are real math: the blocked MMA
     decomposition must reproduce the naive product exactly. *)
  let rng = Tca_util.Prng.create 2024 in
  let a = Matrix.random rng 64 and b = Matrix.random rng 64 in
  let reference = Matrix.multiply_naive a b in
  List.iter
    (fun dim ->
      let c = Mma.multiply_blocked_mma ~block:32 ~dim a b in
      Printf.printf
        "%dx%d MMA decomposition: max |diff| vs naive = %.2e (%s)\n" dim dim
        (Matrix.max_abs_diff reference c)
        (if Matrix.equal ~eps:1e-9 reference c then "ok" else "MISMATCH"))
    Mma.supported_dims;
  print_newline ();
  (* 2. Simulate the 4x4 TCA under each coupling and report where the
     cycles go. *)
  let cfg = Tca_experiments.Exp_common.validation_core () in
  let pair = Dgemm_workload.pair (Dgemm_workload.config ~n:32 ()) ~dim:4 in
  Format.printf "workload: %a@.@." Meta.pp pair.Meta.meta;
  let cmp =
    Tca_uarch.Simulator.compare_modes_exn ~cfg ~baseline:pair.Meta.baseline
      ~accelerated:pair.Meta.accelerated ()
  in
  Printf.printf "baseline: %d cycles (IPC %.2f)\n\n"
    cmp.Tca_uarch.Simulator.baseline.Tca_uarch.Sim_stats.cycles
    cmp.Tca_uarch.Simulator.baseline.Tca_uarch.Sim_stats.ipc;
  List.iter
    (fun (r : Tca_uarch.Simulator.mode_result) ->
      let s = r.Tca_uarch.Simulator.stats in
      Printf.printf
        "%-6s %8d cycles  speedup %6.2fx  accel busy %6d cyc  head-wait \
         %6d cyc  dispatch barrier %6d cyc\n"
        (Tca_uarch.Config.coupling_name r.Tca_uarch.Simulator.coupling)
        s.Tca_uarch.Sim_stats.cycles r.Tca_uarch.Simulator.speedup
        s.Tca_uarch.Sim_stats.accel_busy_cycles
        s.Tca_uarch.Sim_stats.accel_wait_for_head_cycles
        s.Tca_uarch.Sim_stats.stalls.Tca_uarch.Sim_stats.serialize)
    cmp.Tca_uarch.Simulator.modes;
  print_newline ();
  print_endline
    "Note how the dispatch barrier (NT) and head-wait (NL) cycles, not \
     the accelerator's own latency, separate the four designs."
