(* Design-space exploration for the heap-manager TCA (Mallacc-style):
   sweep the malloc/free intensity of the application and, for each
   intensity, ask the model (and, for two points, the cycle-level
   simulator) which coupling mode is required to avoid slowdown.

   Run with: dune exec examples/heap_design_space.exe *)

open Tca_model
open Tca_workloads

let core = Presets.hp_core

(* One malloc/free pair costs (69 + 37)/2 = 53 instructions of software;
   an application issuing a heap call every [gap] instructions has
   v = 1 / (gap + 53) and a = 53 / (gap + 53). *)
let scenario_of_gap gap =
  let g = Greendroid.heap_manager_granularity in
  let interval = float_of_int gap +. g in
  Params.scenario_exn ~a:(g /. interval) ~v:(1.0 /. interval)
    ~accel:(Params.Latency (float_of_int Tca_heap.Cost_model.accel_latency))
    ()

let () =
  print_endline "Heap-manager TCA design space (model, HP core)";
  let gaps = [ 1600; 800; 400; 200; 100; 50; 25 ] in
  Tca_util.Table.print
    ~headers:[ "app gap"; "NL_NT"; "L_NT"; "NL_T"; "L_T"; "cheapest safe mode" ]
    (List.map
       (fun gap ->
         let s = scenario_of_gap gap in
         let speedups = Equations.speedups_exn core s in
         let safe =
           (* Cheapest mode (in Mode.all order) that avoids slowdown. *)
           match List.find_opt (fun (_, sp) -> sp >= 1.0) speedups with
           | Some (m, _) -> Mode.to_string m
           | None -> "none"
         in
         string_of_int gap
         :: List.map (fun (_, sp) -> Tca_util.Table.float_cell sp) speedups
         @ [ safe ])
       gaps);
  (* Cross-check two points against the cycle-level simulator. *)
  print_newline ();
  print_endline "Simulator cross-check (v and a as generated):";
  let cfg = Tca_experiments.Exp_common.validation_core () in
  List.iter
    (fun gap ->
      let pair =
        Heap_workload.generate
          (Heap_workload.config ~n_calls:1000 ~app_instrs_per_call:gap ())
      in
      let rows =
        Tca_experiments.Exp_common.validate_pair ~cfg ~pair ~latency:1.0 ()
      in
      Tca_util.Table.print
        ~headers:Tca_experiments.Exp_common.table_headers
        (Tca_experiments.Exp_common.rows_to_table rows);
      print_newline ())
    [ 400; 50 ];
  (* What partial speculation buys (paper Section VIII). *)
  let s = scenario_of_gap 100 in
  match
    Partial.required_confidence core s ~trailing:true
      ~target_speedup:(0.95 *. Equations.speedup_exn core s Mode.L_T)
  with
  | Some p ->
      Printf.printf
        "Speculating on just %.0f%% of invocations (high-confidence \
         branches) captures 95%% of the full L_T speedup at gap 100.\n"
        (100.0 *. p)
  | None -> print_endline "Partial speculation cannot reach 95% of L_T here."
