(* A tour of the paper's Fig. 2 reference accelerators that this
   repository implements as real substrates: the heap manager, the hash
   map, string functions, and regular expressions. For each, the workload
   generator runs the genuine data structure / engine, measures the
   software granularity it produces, and the simulator measures the four
   coupling modes — placing each marker on the fine-grained spectrum
   where mode choice decides between speedup and slowdown.

   Run with: dune exec examples/markers_tour.exe (takes ~20 s) *)

open Tca_workloads
open Tca_experiments

let row name granularity (rows : Exp_common.validation_row list) =
  let sim m =
    (List.find
       (fun (r : Exp_common.validation_row) ->
         Tca_model.Mode.equal r.Exp_common.mode m)
       rows)
      .Exp_common.sim_speedup
  in
  [
    name;
    Printf.sprintf "%.0f" granularity;
    Tca_util.Table.float_cell (sim Tca_model.Mode.NL_NT);
    Tca_util.Table.float_cell (sim Tca_model.Mode.L_T);
    (if sim Tca_model.Mode.NL_NT < 1.0 then "yes" else "no");
  ]

let () =
  let cfg = Exp_common.validation_core () in
  print_endline
    "Fig. 2 reference accelerators, measured on this repository's real \
     substrates (one operating point each):";
  print_newline ();
  (* Hash map: ~17 uops. *)
  let hm_pair, hm_probes =
    Hashmap_workload.generate
      (Hashmap_workload.config ~n_lookups:800 ~app_instrs_per_lookup:200 ())
  in
  let hm_rows =
    Exp_common.validate_pair ~cfg ~pair:hm_pair
      ~latency:(Exp_common.meta_latency hm_pair.Meta.meta ~cfg) ()
  in
  let hm_g =
    float_of_int
      (Tca_hashmap.Cost_model.software_uops
         ~probes:(int_of_float (Float.round hm_probes)))
  in
  (* Heap manager: 53 uops. *)
  let heap_pair =
    Heap_workload.generate
      (Heap_workload.config ~n_calls:800 ~app_instrs_per_call:200 ())
  in
  let heap_rows = Exp_common.validate_pair ~cfg ~pair:heap_pair ~latency:1.0 () in
  (* String functions: ~140 uops. *)
  let sf_pair, sf_bytes =
    Strfn_workload.generate
      (Strfn_workload.config ~n_calls:600 ~app_instrs_per_call:300 ())
  in
  let sf_rows =
    Exp_common.validate_pair ~cfg ~pair:sf_pair
      ~latency:(Exp_common.meta_latency sf_pair.Meta.meta ~cfg) ()
  in
  let sf_g =
    float_of_int
      (Tca_strfn.Cost_model.software_uops
         ~bytes_inspected:(int_of_float sf_bytes))
  in
  (* Regular expressions: ~1.3k uops. *)
  let re_pair, re_chars =
    Regex_workload.generate
      (Regex_workload.config ~n_records:250 ~app_instrs_per_record:800 ())
  in
  let re_rows =
    Exp_common.validate_pair ~cfg ~pair:re_pair
      ~latency:(Exp_common.meta_latency re_pair.Meta.meta ~cfg) ()
  in
  let re_g =
    float_of_int
      (Tca_regex.Cost_model.software_uops
         ~chars_scanned:(int_of_float re_chars))
  in
  Tca_util.Table.print
    ~headers:
      [ "accelerator"; "granularity (uops)"; "NL_NT"; "L_T"; "NL_NT slows?" ]
    [
      row "hash map" hm_g hm_rows;
      row "heap manager" 53.0 heap_rows;
      row "string functions" sf_g sf_rows;
      row "regular expression" re_g re_rows;
    ];
  print_newline ();
  print_endline
    "The paper's Fig. 2 story, measured: the finer the accelerator, the \
     more the coupling mode matters — the finest markers lose performance \
     behind a dispatch barrier while full OoO integration always wins."
