(* Quickstart: evaluate a candidate TCA on a stock core in a dozen lines.

   Scenario: you are considering a hash-map probe accelerator that
   replaces ~150-instruction software probes, is invoked once every 400
   instructions in your target workload, and runs the probe 4x faster
   than software. Which coupling mode do you need to build?

   Run with: dune exec examples/quickstart.exe *)

open Tca_model

let () =
  let core = Presets.hp_core in
  let scenario =
    Params.scenario_exn
      ~a:(150.0 /. 400.0) (* acceleratable fraction *)
      ~v:(1.0 /. 400.0) (* one invocation per 400 instructions *)
      ~accel:(Params.Factor 4.0)
      ()
  in
  Format.printf "Candidate hash-map TCA on %a@.@." Params.pp_core core;
  List.iter
    (fun (mode, speedup) ->
      Format.printf "  %-6s %.3fx   (%s)@." (Mode.to_string mode) speedup
        (Mode.hardware_requirements mode))
    (Equations.speedups_exn core scenario);
  let best, speedup = Equations.best_mode_exn core scenario in
  Format.printf "@.Best mode: %s at %.3fx.@." (Mode.to_string best) speedup;
  (* The same accelerator that speeds the program up with full OoO
     support can slow it down without it — check before committing to the
     cheap design. *)
  let worst = Equations.speedup_exn core scenario Mode.NL_NT in
  if worst < 1.0 then
    Format.printf
      "Warning: the dispatch-barrier design (NL_NT) would SLOW the \
       program to %.3fx.@."
      worst;
  (* How much coverage could this accelerator ever exploit? *)
  let peak_a =
    Concurrency.ideal_peak_coverage_exn ~accel_factor:4.0
  in
  Format.printf
    "With A = 4, program speedup is maximised (at %.1fx) once %.0f%% of \
     the code is offloaded — offloading more under-utilises the core.@."
    (Concurrency.ideal_peak_speedup_exn ~accel_factor:4.0)
    (100.0 *. peak_a)
