open Tca_workloads

let gaps ~quick =
  if quick then [ 400; 100 ] else [ 1600; 800; 400; 200; 100; 50; 25 ]

let run ?telemetry ?par ?(quick = false) () =
  Tca_telemetry.Timing.with_span telemetry "fig5.run" @@ fun () ->
  let cfg = Exp_common.validation_core () in
  let n_calls = if quick then 600 else 2000 in
  Exp_common.par_rows ?telemetry ?par
    (fun ~telemetry gap ->
      let hcfg =
        Heap_workload.config ~n_calls ~app_instrs_per_call:gap ~seed:(7 + gap)
          ()
      in
      let pair =
        Tca_telemetry.Timing.with_span telemetry "sim.workload" (fun () ->
            Heap_workload.generate hcfg)
      in
      Exp_common.validate_pair ?telemetry ~cfg ~pair
        ~latency:(float_of_int Tca_heap.Cost_model.accel_latency) ())
    (gaps ~quick)

let summary rows =
  Tca_model.Validate.summarize (Exp_common.points_of_rows rows)

let trends_hold rows =
  Tca_model.Validate.trends_preserved (Exp_common.points_of_rows rows)

let artifact rows =
  Exp_common.validation_artifact ~job:"fig5"
    ~title:
      "Fig. 5: heap-manager TCA — simulated (b) vs analytical (a) speedup \
       and error (c) across invocation frequencies"
    rows

let print rows = print_string (Tca_engine.Artifact.to_text (artifact rows))
