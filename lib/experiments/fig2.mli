(** Fig. 2: program speedup vs. accelerator granularity for the four TCA
    modes on an ARM-A72-like core, with 30% acceleratable code and a 3x
    acceleration factor, annotated with the reference accelerators. *)

type row = {
  g : float;
  speedups : (Tca_model.Mode.t * float) list;
}

val run : ?telemetry:Tca_telemetry.Sink.t -> ?points:int -> unit -> row list
(** Granularity sweep over [10^1 .. 10^9], default 33 points. *)

val artifact : row list -> Tca_engine.Artifact.t
(** Sweep table, then the reference-accelerator markers. *)

val print : row list -> unit
val csv : row list -> string
(** The sweep table alone (no markers), matching the historical CSV. *)
