(** Extension X8: regular-expression TCA validation — the ~10^3-μop
    "regular expression" marker of the paper's Fig. 2, with scan lengths
    from a real NFA/DFA engine (data-dependent like the hash map, but an
    order of magnitude coarser). *)

val gaps : quick:bool -> int list

val run :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  ?quick:bool -> unit ->
  Exp_common.validation_row list * float
(** Rows plus the mean characters scanned per search (finest gap).
    [?par] evaluates the invocation gaps concurrently with identical
    rows and merged trace. *)

val artifact :
  Exp_common.validation_row list * float -> Tca_engine.Artifact.t

val print : Exp_common.validation_row list * float -> unit
