open Tca_uarch
open Tca_workloads
module A = Tca_engine.Artifact

(* Per-unit architect's latency: the unit's own compute latency plus the
   pair's shared memory-time estimate (every scenario gives both units
   the same read footprint, so only the compute term differs). *)
let unit_latency (sc : Multi_tca.scenario) (u : Multi_tca.unit_usage) ~cfg =
  Exp_common.meta_latency
    { sc.Multi_tca.pair.Meta.meta with
      Meta.compute_latency = u.Multi_tca.compute_latency }
    ~cfg

let composition_of ?drain (sc : Multi_tca.scenario) ~cfg =
  let nb =
    float_of_int sc.Multi_tca.pair.Meta.meta.Meta.baseline_instrs
  in
  let units =
    List.map
      (fun (u : Multi_tca.unit_usage) ->
        Tca_model.Params.unit_scenario_exn
          ~a:(float_of_int u.Multi_tca.acceleratable_instrs /. nb)
          ~v:(float_of_int u.Multi_tca.invocations /. nb)
          ~accel:(Tca_model.Params.Latency (unit_latency sc u ~cfg))
          ())
      sc.Multi_tca.usage
  in
  Tca_model.Params.composition_exn ?drain
    ~chained:sc.Multi_tca.chained_fraction
    ~commit_port:Tca_model.Params.Shared ~units ()

let validate ?telemetry ?par ~cfg (sc : Multi_tca.scenario) =
  let cfg = Config.with_tca_units cfg sc.Multi_tca.tca_units in
  let pair = sc.Multi_tca.pair in
  let cmp =
    Tca_telemetry.Timing.with_span telemetry
      ("validate." ^ pair.Meta.meta.Meta.name)
      (fun () ->
        Simulator.compare_modes_exn ?telemetry ?par ~cfg
          ~baseline:pair.Meta.baseline ~accelerated:pair.Meta.accelerated ())
  in
  let ipc = cmp.Simulator.baseline.Sim_stats.ipc in
  let core = Exp_common.model_core_of cfg ~ipc in
  let comp = composition_of sc ~cfg in
  let comp_refill =
    composition_of ~drain:Tca_interval.Drain.Refill_aware sc ~cfg
  in
  let rows =
    List.map
      (fun (r : Simulator.mode_result) ->
        let mode = Exp_common.mode_of_coupling r.Simulator.coupling in
        {
          Exp_common.workload = pair.Meta.meta.Meta.name;
          v = pair.Meta.meta.Meta.v;
          a = pair.Meta.meta.Meta.a;
          base_ipc = ipc;
          mode;
          sim_speedup = r.Simulator.speedup;
          model_speedup =
            Tca_model.Equations.composed_speedup_exn core comp mode;
          model_refill_speedup =
            Tca_model.Equations.composed_speedup_exn core comp_refill mode;
        })
      cmp.Simulator.modes
  in
  (rows, cmp)

let scenarios ?(quick = false) () =
  let n_pairs = if quick then 150 else 400 in
  List.map
    (fun k -> Multi_tca.generate (Multi_tca.config ~n_pairs k))
    Multi_tca.all_kinds

let run ?telemetry ?(par = Tca_util.Parmap.serial) ?(quick = false) () =
  Tca_telemetry.Timing.with_span telemetry "multi_val.run" @@ fun () ->
  let cfg = Exp_common.validation_core () in
  let scs = Array.of_list (scenarios ~quick ()) in
  let sinks =
    Array.map (fun _ -> Option.map Tca_telemetry.Sink.fork telemetry) scs
  in
  let results =
    par.Tca_util.Parmap.run
      (fun i -> (scs.(i), validate ?telemetry:sinks.(i) ~cfg scs.(i)))
      (Array.init (Array.length scs) Fun.id)
  in
  (match telemetry with
  | Some into ->
      Array.iter
        (function
          | Some child -> Tca_telemetry.Sink.join ~into child | None -> ())
        sinks
  | None -> ());
  Array.to_list results

(* Per-unit simulator breakdown across all scenarios and modes: the
   [Sim_stats.per_unit] counters the refactor added, which only exist
   when more than one unit is configured. *)
let per_unit_table results =
  A.table ~name:"per-unit"
    ~headers:
      [
        "workload"; "mode"; "unit"; "invocations"; "busy"; "head-wait";
        "serialize";
      ]
    (List.concat_map
       (fun ((sc : Multi_tca.scenario), ((_ : Exp_common.validation_row list), cmp)) ->
         List.concat_map
           (fun (r : Simulator.mode_result) ->
             List.map
               (fun (u : Sim_stats.unit_stats) ->
                 A.
                   [
                     text sc.Multi_tca.pair.Meta.meta.Meta.name;
                     text
                       (Tca_model.Mode.to_string
                          (Exp_common.mode_of_coupling r.Simulator.coupling));
                     int u.Sim_stats.unit_id;
                     int u.Sim_stats.invocations;
                     int u.Sim_stats.busy_cycles;
                     int u.Sim_stats.wait_for_head_cycles;
                     int u.Sim_stats.serialize_stall_cycles;
                   ])
               r.Simulator.stats.Sim_stats.per_unit)
           cmp.Simulator.modes)
       results)

let artifact results =
  let rows = List.concat_map (fun (_, (rows, _)) -> rows) results in
  let cfg = Exp_common.validation_core () in
  let comp_notes =
    List.map
      (fun ((sc : Multi_tca.scenario), _) ->
        A.Note
          (Format.asprintf "%s: composition %a"
             sc.Multi_tca.pair.Meta.meta.Meta.name
             Tca_model.Params.pp_composition (composition_of sc ~cfg)))
      results
  in
  A.make ~job:"simulate.multi_tca"
    ~title:
      "simulate: two heterogeneous TCA units (alternating / chained / \
       contended), composed model vs simulator"
    (comp_notes
    @ [ A.Table (Exp_common.validation_table rows) ]
    @ List.map (fun n -> A.Note n) (Exp_common.validation_summary_notes rows)
    @ [
        A.Note
          "known model limit: the composed L_T floor (sum of v_i * t_i) \
           assumes invocations serialize, but pipelined units overlap \
           invocations across the ROB window, so deep-latency L_T \
           compositions run faster than predicted (negative error above)";
        A.Table (per_unit_table results);
      ])

(* The extension figure: composed-model speedup as the chained fraction
   sweeps 0 -> 1 for both commit-port arrangements, on the chained
   scenario's unit mix. Model-only (the simulated anchor points are the
   job above); shows the contention term t_cont = chi * v * t_commit
   splitting the shared from the private port as chaining grows. *)
let sweep ?(points = 21) ?(core = Tca_model.Presets.hp_core) () =
  let cfg = Exp_common.validation_core () in
  let sc = Multi_tca.generate (Multi_tca.config Multi_tca.Chained) in
  let base = composition_of sc ~cfg in
  let chis = Array.to_list (Tca_util.Sweep.linspace_exn 0.0 1.0 points) in
  ( core,
    base,
    List.map
      (fun chained ->
        let speedups port =
          Tca_model.Equations.composed_speedups_exn core
            { base with Tca_model.Params.chained; commit_port = port }
        in
        ( chained,
          speedups Tca_model.Params.Shared,
          speedups Tca_model.Params.Private ))
      chis )

let sweep_table rows =
  let headers =
    "chained"
    :: List.concat_map
         (fun m ->
           let m = Tca_model.Mode.to_string m in
           [ m ^ "/sh"; m ^ "/pr" ])
         Tca_model.Mode.all
  in
  A.table ~name:"composition-sweep" ~headers
    (List.map
       (fun (chained, shared, private_) ->
         A.flt ~decimals:2 chained
         :: List.concat_map
              (fun ((_, s), (_, p)) -> [ A.flt s; A.flt p ])
              (List.combine shared private_))
       rows)

let sweep_artifact (core, base, rows) =
  let gap (_, shared, private_) =
    (* largest private-over-shared advantage across modes at this chi *)
    List.fold_left2
      (fun acc (_, s) (_, p) -> Float.max acc (100.0 *. ((p /. s) -. 1.0)))
      0.0 shared private_
  in
  let worst =
    List.fold_left (fun acc r -> Float.max acc (gap r)) 0.0 rows
  in
  A.make ~job:"composition"
    ~title:
      "X10: composed-model speedup vs chained fraction, shared vs private \
       commit port"
    [
      A.Note
        (Format.asprintf "core %a" Tca_model.Params.pp_core core);
      A.Note
        (Format.asprintf "unit mix %a (chained swept below)"
           Tca_model.Params.pp_composition base);
      A.Table (sweep_table rows);
      A.Note
        (Printf.sprintf
           "max private-port advantage across the sweep: %.2f%% (the \
            t_cont = chi * v * t_commit contention term)"
           worst);
    ]

let print results = print_string (A.to_text (artifact results))
