open Tca_workloads

let gaps ~quick = if quick then [ 200 ] else [ 800; 400; 200; 100; 50 ]

let run ?telemetry ?(par = Tca_util.Parmap.serial) ?(quick = false) () =
  Tca_telemetry.Timing.with_span telemetry "hashmap_val.run" @@ fun () ->
  let cfg = Exp_common.validation_core () in
  let n_lookups = if quick then 500 else 1500 in
  let gaps_a = Array.of_list (gaps ~quick) in
  let sinks =
    Array.map (fun _ -> Option.map Tca_telemetry.Sink.fork telemetry) gaps_a
  in
  let eval i =
    let gap = gaps_a.(i) in
    let hcfg =
      Hashmap_workload.config ~n_lookups ~app_instrs_per_lookup:gap
        ~seed:(17 + gap) ()
    in
    let pair, probes =
      Tca_telemetry.Timing.with_span sinks.(i) "sim.workload" (fun () ->
          Hashmap_workload.generate hcfg)
    in
    let latency = Exp_common.meta_latency pair.Meta.meta ~cfg in
    (Exp_common.validate_pair ?telemetry:sinks.(i) ~cfg ~pair ~latency (), probes)
  in
  let per_gap =
    par.Tca_util.Parmap.run eval (Array.init (Array.length gaps_a) Fun.id)
  in
  (match telemetry with
  | Some into ->
      Array.iter
        (function
          | Some child -> Tca_telemetry.Sink.join ~into child | None -> ())
        sinks
  | None -> ());
  let rows = List.concat_map fst (Array.to_list per_gap) in
  (rows, snd per_gap.(Array.length per_gap - 1))

let artifact (rows, mean_probes) =
  Exp_common.validation_artifact ~job:"hashmap"
    ~title:
      "X7: hash-map TCA validation (probe counts from a live \
       open-addressing table)"
    ~notes:
      [
        Printf.sprintf
          "mean probes per lookup %.2f -> mean software cost %d uops (the \
           'hash map' marker granularity of Fig. 2)"
          mean_probes
          (Tca_hashmap.Cost_model.software_uops
             ~probes:(int_of_float (Float.round mean_probes)));
      ]
    rows

let print result = print_string (Tca_engine.Artifact.to_text (artifact result))
