open Tca_workloads

let gaps ~quick = if quick then [ 200 ] else [ 800; 400; 200; 100; 50 ]

let run ?telemetry ?(quick = false) () =
  Tca_telemetry.Timing.with_span telemetry "hashmap_val.run" @@ fun () ->
  let cfg = Exp_common.validation_core () in
  let n_lookups = if quick then 500 else 1500 in
  let mean_probes = ref 0.0 in
  let rows =
    List.concat_map
      (fun gap ->
        let hcfg =
          Hashmap_workload.config ~n_lookups ~app_instrs_per_lookup:gap
            ~seed:(17 + gap) ()
        in
        let pair, probes = Hashmap_workload.generate hcfg in
        mean_probes := probes;
        let latency = Exp_common.meta_latency pair.Meta.meta ~cfg in
        Exp_common.validate_pair ?telemetry ~cfg ~pair ~latency ())
      (gaps ~quick)
  in
  (rows, !mean_probes)

let print (rows, mean_probes) =
  print_endline
    "X7: hash-map TCA validation (probe counts from a live \
     open-addressing table)";
  Printf.printf
    "mean probes per lookup %.2f -> mean software cost %d uops (the \
     'hash map' marker granularity of Fig. 2)\n"
    mean_probes
    (Tca_hashmap.Cost_model.software_uops
       ~probes:(int_of_float (Float.round mean_probes)));
  Tca_util.Table.print ~headers:Exp_common.table_headers
    (Exp_common.rows_to_table rows);
  Exp_common.print_validation_summary rows
