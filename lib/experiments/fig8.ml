open Tca_model
module A = Tca_engine.Artifact

type series = {
  mode : Mode.t;
  points : (float * float) array;
  peak : float * float;
}

let granularity = 100.0
let accel_factor = 2.0
let accel = Params.Factor accel_factor

let run ?telemetry ?(points = 97) ?(core = Presets.hp_core) () =
  Tca_telemetry.Timing.with_span telemetry "fig8.run" @@ fun () ->
  let coverages = Tca_util.Sweep.linspace_exn 0.0 0.99 points in
  List.map
    (fun mode ->
      let pts =
        Concurrency.coverage_series_exn core ~g:granularity ~accel ~coverages mode
      in
      { mode; points = pts; peak = Concurrency.peak_exn pts })
    Mode.all

let ideal_peak =
  ( Concurrency.ideal_peak_coverage_exn ~accel_factor,
    Concurrency.ideal_peak_speedup_exn ~accel_factor )

let nl_t_local_maxima series =
  match List.find_opt (fun s -> Mode.equal s.mode Mode.NL_T) series with
  | None -> []
  | Some s -> Concurrency.local_maxima s.points

let series_table ?(name = "series") ?(every = 1) series =
  let headers = "a" :: List.map (fun s -> Mode.to_string s.mode) series in
  let n = match series with [] -> 0 | s :: _ -> Array.length s.points in
  A.table ~in_text:(every > 1) ~name ~headers
    (List.filter_map
       (fun i ->
         if i mod every <> 0 then None
         else
           Some
             (A.flt ~decimals:2 (fst (List.hd series).points.(i))
             :: List.map (fun s -> A.flt (snd s.points.(i))) series))
       (List.init n Fun.id))

let artifact series =
  let peak_notes =
    List.map
      (fun s ->
        let a, sp = s.peak in
        A.Note
          (Printf.sprintf "peak %-6s: speedup %.3f at a = %.3f"
             (Mode.to_string s.mode) sp a))
      series
  in
  let a_star, s_star = ideal_peak in
  let maxima_notes =
    match nl_t_local_maxima series with
    | [] -> [ A.Note "NL_T: no interior local maximum in this sweep" ]
    | ms ->
        List.map
          (fun (a, sp) ->
            A.Note
              (Printf.sprintf "NL_T local maximum: speedup %.3f at a = %.3f"
                 sp a))
          ms
  in
  A.make ~job:"fig8"
    ~title:
      "Fig. 8: predicted speedup vs % acceleratable for a 100-instruction \
       TCA with A = 2 (HP core)"
    ([
       (* Text shows every 4th row to keep the table readable; the full
          series lives in the CSV/JSON-only table. *)
       A.Table (series_table ~name:"series (every 4th point)" ~every:4 series);
       A.Table (series_table series);
       A.Note "";
     ]
    @ peak_notes
    @ [
        A.Note
          (Printf.sprintf
             "analytic optimum (L_T): speedup A + 1 = %.1f at a = A/(A+1) = \
              %.3f"
             s_star a_star);
      ]
    @ maxima_notes)

let print series = print_string (A.to_text (artifact series))
let csv series = A.table_csv (series_table series)
