open Tca_model

type series = {
  mode : Mode.t;
  points : (float * float) array;
  peak : float * float;
}

let granularity = 100.0
let accel_factor = 2.0
let accel = Params.Factor accel_factor

let run ?telemetry ?(points = 97) ?(core = Presets.hp_core) () =
  Tca_telemetry.Timing.with_span telemetry "fig8.run" @@ fun () ->
  let coverages = Tca_util.Sweep.linspace_exn 0.0 0.99 points in
  List.map
    (fun mode ->
      let pts =
        Concurrency.coverage_series_exn core ~g:granularity ~accel ~coverages mode
      in
      { mode; points = pts; peak = Concurrency.peak_exn pts })
    Mode.all

let ideal_peak =
  ( Concurrency.ideal_peak_coverage_exn ~accel_factor,
    Concurrency.ideal_peak_speedup_exn ~accel_factor )

let nl_t_local_maxima series =
  match List.find_opt (fun s -> Mode.equal s.mode Mode.NL_T) series with
  | None -> []
  | Some s -> Concurrency.local_maxima s.points

let print series =
  print_endline
    "Fig. 8: predicted speedup vs %% acceleratable for a 100-instruction \
     TCA with A = 2 (HP core)";
  let headers = "a" :: List.map (fun s -> Mode.to_string s.mode) series in
  let n = match series with [] -> 0 | s :: _ -> Array.length s.points in
  let rows =
    List.init n (fun i ->
        let a = fst (List.hd series).points.(i) in
        Printf.sprintf "%.2f" a
        :: List.map
             (fun s -> Tca_util.Table.float_cell (snd s.points.(i)))
             series)
  in
  (* Print every 4th row to keep the table readable. *)
  let rows = List.filteri (fun i _ -> i mod 4 = 0) rows in
  Tca_util.Table.print ~headers rows;
  print_newline ();
  List.iter
    (fun s ->
      let a, sp = s.peak in
      Printf.printf "peak %-6s: speedup %.3f at a = %.3f\n"
        (Mode.to_string s.mode) sp a)
    series;
  let a_star, s_star = ideal_peak in
  Printf.printf
    "analytic optimum (L_T): speedup A + 1 = %.1f at a = A/(A+1) = %.3f\n"
    s_star a_star;
  match nl_t_local_maxima series with
  | [] -> print_endline "NL_T: no interior local maximum in this sweep"
  | ms ->
      List.iter
        (fun (a, sp) ->
          Printf.printf "NL_T local maximum: speedup %.3f at a = %.3f\n" sp a)
        ms

let csv series =
  let header = "a" :: List.map (fun s -> Mode.to_string s.mode) series in
  let n = match series with [] -> 0 | s :: _ -> Array.length s.points in
  Tca_util.Csv.to_string ~header
    (List.init n (fun i ->
         string_of_float (fst (List.hd series).points.(i))
         :: List.map (fun s -> string_of_float (snd s.points.(i))) series))
