(** Ablation X1: LogCA vs. this paper's model across granularity.

    LogCA models a loosely-coupled accelerator (CPU idles during offload,
    no pipeline interactions); the TCA model adds the four coupling
    modes. At coarse granularity both converge toward the accelerator's
    asymptotic speedup; at fine granularity LogCA sees only its fixed
    overhead while the TCA model resolves the drain/fill penalties that
    differ by an order of magnitude between modes. *)

type row = {
  g : float;
  logca : float;
  tca : (Tca_model.Mode.t * float) list;
}

val run : ?points:int -> unit -> row list
val logca_params : Tca_logca.Logca.t
(** Matched to the Fig. 2 scenario: A = 3, per-invocation overhead
    equivalent to the TCA model's commit stall, negligible interface
    latency (tightly-coupled data path). *)

val artifact : row list -> Tca_engine.Artifact.t
val print : row list -> unit
