module A = Tca_engine.Artifact
module Job = Tca_engine.Job
module Registry = Tca_engine.Registry

let job = Job.make

let figure_jobs =
  [
    job ~name:"table1" ~title:"Table I: analytical model parameters"
      (fun _ctx -> Table1.artifact ());
    job ~name:"fig2"
      ~title:"Fig. 2: speedup vs granularity for the four coupling modes"
      (fun ctx -> Fig2.artifact (Fig2.run ?telemetry:ctx.Job.telemetry ()));
    job ~name:"fig3"
      ~title:"Fig. 3: per-cycle issue timelines across one TCA interval"
      (fun ctx ->
        Fig3.artifact
          (Fig3.run ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par ()));
    job ~name:"fig4"
      ~title:"Fig. 4: model error vs invocation frequency (synthetic sweep)"
      (fun ctx ->
        Fig4.artifact
          (Fig4.run ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par
             ~quick:ctx.Job.quick ()));
    job ~name:"fig5"
      ~title:"Fig. 5: heap-manager TCA validation across invocation gaps"
      (fun ctx ->
        Fig5.artifact
          (Fig5.run ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par
             ~quick:ctx.Job.quick ()));
    job ~name:"fig6"
      ~title:"Fig. 6: blocked DGEMM with 2x2/4x4/8x8 TCAs"
      (fun ctx ->
        Fig6.artifact
          (Fig6.run ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par
             ~n:(if ctx.Job.quick then 32 else 64)
             ()));
    job ~name:"fig7"
      ~title:"Fig. 7: speedup heatmaps over (v, a) for both cores, all modes"
      (fun ctx ->
        Fig7.artifact
          (Fig7.run ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par
             ~cols:(if ctx.Job.quick then 24 else 48)
             ~rows:(if ctx.Job.quick then 9 else 17)
             ()));
    job ~name:"fig8"
      ~title:"Fig. 8: speedup vs acceleratable fraction (concurrency bound)"
      (fun ctx ->
        Fig8.artifact
          (Fig8.run ?telemetry:ctx.Job.telemetry
             ~points:(if ctx.Job.quick then 33 else 97)
             ()));
    job ~name:"logca" ~title:"X1: LogCA comparison across granularity"
      (fun _ctx -> Logca_cmp.artifact (Logca_cmp.run ()));
    job ~name:"partial"
      ~title:"X2: partial TCA speculation, model blend + simulator cross-check"
      (fun ctx ->
        Partial_spec.artifact ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par
          ~quick:ctx.Job.quick (Partial_spec.run ()));
    job ~name:"design"
      ~title:"X3: design-space Pareto fronts, energy, sensitivity"
      (fun _ctx -> Design_space.artifact ());
    job ~name:"mechanistic"
      ~title:"X4: mechanistic CPI model vs cycle-level simulator"
      (fun ctx ->
        Mechanistic_cmp.artifact
          (Mechanistic_cmp.run ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par ()));
    job ~name:"occupancy"
      ~title:"X5: pipelined vs exclusive accelerator occupancy (DGEMM)"
      (fun ctx ->
        (* n must be a multiple of the DGEMM workload's 32x32 blocking *)
        Occupancy.artifact
          (Occupancy.run ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par
             ~n:(if ctx.Job.quick then 32 else 64)
             ()));
    job ~name:"cores"
      ~title:"X6: HP vs LP core sensitivity to TCA mode (simulator)"
      (fun ctx ->
        Cores_cmp.artifact
          (Cores_cmp.run ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par
             ~quick:ctx.Job.quick ()));
    job ~name:"hashmap" ~title:"X7: hash-map TCA validation"
      (fun ctx ->
        Hashmap_val.artifact
          (Hashmap_val.run ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par
             ~quick:ctx.Job.quick ()));
    job ~name:"regexv" ~title:"X8: regular-expression TCA validation"
      (fun ctx ->
        Regex_val.artifact
          (Regex_val.run ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par
             ~quick:ctx.Job.quick ()));
    job ~name:"strfn" ~title:"X9: string-function TCA validation"
      (fun ctx ->
        Strfn_val.artifact
          (Strfn_val.run ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par
             ~quick:ctx.Job.quick ()));
    job ~name:"composition"
      ~title:"X10: composed-model speedup vs chained fraction (commit port)"
      (fun ctx ->
        Multi_val.sweep_artifact
          (Multi_val.sweep ~points:(if ctx.Job.quick then 11 else 21) ()));
    job ~name:"config_wall"
      ~title:
        "X12: configuration wall — speedup vs granularity per config mode, \
         with break-even crossings"
      (fun ctx ->
        Config_wall.artifact
          (Config_wall.run ?telemetry:ctx.Job.telemetry
             ~points:(if ctx.Job.quick then 17 else 33)
             ()));
    job ~name:"simulate.config_wall"
      ~title:
        "simulate: configuration mechanisms (sync / queued / preprog) \
         under all four couplings, model (T1)-(T3) vs simulator"
      ~params:[ ("workload", "config_wall") ]
      (fun ctx ->
        Config_wall.validate_artifact
          (Config_wall.validate ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par
             ~quick:ctx.Job.quick ()));
    job ~name:"simulate.multi_tca"
      ~title:
        "simulate: two heterogeneous TCA units under all four couplings, \
         composed model vs simulator"
      ~params:[ ("workload", "multi_tca") ]
      (fun ctx ->
        Multi_val.artifact
          (Multi_val.run ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par
             ~quick:ctx.Job.quick ()));
  ]

let simulate_job (cli_name, kind) =
  job
    ~name:("simulate." ^ cli_name)
    ~title:
      (Printf.sprintf
         "simulate: %s workload under all four couplings, model vs simulator"
         cli_name)
    ~params:[ ("workload", cli_name) ]
    (fun ctx ->
      let cfg = Exp_common.validation_core () in
      let pair, latency =
        Exp_common.workload_pair ?telemetry:ctx.Job.telemetry ~cfg kind
      in
      let rows =
        Exp_common.validate_pair ?telemetry:ctx.Job.telemetry ~par:ctx.Job.par
          ~cfg ~pair ~latency ()
      in
      A.make
        ~job:("simulate." ^ cli_name)
        ~title:
          (Printf.sprintf
             "simulate: %s workload under all four couplings, model vs \
              simulator"
             cli_name)
        (A.Note
           (Format.asprintf "%a" Tca_workloads.Meta.pp
              pair.Tca_workloads.Meta.meta)
        :: A.Table (Exp_common.validation_table rows)
        :: List.map
             (fun n -> A.Note n)
             (Exp_common.validation_summary_notes rows)))

let all () =
  figure_jobs @ List.map simulate_job Exp_common.workload_kinds

let registry () =
  let r = Registry.create () in
  List.iter (Registry.register_exn r) (all ());
  r
