(** Extension X5: accelerator-occupancy ablation.

    The paper assumes "the accelerator is assumed to have its own compute
    resources"; it is silent on whether the unit is pipelined. This
    ablation runs the DGEMM 4x4 TCA with a fully pipelined unit vs. an
    exclusive (one invocation at a time) unit: the difference only
    appears in the T modes, where trailing concurrency lets invocations
    overlap — quantifying how much of L_T's advantage comes from
    accelerator pipelining rather than core/TCA overlap. *)

type row = {
  occupancy : string;
  mode : Tca_model.Mode.t;
  cycles : int;
  speedup : float;
}

val run :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  ?n:int -> unit -> row list
(** 8 rows: 2 occupancy policies x 4 modes. [n] defaults to 32. [?par]
    evaluates the 8 accelerated runs concurrently with identical rows
    and merged trace. *)

val artifact : row list -> Tca_engine.Artifact.t
val print : row list -> unit
