open Tca_model
module A = Tca_engine.Artifact

type map = {
  core_name : string;
  mode : Mode.t;
  grid : Grid.t;
  slowdown_fraction : float;
}

let accel = Params.Factor Tca_workloads.Greendroid.accel_factor

let run ?telemetry ?par ?(cols = 48) ?(rows = 17) () =
  Tca_telemetry.Timing.with_span telemetry "fig7.run" @@ fun () ->
  let freqs = Tca_util.Sweep.logspace_exn 1.0e-6 0.1 cols in
  let coverages = Tca_util.Sweep.linspace_exn 0.05 0.95 rows in
  List.concat_map
    (fun (core_name, core) ->
      List.map
        (fun mode ->
          let grid =
            Grid.compute_exn ?telemetry ?par core ~accel ~freqs ~coverages
              mode
          in
          {
            core_name;
            mode;
            grid;
            slowdown_fraction = Grid.slowdown_fraction grid;
          })
        Mode.all)
    [ ("HP", Presets.hp_core); ("LP", Presets.lp_core) ]

let heatmap_of m =
  let g = m.grid in
  (* Row 0 should be the highest coverage, like the paper's y axis. *)
  let nrows = Array.length g.Grid.coverages in
  let values =
    Array.init nrows (fun r -> g.Grid.cells.(nrows - 1 - r))
  in
  let row_labels =
    Array.init nrows (fun r ->
        Printf.sprintf "a=%.2f" g.Grid.coverages.(nrows - 1 - r))
  in
  let col_labels =
    Array.map (fun v -> Printf.sprintf "v=%.0e" v) g.Grid.freqs
  in
  let hm = Tca_util.Heatmap.make_exn ~values ~row_labels ~col_labels in
  let flip cells = List.map (fun (r, c) -> (nrows - 1 - r, c)) cells in
  let heap_curve =
    Grid.accelerator_curve_exn g
      ~granularity:Tca_workloads.Greendroid.heap_manager_granularity
  in
  let gd_curve =
    Grid.accelerator_curve_exn g
      ~granularity:(Tca_workloads.Greendroid.mean_granularity ())
  in
  let hm = Tca_util.Heatmap.overlay hm (flip heap_curve) 'H' in
  Tca_util.Heatmap.overlay hm (flip gd_curve) 'G'

(* Long-format export of every feasible cell; rendered only in the
   CSV/JSON views (the text view carries the heatmaps as notes). *)
let cells_table maps =
  let rows = ref [] in
  List.iter
    (fun m ->
      let g = m.grid in
      Array.iteri
        (fun r a ->
          Array.iteri
            (fun c v ->
              let speedup = g.Grid.cells.(r).(c) in
              if not (Float.is_nan speedup) then
                rows :=
                  [
                    A.text m.core_name;
                    A.text (Mode.to_string m.mode);
                    A.flt ~decimals:2 a;
                    A.sci v;
                    A.flt speedup;
                  ]
                  :: !rows)
            g.Grid.freqs)
        g.Grid.coverages)
    maps;
  A.table ~in_text:false ~name:"cells"
    ~headers:[ "core"; "mode"; "a"; "v"; "speedup" ]
    (List.rev !rows)

let artifact maps =
  A.make ~job:"fig7"
    ~title:
      "Fig. 7: predicted speedup/slowdown over (invocation frequency x \
       acceleratable fraction), A = 1.5"
    (A.Note
       "Overlays: H = heap-manager TCA locus (g = 53), G = mean GreenDroid \
        function locus"
    :: List.concat_map
         (fun m ->
           let title =
             Printf.sprintf
               "@ %s core, mode %s (slowdown region: %.0f%% of feasible \
                cells)"
               m.core_name (Mode.to_string m.mode)
               (100.0 *. m.slowdown_fraction)
           in
           [
             A.Note "";
             A.Note
               (String.trim (Tca_util.Heatmap.render ~title (heatmap_of m)));
           ])
         maps
    @ [ A.Table (cells_table maps) ])

let print maps = print_string (A.to_text (artifact maps))
let csv maps = A.table_csv (cells_table maps)
