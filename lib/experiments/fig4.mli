(** Fig. 4: analytical-model error against the cycle-level simulator over
    the adaptive synthetic microbenchmark, sweeping the number of
    accelerator instructions (which raises invocation frequency and the
    acceleratable fraction together, with randomly placed invocations). *)

val chunk_counts : quick:bool -> int list
(** The sweep: [10; 25; 50; 100; 200; 400] (plus 800 in the full run). *)

val run :
  ?telemetry:Tca_telemetry.Sink.t -> ?par:Tca_util.Parmap.t -> ?quick:bool ->
  unit -> Exp_common.validation_row list
(** [quick] (default false) shrinks the trace for test use; [?par]
    evaluates the chunk counts in parallel with identical rows. *)

val summary : Exp_common.validation_row list -> (Tca_model.Validate.summary, Tca_model.Diag.t) result
val trends_hold : Exp_common.validation_row list -> bool
val artifact : Exp_common.validation_row list -> Tca_engine.Artifact.t
val print : Exp_common.validation_row list -> unit
