open Tca_uarch
open Tca_workloads

let validation_core () = Config.hp ()

(* The model's t_commit is the whole front-end-visible barrier latency:
   the simulated commit depth plus the commit/dispatch handoff (one cycle
   to retire at the head, one for dispatch to restart). *)
let commit_handoff = 2

let model_core_of (cfg : Config.t) ~ipc =
  Tca_model.Params.core_exn ~ipc ~rob_size:cfg.Config.rob_size
    ~issue_width:cfg.Config.dispatch_width
    ~commit_stall:(float_of_int (cfg.Config.commit_depth + commit_handoff))
    ()

let coupling_of_mode = function
  | Tca_model.Mode.NL_NT -> Config.coupling_nl_nt
  | Tca_model.Mode.L_NT -> Config.coupling_l_nt
  | Tca_model.Mode.NL_T -> Config.coupling_nl_t
  | Tca_model.Mode.L_T -> Config.coupling_l_t

let mode_of_coupling (c : Config.coupling) =
  match (c.Config.allow_leading, c.Config.allow_trailing) with
  | false, false -> Tca_model.Mode.NL_NT
  | true, false -> Tca_model.Mode.L_NT
  | false, true -> Tca_model.Mode.NL_T
  | true, true -> Tca_model.Mode.L_T

let scenario_of_meta ?drain ?config (meta : Meta.t) ~latency =
  Tca_model.Params.scenario_exn ?drain ?config ~a:meta.Meta.a ~v:meta.Meta.v
    ~accel:(Tca_model.Params.Latency latency) ()

let meta_latency (meta : Meta.t) ~(cfg : Config.t) =
  let miss_extra_latency =
    match cfg.Config.mem.Mem_hier.l2 with
    | Some l2 -> l2.Cache.hit_latency
    | None -> cfg.Config.mem.Mem_hier.mem_latency
  in
  Meta.accel_latency_estimate meta
    ~l1_hit_latency:cfg.Config.mem.Mem_hier.l1.Cache.hit_latency
    ~miss_extra_latency ~mem_ports:cfg.Config.mem_ports ()

type validation_row = {
  workload : string;
  v : float;
  a : float;
  base_ipc : float;
  mode : Tca_model.Mode.t;
  sim_speedup : float;
  model_speedup : float;
  model_refill_speedup : float;
}

let error_pct r =
  100.0 *. (r.model_speedup -. r.sim_speedup) /. r.sim_speedup

let refill_error_pct r =
  100.0 *. (r.model_refill_speedup -. r.sim_speedup) /. r.sim_speedup

let validate_pair ?telemetry ?par ~cfg ~(pair : Meta.pair) ~latency () =
  let cmp =
    Tca_telemetry.Timing.with_span telemetry
      ("validate." ^ pair.Meta.meta.Meta.name)
      (fun () ->
        Simulator.compare_modes_exn ?telemetry ?par ~cfg
          ~baseline:pair.Meta.baseline ~accelerated:pair.Meta.accelerated ())
  in
  let ipc = cmp.Simulator.baseline.Sim_stats.ipc in
  let core = model_core_of cfg ~ipc in
  let scenario = scenario_of_meta pair.Meta.meta ~latency in
  let scenario_refill =
    scenario_of_meta ~drain:Tca_interval.Drain.Refill_aware pair.Meta.meta
      ~latency
  in
  List.map
    (fun (r : Simulator.mode_result) ->
      let mode = mode_of_coupling r.Simulator.coupling in
      {
        workload = pair.Meta.meta.Meta.name;
        v = pair.Meta.meta.Meta.v;
        a = pair.Meta.meta.Meta.a;
        base_ipc = ipc;
        mode;
        sim_speedup = r.Simulator.speedup;
        model_speedup = Tca_model.Equations.speedup_exn core scenario mode;
        model_refill_speedup =
          Tca_model.Equations.speedup_exn core scenario_refill mode;
      })
    cmp.Simulator.modes

(* Run each sweep item (workload generation + validation) as one task:
   fork a child sink per item, evaluate the items through [par], join the
   children back in item order. The concatenated rows and the merged
   trace are identical to a serial sweep's. *)
let par_rows ?telemetry ?(par = Tca_util.Parmap.serial) f items =
  let items = Array.of_list items in
  let sinks =
    Array.map (fun _ -> Option.map Tca_telemetry.Sink.fork telemetry) items
  in
  let results =
    par.Tca_util.Parmap.run
      (fun i -> f ~telemetry:sinks.(i) items.(i))
      (Array.init (Array.length items) Fun.id)
  in
  (match telemetry with
  | None -> ()
  | Some into ->
      Array.iter
        (function
          | Some child -> Tca_telemetry.Sink.join ~into child
          | None -> ())
        sinks);
  List.concat_map Fun.id (Array.to_list results)

let table_headers =
  [
    "workload"; "v"; "a"; "ipc"; "mode"; "sim"; "model"; "error";
    "model-rf"; "error-rf";
  ]

let validation_table rows =
  Tca_engine.Artifact.table ~name:"validation" ~headers:table_headers
    (List.map
       (fun r ->
         Tca_engine.Artifact.
           [
             text r.workload;
             flt ~decimals:5 r.v;
             flt ~decimals:4 r.a;
             flt ~decimals:2 r.base_ipc;
             text (Tca_model.Mode.to_string r.mode);
             flt r.sim_speedup;
             flt r.model_speedup;
             pct (error_pct r);
             flt r.model_refill_speedup;
             pct (refill_error_pct r);
           ])
       rows)

let rows_to_table rows =
  List.map
    (List.map Tca_engine.Artifact.cell_text)
    (validation_table rows).Tca_engine.Artifact.cells

let points_of_rows rows =
  List.map
    (fun r ->
      {
        Tca_model.Validate.id = Printf.sprintf "%s(v=%.5f)" r.workload r.v;
        mode = r.mode;
        measured = r.sim_speedup;
        estimated = r.model_speedup;
      })
    rows

let refill_points_of_rows rows =
  List.map
    (fun r ->
      {
        Tca_model.Validate.id = Printf.sprintf "%s(v=%.5f)" r.workload r.v;
        mode = r.mode;
        measured = r.sim_speedup;
        estimated = r.model_refill_speedup;
      })
    rows

let validation_summary_notes rows =
  let report label points =
    match Tca_model.Validate.summarize points with
    | Error d ->
        Printf.sprintf "%-22s summary unavailable: %s" label
          (Tca_model.Diag.to_string d)
    | Ok s ->
        Printf.sprintf
          "%-22s error |%%|: mean %.1f%%  median %.1f%%  max %.1f%%  (n = %d); \
           mode ranking preserved: %b"
          label s.Tca_model.Validate.mean_abs_pct
          s.Tca_model.Validate.median_abs_pct s.Tca_model.Validate.max_abs_pct
          s.Tca_model.Validate.n
          (Tca_model.Validate.trends_preserved ~tolerance:0.05 points)
  in
  [
    report "model (paper drain)" (points_of_rows rows);
    report "model (refill drain)" (refill_points_of_rows rows);
  ]

let print_validation_summary rows =
  List.iter print_endline (validation_summary_notes rows)

let validation_artifact ~job ~title ?(notes = []) rows =
  Tca_engine.Artifact.make ~job ~title
    ((List.map (fun n -> Tca_engine.Artifact.Note n) notes)
    @ Tca_engine.Artifact.Table (validation_table rows)
      :: List.map
           (fun n -> Tca_engine.Artifact.Note n)
           (validation_summary_notes rows))

(* The workload pair (baseline + accelerated traces) and the architect's
   latency estimate shared by [tca sim], [tca trace] and the
   [simulate.*] jobs. [size] <= 0 selects the workload's default. *)
type workload_kind = Synthetic | Heap | Dgemm | Hashmap | Regex | Strfn

let workload_kinds =
  [
    ("synthetic", Synthetic); ("heap", Heap); ("dgemm", Dgemm);
    ("hashmap", Hashmap); ("regex", Regex); ("strfn", Strfn);
  ]

let workload_pair ?telemetry ~cfg ?(size = 0) kind =
  Tca_telemetry.Timing.with_span telemetry "sim.workload" @@ fun () ->
  let auto_latency p = meta_latency p.Meta.meta ~cfg in
  match kind with
  | Synthetic ->
      let n_chunks = if size > 0 then size else 200 in
      let p =
        Synthetic.generate
          (Synthetic.config ~n_units:4000 ~n_chunks ~accel_latency:20 ())
      in
      (p, 20.0)
  | Heap ->
      let gap = if size > 0 then size else 100 in
      let p =
        Heap_workload.generate
          (Heap_workload.config ~n_calls:2000 ~app_instrs_per_call:gap ())
      in
      (p, float_of_int Tca_heap.Cost_model.accel_latency)
  | Dgemm ->
      let n = if size > 0 then size else 64 in
      let p = Dgemm_workload.pair (Dgemm_workload.config ~n ()) ~dim:4 in
      (p, auto_latency p)
  | Hashmap ->
      let gap = if size > 0 then size else 200 in
      let p, _ =
        Hashmap_workload.generate
          (Hashmap_workload.config ~n_lookups:1500 ~app_instrs_per_lookup:gap
             ())
      in
      (p, auto_latency p)
  | Regex ->
      let gap = if size > 0 then size else 800 in
      let p, _ =
        Regex_workload.generate
          (Regex_workload.config ~n_records:300 ~app_instrs_per_record:gap ())
      in
      (p, auto_latency p)
  | Strfn ->
      let gap = if size > 0 then size else 300 in
      let p, _ =
        Strfn_workload.generate
          (Strfn_workload.config ~n_calls:1000 ~app_instrs_per_call:gap ())
      in
      (p, auto_latency p)

(* Small instances of the six families for the golden Sim_stats tests:
   big enough to exercise every pipeline mechanism (accel reads/writes,
   branches, cache misses), small enough that ten full runs stay well
   under a second. Sizes are pinned — changing them invalidates the
   committed golden files. *)
let golden_pairs () =
  [
    ( "synthetic",
      Synthetic.generate
        (Synthetic.config ~n_units:100 ~n_chunks:10 ~accel_latency:20 ()) );
    ( "heap",
      Heap_workload.generate
        (Heap_workload.config ~n_calls:100 ~app_instrs_per_call:60 ()) );
    ( "dgemm",
      Dgemm_workload.pair (Dgemm_workload.config ~block:16 ~n:16 ()) ~dim:4 );
    ( "hashmap",
      fst
        (Hashmap_workload.generate
           (Hashmap_workload.config ~n_lookups:100 ~app_instrs_per_lookup:60
              ())) );
    ( "regex",
      fst
        (Regex_workload.generate
           (Regex_workload.config ~n_records:20 ~app_instrs_per_record:100 ()))
    );
    ( "strfn",
      fst
        (Strfn_workload.generate
           (Strfn_workload.config ~n_calls:100 ~app_instrs_per_call:60 ())) );
  ]

let validation_csv rows =
  Tca_engine.Artifact.table_csv
    (Tca_engine.Artifact.table ~name:"validation"
       ~headers:
         [
           "workload"; "v"; "a"; "base_ipc"; "mode"; "sim_speedup";
           "model_speedup"; "model_refill_speedup";
         ]
       (List.map
          (fun r ->
            Tca_engine.Artifact.
              [
                text r.workload;
                flt r.v;
                flt r.a;
                flt r.base_ipc;
                text (Tca_model.Mode.to_string r.mode);
                flt r.sim_speedup;
                flt r.model_speedup;
                flt r.model_refill_speedup;
              ])
          rows))
