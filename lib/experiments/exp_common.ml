open Tca_uarch
open Tca_workloads

let validation_core () = Config.hp ()

(* The model's t_commit is the whole front-end-visible barrier latency:
   the simulated commit depth plus the commit/dispatch handoff (one cycle
   to retire at the head, one for dispatch to restart). *)
let commit_handoff = 2

let model_core_of (cfg : Config.t) ~ipc =
  Tca_model.Params.core_exn ~ipc ~rob_size:cfg.Config.rob_size
    ~issue_width:cfg.Config.dispatch_width
    ~commit_stall:(float_of_int (cfg.Config.commit_depth + commit_handoff))
    ()

let coupling_of_mode = function
  | Tca_model.Mode.NL_NT -> Config.coupling_nl_nt
  | Tca_model.Mode.L_NT -> Config.coupling_l_nt
  | Tca_model.Mode.NL_T -> Config.coupling_nl_t
  | Tca_model.Mode.L_T -> Config.coupling_l_t

let mode_of_coupling (c : Config.coupling) =
  match (c.Config.allow_leading, c.Config.allow_trailing) with
  | false, false -> Tca_model.Mode.NL_NT
  | true, false -> Tca_model.Mode.L_NT
  | false, true -> Tca_model.Mode.NL_T
  | true, true -> Tca_model.Mode.L_T

let scenario_of_meta ?drain (meta : Meta.t) ~latency =
  Tca_model.Params.scenario_exn ?drain ~a:meta.Meta.a ~v:meta.Meta.v
    ~accel:(Tca_model.Params.Latency latency) ()

let meta_latency (meta : Meta.t) ~(cfg : Config.t) =
  let miss_extra_latency =
    match cfg.Config.mem.Mem_hier.l2 with
    | Some l2 -> l2.Cache.hit_latency
    | None -> cfg.Config.mem.Mem_hier.mem_latency
  in
  Meta.accel_latency_estimate meta
    ~l1_hit_latency:cfg.Config.mem.Mem_hier.l1.Cache.hit_latency
    ~miss_extra_latency ~mem_ports:cfg.Config.mem_ports ()

type validation_row = {
  workload : string;
  v : float;
  a : float;
  base_ipc : float;
  mode : Tca_model.Mode.t;
  sim_speedup : float;
  model_speedup : float;
  model_refill_speedup : float;
}

let error_pct r =
  100.0 *. (r.model_speedup -. r.sim_speedup) /. r.sim_speedup

let refill_error_pct r =
  100.0 *. (r.model_refill_speedup -. r.sim_speedup) /. r.sim_speedup

let validate_pair ?telemetry ~cfg ~(pair : Meta.pair) ~latency () =
  let cmp =
    Tca_telemetry.Timing.with_span telemetry
      ("validate." ^ pair.Meta.meta.Meta.name)
      (fun () ->
        Simulator.compare_modes_exn ?telemetry ~cfg
          ~baseline:pair.Meta.baseline ~accelerated:pair.Meta.accelerated ())
  in
  let ipc = cmp.Simulator.baseline.Sim_stats.ipc in
  let core = model_core_of cfg ~ipc in
  let scenario = scenario_of_meta pair.Meta.meta ~latency in
  let scenario_refill =
    scenario_of_meta ~drain:Tca_interval.Drain.Refill_aware pair.Meta.meta
      ~latency
  in
  List.map
    (fun (r : Simulator.mode_result) ->
      let mode = mode_of_coupling r.Simulator.coupling in
      {
        workload = pair.Meta.meta.Meta.name;
        v = pair.Meta.meta.Meta.v;
        a = pair.Meta.meta.Meta.a;
        base_ipc = ipc;
        mode;
        sim_speedup = r.Simulator.speedup;
        model_speedup = Tca_model.Equations.speedup_exn core scenario mode;
        model_refill_speedup =
          Tca_model.Equations.speedup_exn core scenario_refill mode;
      })
    cmp.Simulator.modes

let table_headers =
  [
    "workload"; "v"; "a"; "ipc"; "mode"; "sim"; "model"; "error";
    "model-rf"; "error-rf";
  ]

let rows_to_table rows =
  List.map
    (fun r ->
      [
        r.workload;
        Printf.sprintf "%.5f" r.v;
        Printf.sprintf "%.4f" r.a;
        Printf.sprintf "%.2f" r.base_ipc;
        Tca_model.Mode.to_string r.mode;
        Tca_util.Table.float_cell r.sim_speedup;
        Tca_util.Table.float_cell r.model_speedup;
        Printf.sprintf "%+.1f%%" (error_pct r);
        Tca_util.Table.float_cell r.model_refill_speedup;
        Printf.sprintf "%+.1f%%" (refill_error_pct r);
      ])
    rows

let points_of_rows rows =
  List.map
    (fun r ->
      {
        Tca_model.Validate.id = Printf.sprintf "%s(v=%.5f)" r.workload r.v;
        mode = r.mode;
        measured = r.sim_speedup;
        estimated = r.model_speedup;
      })
    rows

let refill_points_of_rows rows =
  List.map
    (fun r ->
      {
        Tca_model.Validate.id = Printf.sprintf "%s(v=%.5f)" r.workload r.v;
        mode = r.mode;
        measured = r.sim_speedup;
        estimated = r.model_refill_speedup;
      })
    rows

let print_validation_summary rows =
  let report label points =
    match Tca_model.Validate.summarize points with
    | Error d ->
        Printf.printf "%-22s summary unavailable: %s\n" label
          (Tca_model.Diag.to_string d)
    | Ok s ->
        Printf.printf
          "%-22s error |%%|: mean %.1f%%  median %.1f%%  max %.1f%%  (n = %d); \
           mode ranking preserved: %b\n"
          label s.Tca_model.Validate.mean_abs_pct
          s.Tca_model.Validate.median_abs_pct s.Tca_model.Validate.max_abs_pct
          s.Tca_model.Validate.n
          (Tca_model.Validate.trends_preserved ~tolerance:0.05 points)
  in
  report "model (paper drain)" (points_of_rows rows);
  report "model (refill drain)" (refill_points_of_rows rows)

let validation_csv rows =
  Tca_util.Csv.to_string
    ~header:
      [
        "workload"; "v"; "a"; "base_ipc"; "mode"; "sim_speedup";
        "model_speedup"; "model_refill_speedup";
      ]
    (List.map
       (fun r ->
         [
           r.workload;
           string_of_float r.v;
           string_of_float r.a;
           string_of_float r.base_ipc;
           Tca_model.Mode.to_string r.mode;
           string_of_float r.sim_speedup;
           string_of_float r.model_speedup;
           string_of_float r.model_refill_speedup;
         ])
       rows)
