(** Fig. 3: effective ILP in the execute stage across one interval
    (leading instructions, one TCA, trailing instructions) under the four
    modes, measured directly from the pipeline's per-cycle issue
    occupancy. *)

type timeline = {
  mode : Tca_model.Mode.t;
  cycles : int;
  issued : int array;  (** instructions entering execute, per cycle *)
}

val run :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  ?leading:int -> ?trailing:int -> ?accel_latency:int -> unit ->
  timeline list
(** Defaults: 150 leading μops, 150 trailing μops, 40-cycle TCA. The
    four couplings are simulated independently; [?par] runs them in
    parallel with identical results (per-coupling sinks joined in
    coupling order). *)

val artifact : timeline list -> Tca_engine.Artifact.t
(** Bar strips (one character per 2 cycles) as notes, plus a
    machine-readable timeline table in the CSV/JSON views only. *)

val print : timeline list -> unit
(** Renders each mode's issue activity as a bar strip (one character per
    2 cycles), striped sections showing the reduced-ILP regions. *)
