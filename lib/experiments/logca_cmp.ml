open Tca_model

type row = {
  g : float;
  logca : float;
  tca : (Mode.t * float) list;
}

let core = Presets.arm_a72
let coverage = 0.3
let accel_factor = 3.0

(* LogCA granularity here is instructions; the host computes them at
   1/IPC cycles each (compute_index), the accelerator at A x IPC. The
   invocation overhead matches the TCA model's commit stall; interface
   latency per instruction is small but non-zero (operand/result movement
   through the shared register file / L1). *)
let logca_params =
  Tca_logca.Logca.make
    ~latency:0.01
    ~overhead:core.Params.commit_stall
    ~compute_index:(1.0 /. core.Params.ipc)
    ~acceleration:accel_factor ()

let run ?(points = 17) () =
  let gs = Tca_util.Sweep.logspace_exn 10.0 1.0e9 points in
  let series =
    Granularity.series core ~a:coverage ~accel:(Params.Factor accel_factor) ~gs
  in
  Array.to_list
    (Array.mapi
       (fun i g ->
         {
           g;
           (* LogCA predicts kernel speedup; scale to whole-program via
              Amdahl with the same 30% coverage so the two are
              comparable. *)
           logca =
             (let k = Tca_logca.Logca.speedup logca_params g in
              1.0 /. (1.0 -. coverage +. (coverage /. k)));
           tca = List.map (fun (mode, pts) -> (mode, snd pts.(i))) series;
         })
       gs)

let print rows =
  print_endline
    "X1: LogCA (loosely-coupled model, Amdahl-scaled to 30% coverage) vs \
     the TCA model";
  let headers = [ "granularity"; "LogCA" ] @ List.map Mode.to_string Mode.all in
  Tca_util.Table.print ~headers
    (List.map
       (fun r ->
         [ Printf.sprintf "%.1e" r.g; Tca_util.Table.float_cell r.logca ]
         @ List.map
             (fun m -> Tca_util.Table.float_cell (List.assoc m r.tca))
             Mode.all)
       rows);
  (match Tca_logca.Logca.break_even logca_params with
  | Some g1 -> Printf.printf "LogCA break-even granularity g1 = %.1f\n" g1
  | None -> print_endline "LogCA never breaks even in range");
  Printf.printf "LogCA asymptotic kernel speedup = %.2f\n"
    (Tca_logca.Logca.asymptotic_speedup logca_params)
