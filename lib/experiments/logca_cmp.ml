open Tca_model

type row = {
  g : float;
  logca : float;
  tca : (Mode.t * float) list;
}

let core = Presets.arm_a72
let coverage = 0.3
let accel_factor = 3.0

(* LogCA granularity here is instructions; the host computes them at
   1/IPC cycles each (compute_index), the accelerator at A x IPC. The
   invocation overhead matches the TCA model's commit stall; interface
   latency per instruction is small but non-zero (operand/result movement
   through the shared register file / L1). *)
let logca_params =
  Tca_logca.Logca.make
    ~latency:0.01
    ~overhead:core.Params.commit_stall
    ~compute_index:(1.0 /. core.Params.ipc)
    ~acceleration:accel_factor ()

let run ?(points = 17) () =
  let gs = Tca_util.Sweep.logspace_exn 10.0 1.0e9 points in
  let series =
    Granularity.series core ~a:coverage ~accel:(Params.Factor accel_factor) ~gs
  in
  Array.to_list
    (Array.mapi
       (fun i g ->
         {
           g;
           (* LogCA predicts kernel speedup; scale to whole-program via
              Amdahl with the same 30% coverage so the two are
              comparable. *)
           logca =
             (let k = Tca_logca.Logca.speedup logca_params g in
              1.0 /. (1.0 -. coverage +. (coverage /. k)));
           tca = List.map (fun (mode, pts) -> (mode, snd pts.(i))) series;
         })
       gs)

let artifact rows =
  let module A = Tca_engine.Artifact in
  A.make ~job:"logca"
    ~title:
      "X1: LogCA (loosely-coupled model, Amdahl-scaled to 30% coverage) vs \
       the TCA model"
    [
      A.Table
        (A.table ~name:"comparison"
           ~headers:
             ([ "granularity"; "LogCA" ] @ List.map Mode.to_string Mode.all)
           (List.map
              (fun r ->
                [ A.sci r.g; A.flt r.logca ]
                @ List.map (fun m -> A.flt (List.assoc m r.tca)) Mode.all)
              rows));
      A.Note
        (match Tca_logca.Logca.break_even logca_params with
        | Some g1 -> Printf.sprintf "LogCA break-even granularity g1 = %.1f" g1
        | None -> "LogCA never breaks even in range");
      A.Note
        (Printf.sprintf "LogCA asymptotic kernel speedup = %.2f"
           (Tca_logca.Logca.asymptotic_speedup logca_params));
    ]

let print rows = print_string (Tca_engine.Artifact.to_text (artifact rows))
