(** Extension X7: hash-map TCA validation — the third real-world
    accelerator family from the paper's Fig. 2 markers (after the heap
    manager and DGEMM), validated model-vs-simulator across invocation
    frequencies like Fig. 5.

    Unlike the heap TCA, the hash-map TCA has data-dependent cost: the
    probe count (and so the software μops replaced and the TCA's line
    traffic) comes from the live table's collision structure. *)

val gaps : quick:bool -> int list

val run :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  ?quick:bool -> unit ->
  Exp_common.validation_row list * float
(** Rows plus the mean probes per lookup measured at the finest gap.
    [?par] evaluates the invocation gaps concurrently with identical
    rows and merged trace. *)

val artifact :
  Exp_common.validation_row list * float -> Tca_engine.Artifact.t

val print : Exp_common.validation_row list * float -> unit
