open Tca_model

type scenario_row = {
  name : string;
  core : Params.core;
  scenario : Params.scenario;
}

let scenarios =
  [
    {
      name = "heap manager (HP core)";
      core = Presets.hp_core;
      scenario =
        Params.scenario_exn ~a:0.35 ~v:(1.0 /. 150.0) ~accel:(Params.Latency 1.0)
          ();
    };
    {
      name = "GreenDroid function (LP core)";
      core = Presets.lp_core;
      scenario =
        Params.scenario_of_granularity_exn ~a:0.5 ~g:400.0
          ~accel:(Params.Factor Tca_workloads.Greendroid.accel_factor) ();
    };
    {
      name = "DGEMM 4x4 tile (HP core)";
      core = Presets.hp_core;
      scenario =
        Params.scenario_exn ~a:0.95 ~v:(1.0 /. 300.0) ~accel:(Params.Latency 14.0)
          ();
    };
  ]

let pareto row =
  let all = Hw_cost.designs row.core row.scenario in
  (Hw_cost.pareto_front all, Hw_cost.dominated all)

let energy row = Energy.evaluate (Energy.make ()) row.core row.scenario

module A = Tca_engine.Artifact

let pareto_items row =
  let front, _ = pareto row in
  [
    A.Note "";
    A.Note (Printf.sprintf "-- %s --" row.name);
    A.Table
      (A.table
         ~name:("pareto: " ^ row.name)
         ~headers:[ "mode"; "hw cost"; "speedup"; "status" ]
         (List.map
            (fun (d : Hw_cost.design) ->
              let on_front =
                List.exists
                  (fun (f : Hw_cost.design) -> f.Hw_cost.mode = d.Hw_cost.mode)
                  front
              in
              [
                A.text (Mode.to_string d.Hw_cost.mode);
                A.flt ~decimals:2 d.Hw_cost.cost;
                A.flt d.Hw_cost.speedup;
                A.text (if on_front then "pareto" else "dominated");
              ])
            (Hw_cost.designs row.core row.scenario)));
    A.Note
      (match
         Hw_cost.cheapest_at_least
           (Hw_cost.designs row.core row.scenario)
           ~speedup:1.0
       with
      | Some d ->
          Printf.sprintf "cheapest design avoiding slowdown: %s (cost %.2f)"
            (Mode.to_string d.Hw_cost.mode) d.Hw_cost.cost
      | None -> "no design avoids slowdown in this scenario");
  ]

let energy_items row =
  [
    A.Note "";
    A.Note
      (Printf.sprintf "-- %s: energy (static 0.5/cycle, accel at 0.2x) --"
         row.name);
    A.Table
      (A.table
         ~name:("energy: " ^ row.name)
         ~headers:[ "mode"; "speedup"; "rel. energy"; "EDP" ]
         (List.map
            (fun (v : Energy.verdict) ->
              [
                A.text (Mode.to_string v.Energy.mode);
                A.flt v.Energy.speedup;
                A.flt v.Energy.relative_energy;
                A.flt v.Energy.edp;
              ])
            (energy row)));
    A.Note
      (Printf.sprintf
         "energy break-even speedup: %.3f (modes below this line waste energy)"
         (Energy.energy_break_even_speedup (Energy.make ()) row.core
            row.scenario));
  ]

let sensitivity_items row =
  let best, _ = Equations.best_mode_exn row.core row.scenario in
  [
    A.Note "";
    A.Note
      (Printf.sprintf "-- %s: sensitivity tornado (mode %s, +/-20%%) --"
         row.name (Mode.to_string best));
    A.Table
      (A.table
         ~name:("sensitivity: " ^ row.name)
         ~headers:Sensitivity.headers
         (List.map (List.map A.text)
            (Sensitivity.rows
               (Sensitivity.swings_exn row.core row.scenario best))));
    A.Note
      (Printf.sprintf "best-mode decision stable under +/-20%%: %b"
         (Sensitivity.decision_stable_exn row.core row.scenario));
  ]

let artifact () =
  A.make ~job:"design"
    ~title:
      "X3: design-space analysis (paper Section VIII): Pareto fronts, \
       energy, sensitivity"
    (List.concat_map
       (fun row -> pareto_items row @ energy_items row @ sensitivity_items row)
       scenarios)

let print () = print_string (A.to_text (artifact ()))
