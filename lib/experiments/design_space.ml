open Tca_model

type scenario_row = {
  name : string;
  core : Params.core;
  scenario : Params.scenario;
}

let scenarios =
  [
    {
      name = "heap manager (HP core)";
      core = Presets.hp_core;
      scenario =
        Params.scenario_exn ~a:0.35 ~v:(1.0 /. 150.0) ~accel:(Params.Latency 1.0)
          ();
    };
    {
      name = "GreenDroid function (LP core)";
      core = Presets.lp_core;
      scenario =
        Params.scenario_of_granularity_exn ~a:0.5 ~g:400.0
          ~accel:(Params.Factor Tca_workloads.Greendroid.accel_factor) ();
    };
    {
      name = "DGEMM 4x4 tile (HP core)";
      core = Presets.hp_core;
      scenario =
        Params.scenario_exn ~a:0.95 ~v:(1.0 /. 300.0) ~accel:(Params.Latency 14.0)
          ();
    };
  ]

let pareto row =
  let all = Hw_cost.designs row.core row.scenario in
  (Hw_cost.pareto_front all, Hw_cost.dominated all)

let energy row = Energy.evaluate (Energy.make ()) row.core row.scenario

let print_pareto row =
  let front, dominated = pareto row in
  Printf.printf "\n-- %s --\n" row.name;
  Tca_util.Table.print
    ~headers:[ "mode"; "hw cost"; "speedup"; "status" ]
    (List.map
       (fun (d : Hw_cost.design) ->
         let on_front =
           List.exists (fun (f : Hw_cost.design) -> f.Hw_cost.mode = d.Hw_cost.mode) front
         in
         [
           Mode.to_string d.Hw_cost.mode;
           Tca_util.Table.float_cell ~decimals:2 d.Hw_cost.cost;
           Tca_util.Table.float_cell d.Hw_cost.speedup;
           (if on_front then "pareto" else "dominated");
         ])
       (Hw_cost.designs row.core row.scenario));
  ignore dominated;
  match Hw_cost.cheapest_at_least (Hw_cost.designs row.core row.scenario) ~speedup:1.0 with
  | Some d ->
      Printf.printf "cheapest design avoiding slowdown: %s (cost %.2f)\n"
        (Mode.to_string d.Hw_cost.mode) d.Hw_cost.cost
  | None -> print_endline "no design avoids slowdown in this scenario"

let print_energy row =
  Printf.printf "\n-- %s: energy (static 0.5/cycle, accel at 0.2x) --\n" row.name;
  Tca_util.Table.print
    ~headers:[ "mode"; "speedup"; "rel. energy"; "EDP" ]
    (List.map
       (fun (v : Energy.verdict) ->
         [
           Mode.to_string v.Energy.mode;
           Tca_util.Table.float_cell v.Energy.speedup;
           Tca_util.Table.float_cell v.Energy.relative_energy;
           Tca_util.Table.float_cell v.Energy.edp;
         ])
       (energy row));
  Printf.printf
    "energy break-even speedup: %.3f (modes below this line waste energy)\n"
    (Energy.energy_break_even_speedup (Energy.make ()) row.core row.scenario)

let print_sensitivity row =
  let best, _ = Equations.best_mode_exn row.core row.scenario in
  Printf.printf "\n-- %s: sensitivity tornado (mode %s, +/-20%%) --\n" row.name
    (Mode.to_string best);
  Tca_util.Table.print ~headers:Sensitivity.headers
    (Sensitivity.rows (Sensitivity.swings_exn row.core row.scenario best));
  Printf.printf "best-mode decision stable under +/-20%%: %b\n"
    (Sensitivity.decision_stable_exn row.core row.scenario)

let print () =
  print_endline
    "X3: design-space analysis (paper Section VIII): Pareto fronts, \
     energy, sensitivity";
  List.iter
    (fun row ->
      print_pareto row;
      print_energy row;
      print_sensitivity row)
    scenarios
