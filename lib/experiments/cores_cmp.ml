open Tca_uarch
open Tca_workloads

type core_result = {
  core_name : string;
  base_ipc : float;
  mode_speedups : (Tca_model.Mode.t * float) list;
  spread : float;
}

let run ?telemetry ?par ?(quick = false) () =
  let n_calls = if quick then 800 else 2000 in
  let hcfg =
    Heap_workload.config ~n_calls ~app_instrs_per_call:100 ~seed:31 ()
  in
  let pair =
    Tca_telemetry.Timing.with_span telemetry "sim.workload" (fun () ->
        Heap_workload.generate hcfg)
  in
  List.map
    (fun (core_name, cfg) ->
      let cmp =
        Simulator.compare_modes_exn ?telemetry ?par ~cfg
          ~baseline:pair.Meta.baseline ~accelerated:pair.Meta.accelerated ()
      in
      let mode_speedups =
        List.map
          (fun (r : Simulator.mode_result) ->
            (Exp_common.mode_of_coupling r.Simulator.coupling, r.Simulator.speedup))
          cmp.Simulator.modes
      in
      let values = List.map snd mode_speedups in
      let best = List.fold_left Float.max (List.hd values) values in
      let worst = List.fold_left Float.min (List.hd values) values in
      {
        core_name;
        base_ipc = cmp.Simulator.baseline.Sim_stats.ipc;
        mode_speedups;
        spread = (best -. worst) /. worst;
      })
    [ ("HP", Config.hp ()); ("LP", Config.lp ()) ]

let hp_more_sensitive results =
  match results with
  | [ hp; lp ] -> hp.spread > lp.spread
  | _ -> false

let artifact results =
  let module A = Tca_engine.Artifact in
  A.make ~job:"cores"
    ~title:"X6: core sensitivity to TCA mode (heap workload, simulator-measured)"
    [
      A.Table
        (A.table ~name:"cores"
           ~headers:
             [ "core"; "base IPC"; "NL_NT"; "L_NT"; "NL_T"; "L_T"; "spread" ]
           (List.map
              (fun r ->
                A.text r.core_name
                :: A.flt ~decimals:2 r.base_ipc
                :: List.map
                     (fun m -> A.flt (List.assoc m r.mode_speedups))
                     Tca_model.Mode.all
                @ [ A.text (Tca_util.Table.pct_cell r.spread) ])
              results));
      A.Note
        (Printf.sprintf
           "paper observation 1 (HP cores more mode-sensitive) holds in the \
            simulator: %b"
           (hp_more_sensitive results));
    ]

let print results = print_string (Tca_engine.Artifact.to_text (artifact results))
