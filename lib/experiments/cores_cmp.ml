open Tca_uarch
open Tca_workloads

type core_result = {
  core_name : string;
  base_ipc : float;
  mode_speedups : (Tca_model.Mode.t * float) list;
  spread : float;
}

let run ?(quick = false) () =
  let n_calls = if quick then 800 else 2000 in
  let hcfg =
    Heap_workload.config ~n_calls ~app_instrs_per_call:100 ~seed:31 ()
  in
  let pair = Heap_workload.generate hcfg in
  List.map
    (fun (core_name, cfg) ->
      let cmp =
        Simulator.compare_modes_exn ~cfg ~baseline:pair.Meta.baseline
          ~accelerated:pair.Meta.accelerated ()
      in
      let mode_speedups =
        List.map
          (fun (r : Simulator.mode_result) ->
            (Exp_common.mode_of_coupling r.Simulator.coupling, r.Simulator.speedup))
          cmp.Simulator.modes
      in
      let values = List.map snd mode_speedups in
      let best = List.fold_left Float.max (List.hd values) values in
      let worst = List.fold_left Float.min (List.hd values) values in
      {
        core_name;
        base_ipc = cmp.Simulator.baseline.Sim_stats.ipc;
        mode_speedups;
        spread = (best -. worst) /. worst;
      })
    [ ("HP", Config.hp ()); ("LP", Config.lp ()) ]

let hp_more_sensitive results =
  match results with
  | [ hp; lp ] -> hp.spread > lp.spread
  | _ -> false

let print results =
  print_endline
    "X6: core sensitivity to TCA mode (heap workload, simulator-measured)";
  Tca_util.Table.print
    ~headers:[ "core"; "base IPC"; "NL_NT"; "L_NT"; "NL_T"; "L_T"; "spread" ]
    (List.map
       (fun r ->
         r.core_name
         :: Tca_util.Table.float_cell ~decimals:2 r.base_ipc
         :: List.map
              (fun m -> Tca_util.Table.float_cell (List.assoc m r.mode_speedups))
              Tca_model.Mode.all
         @ [ Tca_util.Table.pct_cell r.spread ])
       results);
  Printf.printf
    "paper observation 1 (HP cores more mode-sensitive) holds in the \
     simulator: %b\n"
    (hp_more_sensitive results)
