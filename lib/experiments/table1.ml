open Tca_model
module A = Tca_engine.Artifact

let preset_cell (c : Params.core) =
  Printf.sprintf "ipc=%.1f rob=%d issue=%d t_commit=%.0f" c.Params.ipc
    c.Params.rob_size c.Params.issue_width c.Params.commit_stall

let rows () =
  List.map (fun (sym, meaning) -> [ sym; meaning ]) Params.glossary

let artifact () =
  A.make ~job:"table1" ~title:"Table I: analytical model parameters"
    [
      A.Table
        (A.table ~name:"parameters" ~headers:[ "variable"; "name" ]
           (List.map (List.map A.text) (rows ())));
      A.Note "";
      A.Note "Core presets:";
      A.Table
        (A.table ~name:"presets" ~headers:[ "preset"; "parameters" ]
           (List.map
              (fun name ->
                [
                  A.text name;
                  A.text (preset_cell (Option.get (Presets.by_name name)));
                ])
              Presets.names));
    ]

let print () = print_string (A.to_text (artifact ()))
