open Tca_uarch
open Tca_workloads
module A = Tca_engine.Artifact

type timeline = {
  mode : Tca_model.Mode.t;
  cycles : int;
  issued : int array;
}

(* Compute-only mix: a single short interval has no time to warm caches
   or predictors, and cold misses would mask the coupling effects the
   figure illustrates. *)
let app_config =
  {
    Codegen.model_friendly_config with
    Codegen.working_set_bytes = 512;
    load_every = 0;
    store_every = 0;
    dep_window = 6;
  }

let interval_trace ~leading ~trailing ~accel_latency =
  let rng = Tca_util.Prng.create 7 in
  let gen = Codegen.create ~config:app_config ~rng () in
  let b = Trace.Builder.create () in
  Codegen.emit_block gen b leading;
  Trace.Builder.add b
    (Isa.accel ~compute_latency:accel_latency ~reads:[||] ~writes:[||] ());
  Codegen.emit_block gen b trailing;
  Trace.Builder.build b

let run ?telemetry ?(par = Tca_util.Parmap.serial) ?(leading = 150)
    ?(trailing = 150) ?(accel_latency = 40) () =
  Tca_telemetry.Timing.with_span telemetry "fig3.run" @@ fun () ->
  let trace = interval_trace ~leading ~trailing ~accel_latency in
  let couplings = Array.of_list Config.all_couplings in
  let sinks =
    Array.map (fun _ -> Option.map Tca_telemetry.Sink.fork telemetry) couplings
  in
  let timelines =
    par.Tca_util.Parmap.run
      (fun i ->
        let coupling = couplings.(i) in
        (* One short interval: use a perfect predictor so the strip shows
           the TCA coupling effects, not cold-predictor noise. *)
        let cfg =
          {
            (Config.with_coupling (Exp_common.validation_core ()) coupling) with
            Config.bpred = Bpred.Perfect;
          }
        in
        let buf = ref [] in
        let probe =
          {
            Pipeline.on_cycle =
              (fun ~cycle:_ ~dispatched:_ ~issued ~executing:_
                   ~rob_occupancy:_ -> buf := issued :: !buf);
          }
        in
        let stats = Pipeline.run_exn ~probe ?telemetry:sinks.(i) cfg trace in
        {
          mode = Exp_common.mode_of_coupling coupling;
          cycles = stats.Sim_stats.cycles;
          issued = Array.of_list (List.rev !buf);
        })
      (Array.init (Array.length couplings) Fun.id)
  in
  (match telemetry with
  | None -> ()
  | Some into ->
      Array.iter
        (function
          | Some child -> Tca_telemetry.Sink.join ~into child
          | None -> ())
        sinks);
  Array.to_list timelines

let bar = [| ' '; '.'; ':'; '|'; '#' |]

let strip t =
  let n = Array.length t.issued in
  let buf = Buffer.create (n / 2) in
  let i = ref 0 in
  while !i < n do
    let a = t.issued.(!i) in
    let b = if !i + 1 < n then t.issued.(!i + 1) else a in
    let level = min 4 ((a + b + 1) / 2) in
    Buffer.add_char buf bar.(level);
    i := !i + 2
  done;
  Buffer.contents buf

let artifact timelines =
  A.make ~job:"fig3"
    ~title:
      "Fig. 3: per-cycle issue activity for one interval (leading + TCA + \
       trailing) under each mode"
    (A.Note
       "(each character = 2 cycles; ' ' idle, '.' low ILP ... '#' full \
        width)"
    :: List.map
         (fun t ->
           A.Note
             (Printf.sprintf "%-6s (%4d cycles) %s"
                (Tca_model.Mode.to_string t.mode)
                t.cycles (strip t)))
         timelines
    @ [
        A.Table
          (A.table ~in_text:false ~name:"timelines"
             ~headers:[ "mode"; "cycles"; "activity" ]
             (List.map
                (fun t ->
                  [
                    A.text (Tca_model.Mode.to_string t.mode);
                    A.int t.cycles;
                    A.text (strip t);
                  ])
                timelines));
      ])

let print timelines = print_string (A.to_text (artifact timelines))
