open Tca_uarch
open Tca_workloads

type timeline = {
  mode : Tca_model.Mode.t;
  cycles : int;
  issued : int array;
}

(* Compute-only mix: a single short interval has no time to warm caches
   or predictors, and cold misses would mask the coupling effects the
   figure illustrates. *)
let app_config =
  {
    Codegen.model_friendly_config with
    Codegen.working_set_bytes = 512;
    load_every = 0;
    store_every = 0;
    dep_window = 6;
  }

let interval_trace ~leading ~trailing ~accel_latency =
  let rng = Tca_util.Prng.create 7 in
  let gen = Codegen.create ~config:app_config ~rng () in
  let b = Trace.Builder.create () in
  Codegen.emit_block gen b leading;
  Trace.Builder.add b
    (Isa.accel ~compute_latency:accel_latency ~reads:[||] ~writes:[||] ());
  Codegen.emit_block gen b trailing;
  Trace.Builder.build b

let run ?telemetry ?(leading = 150) ?(trailing = 150) ?(accel_latency = 40) () =
  Tca_telemetry.Timing.with_span telemetry "fig3.run" @@ fun () ->
  let trace = interval_trace ~leading ~trailing ~accel_latency in
  List.map
    (fun coupling ->
      (* One short interval: use a perfect predictor so the strip shows
         the TCA coupling effects, not cold-predictor noise. *)
      let cfg =
        {
          (Config.with_coupling (Exp_common.validation_core ()) coupling) with
          Config.bpred = Bpred.Perfect;
        }
      in
      let buf = ref [] in
      let probe =
        {
          Pipeline.on_cycle =
            (fun ~cycle:_ ~dispatched:_ ~issued ~executing:_ ~rob_occupancy:_ ->
              buf := issued :: !buf);
        }
      in
      let stats = Pipeline.run_exn ~probe ?telemetry cfg trace in
      {
        mode = Exp_common.mode_of_coupling coupling;
        cycles = stats.Sim_stats.cycles;
        issued = Array.of_list (List.rev !buf);
      })
    Config.all_couplings

let bar = [| ' '; '.'; ':'; '|'; '#' |]

let print timelines =
  print_endline
    "Fig. 3: per-cycle issue activity for one interval (leading + TCA + \
     trailing) under each mode";
  print_endline
    "(each character = 2 cycles; ' ' idle, '.' low ILP ... '#' full width)";
  List.iter
    (fun t ->
      let n = Array.length t.issued in
      let buf = Buffer.create (n / 2) in
      let i = ref 0 in
      while !i < n do
        let a = t.issued.(!i) in
        let b = if !i + 1 < n then t.issued.(!i + 1) else a in
        let level = min 4 ((a + b + 1) / 2) in
        Buffer.add_char buf bar.(level);
        i := !i + 2
      done;
      Printf.printf "%-6s (%4d cycles) %s\n"
        (Tca_model.Mode.to_string t.mode)
        t.cycles (Buffer.contents buf))
    timelines
