open Tca_model

type row = {
  p_speculate : float;
  speedup_t : float;
  speedup_nt : float;
}

let core = Presets.hp_core

let scenario =
  Params.scenario_exn ~a:0.35 ~v:(1.0 /. 150.0) ~accel:(Params.Latency 1.0) ()

let run ?(points = 11) () =
  let ps = Tca_util.Sweep.linspace_exn 0.0 1.0 points in
  Array.to_list
    (Array.map
       (fun p ->
         {
           p_speculate = p;
           speedup_t = Partial.speedup core scenario ~trailing:true ~p_speculate:p;
           speedup_nt =
             Partial.speedup core scenario ~trailing:false ~p_speculate:p;
         })
       ps)

let confidence_for_95pct () =
  let full = Equations.speedup_exn core scenario Mode.L_T in
  Partial.required_confidence core scenario ~trailing:true
    ~target_speedup:(0.95 *. full)

type sim_row = {
  p : float;
  sim_speedup : float;
  model_speedup : float;
}

let validate ?telemetry ?(par = Tca_util.Parmap.serial) ?(quick = false) () =
  let open Tca_uarch in
  let n_calls = if quick then 600 else 1500 in
  let pair =
    Tca_workloads.Heap_workload.generate
      (Tca_workloads.Heap_workload.config ~n_calls ~app_instrs_per_call:100
         ~seed:61 ())
  in
  let cfg =
    Config.with_coupling (Exp_common.validation_core ()) Config.coupling_l_t
  in
  let baseline = Pipeline.run_exn ?telemetry cfg pair.Tca_workloads.Meta.baseline in
  let ipc = baseline.Sim_stats.ipc in
  let model_core = Exp_common.model_core_of cfg ~ipc in
  let s =
    Exp_common.scenario_of_meta pair.Tca_workloads.Meta.meta ~latency:1.0
  in
  let ps = [| 0.0; 0.25; 0.5; 0.75; 1.0 |] in
  let sinks =
    Array.map (fun _ -> Option.map Tca_telemetry.Sink.fork telemetry) ps
  in
  let eval i =
    let p = ps.(i) in
    let run_cfg = { cfg with Config.tca_speculate_fraction = Some p } in
    let stats =
      Pipeline.run_exn ?telemetry:sinks.(i) run_cfg
        pair.Tca_workloads.Meta.accelerated
    in
    {
      p;
      sim_speedup = Sim_stats.speedup_exn ~baseline ~accelerated:stats;
      model_speedup = Partial.speedup model_core s ~trailing:true ~p_speculate:p;
    }
  in
  let rows =
    par.Tca_util.Parmap.run eval (Array.init (Array.length ps) Fun.id)
  in
  (match telemetry with
  | Some into ->
      Array.iter
        (function
          | Some child -> Tca_telemetry.Sink.join ~into child | None -> ())
        sinks
  | None -> ());
  Array.to_list rows

let monotone rows =
  let rec go = function
    | a :: (b :: _ as rest) -> a.sim_speedup <= b.sim_speedup +. 0.02 && go rest
    | _ -> true
  in
  go rows

let artifact ?telemetry ?par ?quick rows =
  let module A = Tca_engine.Artifact in
  let sim = validate ?telemetry ?par ?quick () in
  A.make ~job:"partial"
    ~title:
      "X2: partial speculation (heap scenario, HP core) — speedup vs \
       speculation coverage p"
    [
      A.Table
        (A.table ~name:"blend"
           ~headers:
             [ "p"; "trailing (L_T..NL_T)"; "no trailing (L_NT..NL_NT)" ]
           (List.map
              (fun r ->
                [
                  A.flt ~decimals:1 r.p_speculate;
                  A.flt r.speedup_t;
                  A.flt r.speedup_nt;
                ])
              rows));
      A.Note
        (match confidence_for_95pct () with
        | Some p ->
            Printf.sprintf
              "speculation coverage for 95%% of full L_T speedup: p = %.2f" p
        | None -> "95% of full L_T speedup unreachable by blending");
      A.Note
        "simulator cross-check (heap workload, per-invocation speculation \
         coin, trailing allowed):";
      A.Table
        (A.table ~name:"sim-crosscheck" ~headers:[ "p"; "sim"; "model"; "error" ]
           (List.map
              (fun r ->
                [
                  A.flt ~decimals:2 r.p;
                  A.flt r.sim_speedup;
                  A.flt r.model_speedup;
                  A.pct
                    (100.0
                    *. (r.model_speedup -. r.sim_speedup)
                    /. r.sim_speedup);
                ])
              sim));
      A.Note
        (Printf.sprintf "simulated speedup grows with speculation coverage: %b"
           (monotone sim));
    ]

let print rows = print_string (Tca_engine.Artifact.to_text (artifact rows))
