(** Extension X10: multi-unit TCA validation — the three two-unit
    compositions of {!Tca_workloads.Multi_tca} (alternating, chained,
    contended) run through the simulator under all four couplings and
    compared against the composed analytical model
    ({!Tca_model.Equations.composed_speedup}), with the same error-band
    methodology as the single-unit validations; plus the model-only
    speedup-vs-chained-fraction sweep that exhibits the commit-port
    contention term. *)

val unit_latency :
  Tca_workloads.Multi_tca.scenario ->
  Tca_workloads.Multi_tca.unit_usage ->
  cfg:Tca_uarch.Config.t ->
  float
(** Architect's per-invocation latency estimate for one unit: its
    compute latency plus the scenario's shared memory-time estimate
    (see {!Exp_common.meta_latency}). *)

val composition_of :
  ?drain:Tca_interval.Drain.spec ->
  Tca_workloads.Multi_tca.scenario ->
  cfg:Tca_uarch.Config.t ->
  Tca_model.Params.composition
(** The composed-model inputs read off a scenario: per-unit [a_i]/[v_i]
    from the usage counts, per-unit {!unit_latency}, the scenario's
    chained fraction, shared commit port. *)

val validate :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  cfg:Tca_uarch.Config.t ->
  Tca_workloads.Multi_tca.scenario ->
  Exp_common.validation_row list * Tca_uarch.Simulator.comparison
(** Install the scenario's unit table, run baseline + four couplings,
    and score the composed model (paper-default and refill-aware drain)
    against the simulator — one row per mode, plus the raw comparison
    for the per-unit counter breakdown. *)

val scenarios :
  ?quick:bool -> unit -> Tca_workloads.Multi_tca.scenario list

val run :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  ?quick:bool ->
  unit ->
  (Tca_workloads.Multi_tca.scenario
  * (Exp_common.validation_row list * Tca_uarch.Simulator.comparison))
  list
(** All three scenarios; [?par] evaluates them concurrently with
    identical rows and merged trace. *)

val artifact :
  (Tca_workloads.Multi_tca.scenario
  * (Exp_common.validation_row list * Tca_uarch.Simulator.comparison))
  list ->
  Tca_engine.Artifact.t
(** Per-scenario composition notes, the standard validation table with
    error-band summary, and the per-unit simulator counter table. *)

val sweep :
  ?points:int ->
  ?core:Tca_model.Params.core ->
  unit ->
  Tca_model.Params.core
  * Tca_model.Params.composition
  * (float
    * (Tca_model.Mode.t * float) list
    * (Tca_model.Mode.t * float) list)
    list
(** Composed-model speedups for all four modes as the chained fraction
    sweeps [0, 1], once with a shared and once with private commit
    ports, on the chained scenario's unit mix. *)

val sweep_artifact :
  Tca_model.Params.core
  * Tca_model.Params.composition
  * (float
    * (Tca_model.Mode.t * float) list
    * (Tca_model.Mode.t * float) list)
    list ->
  Tca_engine.Artifact.t

val print :
  (Tca_workloads.Multi_tca.scenario
  * (Exp_common.validation_row list * Tca_uarch.Simulator.comparison))
  list ->
  unit
