(** Fig. 7: heatmaps of predicted speedup (and slowdown) over invocation
    frequency x acceleratable fraction, for the high-performance and
    low-performance cores under each of the four modes, with the
    heap-manager and GreenDroid fixed-granularity curves overlaid.
    A = 1.5 throughout, as in the paper's energy-motivated scenario. *)

type map = {
  core_name : string;
  mode : Tca_model.Mode.t;
  grid : Tca_model.Grid.t;
  slowdown_fraction : float;
}

val run :
  ?telemetry:Tca_telemetry.Sink.t -> ?par:Tca_util.Parmap.t ->
  ?cols:int -> ?rows:int -> unit -> map list
(** Default 48 columns (v in 10^-6 .. 10^-1, log) x 17 rows (a in
    0.05 .. 0.95). Eight maps: 2 cores x 4 modes. [?par] parallelises
    each grid's row sweep with identical results. *)

val artifact : map list -> Tca_engine.Artifact.t
(** Heatmaps as notes in the text view; the long-format cell table only
    in the CSV/JSON views. *)

val print : map list -> unit
(** ASCII heatmaps with 'H' marking the heap-manager curve and 'G' the
    mean GreenDroid-function curve. *)

val csv : map list -> string
(** Long format: core, mode, coverage, frequency, speedup (feasible cells
    only). *)
