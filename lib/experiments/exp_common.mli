(** Shared plumbing for the figure/table drivers: the validation core,
    coupling/mode conversion, and the meta-to-model-input translation. *)

val validation_core : unit -> Tca_uarch.Config.t
(** The simulated core all validation experiments run on (the
    high-performance preset, as the paper's gem5 configuration is the
    detailed one). *)

val model_core_of :
  Tca_uarch.Config.t -> ipc:float -> Tca_model.Params.core
(** Analytical-model core parameters read off a simulator configuration
    plus the measured baseline IPC. *)

val coupling_of_mode : Tca_model.Mode.t -> Tca_uarch.Config.coupling
val mode_of_coupling : Tca_uarch.Config.coupling -> Tca_model.Mode.t

val scenario_of_meta :
  ?drain:Tca_interval.Drain.spec ->
  Tca_workloads.Meta.t -> latency:float -> Tca_model.Params.scenario
(** Scenario with an explicit accelerator latency (cycles); [drain]
    defaults to the paper's [Auto] estimator. *)

val meta_latency :
  Tca_workloads.Meta.t -> cfg:Tca_uarch.Config.t -> float
(** The architect's latency estimate for the workload's TCA: compute
    latency plus first-order memory time through the configured L1 and
    ports (see {!Tca_workloads.Meta.accel_latency_estimate}). *)

type validation_row = {
  workload : string;
  v : float;
  a : float;
  base_ipc : float;
  mode : Tca_model.Mode.t;
  sim_speedup : float;
  model_speedup : float;  (** paper-default drain estimator *)
  model_refill_speedup : float;
      (** refill-aware drain estimator (see {!Tca_interval.Drain.spec}) *)
}

val error_pct : validation_row -> float
(** Paper-default model vs simulator. *)

val refill_error_pct : validation_row -> float

val validate_pair :
  ?telemetry:Tca_telemetry.Sink.t ->
  cfg:Tca_uarch.Config.t ->
  pair:Tca_workloads.Meta.pair ->
  latency:float ->
  unit ->
  validation_row list
(** Run baseline + four couplings in the simulator, evaluate the model
    with the measured baseline IPC, and return one row per mode. With
    [?telemetry], the five simulator runs share the sink and the whole
    point is wrapped in a [validate.<workload>] wall-clock span. *)

val rows_to_table : validation_row list -> string list list
val table_headers : string list

val points_of_rows : validation_row list -> Tca_model.Validate.point list
(** Points under the paper-default drain estimator. *)

val refill_points_of_rows :
  validation_row list -> Tca_model.Validate.point list

val print_validation_summary : validation_row list -> unit
(** Both estimators' error summaries plus the trend-preservation flags. *)

val validation_csv : validation_row list -> string
(** Machine-readable form of the validation rows. *)
