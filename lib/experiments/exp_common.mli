(** Shared plumbing for the figure/table drivers: the validation core,
    coupling/mode conversion, and the meta-to-model-input translation. *)

val validation_core : unit -> Tca_uarch.Config.t
(** The simulated core all validation experiments run on (the
    high-performance preset, as the paper's gem5 configuration is the
    detailed one). *)

val model_core_of :
  Tca_uarch.Config.t -> ipc:float -> Tca_model.Params.core
(** Analytical-model core parameters read off a simulator configuration
    plus the measured baseline IPC. *)

val coupling_of_mode : Tca_model.Mode.t -> Tca_uarch.Config.coupling
val mode_of_coupling : Tca_uarch.Config.coupling -> Tca_model.Mode.t

val scenario_of_meta :
  ?drain:Tca_interval.Drain.spec ->
  ?config:Tca_model.Params.config_cost ->
  Tca_workloads.Meta.t -> latency:float -> Tca_model.Params.scenario
(** Scenario with an explicit accelerator latency (cycles); [drain]
    defaults to the paper's [Auto] estimator and [config] to
    [No_config], so existing callers model configuration-free TCAs. *)

val meta_latency :
  Tca_workloads.Meta.t -> cfg:Tca_uarch.Config.t -> float
(** The architect's latency estimate for the workload's TCA: compute
    latency plus first-order memory time through the configured L1 and
    ports (see {!Tca_workloads.Meta.accel_latency_estimate}). *)

type validation_row = {
  workload : string;
  v : float;
  a : float;
  base_ipc : float;
  mode : Tca_model.Mode.t;
  sim_speedup : float;
  model_speedup : float;  (** paper-default drain estimator *)
  model_refill_speedup : float;
      (** refill-aware drain estimator (see {!Tca_interval.Drain.spec}) *)
}

val error_pct : validation_row -> float
(** Paper-default model vs simulator. *)

val refill_error_pct : validation_row -> float

val validate_pair :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  cfg:Tca_uarch.Config.t ->
  pair:Tca_workloads.Meta.pair ->
  latency:float ->
  unit ->
  validation_row list
(** Run baseline + four couplings in the simulator, evaluate the model
    with the measured baseline IPC, and return one row per mode. With
    [?telemetry], the five simulator runs share the sink and the whole
    point is wrapped in a [validate.<workload>] wall-clock span. [?par]
    (default serial) spreads the five runs over a pool with identical
    results. *)

val par_rows :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  (telemetry:Tca_telemetry.Sink.t option -> 'a -> validation_row list) ->
  'a list ->
  validation_row list
(** Evaluate one sweep item per task through [par] and concatenate the
    row lists in item order. Each task gets a fork of [?telemetry],
    joined back in item order, so rows and merged trace are identical
    to the serial sweep. The item function must be pure modulo its own
    sink. *)

val rows_to_table : validation_row list -> string list list
val table_headers : string list

val validation_table : validation_row list -> Tca_engine.Artifact.table
(** The standard 10-column validation table (typed cells); the text
    rendering equals [rows_to_table]/[table_headers]. *)

val validation_summary_notes : validation_row list -> string list
(** Both estimators' error summaries plus trend-preservation flags, as
    note lines. *)

val validation_artifact :
  job:string -> title:string -> ?notes:string list ->
  validation_row list -> Tca_engine.Artifact.t
(** The standard validation artifact: leading [notes], the
    {!validation_table}, then {!validation_summary_notes}. *)

val points_of_rows : validation_row list -> Tca_model.Validate.point list
(** Points under the paper-default drain estimator. *)

val refill_points_of_rows :
  validation_row list -> Tca_model.Validate.point list

val print_validation_summary : validation_row list -> unit
(** [validation_summary_notes], printed. *)

val validation_csv : validation_row list -> string
(** Machine-readable form of the validation rows. *)

(** {2 Workloads shared by the CLI and the [simulate.*] jobs} *)

type workload_kind = Synthetic | Heap | Dgemm | Hashmap | Regex | Strfn

val workload_kinds : (string * workload_kind) list
(** CLI spelling of each kind, in menu order. *)

val workload_pair :
  ?telemetry:Tca_telemetry.Sink.t ->
  cfg:Tca_uarch.Config.t -> ?size:int -> workload_kind ->
  Tca_workloads.Meta.pair * float
(** The workload's trace pair plus the architect's latency estimate for
    its TCA. [size] (default 0 = the workload's default) is chunks
    (synthetic), app instructions per invocation (heap, hashmap, regex,
    strfn) or the matrix dimension (dgemm). With [telemetry], the
    generation is recorded as a [sim.workload] span. *)

val golden_pairs : unit -> (string * Tca_workloads.Meta.pair) list
(** One deliberately small, deterministic instance of each of the six
    workload families, in [workload_kinds] order. Shared by the golden
    [Sim_stats] test in [test/test_uarch.ml] and its regenerator
    [test/gen_golden.exe]; the sizes are pinned because the committed
    golden files depend on them byte-for-byte. *)
