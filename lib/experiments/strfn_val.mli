(** Extension X9: string-function TCA validation — the "string
    functions" marker of the paper's Fig. 2 (STTNI-style acceleration),
    with per-call byte counts from a real string arena. *)

val gaps : quick:bool -> int list

val run :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  ?quick:bool -> unit ->
  Exp_common.validation_row list * float
(** Rows plus the mean bytes inspected per call (finest gap). [?par]
    evaluates the invocation gaps concurrently with identical rows and
    merged trace. *)

val artifact :
  Exp_common.validation_row list * float -> Tca_engine.Artifact.t

val print : Exp_common.validation_row list * float -> unit
