(** Every experiment in the reproduction, registered as engine jobs.

    The figure/table drivers (table1, fig2..fig8), the X1-X9 extension
    studies and one [simulate.<workload>] job per workload family all
    live in one namespace; [tca run], [tca list], the bench harness and
    the tests resolve them through {!registry} instead of bespoke
    dispatch. *)

val all : unit -> Tca_engine.Job.t list
(** Declaration order: figures/tables, extensions, then the
    [simulate.*] family. *)

val registry : unit -> Tca_engine.Registry.t
(** A fresh registry holding {!all}. *)
