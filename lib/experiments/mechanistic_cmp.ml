open Tca_uarch
open Tca_workloads
open Tca_interval

type row = {
  label : string;
  predicted_ipc : float;
  simulated_ipc : float;
  error_pct : float;
}

(* Measure the code's dependence-limited issue rate by simulating a
   slice on an ideal front end (perfect predictor, huge working set in
   L1): what the mechanistic model calls chain_ipc. An architect would
   estimate this from the dataflow graph; measuring it on a 100k-μop slice
   keeps the comparison honest without leaking the full answer. *)
let chain_ipc_of app =
  let rng = Tca_util.Prng.create 99 in
  let gen =
    Codegen.create
      ~config:{ app with Codegen.branch_every = 0; working_set_bytes = 4096 }
      ~rng ()
  in
  let b = Trace.Builder.create () in
  Codegen.emit_block gen b 100_000;
  let cfg = { (Config.hp ()) with Config.bpred = Bpred.Perfect } in
  (Pipeline.run_exn cfg (Trace.Builder.build b)).Sim_stats.ipc

let cases =
  [
    ( "balanced",
      { Codegen.model_friendly_config with Codegen.dep_window = 12 } );
    ( "chain-limited",
      { Codegen.model_friendly_config with Codegen.dep_window = 3 } );
    ( "branch-heavy",
      {
        Codegen.model_friendly_config with
        Codegen.dep_window = 12;
        branch_every = 5;
        hard_branch_fraction = 0.1;
      } );
    ( "memory-bound",
      {
        Codegen.model_friendly_config with
        Codegen.dep_window = 12;
        load_every = 3;
        working_set_bytes = 8 * 1024 * 1024;
      } );
  ]

let run ?telemetry ?(par = Tca_util.Parmap.serial) () =
  let cfg = Config.hp () in
  let cases_a = Array.of_list cases in
  let sinks =
    Array.map (fun _ -> Option.map Tca_telemetry.Sink.fork telemetry) cases_a
  in
  let eval i =
    let label, app = cases_a.(i) in
    let trace =
      Tca_telemetry.Timing.with_span sinks.(i) "sim.workload" (fun () ->
          let rng = Tca_util.Prng.create 4242 in
          let gen = Codegen.create ~config:app ~rng () in
          let b = Trace.Builder.create () in
          Codegen.emit_block gen b 120_000;
          Trace.Builder.build b)
    in
    let stats =
      Tca_telemetry.Timing.with_span sinks.(i) "sim.step" (fun () ->
          Pipeline.run_exn ?telemetry:sinks.(i) cfg trace)
    in
      (* Event rates the architect would know: instruction mix from the
         code, predictor accuracy from hardware counters, steady-state
         miss rates from working-set sizes (uniform random accesses:
         DRAM rate = 1 - L2/WS when the working set exceeds the L2). *)
      let counts = Trace.counts trace in
      let fi = float_of_int in
      let branch_rate = fi counts.Trace.branches /. fi counts.Trace.total in
      let load_rate = fi counts.Trace.loads /. fi counts.Trace.total in
      let mispredict_rate = Sim_stats.mispredict_rate stats in
      let l2_bytes =
        match cfg.Config.mem.Mem_hier.l2 with
        | Some l2 -> l2.Cache.size_bytes
        | None -> 0
      in
      let ws = app.Codegen.working_set_bytes in
      let dram_miss_rate =
        if ws <= l2_bytes then 0.0
        else 1.0 -. (fi l2_bytes /. fi ws)
      in
      (* Independent random misses overlap up to the dependence window's
         ability to expose them. *)
      let mlp =
        Float.max 1.0 (fi app.Codegen.dep_window /. 4.0)
      in
      let machine =
        Mechanistic.machine ~dispatch_width:cfg.Config.dispatch_width
          ~rob_size:cfg.Config.rob_size
          ~frontend_depth:cfg.Config.frontend_depth
          ~mem_latency:cfg.Config.mem.Mem_hier.mem_latency ()
      in
      let w =
        Mechanistic.stats ~branch_rate ~mispredict_rate ~load_rate
          ~dram_miss_rate ~mlp
          ~chain_ipc:
            (Tca_telemetry.Timing.with_span sinks.(i) "sim.calibrate"
               (fun () -> chain_ipc_of app))
          ()
      in
      let predicted = Mechanistic.ipc machine w in
      {
        label;
        predicted_ipc = predicted;
        simulated_ipc = stats.Sim_stats.ipc;
        error_pct =
          100.0 *. (predicted -. stats.Sim_stats.ipc) /. stats.Sim_stats.ipc;
      }
  in
  let rows =
    par.Tca_util.Parmap.run eval (Array.init (Array.length cases_a) Fun.id)
  in
  (match telemetry with
  | Some into ->
      Array.iter
        (function
          | Some child -> Tca_telemetry.Sink.join ~into child | None -> ())
        sinks
  | None -> ());
  Array.to_list rows

let artifact rows =
  let module A = Tca_engine.Artifact in
  A.make ~job:"mechanistic"
    ~title:"X4: mechanistic CPI model (Eyerman-style) vs cycle-level simulator"
    [
      A.Table
        (A.table ~name:"ipc"
           ~headers:[ "workload"; "predicted IPC"; "simulated IPC"; "error" ]
           (List.map
              (fun r ->
                [
                  A.text r.label;
                  A.flt r.predicted_ipc;
                  A.flt r.simulated_ipc;
                  A.pct r.error_pct;
                ])
              rows));
    ]

let print rows = print_string (Tca_engine.Artifact.to_text (artifact rows))
