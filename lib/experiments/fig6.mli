(** Fig. 6: blocked DGEMM with 2x2, 4x4 and 8x8 multiply-accumulate TCAs
    — measured (simulator) vs estimated (model) speedup over the software
    element-wise kernel, for all four modes, log-scale magnitudes. *)

val run :
  ?telemetry:Tca_telemetry.Sink.t -> ?par:Tca_util.Parmap.t -> ?n:int ->
  unit -> Exp_common.validation_row list
(** [n] is the matrix dimension (default 64; the paper uses 512 with the
    identical 32x32 blocking — the per-block instruction mix and
    TCA-to-core work ratio do not depend on n, and n = 128 is the
    practical ceiling for a materialised trace). One workload row group
    per accelerator dimension. *)

val summary : Exp_common.validation_row list -> (Tca_model.Validate.summary, Tca_model.Diag.t) result
val trends_hold : Exp_common.validation_row list -> bool
val artifact : Exp_common.validation_row list -> Tca_engine.Artifact.t
val print : Exp_common.validation_row list -> unit
