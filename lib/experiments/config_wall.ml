open Tca_uarch
open Tca_workloads
module A = Tca_engine.Artifact

(* X12, the configuration wall: how the (T1)-(T3) terms of
   [Tca_model.Equations.config_overhead] erode speedup as invocations
   get finer, and where each mechanism breaks even.

   The model sweep reuses Fig. 2's operating point (ARM A72-like core,
   a = 30%, A = 3x) so the [none] column reproduces Fig. 2's curve
   exactly; the three configured columns peel away from it below their
   break-even granularity. *)

let coverage = 0.3
let accel = Tca_model.Params.Factor 3.0

(* Swept configuration cost: 200 cycles is a realistic CSR-programming
   sequence (tens of uncached writes), and sits well above the
   small-granularity interval time so the wall is visible. *)
let sweep_t_config = 200.0
let queue_depth = 4

(* Amortization horizon for the pre-programmed variant: one
   programming of the unit reused across the whole run. *)
let preprog_invocations = 10_000

let variants =
  [
    ("none", Tca_model.Params.No_config);
    ("sync", Tca_model.Params.Sync sweep_t_config);
    ( "queued",
      Tca_model.Params.Queued
        { t_config = sweep_t_config; depth = queue_depth } );
    ( "preprog",
      Tca_model.Params.Preprogrammed
        { t_config = sweep_t_config; invocations = preprog_invocations } );
  ]

(* The sweep reports the tightest coupling (L_T): it has the smallest
   configuration-free interval time, so the configuration terms are the
   largest relative penalty — the worst case of the wall. *)
let sweep_mode = Tca_model.Mode.L_T

type row = { g : float; speedups : (string * float) list }

let run ?telemetry ?(points = 33) () =
  Tca_telemetry.Timing.with_span telemetry "config_wall.run" @@ fun () ->
  let gs = Tca_util.Sweep.logspace_exn 10.0 1.0e9 points in
  Array.to_list
    (Array.map
       (fun g ->
         {
           g;
           speedups =
             List.map
               (fun (name, config) ->
                 let sc =
                   Tca_model.Params.scenario_of_granularity_exn ~config
                     ~a:coverage ~g ~accel ()
                 in
                 ( name,
                   Tca_model.Equations.speedup_exn Tca_model.Presets.arm_a72
                     sc sweep_mode ))
               variants;
         })
       gs)

let series_table rows =
  A.table ~name:"speedup"
    ~headers:("granularity" :: List.map fst variants)
    (List.map
       (fun r ->
         A.sci r.g
         :: List.map (fun (name, _) -> A.flt (List.assoc name r.speedups))
              variants)
       rows)

(* Break-even granularity (speedup back to 1.0) for every configured
   variant under every coupling mode — the number the lint layer
   compares measured invocation granularities against. *)
let break_evens () =
  List.filter_map
    (fun (name, config) ->
      match config with
      | Tca_model.Params.No_config -> None
      | _ ->
          Some
            ( name,
              List.map
                (fun mode ->
                  ( mode,
                    Tca_model.Equations.config_break_even_exn
                      Tca_model.Presets.arm_a72 ~a:coverage ~accel ~config
                      mode ))
                Tca_model.Mode.all ))
    variants

let break_even_table bes =
  A.table ~name:"break-even"
    ~headers:
      ("config" :: List.map Tca_model.Mode.to_string Tca_model.Mode.all)
    (List.map
       (fun (name, per_mode) ->
         A.text name
         :: List.map
              (fun (_, be) ->
                match be with None -> A.text ">1e9" | Some g -> A.sci g)
              per_mode)
       bes)

let artifact rows =
  A.make ~job:"config_wall"
    ~title:
      "X12: configuration wall — speedup vs invocation granularity per \
       config mode, with break-even crossings"
    [
      A.Note
        (Format.asprintf
           "core %a; a = %.0f%%, A = %.1fx, t_config = %.0f cycles \
            (queued depth %d, preprog amortized over %d invocations); \
            speedup columns under %s coupling"
           Tca_model.Params.pp_core Tca_model.Presets.arm_a72
           (100.0 *. coverage) 3.0 sweep_t_config queue_depth
           preprog_invocations
           (Tca_model.Mode.to_string sweep_mode));
      A.Table (series_table rows);
      A.Note "";
      A.Note
        "break-even granularity (smallest g = a/v with speedup >= 1) per \
         config mode and coupling:";
      A.Table (break_even_table (break_evens ()));
      A.Note
        "(T1) sync pays t_config on every invocation's critical path, so \
         its wall is the tallest; (T2) queued overlaps programming with \
         execution and only rate-limits invocations shorter than \
         t_config; (T3) preprog pays once, so its curve rejoins [none] \
         almost immediately.";
    ]

(* {2 simulate.config_wall: model vs simulator under each mechanism}

   Same error-band methodology as the four base modes
   ([Exp_common.validate_pair]): run baseline + all four couplings in
   the cycle-level simulator with the unit's configuration knobs set,
   evaluate the model with the matching [Params.config_cost], and
   report per-mode percentage error. *)

(* Simulated configuration latency, in cycles. Comparable to the
   synthetic workload's 20-cycle accelerator latency and its ~100-cycle
   invocation interval, so sync is clearly visible, queued sits near
   its throughput bound, and preprog amortizes away. *)
let sim_t_config = 100

type vresult = {
  vname : string;
  rows : Exp_common.validation_row list;
  stalls : (Tca_model.Mode.t * int * int) list;
      (** per coupling: (mode, config_stall_cycles, config_queue_stall) *)
}

let sim_variants (meta : Meta.t) =
  let c = float_of_int sim_t_config in
  [
    ("sync", Tca_unit.Sync, Tca_model.Params.Sync c);
    ( "queued",
      Tca_unit.Queued,
      Tca_model.Params.Queued { t_config = c; depth = queue_depth } );
    ( "preprog",
      Tca_unit.Preprogrammed,
      Tca_model.Params.Preprogrammed
        { t_config = c; invocations = meta.Meta.invocations } );
  ]

let validate_variant ?telemetry ?par ~cfg ~(pair : Meta.pair) ~latency
    (vname, unit_mode, config) =
  let cfg =
    Config.with_tca_units cfg
      [|
        Tca_unit.make ~config_mode:unit_mode ~config_latency:sim_t_config
          ~config_queue_depth:queue_depth 0;
      |]
  in
  let cmp =
    Tca_telemetry.Timing.with_span telemetry
      ("validate.config." ^ vname)
      (fun () ->
        Simulator.compare_modes_exn ?telemetry ?par ~cfg
          ~baseline:pair.Meta.baseline ~accelerated:pair.Meta.accelerated ())
  in
  let meta = pair.Meta.meta in
  let ipc = cmp.Simulator.baseline.Sim_stats.ipc in
  let core = Exp_common.model_core_of cfg ~ipc in
  let scenario = Exp_common.scenario_of_meta ~config meta ~latency in
  let scenario_refill =
    Exp_common.scenario_of_meta ~drain:Tca_interval.Drain.Refill_aware
      ~config meta ~latency
  in
  let rows =
    List.map
      (fun (r : Simulator.mode_result) ->
        let mode = Exp_common.mode_of_coupling r.Simulator.coupling in
        {
          Exp_common.workload = meta.Meta.name ^ "+" ^ vname;
          v = meta.Meta.v;
          a = meta.Meta.a;
          base_ipc = ipc;
          mode;
          sim_speedup = r.Simulator.speedup;
          model_speedup =
            Tca_model.Equations.speedup_exn core scenario mode;
          model_refill_speedup =
            Tca_model.Equations.speedup_exn core scenario_refill mode;
        })
      cmp.Simulator.modes
  in
  let stalls =
    List.map
      (fun (r : Simulator.mode_result) ->
        ( Exp_common.mode_of_coupling r.Simulator.coupling,
          r.Simulator.stats.Sim_stats.config_stall_cycles,
          r.Simulator.stats.Sim_stats.config_queue_stall_cycles ))
      cmp.Simulator.modes
  in
  { vname; rows; stalls }

let validate ?telemetry ?par ?(quick = false) () =
  Tca_telemetry.Timing.with_span telemetry "config_wall.validate"
  @@ fun () ->
  let cfg = Exp_common.validation_core () in
  let pair, latency =
    Exp_common.workload_pair ?telemetry ~cfg
      ~size:(if quick then 100 else 0)
      Exp_common.Synthetic
  in
  (* A dense variant — invocations only a couple of app instructions
     apart, so the interval time sits far below [sim_t_config]. The
     queued engine becomes the throughput bound ((T2)'s [max base c]
     arm) and the depth-4 queue fills, exercising the queue-full
     back-pressure path the sparse workload never reaches. *)
  let dense_pair =
    Tca_telemetry.Timing.with_span telemetry "sim.workload.dense"
    @@ fun () ->
    Synthetic.generate
      (Synthetic.config
         ~n_units:(if quick then 1000 else 4000)
         ~n_chunks:(if quick then 500 else 2000)
         ~accel_latency:20 ())
  in
  List.map
    (validate_variant ?telemetry ?par ~cfg ~pair ~latency)
    (sim_variants pair.Meta.meta)
  @ [
      validate_variant ?telemetry ?par ~cfg ~pair:dense_pair ~latency:20.0
        ( "queued-dense",
          Tca_unit.Queued,
          Tca_model.Params.Queued
            { t_config = float_of_int sim_t_config; depth = queue_depth } );
    ]

let stall_table results =
  A.table ~name:"config-stalls"
    ~headers:[ "config"; "mode"; "config-stall"; "queue-stall" ]
    (List.concat_map
       (fun vr ->
         List.map
           (fun (mode, stall, queue_stall) ->
             A.
               [
                 text vr.vname;
                 text (Tca_model.Mode.to_string mode);
                 int stall;
                 int queue_stall;
               ])
           vr.stalls)
       results)

let validate_artifact results =
  let rows = List.concat_map (fun vr -> vr.rows) results in
  A.make ~job:"simulate.config_wall"
    ~title:
      "simulate: configuration mechanisms (sync / queued / preprog) under \
       all four couplings, model (T1)-(T3) vs simulator"
    ([
       A.Note
         (Printf.sprintf
            "synthetic workload; per-unit config_latency = %d cycles, \
             queue depth %d; model terms (T1)-(T3) applied to eqs. \
             (4)-(9)"
            sim_t_config queue_depth);
       A.Table (Exp_common.validation_table rows);
     ]
    @ List.map (fun n -> A.Note n) (Exp_common.validation_summary_notes rows)
    @ [
        A.Note
          "known model limit: (T2)'s overlap arm (max base c) assumes the \
           next descriptor enqueues while the previous invocation \
           executes, which needs trailing dispatch; under NT couplings \
           dispatch serialization idles the descriptor engine between \
           invocations, the cost degrades toward sync's base + c, and the \
           dense NT rows above show the resulting positive error";
        A.Note
          "simulator-side dispatch stalls attributed to configuration \
           (cycles with zero dispatches; outside the six-reason stall \
           breakdown):";
        A.Table (stall_table results);
      ])

let print results = print_string (A.to_text (validate_artifact results))
