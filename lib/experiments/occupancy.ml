open Tca_uarch
open Tca_workloads

type row = {
  occupancy : string;
  mode : Tca_model.Mode.t;
  cycles : int;
  speedup : float;
}

let occupancy_name = function
  | Config.Pipelined -> "pipelined"
  | Config.Exclusive -> "exclusive"

let run ?(n = 32) () =
  let pair = Dgemm_workload.pair (Dgemm_workload.config ~n ()) ~dim:4 in
  let base_cfg = Exp_common.validation_core () in
  let baseline = Pipeline.run_exn base_cfg pair.Meta.baseline in
  List.concat_map
    (fun occupancy ->
      List.map
        (fun coupling ->
          let cfg =
            {
              (Config.with_coupling base_cfg coupling) with
              Config.tca_occupancy = occupancy;
            }
          in
          let stats = Pipeline.run_exn cfg pair.Meta.accelerated in
          {
            occupancy = occupancy_name occupancy;
            mode = Exp_common.mode_of_coupling coupling;
            cycles = stats.Sim_stats.cycles;
            speedup = Sim_stats.speedup_exn ~baseline ~accelerated:stats;
          })
        Config.all_couplings)
    [ Config.Pipelined; Config.Exclusive ]

let print rows =
  print_endline
    "X5: accelerator occupancy ablation (DGEMM 4x4 TCA): pipelined vs \
     exclusive unit";
  Tca_util.Table.print
    ~headers:[ "unit"; "mode"; "cycles"; "speedup" ]
    (List.map
       (fun r ->
         [
           r.occupancy;
           Tca_model.Mode.to_string r.mode;
           string_of_int r.cycles;
           Tca_util.Table.float_cell r.speedup;
         ])
       rows);
  print_endline
    "(the policies differ only where trailing concurrency lets \
     invocations overlap — the NT modes serialise invocations anyway)"
