open Tca_uarch
open Tca_workloads

type row = {
  occupancy : string;
  mode : Tca_model.Mode.t;
  cycles : int;
  speedup : float;
}

let occupancy_name = function
  | Config.Pipelined -> "pipelined"
  | Config.Exclusive -> "exclusive"

let run ?telemetry ?(par = Tca_util.Parmap.serial) ?(n = 32) () =
  let pair = Dgemm_workload.pair (Dgemm_workload.config ~n ()) ~dim:4 in
  let base_cfg = Exp_common.validation_core () in
  let baseline = Pipeline.run_exn ?telemetry base_cfg pair.Meta.baseline in
  let combos =
    Array.of_list
      (List.concat_map
         (fun occupancy ->
           List.map (fun coupling -> (occupancy, coupling)) Config.all_couplings)
         [ Config.Pipelined; Config.Exclusive ])
  in
  let sinks =
    Array.map (fun _ -> Option.map Tca_telemetry.Sink.fork telemetry) combos
  in
  let eval i =
    let occupancy, coupling = combos.(i) in
    let cfg =
      {
        (Config.with_coupling base_cfg coupling) with
        Config.tca_occupancy = occupancy;
      }
    in
    let stats = Pipeline.run_exn ?telemetry:sinks.(i) cfg pair.Meta.accelerated in
    {
      occupancy = occupancy_name occupancy;
      mode = Exp_common.mode_of_coupling coupling;
      cycles = stats.Sim_stats.cycles;
      speedup = Sim_stats.speedup_exn ~baseline ~accelerated:stats;
    }
  in
  let rows =
    par.Tca_util.Parmap.run eval (Array.init (Array.length combos) Fun.id)
  in
  (match telemetry with
  | Some into ->
      Array.iter
        (function
          | Some child -> Tca_telemetry.Sink.join ~into child | None -> ())
        sinks
  | None -> ());
  Array.to_list rows

let artifact rows =
  let module A = Tca_engine.Artifact in
  A.make ~job:"occupancy"
    ~title:
      "X5: accelerator occupancy ablation (DGEMM 4x4 TCA): pipelined vs \
       exclusive unit"
    [
      A.Table
        (A.table ~name:"occupancy"
           ~headers:[ "unit"; "mode"; "cycles"; "speedup" ]
           (List.map
              (fun r ->
                [
                  A.text r.occupancy;
                  A.text (Tca_model.Mode.to_string r.mode);
                  A.int r.cycles;
                  A.flt r.speedup;
                ])
              rows));
      A.Note
        "(the policies differ only where trailing concurrency lets \
         invocations overlap — the NT modes serialise invocations anyway)";
    ]

let print rows = print_string (Tca_engine.Artifact.to_text (artifact rows))
