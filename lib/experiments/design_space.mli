(** Extension X3 (paper Section VIII): cost/performance Pareto analysis,
    energy verdicts, and parameter sensitivity for representative TCA
    scenarios — the "more complete evaluation" the paper's future-work
    section calls for. *)

type scenario_row = {
  name : string;
  core : Tca_model.Params.core;
  scenario : Tca_model.Params.scenario;
}

val scenarios : scenario_row list
(** Heap manager (fine-grained, HP), GreenDroid-like function (medium,
    LP), and DGEMM 4x4 tile (coarse, HP). *)

val pareto : scenario_row -> Tca_model.Hw_cost.design list * Tca_model.Hw_cost.design list
(** (front, dominated). *)

val energy : scenario_row -> Tca_model.Energy.verdict list

val artifact : unit -> Tca_engine.Artifact.t

val print : unit -> unit
(** Pareto fronts, energy verdicts, and the sensitivity tornado for each
    scenario. *)
