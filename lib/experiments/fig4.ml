open Tca_workloads

let chunk_counts ~quick =
  if quick then [ 10; 50; 200 ] else [ 10; 25; 50; 100; 200; 400; 800 ]

let app_config =
  { Codegen.model_friendly_config with Codegen.dep_window = 6 }

let accel_latency = 20

let run ?telemetry ?par ?(quick = false) () =
  Tca_telemetry.Timing.with_span telemetry "fig4.run" @@ fun () ->
  let cfg = Exp_common.validation_core () in
  let n_units = if quick then 1200 else 4000 in
  Exp_common.par_rows ?telemetry ?par
    (fun ~telemetry n_chunks ->
      let scfg =
        Synthetic.config ~app:app_config ~n_units ~n_chunks ~accel_latency
          ~seed:(41 + n_chunks) ()
      in
      let pair =
        Tca_telemetry.Timing.with_span telemetry "sim.workload" (fun () ->
            Synthetic.generate scfg)
      in
      Exp_common.validate_pair ?telemetry ~cfg ~pair
        ~latency:(float_of_int accel_latency) ())
    (List.filter (fun c -> c <= n_units) (chunk_counts ~quick))

let summary rows =
  Tca_model.Validate.summarize (Exp_common.points_of_rows rows)

let trends_hold rows =
  Tca_model.Validate.trends_preserved (Exp_common.points_of_rows rows)

let artifact rows =
  Exp_common.validation_artifact ~job:"fig4"
    ~title:"Fig. 4: model vs simulator on the synthetic microbenchmark sweep"
    rows

let print rows = print_string (Tca_engine.Artifact.to_text (artifact rows))
