open Tca_workloads

let run ?telemetry ?(n = 64) () =
  Tca_telemetry.Timing.with_span telemetry "fig6.run" @@ fun () ->
  let cfg = Exp_common.validation_core () in
  let dcfg = Dgemm_workload.config ~n () in
  List.concat_map
    (fun dim ->
      let pair = Dgemm_workload.pair dcfg ~dim in
      let latency = Exp_common.meta_latency pair.Meta.meta ~cfg in
      Exp_common.validate_pair ?telemetry ~cfg ~pair ~latency ())
    Tca_dgemm.Mma.supported_dims

let summary rows =
  Tca_model.Validate.summarize (Exp_common.points_of_rows rows)

let trends_hold rows =
  Tca_model.Validate.trends_preserved (Exp_common.points_of_rows rows)

let print rows =
  print_endline
    "Fig. 6: blocked DGEMM acceleration, measured (sim) vs estimated \
     (model) speedup over the element-wise software kernel";
  Tca_util.Table.print ~headers:Exp_common.table_headers
    (Exp_common.rows_to_table rows);
  Exp_common.print_validation_summary rows
