open Tca_workloads

let run ?telemetry ?par ?(n = 64) () =
  Tca_telemetry.Timing.with_span telemetry "fig6.run" @@ fun () ->
  let cfg = Exp_common.validation_core () in
  let dcfg = Dgemm_workload.config ~n () in
  Exp_common.par_rows ?telemetry ?par
    (fun ~telemetry dim ->
      let pair =
        Tca_telemetry.Timing.with_span telemetry "sim.workload" (fun () ->
            Dgemm_workload.pair dcfg ~dim)
      in
      let latency = Exp_common.meta_latency pair.Meta.meta ~cfg in
      Exp_common.validate_pair ?telemetry ~cfg ~pair ~latency ())
    Tca_dgemm.Mma.supported_dims

let summary rows =
  Tca_model.Validate.summarize (Exp_common.points_of_rows rows)

let trends_hold rows =
  Tca_model.Validate.trends_preserved (Exp_common.points_of_rows rows)

let artifact rows =
  Exp_common.validation_artifact ~job:"fig6"
    ~title:
      "Fig. 6: blocked DGEMM acceleration, measured (sim) vs estimated \
       (model) speedup over the element-wise software kernel"
    rows

let print rows = print_string (Tca_engine.Artifact.to_text (artifact rows))
