(** Table I: analytical-model parameter glossary, with the preset values
    used throughout the reproduction. *)

val rows : unit -> string list list
val artifact : unit -> Tca_engine.Artifact.t
val print : unit -> unit
