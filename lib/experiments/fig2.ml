open Tca_model
module A = Tca_engine.Artifact

type row = { g : float; speedups : (Mode.t * float) list }

let coverage = 0.3
let accel = Params.Factor 3.0

let run ?telemetry ?(points = 33) () =
  Tca_telemetry.Timing.with_span telemetry "fig2.run" @@ fun () ->
  let gs = Tca_util.Sweep.logspace_exn 10.0 1.0e9 points in
  let series = Granularity.series Presets.arm_a72 ~a:coverage ~accel ~gs in
  Array.to_list
    (Array.mapi
       (fun i g ->
         {
           g;
           speedups =
             List.map (fun (mode, pts) -> (mode, snd pts.(i))) series;
         })
       gs)

let series_table rows =
  A.table ~name:"speedup"
    ~headers:("granularity" :: List.map Mode.to_string Mode.all)
    (List.map
       (fun r ->
         A.sci r.g
         :: List.map (fun m -> A.flt (List.assoc m r.speedups)) Mode.all)
       rows)

let markers_table =
  A.table ~name:"markers" ~headers:[ "accelerator"; "granularity" ]
    (List.map
       (fun (m : Granularity.marker) ->
         [ A.text m.Granularity.name; A.sci m.Granularity.granularity ])
       Granularity.reference_markers)

let artifact rows =
  A.make ~job:"fig2"
    ~title:
      "Fig. 2: speedup vs accelerator granularity (ARM A72-like core, a = \
       30%, A = 3)"
    [
      A.Table (series_table rows);
      A.Note "";
      A.Note "Reference accelerators (estimated granularities):";
      A.Table markers_table;
    ]

let print rows = print_string (A.to_text (artifact rows))
let csv rows = A.table_csv (series_table rows)
