open Tca_model

type row = { g : float; speedups : (Mode.t * float) list }

let coverage = 0.3
let accel = Params.Factor 3.0

let run ?telemetry ?(points = 33) () =
  Tca_telemetry.Timing.with_span telemetry "fig2.run" @@ fun () ->
  let gs = Tca_util.Sweep.logspace_exn 10.0 1.0e9 points in
  let series = Granularity.series Presets.arm_a72 ~a:coverage ~accel ~gs in
  Array.to_list
    (Array.mapi
       (fun i g ->
         {
           g;
           speedups =
             List.map (fun (mode, pts) -> (mode, snd pts.(i))) series;
         })
       gs)

let print rows =
  print_endline
    "Fig. 2: speedup vs accelerator granularity (ARM A72-like core, a = \
     30%, A = 3)";
  let headers =
    "granularity" :: List.map Mode.to_string Mode.all
  in
  Tca_util.Table.print ~headers
    (List.map
       (fun r ->
         Printf.sprintf "%.1e" r.g
         :: List.map
              (fun m ->
                Tca_util.Table.float_cell (List.assoc m r.speedups))
              Mode.all)
       rows);
  print_newline ();
  print_endline "Reference accelerators (estimated granularities):";
  Tca_util.Table.print ~headers:[ "accelerator"; "granularity" ]
    (List.map
       (fun (m : Granularity.marker) ->
         [ m.Granularity.name; Printf.sprintf "%.1e" m.Granularity.granularity ])
       Granularity.reference_markers)

let csv rows =
  Tca_util.Csv.to_string
    ~header:("granularity" :: List.map Mode.to_string Mode.all)
    (List.map
       (fun r ->
         string_of_float r.g
         :: List.map
              (fun m -> string_of_float (List.assoc m r.speedups))
              Mode.all)
       rows)
