(** Fig. 5: heap-manager TCA validation — analytical speedup (a),
    simulated speedup (b), and error (c) across malloc/free invocation
    frequencies, for all four modes. *)

val gaps : quick:bool -> int list
(** Application instructions between heap calls; smaller = higher
    invocation frequency. *)

val run :
  ?telemetry:Tca_telemetry.Sink.t -> ?par:Tca_util.Parmap.t -> ?quick:bool ->
  unit -> Exp_common.validation_row list
val summary : Exp_common.validation_row list -> (Tca_model.Validate.summary, Tca_model.Diag.t) result
val trends_hold : Exp_common.validation_row list -> bool
val artifact : Exp_common.validation_row list -> Tca_engine.Artifact.t
val print : Exp_common.validation_row list -> unit
