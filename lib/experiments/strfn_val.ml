open Tca_workloads

let gaps ~quick = if quick then [ 300 ] else [ 1200; 600; 300; 150; 75 ]

let run ?telemetry ?(quick = false) () =
  Tca_telemetry.Timing.with_span telemetry "strfn_val.run" @@ fun () ->
  let cfg = Exp_common.validation_core () in
  let n_calls = if quick then 400 else 1200 in
  let mean_bytes = ref 0.0 in
  let rows =
    List.concat_map
      (fun gap ->
        let scfg =
          Strfn_workload.config ~n_calls ~app_instrs_per_call:gap
            ~seed:(11 + gap) ()
        in
        let pair, bytes = Strfn_workload.generate scfg in
        mean_bytes := bytes;
        let latency = Exp_common.meta_latency pair.Meta.meta ~cfg in
        Exp_common.validate_pair ?telemetry ~cfg ~pair ~latency ())
      (gaps ~quick)
  in
  (rows, !mean_bytes)

let print (rows, mean_bytes) =
  print_endline
    "X9: string-function TCA validation (strlen/strcmp/find_char over a \
     real string arena)";
  Printf.printf
    "mean bytes inspected %.0f -> mean software cost ~%d uops (the \
     'string functions' marker granularity of Fig. 2)\n"
    mean_bytes
    (Tca_strfn.Cost_model.software_uops
       ~bytes_inspected:(int_of_float mean_bytes));
  Tca_util.Table.print ~headers:Exp_common.table_headers
    (Exp_common.rows_to_table rows);
  Exp_common.print_validation_summary rows
