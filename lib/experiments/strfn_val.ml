open Tca_workloads

let gaps ~quick = if quick then [ 300 ] else [ 1200; 600; 300; 150; 75 ]

let run ?telemetry ?(par = Tca_util.Parmap.serial) ?(quick = false) () =
  Tca_telemetry.Timing.with_span telemetry "strfn_val.run" @@ fun () ->
  let cfg = Exp_common.validation_core () in
  let n_calls = if quick then 400 else 1200 in
  let gaps_a = Array.of_list (gaps ~quick) in
  let sinks =
    Array.map (fun _ -> Option.map Tca_telemetry.Sink.fork telemetry) gaps_a
  in
  let eval i =
    let gap = gaps_a.(i) in
    let scfg =
      Strfn_workload.config ~n_calls ~app_instrs_per_call:gap ~seed:(11 + gap)
        ()
    in
    let pair, bytes =
      Tca_telemetry.Timing.with_span sinks.(i) "sim.workload" (fun () ->
          Strfn_workload.generate scfg)
    in
    let latency = Exp_common.meta_latency pair.Meta.meta ~cfg in
    (Exp_common.validate_pair ?telemetry:sinks.(i) ~cfg ~pair ~latency (), bytes)
  in
  let per_gap =
    par.Tca_util.Parmap.run eval (Array.init (Array.length gaps_a) Fun.id)
  in
  (match telemetry with
  | Some into ->
      Array.iter
        (function
          | Some child -> Tca_telemetry.Sink.join ~into child | None -> ())
        sinks
  | None -> ());
  let rows = List.concat_map fst (Array.to_list per_gap) in
  (rows, snd per_gap.(Array.length per_gap - 1))

let artifact (rows, mean_bytes) =
  Exp_common.validation_artifact ~job:"strfn"
    ~title:
      "X9: string-function TCA validation (strlen/strcmp/find_char over a \
       real string arena)"
    ~notes:
      [
        Printf.sprintf
          "mean bytes inspected %.0f -> mean software cost ~%d uops (the \
           'string functions' marker granularity of Fig. 2)"
          mean_bytes
          (Tca_strfn.Cost_model.software_uops
             ~bytes_inspected:(int_of_float mean_bytes));
      ]
    rows

let print result = print_string (Tca_engine.Artifact.to_text (artifact result))
