(** X12, the configuration wall: model-only granularity sweep of the
    (T1)-(T3) configuration terms with their break-even crossings, plus
    the [simulate.config_wall] model-vs-simulator validation of all
    three mechanisms. *)

type row = {
  g : float;  (** invocation granularity [a / v] *)
  speedups : (string * float) list;
      (** one entry per config variant ([none] / [sync] / [queued] /
          [preprog]) under the swept coupling mode *)
}

val run :
  ?telemetry:Tca_telemetry.Sink.t -> ?points:int -> unit -> row list
(** The X12 sweep: Fig. 2's operating point (ARM A72-like core,
    [a = 0.3], [A = 3]) under L_T coupling, [points] (default 33)
    log-spaced granularities from 10 to 1e9, one speedup column per
    configuration variant. *)

val break_evens :
  unit ->
  (string * (Tca_model.Mode.t * float option) list) list
(** Break-even granularity per configured variant and coupling mode,
    via {!Tca_model.Equations.config_break_even_exn}; [None] when the
    variant never breaks even below 1e9. *)

val artifact : row list -> Tca_engine.Artifact.t
(** The [config_wall] figure: sweep table, break-even table, and the
    (T1)-(T3) reading notes. *)

type vresult = {
  vname : string;  (** [sync] / [queued] / [preprog] *)
  rows : Exp_common.validation_row list;
  stalls : (Tca_model.Mode.t * int * int) list;
      (** per coupling: (mode, {!Tca_uarch.Sim_stats.t.config_stall_cycles},
          {!Tca_uarch.Sim_stats.t.config_queue_stall_cycles}) *)
}

val validate :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  ?quick:bool ->
  unit ->
  vresult list
(** Run the synthetic workload with the unit's configuration knobs set
    to each mechanism in turn (100-cycle configuration latency), under
    baseline + all four couplings, and compare against the model with
    the matching {!Tca_model.Params.config_cost} — the same error-band
    methodology as the base [simulate.*] jobs. *)

val validate_artifact : vresult list -> Tca_engine.Artifact.t
(** The [simulate.config_wall] artifact: the standard validation table
    and summaries plus the simulator's config-stall counters. *)

val print : vresult list -> unit
