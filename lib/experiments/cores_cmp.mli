(** Extension X6: high-performance vs. low-performance core sensitivity,
    validated in the simulator (paper Section VI, observation 1: "high
    performance cores are more sensitive to different modes of TCA ...
    For low performance cores, the impact on OoO integration is less
    severe").

    The same heap workload runs on the HP (4-wide, 256-ROB) and LP
    (2-wide, 64-ROB) simulated cores; sensitivity is the relative spread
    between the best and worst mode's measured speedups. *)

type core_result = {
  core_name : string;
  base_ipc : float;
  mode_speedups : (Tca_model.Mode.t * float) list;
  spread : float;  (** (best - worst) / worst *)
}

val run :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  ?quick:bool -> unit -> core_result list
(** [HP; LP]. [?par] spreads each core's five simulator runs over a
    pool with identical results. *)

val hp_more_sensitive : core_result list -> bool

val artifact : core_result list -> Tca_engine.Artifact.t
val print : core_result list -> unit
