(** Extension X2 (paper Section VIII): partial TCA speculation.

    A design that speculates only past high-confidence branches lands
    between the L and NL modes. Sweeping the speculation-coverage
    probability shows how much confidence hardware is needed before the
    cheap NL design stops leaving performance on the table — evaluated on
    the heap-manager scenario where the L/NL gap is largest. *)

type row = {
  p_speculate : float;
  speedup_t : float;  (** trailing concurrency allowed *)
  speedup_nt : float;
}

val run : ?points:int -> unit -> row list
(** Heap scenario: v = 1/150, a = 0.35, 1-cycle TCA, HP core. *)

type sim_row = {
  p : float;
  sim_speedup : float;  (** simulator, trailing allowed *)
  model_speedup : float;  (** {!Tca_model.Partial} blend *)
}

val validate :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  ?quick:bool -> unit -> sim_row list
(** Run the heap workload in the simulator with per-invocation partial
    speculation at p in {0, 1/4, 1/2, 3/4, 1} and compare against the
    model's L/NL blend — closing the loop on the paper's Section VIII
    proposal. [?par] spreads the five speculative runs over a pool with
    identical rows and merged trace. *)

val confidence_for_95pct : unit -> float option
(** Speculation coverage needed to reach 95% of the full L_T speedup. *)

val artifact :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  ?quick:bool -> row list -> Tca_engine.Artifact.t
(** The model blend table, the 95%-confidence note, and the simulator
    cross-check (which this call runs). *)

val print : row list -> unit
