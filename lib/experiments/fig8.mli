(** Fig. 8: predicted speedup vs. acceleratable fraction for a
    100-instruction TCA with A = 2, exhibiting the core/TCA concurrency
    bound: peak speedup A + 1 = 3 at a = 2/3 in L_T mode, and the NL_T
    local maximum the paper discusses. *)

type series = {
  mode : Tca_model.Mode.t;
  points : (float * float) array;  (** (a, speedup) *)
  peak : float * float;
}

val run :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?points:int -> ?core:Tca_model.Params.core -> unit -> series list
(** Default 97 coverage points on the HP core. *)

val ideal_peak : float * float
(** [(2/3, 3.0)]: the analytical optimum for A = 2. *)

val nl_t_local_maxima : series list -> (float * float) list

val artifact : series list -> Tca_engine.Artifact.t
(** A thinned table (every 4th point) for the text view, the full series
    table for CSV/JSON, and the peak/optimum notes. *)

val print : series list -> unit

val csv : series list -> string
(** The full series table. *)
