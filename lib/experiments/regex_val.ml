open Tca_workloads

let gaps ~quick = if quick then [ 400 ] else [ 3200; 1600; 800; 400; 200 ]

let run ?telemetry ?(quick = false) () =
  Tca_telemetry.Timing.with_span telemetry "regex_val.run" @@ fun () ->
  let cfg = Exp_common.validation_core () in
  let n_records = if quick then 120 else 400 in
  let mean_scan = ref 0.0 in
  let rows =
    List.concat_map
      (fun gap ->
        let rcfg =
          Regex_workload.config ~n_records ~app_instrs_per_record:gap
            ~seed:(23 + gap) ()
        in
        let pair, scan = Regex_workload.generate rcfg in
        mean_scan := scan;
        let latency = Exp_common.meta_latency pair.Meta.meta ~cfg in
        Exp_common.validate_pair ?telemetry ~cfg ~pair ~latency ())
      (gaps ~quick)
  in
  (rows, !mean_scan)

let print (rows, mean_scan) =
  print_endline
    "X8: regular-expression TCA validation (scan lengths from the real \
     NFA/DFA engine)";
  Printf.printf
    "mean scan %.0f chars -> mean software cost ~%d uops (the 'regular \
     expression' marker granularity of Fig. 2)\n"
    mean_scan
    (Tca_regex.Cost_model.software_uops
       ~chars_scanned:(int_of_float mean_scan));
  Tca_util.Table.print ~headers:Exp_common.table_headers
    (Exp_common.rows_to_table rows);
  Exp_common.print_validation_summary rows
