open Tca_workloads

let gaps ~quick = if quick then [ 400 ] else [ 3200; 1600; 800; 400; 200 ]

let run ?telemetry ?(par = Tca_util.Parmap.serial) ?(quick = false) () =
  Tca_telemetry.Timing.with_span telemetry "regex_val.run" @@ fun () ->
  let cfg = Exp_common.validation_core () in
  let n_records = if quick then 120 else 400 in
  let gaps_a = Array.of_list (gaps ~quick) in
  let sinks =
    Array.map (fun _ -> Option.map Tca_telemetry.Sink.fork telemetry) gaps_a
  in
  let eval i =
    let gap = gaps_a.(i) in
    let rcfg =
      Regex_workload.config ~n_records ~app_instrs_per_record:gap
        ~seed:(23 + gap) ()
    in
    let pair, scan =
      Tca_telemetry.Timing.with_span sinks.(i) "sim.workload" (fun () ->
          Regex_workload.generate rcfg)
    in
    let latency = Exp_common.meta_latency pair.Meta.meta ~cfg in
    (Exp_common.validate_pair ?telemetry:sinks.(i) ~cfg ~pair ~latency (), scan)
  in
  let per_gap =
    par.Tca_util.Parmap.run eval (Array.init (Array.length gaps_a) Fun.id)
  in
  (match telemetry with
  | Some into ->
      Array.iter
        (function
          | Some child -> Tca_telemetry.Sink.join ~into child | None -> ())
        sinks
  | None -> ());
  let rows = List.concat_map fst (Array.to_list per_gap) in
  (rows, snd per_gap.(Array.length per_gap - 1))

let artifact (rows, mean_scan) =
  Exp_common.validation_artifact ~job:"regexv"
    ~title:
      "X8: regular-expression TCA validation (scan lengths from the real \
       NFA/DFA engine)"
    ~notes:
      [
        Printf.sprintf
          "mean scan %.0f chars -> mean software cost ~%d uops (the 'regular \
           expression' marker granularity of Fig. 2)"
          mean_scan
          (Tca_regex.Cost_model.software_uops
             ~chars_scanned:(int_of_float mean_scan));
      ]
    rows

let print result = print_string (Tca_engine.Artifact.to_text (artifact result))
