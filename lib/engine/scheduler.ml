exception Transient of string

type policy = {
  deadline_s : float option;
  retries : int;
  backoff_s : float;
  fail_fast : bool;
}

let default_policy =
  { deadline_s = None; retries = 0; backoff_s = 0.1; fail_fast = false }

type failure = { diag : Tca_util.Diag.t; attempts : int }

type status =
  | Done of Artifact.t
  | Failed of failure
  | Skipped

type outcome = {
  job : Job.t;
  fingerprint : string;
  status : status;
  cached : bool;
  seconds : float;
  attempts : int;
  telemetry : Tca_telemetry.Sink.t option;
}

let artifact o = match o.status with Done a -> Some a | Failed _ | Skipped -> None

let artifact_exn o =
  match o.status with
  | Done a -> a
  | Failed f -> raise (Tca_util.Diag.Error f.diag)
  | Skipped ->
      raise
        (Tca_util.Diag.Error
           (Tca_util.Diag.Invalid
              {
                field = "Scheduler.artifact_exn";
                message =
                  Printf.sprintf "job %s was skipped (fail-fast)"
                    o.job.Job.name;
              }))

(* Retry only what plausibly goes away on its own: explicit [Transient]
   signals and I/O-shaped system errors. A [Diag.Error] or any other
   exception from a pure body is deterministic — retrying it would just
   fail [retries] more times, slower. *)
let is_transient = function
  | Transient _ | Sys_error _ | Unix.Unix_error _ | Out_of_memory -> true
  | _ -> false

let diag_of_exn (j : Job.t) ~fingerprint e bt =
  match e with
  | Tca_util.Diag.Error d -> d
  | e ->
      Tca_util.Diag.Task_failure
        {
          job = j.Job.name;
          fingerprint;
          exn = Printexc.to_string e;
          backtrace = Printexc.raw_backtrace_to_string bt;
        }

(* Thread the deadline through [par] as well: a body that fans its sweep
   out over chunks gets a cancellation point at every chunk boundary
   without knowing the policy exists. *)
let guarded_par par checkpoint =
  {
    Tca_util.Parmap.run =
      (fun f xs ->
        checkpoint ();
        par.Tca_util.Parmap.run
          (fun x ->
            checkpoint ();
            f x)
          xs);
  }

(* GC pressure of one task body, as [Gc.quick_stat] deltas. [quick_stat]
   does not force a collection, so reading it twice per task is cheap;
   word counts are truncated to int (53 usable bits — no task allocates
   past that). *)
let gc_delta (a : Gc.stat) (b : Gc.stat) =
  [
    ("minor_words", int_of_float (b.Gc.minor_words -. a.Gc.minor_words));
    ("promoted_words",
     int_of_float (b.Gc.promoted_words -. a.Gc.promoted_words));
    ("major_words", int_of_float (b.Gc.major_words -. a.Gc.major_words));
    ("minor_collections", b.Gc.minor_collections - a.Gc.minor_collections);
    ("major_collections", b.Gc.major_collections - a.Gc.major_collections);
  ]

(* The per-task supervisor: runs the body under the policy's deadline,
   retries transient failures with exponential backoff, and converts
   every escape — typed diag, deadline, arbitrary exception — into a
   [Failed] outcome instead of letting it tear down the Domain pool.
   Each attempt gets a fresh telemetry sink so a retried success carries
   exactly the events of its successful attempt, closed by one
   [task.run] span (tagged with the job, its queue wait and its GC
   deltas) that the profiler groups under the executing domain's lane. *)
let supervise (j : Job.t) ~fingerprint ~policy ~collect_telemetry ~quick
    ~enqueued_us pool_par =
  let module T = Tca_telemetry in
  let wait_us = Float.max 0.0 (T.Timing.now_us () -. enqueued_us) in
  let rec attempt n =
    let telemetry =
      if collect_telemetry then
        Some (T.Sink.create ~metrics:(T.Metrics.create ()) ())
      else None
    in
    let gc0 =
      match telemetry with None -> None | Some _ -> Some (Gc.quick_stat ())
    in
    let t0 = T.Timing.now_us () in
    let elapsed () = (T.Timing.now_us () -. t0) /. 1e6 in
    (* Terminal attempts only: stamp the task's own sink with its
       [task.run] span, queue-wait histogram and GC counters. All of it
       is gated on the sink — the disabled path reads the clock twice
       and nothing else. *)
    let settle status =
      let seconds = elapsed () in
      (match (telemetry, gc0) with
      | Some sink, Some g0 ->
          let gc = gc_delta g0 (Gc.quick_stat ()) in
          let open Tca_util in
          let args =
            ("job", Json.String j.Job.name)
            :: ("wait_us", Json.Float wait_us)
            :: ("attempts", Json.Int n)
            :: List.map (fun (k, v) -> ("gc_" ^ k, Json.Int v)) gc
          in
          T.Timing.record_span ~args ~ts:t0 telemetry "task.run" ~seconds;
          (match T.Sink.metrics sink with
          | None -> ()
          | Some reg ->
              (match T.Metrics.histogram reg "task.wait.seconds" with
              | Ok h -> T.Metrics.Histogram.observe h (wait_us /. 1e6)
              | Error _ -> ());
              List.iter
                (fun (k, v) ->
                  match T.Metrics.counter reg ("task.gc." ^ k) with
                  | Ok c -> T.Metrics.Counter.add c v
                  | Error _ -> ())
                gc)
      | _ -> ());
      (status, n, seconds, telemetry)
    in
    let checkpoint =
      match policy.deadline_s with
      | None -> ignore
      | Some d ->
          fun () ->
            if elapsed () > d then
              raise
                (Tca_util.Diag.Error
                   (Tca_util.Diag.Deadline { job = j.Job.name; seconds = d }))
    in
    let par =
      match policy.deadline_s with
      | None -> pool_par
      | Some _ -> guarded_par pool_par checkpoint
    in
    let ctx = { Job.telemetry; par; quick; checkpoint } in
    match j.Job.body ctx with
    | a -> settle (Done a)
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        if is_transient e && n <= policy.retries then begin
          if policy.backoff_s > 0.0 then
            Unix.sleepf (policy.backoff_s *. (2.0 ** float_of_int (n - 1)));
          attempt (n + 1)
        end
        else
          settle (Failed { diag = diag_of_exn j ~fingerprint e bt; attempts = n })
  in
  attempt 1

let bump metrics name delta =
  match metrics with
  | None -> ()
  | Some reg -> (
      match Tca_telemetry.Metrics.counter reg name with
      | Ok c -> Tca_telemetry.Metrics.Counter.add c delta
      | Error _ -> ())

let run ?cache ?(policy = default_policy) ?metrics ?(quick = false)
    ?(collect_telemetry = false) ?host_telemetry ?(jobs = 1) js =
  let module T = Tca_telemetry in
  let host name f = T.Timing.with_span host_telemetry name f in
  let js = Array.of_list js in
  (* Phase 1 (serial): cache lookups. The span is only recorded when a
     cache is configured, so a cacheless profile shows no phantom
     cache time. *)
  let lookup () =
    Array.map
      (fun (j : Job.t) ->
        match cache with
        | None -> (j, None, None)
        | Some c ->
            let k = Cache.key c j ~quick in
            (j, Some k, Cache.find c k))
      js
  in
  let looked_up =
    match cache with None -> lookup () | Some _ -> host "cache.lookup" lookup
  in
  (* Phase 2 (parallel): run the misses, each under its supervisor. A
     failure can only mark the abort flag; it never propagates into the
     pool, so every in-flight job still settles and N-1 artifacts
     survive one poisoned point. Pool spawn/shutdown are timed apart
     from the batch itself: domain startup is scheduler overhead, not
     job time. *)
  let aborted = Atomic.make false in
  let outcomes =
    let pool =
      host "pool.spawn" (fun () -> Pool.create ~workers:(max 0 (jobs - 1)))
    in
    Fun.protect
      ~finally:(fun () -> host "pool.shutdown" (fun () -> Pool.shutdown pool))
      (fun () ->
        host "sched.batch" (fun () ->
            let enqueued_us = T.Timing.now_us () in
            Pool.map pool
              (fun ((j : Job.t), _key, hit) ->
                let fingerprint = Job.fingerprint_digest j ~quick in
                match hit with
                | Some a ->
                    {
                      job = j;
                      fingerprint;
                      status = Done a;
                      cached = true;
                      seconds = 0.;
                      attempts = 0;
                      telemetry = None;
                    }
                | None ->
                    if policy.fail_fast && Atomic.get aborted then
                      {
                        job = j;
                        fingerprint;
                        status = Skipped;
                        cached = false;
                        seconds = 0.;
                        attempts = 0;
                        telemetry = None;
                      }
                    else begin
                      let status, attempts, seconds, telemetry =
                        supervise j ~fingerprint ~policy ~collect_telemetry
                          ~quick ~enqueued_us (Pool.parmap pool)
                      in
                      (match status with
                      | Failed _ when policy.fail_fast ->
                          Atomic.set aborted true
                      | _ -> ());
                      { job = j; fingerprint; status; cached = false; seconds;
                        attempts; telemetry }
                    end)
              looked_up))
  in
  (* Phase 3 (serial): cache stores for fresh successes, in job order. *)
  (match cache with
  | None -> ()
  | Some c ->
      host "cache.store" (fun () ->
          Array.iteri
            (fun i (_, k, _) ->
              match (k, outcomes.(i)) with
              | Some k, { cached = false; status = Done a; _ } ->
                  Cache.store c k a
              | _ -> ())
            looked_up));
  Array.iter
    (fun o ->
      match o.status with
      | Done _ ->
          bump metrics
            (if o.cached then "engine.tasks.cached" else "engine.tasks.succeeded")
            1;
          if o.attempts > 1 then
            bump metrics "engine.tasks.retried" (o.attempts - 1)
      | Failed f ->
          bump metrics "engine.tasks.failed" 1;
          if f.attempts > 1 then
            bump metrics "engine.tasks.retried" (f.attempts - 1)
      | Skipped -> bump metrics "engine.tasks.skipped" 1)
    outcomes;
  Array.to_list outcomes

(* --- failure reporting --- *)

let diag_kind = function
  | Tca_util.Diag.Parse _ -> "parse"
  | Tca_util.Diag.Domain _ -> "domain"
  | Tca_util.Diag.Non_finite _ -> "non_finite"
  | Tca_util.Diag.Empty_input _ -> "empty_input"
  | Tca_util.Diag.Ragged_input _ -> "ragged_input"
  | Tca_util.Diag.Invalid _ -> "invalid"
  | Tca_util.Diag.Watchdog _ -> "watchdog"
  | Tca_util.Diag.Task_failure _ -> "task_failure"
  | Tca_util.Diag.Deadline _ -> "deadline"

let count p outcomes = List.length (List.filter p outcomes)

let failures outcomes =
  List.filter_map
    (fun o -> match o.status with Failed f -> Some (o, f) | _ -> None)
    outcomes

let first_failure outcomes =
  match failures outcomes with (_, f) :: _ -> Some f.diag | [] -> None

(* Everything in the report is stable across [--jobs N]: input order,
   configured budgets, attempt counts — no wall-clock, no backtraces
   (those stay inside the [Task_failure] payload for interactive
   debugging). The failure-path CI diff relies on this. *)
let failure_report outcomes =
  let open Tca_util.Json in
  Obj
    [
      ("succeeded",
       Int
         (count
            (fun o ->
              match o.status with Done _ -> not o.cached | _ -> false)
            outcomes));
      ("cached", Int (count (fun o -> o.cached) outcomes));
      ("failed", Int (List.length (failures outcomes)));
      ("skipped",
       Int (count (fun o -> o.status = Skipped) outcomes));
      ( "failures",
        List
          (List.map
             (fun (o, f) ->
               Obj
                 [
                   ("job", String o.job.Job.name);
                   ("fingerprint", String o.fingerprint);
                   ("kind", String (diag_kind f.diag));
                   ("diag", String (Tca_util.Diag.to_string f.diag));
                   ("exit_code", Int (Tca_util.Diag.exit_code f.diag));
                   ("attempts", Int f.attempts);
                 ])
             (failures outcomes)) );
      ( "skipped_jobs",
        List
          (List.filter_map
             (fun o ->
               match o.status with
               | Skipped -> Some (String o.job.Job.name)
               | _ -> None)
             outcomes) );
    ]

let join_telemetry ~into outcomes =
  List.iter
    (fun o ->
      match o.telemetry with
      | Some child -> Tca_telemetry.Sink.join ~into child
      | None -> ())
    outcomes

let merged_sink outcomes =
  let into =
    Tca_telemetry.Sink.create ~metrics:(Tca_telemetry.Metrics.create ()) ()
  in
  join_telemetry ~into outcomes;
  into
