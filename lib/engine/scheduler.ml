type outcome = {
  job : Job.t;
  artifact : Artifact.t;
  cached : bool;
  seconds : float;
  telemetry : Tca_telemetry.Sink.t option;
}

let run ?cache ?(quick = false) ?(collect_telemetry = false) ?(jobs = 1) js =
  let js = Array.of_list js in
  (* Phase 1 (serial): cache lookups. *)
  let looked_up =
    Array.map
      (fun (j : Job.t) ->
        match cache with
        | None -> (j, None, None)
        | Some c ->
            let k = Cache.key c j ~quick in
            (j, Some k, Cache.find c k))
      js
  in
  (* Phase 2 (parallel): run the misses. *)
  let outcomes =
    Pool.with_pool
      ~workers:(max 0 (jobs - 1))
      (fun pool ->
        Pool.map pool
          (fun ((j : Job.t), _key, hit) ->
            match hit with
            | Some artifact ->
                { job = j; artifact; cached = true; seconds = 0.; telemetry = None }
            | None ->
                let telemetry =
                  if collect_telemetry then
                    Some
                      (Tca_telemetry.Sink.create
                         ~metrics:(Tca_telemetry.Metrics.create ())
                         ())
                  else None
                in
                let t0 = Unix.gettimeofday () in
                let ctx = { Job.telemetry; par = Pool.parmap pool; quick } in
                let artifact = j.Job.body ctx in
                let seconds = Unix.gettimeofday () -. t0 in
                { job = j; artifact; cached = false; seconds; telemetry })
          looked_up)
  in
  (* Phase 3 (serial): cache stores, in job order. *)
  (match cache with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun i (_, k, _) ->
          match (k, outcomes.(i)) with
          | Some k, { cached = false; artifact; _ } -> Cache.store c k artifact
          | _ -> ())
        looked_up);
  Array.to_list outcomes

let merged_sink outcomes =
  let into =
    Tca_telemetry.Sink.create ~metrics:(Tca_telemetry.Metrics.create ()) ()
  in
  List.iter
    (fun o ->
      match o.telemetry with
      | Some child -> Tca_telemetry.Sink.join ~into child
      | None -> ())
    outcomes;
  into
