(** A fixed pool of worker domains with one shared work queue.

    Determinism by construction: {!map} is order-preserving — result [i]
    is always [f xs.(i)] regardless of which domain ran it or in what
    order — so a run with [workers = 0] (fully serial, no domains) and a
    run with any number of workers produce structurally identical
    results for pure [f].

    The caller of {!map} participates: while waiting for its batch it
    drains tasks from the shared queue itself. That makes nested maps
    (a worker task that itself calls {!map}, as intra-job sweeps do)
    deadlock-free even when every worker is busy, and makes
    [workers = 0] the same code path rather than a special case. *)

type t

val create : workers:int -> t
(** Spawn [workers] domains ([0] is valid: no domains, all work runs on
    the calling domain). Negative values are clamped to [0]. *)

val workers : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map. [f] must be pure per element and must
    not touch another element's mutable state. If one or more
    applications raise, all settle first, then the exception of the
    {e lowest index} is re-raised (with its backtrace) — the same
    exception a serial left-to-right run would surface. *)

val parmap : t -> Tca_util.Parmap.t
(** This pool as a {!Tca_util.Parmap.t} capability, for handing to code
    that should not depend on [tca_engine]. *)

val shutdown : t -> unit
(** Stop and join all worker domains. Idempotent. No {!map} may be in
    flight or issued afterwards. *)

val with_pool : workers:int -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} (also on exception). *)
