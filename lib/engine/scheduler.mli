(** Deterministic multicore execution of a set of jobs.

    Independent jobs run in parallel on a fixed {!Pool} of domains, and
    each job's intra-sweep chunks run on the same pool through
    [ctx.par]. The engine's core invariant: for pure job bodies,
    [run ~jobs:1] and [run ~jobs:n] produce {e bit-identical} artifacts
    (and identical merged telemetry event sequences, modulo wall-clock
    timestamps) — parallelism changes only where and when work runs,
    never what it computes. The test suite and the fuzz harness assert
    this end to end.

    Cache interaction is serialised: all lookups happen before the
    parallel phase, all stores after it, so {!Cache.t} needs no locks. *)

type outcome = {
  job : Job.t;
  artifact : Artifact.t;
  cached : bool;  (** re-served from the cache, body not run *)
  seconds : float;  (** wall-clock body time; [0.] when [cached] *)
  telemetry : Tca_telemetry.Sink.t option;
      (** per-job sink, when [collect_telemetry] and not [cached] *)
}

val run :
  ?cache:Cache.t ->
  ?quick:bool ->
  ?collect_telemetry:bool ->
  ?jobs:int ->
  Job.t list ->
  outcome list
(** Execute the jobs; outcomes are returned in input order. [jobs]
    (default [1]) is the total parallelism: the pool gets [jobs - 1]
    worker domains and the calling domain participates. If a body
    raises, all in-flight jobs settle first, then the exception of the
    earliest failing job is re-raised. *)

val merged_sink : outcome list -> Tca_telemetry.Sink.t
(** One sink holding every outcome's events, joined in outcome order
    (= input order), with metrics registries folded in the same order.
    Equals the trace a serial run with one shared sink would produce. *)
