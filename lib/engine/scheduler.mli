(** Supervised multicore scheduler for experiment jobs.

    Three phases: serial cache lookups, a parallel map over the misses
    on a {!Pool}, serial cache stores. Every miss runs under a per-task
    {e supervisor}: the body executes with the run policy's deadline
    threaded through {!Job.ctx.checkpoint} (and through [ctx.par] chunk
    boundaries), transient failures are retried with exponential
    backoff, and any escape — a typed [Diag.Error], a tripped deadline,
    an arbitrary exception — becomes a [Failed] outcome instead of
    propagating into the pool. A sweep with one poisoned point
    therefore still yields the other N-1 artifacts, plus a
    machine-readable {!failure_report}.

    Determinism contract: with [fail_fast = false] the full outcome
    list — statuses, diags, attempt counts, and hence the rendered
    failure report — is bit-identical across [--jobs 1] and [--jobs N].
    With [fail_fast = true] the set of [Skipped] jobs depends on
    completion timing under parallelism; only serial fail-fast runs are
    reproducible. *)

exception Transient of string
(** Raise from a job body to signal a failure worth retrying (the
    scheduler also treats [Sys_error], [Unix.Unix_error] and
    [Out_of_memory] as transient). Anything else is considered
    deterministic and fails immediately. *)

type policy = {
  deadline_s : float option;
      (** Per-job wall-clock budget, enforced cooperatively at
          {!Job.ctx.checkpoint} / [par] chunk boundaries; a tripped
          budget fails the job with [Diag.Deadline]. [None] = no
          deadline. The diag records the configured budget, not the
          elapsed time, so reports stay bit-identical across [--jobs]. *)
  retries : int;
      (** Extra attempts for transient failures; 0 = fail on first. *)
  backoff_s : float;
      (** Base backoff: attempt [n] sleeps [backoff_s * 2^(n-1)] before
          retrying. *)
  fail_fast : bool;
      (** [true]: after the first failure, not-yet-started jobs are
          [Skipped]. [false] (keep-going, the default): every job runs
          to an outcome. *)
}

val default_policy : policy
(** No deadline, no retries, 0.1s base backoff, keep-going. *)

type failure = { diag : Tca_util.Diag.t; attempts : int }

type status =
  | Done of Artifact.t
  | Failed of failure
  | Skipped  (** never started: fail-fast tripped by an earlier failure *)

type outcome = {
  job : Job.t;
  fingerprint : string;  (** {!Job.fingerprint_digest} of the job *)
  status : status;
  cached : bool;  (** re-served from the cache, body not run *)
  seconds : float;  (** wall-clock of the last attempt; 0 for hits/skips *)
  attempts : int;  (** body attempts made; 0 for cache hits and skips *)
  telemetry : Tca_telemetry.Sink.t option;
      (** present for fresh (non-cached) attempts when requested; a
          retried job carries the sink of its final attempt only *)
}

val run :
  ?cache:Cache.t ->
  ?policy:policy ->
  ?metrics:Tca_telemetry.Metrics.t ->
  ?quick:bool ->
  ?collect_telemetry:bool ->
  ?host_telemetry:Tca_telemetry.Sink.t ->
  ?jobs:int ->
  Job.t list ->
  outcome list
(** Execute the jobs; outcomes are returned in input order. [jobs]
    (default [1]) is the total parallelism: the pool gets [jobs - 1]
    worker domains and the calling domain participates. Only [Done]
    artifacts of fresh runs are stored to the cache. With [metrics],
    bumps [engine.tasks.{succeeded,failed,skipped,cached,retried}].
    Never raises on job failure — inspect outcome statuses.

    Profiling hooks, all zero-cost when the respective sink is absent:
    with [collect_telemetry], each fresh task's sink additionally
    carries one [task.run] span (args: job, queue [wait_us], attempts,
    [gc_*] deltas from [Gc.quick_stat]) plus a [task.wait.seconds]
    histogram and [task.gc.*] counters in its registry. With
    [host_telemetry], the scheduler's own phases are recorded into that
    sink as [cache.lookup], [pool.spawn], [sched.batch],
    [pool.shutdown] and [cache.store] spans on the calling domain's
    lane. Timing uses the monotonic clock ({!Tca_telemetry.Timing}). *)

val artifact : outcome -> Artifact.t option

val artifact_exn : outcome -> Artifact.t
(** @raise Tca_util.Diag.Error the failure's diag (or [Invalid] for a
    skipped job). *)

val first_failure : outcome list -> Tca_util.Diag.t option
(** Diag of the first failed outcome in input order — drives the
    process exit code. *)

val failure_report : outcome list -> Tca_util.Json.t
(** Machine-readable run report: succeeded/cached/failed/skipped counts
    plus one record per failure (job, fingerprint, diag kind, rendered
    diag, exit code, attempts) and the skipped-job names. Contains no
    wall-clock times and no backtraces, so keep-going reports are
    bit-identical across [--jobs 1] / [--jobs N]. *)

val diag_kind : Tca_util.Diag.t -> string
(** Stable snake_case tag for a diag variant, as used in the report. *)

val join_telemetry : into:Tca_telemetry.Sink.t -> outcome list -> unit
(** Join every outcome's sink into [into], in outcome order (= input
    order), folding registries with {!Tca_telemetry.Metrics.merge_into}.
    Use this to merge a run's task telemetry into an existing host sink
    (as [tca profile] does); {!merged_sink} is the fresh-sink variant. *)

val merged_sink : outcome list -> Tca_telemetry.Sink.t
(** One sink holding every outcome's events, joined in outcome order
    (= input order), with metrics registries folded in the same order.
    Equals the trace a serial run with one shared sink would produce. *)
