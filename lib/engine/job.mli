(** A schedulable, memoizable unit of experiment work.

    A job is a stable name plus a params fingerprint plus a pure body
    producing an {!Artifact.t}. Purity is the contract that makes the
    whole engine work: for a fixed (name, params, quick) triple the body
    must return a structurally identical artifact on every run, on any
    domain — all workload generators are seeded, so every driver in
    this repository satisfies it. The scheduler exploits it for
    parallelism, the cache for memoization. *)

type ctx = {
  telemetry : Tca_telemetry.Sink.t option;
      (** Per-job sink, single-domain: the body may use it directly on
          its own domain, and must fork/join it (see
          {!Tca_telemetry.Sink.fork}) for work it spreads over [par]. *)
  par : Tca_util.Parmap.t;
      (** Intra-job parallelism capability; [Parmap.serial] when the
          engine runs with [--jobs 1]. *)
  quick : bool;  (** Reduced sweep sizes (the drivers' [--quick]). *)
  checkpoint : unit -> unit;
      (** Cooperative cancellation point, the engine-level analogue of
          the simulator's cycle watchdog. Long-running bodies should
          call it at natural boundaries (sweep iterations, per-trace
          steps); when the scheduler runs the job under a deadline
          policy it raises [Diag.Error (Deadline _)] once the budget is
          exhausted, otherwise it is a no-op ([ignore]). The scheduler
          also threads it through [par], so any body that spreads its
          work over chunks gets deadline checks at every chunk boundary
          for free. *)
}

type t = {
  name : string;  (** stable identifier, e.g. ["fig5"] *)
  title : string;  (** one-line description for [tca list] *)
  params : (string * string) list;
      (** the inputs that determine the output, in fingerprint form;
          part of the cache key *)
  body : ctx -> Artifact.t;
}

val make :
  name:string -> title:string -> ?params:(string * string) list ->
  (ctx -> Artifact.t) -> t

val serial_ctx : ?quick:bool -> ?telemetry:Tca_telemetry.Sink.t -> unit -> ctx
(** Run a job body directly, without the scheduler. *)

val fingerprint : t -> quick:bool -> string
(** Canonical input fingerprint: name, sorted params and the quick flag.
    The cache prepends its model-version salt (see {!Cache.key}). *)

val fingerprint_digest : t -> quick:bool -> string
(** Hex digest of {!fingerprint} — the short stable form used in
    failure reports and [Diag.Task_failure]. *)
