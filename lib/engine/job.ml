type ctx = {
  telemetry : Tca_telemetry.Sink.t option;
  par : Tca_util.Parmap.t;
  quick : bool;
  checkpoint : unit -> unit;
}

type t = {
  name : string;
  title : string;
  params : (string * string) list;
  body : ctx -> Artifact.t;
}

let make ~name ~title ?(params = []) body = { name; title; params; body }

let serial_ctx ?(quick = false) ?telemetry () =
  { telemetry; par = Tca_util.Parmap.serial; quick; checkpoint = ignore }

let fingerprint t ~quick =
  let params =
    List.sort (fun (a, _) (b, _) -> String.compare a b) t.params
  in
  String.concat "\n"
    (t.name
     :: Printf.sprintf "quick=%b" quick
     :: List.map (fun (k, v) -> k ^ "=" ^ v) params)

let fingerprint_digest t ~quick =
  Digest.to_hex (Digest.string (fingerprint t ~quick))
