(** Engine-level fault injection: wrap job bodies so they misbehave in
    controlled, seeded ways.

    This is the engine-layer extension of the PR-1 fault-injection
    harness: where [Tca_util.Faultgen] feeds hostile {e values} into
    constructors, [Inject] turns whole {e jobs} hostile — raising,
    hanging until the deadline trips, failing transiently, or returning
    a structurally valid but wrong artifact. The fuzz harness
    ([test/fuzz_engine.ml]) and the CLI's [--inject JOB=FAULT] flag both
    build plans with this module, so CI can drive a real [tca run]
    through its failure paths. *)

type kind = Tca_util.Faultgen.engine_fault =
  | Raise  (** body raises a permanent (non-retryable) exception *)
  | Transient_failures of int
      (** body raises {!Scheduler.Transient} on its first [n] attempts,
          then runs honestly — recovers iff the policy grants [>= n]
          retries *)
  | Hang
      (** body spins calling [ctx.checkpoint] until the deadline trips
          (bounded by a 30s escape hatch so an un-deadlined run still
          terminates, with a [Raise]-style failure) *)
  | Corrupt_artifact
      (** body runs honestly, then returns a deterministically mangled
          but structurally valid artifact *)

type plan = (string * kind) list
(** Job name -> fault to inject. Jobs not named run untouched. *)

exception Injected_raise of string
(** The permanent exception used by [Raise] (and the hang escape
    hatch). *)

val kind_to_string : kind -> string

val parse_kind : string -> (kind, Tca_util.Diag.t) result
(** ["raise"] | ["transient"] | ["transient:N"] | ["hang"] |
    ["corrupt"]. *)

val parse_spec : string -> (string * kind, Tca_util.Diag.t) result
(** ["JOB=FAULT"], the CLI [--inject] argument. *)

val wrap : plan -> Job.t list -> Job.t list
(** Wrap each planned job's body; names, titles and params (hence
    fingerprints and cache keys) are unchanged. A [Transient_failures]
    wrapper counts attempts across scheduler retries of the same run. *)
