(** Content-addressed, crash-safe result cache for job artifacts.

    Keys are the hex digest of the model-version salt plus the job's
    canonical input fingerprint ({!Job.fingerprint}); values are the
    lossless {!Artifact.serialize} form. Two layers: an in-memory table
    (always on) and an optional directory ([dir/<key>.json]) that
    persists across processes — [tca run --cache-dir].

    Crash safety, both directions:
    - {b writes} go through {!Tca_util.Atomic_file} (temp file in the
      cache directory + rename), so a [kill -9] mid-store leaves either
      the old entry or the new one, never a truncated file at the
      addressed path;
    - {b reads} verify an MD5 checksum header over the payload before
      parsing, and the payload itself must survive the shape-checked
      {!Artifact.deserialize}. An entry that fails any of these —
      truncated, bit-flipped, stale-schema, hand-edited — is moved to
      [dir/quarantine/] (kept for post-mortem, removed from the
      addressed path so it can never be re-served), counted in
      {!quarantined} and reported as a miss. Corruption degrades a warm
      run to a cold one; it never poisons it.

    Not domain-safe: the scheduler performs all lookups before and all
    stores after its parallel phase, on one domain. *)

type t

val create : ?dir:string -> ?metrics:Tca_telemetry.Metrics.t -> unit -> t
(** With [dir], the directory is created (one level) if missing. With
    [metrics], the cache bumps the counters [engine.cache.hits],
    [engine.cache.misses] and [engine.cache.quarantined] as it runs. *)

val dir : t -> string option

val version_salt : string
(** Folded into every key. Bump when the model, the artifact schema or
    the on-disk entry format changes, so stale entries are simply never
    addressed (a miss, not a quarantine). *)

val entry_magic : string
(** First token of every on-disk entry: ["tca-cache-1 <md5-of-payload>"]
    on line one, the serialized artifact JSON after it. *)

val key : t -> Job.t -> quick:bool -> string
(** Stable content address (32 hex chars). *)

val find : t -> string -> Artifact.t option
(** Memory first, then disk; a disk hit is promoted to memory. Updates
    the hit/miss counters; a corrupt disk entry is quarantined and
    counted as a miss. *)

val store : t -> string -> Artifact.t -> unit
(** Insert into memory and, when [dir] is set, write the checksummed
    entry file atomically. Disk write failures are silently ignored —
    the cache is an accelerator, not a store of record. *)

val hits : t -> int
val misses : t -> int

val quarantined : t -> int
(** Corrupt entries moved to [dir/quarantine/] by this process. *)
