(** Content-addressed result cache for job artifacts.

    Keys are the hex digest of the model-version salt plus the job's
    canonical input fingerprint ({!Job.fingerprint}); values are the
    lossless {!Artifact.serialize} form. Two layers: an in-memory table
    (always on) and an optional directory ([dir/<key>.json]) that
    persists across processes — [tca run --cache-dir]. A corrupt,
    stale-version or unreadable file is a cache miss, never an error.

    Not domain-safe: the scheduler performs all lookups before and all
    stores after its parallel phase, on one domain. *)

type t

val create : ?dir:string -> unit -> t
(** With [dir], the directory is created (one level) if missing. *)

val dir : t -> string option

val version_salt : string
(** Folded into every key. Bump when the model or the artifact schema
    changes, so stale on-disk entries can never be re-served. *)

val key : t -> Job.t -> quick:bool -> string
(** Stable content address (32 hex chars). *)

val find : t -> string -> Artifact.t option
(** Memory first, then disk; a disk hit is promoted to memory. Updates
    the hit/miss counters. *)

val store : t -> string -> Artifact.t -> unit
(** Insert into memory and, when [dir] is set, write the file atomically
    (temp file + rename). Disk write failures are silently ignored — the
    cache is an accelerator, not a store of record. *)

val hits : t -> int
val misses : t -> int
