(** The central job registry: every experiment the system can run,
    under one namespace.

    The CLI's [tca run]/[tca list], the bench harness and the tests all
    resolve jobs through a registry instead of hand-written dispatch —
    adding an experiment means registering one {!Job.t}, and every
    surface (CLI, cache, scheduler, bench, CI) picks it up. *)

type t

val create : unit -> t

val register : t -> Job.t -> (unit, Tca_util.Diag.t) result
(** [Error (Invalid _)] on a duplicate name — two jobs with the same
    name would alias each other's cache entries. *)

val register_exn : t -> Job.t -> unit
(** @raise Tca_util.Diag.Error on a duplicate name. *)

val find : t -> string -> Job.t option

val resolve : t -> string list -> (Job.t list, Tca_util.Diag.t) result
(** Resolve names in order; [Error (Invalid _)] on the first unknown
    name, mentioning the available ones. *)

val all : t -> Job.t list
(** Sorted by name — the canonical suite order. *)

val names : t -> string list
val length : t -> int
