type kind = Tca_util.Faultgen.engine_fault =
  | Raise
  | Transient_failures of int
  | Hang
  | Corrupt_artifact

type plan = (string * kind) list

let kind_to_string = function
  | Raise -> "raise"
  | Transient_failures n -> Printf.sprintf "transient:%d" n
  | Hang -> "hang"
  | Corrupt_artifact -> "corrupt"

let parse_kind s =
  match String.lowercase_ascii s with
  | "raise" -> Ok Raise
  | "hang" -> Ok Hang
  | "corrupt" -> Ok Corrupt_artifact
  | "transient" -> Ok (Transient_failures 1)
  | s -> (
      match String.split_on_char ':' s with
      | [ "transient"; n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> Ok (Transient_failures n)
          | _ ->
              Error
                (Tca_util.Diag.Invalid
                   {
                     field = "--inject";
                     message =
                       Printf.sprintf "transient count must be a positive int, got %S" n;
                   }))
      | _ ->
          Error
            (Tca_util.Diag.Invalid
               {
                 field = "--inject";
                 message =
                   Printf.sprintf
                     "unknown fault %S (want raise | transient[:N] | hang | corrupt)"
                     s;
               }))

let parse_spec spec =
  match String.index_opt spec '=' with
  | None ->
      Error
        (Tca_util.Diag.Invalid
           {
             field = "--inject";
             message =
               Printf.sprintf "expected JOB=FAULT, got %S" spec;
           })
  | Some eq -> (
      let job = String.sub spec 0 eq in
      let fault = String.sub spec (eq + 1) (String.length spec - eq - 1) in
      if job = "" then
        Error
          (Tca_util.Diag.Invalid
             { field = "--inject"; message = "empty job name in spec" })
      else
        match parse_kind fault with
        | Ok k -> Ok (job, k)
        | Error e -> Error e)

exception Injected_raise of string

(* Deterministic wrong-but-valid output for Corrupt_artifact: the
   corruption is seeded from the job name, so the same injection plan
   mangles the same artifact the same way at -j1 and -jN. The result is
   a structurally valid artifact whose every rendered view differs from
   the honest one — exactly the failure a buggy job body produces. *)
let corrupt_artifact name (artifact : Artifact.t) =
  let g = Tca_util.Faultgen.create ~seed:(Hashtbl.hash name) in
  {
    artifact with
    Artifact.title = Tca_util.Faultgen.corrupt_string g artifact.Artifact.title;
    items = Artifact.Note "injected corruption" :: artifact.Artifact.items;
  }

let wrap_job plan (j : Job.t) =
  match List.assoc_opt j.Job.name plan with
  | None -> j
  | Some kind ->
      (* Transient faults must count attempts across retries of the same
         run, so the counter lives outside the body closure. *)
      let remaining = Atomic.make
          (match kind with Transient_failures n -> n | _ -> 0)
      in
      let body ctx =
        match kind with
        | Raise -> raise (Injected_raise j.Job.name)
        | Transient_failures _ ->
            if Atomic.fetch_and_add remaining (-1) > 0 then
              raise
                (Scheduler.Transient
                   (Printf.sprintf "injected transient failure in %s" j.Job.name))
            else j.Job.body ctx
        | Hang ->
            (* Cooperative hang: spin on the checkpoint so the deadline
               policy can trip. Bounded as a harness-safety escape hatch —
               an un-deadlined injected hang must not wedge CI forever. *)
            let deadline = Unix.gettimeofday () +. 30.0 in
            while Unix.gettimeofday () < deadline do
              ctx.Job.checkpoint ();
              ignore (Sys.opaque_identity (Digest.string j.Job.name))
            done;
            raise (Injected_raise (j.Job.name ^ ": hang escape hatch"))
        | Corrupt_artifact -> corrupt_artifact j.Job.name (j.Job.body ctx)
      in
      { j with Job.body }

let wrap plan js = List.map (wrap_job plan) js
