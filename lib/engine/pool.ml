type t = {
  mutex : Mutex.t;
  work : Condition.t;  (* a task was enqueued, or shutdown began *)
  settled : Condition.t;  (* some batch may have completed *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  n_workers : int;
}

(* Tasks do their own completion bookkeeping (slot write, counter,
   broadcast) inside the closure built by [map], so the worker loop only
   moves thunks from the queue to a domain. *)
let worker_loop t =
  Mutex.lock t.mutex;
  let rec loop () =
    match Queue.take_opt t.queue with
    | Some task ->
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        loop ()
    | None ->
        if not t.stop then begin
          Condition.wait t.work t.mutex;
          loop ()
        end
  in
  loop ();
  Mutex.unlock t.mutex

let create ~workers =
  let n_workers = max 0 workers in
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      settled = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
      n_workers;
    }
  in
  t.domains <- List.init n_workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let workers t = t.n_workers

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    (* Guarded by [t.mutex], like the queue. *)
    let remaining = ref n in
    let task i () =
      let r =
        try Ok (f xs.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mutex;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.broadcast t.settled;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.work;
    (* Participate: run anything queued (ours or another batch's) while
       our batch is unsettled; only block when the queue is dry. *)
    while !remaining > 0 do
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.mutex;
          task ();
          Mutex.lock t.mutex
      | None -> if !remaining > 0 then Condition.wait t.settled t.mutex
    done;
    Mutex.unlock t.mutex;
    (* All settled; surface the lowest-index failure, as serial would. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      results;
    Array.map
      (function
        | Some (Ok y) -> y
        | Some (Error _) | None -> assert false (* settled, no failures *))
      results
  end

let parmap t = { Tca_util.Parmap.run = (fun f xs -> map t f xs) }

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~workers f =
  let t = create ~workers in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
