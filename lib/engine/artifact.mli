(** The uniform result of an experiment job.

    Every driver used to hand-roll its own [Table.print] and
    [Csv.to_string] assembly, formatting the same numbers twice with
    slightly different shapes. An artifact stores each value {e once},
    as a typed cell, and derives every view from it:

    - {!to_text}: the human-readable report (titles, notes, aligned
      tables — what the drivers' [print] used to produce);
    - {!to_csv} / {!table_csv}: machine-readable CSV at full float
      precision;
    - {!to_json}: a stable JSON document (the schema pinned by the
      golden test in [test/test_engine.ml]);
    - {!serialize} / {!deserialize}: a lossless round-trip form used by
      the content-addressed result cache — floats are preserved
      bit-exactly, so a cache hit re-renders byte-identical views.

    Artifacts are plain immutable data: building one never prints,
    never raises, and two structurally equal artifacts render to
    byte-identical views — the invariant behind the scheduler's
    "[--jobs 1] and [--jobs N] are bit-identical" guarantee. *)

type cell =
  | Text of string
  | Int of int
  | Fixed of int * float
      (** [%.*f] with the given decimals in the text view; full
          precision in CSV/JSON. *)
  | Sci of float  (** [%.1e] in the text view. *)
  | Pct of float
      (** Value already in percent units; [%+.1f%%] in the text view. *)

val text : string -> cell
val int : int -> cell

val flt : ?decimals:int -> float -> cell
(** [Fixed (decimals, x)]; decimals default 3, matching
    [Tca_util.Table.float_cell]. *)

val sci : float -> cell
val pct : float -> cell

val cell_text : cell -> string
(** The text-view rendering of one cell. *)

val cell_raw : cell -> string
(** The CSV rendering: [string_of_float]/[string_of_int] full
    precision, no formatting. *)

type table = {
  name : string;  (** CSV/JSON section label; not shown in text *)
  headers : string list;
  cells : cell list list;
  in_text : bool;
      (** when false the table only appears in CSV/JSON views (used for
          long-format exports whose text rendering is a heatmap or a
          thinned excerpt carried in notes) *)
}

val table :
  ?in_text:bool -> name:string -> headers:string list -> cell list list ->
  table
(** @raise Invalid_argument on ragged rows (a row whose arity differs
    from the header's). *)

(** Items preserve the narrative order of the old [print] functions:
    notes and tables interleave. *)
type item = Table of table | Note of string

type t = { job : string; title : string; items : item list }

val make : job:string -> title:string -> item list -> t

val of_table : job:string -> title:string -> table -> t
(** Single-table artifact, the common case. *)

val tables : t -> table list
val notes : t -> string list

val find_table : t -> string -> table option
(** First table with the given name. *)

val to_text : t -> string
(** Title, then items in order: notes verbatim, tables rendered with
    [Tca_util.Table]; [in_text = false] tables are skipped. Ends with a
    newline. *)

val table_csv : table -> string
(** Header + rows, full float precision. *)

val to_csv : t -> string
(** All tables. A single-table artifact is exactly that table's
    {!table_csv}; with several tables each section is preceded by a
    [# name] comment line and separated by a blank line. *)

val to_json : t -> Tca_util.Json.t
(** The public machine view:
    [{"job", "title", "tables": [{"name", "headers", "rows"}], "notes"}]
    with cell values as raw JSON numbers/strings. This schema is pinned
    by a golden test — extend it, don't reshape it. *)

val serialize : t -> Tca_util.Json.t
(** Lossless cache form (preserves cell kinds and float bits; non-finite
    floats survive the round-trip). Not the public view. *)

val deserialize : Tca_util.Json.t -> (t, Tca_util.Diag.t) result
(** Inverse of {!serialize}. [Error (Invalid _)] on any shape
    mismatch — a corrupt cache file reads as a miss, never a crash. *)

val fingerprint : t -> string
(** Hex digest of the serialized form; equal fingerprints imply
    byte-identical views. *)
