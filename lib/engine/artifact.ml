type cell =
  | Text of string
  | Int of int
  | Fixed of int * float
  | Sci of float
  | Pct of float

let text s = Text s
let int i = Int i
let flt ?(decimals = 3) x = Fixed (decimals, x)
let sci x = Sci x
let pct x = Pct x

let cell_text = function
  | Text s -> s
  | Int i -> string_of_int i
  | Fixed (d, x) -> Printf.sprintf "%.*f" d x
  | Sci x -> Printf.sprintf "%.1e" x
  | Pct x -> Printf.sprintf "%+.1f%%" x

let cell_raw = function
  | Text s -> s
  | Int i -> string_of_int i
  | Fixed (_, x) | Sci x | Pct x -> string_of_float x

type table = {
  name : string;
  headers : string list;
  cells : cell list list;
  in_text : bool;
}

let table ?(in_text = true) ~name ~headers cells =
  let arity = List.length headers in
  List.iteri
    (fun i row ->
      if List.length row <> arity then
        invalid_arg
          (Printf.sprintf "Artifact.table %S: row %d has %d cells, expected %d"
             name i (List.length row) arity))
    cells;
  { name; headers; cells; in_text }

type item = Table of table | Note of string

type t = { job : string; title : string; items : item list }

let make ~job ~title items = { job; title; items }
let of_table ~job ~title tbl = { job; title; items = [ Table tbl ] }

let tables t =
  List.filter_map (function Table tbl -> Some tbl | Note _ -> None) t.items

let notes t =
  List.filter_map (function Note n -> Some n | Table _ -> None) t.items

let find_table t name = List.find_opt (fun tbl -> tbl.name = name) (tables t)

let to_text t =
  let buf = Buffer.create 1024 in
  if t.title <> "" then begin
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n'
  end;
  List.iter
    (function
      | Note n ->
          Buffer.add_string buf n;
          Buffer.add_char buf '\n'
      | Table tbl ->
          if tbl.in_text then
            Buffer.add_string buf
              (Tca_util.Table.render ~headers:tbl.headers
                 (List.map (List.map cell_text) tbl.cells)))
    t.items;
  Buffer.contents buf

let table_csv tbl =
  Tca_util.Csv.to_string ~header:tbl.headers
    (List.map (List.map cell_raw) tbl.cells)

let to_csv t =
  match tables t with
  | [ tbl ] -> table_csv tbl
  | tbls ->
      String.concat "\n"
        (List.map (fun tbl -> "# " ^ tbl.name ^ "\n" ^ table_csv tbl) tbls)

(* --- public JSON view (schema pinned by a golden test) --- *)

let cell_json = function
  | Text s -> Tca_util.Json.String s
  | Int i -> Tca_util.Json.Int i
  | Fixed (_, x) | Sci x | Pct x -> Tca_util.Json.Float x

let table_json tbl =
  let open Tca_util.Json in
  Obj
    [
      ("name", String tbl.name);
      ("headers", List (List.map (fun h -> String h) tbl.headers));
      ("rows", List (List.map (fun row -> List (List.map cell_json row)) tbl.cells));
    ]

let to_json t =
  let open Tca_util.Json in
  Obj
    [
      ("job", String t.job);
      ("title", String t.title);
      ("tables", List (List.map table_json (tables t)));
      ("notes", List (List.map (fun n -> String n) (notes t)));
    ]

(* --- lossless cache form --- *)

(* Json.Float emits non-finite values as null, so they are carried as
   tagged strings instead; finite floats round-trip exactly through the
   printer's shortest-representation rule. *)
let float_ser x =
  if Float.is_finite x then Tca_util.Json.Float x
  else if Float.is_nan x then Tca_util.Json.String "nan"
  else if x > 0.0 then Tca_util.Json.String "inf"
  else Tca_util.Json.String "-inf"

let float_deser = function
  | Tca_util.Json.Float x -> Some x
  | Tca_util.Json.Int i -> Some (float_of_int i)
  | Tca_util.Json.String "nan" -> Some Float.nan
  | Tca_util.Json.String "inf" -> Some Float.infinity
  | Tca_util.Json.String "-inf" -> Some Float.neg_infinity
  | _ -> None

let cell_ser =
  let open Tca_util.Json in
  function
  | Text s -> String s
  | Int i -> Int i
  | Fixed (d, x) -> List [ String "f"; Int d; float_ser x ]
  | Sci x -> List [ String "e"; float_ser x ]
  | Pct x -> List [ String "%"; float_ser x ]

let cell_deser =
  let open Tca_util.Json in
  function
  | String s -> Some (Text s)
  | Int i -> Some (Int i : cell)
  | List [ String "f"; Int d; x ] ->
      Option.map (fun x -> Fixed (d, x)) (float_deser x)
  | List [ String "e"; x ] -> Option.map (fun x -> Sci x) (float_deser x)
  | List [ String "%"; x ] -> Option.map (fun x -> Pct x) (float_deser x)
  | _ -> None

let version = 1

let item_ser =
  let open Tca_util.Json in
  function
  | Note n -> Obj [ ("note", String n) ]
  | Table tbl ->
      Obj
        [
          ( "table",
            Obj
              [
                ("name", String tbl.name);
                ("headers", List (List.map (fun h -> String h) tbl.headers));
                ("in_text", Bool tbl.in_text);
                ( "rows",
                  List
                    (List.map
                       (fun row -> List (List.map cell_ser row))
                       tbl.cells) );
              ] );
        ]

let serialize t =
  let open Tca_util.Json in
  Obj
    [
      ("v", Int version);
      ("job", String t.job);
      ("title", String t.title);
      ("items", List (List.map item_ser t.items));
    ]

let invalid message =
  Error (Tca_util.Diag.Invalid { field = "Artifact.deserialize"; message })

(* Shape-checked, total readback: any mismatch is an [Error], so a
   corrupt or stale cache file degrades to a cache miss. *)
let deserialize json =
  let open Tca_util.Json in
  let ( let* ) = Result.bind in
  let str name j =
    match Option.bind (member name j) to_string_opt with
    | Some s -> Ok s
    | None -> invalid (name ^ ": expected a string")
  in
  let opt_to_result msg = function Some x -> Ok x | None -> invalid msg in
  let item_deser j =
    match member "note" j with
    | Some (String n) -> Ok (Note n)
    | Some _ -> invalid "note: expected a string"
    | None -> (
        match member "table" j with
        | None -> invalid "item: expected note or table"
        | Some tj ->
            let* name = str "name" tj in
            let* headers =
              opt_to_result "headers: expected a string list"
                (Option.bind (member "headers" tj) (fun l ->
                     Option.bind (to_list_opt l) (fun items ->
                         List.fold_right
                           (fun h acc ->
                             Option.bind acc (fun acc ->
                                 Option.map (fun s -> s :: acc)
                                   (to_string_opt h)))
                           items (Some []))))
            in
            let in_text =
              match member "in_text" tj with Some (Bool b) -> b | _ -> true
            in
            let* rows =
              opt_to_result "rows: expected cell rows"
                (Option.bind (member "rows" tj) (fun l ->
                     Option.bind (to_list_opt l) (fun rows ->
                         List.fold_right
                           (fun row acc ->
                             Option.bind acc (fun acc ->
                                 Option.bind (to_list_opt row) (fun cells ->
                                     Option.map (fun cs -> cs :: acc)
                                       (List.fold_right
                                          (fun c acc ->
                                            Option.bind acc (fun acc ->
                                                Option.map
                                                  (fun c -> c :: acc)
                                                  (cell_deser c)))
                                          cells (Some [])))))
                           rows (Some []))))
            in
            let arity = List.length headers in
            if List.exists (fun row -> List.length row <> arity) rows then
              invalid (Printf.sprintf "table %S: ragged rows" name)
            else Ok (Table { name; headers; cells = rows; in_text }))
  in
  match member "v" json with
  | Some (Int v) when v = version ->
      let* job = str "job" json in
      let* title = str "title" json in
      let* items =
        match Option.bind (member "items" json) to_list_opt with
        | None -> invalid "items: expected a list"
        | Some items ->
            List.fold_right
              (fun item acc ->
                let* acc = acc in
                let* item = item_deser item in
                Ok (item :: acc))
              items (Ok [])
      in
      Ok { job; title; items }
  | Some _ -> invalid "v: unsupported version"
  | None -> invalid "v: missing version"

let fingerprint t =
  Digest.to_hex (Digest.string (Tca_util.Json.to_string (serialize t)))
