type t = {
  dir : string option;
  mem : (string, Artifact.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let version_salt = "tca-engine-v1"

let create ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
      try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ())
  | _ -> ());
  { dir; mem = Hashtbl.create 64; hits = 0; misses = 0 }

let dir t = t.dir

let key _t (job : Job.t) ~quick =
  Digest.to_hex
    (Digest.string (version_salt ^ "\x00" ^ Job.fingerprint job ~quick))

let path dir k = Filename.concat dir (k ^ ".json")

let read_file p =
  try
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ -> None

let disk_find t k =
  match t.dir with
  | None -> None
  | Some d -> (
      match read_file (path d k) with
      | None -> None
      | Some contents -> (
          match Tca_util.Json.parse contents with
          | Error _ -> None
          | Ok json -> (
              match Artifact.deserialize json with
              | Error _ -> None
              | Ok artifact -> Some artifact)))

let find t k =
  match Hashtbl.find_opt t.mem k with
  | Some artifact ->
      t.hits <- t.hits + 1;
      Some artifact
  | None -> (
      match disk_find t k with
      | Some artifact ->
          Hashtbl.replace t.mem k artifact;
          t.hits <- t.hits + 1;
          Some artifact
      | None ->
          t.misses <- t.misses + 1;
          None)

let store t k artifact =
  Hashtbl.replace t.mem k artifact;
  match t.dir with
  | None -> ()
  | Some d -> (
      let final = path d k in
      let tmp =
        Printf.sprintf "%s.tmp.%d" final (Unix.getpid ())
      in
      try
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc
              (Tca_util.Json.to_string (Artifact.serialize artifact)));
        Sys.rename tmp final
      with Sys_error _ | Unix.Unix_error _ -> (
        try Sys.remove tmp with Sys_error _ -> ()))

let hits t = t.hits
let misses t = t.misses
