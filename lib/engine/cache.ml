type t = {
  dir : string option;
  mem : (string, Artifact.t) Hashtbl.t;
  metrics : Tca_telemetry.Metrics.t option;
  mutable hits : int;
  mutable misses : int;
  mutable quarantined : int;
}

(* v2: the on-disk entry format gained the checksum header. Old-salt
   entries are simply never addressed (different keys), so a v1 cache
   directory warms up from scratch instead of tripping quarantine. *)
let version_salt = "tca-engine-v2"

(* First line of every entry file: magic, space, MD5 hex of the payload
   (everything after the newline). A file that lost its tail in a crash
   or had bits flipped at rest can no longer checksum-match, whatever
   the damage does to the JSON inside. *)
let entry_magic = "tca-cache-1"

let create ?dir ?metrics () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
      try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ())
  | _ -> ());
  {
    dir;
    mem = Hashtbl.create 64;
    metrics;
    hits = 0;
    misses = 0;
    quarantined = 0;
  }

let dir t = t.dir

let bump t name =
  match t.metrics with
  | None -> ()
  | Some reg -> (
      match Tca_telemetry.Metrics.counter reg name with
      | Ok c -> Tca_telemetry.Metrics.Counter.incr c
      | Error _ -> ())

let key _t (job : Job.t) ~quick =
  Digest.to_hex
    (Digest.string (version_salt ^ "\x00" ^ Job.fingerprint job ~quick))

let path dir k = Filename.concat dir (k ^ ".json")

let read_file p =
  try
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ -> None

let encode artifact =
  let payload = Tca_util.Json.to_string (Artifact.serialize artifact) in
  Printf.sprintf "%s %s\n%s" entry_magic (Digest.to_hex (Digest.string payload))
    payload

(* Total: any deviation — missing header, checksum mismatch, unparseable
   or shape-invalid payload — is [None], never an exception. *)
let decode contents =
  match String.index_opt contents '\n' with
  | None -> None
  | Some nl -> (
      let header = String.sub contents 0 nl in
      let payload =
        String.sub contents (nl + 1) (String.length contents - nl - 1)
      in
      match String.split_on_char ' ' header with
      | [ magic; checksum ]
        when magic = entry_magic
             && checksum = Digest.to_hex (Digest.string payload) -> (
          match Tca_util.Json.parse payload with
          | Error _ -> None
          | Ok json -> (
              match Artifact.deserialize json with
              | Error _ -> None
              | Ok artifact -> Some artifact))
      | _ -> None)

(* A corrupt entry is evidence, not garbage: move it aside so a warm run
   can never re-read it, but keep the bytes for post-mortem. Every
   failure path falls back to deletion so the poisoned file is gone from
   the addressed path no matter what. *)
let quarantine t d file =
  let src = Filename.concat d file in
  let qdir = Filename.concat d "quarantine" in
  (try
     if not (Sys.file_exists qdir) then Unix.mkdir qdir 0o755;
     Sys.rename src (Filename.concat qdir file)
   with Sys_error _ | Unix.Unix_error _ -> (
     try Sys.remove src with Sys_error _ -> ()));
  t.quarantined <- t.quarantined + 1;
  bump t "engine.cache.quarantined"

let disk_find t k =
  match t.dir with
  | None -> None
  | Some d -> (
      let p = path d k in
      match read_file p with
      | None -> None
      | Some contents -> (
          match decode contents with
          | Some artifact -> Some artifact
          | None ->
              quarantine t d (k ^ ".json");
              None))

let find t k =
  match Hashtbl.find_opt t.mem k with
  | Some artifact ->
      t.hits <- t.hits + 1;
      bump t "engine.cache.hits";
      Some artifact
  | None -> (
      match disk_find t k with
      | Some artifact ->
          Hashtbl.replace t.mem k artifact;
          t.hits <- t.hits + 1;
          bump t "engine.cache.hits";
          Some artifact
      | None ->
          t.misses <- t.misses + 1;
          bump t "engine.cache.misses";
          None)

let store t k artifact =
  Hashtbl.replace t.mem k artifact;
  match t.dir with
  | None -> ()
  | Some d -> (
      match Tca_util.Atomic_file.write (path d k) (encode artifact) with
      | Ok () -> ()
      | Error _ -> () (* the cache is an accelerator, not a store of record *))

let hits t = t.hits
let misses t = t.misses
let quarantined t = t.quarantined
