type t = { tbl : (string, Job.t) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let register t (job : Job.t) =
  if Hashtbl.mem t.tbl job.Job.name then
    Error
      (Tca_util.Diag.Invalid
         {
           field = "Registry.register";
           message = Printf.sprintf "job %S is already registered" job.Job.name;
         })
  else begin
    Hashtbl.replace t.tbl job.Job.name job;
    Ok ()
  end

let register_exn t job = Tca_util.Diag.ok_exn (register t job)

let find t name = Hashtbl.find_opt t.tbl name

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl []
  |> List.sort String.compare

let all t = List.filter_map (find t) (names t)
let length t = Hashtbl.length t.tbl

let resolve t requested =
  List.fold_right
    (fun name acc ->
      Result.bind acc (fun acc ->
          match find t name with
          | Some job -> Ok (job :: acc)
          | None ->
              Error
                (Tca_util.Diag.Invalid
                   {
                     field = "Registry.resolve";
                     message =
                       Printf.sprintf "unknown job %S (available: %s)" name
                         (String.concat ", " (names t));
                   })))
    requested (Ok [])
