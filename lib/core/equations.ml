open Diag.Syntax

type times = {
  t_baseline : float;
  t_accl : float;
  t_non_accl : float;
  t_drain : float;
  t_rob_fill : float;
  t_commit : float;
  config : Params.config_cost;
}

(* The configuration-wall terms (T1)-(T3). (T2) deliberately ignores the
   queue depth: a serial descriptor engine that never idles with backlog
   is a steady-state throughput bound max(base, c); depth only limits
   transient bursts (Assume.audit grades that assumption). *)
let config_overhead (config : Params.config_cost) ~base =
  match config with
  | Params.No_config -> base
  | Params.Sync c -> base +. c (* (T1) *)
  | Params.Queued { t_config = c; _ } -> Float.max base c (* (T2) *)
  | Params.Preprogrammed { t_config = c; invocations = n } ->
      base +. (c /. float_of_int n) (* (T3) *)

(* Extreme-but-valid inputs (v = 1e-300, latency = 1e308, ...) can push an
   intermediate time to infinity; checking the computed record keeps the
   [Ok ==> finite] contract without re-deriving overflow conditions. *)
let check_times t =
  let* _ = Diag.finite ~field:"Equations.t_baseline" t.t_baseline in
  let* _ = Diag.finite ~field:"Equations.t_accl" t.t_accl in
  let* _ = Diag.finite ~field:"Equations.t_non_accl" t.t_non_accl in
  let* _ = Diag.finite ~field:"Equations.t_drain" t.t_drain in
  let* _ = Diag.finite ~field:"Equations.t_rob_fill" t.t_rob_fill in
  let* _ = Diag.finite ~field:"Equations.t_commit" t.t_commit in
  let* _ =
    match t.config with
    | Params.No_config -> Ok 0.0
    | Params.Sync c
    | Params.Queued { t_config = c; _ }
    | Params.Preprogrammed { t_config = c; _ } ->
        Diag.finite ~field:"Equations.t_config" c
  in
  Ok t

let interval_times (core : Params.core) (s : Params.scenario) =
  let* () =
    if s.v <= 0.0 then
      Error
        (Diag.Domain
           { field = "Equations.interval_times.v"; lo = Float.min_float;
             hi = infinity; actual = s.v })
    else Ok ()
  in
  let t_baseline = 1.0 /. (s.v *. core.ipc) in
  let t_accl =
    match s.accel with
    | Params.Factor a_factor -> s.a /. (s.v *. a_factor *. core.ipc)
    | Params.Latency l -> l
  in
  let t_non_accl = (1.0 -. s.a) /. (s.v *. core.ipc) in
  let fit =
    Tca_interval.Power_law.calibrate ~ipc:core.ipc ~window:core.rob_size
      ~beta:core.drain_beta
  in
  let t_drain =
    Tca_interval.Drain.time s.drain ~fit ~window:core.rob_size
      ~interval_instrs:((1.0 -. s.a) /. s.v)
      ~non_accl_time:t_non_accl
  in
  let t_rob_fill = float_of_int core.rob_size /. float_of_int core.issue_width in
  check_times
    { t_baseline; t_accl; t_non_accl; t_drain; t_rob_fill;
      t_commit = core.commit_stall; config = s.config }

let interval_times_exn core s = Diag.ok_exn (interval_times core s)

let time_of_times (t : times) (mode : Mode.t) =
  let base =
    match mode with
    | Mode.NL_NT ->
        (* eq. (4): drain, execute, and commit twice (once for the drained
           window, once for the TCA itself). *)
        t.t_non_accl +. t.t_accl +. t.t_drain +. (2.0 *. t.t_commit)
    | Mode.L_NT ->
        (* eq. (5): the TCA overlaps leading work; the front end stalls for
           the TCA's execution and commit only. *)
        t.t_non_accl +. t.t_accl +. t.t_commit
    | Mode.NL_T ->
        (* eqs. (6)-(7): trailing instructions flow until the ROB fills;
           the TCA start is delayed by the drain. *)
        let rob_full =
          Float.max 0.0 (t.t_drain +. t.t_accl +. t.t_commit -. t.t_rob_fill)
        in
        Float.max
          (t.t_non_accl +. rob_full)
          (t.t_accl +. t.t_drain +. t.t_commit)
    | Mode.L_T ->
        (* eqs. (8)-(9): full overlap; only a very long TCA that outlives
           the ROB fill stalls the front end. *)
        let rob_full = Float.max 0.0 (t.t_accl -. t.t_rob_fill) in
        Float.max (t.t_non_accl +. rob_full) t.t_accl
  in
  (* (T1)-(T3): identity under No_config, so eqs. (4)-(9) are unchanged. *)
  config_overhead t.config ~base

let mode_time core s mode =
  let* t = interval_times core s in
  Diag.finite ~field:"Equations.mode_time" (time_of_times t mode)

let mode_time_exn core s mode = Diag.ok_exn (mode_time core s mode)

let speedup core s mode =
  if s.Params.v <= 0.0 then Ok 1.0
  else
    let* t = interval_times core s in
    Diag.finite ~field:"Equations.speedup"
      (t.t_baseline /. time_of_times t mode)

let speedup_exn core s mode = Diag.ok_exn (speedup core s mode)

let speedups core s =
  List.fold_right
    (fun m acc ->
      let* acc = acc in
      let* sp = speedup core s m in
      Ok ((m, sp) :: acc))
    Mode.all (Ok [])

let speedups_exn core s = Diag.ok_exn (speedups core s)

let best_mode core s =
  let* sps = speedups core s in
  match sps with
  | [] -> Error (Diag.Empty_input { field = "Equations.best_mode" })
  | first :: rest ->
      Ok
        (List.fold_left
           (fun ((_, best_s) as best) ((_, cand_s) as cand) ->
             if cand_s > best_s then cand else best)
           first rest)

let best_mode_exn core s = Diag.ok_exn (best_mode core s)

(* Smallest granularity g = a/v at which the mode breaks even against
   its configuration wall. Speedup is monotone non-decreasing in g for a
   fixed (a, accel, config) — larger invocations amortize every fixed
   per-invocation cost — so one sign change bounds the crossing and a
   geometric bisection (g spans decades) pins it down. *)
let config_break_even ?(hi = 1e9) (core : Params.core) ~a ~accel ~config mode =
  let speedup_at g =
    let* s = Params.scenario_of_granularity ~config ~a ~g ~accel () in
    speedup core s mode
  in
  let* hi =
    Diag.in_range ~field:"Equations.config_break_even.hi" ~lo:1.0 ~hi:infinity
      hi
  in
  let* s_lo = speedup_at 1.0 in
  if s_lo >= 1.0 then Ok (Some 1.0)
  else
    let* s_hi = speedup_at hi in
    if s_hi < 1.0 then Ok None
    else
      let rec bisect lo hi n =
        if n = 0 || hi -. lo <= 1e-6 *. hi then Ok (Some hi)
        else
          let mid = Float.sqrt (lo *. hi) in
          let* s_mid = speedup_at mid in
          if s_mid >= 1.0 then bisect lo mid (n - 1) else bisect mid hi (n - 1)
      in
      bisect 1.0 hi 100

let config_break_even_exn ?hi core ~a ~accel ~config mode =
  Diag.ok_exn (config_break_even ?hi core ~a ~accel ~config mode)

(* --- multi-unit composition ------------------------------------------

   The composed rule works per *instruction* instead of per interval:
   with N units there is no longer a single "interval containing one
   invocation", so every term of eqs. (4)-(9) is multiplied through by
   its unit's invocation rate v_i and summed. Dividing the whole-program
   times by the instruction count gives the per-instruction forms below;
   at N = 1 (chained = 0, shared port) each mode time is exactly v times
   the corresponding single-unit interval time, so speedups reduce to
   eqs. (4)-(9) — a property the test suite pins. *)

type composed_times = {
  c_baseline : float;
  c_non_accl : float;
  c_accl_total : float;
  c_drain : float;
  c_rob_fill : float;
  c_commit : float;
  c_v_total : float;
  c_v_drain : float;
  c_contend : float;
  c_unit_terms : (float * float) list;
  c_cfg_add : float;
  c_cfg_floor : float;
}

let check_composed t =
  let* _ = Diag.finite ~field:"Equations.c_baseline" t.c_baseline in
  let* _ = Diag.finite ~field:"Equations.c_non_accl" t.c_non_accl in
  let* _ = Diag.finite ~field:"Equations.c_accl_total" t.c_accl_total in
  let* _ = Diag.finite ~field:"Equations.c_drain" t.c_drain in
  let* _ = Diag.finite ~field:"Equations.c_contend" t.c_contend in
  let* _ = Diag.finite ~field:"Equations.c_cfg_add" t.c_cfg_add in
  let* _ = Diag.finite ~field:"Equations.c_cfg_floor" t.c_cfg_floor in
  let* _ =
    List.fold_left
      (fun acc (_, tl) ->
        let* _ = acc in
        Diag.finite ~field:"Equations.c_unit_terms" tl)
      (Ok 0.0) t.c_unit_terms
  in
  Ok t

let composed_v_total (c : Params.composition) =
  List.fold_left
    (fun acc (u : Params.unit_scenario) -> acc +. u.Params.v)
    0.0 c.Params.units

let composed_times (core : Params.core) (c : Params.composition) =
  let v_total = composed_v_total c in
  let* () =
    if v_total <= 0.0 then
      Error
        (Diag.Domain
           { field = "Equations.composed_times.v_total"; lo = Float.min_float;
             hi = infinity; actual = v_total })
    else Ok ()
  in
  let a_total =
    List.fold_left
      (fun acc (u : Params.unit_scenario) -> acc +. u.Params.a)
      0.0 c.Params.units
  in
  (* Per-invocation execution time of one unit: eq. (2) scaled to a
     single invocation, or the architect's explicit latency. *)
  let unit_latency (u : Params.unit_scenario) =
    match u.Params.accel with
    | Params.Factor f ->
        if u.Params.v <= 0.0 then 0.0
        else u.Params.a /. (u.Params.v *. f *. core.ipc)
    | Params.Latency l -> l
  in
  let c_unit_terms =
    List.map (fun (u : Params.unit_scenario) -> (u.Params.v, unit_latency u))
      c.Params.units
  in
  let c_baseline = 1.0 /. core.ipc in
  let c_non_accl = (1.0 -. a_total) /. core.ipc in
  let c_accl_total =
    List.fold_left (fun acc (v, tl) -> acc +. (v *. tl)) 0.0 c_unit_terms
  in
  let fit =
    Tca_interval.Power_law.calibrate ~ipc:core.ipc ~window:core.rob_size
      ~beta:core.drain_beta
  in
  let c_drain =
    Tca_interval.Drain.time c.Params.drain ~fit ~window:core.rob_size
      ~interval_instrs:((1.0 -. a_total) /. v_total)
      ~non_accl_time:(c_non_accl /. v_total)
  in
  let c_rob_fill = float_of_int core.rob_size /. float_of_int core.issue_width in
  let c_v_drain = (1.0 -. c.Params.chained) *. v_total in
  let c_contend =
    match c.Params.commit_port with
    | Params.Shared -> c.Params.chained *. v_total *. core.commit_stall
    | Params.Private -> 0.0
  in
  (* Per-unit (T1)-(T3): additive mechanisms sum per instruction, each
     queued descriptor engine is an independent throughput floor of
     which only the busiest binds. *)
  let c_cfg_add, c_cfg_floor =
    List.fold_left
      (fun (add, floor) (u : Params.unit_scenario) ->
        match u.Params.config with
        | Params.No_config -> (add, floor)
        | Params.Sync cfg -> (add +. (u.Params.v *. cfg), floor)
        | Params.Queued { t_config = cfg; _ } ->
            (add, Float.max floor (u.Params.v *. cfg))
        | Params.Preprogrammed { t_config = cfg; invocations = n } ->
            (add +. (u.Params.v *. cfg /. float_of_int n), floor))
      (0.0, 0.0) c.Params.units
  in
  check_composed
    { c_baseline; c_non_accl; c_accl_total; c_drain; c_rob_fill;
      c_commit = core.commit_stall; c_v_total = v_total; c_v_drain; c_contend;
      c_unit_terms; c_cfg_add; c_cfg_floor }

let composed_times_exn core c = Diag.ok_exn (composed_times core c)

let composed_time_of_times (t : composed_times) (mode : Mode.t) =
  (* Σ_i v_i · max(0, over(t_accl_i)): the per-unit generalization of
     the ROB-full front-end stall of eqs. (6)-(9). *)
  let rob_stall over =
    List.fold_left
      (fun acc (v, tl) -> acc +. (v *. Float.max 0.0 (over tl)))
      0.0 t.c_unit_terms
  in
  (* Composed (T1)-(T3): additive config cost on top of the mode time,
     then the busiest queued descriptor engine as a throughput floor.
     Both are 0 without config costs, leaving the base table intact. *)
  let with_config base =
    Float.max (base +. t.c_cfg_add) t.c_cfg_floor
  in
  with_config
  @@
  match mode with
  | Mode.NL_NT ->
      (* eq. (4) summed over units: every non-chained invocation drains
         and commits its own window, every invocation commits itself. *)
      t.c_non_accl +. t.c_accl_total
      +. (t.c_v_drain *. (t.c_drain +. t.c_commit))
      +. (t.c_v_total *. t.c_commit)
      +. t.c_contend
  | Mode.L_NT ->
      (* eq. (5) summed: leading work overlaps every drain. *)
      t.c_non_accl +. t.c_accl_total
      +. (t.c_v_total *. t.c_commit)
      +. t.c_contend
  | Mode.NL_T ->
      (* eqs. (6)-(7) summed: each unit's invocations stall the front
         end only past their own ROB refill. *)
      let rob_full =
        rob_stall (fun tl -> t.c_drain +. tl +. t.c_commit -. t.c_rob_fill)
      in
      Float.max
        (t.c_non_accl +. rob_full)
        (t.c_accl_total
        +. (t.c_v_drain *. t.c_drain)
        +. (t.c_v_total *. t.c_commit))
      +. t.c_contend
  | Mode.L_T ->
      (* eqs. (8)-(9) summed. *)
      let rob_full = rob_stall (fun tl -> tl -. t.c_rob_fill) in
      Float.max (t.c_non_accl +. rob_full) t.c_accl_total +. t.c_contend

let composed_mode_time core c mode =
  let* t = composed_times core c in
  Diag.finite ~field:"Equations.composed_mode_time"
    (composed_time_of_times t mode)

let composed_mode_time_exn core c mode =
  Diag.ok_exn (composed_mode_time core c mode)

let composed_speedup core c mode =
  if composed_v_total c <= 0.0 then Ok 1.0
  else
    let* t = composed_times core c in
    Diag.finite ~field:"Equations.composed_speedup"
      (t.c_baseline /. composed_time_of_times t mode)

let composed_speedup_exn core c mode =
  Diag.ok_exn (composed_speedup core c mode)

let composed_speedups core c =
  List.fold_right
    (fun m acc ->
      let* acc = acc in
      let* sp = composed_speedup core c m in
      Ok ((m, sp) :: acc))
    Mode.all (Ok [])

let composed_speedups_exn core c = Diag.ok_exn (composed_speedups core c)

let composed_best_mode core c =
  let* sps = composed_speedups core c in
  match sps with
  | [] -> Error (Diag.Empty_input { field = "Equations.composed_best_mode" })
  | first :: rest ->
      Ok
        (List.fold_left
           (fun ((_, best_s) as best) ((_, cand_s) as cand) ->
             if cand_s > best_s then cand else best)
           first rest)

let composed_best_mode_exn core c = Diag.ok_exn (composed_best_mode core c)

let ideal_speedup core s =
  if s.Params.v <= 0.0 then Ok 1.0
  else
    let* t = interval_times core s in
    Diag.finite ~field:"Equations.ideal_speedup"
      (t.t_baseline /. (t.t_non_accl +. t.t_accl))

let ideal_speedup_exn core s = Diag.ok_exn (ideal_speedup core s)
