open Diag.Syntax

type times = {
  t_baseline : float;
  t_accl : float;
  t_non_accl : float;
  t_drain : float;
  t_rob_fill : float;
  t_commit : float;
}

(* Extreme-but-valid inputs (v = 1e-300, latency = 1e308, ...) can push an
   intermediate time to infinity; checking the computed record keeps the
   [Ok ==> finite] contract without re-deriving overflow conditions. *)
let check_times t =
  let* _ = Diag.finite ~field:"Equations.t_baseline" t.t_baseline in
  let* _ = Diag.finite ~field:"Equations.t_accl" t.t_accl in
  let* _ = Diag.finite ~field:"Equations.t_non_accl" t.t_non_accl in
  let* _ = Diag.finite ~field:"Equations.t_drain" t.t_drain in
  let* _ = Diag.finite ~field:"Equations.t_rob_fill" t.t_rob_fill in
  let* _ = Diag.finite ~field:"Equations.t_commit" t.t_commit in
  Ok t

let interval_times (core : Params.core) (s : Params.scenario) =
  let* () =
    if s.v <= 0.0 then
      Error
        (Diag.Domain
           { field = "Equations.interval_times.v"; lo = Float.min_float;
             hi = infinity; actual = s.v })
    else Ok ()
  in
  let t_baseline = 1.0 /. (s.v *. core.ipc) in
  let t_accl =
    match s.accel with
    | Params.Factor a_factor -> s.a /. (s.v *. a_factor *. core.ipc)
    | Params.Latency l -> l
  in
  let t_non_accl = (1.0 -. s.a) /. (s.v *. core.ipc) in
  let fit =
    Tca_interval.Power_law.calibrate ~ipc:core.ipc ~window:core.rob_size
      ~beta:core.drain_beta
  in
  let t_drain =
    Tca_interval.Drain.time s.drain ~fit ~window:core.rob_size
      ~interval_instrs:((1.0 -. s.a) /. s.v)
      ~non_accl_time:t_non_accl
  in
  let t_rob_fill = float_of_int core.rob_size /. float_of_int core.issue_width in
  check_times
    { t_baseline; t_accl; t_non_accl; t_drain; t_rob_fill;
      t_commit = core.commit_stall }

let interval_times_exn core s = Diag.ok_exn (interval_times core s)

let time_of_times (t : times) (mode : Mode.t) =
  match mode with
  | Mode.NL_NT ->
      (* eq. (4): drain, execute, and commit twice (once for the drained
         window, once for the TCA itself). *)
      t.t_non_accl +. t.t_accl +. t.t_drain +. (2.0 *. t.t_commit)
  | Mode.L_NT ->
      (* eq. (5): the TCA overlaps leading work; the front end stalls for
         the TCA's execution and commit only. *)
      t.t_non_accl +. t.t_accl +. t.t_commit
  | Mode.NL_T ->
      (* eqs. (6)-(7): trailing instructions flow until the ROB fills;
         the TCA start is delayed by the drain. *)
      let rob_full =
        Float.max 0.0 (t.t_drain +. t.t_accl +. t.t_commit -. t.t_rob_fill)
      in
      Float.max (t.t_non_accl +. rob_full) (t.t_accl +. t.t_drain +. t.t_commit)
  | Mode.L_T ->
      (* eqs. (8)-(9): full overlap; only a very long TCA that outlives
         the ROB fill stalls the front end. *)
      let rob_full = Float.max 0.0 (t.t_accl -. t.t_rob_fill) in
      Float.max (t.t_non_accl +. rob_full) t.t_accl

let mode_time core s mode =
  let* t = interval_times core s in
  Diag.finite ~field:"Equations.mode_time" (time_of_times t mode)

let mode_time_exn core s mode = Diag.ok_exn (mode_time core s mode)

let speedup core s mode =
  if s.Params.v <= 0.0 then Ok 1.0
  else
    let* t = interval_times core s in
    Diag.finite ~field:"Equations.speedup"
      (t.t_baseline /. time_of_times t mode)

let speedup_exn core s mode = Diag.ok_exn (speedup core s mode)

let speedups core s =
  List.fold_right
    (fun m acc ->
      let* acc = acc in
      let* sp = speedup core s m in
      Ok ((m, sp) :: acc))
    Mode.all (Ok [])

let speedups_exn core s = Diag.ok_exn (speedups core s)

let best_mode core s =
  let* sps = speedups core s in
  match sps with
  | [] -> Error (Diag.Empty_input { field = "Equations.best_mode" })
  | first :: rest ->
      Ok
        (List.fold_left
           (fun ((_, best_s) as best) ((_, cand_s) as cand) ->
             if cand_s > best_s then cand else best)
           first rest)

let best_mode_exn core s = Diag.ok_exn (best_mode core s)

let ideal_speedup core s =
  if s.Params.v <= 0.0 then Ok 1.0
  else
    let* t = interval_times core s in
    Diag.finite ~field:"Equations.ideal_speedup"
      (t.t_baseline /. (t.t_non_accl +. t.t_accl))

let ideal_speedup_exn core s = Diag.ok_exn (ideal_speedup core s)
