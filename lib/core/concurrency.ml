open Diag.Syntax

let coverage_series core ~g ~accel ~coverages mode =
  let* _ =
    Diag.in_range ~field:"Concurrency.coverage_series.g" ~lo:1.0 ~hi:infinity g
  in
  let* cells =
    Array.fold_left
      (fun acc a ->
        let* acc = acc in
        let* pt =
          if a <= 0.0 then Ok (a, 1.0)
          else
            let* s = Params.scenario_of_granularity ~a ~g ~accel () in
            let* sp = Equations.speedup core s mode in
            Ok (a, sp)
        in
        Ok (pt :: acc))
      (Ok []) coverages
  in
  Ok (Array.of_list (List.rev cells))

let coverage_series_exn core ~g ~accel ~coverages mode =
  Diag.ok_exn (coverage_series core ~g ~accel ~coverages mode)

let ideal_peak_coverage ~accel_factor =
  let+ accel_factor =
    Diag.positive ~field:"Concurrency.ideal_peak_coverage.accel_factor"
      accel_factor
  in
  accel_factor /. (accel_factor +. 1.0)

let ideal_peak_coverage_exn ~accel_factor =
  Diag.ok_exn (ideal_peak_coverage ~accel_factor)

let ideal_peak_speedup ~accel_factor =
  let+ accel_factor =
    Diag.positive ~field:"Concurrency.ideal_peak_speedup.accel_factor"
      accel_factor
  in
  accel_factor +. 1.0

let ideal_peak_speedup_exn ~accel_factor =
  Diag.ok_exn (ideal_peak_speedup ~accel_factor)

let peak series =
  let+ series = Diag.non_empty ~field:"Concurrency.peak" series in
  Array.fold_left
    (fun ((_, by) as best) ((_, y) as cand) -> if y > by then cand else best)
    series.(0) series

let peak_exn series = Diag.ok_exn (peak series)

let local_maxima series =
  let n = Array.length series in
  let out = ref [] in
  for i = n - 2 downto 1 do
    let _, y_prev = series.(i - 1)
    and ((_, y) as pt) = series.(i)
    and _, y_next = series.(i + 1) in
    if y > y_prev && y > y_next then out := pt :: !out
  done;
  !out
