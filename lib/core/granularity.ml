type marker = { name : string; granularity : float }

(* Estimated positions as in the paper's Fig. 2 annotations: invocation
   granularities spanning heap management (tens of instructions) up to
   whole-video encoding (billions). *)
let reference_markers =
  [
    { name = "heap management"; granularity = 53.0 };
    { name = "hash map"; granularity = 150.0 };
    { name = "string functions"; granularity = 300.0 };
    { name = "GreenDroid functions"; granularity = 500.0 };
    { name = "regular expression"; granularity = 2.0e3 };
    { name = "speech (STTNI)"; granularity = 2.0e4 };
    { name = "Google TPU"; granularity = 1.0e7 };
    { name = "H.264 encode"; granularity = 1.0e9 };
  ]

let series core ~a ~accel ~gs =
  List.map
    (fun mode ->
      let pts =
        Array.map
          (fun g ->
            let s = Params.scenario_of_granularity_exn ~a ~g ~accel () in
            (g, Equations.speedup_exn core s mode))
          gs
      in
      (mode, pts))
    Mode.all

let crossover_granularity core ~a ~accel mode =
  let gs = Tca_util.Sweep.logspace_exn 1.0 1.0e9 400 in
  let speedup_at g =
    let s = Params.scenario_of_granularity_exn ~a ~g ~accel () in
    Equations.speedup_exn core s mode
  in
  let n = Array.length gs in
  let rec find i =
    if i >= n then None
    else if speedup_at gs.(i) >= 1.0 then if i = 0 then None else Some gs.(i)
    else find (i + 1)
  in
  find 0
