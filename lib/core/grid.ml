open Diag.Syntax

type t = {
  freqs : float array;
  coverages : float array;
  cells : float array array;
  failures : ((int * int) * Diag.t) list;
}

let compute ?telemetry ?(par = Tca_util.Parmap.serial) core ~accel ~freqs
    ~coverages mode =
  let* _ = Diag.non_empty ~field:"Grid.compute.freqs" freqs in
  let* _ = Diag.non_empty ~field:"Grid.compute.coverages" coverages in
  Tca_telemetry.Timing.with_span telemetry "grid.compute"
    ~args:
      [
        ("rows", Tca_util.Json.Int (Array.length coverages));
        ("cols", Tca_util.Json.Int (Array.length freqs));
        ("mode", Tca_util.Json.String (Mode.to_string mode));
      ]
  @@ fun () ->
  (* One task per row; each returns its cells plus its own failures in
     column order, so the concatenation in row order reproduces the
     serial (row-major) failure order exactly. *)
  let row_task (row, a) =
    let failures = ref [] in
    let cells =
      Array.mapi
        (fun col v ->
          if v <= 0.0 || a <= 0.0 || a < v then Float.nan
          else
            (* Skip-and-record: a bad point poisons one cell, never the
               whole sweep. *)
            match
              let* s = Params.scenario ~a ~v ~accel () in
              Equations.speedup core s mode
            with
            | Ok sp -> sp
            | Error d ->
                failures := ((row, col), d) :: !failures;
                Float.nan)
        freqs
    in
    (cells, List.rev !failures)
  in
  let rows =
    par.Tca_util.Parmap.run row_task (Array.mapi (fun row a -> (row, a)) coverages)
  in
  let cells = Array.map fst rows in
  let failures = List.concat_map snd (Array.to_list rows) in
  (match
     Option.bind telemetry Tca_telemetry.Sink.metrics
   with
  | None -> ()
  | Some reg ->
      let add name v =
        match Tca_telemetry.Metrics.counter reg name with
        | Ok c -> Tca_telemetry.Metrics.Counter.add c v
        | Error _ -> ()
      in
      add "grid.cells" (Array.length freqs * Array.length coverages);
      add "grid.failures" (List.length failures));
  Ok { freqs; coverages; cells; failures }

let compute_exn ?telemetry ?par core ~accel ~freqs ~coverages mode =
  Diag.ok_exn (compute ?telemetry ?par core ~accel ~freqs ~coverages mode)

let slowdown_fraction t =
  let feasible = ref 0 and slow = ref 0 in
  Array.iter
    (Array.iter (fun x ->
         if not (Float.is_nan x) then begin
           incr feasible;
           if x < 1.0 then incr slow
         end))
    t.cells;
  if !feasible = 0 then 0.0 else float_of_int !slow /. float_of_int !feasible

let accelerator_curve t ~granularity =
  let* _ =
    Diag.in_range ~field:"Grid.accelerator_curve.granularity" ~lo:1.0
      ~hi:infinity granularity
  in
  let nearest_col v =
    let best = ref 0 and best_d = ref infinity in
    Array.iteri
      (fun i f ->
        let d = Float.abs (log f -. log v) in
        if d < !best_d then begin
          best := i;
          best_d := d
        end)
      t.freqs;
    !best
  in
  let cells = ref [] in
  Array.iteri
    (fun row a ->
      let v = a /. granularity in
      if v >= t.freqs.(0) && v <= t.freqs.(Array.length t.freqs - 1) then
        cells := (row, nearest_col v) :: !cells)
    t.coverages;
  Ok (List.rev !cells)

let accelerator_curve_exn t ~granularity =
  Diag.ok_exn (accelerator_curve t ~granularity)
