(** 2-D speedup maps over (invocation frequency, acceleratable fraction)
    — the raw material of the paper's Fig. 7 heatmaps. *)

type t = {
  freqs : float array;  (** invocation frequencies, one per column *)
  coverages : float array;  (** acceleratable fractions, one per row *)
  cells : float array array;
      (** [cells.(row).(col)] = predicted speedup; [nan] where the
          combination is infeasible (granularity [a/v < 1]) or where the
          point failed (see [failures]) *)
  failures : ((int * int) * Diag.t) list;
      (** skip-and-record: points whose evaluation produced a diagnostic
          rather than a number, as [((row, col), diag)]. The sweep never
          aborts on a bad point. *)
}

val compute :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  Params.core ->
  accel:Params.accel_time ->
  freqs:float array ->
  coverages:float array ->
  Mode.t ->
  (t, Diag.t) result
(** [Error (Empty_input _)] on an empty axis; per-point failures are
    recorded in [failures], never raised. [?telemetry] wraps the sweep
    in a [grid.compute] wall-clock span and bumps [grid.cells] /
    [grid.failures] counters on the sink's registry. [?par] (default
    serial) evaluates rows in parallel; the result — cells, failure
    list and its order — is identical to the serial one. *)

val compute_exn :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  Params.core ->
  accel:Params.accel_time ->
  freqs:float array ->
  coverages:float array ->
  Mode.t ->
  t

val slowdown_fraction : t -> float
(** Fraction of feasible cells with speedup < 1 — a scalar summary of how
    dangerous a mode is for the swept region. *)

val accelerator_curve :
  t -> granularity:float -> ((int * int) list, Diag.t) result
(** Cells (row, col) closest to the fixed-granularity locus [a = g * v]:
    where a fixed-function accelerator of granularity [g] falls for each
    achievable coverage, as drawn for the heap manager and GreenDroid in
    Fig. 7. [Error (Domain _)] when [granularity < 1]. *)

val accelerator_curve_exn : t -> granularity:float -> (int * int) list
