(** Model-vs-measurement bookkeeping for the validation experiments
    (paper Figs. 4-6). *)

type point = {
  id : string;  (** workload / configuration label *)
  mode : Mode.t;
  measured : float;  (** simulator speedup *)
  estimated : float;  (** analytical-model speedup *)
}

type summary = {
  n : int;
  mean_abs_pct : float;  (** mean |error| in percent *)
  median_abs_pct : float;
  max_abs_pct : float;
}

val error : point -> (float, Diag.t) result
(** Signed relative error [(estimated - measured) / measured].
    [Error (Invalid _)] when [measured = 0]. *)

val error_exn : point -> float

val summarize : point list -> (summary, Diag.t) result
(** [Error (Empty_input _)] on an empty list; also propagates any
    per-point [error] failure (e.g. a zero measurement). *)

val summarize_exn : point list -> summary

val rows : point list -> string list list
(** Table rows: id, mode, measured, estimated, error% — ready for
    {!Tca_util.Table.print}. *)

val headers : string list

val trends_preserved : ?tolerance:float -> point list -> bool
(** [true] iff, within every [id] group and for every pair of modes whose
    measured speedups differ by more than [tolerance] (relative, default
    2%), the estimates order that pair the same way — the paper's
    "correctly predicts overarching trends" criterion. Pairs inside the
    tolerance band are measurement ties and don't constrain the model. *)
