open Diag.Syntax

type point = {
  id : string;
  mode : Mode.t;
  measured : float;
  estimated : float;
}

type summary = {
  n : int;
  mean_abs_pct : float;
  median_abs_pct : float;
  max_abs_pct : float;
}

let error p =
  Tca_util.Stats.relative_error ~measured:p.measured ~estimated:p.estimated

let error_exn p = Diag.ok_exn (error p)

let summarize points =
  let* _ =
    Diag.non_empty ~field:"Validate.summarize"
      (Array.of_list points)
  in
  let* errs =
    List.fold_right
      (fun p acc ->
        let* acc = acc in
        let+ e = error p in
        (100.0 *. Float.abs e) :: acc)
      points (Ok [])
  in
  let errs = Array.of_list errs in
  let* mean_abs_pct = Tca_util.Stats.mean errs in
  let* median_abs_pct = Tca_util.Stats.median errs in
  let+ max_abs_pct = Tca_util.Stats.max errs in
  { n = Array.length errs; mean_abs_pct; median_abs_pct; max_abs_pct }

let summarize_exn points = Diag.ok_exn (summarize points)

let headers = [ "workload"; "mode"; "measured"; "estimated"; "error" ]

let rows points =
  List.map
    (fun p ->
      [
        p.id;
        Mode.to_string p.mode;
        Tca_util.Table.float_cell p.measured;
        Tca_util.Table.float_cell p.estimated;
        (match error p with
        | Ok e -> Tca_util.Table.pct_cell e
        | Result.Error _ -> "n/a");
      ])
    points

let trends_preserved ?(tolerance = 0.02) points =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups p.id) in
      Hashtbl.replace groups p.id (p :: existing))
    points;
  let pair_ok p q =
    let gap = Float.abs (p.measured -. q.measured) /. q.measured in
    gap <= tolerance
    || compare p.measured q.measured = compare p.estimated q.estimated
  in
  Hashtbl.fold
    (fun _ ps acc ->
      acc
      && List.for_all
           (fun p -> List.for_all (fun q -> pair_ok p q) ps)
           ps)
    groups true
