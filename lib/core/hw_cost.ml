type t = {
  datapath : float;
  rollback : float;
  dependency : float;
}

let default = { datapath = 1.0; rollback = 0.35; dependency = 0.5 }

let make ?(datapath = default.datapath) ?(rollback = default.rollback)
    ?(dependency = default.dependency) () =
  if datapath < 0.0 || rollback < 0.0 || dependency < 0.0 then
    invalid_arg "Hw_cost.make: negative cost component";
  { datapath; rollback; dependency }

let mode_cost t mode =
  t.datapath
  +. (if Mode.allows_leading mode then t.rollback else 0.0)
  +. if Mode.allows_trailing mode then t.dependency else 0.0

type design = {
  mode : Mode.t;
  cost : float;
  speedup : float;
}

let designs ?(cost = default) core scenario =
  List.map
    (fun mode ->
      {
        mode;
        cost = mode_cost cost mode;
        speedup = Equations.speedup_exn core scenario mode;
      })
    Mode.all

let dominates a b =
  (a.cost <= b.cost && a.speedup > b.speedup)
  || (a.cost < b.cost && a.speedup >= b.speedup)

let pareto_front designs =
  designs
  |> List.filter (fun d -> not (List.exists (fun o -> dominates o d) designs))
  |> List.sort (fun a b -> compare (a.cost, a.speedup) (b.cost, b.speedup))

let dominated all =
  let front = pareto_front all in
  List.filter
    (fun d -> not (List.exists (fun f -> f.mode = d.mode) front))
    all

let cheapest_at_least designs ~speedup =
  designs
  |> List.filter (fun d -> d.speedup >= speedup)
  |> List.sort (fun a b -> compare a.cost b.cost)
  |> function
  | [] -> None
  | d :: _ -> Some d
