include Tca_util.Diag
