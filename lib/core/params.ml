open Diag.Syntax

type core = {
  ipc : float;
  rob_size : int;
  issue_width : int;
  commit_stall : float;
  drain_beta : float;
}

type accel_time = Factor of float | Latency of float

type config_cost =
  | No_config
  | Sync of float
  | Queued of { t_config : float; depth : int }
  | Preprogrammed of { t_config : float; invocations : int }

(* Declared before [scenario] so [scenario]'s labels, defined last,
   remain the unqualified default everywhere else. *)
type commit_port = Shared | Private

type unit_scenario = {
  a : float;
  v : float;
  accel : accel_time;
  config : config_cost;
}

type composition = {
  units : unit_scenario list;
  chained : float;
  commit_port : commit_port;
  drain : Tca_interval.Drain.spec;
}

type scenario = {
  a : float;
  v : float;
  accel : accel_time;
  drain : Tca_interval.Drain.spec;
  config : config_cost;
}

let core ?(commit_stall = 5.0) ?(drain_beta = 2.0) ~ipc ~rob_size ~issue_width
    () =
  let* ipc = Diag.positive ~field:"Params.core.ipc" ipc in
  let* rob_size = Diag.positive_int ~field:"Params.core.rob_size" rob_size in
  let* issue_width =
    Diag.positive_int ~field:"Params.core.issue_width" issue_width
  in
  let* commit_stall =
    Diag.non_negative ~field:"Params.core.commit_stall" commit_stall
  in
  let* drain_beta = Diag.positive ~field:"Params.core.drain_beta" drain_beta in
  Ok { ipc; rob_size; issue_width; commit_stall; drain_beta }

let core_exn ?commit_stall ?drain_beta ~ipc ~rob_size ~issue_width () =
  Diag.ok_exn (core ?commit_stall ?drain_beta ~ipc ~rob_size ~issue_width ())

let validate_accel = function
  | Factor f ->
      let+ f = Diag.positive ~field:"Params.scenario.accel factor" f in
      Factor f
  | Latency l ->
      let+ l = Diag.non_negative ~field:"Params.scenario.accel latency" l in
      Latency l

let validate_config = function
  | No_config -> Ok No_config
  | Sync t ->
      let+ t = Diag.non_negative ~field:"Params.config Sync t_config" t in
      Sync t
  | Queued { t_config; depth } ->
      let* t_config =
        Diag.non_negative ~field:"Params.config Queued t_config" t_config
      in
      let+ depth = Diag.positive_int ~field:"Params.config Queued depth" depth in
      Queued { t_config; depth }
  | Preprogrammed { t_config; invocations } ->
      let* t_config =
        Diag.non_negative ~field:"Params.config Preprogrammed t_config" t_config
      in
      let+ invocations =
        Diag.positive_int ~field:"Params.config Preprogrammed invocations"
          invocations
      in
      Preprogrammed { t_config; invocations }

let validate_drain = function
  | Tca_interval.Drain.Fixed t ->
      let+ t = Diag.non_negative ~field:"Params.scenario.drain" t in
      Tca_interval.Drain.Fixed t
  | (Tca_interval.Drain.Auto | Tca_interval.Drain.Refill_aware) as d -> Ok d

let scenario ?(drain = Tca_interval.Drain.Auto) ?(config = No_config) ~a ~v
    ~accel () =
  let* a = Diag.in_range ~field:"Params.scenario.a" ~lo:0.0 ~hi:1.0 a in
  let* v = Diag.non_negative ~field:"Params.scenario.v" v in
  let* () =
    if v > 0.0 && a < v then
      Error
        (Diag.Domain
           { field = "Params.scenario granularity a/v"; lo = 1.0;
             hi = infinity; actual = a /. v })
    else Ok ()
  in
  let* accel = validate_accel accel in
  let* drain = validate_drain drain in
  let* config = validate_config config in
  Ok { a; v; accel; drain; config }

let scenario_exn ?drain ?config ~a ~v ~accel () =
  Diag.ok_exn (scenario ?drain ?config ~a ~v ~accel ())

let unit_scenario ?(config = No_config) ~a ~v ~accel () =
  let* a = Diag.in_range ~field:"Params.unit_scenario.a" ~lo:0.0 ~hi:1.0 a in
  let* v = Diag.non_negative ~field:"Params.unit_scenario.v" v in
  let* () =
    if v > 0.0 && a < v then
      Error
        (Diag.Domain
           { field = "Params.unit_scenario granularity a/v"; lo = 1.0;
             hi = infinity; actual = a /. v })
    else Ok ()
  in
  let* accel = validate_accel accel in
  let* config = validate_config config in
  Ok ({ a; v; accel; config } : unit_scenario)

let unit_scenario_exn ?config ~a ~v ~accel () =
  Diag.ok_exn (unit_scenario ?config ~a ~v ~accel ())

let composition ?(drain = Tca_interval.Drain.Auto) ?(chained = 0.0)
    ?(commit_port = Shared) ~units () =
  let* () =
    if units = [] then
      Error (Diag.Empty_input { field = "Params.composition.units" })
    else Ok ()
  in
  let* units =
    List.fold_right
      (fun (u : unit_scenario) acc ->
        let* acc = acc in
        let* u = unit_scenario ~config:u.config ~a:u.a ~v:u.v ~accel:u.accel () in
        Ok (u :: acc))
      units (Ok [])
  in
  let a_total =
    List.fold_left (fun acc (u : unit_scenario) -> acc +. u.a) 0.0 units
  in
  let* () =
    if a_total > 1.0 then
      Error
        (Diag.Domain
           { field = "Params.composition total a"; lo = 0.0; hi = 1.0;
             actual = a_total })
    else Ok ()
  in
  let* chained =
    Diag.in_range ~field:"Params.composition.chained" ~lo:0.0 ~hi:1.0 chained
  in
  let* drain = validate_drain drain in
  Ok ({ units; chained; commit_port; drain } : composition)

let composition_exn ?drain ?chained ?commit_port ~units () =
  Diag.ok_exn (composition ?drain ?chained ?commit_port ~units ())

let composition_of_scenario (s : scenario) : composition =
  {
    units =
      [
        ({ a = s.a; v = s.v; accel = s.accel; config = s.config }
          : unit_scenario);
      ];
    chained = 0.0;
    commit_port = Shared;
    drain = s.drain;
  }

let commit_port_name = function Shared -> "shared" | Private -> "private"

let config_cost_name = function
  | No_config -> "none"
  | Sync _ -> "sync"
  | Queued _ -> "queued"
  | Preprogrammed _ -> "preprog"

let granularity s =
  if s.v = 0.0 then
    Error (Diag.Invalid { field = "Params.granularity"; message = "v = 0" })
  else Ok (s.a /. s.v)

let granularity_exn s = Diag.ok_exn (granularity s)

let scenario_of_granularity ?drain ?config ~a ~g ~accel () =
  let* g =
    Diag.in_range ~field:"Params.scenario_of_granularity.g" ~lo:1.0
      ~hi:infinity g
  in
  scenario ?drain ?config ~a ~v:(a /. g) ~accel ()

let scenario_of_granularity_exn ?drain ?config ~a ~g ~accel () =
  Diag.ok_exn (scenario_of_granularity ?drain ?config ~a ~g ~accel ())

let pp_core fmt c =
  Format.fprintf fmt
    "{ ipc = %.3f; rob = %d; issue = %d; t_commit = %.1f; beta = %.1f }" c.ipc
    c.rob_size c.issue_width c.commit_stall c.drain_beta

let pp_accel fmt = function
  | Factor f -> Format.fprintf fmt "A = %.2fx" f
  | Latency l -> Format.fprintf fmt "latency = %.1f cycles" l

(* Printed only when a configuration cost is actually modeled, so
   default-No_config output stays byte-identical to the pre-t_config
   renderings. *)
let pp_config fmt = function
  | No_config -> ()
  | Sync t -> Format.fprintf fmt "; config = sync %.1f" t
  | Queued { t_config; depth } ->
      Format.fprintf fmt "; config = queued %.1f (depth %d)" t_config depth
  | Preprogrammed { t_config; invocations } ->
      Format.fprintf fmt "; config = preprog %.1f / %d invocations" t_config
        invocations

let pp_scenario fmt s =
  Format.fprintf fmt "{ a = %.4f; v = %.6f; %a; drain = %s%a }" s.a s.v
    pp_accel s.accel
    (match s.drain with
    | Tca_interval.Drain.Auto -> "auto"
    | Tca_interval.Drain.Refill_aware -> "refill-aware"
    | Tca_interval.Drain.Fixed t -> Printf.sprintf "%.1f" t)
    pp_config s.config

let pp_composition fmt (c : composition) =
  Format.fprintf fmt "{ units = [";
  List.iteri
    (fun i (u : unit_scenario) ->
      Format.fprintf fmt "%s{ a = %.4f; v = %.6f; %a%a }"
        (if i = 0 then " " else "; ")
        u.a u.v pp_accel u.accel pp_config u.config)
    c.units;
  Format.fprintf fmt " ]; chained = %.2f; commit_port = %s }" c.chained
    (commit_port_name c.commit_port)

let glossary =
  [
    ("a", "% acceleratable code");
    ("v", "invocation frequency (invocations / instruction)");
    ("IPC", "instructions / cycle of the baseline program");
    ("A", "acceleration factor");
    ("s_ROB", "size of the reorder buffer");
    ("w_issue", "issue (dispatch) width");
    ("t_commit", "commit stall (back-end pipeline latency)");
    ("t_config", "per-invocation configuration cost (sync/queued/preprog)");
  ]
