open Diag.Syntax

type core = {
  ipc : float;
  rob_size : int;
  issue_width : int;
  commit_stall : float;
  drain_beta : float;
}

type accel_time = Factor of float | Latency of float

(* Declared before [scenario] so [scenario]'s labels, defined last,
   remain the unqualified default everywhere else. *)
type commit_port = Shared | Private

type unit_scenario = { a : float; v : float; accel : accel_time }

type composition = {
  units : unit_scenario list;
  chained : float;
  commit_port : commit_port;
  drain : Tca_interval.Drain.spec;
}

type scenario = {
  a : float;
  v : float;
  accel : accel_time;
  drain : Tca_interval.Drain.spec;
}

let core ?(commit_stall = 5.0) ?(drain_beta = 2.0) ~ipc ~rob_size ~issue_width
    () =
  let* ipc = Diag.positive ~field:"Params.core.ipc" ipc in
  let* rob_size = Diag.positive_int ~field:"Params.core.rob_size" rob_size in
  let* issue_width =
    Diag.positive_int ~field:"Params.core.issue_width" issue_width
  in
  let* commit_stall =
    Diag.non_negative ~field:"Params.core.commit_stall" commit_stall
  in
  let* drain_beta = Diag.positive ~field:"Params.core.drain_beta" drain_beta in
  Ok { ipc; rob_size; issue_width; commit_stall; drain_beta }

let core_exn ?commit_stall ?drain_beta ~ipc ~rob_size ~issue_width () =
  Diag.ok_exn (core ?commit_stall ?drain_beta ~ipc ~rob_size ~issue_width ())

let validate_accel = function
  | Factor f ->
      let+ f = Diag.positive ~field:"Params.scenario.accel factor" f in
      Factor f
  | Latency l ->
      let+ l = Diag.non_negative ~field:"Params.scenario.accel latency" l in
      Latency l

let validate_drain = function
  | Tca_interval.Drain.Fixed t ->
      let+ t = Diag.non_negative ~field:"Params.scenario.drain" t in
      Tca_interval.Drain.Fixed t
  | (Tca_interval.Drain.Auto | Tca_interval.Drain.Refill_aware) as d -> Ok d

let scenario ?(drain = Tca_interval.Drain.Auto) ~a ~v ~accel () =
  let* a = Diag.in_range ~field:"Params.scenario.a" ~lo:0.0 ~hi:1.0 a in
  let* v = Diag.non_negative ~field:"Params.scenario.v" v in
  let* () =
    if v > 0.0 && a < v then
      Error
        (Diag.Domain
           { field = "Params.scenario granularity a/v"; lo = 1.0;
             hi = infinity; actual = a /. v })
    else Ok ()
  in
  let* accel = validate_accel accel in
  let* drain = validate_drain drain in
  Ok { a; v; accel; drain }

let scenario_exn ?drain ~a ~v ~accel () =
  Diag.ok_exn (scenario ?drain ~a ~v ~accel ())

let unit_scenario ~a ~v ~accel () =
  let* a = Diag.in_range ~field:"Params.unit_scenario.a" ~lo:0.0 ~hi:1.0 a in
  let* v = Diag.non_negative ~field:"Params.unit_scenario.v" v in
  let* () =
    if v > 0.0 && a < v then
      Error
        (Diag.Domain
           { field = "Params.unit_scenario granularity a/v"; lo = 1.0;
             hi = infinity; actual = a /. v })
    else Ok ()
  in
  let* accel = validate_accel accel in
  Ok ({ a; v; accel } : unit_scenario)

let unit_scenario_exn ~a ~v ~accel () =
  Diag.ok_exn (unit_scenario ~a ~v ~accel ())

let composition ?(drain = Tca_interval.Drain.Auto) ?(chained = 0.0)
    ?(commit_port = Shared) ~units () =
  let* () =
    if units = [] then
      Error (Diag.Empty_input { field = "Params.composition.units" })
    else Ok ()
  in
  let* units =
    List.fold_right
      (fun (u : unit_scenario) acc ->
        let* acc = acc in
        let* u = unit_scenario ~a:u.a ~v:u.v ~accel:u.accel () in
        Ok (u :: acc))
      units (Ok [])
  in
  let a_total =
    List.fold_left (fun acc (u : unit_scenario) -> acc +. u.a) 0.0 units
  in
  let* () =
    if a_total > 1.0 then
      Error
        (Diag.Domain
           { field = "Params.composition total a"; lo = 0.0; hi = 1.0;
             actual = a_total })
    else Ok ()
  in
  let* chained =
    Diag.in_range ~field:"Params.composition.chained" ~lo:0.0 ~hi:1.0 chained
  in
  let* drain = validate_drain drain in
  Ok ({ units; chained; commit_port; drain } : composition)

let composition_exn ?drain ?chained ?commit_port ~units () =
  Diag.ok_exn (composition ?drain ?chained ?commit_port ~units ())

let composition_of_scenario (s : scenario) : composition =
  {
    units = [ ({ a = s.a; v = s.v; accel = s.accel } : unit_scenario) ];
    chained = 0.0;
    commit_port = Shared;
    drain = s.drain;
  }

let commit_port_name = function Shared -> "shared" | Private -> "private"

let granularity s =
  if s.v = 0.0 then
    Error (Diag.Invalid { field = "Params.granularity"; message = "v = 0" })
  else Ok (s.a /. s.v)

let granularity_exn s = Diag.ok_exn (granularity s)

let scenario_of_granularity ?drain ~a ~g ~accel () =
  let* g =
    Diag.in_range ~field:"Params.scenario_of_granularity.g" ~lo:1.0
      ~hi:infinity g
  in
  scenario ?drain ~a ~v:(a /. g) ~accel ()

let scenario_of_granularity_exn ?drain ~a ~g ~accel () =
  Diag.ok_exn (scenario_of_granularity ?drain ~a ~g ~accel ())

let pp_core fmt c =
  Format.fprintf fmt
    "{ ipc = %.3f; rob = %d; issue = %d; t_commit = %.1f; beta = %.1f }" c.ipc
    c.rob_size c.issue_width c.commit_stall c.drain_beta

let pp_accel fmt = function
  | Factor f -> Format.fprintf fmt "A = %.2fx" f
  | Latency l -> Format.fprintf fmt "latency = %.1f cycles" l

let pp_scenario fmt s =
  Format.fprintf fmt "{ a = %.4f; v = %.6f; %a; drain = %s }" s.a s.v pp_accel
    s.accel
    (match s.drain with
    | Tca_interval.Drain.Auto -> "auto"
    | Tca_interval.Drain.Refill_aware -> "refill-aware"
    | Tca_interval.Drain.Fixed t -> Printf.sprintf "%.1f" t)

let pp_composition fmt (c : composition) =
  Format.fprintf fmt "{ units = [";
  List.iteri
    (fun i (u : unit_scenario) ->
      Format.fprintf fmt "%s{ a = %.4f; v = %.6f; %a }"
        (if i = 0 then " " else "; ")
        u.a u.v pp_accel u.accel)
    c.units;
  Format.fprintf fmt " ]; chained = %.2f; commit_port = %s }" c.chained
    (commit_port_name c.commit_port)

let glossary =
  [
    ("a", "% acceleratable code");
    ("v", "invocation frequency (invocations / instruction)");
    ("IPC", "instructions / cycle of the baseline program");
    ("A", "acceleration factor");
    ("s_ROB", "size of the reorder buffer");
    ("w_issue", "issue (dispatch) width");
    ("t_commit", "commit stall (back-end pipeline latency)");
  ]
