open Diag.Syntax

type parameter =
  | Ipc
  | Rob_size
  | Issue_width
  | Commit_stall
  | Coverage
  | Frequency
  | Acceleration

let all_parameters =
  [ Ipc; Rob_size; Issue_width; Commit_stall; Coverage; Frequency; Acceleration ]

let parameter_name = function
  | Ipc -> "IPC"
  | Rob_size -> "s_ROB"
  | Issue_width -> "w_issue"
  | Commit_stall -> "t_commit"
  | Coverage -> "a"
  | Frequency -> "v"
  | Acceleration -> "A / latency"

type swing = {
  parameter : parameter;
  mode : Mode.t;
  low : float;
  high : float;
  magnitude : float;
}

let clamp lo hi x = Float.max lo (Float.min hi x)

let perturb (core : Params.core) (s : Params.scenario) param factor =
  match param with
  | Ipc ->
      let+ c =
        Params.core ~ipc:(core.Params.ipc *. factor)
          ~rob_size:core.Params.rob_size ~issue_width:core.Params.issue_width
          ~commit_stall:core.Params.commit_stall
          ~drain_beta:core.Params.drain_beta ()
      in
      (c, s)
  | Rob_size ->
      let+ c =
        Params.core ~ipc:core.Params.ipc
          ~rob_size:
            (max 1 (int_of_float (float_of_int core.Params.rob_size *. factor)))
          ~issue_width:core.Params.issue_width
          ~commit_stall:core.Params.commit_stall
          ~drain_beta:core.Params.drain_beta ()
      in
      (c, s)
  | Issue_width ->
      let+ c =
        Params.core ~ipc:core.Params.ipc ~rob_size:core.Params.rob_size
          ~issue_width:
            (max 1
               (int_of_float (float_of_int core.Params.issue_width *. factor)))
          ~commit_stall:core.Params.commit_stall
          ~drain_beta:core.Params.drain_beta ()
      in
      (c, s)
  | Commit_stall ->
      let+ c =
        Params.core ~ipc:core.Params.ipc ~rob_size:core.Params.rob_size
          ~issue_width:core.Params.issue_width
          ~commit_stall:(core.Params.commit_stall *. factor)
          ~drain_beta:core.Params.drain_beta ()
      in
      (c, s)
  | Coverage ->
      let a = clamp s.Params.v 1.0 (s.Params.a *. factor) in
      let+ s' =
        Params.scenario ~drain:s.Params.drain ~a ~v:s.Params.v
          ~accel:s.Params.accel ()
      in
      (core, s')
  | Frequency ->
      let v = clamp 0.0 s.Params.a (s.Params.v *. factor) in
      let+ s' =
        Params.scenario ~drain:s.Params.drain ~a:s.Params.a ~v
          ~accel:s.Params.accel ()
      in
      (core, s')
  | Acceleration ->
      let accel =
        match s.Params.accel with
        | Params.Factor f -> Params.Factor (f *. factor)
        | Params.Latency l ->
            (* Scaling "acceleration" up means a shorter latency. *)
            Params.Latency (l /. factor)
      in
      let+ s' =
        Params.scenario ~drain:s.Params.drain ~a:s.Params.a ~v:s.Params.v
          ~accel ()
      in
      (core, s')

let perturb_exn core s param factor = Diag.ok_exn (perturb core s param factor)

let swings ?telemetry ?(par = Tca_util.Parmap.serial) ?(delta = 0.2) core s
    mode =
  let* () =
    if
      (not (Float.is_finite delta)) || delta <= 0.0 || delta >= 1.0
    then
      Error
        (Diag.Domain
           { field = "Sensitivity.swings.delta"; lo = 0.0; hi = 1.0;
             actual = delta })
    else Ok ()
  in
  Tca_telemetry.Timing.with_span telemetry "sensitivity.swings"
    ~args:[ ("mode", Tca_util.Json.String (Mode.to_string mode)) ]
  @@ fun () ->
  let eval param =
    let* core_lo, s_lo = perturb core s param (1.0 -. delta) in
    let* core_hi, s_hi = perturb core s param (1.0 +. delta) in
    let* low = Equations.speedup core_lo s_lo mode in
    let* high = Equations.speedup core_hi s_hi mode in
    Ok
      { parameter = param; mode; low; high;
        magnitude = Float.abs (high -. low) }
  in
  (* Evaluate every parameter (possibly in parallel), then sequence the
     results in parameter order — the surfaced error, if any, is the
     same first one a serial fold would hit. *)
  let evaluated = Tca_util.Parmap.map_list par eval all_parameters in
  let* unsorted =
    List.fold_right
      (fun r acc ->
        let* acc = acc in
        let* sw = r in
        Ok (sw :: acc))
      evaluated (Ok [])
  in
  Ok (List.sort (fun a b -> compare b.magnitude a.magnitude) unsorted)

let swings_exn ?telemetry ?par ?delta core s mode =
  Diag.ok_exn (swings ?telemetry ?par ?delta core s mode)

let decision_stable ?telemetry ?(delta = 0.2) core s =
  let* () =
    if
      (not (Float.is_finite delta)) || delta <= 0.0 || delta >= 1.0
    then
      Error
        (Diag.Domain
           { field = "Sensitivity.decision_stable.delta"; lo = 0.0; hi = 1.0;
             actual = delta })
    else Ok ()
  in
  Tca_telemetry.Timing.with_span telemetry "sensitivity.decision_stable"
  @@ fun () ->
  let* nominal, _ = Equations.best_mode core s in
  List.fold_left
    (fun acc param ->
      let* acc = acc in
      List.fold_left
        (fun acc factor ->
          let* acc = acc in
          if not acc then Ok false
          else
            let* c, sc = perturb core s param factor in
            let* best, _ = Equations.best_mode c sc in
            Ok (Mode.equal best nominal))
        (Ok acc)
        [ 1.0 -. delta; 1.0 +. delta ])
    (Ok true) all_parameters

let decision_stable_exn ?telemetry ?delta core s =
  Diag.ok_exn (decision_stable ?telemetry ?delta core s)

let headers = [ "parameter"; "mode"; "-delta"; "+delta"; "swing" ]

let rows swings_list =
  List.map
    (fun sw ->
      [
        parameter_name sw.parameter;
        Mode.to_string sw.mode;
        Tca_util.Table.float_cell sw.low;
        Tca_util.Table.float_cell sw.high;
        Tca_util.Table.float_cell sw.magnitude;
      ])
    swings_list
