(** The analytical model proper: equations (1)-(9) of the paper.

    All times are per-interval, where one interval is the average stretch
    of program containing exactly one accelerator invocation ([1/v]
    instructions of the baseline program). Speedups are ratios of interval
    times, which by the paper's interval-analysis argument equal
    whole-program speedups.

    Every evaluator returns [('a, Diag.t) result] and guarantees that an
    [Ok] carries only finite values — a degenerate-but-validated scenario
    (e.g. zero-latency accelerator with zero commit stall) that drives an
    interval time to 0 or a speedup to infinity surfaces as
    [Error (Non_finite _)] instead of poisoning a sweep. *)

type times = {
  t_baseline : float;  (** eq. (1): [1 / (v * IPC)] *)
  t_accl : float;  (** eq. (2): [a / (v * A * IPC)] or explicit latency *)
  t_non_accl : float;  (** eq. (3): [(1 - a) / (v * IPC)] *)
  t_drain : float;  (** window-drain penalty (power law or override) *)
  t_rob_fill : float;  (** [s_ROB / w_issue] *)
  t_commit : float;  (** the core's [t_commit] parameter *)
  config : Params.config_cost;
      (** configuration mechanism, applied to the mode time by terms
          (T1)-(T3); [No_config] leaves eqs. (4)-(9) untouched *)
}

val config_overhead : Params.config_cost -> base:float -> float
(** The configuration-wall terms. With [base] the interval time of
    eqs. (4)-(9) and [t_config = c]:

    - (T1) [Sync c]: [base + c] — synchronous CSR writes sit on the
      critical path of every invocation.
    - (T2) [Queued {t_config = c; _}]: [max base c] — the serial
      descriptor engine overlaps with execution, so in steady state it
      is a throughput bound on the invocation period, not an additive
      latency. The queue [depth] bounds transient bursts only and does
      not appear in the steady-state term ({!Assume.audit} grades the
      burstiness assumption behind this).
    - (T3) [Preprogrammed {t_config = c; invocations = n}]: [base + c/n]
      — the one-time programming cost amortized over the run.

    All three reduce exactly to [base] at [c = 0], and [No_config] is
    the identity, so the pinned eqs. (4)-(9) results are unchanged. *)

val config_break_even :
  ?hi:float ->
  Params.core ->
  a:float -> accel:Params.accel_time -> config:Params.config_cost ->
  Mode.t -> (float option, Diag.t) result
(** The smallest invocation granularity [g = a/v] at which the mode's
    speedup with the given configuration cost reaches 1.0 (acceleration
    stops losing to the configuration wall). Found by bisection over
    [g in [1, hi]] ([hi] defaults to [1e9]); [Ok None] when the mode
    never breaks even below [hi], [Ok (Some 1.)] when it already breaks
    even at the smallest legal granularity. Used by the lint layer to
    warn on invocation streams whose measured granularity sits below
    this threshold. *)

val config_break_even_exn :
  ?hi:float ->
  Params.core ->
  a:float -> accel:Params.accel_time -> config:Params.config_cost ->
  Mode.t -> float option

val interval_times :
  Params.core -> Params.scenario -> (times, Diag.t) result
(** All intermediate quantities for one (core, scenario) pair.
    [Error (Domain _)] when [v = 0] (no invocations: there is no
    interval); [Error (Non_finite _)] when an extreme input overflows a
    time. *)

val interval_times_exn : Params.core -> Params.scenario -> times
(** Raises {!Diag.Error}. *)

val time_of_times : times -> Mode.t -> float
(** Pure combination of precomputed interval times per eqs. (4)-(9),
    with the configuration term (T1)-(T3) of {!config_overhead} applied
    on top. With [config = No_config] this is exactly eqs. (4)-(9). *)

val mode_time :
  Params.core -> Params.scenario -> Mode.t -> (float, Diag.t) result
(** Interval execution time under the given TCA mode: eqs. (4), (5), (7)
    and (9). *)

val mode_time_exn : Params.core -> Params.scenario -> Mode.t -> float

val speedup :
  Params.core -> Params.scenario -> Mode.t -> (float, Diag.t) result
(** [t_baseline / mode_time]. [Ok 1.0] when [v = 0] (nothing is
    accelerated). Values below 1 are program slowdowns. *)

val speedup_exn : Params.core -> Params.scenario -> Mode.t -> float

val speedups :
  Params.core -> Params.scenario -> ((Mode.t * float) list, Diag.t) result
(** Speedup under all four modes, in [Mode.all] order. *)

val speedups_exn : Params.core -> Params.scenario -> (Mode.t * float) list

val best_mode :
  Params.core -> Params.scenario -> (Mode.t * float, Diag.t) result
(** The mode with the highest predicted speedup (ties resolved toward the
    cheaper hardware, i.e. the earlier entry of [Mode.all]). *)

val best_mode_exn : Params.core -> Params.scenario -> Mode.t * float

(** {2 Multi-unit composition}

    With N heterogeneous units there is no single "interval containing
    one invocation", so the composed rule works per {e instruction}:
    each term of eqs. (4)-(9) is weighted by its unit's invocation rate
    [v_i] and summed. Writing [t_i] for unit [i]'s per-invocation
    execution time (eq. (2) scaled to one invocation, or its explicit
    latency), [v = Σ v_i], [a = Σ a_i], [χ] for the chained fraction and
    [t_cont = χ·v·t_commit] when the commit port is shared (0 when
    private):

    {v
    T_NL_NT = t_non + Σ v_i·t_i + (1-χ)·v·(t_drain + t_commit)
              + v·t_commit + t_cont
    T_L_NT  = t_non + Σ v_i·t_i + v·t_commit + t_cont
    T_NL_T  = max(t_non + Σ v_i·max(0, t_drain + t_i + t_commit - t_fill),
                  Σ v_i·t_i + (1-χ)·v·t_drain + v·t_commit) + t_cont
    T_L_T   = max(t_non + Σ v_i·max(0, t_i - t_fill), Σ v_i·t_i) + t_cont
    v}

    where [t_non = (1-a)/IPC] and [t_fill = s_ROB/w_issue]. Chained
    invocations ([χ]) share one window drain — the consumer dispatches
    into the window its producer already drained — but serialize on the
    shared commit port, which is the [t_cont] term. Speedup is
    [(1/IPC) / T]. At N = 1 with [χ = 0] and a shared port every mode
    time is exactly [v] times the single-unit interval time, so the
    composed model reduces to eqs. (4)-(9) (pinned by the tests).

    Per-unit configuration costs compose the same way (T1)-(T3) do for
    one unit: the additive mechanisms contribute
    [c_cfg_add = Σ v_i·c_i (Sync) + Σ v_i·c_i/n_i (Preprogrammed)]
    per instruction, while each queued descriptor engine imposes the
    per-instruction throughput floor [v_i·c_i], of which the binding one
    is [c_cfg_floor = max_i v_i·c_i (Queued)]. Every mode time becomes
    [max (T + c_cfg_add) c_cfg_floor]; at N = 1 this is exactly [v]
    times {!config_overhead}. *)

type composed_times = {
  c_baseline : float;  (** per-instruction baseline time, [1/IPC] *)
  c_non_accl : float;  (** [(1 - Σ a_i)/IPC] *)
  c_accl_total : float;  (** [Σ v_i · t_i] *)
  c_drain : float;  (** per-invocation window drain *)
  c_rob_fill : float;  (** [s_ROB / w_issue] *)
  c_commit : float;
  c_v_total : float;  (** [Σ v_i] *)
  c_v_drain : float;  (** [(1 - χ) · Σ v_i]: invocations that drain *)
  c_contend : float;  (** commit-port contention of chained invocations *)
  c_unit_terms : (float * float) list;  (** per unit: [(v_i, t_i)] *)
  c_cfg_add : float;
      (** per-instruction additive config cost: [Σ v_i·c_i] over [Sync]
          units plus [Σ v_i·c_i/n_i] over [Preprogrammed] units *)
  c_cfg_floor : float;
      (** per-instruction throughput floor of the busiest [Queued]
          descriptor engine: [max_i v_i·c_i]; 0 with no queued units *)
}

val composed_times :
  Params.core -> Params.composition -> (composed_times, Diag.t) result
(** [Error (Domain _)] when [Σ v_i = 0] (no invocations at all);
    [Error (Non_finite _)] on overflow, as {!interval_times}. *)

val composed_times_exn : Params.core -> Params.composition -> composed_times

val composed_time_of_times : composed_times -> Mode.t -> float
(** Pure combination of precomputed composed times per the table
    above. *)

val composed_mode_time :
  Params.core -> Params.composition -> Mode.t -> (float, Diag.t) result
(** Per-instruction execution time of the composed machine under the
    given mode. *)

val composed_mode_time_exn :
  Params.core -> Params.composition -> Mode.t -> float

val composed_speedup :
  Params.core -> Params.composition -> Mode.t -> (float, Diag.t) result
(** [c_baseline / composed_time]. [Ok 1.0] when [Σ v_i = 0]. *)

val composed_speedup_exn :
  Params.core -> Params.composition -> Mode.t -> float

val composed_speedups :
  Params.core -> Params.composition ->
  ((Mode.t * float) list, Diag.t) result
(** All four modes, in [Mode.all] order. *)

val composed_speedups_exn :
  Params.core -> Params.composition -> (Mode.t * float) list

val composed_best_mode :
  Params.core -> Params.composition -> (Mode.t * float, Diag.t) result

val composed_best_mode_exn :
  Params.core -> Params.composition -> Mode.t * float

val ideal_speedup :
  Params.core -> Params.scenario -> (float, Diag.t) result
(** The "replace the region with accelerator time" estimate used by prior
    TCA papers: [t_baseline / (t_non_accl + t_accl)]. Upper-bounds the
    non-overlapped modes and ignores all window effects; shown in the
    discussion benches for contrast. [Ok 1.0] when [v = 0]. *)

val ideal_speedup_exn : Params.core -> Params.scenario -> float
