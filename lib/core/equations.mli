(** The analytical model proper: equations (1)-(9) of the paper.

    All times are per-interval, where one interval is the average stretch
    of program containing exactly one accelerator invocation ([1/v]
    instructions of the baseline program). Speedups are ratios of interval
    times, which by the paper's interval-analysis argument equal
    whole-program speedups.

    Every evaluator returns [('a, Diag.t) result] and guarantees that an
    [Ok] carries only finite values — a degenerate-but-validated scenario
    (e.g. zero-latency accelerator with zero commit stall) that drives an
    interval time to 0 or a speedup to infinity surfaces as
    [Error (Non_finite _)] instead of poisoning a sweep. *)

type times = {
  t_baseline : float;  (** eq. (1): [1 / (v * IPC)] *)
  t_accl : float;  (** eq. (2): [a / (v * A * IPC)] or explicit latency *)
  t_non_accl : float;  (** eq. (3): [(1 - a) / (v * IPC)] *)
  t_drain : float;  (** window-drain penalty (power law or override) *)
  t_rob_fill : float;  (** [s_ROB / w_issue] *)
  t_commit : float;  (** the core's [t_commit] parameter *)
}

val interval_times :
  Params.core -> Params.scenario -> (times, Diag.t) result
(** All intermediate quantities for one (core, scenario) pair.
    [Error (Domain _)] when [v = 0] (no invocations: there is no
    interval); [Error (Non_finite _)] when an extreme input overflows a
    time. *)

val interval_times_exn : Params.core -> Params.scenario -> times
(** Raises {!Diag.Error}. *)

val time_of_times : times -> Mode.t -> float
(** Pure combination of precomputed interval times per eqs. (4)-(9). *)

val mode_time :
  Params.core -> Params.scenario -> Mode.t -> (float, Diag.t) result
(** Interval execution time under the given TCA mode: eqs. (4), (5), (7)
    and (9). *)

val mode_time_exn : Params.core -> Params.scenario -> Mode.t -> float

val speedup :
  Params.core -> Params.scenario -> Mode.t -> (float, Diag.t) result
(** [t_baseline / mode_time]. [Ok 1.0] when [v = 0] (nothing is
    accelerated). Values below 1 are program slowdowns. *)

val speedup_exn : Params.core -> Params.scenario -> Mode.t -> float

val speedups :
  Params.core -> Params.scenario -> ((Mode.t * float) list, Diag.t) result
(** Speedup under all four modes, in [Mode.all] order. *)

val speedups_exn : Params.core -> Params.scenario -> (Mode.t * float) list

val best_mode :
  Params.core -> Params.scenario -> (Mode.t * float, Diag.t) result
(** The mode with the highest predicted speedup (ties resolved toward the
    cheaper hardware, i.e. the earlier entry of [Mode.all]). *)

val best_mode_exn : Params.core -> Params.scenario -> Mode.t * float

val ideal_speedup :
  Params.core -> Params.scenario -> (float, Diag.t) result
(** The "replace the region with accelerator time" estimate used by prior
    TCA papers: [t_baseline / (t_non_accl + t_accl)]. Upper-bounds the
    non-overlapped modes and ignores all window effects; shown in the
    discussion benches for contrast. [Ok 1.0] when [v = 0]. *)

val ideal_speedup_exn : Params.core -> Params.scenario -> float
