(** Core/accelerator concurrency analysis (paper Fig. 8 and Section VII).

    Full OoO integration (L_T) lets the core and the TCA execute at the
    same time, so the maximum obtainable program speedup is not [A] but
    [A + 1], reached when the work is balanced between the two: at
    coverage [a* = A / (A + 1)]. *)

val coverage_series :
  Params.core ->
  g:float ->
  accel:Params.accel_time ->
  coverages:float array ->
  Mode.t ->
  ((float * float) array, Diag.t) result
(** [(a, speedup)] for each coverage in [coverages] at fixed granularity
    [g]. Coverages below [a_min = g * v_min] are always feasible here
    because [v] is derived as [a / g]. Coverage 0 maps to speedup 1.
    [Error (Domain _)] on [g < 1] or an out-of-range coverage. *)

val coverage_series_exn :
  Params.core ->
  g:float ->
  accel:Params.accel_time ->
  coverages:float array ->
  Mode.t ->
  (float * float) array

val ideal_peak_coverage : accel_factor:float -> (float, Diag.t) result
(** [A / (A + 1)]: the coverage at which core and TCA work are balanced. *)

val ideal_peak_coverage_exn : accel_factor:float -> float

val ideal_peak_speedup : accel_factor:float -> (float, Diag.t) result
(** [A + 1]. *)

val ideal_peak_speedup_exn : accel_factor:float -> float

val peak : (float * float) array -> (float * float, Diag.t) result
(** The [(x, y)] point with maximal [y]. [Error (Empty_input _)] on an
    empty series. *)

val peak_exn : (float * float) array -> float * float

val local_maxima : (float * float) array -> (float * float) list
(** Interior points strictly greater than both neighbours — used to
    exhibit the NL_T local maximum the paper discusses. Total. *)
