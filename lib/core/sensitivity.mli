(** Parameter-sensitivity analysis: which model input actually decides
    the design?

    For early-stage estimates every input (IPC, A, v, a, t_commit, ROB
    size) carries uncertainty. This module perturbs each input by a
    relative amount and reports the speedup swing per mode — a tornado
    table — plus whether the *best-mode decision* is stable under the
    perturbation. *)

type parameter =
  | Ipc
  | Rob_size
  | Issue_width
  | Commit_stall
  | Coverage  (** a *)
  | Frequency  (** v *)
  | Acceleration  (** A or the explicit latency *)

val all_parameters : parameter list
val parameter_name : parameter -> string

type swing = {
  parameter : parameter;
  mode : Mode.t;
  low : float;  (** speedup with the parameter scaled by [1 - delta] *)
  high : float;  (** speedup with the parameter scaled by [1 + delta] *)
  magnitude : float;  (** |high - low| *)
}

val perturb :
  Params.core -> Params.scenario -> parameter -> float ->
  (Params.core * Params.scenario, Diag.t) result
(** Scale one parameter by the given factor, clamping to validity
    (coverage to [\[0, 1\]], integer parameters to at least 1, coverage
    >= v). [Error] when the scaled parameter leaves the valid domain
    entirely (e.g. a non-finite factor). *)

val perturb_exn :
  Params.core -> Params.scenario -> parameter -> float ->
  Params.core * Params.scenario

val swings :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  ?delta:float -> Params.core -> Params.scenario -> Mode.t ->
  (swing list, Diag.t) result
(** One swing per parameter for the mode, sorted by decreasing magnitude
    (the tornado ordering). [delta] defaults to 0.2 (±20%) and must lie
    strictly inside (0, 1). [?telemetry] wraps the tornado evaluation in
    a [sensitivity.swings] wall-clock span. [?par] (default serial)
    evaluates the parameters in parallel with identical results,
    including which error is surfaced on failure. *)

val swings_exn :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  ?delta:float -> Params.core -> Params.scenario -> Mode.t -> swing list

val decision_stable :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?delta:float -> Params.core -> Params.scenario -> (bool, Diag.t) result
(** Does the best mode stay the best under every single-parameter ±delta
    perturbation? *)

val decision_stable_exn :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?delta:float -> Params.core -> Params.scenario -> bool

val rows : swing list -> string list list
val headers : string list
