(** Re-export of {!Tca_util.Diag}, so model code and model callers can
    name the diagnostic layer as [Tca_model.Diag] without depending on
    the util library directly. The types are equal: a [Tca_model.Diag.t]
    is a [Tca_util.Diag.t]. *)

include module type of struct
  include Tca_util.Diag
end
