type t = {
  static_power : float;
  accel_energy_ratio : float;
}

let make ?(static_power = 0.5) ?(accel_energy_ratio = 0.2) () =
  if static_power < 0.0 then invalid_arg "Energy.make: negative static power";
  if accel_energy_ratio <= 0.0 || accel_energy_ratio > 1.0 then
    invalid_arg "Energy.make: accel_energy_ratio out of (0, 1]";
  { static_power; accel_energy_ratio }

type verdict = {
  mode : Mode.t;
  speedup : float;
  energy : float;
  relative_energy : float;
  edp : float;
}

(* Per-interval quantities: 1/v instructions, of which a/v are
   acceleratable. *)

let interval_instrs (s : Params.scenario) = 1.0 /. s.Params.v

let baseline_energy t (core : Params.core) (s : Params.scenario) =
  if s.Params.v <= 0.0 then invalid_arg "Energy.baseline_energy: v = 0";
  let instrs = interval_instrs s in
  let cycles = instrs /. core.Params.ipc in
  instrs +. (t.static_power *. cycles)

let mode_energy t (core : Params.core) (s : Params.scenario) mode =
  let instrs = interval_instrs s in
  let accl_instrs = s.Params.a *. instrs in
  let dynamic =
    instrs -. accl_instrs (* core executes the rest at unit energy *)
    +. (t.accel_energy_ratio *. accl_instrs)
  in
  let cycles = Equations.mode_time_exn core s mode in
  dynamic +. (t.static_power *. cycles)

let evaluate t core s =
  let base_e = baseline_energy t core s in
  let base_t = (Equations.interval_times_exn core s).Equations.t_baseline in
  List.map
    (fun mode ->
      let speedup = Equations.speedup_exn core s mode in
      let energy = mode_energy t core s mode in
      let time = Equations.mode_time_exn core s mode in
      {
        mode;
        speedup;
        energy;
        relative_energy = energy /. base_e;
        edp = energy *. time /. (base_e *. base_t);
      })
    Mode.all

(* Energy equals baseline energy when
   dynamic_savings = static_power * (t_mode - t_baseline), i.e. at
   t_mode = t_baseline + savings/static_power; the break-even speedup is
   t_baseline / that. *)
let energy_break_even_speedup t core s =
  if s.Params.v <= 0.0 then invalid_arg "Energy.energy_break_even_speedup: v = 0";
  let instrs = interval_instrs s in
  let savings = (1.0 -. t.accel_energy_ratio) *. s.Params.a *. instrs in
  let base_t = (Equations.interval_times_exn core s).Equations.t_baseline in
  if t.static_power = 0.0 then 0.0
  else base_t /. (base_t +. (savings /. t.static_power))
