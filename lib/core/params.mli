(** Input parameters of the analytical model (paper Table I).

    Core parameters describe the processor; scenario parameters describe
    the workload/accelerator pair under study.

    Smart constructors return [('a, Diag.t) result] and reject NaN and
    infinities on every float field, so no non-finite value can enter the
    model. The [*_exn] forms raise {!Diag.Error} and are for callers
    whose inputs are correct by construction (presets, tests). *)

type core = {
  ipc : float;  (** average program IPC before acceleration *)
  rob_size : int;  (** [s_ROB] *)
  issue_width : int;  (** [w_issue], front-end dispatch width *)
  commit_stall : float;  (** [t_commit], back-end commit latency in cycles *)
  drain_beta : float;
      (** exponent of the window/critical-path power law (default 2.0,
          the square-root law reported for SPEC2006) *)
}

type accel_time =
  | Factor of float
      (** acceleration factor [A]: the accelerator runs the acceleratable
          instructions at [A * IPC] (paper eq. (2)) *)
  | Latency of float
      (** explicit per-invocation accelerator execution time in cycles,
          "an explicitly provided latency inserted by the architect" *)

(** {2 Configuration cost}

    The paper charges an invocation only its execution time plus
    serialization; real tightly-coupled accelerators also pay a
    per-invocation configuration cost [t_config] (CSR command writes,
    descriptor setup, DMA programming). Three mechanisms, modeled by
    terms (T1)-(T3) of {!Equations}: *)

type config_cost =
  | No_config  (** free configuration; (T1)-(T3) all reduce to eqs. (4)-(9) *)
  | Sync of float
      (** (T1) synchronous CSR writes: [t_config] cycles on the critical
          path of every invocation *)
  | Queued of { t_config : float; depth : int }
      (** (T2) queued descriptors: a serial descriptor engine takes
          [t_config] cycles per descriptor, overlapped with execution up
          to [depth] outstanding descriptors. Steady-state invocation
          period is [max t_interval t_config] (the engine is a
          throughput bound, not an additive latency). *)
  | Preprogrammed of { t_config : float; invocations : int }
      (** (T3) pre-programmed: a one-time [t_config]-cycle programming
          cost amortized over [invocations] invocations of the run,
          [t_config / invocations] per invocation *)

(** {2 Multi-unit composition types}

    Declared before {!scenario} so the single-unit labels, defined last,
    stay the unqualified default for existing code. A machine with N
    heterogeneous TCA units is described by one {!unit_scenario} per
    unit plus two coupling knobs: the fraction of invocations that are
    {e chained} (an invocation whose result feeds the next, so their
    window drains overlap rather than repeat), and whether the units
    share the core's commit port or own private writeback ports (the
    [Tca_unit] contention knob of the simulator). *)

type commit_port =
  | Shared  (** all units contend on the core's commit port *)
  | Private  (** each unit owns a writeback port; no cross-unit contention *)

type unit_scenario = {
  a : float;  (** fraction of all instructions this unit accelerates *)
  v : float;  (** this unit's invocations / total instructions *)
  accel : accel_time;
  config : config_cost;  (** this unit's configuration mechanism *)
}

type composition = {
  units : unit_scenario list;
  chained : float;
      (** fraction of invocations chained into the preceding one, in
          [0, 1]: chained invocations share one window drain but
          serialize on the shared commit port *)
  commit_port : commit_port;
  drain : Tca_interval.Drain.spec;
}

type scenario = {
  a : float;  (** fraction of acceleratable code, in [0, 1] *)
  v : float;  (** invocation frequency: invocations / total instructions *)
  accel : accel_time;
  drain : Tca_interval.Drain.spec;  (** [t_drain] override or Auto *)
  config : config_cost;  (** configuration mechanism; [No_config] default *)
}

val core : ?commit_stall:float -> ?drain_beta:float ->
  ipc:float -> rob_size:int -> issue_width:int -> unit ->
  (core, Diag.t) result
(** Smart constructor; [Error (Domain _)] on out-of-range parameters,
    [Error (Non_finite _)] on NaN/infinite floats. [commit_stall]
    defaults to 5 cycles, [drain_beta] to 2. *)

val core_exn : ?commit_stall:float -> ?drain_beta:float ->
  ipc:float -> rob_size:int -> issue_width:int -> unit -> core
(** Raises {!Diag.Error}. *)

val validate_config : config_cost -> (config_cost, Diag.t) result
(** [Sync t] and both [t_config] fields must be finite and non-negative;
    [Queued.depth] and [Preprogrammed.invocations] must be positive. *)

val scenario : ?drain:Tca_interval.Drain.spec -> ?config:config_cost ->
  a:float -> v:float -> accel:accel_time -> unit ->
  (scenario, Diag.t) result
(** Validates [0 <= a <= 1], [v >= 0], [a >= v] when [v > 0] (an
    invocation covers at least one instruction), positive accel factor /
    non-negative latency, finite non-negative fixed drain, and the
    {!validate_config} domain. [config] defaults to [No_config]. *)

val scenario_exn : ?drain:Tca_interval.Drain.spec -> ?config:config_cost ->
  a:float -> v:float -> accel:accel_time -> unit -> scenario
(** Raises {!Diag.Error}. *)

(** {2 Multi-unit composition constructors} *)

val unit_scenario :
  ?config:config_cost ->
  a:float -> v:float -> accel:accel_time -> unit ->
  (unit_scenario, Diag.t) result
(** Same domain as {!scenario}: [0 <= a <= 1], [v >= 0], [a >= v] when
    [v > 0], valid accel time, valid config cost. *)

val unit_scenario_exn :
  ?config:config_cost ->
  a:float -> v:float -> accel:accel_time -> unit -> unit_scenario

val composition :
  ?drain:Tca_interval.Drain.spec -> ?chained:float ->
  ?commit_port:commit_port -> units:unit_scenario list -> unit ->
  (composition, Diag.t) result
(** Validates every unit, requires a non-empty unit list with total
    acceleratable fraction [Σ a_i <= 1] and [chained] in [0, 1].
    [chained] defaults to 0, [commit_port] to [Shared], [drain] to
    [Auto]. *)

val composition_exn :
  ?drain:Tca_interval.Drain.spec -> ?chained:float ->
  ?commit_port:commit_port -> units:unit_scenario list -> unit ->
  composition

val composition_of_scenario : scenario -> composition
(** The single-unit lift: one unit with the scenario's [a], [v] and
    accel time, [chained = 0], [Shared] port. {!Equations} guarantees
    the composed model evaluates this to exactly the single-unit
    equations. *)

val commit_port_name : commit_port -> string

val config_cost_name : config_cost -> string
(** ["none"], ["sync"], ["queued"] or ["preprog"] — stable labels used
    by figure tables and JSON artifacts. *)

val granularity : scenario -> (float, Diag.t) result
(** [a / v]: average acceleratable instructions per invocation.
    [Error (Invalid _)] when [v = 0]. *)

val granularity_exn : scenario -> float

val scenario_of_granularity :
  ?drain:Tca_interval.Drain.spec -> ?config:config_cost ->
  a:float -> g:float -> accel:accel_time -> unit ->
  (scenario, Diag.t) result
(** Convenience used by the granularity sweeps: [v = a / g]. Requires a
    finite [g >= 1]. *)

val scenario_of_granularity_exn :
  ?drain:Tca_interval.Drain.spec -> ?config:config_cost ->
  a:float -> g:float -> accel:accel_time -> unit -> scenario

val pp_core : Format.formatter -> core -> unit
val pp_scenario : Format.formatter -> scenario -> unit
val pp_composition : Format.formatter -> composition -> unit

val glossary : (string * string) list
(** Paper Table I: symbol, meaning. *)
