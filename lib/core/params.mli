(** Input parameters of the analytical model (paper Table I).

    Core parameters describe the processor; scenario parameters describe
    the workload/accelerator pair under study.

    Smart constructors return [('a, Diag.t) result] and reject NaN and
    infinities on every float field, so no non-finite value can enter the
    model. The [*_exn] forms raise {!Diag.Error} and are for callers
    whose inputs are correct by construction (presets, tests). *)

type core = {
  ipc : float;  (** average program IPC before acceleration *)
  rob_size : int;  (** [s_ROB] *)
  issue_width : int;  (** [w_issue], front-end dispatch width *)
  commit_stall : float;  (** [t_commit], back-end commit latency in cycles *)
  drain_beta : float;
      (** exponent of the window/critical-path power law (default 2.0,
          the square-root law reported for SPEC2006) *)
}

type accel_time =
  | Factor of float
      (** acceleration factor [A]: the accelerator runs the acceleratable
          instructions at [A * IPC] (paper eq. (2)) *)
  | Latency of float
      (** explicit per-invocation accelerator execution time in cycles,
          "an explicitly provided latency inserted by the architect" *)

type scenario = {
  a : float;  (** fraction of acceleratable code, in [0, 1] *)
  v : float;  (** invocation frequency: invocations / total instructions *)
  accel : accel_time;
  drain : Tca_interval.Drain.spec;  (** [t_drain] override or Auto *)
}

val core : ?commit_stall:float -> ?drain_beta:float ->
  ipc:float -> rob_size:int -> issue_width:int -> unit ->
  (core, Diag.t) result
(** Smart constructor; [Error (Domain _)] on out-of-range parameters,
    [Error (Non_finite _)] on NaN/infinite floats. [commit_stall]
    defaults to 5 cycles, [drain_beta] to 2. *)

val core_exn : ?commit_stall:float -> ?drain_beta:float ->
  ipc:float -> rob_size:int -> issue_width:int -> unit -> core
(** Raises {!Diag.Error}. *)

val scenario : ?drain:Tca_interval.Drain.spec ->
  a:float -> v:float -> accel:accel_time -> unit ->
  (scenario, Diag.t) result
(** Validates [0 <= a <= 1], [v >= 0], [a >= v] when [v > 0] (an
    invocation covers at least one instruction), positive accel factor /
    non-negative latency, finite non-negative fixed drain. *)

val scenario_exn : ?drain:Tca_interval.Drain.spec ->
  a:float -> v:float -> accel:accel_time -> unit -> scenario
(** Raises {!Diag.Error}. *)

val granularity : scenario -> (float, Diag.t) result
(** [a / v]: average acceleratable instructions per invocation.
    [Error (Invalid _)] when [v = 0]. *)

val granularity_exn : scenario -> float

val scenario_of_granularity :
  ?drain:Tca_interval.Drain.spec ->
  a:float -> g:float -> accel:accel_time -> unit ->
  (scenario, Diag.t) result
(** Convenience used by the granularity sweeps: [v = a / g]. Requires a
    finite [g >= 1]. *)

val scenario_of_granularity_exn :
  ?drain:Tca_interval.Drain.spec ->
  a:float -> g:float -> accel:accel_time -> unit -> scenario

val pp_core : Format.formatter -> core -> unit
val pp_scenario : Format.formatter -> scenario -> unit

val glossary : (string * string) list
(** Paper Table I: symbol, meaning. *)
