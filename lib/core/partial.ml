let pair_of_trailing trailing =
  if trailing then (Mode.L_T, Mode.NL_T) else (Mode.L_NT, Mode.NL_NT)

let mode_time core s ~trailing ~p_speculate =
  if p_speculate < 0.0 || p_speculate > 1.0 then
    invalid_arg "Partial.mode_time: p_speculate out of [0, 1]";
  let l_mode, nl_mode = pair_of_trailing trailing in
  (p_speculate *. Equations.mode_time_exn core s l_mode)
  +. ((1.0 -. p_speculate) *. Equations.mode_time_exn core s nl_mode)

let speedup core s ~trailing ~p_speculate =
  if s.Params.v <= 0.0 then 1.0
  else
    let t = Equations.interval_times_exn core s in
    t.Equations.t_baseline /. mode_time core s ~trailing ~p_speculate

let required_confidence core s ~trailing ~target_speedup =
  let n = 1000 in
  let rec search i =
    if i > n then None
    else
      let p = float_of_int i /. float_of_int n in
      if speedup core s ~trailing ~p_speculate:p >= target_speedup then Some p
      else search (i + 1)
  in
  search 0
