let hp_core =
  Params.core_exn ~ipc:1.8 ~rob_size:256 ~issue_width:4 ~commit_stall:8.0 ()

let lp_core =
  Params.core_exn ~ipc:0.5 ~rob_size:64 ~issue_width:2 ~commit_stall:4.0 ()

let arm_a72 =
  Params.core_exn ~ipc:1.3 ~rob_size:128 ~issue_width:3 ~commit_stall:6.0 ()

let by_name s =
  match String.lowercase_ascii s with
  | "hp" -> Some hp_core
  | "lp" -> Some lp_core
  | "a72" | "arm_a72" -> Some arm_a72
  | _ -> None

let names = [ "hp"; "lp"; "a72" ]
