open Tca_util.Diag.Syntax

type mode_result = {
  coupling : Config.coupling;
  stats : Sim_stats.t;
  speedup : float;
  partial : Tca_util.Diag.t option;
}

type comparison = {
  baseline : Sim_stats.t;
  baseline_partial : Tca_util.Diag.t option;
  modes : mode_result list;
}

let split_outcome = function
  | Pipeline.Complete stats -> (stats, None)
  | Pipeline.Partial { stats; diag } -> (stats, Some diag)

let measure_ipc ?telemetry cfg trace =
  let+ outcome = Pipeline.run ?telemetry cfg trace in
  (Pipeline.stats_of_outcome outcome).Sim_stats.ipc

let measure_ipc_exn ?telemetry cfg trace =
  Tca_util.Diag.ok_exn (measure_ipc ?telemetry cfg trace)

let compare_modes ?telemetry ~cfg ~baseline ~accelerated () =
  let* base_outcome = Pipeline.run ?telemetry cfg baseline in
  let base_stats, baseline_partial = split_outcome base_outcome in
  let+ modes =
    List.fold_right
      (fun coupling acc ->
        let* acc = acc in
        let* outcome =
          Pipeline.run ?telemetry (Config.with_coupling cfg coupling)
            accelerated
        in
        let stats, partial = split_outcome outcome in
        let+ speedup =
          Sim_stats.speedup ~baseline:base_stats ~accelerated:stats
        in
        { coupling; stats; speedup; partial } :: acc)
      Config.all_couplings (Ok [])
  in
  { baseline = base_stats; baseline_partial; modes }

let compare_modes_exn ?telemetry ~cfg ~baseline ~accelerated () =
  Tca_util.Diag.ok_exn (compare_modes ?telemetry ~cfg ~baseline ~accelerated ())

let find_mode_result comparison coupling =
  match
    List.find_opt
      (fun r -> Config.coupling_name r.coupling = Config.coupling_name coupling)
      comparison.modes
  with
  | Some r -> Ok r
  | None ->
      Result.Error
        (Tca_util.Diag.Invalid
           {
             field = "Simulator.find_mode_result";
             message =
               Printf.sprintf "no result for coupling %s"
                 (Config.coupling_name coupling);
           })

let find_mode_result_exn comparison coupling =
  Tca_util.Diag.ok_exn (find_mode_result comparison coupling)
