open Tca_util.Diag.Syntax

type mode_result = {
  coupling : Config.coupling;
  stats : Sim_stats.t;
  speedup : float;
  partial : Tca_util.Diag.t option;
}

type comparison = {
  baseline : Sim_stats.t;
  baseline_partial : Tca_util.Diag.t option;
  modes : mode_result list;
}

let split_outcome = function
  | Pipeline.Complete stats -> (stats, None)
  | Pipeline.Partial { stats; diag } -> (stats, Some diag)

let measure_ipc ?telemetry cfg trace =
  let+ outcome = Pipeline.run ?telemetry cfg trace in
  (Pipeline.stats_of_outcome outcome).Sim_stats.ipc

let measure_ipc_exn ?telemetry cfg trace =
  Tca_util.Diag.ok_exn (measure_ipc ?telemetry cfg trace)

(* Containment: a raise from one entry — a typed [Diag.Error] escaping a
   convenience call, or any other exception from decode or run — costs
   that entry its result, never the batch. Without this, the eager
   decode below (or a raise inside a parallel [Pipeline.run]) would tear
   down all N entries on one poisoned trace. *)
let contain i f =
  try f () with
  | Tca_util.Diag.Error d -> Error d
  | e ->
      let bt = Printexc.get_raw_backtrace () in
      Error
        (Tca_util.Diag.Task_failure
           {
             job = Printf.sprintf "run_batch[%d]" i;
             fingerprint = "";
             exn = Printexc.to_string e;
             backtrace = Printexc.raw_backtrace_to_string bt;
           })

let run_batch ?telemetry ?(par = Tca_util.Parmap.serial) entries =
  let n = Array.length entries in
  (* Decode every distinct trace eagerly, before the fan-out: the memo
     on [Trace.t] makes later decodes free, and pre-populating it here
     keeps parallel domains from racing to duplicate the same work
     (the race is benign — decoding is pure — just wasteful). A decode
     failure is remembered per entry and reported in place. *)
  let decode_failures =
    Tca_telemetry.Timing.with_span telemetry "sim.decode" (fun () ->
        Array.mapi
          (fun i (_, trace) ->
            match contain i (fun () -> Ok (ignore (Trace.decoded trace))) with
            | Ok () -> None
            | Error d -> Some d)
          entries)
  in
  let sinks =
    Array.init n (fun _ -> Option.map Tca_telemetry.Sink.fork telemetry)
  in
  let results =
    par.Tca_util.Parmap.run
      (fun i ->
        match decode_failures.(i) with
        | Some d -> Error d
        | None ->
            contain i (fun () ->
                let cfg, trace = entries.(i) in
                (* The span lands in the entry's own forked sink, so the
                   merged trace carries it at the same position whatever
                   [par] is — on the lane of the domain that ran it. *)
                Tca_telemetry.Timing.with_span sinks.(i) "sim.step" (fun () ->
                    Pipeline.run ?telemetry:sinks.(i) cfg trace)))
      (Array.init n Fun.id)
  in
  (match telemetry with
  | None -> ()
  | Some into ->
      Tca_telemetry.Timing.with_span telemetry "telemetry.join" (fun () ->
          Array.iter
            (function
              | Some child -> Tca_telemetry.Sink.join ~into child
              | None -> ())
            sinks));
  results

let compare_modes ?telemetry ?par ~cfg ~baseline ~accelerated () =
  (* The five pipeline runs (baseline + one per coupling) are mutually
     independent, so they form one [run_batch]: each run records into
     its own forked sink, joined back in canonical order (baseline
     first, then [Config.all_couplings] order), so the merged trace is
     the same whatever [par] is — and the accelerated trace is decoded
     once for all four couplings. *)
  let couplings = Array.of_list Config.all_couplings in
  let n = 1 + Array.length couplings in
  let results =
    run_batch ?telemetry ?par
      (Array.init n (fun i ->
           if i = 0 then (cfg, baseline)
           else (Config.with_coupling cfg couplings.(i - 1), accelerated)))
  in
  let* base_outcome = results.(0) in
  let base_stats, baseline_partial = split_outcome base_outcome in
  let rec seq i =
    if i >= n then Ok []
    else
      let* outcome = results.(i) in
      let stats, partial = split_outcome outcome in
      let* speedup =
        Sim_stats.speedup ~baseline:base_stats ~accelerated:stats
      in
      let+ rest = seq (i + 1) in
      { coupling = couplings.(i - 1); stats; speedup; partial } :: rest
  in
  let+ modes = seq 1 in
  { baseline = base_stats; baseline_partial; modes }

let compare_modes_exn ?telemetry ?par ~cfg ~baseline ~accelerated () =
  Tca_util.Diag.ok_exn
    (compare_modes ?telemetry ?par ~cfg ~baseline ~accelerated ())

let find_mode_result comparison coupling =
  match
    List.find_opt
      (fun r -> Config.coupling_name r.coupling = Config.coupling_name coupling)
      comparison.modes
  with
  | Some r -> Ok r
  | None ->
      Result.Error
        (Tca_util.Diag.Invalid
           {
             field = "Simulator.find_mode_result";
             message =
               Printf.sprintf "no result for coupling %s"
                 (Config.coupling_name coupling);
           })

let find_mode_result_exn comparison coupling =
  Tca_util.Diag.ok_exn (find_mode_result comparison coupling)
