type occupancy = Pipelined | Exclusive

type commit_port = Shared | Private

type config_mode = Sync | Queued | Preprogrammed

type t = {
  id : int;
  occupancy : occupancy option;
  allow_leading : bool option;
  allow_trailing : bool option;
  extra_invocation_latency : int;
  commit_port : commit_port;
  config_mode : config_mode;
  config_latency : int;
  config_queue_depth : int;
}

let make ?occupancy ?allow_leading ?allow_trailing
    ?(extra_invocation_latency = 0) ?(commit_port = Shared)
    ?(config_mode = Sync) ?(config_latency = 0) ?(config_queue_depth = 4) id =
  if id < 0 then invalid_arg "Tca_unit.make: negative unit id";
  if extra_invocation_latency < 0 then
    invalid_arg "Tca_unit.make: negative extra invocation latency";
  if config_latency < 0 then
    invalid_arg "Tca_unit.make: negative config latency";
  if config_queue_depth < 1 then
    invalid_arg "Tca_unit.make: config queue depth < 1";
  { id; occupancy; allow_leading; allow_trailing; extra_invocation_latency;
    commit_port; config_mode; config_latency; config_queue_depth }

let default id = make id

let occupancy_name = function Pipelined -> "pipelined" | Exclusive -> "exclusive"

let commit_port_name = function Shared -> "shared" | Private -> "private"

let config_mode_name = function
  | Sync -> "sync"
  | Queued -> "queued"
  | Preprogrammed -> "preprog"

let validate u =
  let invalid message =
    Error
      (Tca_util.Diag.Invalid
         { field = Printf.sprintf "Tca_unit[%d]" u.id; message })
  in
  if u.id < 0 then invalid "negative unit id"
  else if u.extra_invocation_latency < 0 then
    invalid "negative extra invocation latency"
  else if u.config_latency < 0 then invalid "negative config latency"
  else if u.config_queue_depth < 1 then invalid "config queue depth < 1"
  else Ok u

let pp fmt u =
  let opt name to_string = function
    | None -> ""
    | Some x -> Printf.sprintf " %s=%s" name (to_string x)
  in
  Format.fprintf fmt "unit %d%s%s%s%s%s commit=%s" u.id
    (opt "occupancy" occupancy_name u.occupancy)
    (opt "leading" string_of_bool u.allow_leading)
    (opt "trailing" string_of_bool u.allow_trailing)
    (if u.extra_invocation_latency = 0 then ""
     else Printf.sprintf " extra_lat=%d" u.extra_invocation_latency)
    (if u.config_latency = 0 then ""
     else
       Printf.sprintf " config=%s:%d%s"
         (config_mode_name u.config_mode)
         u.config_latency
         (match u.config_mode with
         | Queued -> Printf.sprintf " depth=%d" u.config_queue_depth
         | Sync | Preprogrammed -> ""))
    (commit_port_name u.commit_port)
