type occupancy = Pipelined | Exclusive

type commit_port = Shared | Private

type t = {
  id : int;
  occupancy : occupancy option;
  allow_leading : bool option;
  allow_trailing : bool option;
  extra_invocation_latency : int;
  commit_port : commit_port;
}

let make ?occupancy ?allow_leading ?allow_trailing
    ?(extra_invocation_latency = 0) ?(commit_port = Shared) id =
  if id < 0 then invalid_arg "Tca_unit.make: negative unit id";
  if extra_invocation_latency < 0 then
    invalid_arg "Tca_unit.make: negative extra invocation latency";
  { id; occupancy; allow_leading; allow_trailing; extra_invocation_latency;
    commit_port }

let default id = make id

let occupancy_name = function Pipelined -> "pipelined" | Exclusive -> "exclusive"

let commit_port_name = function Shared -> "shared" | Private -> "private"

let validate u =
  let invalid message =
    Error
      (Tca_util.Diag.Invalid
         { field = Printf.sprintf "Tca_unit[%d]" u.id; message })
  in
  if u.id < 0 then invalid "negative unit id"
  else if u.extra_invocation_latency < 0 then
    invalid "negative extra invocation latency"
  else Ok u

let pp fmt u =
  let opt name to_string = function
    | None -> ""
    | Some x -> Printf.sprintf " %s=%s" name (to_string x)
  in
  Format.fprintf fmt "unit %d%s%s%s%s commit=%s" u.id
    (opt "occupancy" occupancy_name u.occupancy)
    (opt "leading" string_of_bool u.allow_leading)
    (opt "trailing" string_of_bool u.allow_trailing)
    (if u.extra_invocation_latency = 0 then ""
     else Printf.sprintf " extra_lat=%d" u.extra_invocation_latency)
    (commit_port_name u.commit_port)
