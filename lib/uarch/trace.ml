module Decoded = struct
  let op_int_alu = 0
  let op_int_mult = 1
  let op_fp_alu = 2
  let op_fp_mult = 3
  let op_load = 4
  let op_store = 5
  let op_branch = 6
  let op_accel = 7

  type t = {
    n : int;
    op : int array;
    src1 : int array;
    src2 : int array;
    dst : int array;
    addr : int array;
    pc : int array;
    taken : bool array;
    accel_lat : int array;
    accel_unit : int array;
    reads_off : int array;
    reads_len : int array;
    writes_off : int array;
    writes_len : int array;
    accel_mem : int array;
  }

  let op_code : Isa.op -> int = function
    | Isa.Int_alu -> op_int_alu
    | Isa.Int_mult -> op_int_mult
    | Isa.Fp_alu -> op_fp_alu
    | Isa.Fp_mult -> op_fp_mult
    | Isa.Load -> op_load
    | Isa.Store -> op_store
    | Isa.Branch -> op_branch
    | Isa.Accel _ -> op_accel

  let of_instrs (instrs : Isa.instr array) =
    let n = Array.length instrs in
    let pool = ref 0 in
    Array.iter
      (fun (ins : Isa.instr) ->
        match ins.Isa.op with
        | Isa.Accel a ->
            pool := !pool + Array.length a.Isa.reads + Array.length a.Isa.writes
        | _ -> ())
      instrs;
    let d =
      {
        n;
        op = Array.make n 0;
        src1 = Array.make n Isa.no_reg;
        src2 = Array.make n Isa.no_reg;
        dst = Array.make n Isa.no_reg;
        addr = Array.make n 0;
        pc = Array.make n 0;
        taken = Array.make n false;
        accel_lat = Array.make n 0;
        accel_unit = Array.make n 0;
        reads_off = Array.make n 0;
        reads_len = Array.make n 0;
        writes_off = Array.make n 0;
        writes_len = Array.make n 0;
        accel_mem = Array.make (max 1 !pool) 0;
      }
    in
    let off = ref 0 in
    Array.iteri
      (fun i (ins : Isa.instr) ->
        d.op.(i) <- op_code ins.Isa.op;
        d.src1.(i) <- ins.Isa.src1;
        d.src2.(i) <- ins.Isa.src2;
        d.dst.(i) <- ins.Isa.dst;
        d.addr.(i) <- ins.Isa.addr;
        d.pc.(i) <- ins.Isa.pc;
        d.taken.(i) <- ins.Isa.taken;
        match ins.Isa.op with
        | Isa.Accel a ->
            let nr = Array.length a.Isa.reads in
            let nw = Array.length a.Isa.writes in
            d.accel_lat.(i) <- a.Isa.compute_latency;
            d.accel_unit.(i) <- a.Isa.unit_id;
            d.reads_off.(i) <- !off;
            d.reads_len.(i) <- nr;
            Array.blit a.Isa.reads 0 d.accel_mem !off nr;
            off := !off + nr;
            d.writes_off.(i) <- !off;
            d.writes_len.(i) <- nw;
            Array.blit a.Isa.writes 0 d.accel_mem !off nw;
            off := !off + nw
        | _ -> ())
      instrs;
    d
end

type t = { instrs : Isa.instr array; mutable decoded_ : Decoded.t option }

let validate instrs =
  let check_reg r = r = Isa.no_reg || (r >= 0 && r < Isa.num_arch_regs) in
  let bad = ref None in
  Array.iteri
    (fun i (ins : Isa.instr) ->
      if !bad = None then
        if not (check_reg ins.src1 && check_reg ins.src2 && check_reg ins.dst)
        then bad := Some (i, "register out of range")
        else if ins.addr < 0 then bad := Some (i, "negative address")
        else
          match ins.op with
          | Isa.Accel a ->
              if a.unit_id < 0 then bad := Some (i, "negative accel unit id")
              else if a.compute_latency < 0 then
                bad := Some (i, "negative accel latency")
              else if
                Array.exists (fun x -> x < 0) a.reads
                || Array.exists (fun x -> x < 0) a.writes
              then bad := Some (i, "negative accel address")
              else if
                Array.length a.reads = 0
                && Array.length a.writes = 0
                && a.compute_latency = 0
              then
                bad :=
                  Some
                    ( i,
                      "no-op accel (no reads, no writes, zero compute \
                       latency)" )
          | _ -> ())
    instrs;
  match !bad with
  | None -> Ok ()
  | Some (i, msg) -> Error (Printf.sprintf "instruction %d: %s" i msg)

let of_array instrs =
  match validate instrs with
  | Ok () -> { instrs; decoded_ = None }
  | Error msg -> invalid_arg ("Trace.of_array: " ^ msg)

let length t = Array.length t.instrs
let get t i = t.instrs.(i)
let iter f t = Array.iter f t.instrs

(* Memoized: decoding is pure, so the benign race when two domains
   decode the same trace concurrently only wastes work (both build the
   same value; one pointer store wins). Callers that fan a trace out
   across domains should still decode eagerly first — see
   [Simulator.run_batch]. *)
let decoded t =
  match t.decoded_ with
  | Some d -> d
  | None ->
      let d = Decoded.of_instrs t.instrs in
      t.decoded_ <- Some d;
      d

type counts = {
  total : int;
  int_alu : int;
  int_mult : int;
  fp_alu : int;
  fp_mult : int;
  loads : int;
  stores : int;
  branches : int;
  accels : int;
}

let counts t =
  let c =
    ref
      {
        total = Array.length t.instrs;
        int_alu = 0;
        int_mult = 0;
        fp_alu = 0;
        fp_mult = 0;
        loads = 0;
        stores = 0;
        branches = 0;
        accels = 0;
      }
  in
  iter
    (fun ins ->
      let x = !c in
      c :=
        (match ins.Isa.op with
        | Isa.Int_alu -> { x with int_alu = x.int_alu + 1 }
        | Isa.Int_mult -> { x with int_mult = x.int_mult + 1 }
        | Isa.Fp_alu -> { x with fp_alu = x.fp_alu + 1 }
        | Isa.Fp_mult -> { x with fp_mult = x.fp_mult + 1 }
        | Isa.Load -> { x with loads = x.loads + 1 }
        | Isa.Store -> { x with stores = x.stores + 1 }
        | Isa.Branch -> { x with branches = x.branches + 1 }
        | Isa.Accel _ -> { x with accels = x.accels + 1 }))
    t;
  !c

let counts_to_json c =
  let open Tca_util.Json in
  Obj
    [
      ("total", Int c.total);
      ("int_alu", Int c.int_alu);
      ("int_mult", Int c.int_mult);
      ("fp_alu", Int c.fp_alu);
      ("fp_mult", Int c.fp_mult);
      ("loads", Int c.loads);
      ("stores", Int c.stores);
      ("branches", Int c.branches);
      ("accels", Int c.accels);
    ]

(* Textual interchange format, one instruction per line:
     <pc> <op> <dst> <src1> <src2> <addr> <taken>
   with op one of the names from Isa.op_name; accel lines append
     <compute_latency> <n_reads> <reads...> <n_writes> <writes...>
   and, only for a non-zero unit id, one trailing <unit_id> field —
   so single-unit traces round-trip byte-identically with files written
   before unit ids existed, and old parsers' inputs stay valid. *)

let instr_to_line (i : Isa.instr) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "%d %s %d %d %d %d %b" i.Isa.pc (Isa.op_name i.Isa.op)
       i.Isa.dst i.Isa.src1 i.Isa.src2 i.Isa.addr i.Isa.taken);
  (match i.Isa.op with
  | Isa.Accel a ->
      Buffer.add_string buf (Printf.sprintf " %d %d" a.Isa.compute_latency
          (Array.length a.Isa.reads));
      Array.iter (fun r -> Buffer.add_string buf (Printf.sprintf " %d" r)) a.Isa.reads;
      Buffer.add_string buf (Printf.sprintf " %d" (Array.length a.Isa.writes));
      Array.iter (fun w -> Buffer.add_string buf (Printf.sprintf " %d" w)) a.Isa.writes;
      if a.Isa.unit_id <> 0 then
        Buffer.add_string buf (Printf.sprintf " %d" a.Isa.unit_id)
  | _ -> ());
  Buffer.contents buf

let to_channel oc t =
  Printf.fprintf oc "tca-trace 1 %d\n" (length t);
  iter (fun i -> output_string oc (instr_to_line i ^ "\n")) t

let parse_line lineno line =
  let fail msg = failwith (Printf.sprintf "Trace.of_channel: line %d: %s" lineno msg) in
  let fields = String.split_on_char ' ' (String.trim line) in
  let int_of s = match int_of_string_opt s with
    | Some v -> v
    | None -> fail (Printf.sprintf "bad integer %S" s)
  in
  let reg_of name s =
    let r = int_of s in
    if r <> Isa.no_reg && (r < 0 || r >= Isa.num_arch_regs) then
      fail (Printf.sprintf "%s register %d out of range" name r);
    r
  in
  match fields with
  | pc :: op_name :: dst :: src1 :: src2 :: addr :: taken :: rest ->
      let pc = int_of pc and dst = reg_of "dst" dst in
      let src1 = reg_of "src1" src1 in
      let src2 = reg_of "src2" src2 and addr = int_of addr in
      let taken = match bool_of_string_opt taken with
        | Some b -> b
        | None -> fail (Printf.sprintf "bad boolean %S" taken)
      in
      let op =
        match (op_name, rest) with
        | "int_alu", [] -> Isa.Int_alu
        | "int_mult", [] -> Isa.Int_mult
        | "fp_alu", [] -> Isa.Fp_alu
        | "fp_mult", [] -> Isa.Fp_mult
        | "load", [] -> Isa.Load
        | "store", [] -> Isa.Store
        | "branch", [] -> Isa.Branch
        | "accel", lat :: n_reads :: rest ->
            let lat = int_of lat and n_reads = int_of n_reads in
            if List.length rest < n_reads + 1 then fail "truncated accel reads";
            let reads = Array.of_list (List.filteri (fun i _ -> i < n_reads) rest |> List.map int_of) in
            let rest = List.filteri (fun i _ -> i >= n_reads) rest in
            (match rest with
            | n_writes :: ws ->
                let n_writes = int_of n_writes in
                let n_ws = List.length ws in
                let unit_id =
                  (* Exactly [n_writes] fields: a classic single-unit
                     line; one extra trailing field: the unit id. *)
                  if n_ws = n_writes then 0
                  else if n_ws = n_writes + 1 then begin
                    let u = int_of (List.nth ws n_writes) in
                    if u < 0 then fail "negative accel unit id";
                    u
                  end
                  else fail "truncated accel writes"
                in
                Isa.Accel
                  {
                    Isa.unit_id;
                    compute_latency = lat;
                    reads;
                    writes =
                      Array.of_list
                        (List.filteri (fun i _ -> i < n_writes) ws
                        |> List.map int_of);
                  }
            | [] -> fail "missing accel write count")
        | name, _ -> fail (Printf.sprintf "bad op %S or trailing fields" name)
      in
      { Isa.pc; op; dst; src1; src2; addr; taken }
  | _ -> fail "too few fields"

let of_channel ic =
  let header = try input_line ic with End_of_file -> failwith "Trace.of_channel: empty input" in
  let count =
    match String.split_on_char ' ' (String.trim header) with
    | [ "tca-trace"; "1"; n ] -> (
        match int_of_string_opt n with
        | Some c when c >= 0 -> c
        | Some _ | None -> failwith "Trace.of_channel: bad count in header")
    | _ -> failwith "Trace.of_channel: bad header (expected 'tca-trace 1 <count>')"
  in
  let instrs =
    Array.init count (fun i ->
        match input_line ic with
        | line -> parse_line (i + 2) line
        | exception End_of_file ->
            failwith
              (Printf.sprintf "Trace.of_channel: expected %d instructions, got %d" count i))
  in
  (match input_line ic with
  | line ->
      if String.trim line <> "" then
        failwith
          (Printf.sprintf
             "Trace.of_channel: line %d: trailing garbage after %d \
              instructions"
             (count + 2) count)
  | exception End_of_file -> ());
  of_array instrs

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc t)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

module Builder = struct
  type builder = {
    mutable buf : Isa.instr array;
    mutable len : int;
  }

  type t = builder

  let dummy = Isa.int_alu ~dst:0 ()

  let create ?(capacity = 1024) () =
    { buf = Array.make (max 16 capacity) dummy; len = 0 }

  let grow b =
    let cap = Array.length b.buf in
    let nbuf = Array.make (2 * cap) dummy in
    Array.blit b.buf 0 nbuf 0 b.len;
    b.buf <- nbuf

  let next_pc b = 4 * b.len

  let add b ins =
    if b.len = Array.length b.buf then grow b;
    b.buf.(b.len) <- { ins with Isa.pc = next_pc b };
    b.len <- b.len + 1

  let add_here b f =
    let ins = f ~pc:(next_pc b) in
    add b ins

  let add_at_site b ins =
    if b.len = Array.length b.buf then grow b;
    b.buf.(b.len) <- ins;
    b.len <- b.len + 1

  let length b = b.len
  let build b = of_array (Array.sub b.buf 0 b.len)
end
