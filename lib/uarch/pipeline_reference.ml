(* The pre-optimization pipeline, kept verbatim as a differential
   oracle: the golden tests, the fuzz harness and the bench harness all
   run this implementation against the optimized [Pipeline] and assert
   bit-identical [Sim_stats]. It allocates per-cycle (list churn for
   pending accelerator writes, closures in the issue stage) and decodes
   [Isa.instr] records on every access -- exactly the costs the
   optimized path removes -- so the measured ratio between the two is a
   machine-independent record of the optimization, used by the CI bench
   regression guard. Do not "improve" this file; change [Pipeline] and
   regenerate the goldens instead. *)

(* ROB entry states. *)
let st_empty = 0
let st_waiting = 1
let st_executing = 2
let st_done = 3

type state = {
  cfg : Config.t;
  telemetry : Tca_telemetry.Sink.t option;
      (* Observation only: instrumentation reads simulator state, never
         writes it, so an attached sink cannot perturb results (asserted
         by the fuzz harness). *)
  trace : Trace.t;
  hier : Mem_hier.t;
  bp : Bpred.t;
  ports : Ports.t;
  miss_ports : Ports.t option;
  dtlb : Tlb.t option;
  (* Per-TCA-unit state, indexed by [Isa.accel.unit_id] (= position in
     [cfg.tca_units]). The effective per-unit flags are looked up from
     the config on every use — the straightforward form the optimized
     pipeline pre-resolves into flat arrays. *)
  u_free_at : int array;  (* per-unit [accel_free_at] *)
  u_ports : Ports.t option array;
      (* [Some] = the unit's private writeback-port bank
         ([Tca_unit.Private]); [None] = contend on the shared ports *)
  u_invocations : int array;
  u_busy : int array;
  u_head_wait : int array;
  u_serialize : int array;
  mutable serialize_unit : int;  (* unit owning [serialize_slot] *)
  (* Configuration-wall mechanics (Tca_unit.config_mode, the simulator
     counterpart of Equations terms (T1)-(T3)); every path is gated on a
     non-zero [Tca_unit.config_latency], so default units leave the
     schedule untouched. *)
  u_desc_free_at : int array;
      (* cycle the unit's serial descriptor engine finishes its backlog;
         with backlog R = free_at - now > 0, outstanding descriptors are
         exactly ceil(R / c) (completions spaced c apart), so queue-full
         is the integer test [R > (depth - 1) * c] *)
  u_preprog_done : bool array;  (* Preprogrammed one-time cost paid *)
  cfg_ready : int array;
      (* per-ROB-slot: cycle the invocation's descriptor is processed
         and execution may start (0 for non-queued invocations) *)
  mutable cfg_paid_ti : int;
      (* trace index whose synchronous CSR writes are in flight, -1 none *)
  mutable cfg_ready_at : int;  (* cycle those CSR writes complete *)
  rob : int;  (* capacity, cached *)
  (* Parallel ROB arrays, indexed by slot. *)
  tr_idx : int array;
  st : int array;
  complete_at : int array;
  seq : int array;
  dep1_slot : int array;
  dep1_seq : int array;
  dep2_slot : int array;
  dep2_seq : int array;
  (* Rename table: architectural register -> youngest producer. *)
  ren_slot : int array;
  ren_seq : int array;
  mutable head : int;
  mutable tail : int;
  mutable count : int;
  mutable iq_count : int;
  mutable lsq_count : int;
  mutable next_fetch : int;
  mutable next_seq : int;
  mutable fetch_resume_at : int;
  mutable pending_redirect : int;  (* slot of unresolved mispredicted branch, -1 none *)
  mutable pending_redirect_seq : int;
  mutable serialize_slot : int;  (* in-flight NT TCA blocking dispatch, -1 none *)
  mutable pending_accel_writes : (int * int array) list;
  (* Statistics. *)
  mutable cycle : int;
  mutable committed : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable accel_invocations : int;
  mutable accel_busy : int;
  mutable accel_head_wait : int;
  mutable stall_rob : int;
  mutable stall_iq : int;
  mutable stall_lsq : int;
  mutable stall_serialize : int;
  mutable stall_redirect : int;
  mutable stall_drained : int;
  mutable stall_config : int;
  mutable stall_config_queue : int;
  mutable occupancy_sum : int;
  mutable occupancy_at_accel_sum : int;
}

let create ?telemetry cfg trace =
  let r = cfg.Config.rob_size in
  let nu = Array.length cfg.Config.tca_units in
  {
    cfg;
    telemetry;
    trace;
    hier = Mem_hier.create cfg.Config.mem;
    bp = Bpred.create cfg.Config.bpred;
    ports = Ports.create ~width:cfg.Config.mem_ports ~horizon:8192;
    miss_ports =
      Option.map
        (fun width -> Ports.create ~width ~horizon:8192)
        cfg.Config.miss_bandwidth;
    dtlb = Option.map Tlb.create cfg.Config.dtlb;
    u_free_at = Array.make nu 0;
    u_ports =
      Array.map
        (fun (u : Tca_unit.t) ->
          match u.Tca_unit.commit_port with
          | Tca_unit.Shared -> None
          | Tca_unit.Private ->
              Some (Ports.create ~width:cfg.Config.mem_ports ~horizon:8192))
        cfg.Config.tca_units;
    u_invocations = Array.make nu 0;
    u_busy = Array.make nu 0;
    u_head_wait = Array.make nu 0;
    u_serialize = Array.make nu 0;
    serialize_unit = -1;
    u_desc_free_at = Array.make nu 0;
    u_preprog_done = Array.make nu false;
    cfg_ready = Array.make r 0;
    cfg_paid_ti = -1;
    cfg_ready_at = 0;
    rob = r;
    tr_idx = Array.make r (-1);
    st = Array.make r st_empty;
    complete_at = Array.make r 0;
    seq = Array.make r (-1);
    dep1_slot = Array.make r (-1);
    dep1_seq = Array.make r (-1);
    dep2_slot = Array.make r (-1);
    dep2_seq = Array.make r (-1);
    ren_slot = Array.make Isa.num_arch_regs (-1);
    ren_seq = Array.make Isa.num_arch_regs (-1);
    head = 0;
    tail = 0;
    count = 0;
    iq_count = 0;
    lsq_count = 0;
    next_fetch = 0;
    next_seq = 0;
    fetch_resume_at = 0;
    pending_redirect = -1;
    pending_redirect_seq = -1;
    serialize_slot = -1;
    pending_accel_writes = [];
    cycle = 0;
    committed = 0;
    branches = 0;
    mispredicts = 0;
    accel_invocations = 0;
    accel_busy = 0;
    accel_head_wait = 0;
    stall_rob = 0;
    stall_iq = 0;
    stall_lsq = 0;
    stall_serialize = 0;
    stall_redirect = 0;
    stall_drained = 0;
    stall_config = 0;
    stall_config_queue = 0;
    occupancy_sum = 0;
    occupancy_at_accel_sum = 0;
  }

let instr_of s slot = Trace.get s.trace s.tr_idx.(slot)

(* A producer is still pending iff its slot holds the same dynamic
   instruction (sequence number matches) and it has not completed. A
   mismatching sequence means the producer committed and its slot was
   reused (or freed): the value is architecturally available. *)
let producer_pending s slot seq =
  slot >= 0 && s.st.(slot) <> st_empty && s.seq.(slot) = seq
  && s.st.(slot) <> st_done

let deps_ready s slot =
  (not (producer_pending s s.dep1_slot.(slot) s.dep1_seq.(slot)))
  && not (producer_pending s s.dep2_slot.(slot) s.dep2_seq.(slot))

(* Scan program-order-older entries for the youngest in-flight store to
   the same address. Returns:
   [`None] no conflict, access memory;
   [`Forward] matching store completed, forward in 1 cycle;
   [`Blocked] matching store not yet executed, the load must wait. *)
let older_store_match s slot addr =
  let pos = (slot - s.head + s.rob) mod s.rob in
  let rec scan k =
    if k < 0 then `None
    else
      let j = (s.head + k) mod s.rob in
      if s.st.(j) = st_empty then scan (k - 1)
      else
        let ins = instr_of s j in
        match ins.Isa.op with
        | Isa.Store when ins.Isa.addr = addr ->
            if s.st.(j) = st_done then `Forward else `Blocked
        | _ -> scan (k - 1)
  in
  scan (pos - 1)

let op_latency (cfg : Config.t) (op : Isa.op) =
  match op with
  | Isa.Int_alu | Isa.Branch -> cfg.latencies.Config.int_alu
  | Isa.Int_mult -> cfg.latencies.Config.int_mult
  | Isa.Fp_alu -> cfg.latencies.Config.fp_alu
  | Isa.Fp_mult -> cfg.latencies.Config.fp_mult
  | Isa.Load | Isa.Store | Isa.Accel _ -> assert false

(* Partial speculation: a deterministic per-dynamic-instance coin decides
   whether this TCA invocation may execute speculatively (as a
   confidence-based design would, paper Section VIII). *)
let accel_speculative s slot u =
  match s.cfg.Config.tca_speculate_fraction with
  | None -> Config.unit_allow_leading s.cfg s.cfg.Config.tca_units.(u)
  | Some p ->
      let h = s.seq.(slot) * 0x9E3779B9 in
      let h = (h lxor (h lsr 16)) land 0xFFFF in
      float_of_int h < p *. 65536.0

(* --- per-cycle stages, called in order: complete, commit, issue,
   dispatch --- *)

let complete_stage s =
  (* Retire pending accelerator writes into the cache hierarchy. *)
  let due, still =
    List.partition (fun (at, _) -> at <= s.cycle) s.pending_accel_writes
  in
  List.iter (fun (_, addrs) -> Array.iter (Mem_hier.store s.hier) addrs) due;
  s.pending_accel_writes <- still;
  if s.count > 0 then begin
    let k = ref 0 in
    while !k < s.count do
      let slot = (s.head + !k) mod s.rob in
      if s.st.(slot) = st_executing && s.complete_at.(slot) <= s.cycle then begin
        s.st.(slot) <- st_done;
        if s.pending_redirect = slot && s.pending_redirect_seq = s.seq.(slot)
        then begin
          s.fetch_resume_at <- s.cycle + s.cfg.Config.frontend_depth;
          s.pending_redirect <- -1;
          s.pending_redirect_seq <- -1
        end
      end;
      incr k
    done
  end

let commit_stage s =
  let n = ref 0 in
  let continue = ref true in
  while !continue && !n < s.cfg.Config.commit_width && s.count > 0 do
    let slot = s.head in
    if
      s.st.(slot) = st_done
      && s.complete_at.(slot) + s.cfg.Config.commit_depth <= s.cycle
    then begin
      let ins = instr_of s slot in
      (match ins.Isa.op with
      | Isa.Store -> Mem_hier.store s.hier ins.Isa.addr
      | _ -> ());
      (match ins.Isa.op with
      | Isa.Load | Isa.Store -> s.lsq_count <- s.lsq_count - 1
      | _ -> ());
      let dst = ins.Isa.dst in
      if dst >= 0 && s.ren_slot.(dst) = slot && s.ren_seq.(dst) = s.seq.(slot)
      then begin
        s.ren_slot.(dst) <- -1;
        s.ren_seq.(dst) <- -1
      end;
      if s.serialize_slot = slot then s.serialize_slot <- -1;
      s.st.(slot) <- st_empty;
      s.seq.(slot) <- -1;
      s.head <- (s.head + 1) mod s.rob;
      s.count <- s.count - 1;
      s.committed <- s.committed + 1;
      incr n
    end
    else continue := false
  done

(* Issue one line read at or after [now]: books a memory port, and when
   the line misses the L1 also books an MSHR-injection slot if miss
   bandwidth is limited. Returns the completion cycle. *)
let memory_read s ~now addr =
  let port_cycle = Ports.reserve s.ports ~now in
  let start =
    match s.miss_ports with
    | Some mp when not (Mem_hier.l1_resident s.hier addr) ->
        max port_cycle (Ports.reserve mp ~now:port_cycle)
    | Some _ | None -> port_cycle
  in
  let translation =
    match s.dtlb with Some tlb -> Tlb.access tlb addr | None -> 0
  in
  start + translation + Mem_hier.load_latency s.hier addr

let issue_accel s slot (a : Isa.accel) =
  let u = a.Isa.unit_id in
  let unit = s.cfg.Config.tca_units.(u) in
  let start =
    if Config.unit_exclusive s.cfg unit then max s.cycle s.u_free_at.(u)
    else s.cycle
  in
  (* A queued invocation may not start before its descriptor is
     processed ([cfg_ready] is 0 for every other kind of invocation). *)
  let start = max start s.cfg_ready.(slot) in
  let reads_done =
    Array.fold_left
      (fun acc addr -> max acc (memory_read s ~now:start addr))
      start a.Isa.reads
  in
  let compute_done =
    reads_done + a.Isa.compute_latency + unit.Tca_unit.extra_invocation_latency
  in
  let wports = match s.u_ports.(u) with Some p -> p | None -> s.ports in
  let write_done =
    Array.fold_left
      (fun acc _addr ->
        let port_cycle = Ports.reserve wports ~now:compute_done in
        max acc (port_cycle + 1))
      compute_done a.Isa.writes
  in
  let finish = max compute_done write_done in
  if Array.length a.Isa.writes > 0 then
    s.pending_accel_writes <- (finish, a.Isa.writes) :: s.pending_accel_writes;
  s.complete_at.(slot) <- max finish (s.cycle + 1);
  s.u_free_at.(u) <- s.complete_at.(slot);
  s.accel_busy <- s.accel_busy + (s.complete_at.(slot) - s.cycle);
  s.u_busy.(u) <- s.u_busy.(u) + (s.complete_at.(slot) - s.cycle);
  match s.telemetry with
  | None -> ()
  | Some sink ->
      (* Invoke-to-complete span; its duration is exactly this
         invocation's contribution to [accel_busy]. *)
      Tca_telemetry.Sink.span sink ~cat:"accel"
        ~args:
          ([
             ("reads", Tca_util.Json.Int (Array.length a.Isa.reads));
             ("writes", Tca_util.Json.Int (Array.length a.Isa.writes));
             ("compute_latency", Tca_util.Json.Int a.Isa.compute_latency);
           ]
          @
          if Array.length s.cfg.Config.tca_units > 1 then
            [ ("unit", Tca_util.Json.Int u) ]
          else [])
        ~ts:(float_of_int s.cycle)
        ~dur:(float_of_int (s.complete_at.(slot) - s.cycle))
        "accel.invoke"

let issue_stage s =
  let issued = ref 0 in
  let int_alu_used = ref 0
  and int_mult_used = ref 0
  and fp_used = ref 0 in
  let k = ref 0 in
  while !issued < s.cfg.Config.issue_width && !k < s.count do
    let slot = (s.head + !k) mod s.rob in
    if s.st.(slot) = st_waiting && deps_ready s slot then begin
      let ins = instr_of s slot in
      let try_issue complete =
        s.st.(slot) <- st_executing;
        s.complete_at.(slot) <- complete;
        s.iq_count <- s.iq_count - 1;
        incr issued
      in
      match ins.Isa.op with
      | Isa.Int_alu | Isa.Branch ->
          if !int_alu_used < s.cfg.Config.int_alu_units then begin
            incr int_alu_used;
            try_issue (s.cycle + op_latency s.cfg ins.Isa.op)
          end
      | Isa.Int_mult ->
          if !int_mult_used < s.cfg.Config.int_mult_units then begin
            incr int_mult_used;
            try_issue (s.cycle + op_latency s.cfg ins.Isa.op)
          end
      | Isa.Fp_alu | Isa.Fp_mult ->
          if !fp_used < s.cfg.Config.fp_units then begin
            incr fp_used;
            try_issue (s.cycle + op_latency s.cfg ins.Isa.op)
          end
      | Isa.Store ->
          (* Address generation; data drains to cache at commit. *)
          try_issue (s.cycle + 1)
      | Isa.Load -> (
          match older_store_match s slot ins.Isa.addr with
          | `Blocked -> ()
          | `Forward -> try_issue (s.cycle + 1)
          | `None -> try_issue (memory_read s ~now:s.cycle ins.Isa.addr))
      | Isa.Accel a ->
          let at_head = slot = s.head in
          if accel_speculative s slot a.Isa.unit_id || at_head then begin
            issue_accel s slot a;
            s.st.(slot) <- st_executing;
            s.iq_count <- s.iq_count - 1;
            incr issued
          end
          else begin
            s.accel_head_wait <- s.accel_head_wait + 1;
            s.u_head_wait.(a.Isa.unit_id) <- s.u_head_wait.(a.Isa.unit_id) + 1
          end
    end;
    incr k
  done;
  !issued

(* Reasons the first dispatch slot of a cycle could not be filled, for the
   stall breakdown. [Config_write] and [Config_queue] are counted outside
   the six-reason breakdown (Sim_stats.config_*_stall_cycles). *)
type stall =
  | No_stall
  | Drained
  | Redirect
  | Serialize
  | Rob
  | Iq
  | Lsq
  | Config_write
  | Config_queue

let dispatch_stage s =
  let dispatched = ref 0 in
  let stall = ref No_stall in
  let continue = ref true in
  while !continue && !dispatched < s.cfg.Config.dispatch_width do
    if s.next_fetch >= Trace.length s.trace then begin
      stall := Drained;
      continue := false
    end
    else if s.cycle < s.fetch_resume_at then begin
      stall := Redirect;
      continue := false
    end
    else if s.serialize_slot >= 0 then begin
      stall := Serialize;
      continue := false
    end
    else if s.count = s.rob then begin
      stall := Rob;
      continue := false
    end
    else if s.iq_count = s.cfg.Config.iq_size then begin
      stall := Iq;
      continue := false
    end
    else begin
      let ins = Trace.get s.trace s.next_fetch in
      if Isa.is_mem ins && s.lsq_count = s.cfg.Config.lsq_size then begin
        stall := Lsq;
        continue := false
      end
      else begin
        (* Configuration gate, evaluated only for accel instructions of
           a unit with a non-zero config latency (so the default
           pipeline is untouched). [Sync] (and the one-time
           [Preprogrammed] cost) blocks dispatch for [config_latency]
           cycles of CSR writes; a [Queued] unit only blocks while its
           descriptor queue is full. *)
        let cfg_block =
          match ins.Isa.op with
          | Isa.Accel a ->
              let u = a.Isa.unit_id in
              let unit = s.cfg.Config.tca_units.(u) in
              let c = unit.Tca_unit.config_latency in
              if c = 0 then No_stall
              else
                let sync_gate () =
                  if s.cfg_paid_ti <> s.next_fetch then begin
                    s.cfg_paid_ti <- s.next_fetch;
                    s.cfg_ready_at <- s.cycle + c;
                    Config_write
                  end
                  else if s.cycle < s.cfg_ready_at then Config_write
                  else No_stall
                in
                (match unit.Tca_unit.config_mode with
                | Tca_unit.Sync -> sync_gate ()
                | Tca_unit.Preprogrammed ->
                    if s.u_preprog_done.(u) then No_stall else sync_gate ()
                | Tca_unit.Queued ->
                    (* backlog R = free_at - now; outstanding =
                       ceil(R / c), so full <=> R > (depth - 1) * c *)
                    if
                      s.u_desc_free_at.(u) - s.cycle
                      > (unit.Tca_unit.config_queue_depth - 1) * c
                    then Config_queue
                    else No_stall)
          | _ -> No_stall
        in
        if cfg_block <> No_stall then begin
          stall := cfg_block;
          continue := false
        end
        else begin
        let slot = s.tail in
        s.tail <- (s.tail + 1) mod s.rob;
        s.count <- s.count + 1;
        s.tr_idx.(slot) <- s.next_fetch;
        s.st.(slot) <- st_waiting;
        s.seq.(slot) <- s.next_seq;
        s.next_seq <- s.next_seq + 1;
        let dep r = if r >= 0 then (s.ren_slot.(r), s.ren_seq.(r)) else (-1, -1) in
        let d1s, d1q = dep ins.Isa.src1 in
        let d2s, d2q = dep ins.Isa.src2 in
        s.dep1_slot.(slot) <- d1s;
        s.dep1_seq.(slot) <- d1q;
        s.dep2_slot.(slot) <- d2s;
        s.dep2_seq.(slot) <- d2q;
        if ins.Isa.dst >= 0 then begin
          s.ren_slot.(ins.Isa.dst) <- slot;
          s.ren_seq.(ins.Isa.dst) <- s.seq.(slot)
        end;
        s.iq_count <- s.iq_count + 1;
        if Isa.is_mem ins then s.lsq_count <- s.lsq_count + 1;
        (match ins.Isa.op with
        | Isa.Branch ->
            s.branches <- s.branches + 1;
            if not (Bpred.is_perfect s.bp) then begin
              let predicted = Bpred.predict s.bp ~pc:ins.Isa.pc in
              Bpred.update s.bp ~pc:ins.Isa.pc ~taken:ins.Isa.taken;
              if predicted <> ins.Isa.taken then begin
                s.mispredicts <- s.mispredicts + 1;
                s.pending_redirect <- slot;
                s.pending_redirect_seq <- s.seq.(slot);
                s.fetch_resume_at <- max_int;
                match s.telemetry with
                | None -> ()
                | Some sink ->
                    Tca_telemetry.Sink.instant sink ~cat:"branch"
                      ~args:[ ("pc", Tca_util.Json.Int ins.Isa.pc) ]
                      ~ts:(float_of_int s.cycle) "flush.mispredict"
              end
            end
        | Isa.Accel a ->
            let u = a.Isa.unit_id in
            s.accel_invocations <- s.accel_invocations + 1;
            s.u_invocations.(u) <- s.u_invocations.(u) + 1;
            s.occupancy_at_accel_sum <- s.occupancy_at_accel_sum + s.count - 1;
            if
              not (Config.unit_allow_trailing s.cfg s.cfg.Config.tca_units.(u))
            then begin
              s.serialize_slot <- slot;
              s.serialize_unit <- u
            end;
            (* Config bookkeeping: enqueue the descriptor (serial
               engine, one descriptor per [config_latency] cycles) or
               mark the one-time programming as paid. [cfg_ready] is
               cleared first so a reused ROB slot cannot leak a stale
               descriptor deadline. *)
            s.cfg_ready.(slot) <- 0;
            (let unit = s.cfg.Config.tca_units.(u) in
             if unit.Tca_unit.config_latency > 0 then
               match unit.Tca_unit.config_mode with
               | Tca_unit.Queued ->
                   let start = max s.cycle s.u_desc_free_at.(u) in
                   let done_at = start + unit.Tca_unit.config_latency in
                   s.u_desc_free_at.(u) <- done_at;
                   s.cfg_ready.(slot) <- done_at
               | Tca_unit.Preprogrammed -> s.u_preprog_done.(u) <- true
               | Tca_unit.Sync -> ());
            (match s.telemetry with
            | None -> ()
            | Some sink ->
                Tca_telemetry.Sink.instant sink ~cat:"accel"
                  ~args:
                    (("rob_occupancy", Tca_util.Json.Int (s.count - 1))
                    :: (if Array.length s.cfg.Config.tca_units > 1 then
                          [ ("unit", Tca_util.Json.Int u) ]
                        else []))
                  ~ts:(float_of_int s.cycle) "accel.dispatch")
        | _ -> ());
        s.next_fetch <- s.next_fetch + 1;
        incr dispatched
        end
      end
    end
  done;
  (* Attribute the cycle to a stall reason only when nothing at all was
     dispatched: that is the "zero useful dispatches" notion the model
     reasons about. *)
  if !dispatched = 0 then begin
    match !stall with
    | Drained -> s.stall_drained <- s.stall_drained + 1
    | Redirect -> s.stall_redirect <- s.stall_redirect + 1
    | Serialize ->
        s.stall_serialize <- s.stall_serialize + 1;
        (* [serialize_unit] was set with [serialize_slot] and only read
           while that slot is still in flight, so it is never stale. *)
        s.u_serialize.(s.serialize_unit) <- s.u_serialize.(s.serialize_unit) + 1
    | Rob -> s.stall_rob <- s.stall_rob + 1
    | Iq -> s.stall_iq <- s.stall_iq + 1
    | Lsq -> s.stall_lsq <- s.stall_lsq + 1
    | Config_write -> s.stall_config <- s.stall_config + 1
    | Config_queue -> s.stall_config_queue <- s.stall_config_queue + 1
    | No_stall -> ()
  end;
  !dispatched

let executing_occupancy s =
  let n = ref 0 in
  for k = 0 to s.count - 1 do
    let slot = (s.head + k) mod s.rob in
    if s.st.(slot) = st_executing then incr n
  done;
  !n

let stats_of s =
  {
    Sim_stats.cycles = s.cycle;
    committed = s.committed;
    ipc =
      (if s.cycle = 0 then 0.0
       else float_of_int s.committed /. float_of_int s.cycle);
    branches = s.branches;
    mispredicts = s.mispredicts;
    l1 = Mem_hier.l1_stats s.hier;
    l2 = Mem_hier.l2_stats s.hier;
    accel_invocations = s.accel_invocations;
    accel_busy_cycles = s.accel_busy;
    accel_wait_for_head_cycles = s.accel_head_wait;
    avg_rob_occupancy =
      (if s.cycle = 0 then 0.0
       else float_of_int s.occupancy_sum /. float_of_int s.cycle);
    avg_rob_at_accel_dispatch =
      (if s.accel_invocations = 0 then 0.0
       else
         float_of_int s.occupancy_at_accel_sum
         /. float_of_int s.accel_invocations);
    dtlb =
      Option.map
        (fun tlb ->
          { Mem_hier.hits = Tlb.hits tlb; misses = Tlb.misses tlb })
        s.dtlb;
    stalls =
      {
        Sim_stats.rob_full = s.stall_rob;
        iq_full = s.stall_iq;
        lsq_full = s.stall_lsq;
        serialize = s.stall_serialize;
        redirect = s.stall_redirect;
        drained = s.stall_drained;
      };
    config_stall_cycles = s.stall_config;
    config_queue_stall_cycles = s.stall_config_queue;
    per_unit =
      (* Single-unit runs keep the breakdown empty: the aggregate accel
         counters already are that unit's slice, and the golden JSON
         bytes must not change. *)
      (let nu = Array.length s.cfg.Config.tca_units in
       if nu <= 1 then []
       else
         List.init nu (fun i ->
             {
               Sim_stats.unit_id = i;
               invocations = s.u_invocations.(i);
               busy_cycles = s.u_busy.(i);
               wait_for_head_cycles = s.u_head_wait.(i);
               serialize_stall_cycles = s.u_serialize.(i);
             }));
  }


(* Per-interval telemetry: a snapshot of the cumulative counters at the
   last flush, so each flush emits exact deltas. Because the final
   (possibly partial) interval is flushed when the run ends, the deltas
   of every series sum to the corresponding [Sim_stats] total by
   construction. *)
type interval_snap = {
  mutable last_cycle : int;  (* cycle of the previous flush *)
  mutable s_rob : int;
  mutable s_iq : int;
  mutable s_lsq : int;
  mutable s_serialize : int;
  mutable s_redirect : int;
  mutable s_drained : int;
  mutable s_committed : int;
  mutable s_occupancy_sum : int;
  mutable acc_dispatched : int;  (* accumulated since the last flush *)
  mutable acc_issued : int;
}

let flush_interval s sink snap ~now =
  let len = now - snap.last_cycle in
  if len > 0 then begin
    let ts = float_of_int now in
    let f = float_of_int in
    Tca_telemetry.Sink.counter sink ~cat:"sim" ~ts "sim.stalls"
      [
        ("rob", f (s.stall_rob - snap.s_rob));
        ("iq", f (s.stall_iq - snap.s_iq));
        ("lsq", f (s.stall_lsq - snap.s_lsq));
        ("serialize", f (s.stall_serialize - snap.s_serialize));
        ("redirect", f (s.stall_redirect - snap.s_redirect));
        ("drained", f (s.stall_drained - snap.s_drained));
      ];
    Tca_telemetry.Sink.counter sink ~cat:"sim" ~ts "sim.pipeline"
      [
        ("committed", f (s.committed - snap.s_committed));
        ("dispatched", f snap.acc_dispatched);
        ("issued", f snap.acc_issued);
      ];
    Tca_telemetry.Sink.counter sink ~cat:"sim" ~ts "sim.rob"
      [
        ("occupancy", f s.count);
        ( "avg",
          float_of_int (s.occupancy_sum - snap.s_occupancy_sum)
          /. float_of_int len );
      ];
    snap.last_cycle <- now;
    snap.s_rob <- s.stall_rob;
    snap.s_iq <- s.stall_iq;
    snap.s_lsq <- s.stall_lsq;
    snap.s_serialize <- s.stall_serialize;
    snap.s_redirect <- s.stall_redirect;
    snap.s_drained <- s.stall_drained;
    snap.s_committed <- s.committed;
    snap.s_occupancy_sum <- s.occupancy_sum;
    snap.acc_dispatched <- 0;
    snap.acc_issued <- 0
  end

let finish_telemetry s sink snap outcome_stats =
  flush_interval s sink snap ~now:s.cycle;
  Tca_telemetry.Sink.span sink ~cat:"sim" ~ts:0.0 ~dur:(float_of_int s.cycle)
    ~args:
      [
        ("committed", Tca_util.Json.Int s.committed);
        ("ipc", Tca_util.Json.Float outcome_stats.Sim_stats.ipc);
        ("accel_invocations", Tca_util.Json.Int s.accel_invocations);
      ]
    "sim.run";
  match Tca_telemetry.Sink.metrics sink with
  | None -> ()
  | Some reg ->
      let add name v =
        match Tca_telemetry.Metrics.counter reg name with
        | Ok c -> Tca_telemetry.Metrics.Counter.add c v
        | Error _ -> ()
      in
      add "sim.runs" 1;
      add "sim.cycles" s.cycle;
      add "sim.committed" s.committed;
      add "sim.accel_invocations" s.accel_invocations

(* A trace invoking a unit id outside [cfg.tca_units] would index the
   per-unit arrays out of bounds; reject the pairing up front (the same
   check, and the same diagnostic, as the optimized pipeline's). *)
let check_trace_units cfg trace =
  let nu = Array.length cfg.Config.tca_units in
  let bad = ref None in
  for i = Trace.length trace - 1 downto 0 do
    match (Trace.get trace i).Isa.op with
    | Isa.Accel a when a.Isa.unit_id >= nu -> bad := Some (i, a.Isa.unit_id)
    | _ -> ()
  done;
  match !bad with
  | None -> Ok ()
  | Some (i, u) ->
      Error
        (Tca_util.Diag.Invalid
           {
             field = "Trace";
             message =
               Printf.sprintf
                 "instruction %d invokes TCA unit %d but Config.tca_units \
                  defines %d unit(s)"
                 i u nu;
           })

let run ?probe ?telemetry cfg trace =
  match
    match Config.validate cfg with
    | Result.Error _ as e -> e
    | Ok () -> check_trace_units cfg trace
  with
  | Result.Error d -> Result.Error d
  | Ok () ->
      let s = create ?telemetry cfg trace in
      let snap =
        {
          last_cycle = 0;
          s_rob = 0;
          s_iq = 0;
          s_lsq = 0;
          s_serialize = 0;
          s_redirect = 0;
          s_drained = 0;
          s_committed = 0;
          s_occupancy_sum = 0;
          acc_dispatched = 0;
          acc_issued = 0;
        }
      in
      let cap =
        match cfg.Config.max_cycles with
        | Some c -> c
        | None -> Pipeline.default_cycle_budget trace
      in
      let watchdog = ref None in
      while
        !watchdog = None && (s.next_fetch < Trace.length trace || s.count > 0)
      do
        if s.cycle > cap then
          (* The watchdog snapshot and the stats snapshot are taken at the
             same instant, so [diag.committed = stats.committed] holds by
             construction. *)
          watchdog :=
            Some
              (Tca_util.Diag.Watchdog
                 {
                   cycles = s.cycle;
                   committed = s.committed;
                   total = Trace.length trace;
                 })
        else begin
          complete_stage s;
          commit_stage s;
          let issued = issue_stage s in
          let dispatched = dispatch_stage s in
          s.occupancy_sum <- s.occupancy_sum + s.count;
          (match probe with
          | Some p ->
              p.Pipeline.on_cycle ~cycle:s.cycle ~dispatched ~issued
                ~executing:(executing_occupancy s) ~rob_occupancy:s.count
          | None -> ());
          s.cycle <- s.cycle + 1;
          match s.telemetry with
          | None -> ()
          | Some sink ->
              snap.acc_dispatched <- snap.acc_dispatched + dispatched;
              snap.acc_issued <- snap.acc_issued + issued;
              if s.cycle mod Tca_telemetry.Sink.interval sink = 0 then
                flush_interval s sink snap ~now:s.cycle
        end
      done;
      let outcome =
        match !watchdog with
        | Some diag -> Pipeline.Partial { stats = stats_of s; diag }
        | None -> Pipeline.Complete (stats_of s)
      in
      (match s.telemetry with
      | None -> ()
      | Some sink ->
          (match !watchdog with
          | Some _ ->
              Tca_telemetry.Sink.instant sink ~cat:"sim"
                ~ts:(float_of_int s.cycle) "sim.watchdog"
          | None -> ());
          finish_telemetry s sink snap (Pipeline.stats_of_outcome outcome));
      Ok outcome

let run_exn ?probe ?telemetry cfg trace =
  match run ?probe ?telemetry cfg trace with
  | Ok (Pipeline.Complete stats) -> stats
  | Ok (Pipeline.Partial { diag; _ }) | Result.Error diag ->
      raise (Tca_util.Diag.Error diag)
