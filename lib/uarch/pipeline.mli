(** Cycle-level out-of-order pipeline: dispatch, OoO issue, execute,
    in-order commit, with TCA coupling semantics.

    Mechanisms (paper Section IV):
    - an [Accel] instruction occupies one ROB entry and commits in order;
    - with [allow_leading = false] it is non-speculative: it may begin
      execution only once it reaches the ROB head (window drain);
    - with [allow_trailing = false] it serialises the pipeline: no younger
      instruction dispatches until it commits;
    - its memory requests arbitrate for the core's memory ports with
      age-order priority, at most one 64 B line per request.

    Trace-driven approximation: mispredicted branches stall the front end
    from their dispatch until resolution plus the redirect penalty, and
    wrong-path instructions are not executed; consequently speculative
    TCAs are never actually squashed (the paper's modes differ in timing,
    which is what is under study, not recovery cost). *)

type probe = {
  on_cycle :
    cycle:int -> dispatched:int -> issued:int -> executing:int ->
    rob_occupancy:int -> unit;
}

type outcome =
  | Complete of Sim_stats.t  (** the whole trace committed *)
  | Partial of { stats : Sim_stats.t; diag : Tca_util.Diag.t }
      (** the cycle watchdog expired first: [stats] is the snapshot at
          expiry and [diag] is the matching {!Tca_util.Diag.Watchdog}
          diagnostic ([diag.committed = stats.committed] always) *)

val stats_of_outcome : outcome -> Sim_stats.t

val default_cycle_budget : Trace.t -> int
(** The watchdog budget used when [Config.max_cycles] is [None]:
    [100_000 + 500 * length], generous for any real trace. *)

val run :
  ?probe:probe ->
  ?telemetry:Tca_telemetry.Sink.t ->
  Config.t ->
  Trace.t ->
  (outcome, Tca_util.Diag.t) result
(** Simulate the trace. [Error] only for an invalid configuration (see
    {!Config.validate}); a simulation that exceeds its cycle budget
    ([Config.max_cycles] or {!default_cycle_budget}) is NOT an error but a
    [Partial] outcome carrying the statistics accumulated so far, so
    sweeps can keep the data and record the diagnostic.

    [?telemetry] attaches an event sink; the run then emits, on the
    sink's sampling interval, [sim.stalls] / [sim.pipeline] / [sim.rob]
    counter deltas (the final partial interval included, so each series
    sums exactly to its {!Sim_stats} total), an [accel.invoke] span per
    accelerator invocation, [accel.dispatch] / [flush.mispredict]
    instants and a whole-run [sim.run] span. Instrumentation is
    observation-only: results are bit-identical with and without a
    sink. *)

val run_exn :
  ?probe:probe -> ?telemetry:Tca_telemetry.Sink.t -> Config.t -> Trace.t ->
  Sim_stats.t
(** [Complete] stats or raises {!Tca_util.Diag.Error} — on an invalid
    configuration and on watchdog expiry alike (the pre-typed-error
    behaviour of the deadlock guard). *)
