(** Core simulator configuration, including the TCA coupling mode under
    test.

    The coupling record carries the two hardware decisions of the paper:
    [allow_leading] (may the TCA execute speculatively, before it reaches
    the ROB head?) and [allow_trailing] (may younger instructions dispatch
    while the TCA is in flight?). They correspond directly to gem5's
    non-speculative and serialize-after instruction flags. *)

type coupling = { allow_leading : bool; allow_trailing : bool }

val coupling_nl_nt : coupling
val coupling_l_nt : coupling
val coupling_nl_t : coupling
val coupling_l_t : coupling
val all_couplings : coupling list
(** In the paper's order: NL_NT, L_NT, NL_T, L_T. *)

val coupling_name : coupling -> string

type tca_occupancy =
  | Pipelined
      (** the accelerator accepts a new invocation every cycle (its
          datapath is fully pipelined); concurrent invocations overlap *)
  | Exclusive
      (** one invocation at a time: the next TCA instruction cannot begin
          until the previous one completes — the single-instance,
          unpipelined design point *)

type latencies = {
  int_alu : int;
  int_mult : int;
  fp_alu : int;
  fp_mult : int;
}

type t = {
  dispatch_width : int;  (** front-end μops per cycle (fetch = dispatch) *)
  issue_width : int;  (** OoO select width *)
  commit_width : int;
  rob_size : int;
  iq_size : int;
  lsq_size : int;  (** combined load/store queue entries *)
  int_alu_units : int;
  int_mult_units : int;
  fp_units : int;
  mem_ports : int;
  frontend_depth : int;  (** mispredict redirect penalty, cycles *)
  commit_depth : int;  (** completion-to-commit latency, cycles *)
  latencies : latencies;
  bpred : Bpred.kind;
  mem : Mem_hier.config;
  coupling : coupling;
  tca_occupancy : tca_occupancy;
  tca_units : Tca_unit.t array;
      (** the accelerator units, indexed by {!Isa.accel.unit_id} (a
          unit's [id] must equal its position). Defaults to a single
          {!Tca_unit.default} unit 0, which inherits [coupling] and
          [tca_occupancy] — the classic single-TCA machine. *)
  miss_bandwidth : int option;
      (** max new L1 misses injected per cycle (MSHR issue limit);
          [None] = unlimited *)
  dtlb : Tlb.config option;
      (** data TLB on the load path; [None] = perfect translation *)
  tca_speculate_fraction : float option;
      (** partial speculation (paper Section VIII): when [Some p], each
          TCA invocation is independently allowed to execute
          speculatively with probability [p] (deterministic per dynamic
          instance) — e.g. only past high-confidence branches —
          overriding the coupling's leading flag. [None] = the coupling
          decides. *)
  max_cycles : int option;
      (** safety cap; [None] derives a generous default from trace size *)
}

val default_latencies : latencies
(** 1 / 3 / 3 / 4 cycles. *)

val default_mem : Mem_hier.config
(** 32 kB 8-way L1 (2-cycle), 1 MB 16-way L2 (12-cycle), 100-cycle
    memory. *)

val hp : ?coupling:coupling -> unit -> t
(** High-performance core: 4-wide, 256-entry ROB, deep pipeline —
    matching the model's [Presets.hp_core] structural parameters. *)

val lp : ?coupling:coupling -> unit -> t
(** Low-performance core: 2-wide, 64-entry ROB, shallow pipeline. *)

val a72 : ?coupling:coupling -> unit -> t
(** ARM A72-like 3-wide core, 128-entry ROB. *)

val with_coupling : t -> coupling -> t

val with_tca_units : t -> Tca_unit.t array -> t

val unit_exclusive : t -> Tca_unit.t -> bool
(** Effective occupancy of one unit: its override, else the core's
    [tca_occupancy]. *)

val unit_allow_leading : t -> Tca_unit.t -> bool
val unit_allow_trailing : t -> Tca_unit.t -> bool
(** Effective coupling flags of one unit: its overrides, else the
    core's [coupling]. *)

val validate : t -> (unit, Tca_util.Diag.t) result
(** Structural sanity: all widths, sizes and latencies within their
    domains ([Domain] diagnostics name the offending [Config.] field),
    a non-empty [tca_units] table whose unit ids equal their positions
    (each unit additionally passing {!Tca_unit.validate}),
    [tca_speculate_fraction] finite and inside [\[0, 1\]], and
    [max_cycles], when given, at least 1. *)

val validate_exn : t -> unit
(** Raises {!Tca_util.Diag.Error}. *)
