let num_arch_regs = 64
let no_reg = -1

type accel = {
  unit_id : int;
  compute_latency : int;
  reads : int array;
  writes : int array;
}

type op =
  | Int_alu
  | Int_mult
  | Fp_alu
  | Fp_mult
  | Load
  | Store
  | Branch
  | Accel of accel

type instr = {
  pc : int;
  op : op;
  src1 : int;
  src2 : int;
  dst : int;
  addr : int;
  taken : bool;
}

let check_reg name r =
  if r <> no_reg && (r < 0 || r >= num_arch_regs) then
    invalid_arg (Printf.sprintf "Isa.%s: register %d out of range" name r)

let check_addr name a =
  if a < 0 then invalid_arg (Printf.sprintf "Isa.%s: negative address" name)

let mk name ?(pc = 0) ?(src1 = no_reg) ?(src2 = no_reg) ?(dst = no_reg)
    ?(addr = 0) ?(taken = false) op =
  check_reg name src1;
  check_reg name src2;
  check_reg name dst;
  check_addr name addr;
  { pc; op; src1; src2; dst; addr; taken }

let int_alu ?pc ?src1 ?src2 ~dst () = mk "int_alu" ?pc ?src1 ?src2 ~dst Int_alu
let int_mult ?pc ?src1 ?src2 ~dst () = mk "int_mult" ?pc ?src1 ?src2 ~dst Int_mult
let fp_alu ?pc ?src1 ?src2 ~dst () = mk "fp_alu" ?pc ?src1 ?src2 ~dst Fp_alu
let fp_mult ?pc ?src1 ?src2 ~dst () = mk "fp_mult" ?pc ?src1 ?src2 ~dst Fp_mult

let load ?pc ?base ~dst ~addr () = mk "load" ?pc ?src1:base ~dst ~addr Load
let store ?pc ?base ?src ~addr () = mk "store" ?pc ?src1:base ?src2:src ~addr Store
let branch ?pc ?src1 ~taken () = mk "branch" ?pc ?src1 ~taken Branch

let accel ?pc ?src1 ?dst ?(unit_id = 0) ~compute_latency ~reads ~writes () =
  if unit_id < 0 then invalid_arg "Isa.accel: negative unit id";
  if compute_latency < 0 then invalid_arg "Isa.accel: negative compute latency";
  Array.iter (check_addr "accel") reads;
  Array.iter (check_addr "accel") writes;
  mk "accel" ?pc ?src1 ?dst (Accel { unit_id; compute_latency; reads; writes })

let is_mem i = match i.op with Load | Store -> true | _ -> false

let op_name = function
  | Int_alu -> "int_alu"
  | Int_mult -> "int_mult"
  | Fp_alu -> "fp_alu"
  | Fp_mult -> "fp_mult"
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"
  | Accel _ -> "accel"

let pp fmt i =
  Format.fprintf fmt "%08x: %s d=%d s=(%d,%d) addr=%d%s" i.pc (op_name i.op)
    i.dst i.src1 i.src2 i.addr
    (match i.op with
    | Branch -> if i.taken then " taken" else " not-taken"
    | Accel a ->
        Printf.sprintf "%s lat=%d r=%d w=%d"
          (if a.unit_id = 0 then "" else Printf.sprintf " u=%d" a.unit_id)
          a.compute_latency (Array.length a.reads) (Array.length a.writes)
    | _ -> "")
