type coupling = { allow_leading : bool; allow_trailing : bool }

let coupling_nl_nt = { allow_leading = false; allow_trailing = false }
let coupling_l_nt = { allow_leading = true; allow_trailing = false }
let coupling_nl_t = { allow_leading = false; allow_trailing = true }
let coupling_l_t = { allow_leading = true; allow_trailing = true }
let all_couplings = [ coupling_nl_nt; coupling_l_nt; coupling_nl_t; coupling_l_t ]

let coupling_name c =
  match (c.allow_leading, c.allow_trailing) with
  | false, false -> "NL_NT"
  | true, false -> "L_NT"
  | false, true -> "NL_T"
  | true, true -> "L_T"

type tca_occupancy = Pipelined | Exclusive

type latencies = {
  int_alu : int;
  int_mult : int;
  fp_alu : int;
  fp_mult : int;
}

type t = {
  dispatch_width : int;
  issue_width : int;
  commit_width : int;
  rob_size : int;
  iq_size : int;
  lsq_size : int;
  int_alu_units : int;
  int_mult_units : int;
  fp_units : int;
  mem_ports : int;
  frontend_depth : int;
  commit_depth : int;
  latencies : latencies;
  bpred : Bpred.kind;
  mem : Mem_hier.config;
  coupling : coupling;
  tca_occupancy : tca_occupancy;
  tca_units : Tca_unit.t array;
  miss_bandwidth : int option;
  dtlb : Tlb.config option;
  tca_speculate_fraction : float option;
  max_cycles : int option;
}

let default_latencies = { int_alu = 1; int_mult = 3; fp_alu = 3; fp_mult = 4 }

let default_mem =
  Mem_hier.config
    ~l1:(Cache.config ~size_bytes:(32 * 1024) ~assoc:8 ~hit_latency:2 ())
    ~l2:(Cache.config ~size_bytes:(1024 * 1024) ~assoc:16 ~hit_latency:12 ())
    ~mem_latency:100 ()

let hp ?(coupling = coupling_l_t) () =
  {
    dispatch_width = 4;
    issue_width = 4;
    commit_width = 4;
    rob_size = 256;
    iq_size = 256;
    lsq_size = 192;
    int_alu_units = 4;
    int_mult_units = 2;
    fp_units = 2;
    mem_ports = 2;
    frontend_depth = 12;
    commit_depth = 8;
    latencies = default_latencies;
    bpred = Bpred.Tournament 14;
    mem = default_mem;
    coupling;
    tca_occupancy = Pipelined;
    tca_units = [| Tca_unit.default 0 |];
    miss_bandwidth = None;
    dtlb = None;
    tca_speculate_fraction = None;
    max_cycles = None;
  }

let lp ?(coupling = coupling_l_t) () =
  {
    dispatch_width = 2;
    issue_width = 2;
    commit_width = 2;
    rob_size = 64;
    iq_size = 64;
    lsq_size = 48;
    int_alu_units = 2;
    int_mult_units = 1;
    fp_units = 1;
    mem_ports = 1;
    frontend_depth = 6;
    commit_depth = 4;
    latencies = default_latencies;
    bpred = Bpred.Bimodal 12;
    mem = default_mem;
    coupling;
    tca_occupancy = Pipelined;
    tca_units = [| Tca_unit.default 0 |];
    miss_bandwidth = None;
    dtlb = None;
    tca_speculate_fraction = None;
    max_cycles = None;
  }

let a72 ?(coupling = coupling_l_t) () =
  {
    dispatch_width = 3;
    issue_width = 3;
    commit_width = 3;
    rob_size = 128;
    iq_size = 128;
    lsq_size = 96;
    int_alu_units = 2;
    int_mult_units = 1;
    fp_units = 2;
    mem_ports = 2;
    frontend_depth = 10;
    commit_depth = 6;
    latencies = default_latencies;
    bpred = Bpred.Tournament 13;
    mem = default_mem;
    coupling;
    tca_occupancy = Pipelined;
    tca_units = [| Tca_unit.default 0 |];
    miss_bandwidth = None;
    dtlb = None;
    tca_speculate_fraction = None;
    max_cycles = None;
  }

let with_coupling t coupling = { t with coupling }

let with_tca_units t tca_units = { t with tca_units }

(* Per-unit effective knobs: a unit override wins, otherwise the core's
   per-coupling / per-occupancy setting applies. The pipelines resolve
   these once at state creation, outside the hot loop. *)
let unit_exclusive t (u : Tca_unit.t) =
  match u.Tca_unit.occupancy with
  | Some Tca_unit.Exclusive -> true
  | Some Tca_unit.Pipelined -> false
  | None -> t.tca_occupancy = Exclusive

let unit_allow_leading t (u : Tca_unit.t) =
  Option.value ~default:t.coupling.allow_leading u.Tca_unit.allow_leading

let unit_allow_trailing t (u : Tca_unit.t) =
  Option.value ~default:t.coupling.allow_trailing u.Tca_unit.allow_trailing

let validate t =
  let open Tca_util.Diag.Syntax in
  let bound name v min =
    let+ _ = Tca_util.Diag.at_least ~field:("Config." ^ name) ~min v in
    ()
  in
  let* () = bound "dispatch_width" t.dispatch_width 1 in
  let* () = bound "issue_width" t.issue_width 1 in
  let* () = bound "commit_width" t.commit_width 1 in
  let* () = bound "rob_size" t.rob_size 2 in
  let* () = bound "iq_size" t.iq_size 1 in
  let* () = bound "lsq_size" t.lsq_size 1 in
  let* () = bound "int_alu_units" t.int_alu_units 1 in
  let* () = bound "int_mult_units" t.int_mult_units 1 in
  let* () = bound "fp_units" t.fp_units 1 in
  let* () = bound "mem_ports" t.mem_ports 1 in
  let* () = bound "frontend_depth" t.frontend_depth 1 in
  let* () = bound "commit_depth" t.commit_depth 0 in
  let* () = bound "latencies.int_alu" t.latencies.int_alu 1 in
  let* () = bound "latencies.int_mult" t.latencies.int_mult 1 in
  let* () = bound "latencies.fp_alu" t.latencies.fp_alu 1 in
  let* () = bound "latencies.fp_mult" t.latencies.fp_mult 1 in
  let* () =
    if Array.length t.tca_units = 0 then
      Error
        (Tca_util.Diag.Invalid
           {
             field = "Config.tca_units";
             message = "at least one TCA unit is required";
           })
    else begin
      let bad = ref None in
      Array.iteri
        (fun i (u : Tca_unit.t) ->
          if !bad = None then
            if u.Tca_unit.id <> i then
              bad :=
                Some
                  (Tca_util.Diag.Invalid
                     {
                       field = "Config.tca_units";
                       message =
                         Printf.sprintf
                           "unit at position %d has id %d (ids must equal \
                            their table position, the lookup key of \
                            Isa.accel.unit_id)"
                           i u.Tca_unit.id;
                     })
            else
              match Tca_unit.validate u with
              | Ok _ -> ()
              | Error d -> bad := Some d)
        t.tca_units;
      match !bad with None -> Ok () | Some d -> Error d
    end
  in
  let* () =
    match t.tca_speculate_fraction with
    | None -> Ok ()
    | Some p ->
        let+ _ =
          Tca_util.Diag.in_range ~field:"Config.tca_speculate_fraction"
            ~lo:0.0 ~hi:1.0 p
        in
        ()
  in
  match t.max_cycles with
  | None -> Ok ()
  | Some c -> bound "max_cycles" c 1

let validate_exn t = Tca_util.Diag.ok_exn (validate t)
