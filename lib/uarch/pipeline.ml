(* Optimized hot path. Semantics are pinned, bit for bit, to
   [Pipeline_reference] (the original implementation): the golden tests,
   the fuzz harness and [bench simulator] all diff the two. The
   optimizations are purely representational:

   - the trace is pre-decoded once into [Trace.Decoded] flat arrays
     (shared and memoized per trace), so the per-cycle loops index int
     arrays instead of chasing [Isa.instr] records and matching variant
     constructors;
   - pending accelerator writes live in a parallel-array stack instead
     of a per-cycle [List.partition] (drained newest-first, exactly the
     reference's list order, since store order shapes cache LRU state);
   - store-to-load forwarding scans an explicit in-flight store queue
     (the stores between dispatch and commit, in program order) instead
     of walking every older ROB slot;
   - ring-buffer indices wrap with a compare instead of [mod], stage
     loops are tail-recursive over int accumulators instead of
     closure/ref based, and per-opcode latencies come from a table built
     at [create];
   - the run loop is split: the [?telemetry:None] + [?probe:None] path
     does no interval bookkeeping at all, the instrumented path is the
     reference loop verbatim.

   In steady state the cycle loop allocates nothing: everything it
   touches is a preallocated int array or a mutable int field. *)

module D = Trace.Decoded

type probe = {
  on_cycle :
    cycle:int -> dispatched:int -> issued:int -> executing:int ->
    rob_occupancy:int -> unit;
}

(* ROB entry states. *)
let st_empty = 0
let st_waiting = 1
let st_executing = 2
let st_done = 3

(* Stall reasons for the first unfilled dispatch slot of a cycle
   (scratch encoding; see [dispatch_stage]). *)
let stall_none = 0
let stall_drained = 1
let stall_redirect = 2
let stall_serialize = 3
let stall_rob = 4
let stall_iq = 5
let stall_lsq = 6
let stall_config = 7
let stall_config_queue = 8

type state = {
  cfg : Config.t;
  telemetry : Tca_telemetry.Sink.t option;
      (* Observation only: instrumentation reads simulator state, never
         writes it, so an attached sink cannot perturb results (asserted
         by the fuzz harness). *)
  trace : Trace.t;
  d : D.t;  (* pre-decoded struct-of-arrays view of [trace] *)
  tlen : int;
  hier : Mem_hier.t;
  bp : Bpred.t;
  bp_perfect : bool;
  ports : Ports.t;
  miss_ports : Ports.t option;
  dtlb : Tlb.t option;
  (* Per-TCA-unit state, indexed by [Isa.accel.unit_id] (= the unit's
     position in [cfg.tca_units]). Effective flags are resolved once at
     [create] — unit override, else the core-wide knob — so the hot loop
     only ever indexes flat arrays. With the default single unit every
     array is the old scalar and the schedules are bit-identical. *)
  n_units : int;
  u_free_at : int array;  (* per-unit [accel_free_at] *)
  u_exclusive : bool array;
  u_allow_leading : bool array;
  u_allow_trailing : bool array;
  u_extra_lat : int array;  (* Tca_unit.extra_invocation_latency *)
  u_ports : Ports.t option array;
      (* [Some] = the unit's private writeback-port bank
         ([Tca_unit.Private]); [None] = contend on the shared ports *)
  u_invocations : int array;
  u_busy : int array;
  u_head_wait : int array;
  u_serialize : int array;
  mutable serialize_unit : int;  (* unit owning [serialize_slot] *)
  (* Configuration-wall mechanics (Tca_unit.config_mode, the simulator
     counterpart of Equations terms (T1)-(T3)). Every path below is
     gated on [u_cfg_lat > 0], so the default zero-latency units leave
     schedules bit-identical to the pre-t_config pipeline. *)
  u_cfg_mode : Tca_unit.config_mode array;
  u_cfg_lat : int array;  (* Tca_unit.config_latency *)
  u_cfg_depth : int array;  (* Tca_unit.config_queue_depth *)
  u_desc_free_at : int array;
      (* cycle the unit's serial descriptor engine finishes its backlog;
         with backlog R = free_at - now > 0, outstanding descriptors are
         exactly ceil(R / c) (completions spaced c apart), so queue-full
         is the integer test [R > (depth - 1) * c] *)
  u_preprog_done : bool array;  (* Preprogrammed one-time cost paid *)
  cfg_ready : int array;
      (* per-ROB-slot: cycle the invocation's descriptor is processed
         and execution may start (0 for non-queued invocations) *)
  mutable cfg_paid_ti : int;
      (* trace index whose synchronous CSR writes are in flight, -1 none *)
  mutable cfg_ready_at : int;  (* cycle those CSR writes complete *)
  rob : int;  (* capacity, cached *)
  (* Config scalars cached flat (one load instead of two). *)
  issue_width : int;
  dispatch_width : int;
  commit_width : int;
  commit_depth : int;
  frontend_depth : int;
  iq_size : int;
  lsq_size : int;
  int_alu_units : int;
  int_mult_units : int;
  fp_units : int;
  lat : int array;  (* latency per opcode, indexed by [D.op_*] *)
  (* Parallel ROB arrays, indexed by slot. *)
  tr_idx : int array;
  st : int array;
  complete_at : int array;
  seq : int array;
  dep1_slot : int array;
  dep1_seq : int array;
  dep2_slot : int array;
  dep2_seq : int array;
  (* Rename table: architectural register -> youngest producer. *)
  ren_slot : int array;
  ren_seq : int array;
  (* In-flight stores (dispatched, not committed), program order:
     ring of ROB slot indices, scanned for store-to-load forwarding. *)
  stq : int array;
  mutable stq_head : int;
  mutable stq_count : int;
  mutable head : int;
  mutable tail : int;
  mutable count : int;
  mutable executing : int;  (* entries in [st_executing] *)
  mutable next_complete : int;
      (* lower bound on the earliest [complete_at] among executing
         entries ([max_int] when none): the completion scan runs only on
         cycles where something can actually finish *)
  mutable iq_count : int;
  mutable lsq_count : int;
  mutable next_fetch : int;
  mutable next_seq : int;
  mutable fetch_resume_at : int;
  mutable pending_redirect : int;  (* slot of unresolved mispredicted branch, -1 none *)
  mutable pending_redirect_seq : int;
  mutable serialize_slot : int;  (* in-flight NT TCA blocking dispatch, -1 none *)
  (* Pending accelerator writebacks: a stack of (due cycle, span in
     [d.accel_mem]) triples, drained newest-first. *)
  mutable paw_at : int array;
  mutable paw_off : int array;
  mutable paw_len : int array;
  mutable paw_count : int;
  mutable paw_next_due : int;
  mutable stall_reason : int;  (* dispatch_stage scratch *)
  (* Statistics. *)
  mutable cycle : int;
  mutable committed : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable accel_invocations : int;
  mutable accel_busy : int;
  mutable accel_head_wait : int;
  mutable stall_rob : int;
  mutable stall_iq : int;
  mutable stall_lsq : int;
  mutable stall_serialize : int;
  mutable stall_redirect : int;
  mutable stall_drained : int;
  mutable stall_config : int;
  mutable stall_config_queue : int;
  mutable occupancy_sum : int;
  mutable occupancy_at_accel_sum : int;
}

let create ?telemetry cfg trace =
  let r = cfg.Config.rob_size in
  let bp = Bpred.create cfg.Config.bpred in
  let lat = Array.make 8 0 in
  lat.(D.op_int_alu) <- cfg.Config.latencies.Config.int_alu;
  lat.(D.op_int_mult) <- cfg.Config.latencies.Config.int_mult;
  lat.(D.op_fp_alu) <- cfg.Config.latencies.Config.fp_alu;
  lat.(D.op_fp_mult) <- cfg.Config.latencies.Config.fp_mult;
  lat.(D.op_branch) <- cfg.Config.latencies.Config.int_alu;
  let units = cfg.Config.tca_units in
  let nu = Array.length units in
  {
    cfg;
    telemetry;
    trace;
    d = Trace.decoded trace;
    tlen = Trace.length trace;
    hier = Mem_hier.create cfg.Config.mem;
    bp;
    bp_perfect = Bpred.is_perfect bp;
    ports = Ports.create ~width:cfg.Config.mem_ports ~horizon:8192;
    miss_ports =
      Option.map
        (fun width -> Ports.create ~width ~horizon:8192)
        cfg.Config.miss_bandwidth;
    dtlb = Option.map Tlb.create cfg.Config.dtlb;
    n_units = nu;
    u_free_at = Array.make nu 0;
    u_exclusive = Array.map (Config.unit_exclusive cfg) units;
    u_allow_leading = Array.map (Config.unit_allow_leading cfg) units;
    u_allow_trailing = Array.map (Config.unit_allow_trailing cfg) units;
    u_extra_lat =
      Array.map
        (fun (u : Tca_unit.t) -> u.Tca_unit.extra_invocation_latency)
        units;
    u_ports =
      Array.map
        (fun (u : Tca_unit.t) ->
          match u.Tca_unit.commit_port with
          | Tca_unit.Shared -> None
          | Tca_unit.Private ->
              Some (Ports.create ~width:cfg.Config.mem_ports ~horizon:8192))
        units;
    u_invocations = Array.make nu 0;
    u_busy = Array.make nu 0;
    u_head_wait = Array.make nu 0;
    u_serialize = Array.make nu 0;
    serialize_unit = -1;
    u_cfg_mode =
      Array.map (fun (u : Tca_unit.t) -> u.Tca_unit.config_mode) units;
    u_cfg_lat =
      Array.map (fun (u : Tca_unit.t) -> u.Tca_unit.config_latency) units;
    u_cfg_depth =
      Array.map (fun (u : Tca_unit.t) -> u.Tca_unit.config_queue_depth) units;
    u_desc_free_at = Array.make nu 0;
    u_preprog_done = Array.make nu false;
    cfg_ready = Array.make r 0;
    cfg_paid_ti = -1;
    cfg_ready_at = 0;
    rob = r;
    issue_width = cfg.Config.issue_width;
    dispatch_width = cfg.Config.dispatch_width;
    commit_width = cfg.Config.commit_width;
    commit_depth = cfg.Config.commit_depth;
    frontend_depth = cfg.Config.frontend_depth;
    iq_size = cfg.Config.iq_size;
    lsq_size = cfg.Config.lsq_size;
    int_alu_units = cfg.Config.int_alu_units;
    int_mult_units = cfg.Config.int_mult_units;
    fp_units = cfg.Config.fp_units;
    lat;
    tr_idx = Array.make r (-1);
    st = Array.make r st_empty;
    complete_at = Array.make r 0;
    seq = Array.make r (-1);
    dep1_slot = Array.make r (-1);
    dep1_seq = Array.make r (-1);
    dep2_slot = Array.make r (-1);
    dep2_seq = Array.make r (-1);
    ren_slot = Array.make Isa.num_arch_regs (-1);
    ren_seq = Array.make Isa.num_arch_regs (-1);
    stq = Array.make r (-1);
    stq_head = 0;
    stq_count = 0;
    head = 0;
    tail = 0;
    count = 0;
    executing = 0;
    next_complete = max_int;
    iq_count = 0;
    lsq_count = 0;
    next_fetch = 0;
    next_seq = 0;
    fetch_resume_at = 0;
    pending_redirect = -1;
    pending_redirect_seq = -1;
    serialize_slot = -1;
    paw_at = Array.make 8 0;
    paw_off = Array.make 8 0;
    paw_len = Array.make 8 0;
    paw_count = 0;
    paw_next_due = max_int;
    stall_reason = stall_none;
    cycle = 0;
    committed = 0;
    branches = 0;
    mispredicts = 0;
    accel_invocations = 0;
    accel_busy = 0;
    accel_head_wait = 0;
    stall_rob = 0;
    stall_iq = 0;
    stall_lsq = 0;
    stall_serialize = 0;
    stall_redirect = 0;
    stall_drained = 0;
    stall_config = 0;
    stall_config_queue = 0;
    occupancy_sum = 0;
    occupancy_at_accel_sum = 0;
  }

(* [head + k] reduced into [0, rob): both operands are < rob, so one
   conditional subtraction replaces the reference's [mod]. *)
let[@inline] wrap s i = if i >= s.rob then i - s.rob else i

(* A producer is still pending iff its slot holds the same dynamic
   instruction (sequence number matches) and it has not completed. A
   mismatching sequence means the producer committed and its slot was
   reused (or freed): the value is architecturally available. *)
let[@inline] producer_pending s slot seq =
  slot >= 0 && s.st.(slot) <> st_empty && s.seq.(slot) = seq
  && s.st.(slot) <> st_done

let[@inline] deps_ready s slot =
  (not (producer_pending s s.dep1_slot.(slot) s.dep1_seq.(slot)))
  && not (producer_pending s s.dep2_slot.(slot) s.dep2_seq.(slot))

(* Youngest in-flight store older (in program order, i.e. by sequence
   number) than the load, to the same address. Walks the store queue
   newest-first — the same answer as the reference's backwards ROB scan,
   which skips every non-store slot, but in O(in-flight stores).
   Returns:
   [`None] no conflict, access memory;
   [`Forward] matching store completed, forward in 1 cycle;
   [`Blocked] matching store not yet executed, the load must wait. *)
let older_store_match s load_seq addr =
  let rec scan k =
    if k < 0 then `None
    else
      let slot = s.stq.(wrap s (s.stq_head + k)) in
      if s.seq.(slot) >= load_seq then scan (k - 1)
      else if s.d.addr.(s.tr_idx.(slot)) = addr then
        if s.st.(slot) = st_done then `Forward else `Blocked
      else scan (k - 1)
  in
  scan (s.stq_count - 1)

(* Partial speculation: a deterministic per-dynamic-instance coin decides
   whether this TCA invocation may execute speculatively (as a
   confidence-based design would, paper Section VIII). *)
let accel_speculative s slot u =
  match s.cfg.Config.tca_speculate_fraction with
  | None -> s.u_allow_leading.(u)
  | Some p ->
      let h = s.seq.(slot) * 0x9E3779B9 in
      let h = (h lxor (h lsr 16)) land 0xFFFF in
      float_of_int h < p *. 65536.0

(* --- per-cycle stages, called in order: complete, commit, issue,
   dispatch --- *)

(* Retire due accelerator writes into the cache hierarchy. Two passes:
   the stores drain newest-entry-first (the reference's list order —
   store order shapes LRU/dirty state), then the survivors compact in
   place keeping their relative order. *)
let drain_accel_writes s =
  let mem = s.d.accel_mem in
  for i = s.paw_count - 1 downto 0 do
    if s.paw_at.(i) <= s.cycle then begin
      let off = s.paw_off.(i) in
      for k = off to off + s.paw_len.(i) - 1 do
        Mem_hier.store s.hier mem.(k)
      done
    end
  done;
  let j = ref 0 and min_at = ref max_int in
  for i = 0 to s.paw_count - 1 do
    if s.paw_at.(i) > s.cycle then begin
      s.paw_at.(!j) <- s.paw_at.(i);
      s.paw_off.(!j) <- s.paw_off.(i);
      s.paw_len.(!j) <- s.paw_len.(i);
      if s.paw_at.(i) < !min_at then min_at := s.paw_at.(i);
      incr j
    end
  done;
  s.paw_count <- !j;
  s.paw_next_due <- !min_at

let push_accel_write s ~finish ~off ~len =
  if s.paw_count = Array.length s.paw_at then begin
    let grow a = Array.append a (Array.make (Array.length a) 0) in
    s.paw_at <- grow s.paw_at;
    s.paw_off <- grow s.paw_off;
    s.paw_len <- grow s.paw_len
  end;
  s.paw_at.(s.paw_count) <- finish;
  s.paw_off.(s.paw_count) <- off;
  s.paw_len.(s.paw_count) <- len;
  s.paw_count <- s.paw_count + 1;
  if finish < s.paw_next_due then s.paw_next_due <- finish

(* Scans every occupied slot; transitions are order-independent, so the
   [next_complete] gate in [complete_stage] (skip the scan while nothing
   is due) cannot change results, only avoid no-op passes. Recomputes
   the bound from the entries still executing. *)
let rec complete_scan s k min_next =
  if k >= s.count then min_next
  else
    let slot = wrap s (s.head + k) in
    if s.st.(slot) = st_executing then
      if s.complete_at.(slot) <= s.cycle then begin
        s.st.(slot) <- st_done;
        s.executing <- s.executing - 1;
        if s.pending_redirect = slot && s.pending_redirect_seq = s.seq.(slot)
        then begin
          s.fetch_resume_at <- s.cycle + s.frontend_depth;
          s.pending_redirect <- -1;
          s.pending_redirect_seq <- -1
        end;
        complete_scan s (k + 1) min_next
      end
      else
        complete_scan s (k + 1)
          (if s.complete_at.(slot) < min_next then s.complete_at.(slot)
           else min_next)
    else complete_scan s (k + 1) min_next

let complete_stage s =
  if s.paw_count > 0 && s.paw_next_due <= s.cycle then drain_accel_writes s;
  if s.executing > 0 && s.next_complete <= s.cycle then
    s.next_complete <- complete_scan s 0 max_int

let rec commit_loop s n =
  if n < s.commit_width && s.count > 0 then begin
    let slot = s.head in
    if s.st.(slot) = st_done && s.complete_at.(slot) + s.commit_depth <= s.cycle
    then begin
      let ti = s.tr_idx.(slot) in
      let opc = s.d.op.(ti) in
      if opc = D.op_store then begin
        Mem_hier.store s.hier s.d.addr.(ti);
        (* the head store is necessarily the oldest in the queue *)
        s.stq_head <- wrap s (s.stq_head + 1);
        s.stq_count <- s.stq_count - 1
      end;
      if opc = D.op_load || opc = D.op_store then
        s.lsq_count <- s.lsq_count - 1;
      let dst = s.d.dst.(ti) in
      if dst >= 0 && s.ren_slot.(dst) = slot && s.ren_seq.(dst) = s.seq.(slot)
      then begin
        s.ren_slot.(dst) <- -1;
        s.ren_seq.(dst) <- -1
      end;
      if s.serialize_slot = slot then s.serialize_slot <- -1;
      s.st.(slot) <- st_empty;
      s.seq.(slot) <- -1;
      s.head <- wrap s (s.head + 1);
      s.count <- s.count - 1;
      s.committed <- s.committed + 1;
      commit_loop s (n + 1)
    end
  end

let commit_stage s = commit_loop s 0

(* Issue one line read at or after [now]: books a memory port, and when
   the line misses the L1 also books an MSHR-injection slot if miss
   bandwidth is limited. Returns the completion cycle. *)
let memory_read s ~now addr =
  let port_cycle = Ports.reserve s.ports ~now in
  let start =
    match s.miss_ports with
    | Some mp when not (Mem_hier.l1_resident s.hier addr) ->
        max port_cycle (Ports.reserve mp ~now:port_cycle)
    | Some _ | None -> port_cycle
  in
  let translation =
    match s.dtlb with Some tlb -> Tlb.access tlb addr | None -> 0
  in
  start + translation + Mem_hier.load_latency s.hier addr

let rec accel_reads_loop s ~now off k len acc =
  if k >= len then acc
  else
    accel_reads_loop s ~now off (k + 1) len
      (max acc (memory_read s ~now s.d.accel_mem.(off + k)))

let rec accel_writes_loop ports ~now k len acc =
  if k >= len then acc
  else
    let port_cycle = Ports.reserve ports ~now in
    accel_writes_loop ports ~now (k + 1) len (max acc (port_cycle + 1))

let issue_accel s slot ti u =
  let start =
    if s.u_exclusive.(u) then max s.cycle s.u_free_at.(u) else s.cycle
  in
  (* A queued invocation may not start before its descriptor is
     processed ([cfg_ready] is 0 for every other kind of invocation). *)
  let start = if s.cfg_ready.(slot) > start then s.cfg_ready.(slot) else start in
  let reads_len = s.d.reads_len.(ti) in
  let writes_len = s.d.writes_len.(ti) in
  let reads_done =
    accel_reads_loop s ~now:start s.d.reads_off.(ti) 0 reads_len start
  in
  let compute_done = reads_done + s.d.accel_lat.(ti) + s.u_extra_lat.(u) in
  let wports = match s.u_ports.(u) with Some p -> p | None -> s.ports in
  let write_done =
    accel_writes_loop wports ~now:compute_done 0 writes_len compute_done
  in
  let finish = max compute_done write_done in
  if writes_len > 0 then
    push_accel_write s ~finish ~off:s.d.writes_off.(ti) ~len:writes_len;
  s.complete_at.(slot) <- max finish (s.cycle + 1);
  s.u_free_at.(u) <- s.complete_at.(slot);
  s.accel_busy <- s.accel_busy + (s.complete_at.(slot) - s.cycle);
  s.u_busy.(u) <- s.u_busy.(u) + (s.complete_at.(slot) - s.cycle);
  match s.telemetry with
  | None -> ()
  | Some sink ->
      (* Invoke-to-complete span; its duration is exactly this
         invocation's contribution to [accel_busy]. *)
      Tca_telemetry.Sink.span sink ~cat:"accel"
        ~args:
          ([
             ("reads", Tca_util.Json.Int reads_len);
             ("writes", Tca_util.Json.Int writes_len);
             ("compute_latency", Tca_util.Json.Int s.d.accel_lat.(ti));
           ]
          @ if s.n_units > 1 then [ ("unit", Tca_util.Json.Int u) ] else [])
        ~ts:(float_of_int s.cycle)
        ~dur:(float_of_int (s.complete_at.(slot) - s.cycle))
        "accel.invoke"

let[@inline] start_executing s slot complete =
  s.st.(slot) <- st_executing;
  s.executing <- s.executing + 1;
  s.complete_at.(slot) <- complete;
  if complete < s.next_complete then s.next_complete <- complete;
  s.iq_count <- s.iq_count - 1

(* Scan the window oldest-first for up to [issue_width] ready
   instructions, bounded by the per-class unit counts. Tail-recursive
   over int accumulators: no closure, no ref, no allocation. *)
let rec issue_scan s k issued ialu imult fp =
  if issued >= s.issue_width || k >= s.count then issued
  else
    let slot = wrap s (s.head + k) in
    if s.st.(slot) = st_waiting && deps_ready s slot then begin
      let ti = s.tr_idx.(slot) in
      let opc = s.d.op.(ti) in
      if opc = D.op_int_alu || opc = D.op_branch then
        if ialu < s.int_alu_units then begin
          start_executing s slot (s.cycle + s.lat.(opc));
          issue_scan s (k + 1) (issued + 1) (ialu + 1) imult fp
        end
        else issue_scan s (k + 1) issued ialu imult fp
      else if opc = D.op_int_mult then
        if imult < s.int_mult_units then begin
          start_executing s slot (s.cycle + s.lat.(opc));
          issue_scan s (k + 1) (issued + 1) ialu (imult + 1) fp
        end
        else issue_scan s (k + 1) issued ialu imult fp
      else if opc = D.op_fp_alu || opc = D.op_fp_mult then
        if fp < s.fp_units then begin
          start_executing s slot (s.cycle + s.lat.(opc));
          issue_scan s (k + 1) (issued + 1) ialu imult (fp + 1)
        end
        else issue_scan s (k + 1) issued ialu imult fp
      else if opc = D.op_store then begin
        (* Address generation; data drains to cache at commit. *)
        start_executing s slot (s.cycle + 1);
        issue_scan s (k + 1) (issued + 1) ialu imult fp
      end
      else if opc = D.op_load then (
        match older_store_match s s.seq.(slot) s.d.addr.(ti) with
        | `Blocked -> issue_scan s (k + 1) issued ialu imult fp
        | `Forward ->
            start_executing s slot (s.cycle + 1);
            issue_scan s (k + 1) (issued + 1) ialu imult fp
        | `None ->
            start_executing s slot (memory_read s ~now:s.cycle s.d.addr.(ti));
            issue_scan s (k + 1) (issued + 1) ialu imult fp)
      else begin
        (* accel *)
        let u = s.d.accel_unit.(ti) in
        if accel_speculative s slot u || slot = s.head then begin
          issue_accel s slot ti u;
          s.st.(slot) <- st_executing;
          s.executing <- s.executing + 1;
          if s.complete_at.(slot) < s.next_complete then
            s.next_complete <- s.complete_at.(slot);
          s.iq_count <- s.iq_count - 1;
          issue_scan s (k + 1) (issued + 1) ialu imult fp
        end
        else begin
          s.accel_head_wait <- s.accel_head_wait + 1;
          s.u_head_wait.(u) <- s.u_head_wait.(u) + 1;
          issue_scan s (k + 1) issued ialu imult fp
        end
      end
    end
    else issue_scan s (k + 1) issued ialu imult fp

let issue_stage s = issue_scan s 0 0 0 0 0

let rec dispatch_loop s dispatched =
  if dispatched >= s.dispatch_width then dispatched
  else if s.next_fetch >= s.tlen then begin
    s.stall_reason <- stall_drained;
    dispatched
  end
  else if s.cycle < s.fetch_resume_at then begin
    s.stall_reason <- stall_redirect;
    dispatched
  end
  else if s.serialize_slot >= 0 then begin
    s.stall_reason <- stall_serialize;
    dispatched
  end
  else if s.count = s.rob then begin
    s.stall_reason <- stall_rob;
    dispatched
  end
  else if s.iq_count = s.iq_size then begin
    s.stall_reason <- stall_iq;
    dispatched
  end
  else begin
    let ti = s.next_fetch in
    let opc = s.d.op.(ti) in
    let is_mem = opc = D.op_load || opc = D.op_store in
    if is_mem && s.lsq_count = s.lsq_size then begin
      s.stall_reason <- stall_lsq;
      dispatched
    end
    else begin
      (* Configuration gate, evaluated only for accel instructions of a
         unit with a non-zero config latency (so the default pipeline is
         untouched). [Sync] (and the one-time [Preprogrammed] cost)
         blocks dispatch for [config_latency] cycles of CSR writes; a
         [Queued] unit only blocks while its descriptor queue is full. *)
      let cfg_block =
        if opc <> D.op_accel then stall_none
        else
          let u = s.d.accel_unit.(ti) in
          let c = s.u_cfg_lat.(u) in
          if c = 0 then stall_none
          else
            let sync_gate () =
              if s.cfg_paid_ti <> ti then begin
                s.cfg_paid_ti <- ti;
                s.cfg_ready_at <- s.cycle + c;
                stall_config
              end
              else if s.cycle < s.cfg_ready_at then stall_config
              else stall_none
            in
            match s.u_cfg_mode.(u) with
            | Tca_unit.Sync -> sync_gate ()
            | Tca_unit.Preprogrammed ->
                if s.u_preprog_done.(u) then stall_none else sync_gate ()
            | Tca_unit.Queued ->
                (* backlog R = free_at - now; outstanding = ceil(R / c),
                   so full <=> R > (depth - 1) * c *)
                if
                  s.u_desc_free_at.(u) - s.cycle
                  > (s.u_cfg_depth.(u) - 1) * c
                then stall_config_queue
                else stall_none
      in
      if cfg_block <> stall_none then begin
        s.stall_reason <- cfg_block;
        dispatched
      end
      else begin
      let slot = s.tail in
      s.tail <- wrap s (s.tail + 1);
      s.count <- s.count + 1;
      s.tr_idx.(slot) <- ti;
      s.st.(slot) <- st_waiting;
      s.seq.(slot) <- s.next_seq;
      s.next_seq <- s.next_seq + 1;
      let src1 = s.d.src1.(ti) in
      if src1 >= 0 then begin
        s.dep1_slot.(slot) <- s.ren_slot.(src1);
        s.dep1_seq.(slot) <- s.ren_seq.(src1)
      end
      else begin
        s.dep1_slot.(slot) <- -1;
        s.dep1_seq.(slot) <- -1
      end;
      let src2 = s.d.src2.(ti) in
      if src2 >= 0 then begin
        s.dep2_slot.(slot) <- s.ren_slot.(src2);
        s.dep2_seq.(slot) <- s.ren_seq.(src2)
      end
      else begin
        s.dep2_slot.(slot) <- -1;
        s.dep2_seq.(slot) <- -1
      end;
      let dst = s.d.dst.(ti) in
      if dst >= 0 then begin
        s.ren_slot.(dst) <- slot;
        s.ren_seq.(dst) <- s.seq.(slot)
      end;
      s.iq_count <- s.iq_count + 1;
      if is_mem then begin
        s.lsq_count <- s.lsq_count + 1;
        if opc = D.op_store then begin
          s.stq.(wrap s (s.stq_head + s.stq_count)) <- slot;
          s.stq_count <- s.stq_count + 1
        end
      end;
      if opc = D.op_branch then begin
        s.branches <- s.branches + 1;
        if not s.bp_perfect then begin
          let pc = s.d.pc.(ti) in
          let taken = s.d.taken.(ti) in
          let predicted = Bpred.predict s.bp ~pc in
          Bpred.update s.bp ~pc ~taken;
          if predicted <> taken then begin
            s.mispredicts <- s.mispredicts + 1;
            s.pending_redirect <- slot;
            s.pending_redirect_seq <- s.seq.(slot);
            s.fetch_resume_at <- max_int;
            match s.telemetry with
            | None -> ()
            | Some sink ->
                Tca_telemetry.Sink.instant sink ~cat:"branch"
                  ~args:[ ("pc", Tca_util.Json.Int pc) ]
                  ~ts:(float_of_int s.cycle) "flush.mispredict"
          end
        end
      end
      else if opc = D.op_accel then begin
        let u = s.d.accel_unit.(ti) in
        s.accel_invocations <- s.accel_invocations + 1;
        s.u_invocations.(u) <- s.u_invocations.(u) + 1;
        s.occupancy_at_accel_sum <- s.occupancy_at_accel_sum + s.count - 1;
        if not s.u_allow_trailing.(u) then begin
          s.serialize_slot <- slot;
          s.serialize_unit <- u
        end;
        (* Config bookkeeping: enqueue the descriptor (serial engine,
           one descriptor per [config_latency] cycles) or mark the
           one-time programming as paid. [cfg_ready] is cleared first so
           a reused ROB slot cannot leak a stale descriptor deadline. *)
        s.cfg_ready.(slot) <- 0;
        (if s.u_cfg_lat.(u) > 0 then
           match s.u_cfg_mode.(u) with
           | Tca_unit.Queued ->
               let start =
                 if s.u_desc_free_at.(u) > s.cycle then s.u_desc_free_at.(u)
                 else s.cycle
               in
               let done_at = start + s.u_cfg_lat.(u) in
               s.u_desc_free_at.(u) <- done_at;
               s.cfg_ready.(slot) <- done_at
           | Tca_unit.Preprogrammed -> s.u_preprog_done.(u) <- true
           | Tca_unit.Sync -> ());
        match s.telemetry with
        | None -> ()
        | Some sink ->
            Tca_telemetry.Sink.instant sink ~cat:"accel"
              ~args:
                (("rob_occupancy", Tca_util.Json.Int (s.count - 1))
                :: (if s.n_units > 1 then [ ("unit", Tca_util.Json.Int u) ]
                    else []))
              ~ts:(float_of_int s.cycle) "accel.dispatch"
      end;
      s.next_fetch <- s.next_fetch + 1;
      dispatch_loop s (dispatched + 1)
      end
    end
  end

let dispatch_stage s =
  s.stall_reason <- stall_none;
  let dispatched = dispatch_loop s 0 in
  (* Attribute the cycle to a stall reason only when nothing at all was
     dispatched: that is the "zero useful dispatches" notion the model
     reasons about. *)
  if dispatched = 0 then begin
    let r = s.stall_reason in
    if r = stall_drained then s.stall_drained <- s.stall_drained + 1
    else if r = stall_redirect then s.stall_redirect <- s.stall_redirect + 1
    else if r = stall_serialize then begin
      s.stall_serialize <- s.stall_serialize + 1;
      (* [serialize_unit] was set with [serialize_slot] and only read
         while that slot is still in flight, so it is never stale here. *)
      s.u_serialize.(s.serialize_unit) <- s.u_serialize.(s.serialize_unit) + 1
    end
    else if r = stall_rob then s.stall_rob <- s.stall_rob + 1
    else if r = stall_iq then s.stall_iq <- s.stall_iq + 1
    else if r = stall_lsq then s.stall_lsq <- s.stall_lsq + 1
    else if r = stall_config then s.stall_config <- s.stall_config + 1
    else if r = stall_config_queue then
      s.stall_config_queue <- s.stall_config_queue + 1
  end;
  dispatched

let executing_occupancy s = s.executing

let stats_of s =
  {
    Sim_stats.cycles = s.cycle;
    committed = s.committed;
    ipc =
      (if s.cycle = 0 then 0.0
       else float_of_int s.committed /. float_of_int s.cycle);
    branches = s.branches;
    mispredicts = s.mispredicts;
    l1 = Mem_hier.l1_stats s.hier;
    l2 = Mem_hier.l2_stats s.hier;
    accel_invocations = s.accel_invocations;
    accel_busy_cycles = s.accel_busy;
    accel_wait_for_head_cycles = s.accel_head_wait;
    avg_rob_occupancy =
      (if s.cycle = 0 then 0.0
       else float_of_int s.occupancy_sum /. float_of_int s.cycle);
    avg_rob_at_accel_dispatch =
      (if s.accel_invocations = 0 then 0.0
       else
         float_of_int s.occupancy_at_accel_sum
         /. float_of_int s.accel_invocations);
    dtlb =
      Option.map
        (fun tlb ->
          { Mem_hier.hits = Tlb.hits tlb; misses = Tlb.misses tlb })
        s.dtlb;
    stalls =
      {
        Sim_stats.rob_full = s.stall_rob;
        iq_full = s.stall_iq;
        lsq_full = s.stall_lsq;
        serialize = s.stall_serialize;
        redirect = s.stall_redirect;
        drained = s.stall_drained;
      };
    config_stall_cycles = s.stall_config;
    config_queue_stall_cycles = s.stall_config_queue;
    per_unit =
      (* Single-unit runs keep the breakdown empty: the aggregate accel
         counters already are that unit's slice, and the golden JSON
         bytes must not change. *)
      (if s.n_units <= 1 then []
       else
         List.init s.n_units (fun i ->
             {
               Sim_stats.unit_id = i;
               invocations = s.u_invocations.(i);
               busy_cycles = s.u_busy.(i);
               wait_for_head_cycles = s.u_head_wait.(i);
               serialize_stall_cycles = s.u_serialize.(i);
             }));
  }

type outcome =
  | Complete of Sim_stats.t
  | Partial of { stats : Sim_stats.t; diag : Tca_util.Diag.t }

let stats_of_outcome = function
  | Complete stats -> stats
  | Partial { stats; _ } -> stats

let default_cycle_budget trace = 100_000 + (500 * Trace.length trace)

(* Per-interval telemetry: a snapshot of the cumulative counters at the
   last flush, so each flush emits exact deltas. Because the final
   (possibly partial) interval is flushed when the run ends, the deltas
   of every series sum to the corresponding [Sim_stats] total by
   construction. *)
type interval_snap = {
  mutable last_cycle : int;  (* cycle of the previous flush *)
  mutable s_rob : int;
  mutable s_iq : int;
  mutable s_lsq : int;
  mutable s_serialize : int;
  mutable s_redirect : int;
  mutable s_drained : int;
  mutable s_committed : int;
  mutable s_occupancy_sum : int;
  mutable acc_dispatched : int;  (* accumulated since the last flush *)
  mutable acc_issued : int;
}

let flush_interval s sink snap ~now =
  let len = now - snap.last_cycle in
  if len > 0 then begin
    let ts = float_of_int now in
    let f = float_of_int in
    Tca_telemetry.Sink.counter sink ~cat:"sim" ~ts "sim.stalls"
      [
        ("rob", f (s.stall_rob - snap.s_rob));
        ("iq", f (s.stall_iq - snap.s_iq));
        ("lsq", f (s.stall_lsq - snap.s_lsq));
        ("serialize", f (s.stall_serialize - snap.s_serialize));
        ("redirect", f (s.stall_redirect - snap.s_redirect));
        ("drained", f (s.stall_drained - snap.s_drained));
      ];
    Tca_telemetry.Sink.counter sink ~cat:"sim" ~ts "sim.pipeline"
      [
        ("committed", f (s.committed - snap.s_committed));
        ("dispatched", f snap.acc_dispatched);
        ("issued", f snap.acc_issued);
      ];
    Tca_telemetry.Sink.counter sink ~cat:"sim" ~ts "sim.rob"
      [
        ("occupancy", f s.count);
        ( "avg",
          float_of_int (s.occupancy_sum - snap.s_occupancy_sum)
          /. float_of_int len );
      ];
    snap.last_cycle <- now;
    snap.s_rob <- s.stall_rob;
    snap.s_iq <- s.stall_iq;
    snap.s_lsq <- s.stall_lsq;
    snap.s_serialize <- s.stall_serialize;
    snap.s_redirect <- s.stall_redirect;
    snap.s_drained <- s.stall_drained;
    snap.s_committed <- s.committed;
    snap.s_occupancy_sum <- s.occupancy_sum;
    snap.acc_dispatched <- 0;
    snap.acc_issued <- 0
  end

let finish_telemetry s sink snap outcome_stats =
  flush_interval s sink snap ~now:s.cycle;
  Tca_telemetry.Sink.span sink ~cat:"sim" ~ts:0.0 ~dur:(float_of_int s.cycle)
    ~args:
      [
        ("committed", Tca_util.Json.Int s.committed);
        ("ipc", Tca_util.Json.Float outcome_stats.Sim_stats.ipc);
        ("accel_invocations", Tca_util.Json.Int s.accel_invocations);
      ]
    "sim.run";
  match Tca_telemetry.Sink.metrics sink with
  | None -> ()
  | Some reg ->
      let add name v =
        match Tca_telemetry.Metrics.counter reg name with
        | Ok c -> Tca_telemetry.Metrics.Counter.add c v
        | Error _ -> ()
      in
      add "sim.runs" 1;
      add "sim.cycles" s.cycle;
      add "sim.committed" s.committed;
      add "sim.accel_invocations" s.accel_invocations

let watchdog_diag s =
  Tca_util.Diag.Watchdog
    { cycles = s.cycle; committed = s.committed; total = s.tlen }

(* The uninstrumented loop: no per-cycle option match, no interval
   bookkeeping, no probe dispatch — nothing but the four stages and two
   counter updates. Returns the watchdog diagnostic if the budget
   expired. The watchdog snapshot and the stats snapshot are taken at
   the same instant, so [diag.committed = stats.committed] holds by
   construction. *)
let rec run_fast s cap =
  if s.next_fetch >= s.tlen && s.count = 0 then None
  else if s.cycle > cap then Some (watchdog_diag s)
  else begin
    complete_stage s;
    commit_stage s;
    ignore (issue_stage s : int);
    ignore (dispatch_stage s : int);
    s.occupancy_sum <- s.occupancy_sum + s.count;
    s.cycle <- s.cycle + 1;
    run_fast s cap
  end

(* The instrumented loop: the reference run loop verbatim (per-cycle
   probe callback, interval accumulation, periodic flush). *)
let run_instrumented s cap probe snap =
  let watchdog = ref None in
  while !watchdog = None && (s.next_fetch < s.tlen || s.count > 0) do
    if s.cycle > cap then watchdog := Some (watchdog_diag s)
    else begin
      complete_stage s;
      commit_stage s;
      let issued = issue_stage s in
      let dispatched = dispatch_stage s in
      s.occupancy_sum <- s.occupancy_sum + s.count;
      (match probe with
      | Some p ->
          p.on_cycle ~cycle:s.cycle ~dispatched ~issued
            ~executing:(executing_occupancy s) ~rob_occupancy:s.count
      | None -> ());
      s.cycle <- s.cycle + 1;
      match s.telemetry with
      | None -> ()
      | Some sink ->
          snap.acc_dispatched <- snap.acc_dispatched + dispatched;
          snap.acc_issued <- snap.acc_issued + issued;
          if s.cycle mod Tca_telemetry.Sink.interval sink = 0 then
            flush_interval s sink snap ~now:s.cycle
    end
  done;
  !watchdog

(* A trace invoking a unit id outside [cfg.tca_units] would index the
   per-unit arrays out of bounds; reject the pairing up front. *)
let check_trace_units cfg trace =
  let d = Trace.decoded trace in
  let nu = Array.length cfg.Config.tca_units in
  let bad = ref None in
  for i = d.D.n - 1 downto 0 do
    if d.D.accel_unit.(i) >= nu then bad := Some (i, d.D.accel_unit.(i))
  done;
  match !bad with
  | None -> Ok ()
  | Some (i, u) ->
      Error
        (Tca_util.Diag.Invalid
           {
             field = "Trace";
             message =
               Printf.sprintf
                 "instruction %d invokes TCA unit %d but Config.tca_units \
                  defines %d unit(s)"
                 i u nu;
           })

let run ?probe ?telemetry cfg trace =
  match
    match Config.validate cfg with
    | Result.Error _ as e -> e
    | Ok () -> check_trace_units cfg trace
  with
  | Result.Error d -> Result.Error d
  | Ok () ->
      let s = create ?telemetry cfg trace in
      let cap =
        match cfg.Config.max_cycles with
        | Some c -> c
        | None -> default_cycle_budget trace
      in
      let watchdog, snap =
        match (telemetry, probe) with
        | None, None -> (run_fast s cap, None)
        | _ ->
            let snap =
              {
                last_cycle = 0;
                s_rob = 0;
                s_iq = 0;
                s_lsq = 0;
                s_serialize = 0;
                s_redirect = 0;
                s_drained = 0;
                s_committed = 0;
                s_occupancy_sum = 0;
                acc_dispatched = 0;
                acc_issued = 0;
              }
            in
            (run_instrumented s cap probe snap, Some snap)
      in
      let outcome =
        match watchdog with
        | Some diag -> Partial { stats = stats_of s; diag }
        | None -> Complete (stats_of s)
      in
      (match (s.telemetry, snap) with
      | Some sink, Some snap ->
          (match watchdog with
          | Some _ ->
              Tca_telemetry.Sink.instant sink ~cat:"sim"
                ~ts:(float_of_int s.cycle) "sim.watchdog"
          | None -> ());
          finish_telemetry s sink snap (stats_of_outcome outcome)
      | _ -> ());
      Ok outcome

let run_exn ?probe ?telemetry cfg trace =
  match run ?probe ?telemetry cfg trace with
  | Ok (Complete stats) -> stats
  | Ok (Partial { diag; _ }) | Result.Error diag ->
      raise (Tca_util.Diag.Error diag)
