(** Aggregate results of one simulation run. *)

type stall_breakdown = {
  rob_full : int;
  iq_full : int;
  lsq_full : int;
  serialize : int;  (** dispatch barrier behind an in-flight NT TCA *)
  redirect : int;  (** front end waiting on a branch redirect *)
  drained : int;  (** nothing left to dispatch *)
}

type t = {
  cycles : int;
  committed : int;
  ipc : float;
  branches : int;
  mispredicts : int;
  l1 : Mem_hier.level_stats;
  l2 : Mem_hier.level_stats option;
  accel_invocations : int;
  accel_busy_cycles : int;
      (** cycles with at least one TCA instruction executing *)
  accel_wait_for_head_cycles : int;
      (** cycles a ready NL-mode TCA spent waiting to reach the ROB head *)
  avg_rob_occupancy : float;  (** mean ROB entries over all cycles *)
  avg_rob_at_accel_dispatch : float;
      (** mean ROB entries at the moment a TCA dispatches — the window
          the NL modes must drain *)
  dtlb : Mem_hier.level_stats option;
      (** data-TLB hits/misses when a DTLB is configured *)
  stalls : stall_breakdown;
}

val mispredict_rate : t -> float

val level_miss_rate : Mem_hier.level_stats -> float
(** misses / (hits + misses), 0 when the level saw no accesses. *)

val l1_miss_rate : t -> float

val l2_miss_rate : t -> float option
(** [None] when no L2 is configured. *)

val dtlb_miss_rate : t -> float option
(** [None] when no DTLB is configured. *)

val total_stalls : stall_breakdown -> int
(** Sum over all six stall reasons. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Tca_util.Json.t
(** Complete machine-readable form, including the optional L2/DTLB
    levels (as [null] when absent) and derived rates. *)

val csv_header : string list

val csv_row : t -> string list
(** Flat CSV cells matching {!csv_header}; absent L2/DTLB levels are
    empty cells. *)

val pp_csv : Format.formatter -> t -> unit
(** Two lines: {!csv_header} then {!csv_row}. *)

val speedup : baseline:t -> accelerated:t -> (float, Tca_util.Diag.t) result
(** Ratio of baseline to accelerated cycle counts;
    [Error (Invalid _)] when the accelerated run has zero cycles. *)

val speedup_exn : baseline:t -> accelerated:t -> float
(** @raise Tca_util.Diag.Error on zero accelerated cycles. *)
