(** Aggregate results of one simulation run. *)

type stall_breakdown = {
  rob_full : int;
  iq_full : int;
  lsq_full : int;
  serialize : int;  (** dispatch barrier behind an in-flight NT TCA *)
  redirect : int;  (** front end waiting on a branch redirect *)
  drained : int;  (** nothing left to dispatch *)
}

type unit_stats = {
  unit_id : int;  (** matches {!Tca_unit.t.id} / [Isa.accel.unit_id] *)
  invocations : int;
  busy_cycles : int;  (** cycles this unit held an invocation in flight *)
  wait_for_head_cycles : int;
      (** cycles a ready NL invocation of this unit waited for the ROB
          head (window drain attributable to the unit) *)
  serialize_stall_cycles : int;
      (** dispatch-stall cycles behind this unit's in-flight NT
          invocations *)
}
(** Per-unit slice of the accelerator counters, reported only for
    multi-unit configurations (see {!t.per_unit}). *)

type t = {
  cycles : int;
  committed : int;
  ipc : float;
  branches : int;
  mispredicts : int;
  l1 : Mem_hier.level_stats;
  l2 : Mem_hier.level_stats option;
  accel_invocations : int;
  accel_busy_cycles : int;
      (** cycles with at least one TCA instruction executing *)
  accel_wait_for_head_cycles : int;
      (** cycles a ready NL-mode TCA spent waiting to reach the ROB head *)
  avg_rob_occupancy : float;  (** mean ROB entries over all cycles *)
  avg_rob_at_accel_dispatch : float;
      (** mean ROB entries at the moment a TCA dispatches — the window
          the NL modes must drain *)
  dtlb : Mem_hier.level_stats option;
      (** data-TLB hits/misses when a DTLB is configured *)
  stalls : stall_breakdown;
  config_stall_cycles : int;
      (** dispatch-stall cycles spent on synchronous configuration
          writes ([Tca_unit.Sync], and the one-time programming of
          [Preprogrammed] units) *)
  config_queue_stall_cycles : int;
      (** dispatch-stall cycles waiting for a full descriptor queue
          ([Tca_unit.Queued] with [config_queue_depth] outstanding) *)
  per_unit : unit_stats list;
      (** per-unit invocation/drain/stall breakdown, ordered by unit id.
          Empty for runs on a single-unit configuration — the aggregate
          accel counters already are that unit's breakdown — so
          single-unit {!to_json} bytes are unchanged from the
          pre-[Tca_unit] format the goldens pin. *)
}

val mispredict_rate : t -> float

val level_miss_rate : Mem_hier.level_stats -> float
(** misses / (hits + misses), 0 when the level saw no accesses. *)

val l1_miss_rate : t -> float

val l2_miss_rate : t -> float option
(** [None] when no L2 is configured. *)

val dtlb_miss_rate : t -> float option
(** [None] when no DTLB is configured. *)

val total_stalls : stall_breakdown -> int
(** Sum over all six stall reasons. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Tca_util.Json.t
(** Complete machine-readable form, including the optional L2/DTLB
    levels (as [null] when absent) and derived rates. A trailing
    [per_unit] list is present exactly when {!t.per_unit} is non-empty,
    and a [config] object exactly when a config-stall counter is
    non-zero — so configuration-free runs keep the exact bytes the
    golden pins were generated from. *)

val of_json : Tca_util.Json.t -> (t, Tca_util.Diag.t) result
(** Inverse of {!to_json} (derived rates are recomputed, not read);
    tolerant of absent [per_unit] and [config] keys, so pre-[Tca_unit]
    and pre-t_config documents parse. [to_json (of_json j)] reproduces
    [j]'s bytes for any document {!to_json} produced. *)

val of_json_string : string -> (t, Tca_util.Diag.t) result
(** {!Tca_util.Json.parse} followed by {!of_json}. *)

val csv_header : string list

val csv_row : t -> string list
(** Flat CSV cells matching {!csv_header}; absent L2/DTLB levels are
    empty cells, and the per-unit breakdown is one packed cell
    ([id:inv:busy:wait:ser] segments joined by ['|'], empty for
    single-unit runs). *)

val of_csv_row : string list -> (t, Tca_util.Diag.t) result
(** Inverse of {!csv_row} up to the row's own float formatting:
    [csv_row (of_csv_row r)] = [r] for any row {!csv_row} produced. *)

val pp_csv : Format.formatter -> t -> unit
(** Two lines: {!csv_header} then {!csv_row}. *)

val speedup : baseline:t -> accelerated:t -> (float, Tca_util.Diag.t) result
(** Ratio of baseline to accelerated cycle counts;
    [Error (Invalid _)] when the accelerated run has zero cycles. *)

val speedup_exn : baseline:t -> accelerated:t -> float
(** @raise Tca_util.Diag.Error on zero accelerated cycles. *)
