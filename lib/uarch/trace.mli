(** Instruction traces and their construction.

    A trace is an immutable array of {!Isa.instr} values plus a lazily
    built {!Decoded} struct-of-arrays form that the simulator hot path
    indexes instead of chasing per-instruction records. *)

(** Flat, pre-decoded view of a trace: one int per field per
    instruction, plus a shared pool for accelerator read/write address
    lists. Built once per trace (see {!val:decoded}) so repeated
    simulation — mode comparisons, sweeps, batches — never re-decodes.

    The arrays are exposed for direct indexing from the simulator's
    inner loop; treat them as read-only. For instruction [i]:
    [op.(i)] is one of the [op_*] codes, [accel_lat.(i)] /
    [reads_off.(i)] / [reads_len.(i)] / [writes_off.(i)] /
    [writes_len.(i)] describe an [op_accel] instruction's latency and
    its address spans inside [accel_mem], and are all zero
    otherwise. *)
module Decoded : sig
  val op_int_alu : int
  val op_int_mult : int
  val op_fp_alu : int
  val op_fp_mult : int
  val op_load : int
  val op_store : int
  val op_branch : int
  val op_accel : int

  type t = {
    n : int;  (** instruction count, [= Array.length op] *)
    op : int array;  (** [op_*] code per instruction *)
    src1 : int array;
    src2 : int array;
    dst : int array;  (** registers; {!Isa.no_reg} when absent *)
    addr : int array;
    pc : int array;
    taken : bool array;  (** branch outcome; [false] for non-branches *)
    accel_lat : int array;  (** accel compute latency, else [0] *)
    accel_unit : int array;  (** accel unit id ({!Isa.accel.unit_id}), else [0] *)
    reads_off : int array;  (** offset of the read set in [accel_mem] *)
    reads_len : int array;
    writes_off : int array;  (** offset of the write set in [accel_mem] *)
    writes_len : int array;
    accel_mem : int array;
        (** shared address pool for every accel instruction's reads and
            writes, in trace order (reads then writes per instruction) *)
  }

  val op_code : Isa.op -> int
end

type t = private {
  instrs : Isa.instr array;
  mutable decoded_ : Decoded.t option;
      (** memo for {!val:decoded}; never inspect directly *)
}

val of_array : Isa.instr array -> t
(** Validates the trace (see {!validate}); raises [Invalid_argument] on a
    malformed trace. The array is not copied. *)

val length : t -> int
val get : t -> int -> Isa.instr
val iter : (Isa.instr -> unit) -> t -> unit

val decoded : t -> Decoded.t
(** The struct-of-arrays form, built on first use and memoized.
    Thread-safety: the memo write is a benign race (decoding is pure and
    the store is atomic), but to avoid duplicated work decode eagerly
    before fanning a trace out across domains, as
    {!Simulator.run_batch} does. *)

val validate : Isa.instr array -> (unit, string) result
(** Registers in range, non-negative addresses, non-negative accelerator
    latencies, and no no-op accelerator invocations (empty read and
    write sets with zero compute latency — such an instruction would
    silently skew the [a]/[A] inputs derived for the analytical
    model). *)

type counts = {
  total : int;
  int_alu : int;
  int_mult : int;
  fp_alu : int;
  fp_mult : int;
  loads : int;
  stores : int;
  branches : int;
  accels : int;
}

val counts : t -> counts

val counts_to_json : counts -> Tca_util.Json.t
(** Shared schema between [tca analyze --json] and [tca trace-report]. *)

val to_channel : out_channel -> t -> unit
(** Write the trace in the textual interchange format: a header line
    [tca-trace 1 <count>] followed by one instruction per line. Accel
    instructions with a non-zero unit id carry it as one extra trailing
    field; unit-0 invocations are written exactly as before unit ids
    existed, so single-unit traces round-trip byte-identically. *)

val of_channel : in_channel -> t
(** Parse the interchange format; raises [Failure] with a line-numbered
    message on malformed input. Accepts both accel line shapes (with and
    without the trailing unit id). *)

val save : string -> t -> unit
val load : string -> t

(** Incremental construction with automatic PC assignment (4 bytes per
    μop, like a fixed-width ISA). *)
module Builder : sig
  type trace := t
  type t

  val create : ?capacity:int -> unit -> t
  val add : t -> Isa.instr -> unit
  (** Appends, overriding the instruction's [pc] with the next sequential
      value. *)

  val add_here : t -> (pc:int -> Isa.instr) -> unit
  (** For branches that need their own PC (predictor indexing). *)

  val add_at_site : t -> Isa.instr -> unit
  (** Appends keeping the instruction's own [pc]: used for branches that
      belong to a recurring static site (loops, library calls), so the
      branch predictor sees repeated PCs as it would in a real binary. *)

  val length : t -> int
  val next_pc : t -> int
  val build : t -> trace
end
