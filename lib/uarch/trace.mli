(** Instruction traces and their construction. *)

type t = private { instrs : Isa.instr array }

val of_array : Isa.instr array -> t
(** Validates the trace (see {!validate}); raises [Invalid_argument] on a
    malformed trace. The array is not copied. *)

val length : t -> int
val get : t -> int -> Isa.instr
val iter : (Isa.instr -> unit) -> t -> unit

val validate : Isa.instr array -> (unit, string) result
(** Registers in range, non-negative addresses, non-negative accelerator
    latencies, and no no-op accelerator invocations (empty read and
    write sets with zero compute latency — such an instruction would
    silently skew the [a]/[A] inputs derived for the analytical
    model). *)

type counts = {
  total : int;
  int_alu : int;
  int_mult : int;
  fp_alu : int;
  fp_mult : int;
  loads : int;
  stores : int;
  branches : int;
  accels : int;
}

val counts : t -> counts

val counts_to_json : counts -> Tca_util.Json.t
(** Shared schema between [tca analyze --json] and [tca trace-report]. *)

val to_channel : out_channel -> t -> unit
(** Write the trace in the textual interchange format: a header line
    [tca-trace 1 <count>] followed by one instruction per line. *)

val of_channel : in_channel -> t
(** Parse the interchange format; raises [Failure] with a line-numbered
    message on malformed input. *)

val save : string -> t -> unit
val load : string -> t

(** Incremental construction with automatic PC assignment (4 bytes per
    μop, like a fixed-width ISA). *)
module Builder : sig
  type trace := t
  type t

  val create : ?capacity:int -> unit -> t
  val add : t -> Isa.instr -> unit
  (** Appends, overriding the instruction's [pc] with the next sequential
      value. *)

  val add_here : t -> (pc:int -> Isa.instr) -> unit
  (** For branches that need their own PC (predictor indexing). *)

  val add_at_site : t -> Isa.instr -> unit
  (** Appends keeping the instruction's own [pc]: used for branches that
      belong to a recurring static site (loops, library calls), so the
      branch predictor sees repeated PCs as it would in a real binary. *)

  val length : t -> int
  val next_pc : t -> int
  val build : t -> trace
end
