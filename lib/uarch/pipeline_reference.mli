(** The pre-optimization cycle-level pipeline, kept verbatim as a
    differential oracle for the optimized {!Pipeline}.

    Same contract as {!Pipeline.run} — identical configuration
    validation, watchdog budget, telemetry events and statistics — but
    implemented with the original per-cycle allocations (list churn,
    closures, record decoding). The golden tests, the fuzz harness's
    parity case and [bench simulator] all assert that {!Pipeline.run}
    reproduces this implementation's {!Sim_stats} bit for bit; the
    throughput ratio between the two is the machine-independent speedup
    recorded in [BENCH_results.json] and guarded by CI.

    Do not optimize this module: change {!Pipeline} and regenerate the
    goldens ([dune exec test/gen_golden.exe]) on deliberate semantic
    changes only. *)

val run :
  ?probe:Pipeline.probe ->
  ?telemetry:Tca_telemetry.Sink.t ->
  Config.t ->
  Trace.t ->
  (Pipeline.outcome, Tca_util.Diag.t) result
(** Reference semantics of {!Pipeline.run}. *)

val run_exn :
  ?probe:Pipeline.probe ->
  ?telemetry:Tca_telemetry.Sink.t ->
  Config.t ->
  Trace.t ->
  Sim_stats.t
(** Reference semantics of {!Pipeline.run_exn}: the stats of a complete
    run; raises {!Tca_util.Diag.Error} on invalid configuration or a
    watchdog-truncated run. *)
