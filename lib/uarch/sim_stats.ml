type stall_breakdown = {
  rob_full : int;
  iq_full : int;
  lsq_full : int;
  serialize : int;
  redirect : int;
  drained : int;
}

type t = {
  cycles : int;
  committed : int;
  ipc : float;
  branches : int;
  mispredicts : int;
  l1 : Mem_hier.level_stats;
  l2 : Mem_hier.level_stats option;
  accel_invocations : int;
  accel_busy_cycles : int;
  accel_wait_for_head_cycles : int;
  avg_rob_occupancy : float;
  avg_rob_at_accel_dispatch : float;
  dtlb : Mem_hier.level_stats option;
  stalls : stall_breakdown;
}

let mispredict_rate t =
  if t.branches = 0 then 0.0
  else float_of_int t.mispredicts /. float_of_int t.branches

let level_miss_rate (l : Mem_hier.level_stats) =
  let total = l.Mem_hier.hits + l.Mem_hier.misses in
  if total = 0 then 0.0 else float_of_int l.Mem_hier.misses /. float_of_int total

let l1_miss_rate t = level_miss_rate t.l1
let l2_miss_rate t = Option.map level_miss_rate t.l2
let dtlb_miss_rate t = Option.map level_miss_rate t.dtlb

let total_stalls s =
  s.rob_full + s.iq_full + s.lsq_full + s.serialize + s.redirect + s.drained

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cycles       %d@,committed    %d@,ipc          %.3f@,branches     \
     %d (%.2f%% mispredicted)@,l1           %d hits / %d misses@,accel        \
     %d invocations, %d busy cycles, %d head-wait cycles@,rob          \
     avg %.1f, %.1f at accel dispatch@,stalls       \
     rob=%d iq=%d lsq=%d serialize=%d redirect=%d drained=%d@]"
    t.cycles t.committed t.ipc t.branches
    (100.0 *. mispredict_rate t)
    t.l1.Mem_hier.hits t.l1.Mem_hier.misses t.accel_invocations
    t.accel_busy_cycles t.accel_wait_for_head_cycles t.avg_rob_occupancy
    t.avg_rob_at_accel_dispatch t.stalls.rob_full
    t.stalls.iq_full t.stalls.lsq_full t.stalls.serialize t.stalls.redirect
    t.stalls.drained

let level_json (l : Mem_hier.level_stats) =
  Tca_util.Json.Obj
    [
      ("hits", Tca_util.Json.Int l.Mem_hier.hits);
      ("misses", Tca_util.Json.Int l.Mem_hier.misses);
      ("miss_rate", Tca_util.Json.Float (level_miss_rate l));
    ]

let to_json t =
  let open Tca_util.Json in
  let opt_level = function Some l -> level_json l | None -> Null in
  Obj
    [
      ("cycles", Int t.cycles);
      ("committed", Int t.committed);
      ("ipc", Float t.ipc);
      ("branches", Int t.branches);
      ("mispredicts", Int t.mispredicts);
      ("mispredict_rate", Float (mispredict_rate t));
      ("l1", level_json t.l1);
      ("l2", opt_level t.l2);
      ("dtlb", opt_level t.dtlb);
      ("accel_invocations", Int t.accel_invocations);
      ("accel_busy_cycles", Int t.accel_busy_cycles);
      ("accel_wait_for_head_cycles", Int t.accel_wait_for_head_cycles);
      ("avg_rob_occupancy", Float t.avg_rob_occupancy);
      ("avg_rob_at_accel_dispatch", Float t.avg_rob_at_accel_dispatch);
      ( "stalls",
        Obj
          [
            ("rob_full", Int t.stalls.rob_full);
            ("iq_full", Int t.stalls.iq_full);
            ("lsq_full", Int t.stalls.lsq_full);
            ("serialize", Int t.stalls.serialize);
            ("redirect", Int t.stalls.redirect);
            ("drained", Int t.stalls.drained);
            ("total", Int (total_stalls t.stalls));
          ] );
    ]

let csv_header =
  [
    "cycles"; "committed"; "ipc"; "branches"; "mispredicts";
    "l1_hits"; "l1_misses"; "l2_hits"; "l2_misses"; "dtlb_hits"; "dtlb_misses";
    "accel_invocations"; "accel_busy_cycles"; "accel_wait_for_head_cycles";
    "avg_rob_occupancy"; "avg_rob_at_accel_dispatch";
    "stall_rob"; "stall_iq"; "stall_lsq"; "stall_serialize"; "stall_redirect";
    "stall_drained";
  ]

let csv_row t =
  let opt f = function Some l -> string_of_int (f l) | None -> "" in
  let hits (l : Mem_hier.level_stats) = l.Mem_hier.hits in
  let misses (l : Mem_hier.level_stats) = l.Mem_hier.misses in
  [
    string_of_int t.cycles; string_of_int t.committed;
    Printf.sprintf "%.6f" t.ipc;
    string_of_int t.branches; string_of_int t.mispredicts;
    string_of_int t.l1.Mem_hier.hits; string_of_int t.l1.Mem_hier.misses;
    opt hits t.l2; opt misses t.l2; opt hits t.dtlb; opt misses t.dtlb;
    string_of_int t.accel_invocations; string_of_int t.accel_busy_cycles;
    string_of_int t.accel_wait_for_head_cycles;
    Printf.sprintf "%.6f" t.avg_rob_occupancy;
    Printf.sprintf "%.6f" t.avg_rob_at_accel_dispatch;
    string_of_int t.stalls.rob_full; string_of_int t.stalls.iq_full;
    string_of_int t.stalls.lsq_full; string_of_int t.stalls.serialize;
    string_of_int t.stalls.redirect; string_of_int t.stalls.drained;
  ]

let pp_csv fmt t =
  Format.fprintf fmt "%s@.%s@."
    (String.concat "," csv_header)
    (String.concat "," (csv_row t))

let speedup ~baseline ~accelerated =
  if accelerated.cycles = 0 then
    Error
      (Tca_util.Diag.Invalid
         {
           field = "Sim_stats.speedup";
           message = "accelerated run has zero cycles";
         })
  else
    Ok (float_of_int baseline.cycles /. float_of_int accelerated.cycles)

let speedup_exn ~baseline ~accelerated =
  Tca_util.Diag.ok_exn (speedup ~baseline ~accelerated)
