type stall_breakdown = {
  rob_full : int;
  iq_full : int;
  lsq_full : int;
  serialize : int;
  redirect : int;
  drained : int;
}

type unit_stats = {
  unit_id : int;
  invocations : int;
  busy_cycles : int;
  wait_for_head_cycles : int;
  serialize_stall_cycles : int;
}

type t = {
  cycles : int;
  committed : int;
  ipc : float;
  branches : int;
  mispredicts : int;
  l1 : Mem_hier.level_stats;
  l2 : Mem_hier.level_stats option;
  accel_invocations : int;
  accel_busy_cycles : int;
  accel_wait_for_head_cycles : int;
  avg_rob_occupancy : float;
  avg_rob_at_accel_dispatch : float;
  dtlb : Mem_hier.level_stats option;
  stalls : stall_breakdown;
  config_stall_cycles : int;
  config_queue_stall_cycles : int;
  per_unit : unit_stats list;
}

let mispredict_rate t =
  if t.branches = 0 then 0.0
  else float_of_int t.mispredicts /. float_of_int t.branches

let level_miss_rate (l : Mem_hier.level_stats) =
  let total = l.Mem_hier.hits + l.Mem_hier.misses in
  if total = 0 then 0.0 else float_of_int l.Mem_hier.misses /. float_of_int total

let l1_miss_rate t = level_miss_rate t.l1
let l2_miss_rate t = Option.map level_miss_rate t.l2
let dtlb_miss_rate t = Option.map level_miss_rate t.dtlb

let total_stalls s =
  s.rob_full + s.iq_full + s.lsq_full + s.serialize + s.redirect + s.drained

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cycles       %d@,committed    %d@,ipc          %.3f@,branches     \
     %d (%.2f%% mispredicted)@,l1           %d hits / %d misses@,accel        \
     %d invocations, %d busy cycles, %d head-wait cycles@,rob          \
     avg %.1f, %.1f at accel dispatch@,stalls       \
     rob=%d iq=%d lsq=%d serialize=%d redirect=%d drained=%d"
    t.cycles t.committed t.ipc t.branches
    (100.0 *. mispredict_rate t)
    t.l1.Mem_hier.hits t.l1.Mem_hier.misses t.accel_invocations
    t.accel_busy_cycles t.accel_wait_for_head_cycles t.avg_rob_occupancy
    t.avg_rob_at_accel_dispatch t.stalls.rob_full
    t.stalls.iq_full t.stalls.lsq_full t.stalls.serialize t.stalls.redirect
    t.stalls.drained;
  (* Shown only when a configuration cost was paid, so config-free
     output is unchanged. *)
  if t.config_stall_cycles > 0 || t.config_queue_stall_cycles > 0 then
    Format.fprintf fmt "@,config       stall=%d queue_stall=%d"
      t.config_stall_cycles t.config_queue_stall_cycles;
  Format.fprintf fmt "@]"

let level_json (l : Mem_hier.level_stats) =
  Tca_util.Json.Obj
    [
      ("hits", Tca_util.Json.Int l.Mem_hier.hits);
      ("misses", Tca_util.Json.Int l.Mem_hier.misses);
      ("miss_rate", Tca_util.Json.Float (level_miss_rate l));
    ]

let unit_stats_to_json u =
  let open Tca_util.Json in
  Obj
    [
      ("unit_id", Int u.unit_id);
      ("invocations", Int u.invocations);
      ("busy_cycles", Int u.busy_cycles);
      ("wait_for_head_cycles", Int u.wait_for_head_cycles);
      ("serialize_stall_cycles", Int u.serialize_stall_cycles);
    ]

let to_json t =
  let open Tca_util.Json in
  let opt_level = function Some l -> level_json l | None -> Null in
  (* The [per_unit] key is emitted only for genuinely multi-unit runs:
     single-unit stats keep the exact bytes the golden pins were
     generated from. *)
  let per_unit =
    match t.per_unit with
    | [] -> []
    | us -> [ ("per_unit", List (List.map unit_stats_to_json us)) ]
  in
  (* Same byte-stability contract for the config-stall counters: the
     [config] object appears only when a configuration cost was actually
     paid, so t_config = 0 runs serialize to the pre-t_config bytes. *)
  let config =
    if t.config_stall_cycles = 0 && t.config_queue_stall_cycles = 0 then []
    else
      [
        ( "config",
          Obj
            [
              ("stall_cycles", Int t.config_stall_cycles);
              ("queue_stall_cycles", Int t.config_queue_stall_cycles);
            ] );
      ]
  in
  Obj
    ([
      ("cycles", Int t.cycles);
      ("committed", Int t.committed);
      ("ipc", Float t.ipc);
      ("branches", Int t.branches);
      ("mispredicts", Int t.mispredicts);
      ("mispredict_rate", Float (mispredict_rate t));
      ("l1", level_json t.l1);
      ("l2", opt_level t.l2);
      ("dtlb", opt_level t.dtlb);
      ("accel_invocations", Int t.accel_invocations);
      ("accel_busy_cycles", Int t.accel_busy_cycles);
      ("accel_wait_for_head_cycles", Int t.accel_wait_for_head_cycles);
      ("avg_rob_occupancy", Float t.avg_rob_occupancy);
      ("avg_rob_at_accel_dispatch", Float t.avg_rob_at_accel_dispatch);
      ( "stalls",
        Obj
          [
            ("rob_full", Int t.stalls.rob_full);
            ("iq_full", Int t.stalls.iq_full);
            ("lsq_full", Int t.stalls.lsq_full);
            ("serialize", Int t.stalls.serialize);
            ("redirect", Int t.stalls.redirect);
            ("drained", Int t.stalls.drained);
            ("total", Int (total_stalls t.stalls));
          ] );
    ]
    @ config @ per_unit)

let of_json j =
  let open Tca_util.Json in
  let invalid message =
    Error (Tca_util.Diag.Invalid { field = "Sim_stats.of_json"; message })
  in
  let int_field o name =
    match Option.bind (member name o) to_int_opt with
    | Some v -> Ok v
    | None -> invalid (Printf.sprintf "missing or non-integer %S" name)
  in
  let float_field o name =
    match Option.bind (member name o) to_float_opt with
    | Some v -> Ok v
    | None -> invalid (Printf.sprintf "missing or non-numeric %S" name)
  in
  let open Tca_util.Diag.Syntax in
  let level_opt o name =
    match member name o with
    | None | Some Null -> Ok None
    | Some l ->
        let* hits = int_field l "hits" in
        let+ misses = int_field l "misses" in
        Some { Mem_hier.hits; misses }
  in
  let* cycles = int_field j "cycles" in
  let* committed = int_field j "committed" in
  let* ipc = float_field j "ipc" in
  let* branches = int_field j "branches" in
  let* mispredicts = int_field j "mispredicts" in
  let* l1 =
    let* l = level_opt j "l1" in
    match l with Some l -> Ok l | None -> invalid "missing \"l1\" level"
  in
  let* l2 = level_opt j "l2" in
  let* dtlb = level_opt j "dtlb" in
  let* accel_invocations = int_field j "accel_invocations" in
  let* accel_busy_cycles = int_field j "accel_busy_cycles" in
  let* accel_wait_for_head_cycles = int_field j "accel_wait_for_head_cycles" in
  let* avg_rob_occupancy = float_field j "avg_rob_occupancy" in
  let* avg_rob_at_accel_dispatch = float_field j "avg_rob_at_accel_dispatch" in
  let* stalls =
    match member "stalls" j with
    | None -> invalid "missing \"stalls\" object"
    | Some s ->
        let* rob_full = int_field s "rob_full" in
        let* iq_full = int_field s "iq_full" in
        let* lsq_full = int_field s "lsq_full" in
        let* serialize = int_field s "serialize" in
        let* redirect = int_field s "redirect" in
        let+ drained = int_field s "drained" in
        { rob_full; iq_full; lsq_full; serialize; redirect; drained }
  in
  let* config_stall_cycles, config_queue_stall_cycles =
    match member "config" j with
    | None | Some Null -> Ok (0, 0)
    | Some c ->
        let* stall = int_field c "stall_cycles" in
        let+ queue = int_field c "queue_stall_cycles" in
        (stall, queue)
  in
  let+ per_unit =
    match member "per_unit" j with
    | None | Some Null -> Ok []
    | Some us -> (
        match to_list_opt us with
        | None -> invalid "\"per_unit\" is not a list"
        | Some us ->
            let rec parse_units = function
              | [] -> Ok []
              | u :: rest ->
                  let* unit_id = int_field u "unit_id" in
                  let* invocations = int_field u "invocations" in
                  let* busy_cycles = int_field u "busy_cycles" in
                  let* wait_for_head_cycles =
                    int_field u "wait_for_head_cycles"
                  in
                  let* serialize_stall_cycles =
                    int_field u "serialize_stall_cycles"
                  in
                  let+ rest = parse_units rest in
                  { unit_id; invocations; busy_cycles; wait_for_head_cycles;
                    serialize_stall_cycles }
                  :: rest
            in
            parse_units us)
  in
  {
    cycles; committed; ipc; branches; mispredicts; l1; l2;
    accel_invocations; accel_busy_cycles; accel_wait_for_head_cycles;
    avg_rob_occupancy; avg_rob_at_accel_dispatch; dtlb; stalls;
    config_stall_cycles; config_queue_stall_cycles; per_unit;
  }

let of_json_string s =
  let open Tca_util.Diag.Syntax in
  let* j = Tca_util.Json.parse s in
  of_json j

let csv_header =
  [
    "cycles"; "committed"; "ipc"; "branches"; "mispredicts";
    "l1_hits"; "l1_misses"; "l2_hits"; "l2_misses"; "dtlb_hits"; "dtlb_misses";
    "accel_invocations"; "accel_busy_cycles"; "accel_wait_for_head_cycles";
    "avg_rob_occupancy"; "avg_rob_at_accel_dispatch";
    "stall_rob"; "stall_iq"; "stall_lsq"; "stall_serialize"; "stall_redirect";
    "stall_drained"; "config_stall"; "config_queue_stall"; "per_unit";
  ]

(* One CSV cell for the whole per-unit breakdown:
   [id:inv:busy:wait:ser] segments joined by '|', empty for single-unit
   runs — keeps the schema flat while staying loss-free. *)
let per_unit_to_cell per_unit =
  String.concat "|"
    (List.map
       (fun u ->
         Printf.sprintf "%d:%d:%d:%d:%d" u.unit_id u.invocations u.busy_cycles
           u.wait_for_head_cycles u.serialize_stall_cycles)
       per_unit)

let per_unit_of_cell cell =
  let invalid message =
    Error (Tca_util.Diag.Parse { field = "Sim_stats.of_csv_row"; input = cell; message })
  in
  if cell = "" then Ok []
  else
    let rec parse_segments = function
      | [] -> Ok []
      | seg :: rest -> (
          match
            String.split_on_char ':' seg |> List.map int_of_string_opt
          with
          | [ Some unit_id; Some invocations; Some busy_cycles;
              Some wait_for_head_cycles; Some serialize_stall_cycles ] ->
              Result.map
                (fun rest ->
                  { unit_id; invocations; busy_cycles; wait_for_head_cycles;
                    serialize_stall_cycles }
                  :: rest)
                (parse_segments rest)
          | _ -> invalid (Printf.sprintf "bad per-unit segment %S" seg))
    in
    parse_segments (String.split_on_char '|' cell)

let csv_row t =
  let opt f = function Some l -> string_of_int (f l) | None -> "" in
  let hits (l : Mem_hier.level_stats) = l.Mem_hier.hits in
  let misses (l : Mem_hier.level_stats) = l.Mem_hier.misses in
  [
    string_of_int t.cycles; string_of_int t.committed;
    Printf.sprintf "%.6f" t.ipc;
    string_of_int t.branches; string_of_int t.mispredicts;
    string_of_int t.l1.Mem_hier.hits; string_of_int t.l1.Mem_hier.misses;
    opt hits t.l2; opt misses t.l2; opt hits t.dtlb; opt misses t.dtlb;
    string_of_int t.accel_invocations; string_of_int t.accel_busy_cycles;
    string_of_int t.accel_wait_for_head_cycles;
    Printf.sprintf "%.6f" t.avg_rob_occupancy;
    Printf.sprintf "%.6f" t.avg_rob_at_accel_dispatch;
    string_of_int t.stalls.rob_full; string_of_int t.stalls.iq_full;
    string_of_int t.stalls.lsq_full; string_of_int t.stalls.serialize;
    string_of_int t.stalls.redirect; string_of_int t.stalls.drained;
    string_of_int t.config_stall_cycles;
    string_of_int t.config_queue_stall_cycles;
    per_unit_to_cell t.per_unit;
  ]

let of_csv_row cells =
  let invalid message =
    Error
      (Tca_util.Diag.Parse
         { field = "Sim_stats.of_csv_row"; input = String.concat "," cells;
           message })
  in
  match cells with
  | [ cycles; committed; ipc; branches; mispredicts; l1_hits; l1_misses;
      l2_hits; l2_misses; dtlb_hits; dtlb_misses; accel_invocations;
      accel_busy_cycles; accel_wait_for_head_cycles; avg_rob_occupancy;
      avg_rob_at_accel_dispatch; stall_rob; stall_iq; stall_lsq;
      stall_serialize; stall_redirect; stall_drained; config_stall;
      config_queue_stall; per_unit ] -> (
      let int name s =
        match int_of_string_opt s with
        | Some v -> Ok v
        | None -> invalid (Printf.sprintf "bad integer %S for %s" s name)
      in
      let flt name s =
        match float_of_string_opt s with
        | Some v -> Ok v
        | None -> invalid (Printf.sprintf "bad float %S for %s" s name)
      in
      let level name hits misses =
        match (hits, misses) with
        | "", "" -> Ok None
        | h, m ->
            let open Tca_util.Diag.Syntax in
            let* hits = int (name ^ "_hits") h in
            let+ misses = int (name ^ "_misses") m in
            Some { Mem_hier.hits; misses }
      in
      let open Tca_util.Diag.Syntax in
      let* cycles = int "cycles" cycles in
      let* committed = int "committed" committed in
      let* ipc = flt "ipc" ipc in
      let* branches = int "branches" branches in
      let* mispredicts = int "mispredicts" mispredicts in
      let* l1_hits = int "l1_hits" l1_hits in
      let* l1_misses = int "l1_misses" l1_misses in
      let* l2 = level "l2" l2_hits l2_misses in
      let* dtlb = level "dtlb" dtlb_hits dtlb_misses in
      let* accel_invocations = int "accel_invocations" accel_invocations in
      let* accel_busy_cycles = int "accel_busy_cycles" accel_busy_cycles in
      let* accel_wait_for_head_cycles =
        int "accel_wait_for_head_cycles" accel_wait_for_head_cycles
      in
      let* avg_rob_occupancy = flt "avg_rob_occupancy" avg_rob_occupancy in
      let* avg_rob_at_accel_dispatch =
        flt "avg_rob_at_accel_dispatch" avg_rob_at_accel_dispatch
      in
      let* rob_full = int "stall_rob" stall_rob in
      let* iq_full = int "stall_iq" stall_iq in
      let* lsq_full = int "stall_lsq" stall_lsq in
      let* serialize = int "stall_serialize" stall_serialize in
      let* redirect = int "stall_redirect" stall_redirect in
      let* drained = int "stall_drained" stall_drained in
      let* config_stall_cycles = int "config_stall" config_stall in
      let* config_queue_stall_cycles =
        int "config_queue_stall" config_queue_stall
      in
      let+ per_unit = per_unit_of_cell per_unit in
      {
        cycles; committed; ipc; branches; mispredicts;
        l1 = { Mem_hier.hits = l1_hits; misses = l1_misses };
        l2; dtlb; accel_invocations; accel_busy_cycles;
        accel_wait_for_head_cycles; avg_rob_occupancy;
        avg_rob_at_accel_dispatch;
        stalls = { rob_full; iq_full; lsq_full; serialize; redirect; drained };
        config_stall_cycles; config_queue_stall_cycles; per_unit;
      })
  | _ ->
      invalid
        (Printf.sprintf "expected %d cells, got %d" (List.length csv_header)
           (List.length cells))

let pp_csv fmt t =
  Format.fprintf fmt "%s@.%s@."
    (String.concat "," csv_header)
    (String.concat "," (csv_row t))

let speedup ~baseline ~accelerated =
  if accelerated.cycles = 0 then
    Error
      (Tca_util.Diag.Invalid
         {
           field = "Sim_stats.speedup";
           message = "accelerated run has zero cycles";
         })
  else
    Ok (float_of_int baseline.cycles /. float_of_int accelerated.cycles)

let speedup_exn ~baseline ~accelerated =
  Tca_util.Diag.ok_exn (speedup ~baseline ~accelerated)
