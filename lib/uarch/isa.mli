(** Micro-operation ISA consumed by the trace-driven core simulator.

    Traces carry resolved effective addresses and branch outcomes (the
    generator knows them), so the pipeline models timing, not values.
    Register identifiers are architectural; the pipeline tracks producers
    through its own rename table. *)

val num_arch_regs : int
(** Architectural register file size (integer and FP share one space for
    simplicity; 64 registers). *)

val no_reg : int
(** Sentinel (-1) for an absent source/destination. *)

type accel = {
  unit_id : int;
      (** which {!Tca_unit} executes the invocation; 0 (the default) is
          the sole unit of classic single-TCA configurations *)
  compute_latency : int;
      (** cycles of accelerator computation once operands/memory arrive *)
  reads : int array;  (** byte addresses; one <=64 B line request each *)
  writes : int array;  (** byte addresses written back after compute *)
}

type op =
  | Int_alu
  | Int_mult
  | Fp_alu
  | Fp_mult
  | Load
  | Store
  | Branch
  | Accel of accel

type instr = {
  pc : int;
  op : op;
  src1 : int;
  src2 : int;
  dst : int;
  addr : int;  (** effective address for Load/Store; 0 otherwise *)
  taken : bool;  (** branch outcome; [false] for non-branches *)
}

(** Constructors validate register ranges and addresses. [pc] defaults to
    0 and is typically re-assigned by {!Trace.Builder}. *)

val int_alu : ?pc:int -> ?src1:int -> ?src2:int -> dst:int -> unit -> instr
val int_mult : ?pc:int -> ?src1:int -> ?src2:int -> dst:int -> unit -> instr
val fp_alu : ?pc:int -> ?src1:int -> ?src2:int -> dst:int -> unit -> instr
val fp_mult : ?pc:int -> ?src1:int -> ?src2:int -> dst:int -> unit -> instr
val load : ?pc:int -> ?base:int -> dst:int -> addr:int -> unit -> instr
val store : ?pc:int -> ?base:int -> ?src:int -> addr:int -> unit -> instr
val branch : ?pc:int -> ?src1:int -> taken:bool -> unit -> instr

val accel :
  ?pc:int ->
  ?src1:int ->
  ?dst:int ->
  ?unit_id:int ->
  compute_latency:int ->
  reads:int array ->
  writes:int array ->
  unit ->
  instr
(** [unit_id] defaults to 0; negative ids are rejected. *)

val is_mem : instr -> bool
(** Load or Store (not Accel: accelerator traffic is arbitrated
    separately). *)

val op_name : op -> string
val pp : Format.formatter -> instr -> unit
