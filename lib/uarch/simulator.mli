(** Convenience drivers on top of {!Pipeline}: run a workload's baseline
    and accelerated traces across the four TCA couplings, the common
    shape of every validation experiment. *)

type mode_result = {
  coupling : Config.coupling;
  stats : Sim_stats.t;
  speedup : float;  (** baseline cycles / accelerated cycles *)
  partial : Tca_util.Diag.t option;
      (** [Some (Watchdog _)] when this mode's run hit its cycle budget
          and [stats] is a truncated snapshot; [None] for a complete run *)
}

type comparison = {
  baseline : Sim_stats.t;
  baseline_partial : Tca_util.Diag.t option;
      (** watchdog diagnostic for the baseline run, if it was cut short *)
  modes : mode_result list;  (** in [Config.all_couplings] order *)
}

val measure_ipc :
  ?telemetry:Tca_telemetry.Sink.t -> Config.t -> Trace.t ->
  (float, Tca_util.Diag.t) result
(** IPC of a trace on the given core (coupling irrelevant when the trace
    holds no accelerator instructions). A watchdog-truncated run still
    returns its snapshot IPC. [Error] only on an invalid configuration. *)

val measure_ipc_exn :
  ?telemetry:Tca_telemetry.Sink.t -> Config.t -> Trace.t -> float

val run_batch :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  (Config.t * Trace.t) array ->
  (Pipeline.outcome, Tca_util.Diag.t) result array
(** Run every (configuration, trace) entry through {!Pipeline.run}, one
    result per entry in entry order. Each distinct trace is pre-decoded
    exactly once before the fan-out (see {!Trace.decoded}), so repeated
    evaluation of the same trace — mode comparisons, frequency sweeps,
    repetitions — amortizes decode across the whole batch. [?par]
    (default serial) spreads the runs over a pool with bit-identical
    results: each run records into a fork of [?telemetry], and the
    children are joined back in entry order whatever [par] is.
    Failures are contained per entry: an [Error] (bad configuration), a
    watchdog truncation ([Ok (Partial _)] with the diag in place — see
    {!Pipeline.run}) or even an exception escaping one entry's decode
    or run (reported as [Error (Task_failure _)]) never poisons the
    other N-1 results. *)

val compare_modes :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  cfg:Config.t ->
  baseline:Trace.t ->
  accelerated:Trace.t ->
  unit ->
  (comparison, Tca_util.Diag.t) result
(** Run the baseline once and the accelerated trace under all four
    couplings. The five runs are independent; [?par] (default serial)
    runs them in parallel with identical results. Each run records into
    a fork of the [?telemetry] sink, joined back in canonical order
    (baseline first, then [Config.all_couplings] order), so the merged
    trace does not depend on [par] either. Watchdog-truncated runs are
    kept (with [partial] set), not turned into errors. [Error] on an
    invalid configuration or (pathological) zero-cycle accelerated
    run. *)

val compare_modes_exn :
  ?telemetry:Tca_telemetry.Sink.t ->
  ?par:Tca_util.Parmap.t ->
  cfg:Config.t -> baseline:Trace.t -> accelerated:Trace.t -> unit -> comparison

val find_mode_result :
  comparison -> Config.coupling -> (mode_result, Tca_util.Diag.t) result
(** [Error (Invalid _)] if the coupling is absent. *)

val find_mode_result_exn : comparison -> Config.coupling -> mode_result
