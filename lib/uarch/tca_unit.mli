(** A first-class tightly-coupled accelerator unit.

    The paper models a single accelerator instruction class whose
    coupling semantics live on the core configuration
    ({!Config.coupling}, {!Config.tca_occupancy}). Generalizing to N
    heterogeneous units, each unit carries its own overrides of those
    per-core knobs plus two per-unit properties that only exist in the
    multi-unit regime: an extra invocation latency (configuration /
    command-queue cost added to every invocation routed to the unit) and
    a commit-port policy deciding whether its result writebacks contend
    on the core's shared memory/commit ports or drain through a private
    port.

    An [Isa.accel] instruction names its unit by {!Isa.accel.unit_id};
    {!Config.t} holds the unit table ([tca_units], indexed by id). The
    default single-unit table — one {!default} unit 0 — inherits every
    per-core knob and adds no latency, so classic configurations are
    bit-identical to the pre-refactor semantics. *)

type occupancy = Pipelined | Exclusive
(** Mirrors {!Config.tca_occupancy}, but per unit: [Exclusive] makes
    invocations of {e this unit} serialize on the unit; different units
    never serialize on each other. *)

type commit_port = Shared | Private
(** Where the unit's write-backs arbitrate: [Shared] (default) uses the
    core's memory ports, contending with loads/stores and other shared
    units; [Private] gives the unit its own single write-back port. *)

type config_mode = Sync | Queued | Preprogrammed
(** How the unit is configured before an invocation may start — the
    simulator counterpart of the model's (T1)-(T3) terms
    ([Equations.config_overhead]):

    - [Sync]: the dispatching core issues [config_latency] cycles of
      synchronous CSR writes on the critical path of every invocation
      (dispatch stalls; counted as [Sim_stats.config_stall_cycles]).
    - [Queued]: a serial per-unit descriptor engine takes
      [config_latency] cycles per descriptor, overlapped with execution;
      dispatch only stalls when [config_queue_depth] descriptors are
      outstanding (counted as [Sim_stats.config_queue_stall_cycles]).
    - [Preprogrammed]: the unit is programmed once — the first
      invocation pays [config_latency] synchronously, the rest are
      free.

    With [config_latency = 0] (the default) all three are inert and the
    pipeline is byte-identical to the pre-t_config behaviour. *)

type t = {
  id : int;  (** matches [Isa.accel.unit_id]; position in [Config.tca_units] *)
  occupancy : occupancy option;  (** [None]: inherit [Config.tca_occupancy] *)
  allow_leading : bool option;  (** [None]: inherit [Config.coupling] *)
  allow_trailing : bool option;  (** [None]: inherit [Config.coupling] *)
  extra_invocation_latency : int;
      (** cycles added to every invocation's compute latency (>= 0) *)
  commit_port : commit_port;
  config_mode : config_mode;  (** [Sync] default (inert at latency 0) *)
  config_latency : int;
      (** [t_config] in cycles (>= 0); 0 disables configuration cost *)
  config_queue_depth : int;
      (** outstanding-descriptor bound of the [Queued] engine (>= 1) *)
}

val make :
  ?occupancy:occupancy ->
  ?allow_leading:bool ->
  ?allow_trailing:bool ->
  ?extra_invocation_latency:int ->
  ?commit_port:commit_port ->
  ?config_mode:config_mode ->
  ?config_latency:int ->
  ?config_queue_depth:int ->
  int ->
  t
(** [make id] with all overrides absent; raises [Invalid_argument] on a
    negative id, latency or config latency, or a non-positive config
    queue depth. [config_mode] defaults to [Sync], [config_latency] to 0
    (no configuration cost), [config_queue_depth] to 4. *)

val default : int -> t
(** [default id] = [make id]: inherits every per-core knob, adds no
    latency, shares the commit port — the unit that keeps single-TCA
    configurations bit-identical to their pre-[Tca_unit] behaviour. *)

val validate : t -> (t, Tca_util.Diag.t) result

val occupancy_name : occupancy -> string
val commit_port_name : commit_port -> string

val config_mode_name : config_mode -> string
(** ["sync"], ["queued"] or ["preprog"]. *)

val pp : Format.formatter -> t -> unit
