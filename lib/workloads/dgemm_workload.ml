open Tca_uarch
open Tca_dgemm

type config = {
  n : int;
  block : int;
  seed : int;
  a_base : int;
  b_base : int;
  c_base : int;
}

let config ?(block = 32) ?(seed = 1) ~n () =
  if n <= 0 then invalid_arg "Dgemm_workload.config: n must be positive";
  if block <= 0 || n mod block <> 0 then
    invalid_arg "Dgemm_workload.config: block must divide n";
  let bytes = 8 * n * n in
  let round_up x = (x + 4095) / 4096 * 4096 in
  let a_base = 0x0200_0000 in
  let b_base = a_base + round_up bytes in
  let c_base = b_base + round_up bytes in
  { n; block; seed; a_base; b_base; c_base }

(* Registers dedicated to the kernel (clear of Codegen's window). *)
let r_a = 30
let r_b = 31
let r_mul = 32
let r_acc = 33
let r_idx = 34

(* Static branch sites for the kernel loops: always-taken except the last
   iteration, which real loop branches also exhibit. *)
let k_loop_pc = 0x4000
let j_loop_pc = 0x4004
let sk_loop_pc = 0x4008

let unroll = 4

let addr cfg base i j = Matrix.addr_of ~base ~n:cfg.n ~i ~j

(* Inner kernel for one output element over one k-block:
   load C, then per k {load A, load B, multiply, accumulate} with loop
   overhead per [unroll] iterations, then store C. *)
let emit_element_kernel cfg b ~i ~j ~k0 =
  Trace.Builder.add b (Isa.load ~dst:r_acc ~addr:(addr cfg cfg.c_base i j) ());
  for ku = 0 to (cfg.block / unroll) - 1 do
    for u = 0 to unroll - 1 do
      let k = k0 + (ku * unroll) + u in
      Trace.Builder.add b (Isa.load ~dst:r_a ~addr:(addr cfg cfg.a_base i k) ());
      Trace.Builder.add b (Isa.load ~dst:r_b ~addr:(addr cfg cfg.b_base k j) ());
      Trace.Builder.add b (Isa.fp_mult ~src1:r_a ~src2:r_b ~dst:r_mul ());
      Trace.Builder.add b (Isa.fp_alu ~src1:r_mul ~src2:r_acc ~dst:r_acc ())
    done;
    Trace.Builder.add b (Isa.int_alu ~src1:r_idx ~dst:r_idx ());
    Trace.Builder.add_at_site b
      (Isa.branch ~pc:k_loop_pc ~src1:r_idx
         ~taken:(ku < (cfg.block / unroll) - 1)
         ())
  done;
  Trace.Builder.add b (Isa.store ~src:r_acc ~addr:(addr cfg cfg.c_base i j) ());
  (* j-loop overhead. *)
  Trace.Builder.add b (Isa.int_alu ~src1:r_idx ~dst:r_idx ());
  Trace.Builder.add b (Isa.int_alu ~src1:r_idx ~dst:r_idx ());
  Trace.Builder.add_at_site b (Isa.branch ~pc:j_loop_pc ~src1:r_idx ~taken:true ())

let kernel_uops_per_element cfg =
  1 (* load C *)
  + (cfg.block * 4) (* MAC loads and FP ops *)
  + (cfg.block / unroll * 2) (* k-loop overhead *)
  + 1 (* store C *)
  + 3 (* j-loop overhead *)

let for_each_block cfg f =
  let nb = cfg.n / cfg.block in
  for bi = 0 to nb - 1 do
    for bj = 0 to nb - 1 do
      for bk = 0 to nb - 1 do
        f ~i0:(bi * cfg.block) ~j0:(bj * cfg.block) ~k0:(bk * cfg.block)
      done
    done
  done

let baseline cfg =
  let per_block = cfg.block * cfg.block * kernel_uops_per_element cfg in
  let nb = cfg.n / cfg.block in
  let b = Trace.Builder.create ~capacity:(per_block * nb * nb * nb) () in
  (* Initialize the loop-counter register before any kernel reads it. *)
  Trace.Builder.add b (Isa.int_alu ~dst:r_idx ());
  for_each_block cfg (fun ~i0 ~j0 ~k0 ->
      for i = i0 to i0 + cfg.block - 1 do
        for j = j0 to j0 + cfg.block - 1 do
          emit_element_kernel cfg b ~i ~j ~k0
        done
      done);
  Trace.Builder.build b

(* Distinct cache lines of a [dim x dim] sub-block at (i, j). *)
let block_lines cfg base ~i ~j ~dim =
  let lines = ref [] in
  for r = 0 to dim - 1 do
    lines :=
      List.rev_append
        (Matrix.row_segment_lines ~base ~n:cfg.n ~i:(i + r) ~j ~elems:dim)
        !lines
  done;
  List.sort_uniq compare !lines

let accelerated cfg ~dim =
  if not (List.mem dim Mma.supported_dims) then
    invalid_arg "Dgemm_workload.accelerated: unsupported dim";
  if cfg.block mod dim <> 0 then
    invalid_arg "Dgemm_workload.accelerated: dim must divide block";
  let b = Trace.Builder.create () in
  (* Same loop-counter prologue as the baseline build. *)
  Trace.Builder.add b (Isa.int_alu ~dst:r_idx ());
  let nd = cfg.block / dim in
  let total_reads = ref 0 and total_writes = ref 0 and invocations = ref 0 in
  for_each_block cfg (fun ~i0 ~j0 ~k0 ->
      for si = 0 to nd - 1 do
        for sj = 0 to nd - 1 do
          (* Start a fresh accumulation chain for this C sub-block. *)
          Trace.Builder.add b (Isa.int_alu ~dst:r_acc ());
          for sk = 0 to nd - 1 do
            let i = i0 + (si * dim)
            and j = j0 + (sj * dim)
            and k = k0 + (sk * dim) in
            (* Addressing overhead the accelerated code still executes. *)
            Trace.Builder.add b (Isa.int_alu ~src1:r_idx ~dst:r_idx ());
            Trace.Builder.add b (Isa.int_alu ~src1:r_idx ~dst:r_a ());
            Trace.Builder.add b (Isa.int_alu ~src1:r_idx ~dst:r_b ());
            let reads =
              block_lines cfg cfg.a_base ~i ~j:k ~dim
              @ block_lines cfg cfg.b_base ~i:k ~j ~dim
              @ block_lines cfg cfg.c_base ~i ~j ~dim
            in
            let writes = block_lines cfg cfg.c_base ~i ~j ~dim in
            total_reads := !total_reads + List.length reads;
            total_writes := !total_writes + List.length writes;
            incr invocations;
            (* The chain through r_acc orders accumulations into the same
               C sub-block, as hardware dependence checks would. *)
            Trace.Builder.add b
              (Isa.accel ~src1:r_acc ~dst:r_acc
                 ~compute_latency:(Mma.compute_latency dim)
                 ~reads:(Array.of_list reads) ~writes:(Array.of_list writes)
                 ());
            Trace.Builder.add_at_site b
              (Isa.branch ~pc:sk_loop_pc ~src1:r_idx ~taken:(sk < nd - 1) ())
          done
        done
      done);
  (Trace.Builder.build b, !invocations, !total_reads, !total_writes)

let pair cfg ~dim =
  let base = baseline cfg in
  let accel, invocations, reads, writes = accelerated cfg ~dim in
  let non_accel_in_accel = Tca_uarch.Trace.length accel - invocations in
  let acceleratable_instrs =
    max 0 (Tca_uarch.Trace.length base - non_accel_in_accel)
  in
  let fi = float_of_int in
  (* Fresh (non-L1-resident) lines per invocation: the A and B blocks are
     brought in once per block-product and then reused by the
     (block/dim)^3 invocations of that product; the C block stays
     resident across the bk sweep. *)
  let lines_per_block_matrix = cfg.block * cfg.block * 8 / 64 in
  let invocations_per_product =
    let nd = cfg.block / dim in
    nd * nd * nd
  in
  let fresh =
    fi (2 * lines_per_block_matrix) /. fi invocations_per_product
  in
  Meta.make
    ~name:(Printf.sprintf "dgemm-%dx%d" dim dim)
    ~baseline:base ~accelerated:accel ~invocations ~acceleratable_instrs
    ~avg_reads:(fi reads /. fi invocations)
    ~avg_writes:(fi writes /. fi invocations)
    ~avg_fresh_lines:fresh
    ~compute_latency:(Mma.compute_latency dim) ()
