open Tca_uarch
open Tca_hashmap

type config = {
  n_lookups : int;
  app_instrs_per_lookup : int;
  capacity_pow2 : int;
  load_factor : float;
  hit_fraction : float;
  app : Codegen.config;
  seed : int;
}

let config ?(capacity_pow2 = 14) ?(load_factor = 0.6) ?(hit_fraction = 0.9)
    ?(app = Codegen.model_friendly_config) ?(seed = 1) ~n_lookups
    ~app_instrs_per_lookup () =
  if n_lookups <= 0 then invalid_arg "Hashmap_workload.config: n_lookups must be positive";
  if app_instrs_per_lookup < 0 then
    invalid_arg "Hashmap_workload.config: negative app_instrs_per_lookup";
  if load_factor <= 0.0 || load_factor > 0.85 then
    invalid_arg "Hashmap_workload.config: load_factor out of (0, 0.85]";
  if hit_fraction < 0.0 || hit_fraction > 1.0 then
    invalid_arg "Hashmap_workload.config: hit_fraction out of [0, 1]";
  {
    n_lookups;
    app_instrs_per_lookup;
    capacity_pow2;
    load_factor;
    hit_fraction;
    app;
    seed;
  }

(* Populate a table to the target load factor and pre-plan every lookup's
   probe trace, so both variants replay identical table behaviour. *)
let plan cfg =
  let rng = Tca_util.Prng.create (cfg.seed + 0x4a5) in
  let table = Table.create ~capacity_pow2:cfg.capacity_pow2 () in
  let n_keys =
    int_of_float (cfg.load_factor *. float_of_int (Table.capacity table))
  in
  let keys = Array.init n_keys (fun i -> (i * 7919) + 13) in
  Array.iter (fun k -> ignore (Table.insert table k (k * 3))) keys;
  let lookups =
    Array.init cfg.n_lookups (fun _ ->
        let key =
          if Tca_util.Prng.bernoulli rng cfg.hit_fraction then
            Tca_util.Prng.choose rng keys
          else 1_000_000_000 + Tca_util.Prng.int rng 1_000_000
        in
        Table.find table key)
  in
  (lookups, Table.mean_probes table)

let generate cfg =
  let lookups, _ = plan cfg in
  let mean_probes =
    Tca_util.Stats.mean_exn
      (Array.map (fun (r : Table.probe_result) -> float_of_int r.Table.probes) lookups)
  in
  let acceleratable = ref 0 in
  let total_lines = ref 0 in
  let build variant =
    let app_rng = Tca_util.Prng.create (cfg.seed + 0x99) in
    let gen = Codegen.create ~config:cfg.app ~rng:app_rng () in
    let gap_rng = Tca_util.Prng.create (cfg.seed + 0x77) in
    let b = Trace.Builder.create () in
    if variant = `Baseline then acceleratable := 0;
    if variant = `Accelerated then total_lines := 0;
    Array.iter
      (fun (r : Table.probe_result) ->
        let gap =
          if cfg.app_instrs_per_lookup = 0 then 0
          else
            let half = max 1 (cfg.app_instrs_per_lookup / 2) in
            Tca_util.Prng.int_in gap_rng
              (cfg.app_instrs_per_lookup - half)
              (cfg.app_instrs_per_lookup + half)
        in
        Codegen.emit_block gen b gap;
        (match variant with
        | `Baseline ->
            Cost_model.emit_find b ~bucket_addrs:r.Table.bucket_addrs;
            acceleratable :=
              !acceleratable + Cost_model.software_uops ~probes:r.Table.probes
        | `Accelerated ->
            Cost_model.emit_find_accel b ~bucket_addrs:r.Table.bucket_addrs;
            total_lines :=
              !total_lines
              + List.length
                  (List.sort_uniq compare
                     (List.map (fun a -> a land lnot 63) r.Table.bucket_addrs)));
        (* The application consumes the looked-up value. *)
        Trace.Builder.add b
          (Isa.int_alu ~src1:Cost_model.result_reg ~dst:1 ()))
      lookups;
    Trace.Builder.build b
  in
  let baseline = build `Baseline in
  let acceleratable_instrs = !acceleratable in
  let accelerated = build `Accelerated in
  let avg_reads = float_of_int !total_lines /. float_of_int cfg.n_lookups in
  (* Probed buckets are effectively random over the table; the fraction
     beyond what an L1 can keep resident arrives from the next level. *)
  let table_bytes = 16 * (1 lsl cfg.capacity_pow2) in
  let l1_bytes = 32 * 1024 in
  let miss_fraction =
    Float.max 0.0 (1.0 -. (float_of_int l1_bytes /. float_of_int table_bytes))
  in
  let pair =
    Meta.make ~name:"hashmap" ~baseline ~accelerated
      ~invocations:cfg.n_lookups ~acceleratable_instrs ~avg_reads
      ~avg_fresh_lines:(avg_reads *. miss_fraction)
      ~compute_latency:Cost_model.accel_compute_latency ()
  in
  (pair, mean_probes)
