(** Application-code μop generator shared by the workload builders.

    Emits a deterministic instruction mix (per-seed) with: recurring
    static branch sites of per-site bias (so predictors behave as on real
    loops), a bounded register dependence window controlling extractable
    ILP, and loads/stores over a configurable working set controlling L1
    behaviour. *)

type config = {
  branch_every : int;  (** one branch per this many μops; 0 = never *)
  hard_branch_fraction : float;
      (** fraction of branch sites with 50/50 outcomes *)
  branch_bias : float;
      (** taken probability magnitude of the remaining (easy) sites: a
          site is taken with probability [branch_bias] or
          [1 - branch_bias] *)
  load_every : int;  (** 0 = never *)
  store_every : int;
  mult_every : int;
  fp_every : int;
  working_set_bytes : int;
  dep_window : int;  (** registers cycled through as destinations *)
  n_branch_sites : int;
}

val default_config : config
(** Roughly SPECint-flavoured: branch every 6, 5% hard sites, 0.97 bias,
    load every 4, store every 9, mult every 17, fp every 13, 16 kB
    working set, 12-register window, 64 branch sites. *)

val model_friendly_config : config
(** The mix the validation microbenchmarks use: highly predictable
    branches (no hard sites, 0.998 bias, one branch per 8 μops) and a
    wider dependence window, so the core sits in the backend-limited
    steady state the analytical model (and the interval analysis it
    builds on) assumes. *)

type t

val create :
  ?config:config ->
  ?site_base:int ->
  ?reg_base:int ->
  ?data_base:int ->
  rng:Tca_util.Prng.t ->
  unit ->
  t
(** The generator owns the given rng substream. [site_base] places the
    generator's static branch sites (default 0x8000); two generators
    contributing to one trace must use disjoint bases or their
    conflicting biases alias in the predictor tables. [reg_base]
    (default 0) offsets the register dependence window to
    [reg_base, reg_base + dep_window) and [data_base] (default
    {!data_base}) relocates the working set: two generators contributing
    to one trace must also keep these disjoint, or their register and
    memory state alias — which changes program semantics, not just
    timing (see {!Tca_analysis.Equiv}). Neither parameter consumes PRNG
    draws, so the emitted instruction stream is isomorphic across bases
    for a fixed seed. *)

val emit : t -> Tca_uarch.Trace.Builder.t -> unit
(** Append one application μop. *)

val emit_block : t -> Tca_uarch.Trace.Builder.t -> int -> unit
(** Append [n] application μops. *)

val data_base : int
(** Base address of the generator's working-set region (static data,
    below any heap arena). *)
