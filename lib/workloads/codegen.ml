open Tca_uarch

type config = {
  branch_every : int;
  hard_branch_fraction : float;
  branch_bias : float;
  load_every : int;
  store_every : int;
  mult_every : int;
  fp_every : int;
  working_set_bytes : int;
  dep_window : int;
  n_branch_sites : int;
}

let default_config =
  {
    branch_every = 6;
    hard_branch_fraction = 0.05;
    branch_bias = 0.97;
    load_every = 4;
    store_every = 9;
    mult_every = 17;
    fp_every = 13;
    working_set_bytes = 16 * 1024;
    dep_window = 12;
    n_branch_sites = 64;
  }

let model_friendly_config =
  {
    default_config with
    branch_every = 8;
    hard_branch_fraction = 0.0;
    branch_bias = 0.998;
    dep_window = 16;
  }

let data_base = 0x0010_0000

(* A static branch site models one fixed instruction: constant PC,
   constant source register (real code cannot change its operand between
   executions of the same instruction), per-site direction bias. *)
type site = { pc : int; bias : float; src : int }

type t = {
  cfg : config;
  rng : Tca_util.Prng.t;
  sites : site array;
  reg_base : int;
  data_base : int;
  mutable emitted : int;
  mutable next_dst : int;
  mutable defined : int;
      (** window registers written so far, so sources never read a
          register before its first definition *)
}

let create ?(config = default_config) ?(site_base = 0x8000) ?(reg_base = 0)
    ?(data_base = data_base) ~rng () =
  if config.dep_window < 2 || config.dep_window > 40 then
    invalid_arg "Codegen.create: dep_window out of [2, 40]";
  if reg_base < 0 || reg_base + config.dep_window > Isa.num_arch_regs then
    invalid_arg "Codegen.create: register window out of the architectural file";
  if data_base < 0 then invalid_arg "Codegen.create: negative data_base";
  if config.n_branch_sites < 1 then
    invalid_arg "Codegen.create: need at least one branch site";
  if config.working_set_bytes < 64 then
    invalid_arg "Codegen.create: working set below one line";
  if config.branch_bias < 0.5 || config.branch_bias > 1.0 then
    invalid_arg "Codegen.create: branch_bias out of [0.5, 1]";
  let sites =
    Array.init config.n_branch_sites (fun i ->
        let hard = Tca_util.Prng.bernoulli rng config.hard_branch_fraction in
        let bias =
          if hard then 0.5
          else if Tca_util.Prng.bool rng then config.branch_bias
          else 1.0 -. config.branch_bias
        in
        {
          pc = site_base + (4 * i);
          bias;
          src = reg_base + Tca_util.Prng.int rng config.dep_window;
        })
  in
  {
    cfg = config;
    rng;
    sites;
    reg_base;
    data_base;
    emitted = 0;
    next_dst = 0;
    defined = 0;
  }

(* Destination registers cycle through [reg_base, reg_base + dep_window);
   sources reach a few registers back, creating dependence chains of
   controlled depth. *)
let fresh_dst t =
  let d = t.next_dst in
  t.next_dst <- (t.next_dst + 1) mod t.cfg.dep_window;
  if t.defined < t.cfg.dep_window then t.defined <- t.defined + 1;
  t.reg_base + d

(* Always consumes exactly one PRNG draw so the stream stays aligned
   whatever the warm-up state; before the first definition there is
   nothing to read and the operand is omitted. *)
let recent_src t =
  let back = 1 + Tca_util.Prng.int t.rng (t.cfg.dep_window - 1) in
  if t.defined = 0 then Isa.no_reg
  else
    let back = 1 + ((back - 1) mod min t.defined (t.cfg.dep_window - 1)) in
    t.reg_base
    + ((t.next_dst - back + (2 * t.cfg.dep_window)) mod t.cfg.dep_window)

let random_addr t =
  let lines = t.cfg.working_set_bytes / 64 in
  t.data_base
  + (64 * Tca_util.Prng.int t.rng lines)
  + (8 * Tca_util.Prng.int t.rng 8)

let due t every = every > 0 && t.emitted mod every = every - 1

(* Operands are drawn with explicit lets so every source is selected
   before [fresh_dst] advances the window — an instruction must never
   read the register it is about to define. *)
let emit t b =
  let c = t.cfg in
  (if due t c.branch_every then begin
     let site = Tca_util.Prng.choose t.rng t.sites in
     let taken = Tca_util.Prng.bernoulli t.rng site.bias in
     (* The site's fixed operand register, once it has been defined. *)
     let src1 =
       if site.src - t.reg_base < t.defined then site.src else Isa.no_reg
     in
     Trace.Builder.add_at_site b (Isa.branch ~pc:site.pc ~src1 ~taken ())
   end
   else if due t c.load_every then begin
     let base = recent_src t in
     let addr = random_addr t in
     let dst = fresh_dst t in
     Trace.Builder.add b (Isa.load ~base ~dst ~addr ())
   end
   else if due t c.store_every then begin
     let base = recent_src t in
     let src = recent_src t in
     let addr = random_addr t in
     Trace.Builder.add b (Isa.store ~base ~src ~addr ())
   end
   else begin
     let src1 = recent_src t in
     let src2 = recent_src t in
     let dst = fresh_dst t in
     if due t c.mult_every then
       Trace.Builder.add b (Isa.int_mult ~src1 ~src2 ~dst ())
     else if due t c.fp_every then
       Trace.Builder.add b (Isa.fp_alu ~src1 ~src2 ~dst ())
     else Trace.Builder.add b (Isa.int_alu ~src1 ~src2 ~dst ())
   end);
  t.emitted <- t.emitted + 1

let emit_block t b n =
  for _ = 1 to n do
    emit t b
  done
