open Tca_uarch

type config = {
  n_units : int;
  unit_len : int;
  n_chunks : int;
  accel_latency : int;
  app : Codegen.config;
  seed : int;
}

let config ?(unit_len = 50) ?(app = Codegen.model_friendly_config) ?(seed = 1)
    ~n_units ~n_chunks ~accel_latency () =
  if n_units <= 0 then invalid_arg "Synthetic.config: n_units must be positive";
  if unit_len <= 0 then invalid_arg "Synthetic.config: unit_len must be positive";
  if n_chunks < 0 || n_chunks > n_units then
    invalid_arg "Synthetic.config: n_chunks out of range";
  if accel_latency < 1 then invalid_arg "Synthetic.config: accel_latency below 1";
  { n_units; unit_len; n_chunks; accel_latency; app; seed }

let latency_for_factor ~unit_len ~ipc ~accel_factor =
  if ipc <= 0.0 || accel_factor <= 0.0 then
    invalid_arg "Synthetic.latency_for_factor: non-positive parameter";
  max 1 (int_of_float (Float.round (float_of_int unit_len /. (accel_factor *. ipc))))

(* Pick which units are acceleratable: a random subset, so invocations are
   NOT evenly spaced. *)
let choose_units rng cfg =
  let ids = Array.init cfg.n_units Fun.id in
  Tca_util.Prng.shuffle rng ids;
  let chosen = Array.make cfg.n_units false in
  for i = 0 to cfg.n_chunks - 1 do
    chosen.(ids.(i)) <- true
  done;
  chosen

let generate cfg =
  let rng = Tca_util.Prng.create cfg.seed in
  let placement_rng = Tca_util.Prng.split rng in
  let chosen = choose_units placement_rng cfg in
  let build variant =
    (* A fresh app-code generator with the same substream for both
       variants keeps the non-acceleratable instructions identical. *)
    let app_rng = Tca_util.Prng.create (cfg.seed + 0x5eed) in
    let gen = Codegen.create ~config:cfg.app ~rng:app_rng () in
    let chunk_rng = Tca_util.Prng.create (cfg.seed + 0xacce1) in
    (* Distinct branch-site base: the chunks' sites must not alias the
       surrounding application's sites in the predictor tables. The
       register window must also be disjoint from the application
       generator's: the accelerated variant replaces each chunk with an
       opaque invocation, so any chunk-written register the application
       later read would make the two variants compute different
       values. *)
    let chunk_reg_base =
      (* Disjoint from the application window [0, dep_window) whenever
         the register file is wide enough for two windows. *)
      min cfg.app.Codegen.dep_window
        (Isa.num_arch_regs - cfg.app.Codegen.dep_window)
    in
    let chunk_cfg =
      (* Chunks read the application's working set — loads are
         equivalence-legal (the audit reports them as an undeclared read
         footprint) and keep the baseline's lines exactly as warm as the
         accelerated variant's. Stores are not: a chunk store the
         application can observe is semantically an undeclared
         accelerator write, so the kernel keeps its state in registers. *)
      { cfg.app with Codegen.store_every = 0 }
    in
    let chunk_gen =
      Codegen.create ~config:chunk_cfg ~site_base:0xC000
        ~reg_base:chunk_reg_base ~rng:chunk_rng ()
    in
    (* An import prologue seeds every chunk register from the
       application window at chunk entry. The chunk's dataflow therefore
       serializes behind the application's in-flight values — the same
       boundary dependence the old shared-window generator created —
       but only inside the baseline region: the accelerated variant
       replaces the whole chunk, invocation included, with an opaque
       instruction, so its surrounding code keeps the overlap the
       tight-coupling modes assume. Region reads of application
       registers are equivalence-legal; region writes would not be. *)
    let n_import = min cfg.app.Codegen.dep_window cfg.unit_len in
    let b = Trace.Builder.create ~capacity:(cfg.n_units * cfg.unit_len) () in
    for u = 0 to cfg.n_units - 1 do
      if chosen.(u) then
        match variant with
        | `Baseline ->
            for i = 0 to n_import - 1 do
              Trace.Builder.add b
                (Isa.int_alu ~src1:i ~dst:(chunk_reg_base + i) ())
            done;
            Codegen.emit_block chunk_gen b (cfg.unit_len - n_import)
        | `Accelerated ->
            Trace.Builder.add b
              (Isa.accel ~compute_latency:cfg.accel_latency ~reads:[||]
                 ~writes:[||] ())
      else Codegen.emit_block gen b cfg.unit_len
    done;
    Trace.Builder.build b
  in
  Meta.make ~name:"synthetic"
    ~baseline:(build `Baseline)
    ~accelerated:(build `Accelerated)
    ~invocations:cfg.n_chunks
    ~acceleratable_instrs:(cfg.n_chunks * cfg.unit_len)
    ~compute_latency:cfg.accel_latency ()
