(** Multi-unit TCA scenarios: two heterogeneous accelerator units in one
    program, in the three compositions the extended model covers.

    Each scenario is a {!Meta.pair} (baseline vs accelerated trace)
    whose accelerated variant invokes {e two} TCA units — unit 0 with
    [latency0], unit 1 with [latency1] — plus the [Tca_unit] table to
    install via [Config.with_tca_units] and the per-unit usage counts
    the composed model ([Equations.composed_speedup]) needs:

    - {e Alternating}: the two units take turns inside one loop,
      separated by application code — independent invocations, the
      straight summed form of the composition rule.
    - {e Chained}: unit 0 (fast) feeds unit 1 (slow) through a register
      ([chain] fraction 0.5): unit 0's region exports its result, unit
      1's region imports it, and in the accelerated variant accel 0's
      [dst] is accel 1's [src1], so the consumer dispatches into the
      window its producer already drained.
    - {e Contended}: both units invoked back to back with declared read
      footprints on disjoint warm lines, so simultaneous invocations
      contend on the shared memory ports (and, in the model, on the
      shared commit port). *)

type kind = Alternating | Chained | Contended

val kind_name : kind -> string
(** ["multi-alternating"], ["multi-chained"], ["multi-contended"] — the
    {!Meta.t.name} of the generated pair and the registry/CLI scenario
    name. *)

val all_kinds : kind list

type config = {
  kind : kind;
  n_pairs : int;  (** loop iterations; each invokes both units once *)
  app_len : int;  (** application instructions before (between) chunks *)
  unit_len : int;  (** baseline instructions per acceleratable region *)
  latency0 : int;  (** unit 0 (fast) compute latency, cycles *)
  latency1 : int;  (** unit 1 (slow) compute latency, cycles *)
  seed : int;
}

val config :
  ?n_pairs:int ->
  ?app_len:int ->
  ?unit_len:int ->
  ?latency0:int ->
  ?latency1:int ->
  ?seed:int ->
  kind ->
  config
(** Defaults: 400 pairs (large enough that the cache-warmup transient
    is a small fraction of the run, as the model's steady-state IPC
    assumption needs), 60-instruction app blocks, 50-instruction
    regions, latencies 10 and 60, seed 1. Validates positive sizes and
    [unit_len >= 4]. *)

type unit_usage = {
  unit_id : int;
  invocations : int;
  acceleratable_instrs : int;
  compute_latency : int;
}
(** Per-unit inputs for the composed model: unit [i]'s [v_i] is
    [invocations / baseline_instrs], its [a_i] is
    [acceleratable_instrs / baseline_instrs]. *)

type scenario = {
  pair : Meta.pair;
  tca_units : Tca_uarch.Tca_unit.t array;
      (** install with [Config.with_tca_units] before simulating the
          accelerated trace *)
  usage : unit_usage list;
  chained_fraction : float;
      (** the composition's [chained] parameter: 0 for Alternating, 0.5
          for Chained and Contended *)
}

val generate : config -> scenario
