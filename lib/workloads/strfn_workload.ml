open Tca_uarch
open Tca_strfn

type config = {
  n_calls : int;
  n_strings : int;
  min_len : int;
  max_len : int;
  app_instrs_per_call : int;
  app : Codegen.config;
  seed : int;
}

let config ?(n_strings = 512) ?(min_len = 8) ?(max_len = 120)
    ?(app = Codegen.model_friendly_config) ?(seed = 1) ~n_calls
    ~app_instrs_per_call () =
  if n_calls <= 0 then invalid_arg "Strfn_workload.config: n_calls must be positive";
  if n_strings <= 1 then invalid_arg "Strfn_workload.config: need at least two strings";
  if min_len < 1 || max_len < min_len then
    invalid_arg "Strfn_workload.config: bad length range";
  if app_instrs_per_call < 0 then
    invalid_arg "Strfn_workload.config: negative app_instrs_per_call";
  { n_calls; n_strings; min_len; max_len; app_instrs_per_call; app; seed }

let alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_-/"

let random_string rng cfg =
  let len = Tca_util.Prng.int_in rng cfg.min_len cfg.max_len in
  String.init len (fun _ ->
      alphabet.[Tca_util.Prng.int rng (String.length alphabet)])

(* Pre-plan calls against a real arena: both variants replay identical
   scans. *)
let plan cfg =
  let rng = Tca_util.Prng.create (cfg.seed + 0x57f) in
  let arena =
    Arena.create ~capacity:((cfg.max_len + 2) * cfg.n_strings) ()
  in
  let strings = Array.init cfg.n_strings (fun _ -> random_string rng cfg) in
  let addrs = Array.map (Arena.add_string arena) strings in
  Array.init cfg.n_calls (fun _ ->
      let pick () = addrs.(Tca_util.Prng.int rng cfg.n_strings) in
      match Tca_util.Prng.int rng 3 with
      | 0 -> Arena.strlen arena (pick ())
      | 1 -> Arena.strcmp arena (pick ()) (pick ())
      | _ ->
          Arena.find_char arena (pick ())
            alphabet.[Tca_util.Prng.int rng (String.length alphabet)])

let generate cfg =
  let calls = plan cfg in
  let mean_bytes =
    Tca_util.Stats.mean_exn
      (Array.map
         (fun (s : Arena.scan) -> float_of_int s.Arena.bytes_inspected)
         calls)
  in
  let acceleratable = ref 0 in
  let total_lines = ref 0 in
  let build variant =
    let app_rng = Tca_util.Prng.create (cfg.seed + 0x21) in
    let gen = Codegen.create ~config:cfg.app ~rng:app_rng () in
    let gap_rng = Tca_util.Prng.create (cfg.seed + 0x43) in
    let b = Trace.Builder.create () in
    if variant = `Baseline then acceleratable := 0;
    if variant = `Accelerated then total_lines := 0;
    Array.iter
      (fun (scan : Arena.scan) ->
        let gap =
          if cfg.app_instrs_per_call = 0 then 0
          else
            let half = max 1 (cfg.app_instrs_per_call / 2) in
            Tca_util.Prng.int_in gap_rng
              (cfg.app_instrs_per_call - half)
              (cfg.app_instrs_per_call + half)
        in
        Codegen.emit_block gen b gap;
        (match variant with
        | `Baseline ->
            Cost_model.emit_call b ~addrs:scan.Arena.addrs;
            acceleratable :=
              !acceleratable
              + Cost_model.software_uops
                  ~bytes_inspected:scan.Arena.bytes_inspected
        | `Accelerated ->
            Cost_model.emit_call_accel b ~addrs:scan.Arena.addrs
              ~bytes_inspected:scan.Arena.bytes_inspected;
            total_lines :=
              !total_lines
              + List.length (Cost_model.lines_of_addrs scan.Arena.addrs));
        Trace.Builder.add b
          (Isa.int_alu ~src1:Cost_model.result_reg ~dst:3 ()))
      calls;
    Trace.Builder.build b
  in
  let baseline = build `Baseline in
  let acceleratable_instrs = !acceleratable in
  let accelerated = build `Accelerated in
  let avg_reads = float_of_int !total_lines /. float_of_int cfg.n_calls in
  (* The string pool is tens of kB: partially L1-resident. Fraction
     missing = pool beyond the L1. *)
  let pool_bytes = (cfg.max_len + 2) * cfg.n_strings in
  let miss_fraction =
    Float.max 0.0 (1.0 -. (float_of_int (32 * 1024) /. float_of_int pool_bytes))
  in
  let pair =
    Meta.make ~name:"strfn" ~baseline ~accelerated ~invocations:cfg.n_calls
      ~acceleratable_instrs ~avg_reads
      ~avg_fresh_lines:(avg_reads *. miss_fraction)
      ~compute_latency:
        (Cost_model.accel_compute_latency
           ~bytes_inspected:(int_of_float mean_bytes))
      ()
  in
  (pair, mean_bytes)
