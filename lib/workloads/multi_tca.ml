open Tca_uarch

type kind = Alternating | Chained | Contended

let kind_name = function
  | Alternating -> "multi-alternating"
  | Chained -> "multi-chained"
  | Contended -> "multi-contended"

let all_kinds = [ Alternating; Chained; Contended ]

type config = {
  kind : kind;
  n_pairs : int;
  app_len : int;
  unit_len : int;
  latency0 : int;
  latency1 : int;
  seed : int;
}

(* Enough iterations that the L1 is warm for the vast majority of the
   run: at the default sizes one pair is 220 baseline instructions, and
   the ~16 KiB working set stops missing after the first ~40 pairs. *)
let config ?(n_pairs = 400) ?(app_len = 60) ?(unit_len = 50) ?(latency0 = 10)
    ?(latency1 = 60) ?(seed = 1) kind =
  if n_pairs <= 0 then invalid_arg "Multi_tca.config: n_pairs must be positive";
  if app_len <= 0 then invalid_arg "Multi_tca.config: app_len must be positive";
  if unit_len < 4 then invalid_arg "Multi_tca.config: unit_len below 4";
  if latency0 < 1 || latency1 < 1 then
    invalid_arg "Multi_tca.config: latency below 1";
  { kind; n_pairs; app_len; unit_len; latency0; latency1; seed }

type unit_usage = {
  unit_id : int;
  invocations : int;
  acceleratable_instrs : int;
  compute_latency : int;
}

type scenario = {
  pair : Meta.pair;
  tca_units : Tca_unit.t array;
  usage : unit_usage list;
  chained_fraction : float;
}

(* The register that carries unit 0's result into unit 1's region in the
   [Chained] scenario. Outside both the application window [0, 16) and
   the chunk window [16, 32) of [Codegen.model_friendly_config], so
   nothing but the export/import instructions and the accel operands
   ever touch it. *)
let chain_reg = 40

(* Fixed per-unit read sets for the [Contended] scenario: the same warm
   lines every invocation, in an address range the application generator
   never touches, so both units' invocations contend on the shared
   memory ports rather than on cache capacity. *)
let contended_reads u =
  let base = if u = 0 then 0x0100_0000 else 0x0110_0000 in
  Array.init 8 (fun j -> base + (64 * j))

let generate cfg =
  let app_cfg = Codegen.model_friendly_config in
  (* Same layout reasoning as [Synthetic.generate]: a chunk register
     window disjoint from the application's, loads allowed, stores not
     (a chunk store the application could observe would be an undeclared
     accelerator write). *)
  let chunk_reg_base =
    min app_cfg.Codegen.dep_window
      (Isa.num_arch_regs - app_cfg.Codegen.dep_window)
  in
  let chunk_cfg = { app_cfg with Codegen.store_every = 0 } in
  let n_import = min app_cfg.Codegen.dep_window (cfg.unit_len - 2) in
  let latency u = if u = 0 then cfg.latency0 else cfg.latency1 in
  let build variant =
    let app_rng = Tca_util.Prng.create (cfg.seed + 0x5eed) in
    let gen = Codegen.create ~config:app_cfg ~rng:app_rng () in
    let chunk_rng = Tca_util.Prng.create (cfg.seed + 0xacce1) in
    let chunk_gen =
      Codegen.create ~config:chunk_cfg ~site_base:0xC000
        ~reg_base:chunk_reg_base ~rng:chunk_rng ()
    in
    let b =
      Trace.Builder.create
        ~capacity:(cfg.n_pairs * ((2 * cfg.app_len) + (2 * cfg.unit_len)))
        ()
    in
    (* One baseline chunk: an import prologue seeding the chunk window
       from live values (the boundary dependence every region has), the
       random kernel body, and optionally an export of the chunk's
       result into [chain_reg]. *)
    let emit_chunk ~import_from ~export =
      for i = 0 to n_import - 1 do
        let src =
          match import_from with Some r when i = 0 -> r | _ -> i
        in
        Trace.Builder.add b
          (Isa.int_alu ~src1:src ~dst:(chunk_reg_base + i) ())
      done;
      let body =
        cfg.unit_len - n_import - (match export with Some _ -> 1 | None -> 0)
      in
      Codegen.emit_block chunk_gen b body;
      match export with
      | Some r -> Trace.Builder.add b (Isa.int_alu ~src1:chunk_reg_base ~dst:r ())
      | None -> ()
    in
    let emit_accel u ~src1 ~dst ~reads =
      Trace.Builder.add b
        (Isa.accel ?src1 ?dst ~unit_id:u ~compute_latency:(latency u) ~reads
           ~writes:[||] ())
    in
    let emit_unit u =
      let import_from, export, src1, dst, reads =
        match cfg.kind with
        | Alternating -> (None, None, None, None, [||])
        | Chained when u = 0 -> (None, Some chain_reg, None, Some chain_reg, [||])
        | Chained -> (Some chain_reg, None, Some chain_reg, None, [||])
        | Contended -> (None, None, None, None, contended_reads u)
      in
      match variant with
      | `Baseline -> emit_chunk ~import_from ~export
      | `Accelerated -> emit_accel u ~src1 ~dst ~reads
    in
    for _ = 1 to cfg.n_pairs do
      Codegen.emit_block gen b cfg.app_len;
      emit_unit 0;
      (* Alternating interposes application code between the two
         invocations; Chained and Contended issue them back to back so
         both are simultaneously in flight. *)
      if cfg.kind = Alternating then Codegen.emit_block gen b cfg.app_len;
      emit_unit 1
    done;
    Trace.Builder.build b
  in
  let avg_reads =
    match cfg.kind with
    | Contended -> float_of_int (Array.length (contended_reads 0))
    | Alternating | Chained -> 0.0
  in
  let pair =
    Meta.make ~name:(kind_name cfg.kind)
      ~baseline:(build `Baseline)
      ~accelerated:(build `Accelerated)
      ~invocations:(2 * cfg.n_pairs)
      ~acceleratable_instrs:(2 * cfg.n_pairs * cfg.unit_len)
      ~avg_reads
      ~compute_latency:((cfg.latency0 + cfg.latency1) / 2)
      ()
  in
  {
    pair;
    tca_units = [| Tca_unit.default 0; Tca_unit.default 1 |];
    usage =
      List.map
        (fun u ->
          {
            unit_id = u;
            invocations = cfg.n_pairs;
            acceleratable_instrs = cfg.n_pairs * cfg.unit_len;
            compute_latency = latency u;
          })
        [ 0; 1 ];
    chained_fraction =
      (* The second invocation of every pair is chained/interleaved with
         the first in the Chained and Contended shapes — half of all
         invocations — and none are in Alternating. *)
      (match cfg.kind with Alternating -> 0.0 | Chained | Contended -> 0.5);
  }
