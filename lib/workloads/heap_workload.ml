open Tca_uarch
open Tca_heap

type config = {
  n_calls : int;
  app_instrs_per_call : int;
  app : Codegen.config;
  seed : int;
}

let config ?(app = Codegen.model_friendly_config) ?(seed = 1) ~n_calls
    ~app_instrs_per_call () =
  if n_calls <= 0 then invalid_arg "Heap_workload.config: n_calls must be positive";
  if app_instrs_per_call < 0 then
    invalid_arg "Heap_workload.config: negative app_instrs_per_call";
  { n_calls; app_instrs_per_call; app; seed }

let avg_call_uops =
  float_of_int (Cost_model.malloc_uops + Cost_model.free_uops) /. 2.0

let expected_call_fraction cfg =
  avg_call_uops /. (avg_call_uops +. float_of_int cfg.app_instrs_per_call)

(* The register application code uses to hand a pointer to free. Kept
   outside both the codegen window and the heap sequences' registers. *)
let ptr_reg = 46

type call = Malloc of int (* class *) | Free of int (* class *)

(* Pre-plan the call sequence against a real allocator so both variants
   perform the identical operations, and pre-warm the free lists so every
   malloc hits (the accelerated common case). *)
let plan_calls rng cfg =
  let heap = Tcmalloc.create () in
  let warm = (cfg.n_calls / 2) + 8 in
  let stash = Array.init warm (fun _ -> Tcmalloc.malloc heap (1 + Tca_util.Prng.int rng 128)) in
  Array.iter (Tcmalloc.free heap) stash;
  let live = ref [] in
  let n_live = ref 0 in
  let calls =
    Array.init cfg.n_calls (fun _ ->
        let do_malloc =
          !n_live = 0
          || (Tca_util.Prng.bool rng && Tcmalloc.malloc_hits_free_list heap 1)
        in
        if do_malloc then begin
          let size = 1 + Tca_util.Prng.int rng Size_class.max_small_size in
          let addr = Tcmalloc.malloc heap size in
          let cls = Option.get (Tcmalloc.class_of_block heap addr) in
          live := addr :: !live;
          incr n_live;
          Malloc cls
        end
        else begin
          match !live with
          | [] -> assert false
          | addr :: rest ->
              let cls = Option.get (Tcmalloc.class_of_block heap addr) in
              Tcmalloc.free heap addr;
              live := rest;
              decr n_live;
              Free cls
        end)
  in
  (calls, heap)

let generate cfg =
  let plan_rng = Tca_util.Prng.create (cfg.seed + 0x11ea) in
  let calls, heap = plan_calls plan_rng cfg in
  let acceleratable = ref 0 in
  let build variant =
    let app_rng = Tca_util.Prng.create (cfg.seed + 0xa44) in
    let gen = Codegen.create ~config:cfg.app ~rng:app_rng () in
    let gap_rng = Tca_util.Prng.create (cfg.seed + 0x9a4) in
    let heap_rng = Tca_util.Prng.create (cfg.seed + 0xf111) in
    let b = Trace.Builder.create () in
    if variant = `Baseline then acceleratable := 0;
    Array.iter
      (fun call ->
        let gap =
          if cfg.app_instrs_per_call = 0 then 0
          else
            let half = max 1 (cfg.app_instrs_per_call / 2) in
            Tca_util.Prng.int_in gap_rng
              (cfg.app_instrs_per_call - half)
              (cfg.app_instrs_per_call + half)
        in
        Codegen.emit_block gen b gap;
        match call with
        | Malloc cls ->
            let head_addr = Tcmalloc.freelist_head_addr heap cls in
            (match variant with
            | `Baseline ->
                Cost_model.emit_malloc b ~rng:heap_rng ~head_addr;
                acceleratable := !acceleratable + Cost_model.malloc_uops
            | `Accelerated -> Cost_model.emit_malloc_accel b);
            (* Application consumes the returned pointer right away: a
               store through it and a dependent reload. The address must
               stay clear of everything the allocator sequences touch —
               free-list heads at [head_addr .. head_addr+16] and filler
               metadata at [head_addr+64 .. head_addr+191] — because in
               the accelerated variant those writes belong to the
               (opaque) accelerator, and an aliasing application store
               would make the two variants' memory images diverge. *)
            let block_addr = head_addr + 0x400 in
            Trace.Builder.add b
              (Isa.store ~base:Cost_model.result_reg ~addr:block_addr ());
            Trace.Builder.add b
              (Isa.load ~base:Cost_model.result_reg ~dst:ptr_reg ~addr:block_addr ())
        | Free cls ->
            let head_addr = Tcmalloc.freelist_head_addr heap cls in
            (* The pointer argument comes from application state. *)
            Trace.Builder.add b (Isa.int_alu ~src1:ptr_reg ~dst:ptr_reg ());
            (match variant with
            | `Baseline ->
                Cost_model.emit_free b ~rng:heap_rng ~head_addr ~ptr_reg;
                acceleratable := !acceleratable + Cost_model.free_uops
            | `Accelerated -> Cost_model.emit_free_accel b ~ptr_reg))
      calls;
    Trace.Builder.build b
  in
  let baseline = build `Baseline in
  let acceleratable_instrs = !acceleratable in
  let accelerated = build `Accelerated in
  Meta.make ~name:"heap" ~baseline ~accelerated ~invocations:cfg.n_calls
    ~acceleratable_instrs ~compute_latency:Cost_model.accel_latency ()
