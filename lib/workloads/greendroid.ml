type fn = { name : string; static_instrs : int }

let functions =
  [
    { name = "dalvik_interp_dispatch"; static_instrs = 140 };
    { name = "skia_blit_row"; static_instrs = 260 };
    { name = "jpeg_idct_block"; static_instrs = 480 };
    { name = "png_inflate_window"; static_instrs = 350 };
    { name = "text_layout_run"; static_instrs = 520 };
    { name = "gc_mark_object"; static_instrs = 180 };
    { name = "regex_match_inner"; static_instrs = 640 };
    { name = "audio_mix_frame"; static_instrs = 300 };
    { name = "xml_parse_token"; static_instrs = 760 };
  ]

let accel_factor = 1.5

let granularities () =
  Array.of_list (List.map (fun f -> float_of_int f.static_instrs) functions)

let mean_granularity () = Tca_util.Stats.mean_exn (granularities ())

let heap_manager_granularity =
  float_of_int (Tca_heap.Cost_model.malloc_uops + Tca_heap.Cost_model.free_uops)
  /. 2.0
