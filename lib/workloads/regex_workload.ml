open Tca_uarch
open Tca_regex

type config = {
  n_records : int;
  record_len : int;
  pattern : string;
  match_fraction : float;
  app_instrs_per_record : int;
  app : Codegen.config;
  seed : int;
}

let default_pattern = "err(or)?[0-9]+"

let config ?(record_len = 256) ?(pattern = default_pattern)
    ?(match_fraction = 0.3) ?(app = Codegen.model_friendly_config) ?(seed = 1)
    ~n_records ~app_instrs_per_record () =
  if n_records <= 0 then invalid_arg "Regex_workload.config: n_records must be positive";
  if record_len < 8 then invalid_arg "Regex_workload.config: record_len below 8";
  if app_instrs_per_record < 0 then
    invalid_arg "Regex_workload.config: negative app_instrs_per_record";
  if match_fraction < 0.0 || match_fraction > 1.0 then
    invalid_arg "Regex_workload.config: match_fraction out of [0, 1]";
  (match Pattern.parse pattern with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Regex_workload.config: bad pattern: " ^ e));
  {
    n_records;
    record_len;
    pattern;
    match_fraction;
    app_instrs_per_record;
    app;
    seed;
  }

let text_base = 0x3000_0000

(* Filler text over a lowercase-ish alphabet that cannot accidentally
   complete the default pattern (no digits). *)
let filler_alphabet = "abcdfghjklmnpqstuvwxyz .,;:"

let make_record rng cfg ~planted =
  let b = Bytes.create cfg.record_len in
  for i = 0 to cfg.record_len - 1 do
    Bytes.set b i
      filler_alphabet.[Tca_util.Prng.int rng (String.length filler_alphabet)]
  done;
  if planted then begin
    let needle = Printf.sprintf "error%d" (Tca_util.Prng.int rng 100) in
    let max_at = cfg.record_len - String.length needle - 1 in
    let at = Tca_util.Prng.int rng (max 1 max_at) in
    Bytes.blit_string needle 0 b at (String.length needle)
  end;
  Bytes.to_string b

(* Pre-plan every search against the real engine so both variants replay
   identical scan behaviour. *)
let plan cfg =
  let rng = Tca_util.Prng.create (cfg.seed + 0x8e6) in
  let engine = Engine.compile (Pattern.parse_exn cfg.pattern) in
  Array.init cfg.n_records (fun i ->
      let planted = Tca_util.Prng.bernoulli rng cfg.match_fraction in
      let record = make_record rng cfg ~planted in
      let result = Engine.search engine record in
      (* Sanity: planted matches must be found. *)
      if planted && not result.Engine.found then
        failwith "Regex_workload: planted match not found by the engine";
      (i * cfg.record_len, result.Engine.chars_scanned))

let generate cfg =
  let searches = plan cfg in
  let mean_scan =
    Tca_util.Stats.mean_exn
      (Array.map (fun (_, c) -> float_of_int c) searches)
  in
  let acceleratable = ref 0 in
  let total_lines = ref 0 in
  let build variant =
    let app_rng = Tca_util.Prng.create (cfg.seed + 0x3e) in
    let gen = Codegen.create ~config:cfg.app ~rng:app_rng () in
    let gap_rng = Tca_util.Prng.create (cfg.seed + 0x5c) in
    let b = Trace.Builder.create () in
    if variant = `Baseline then acceleratable := 0;
    if variant = `Accelerated then total_lines := 0;
    Array.iter
      (fun (offset, chars_scanned) ->
        let gap =
          if cfg.app_instrs_per_record = 0 then 0
          else
            let half = max 1 (cfg.app_instrs_per_record / 2) in
            Tca_util.Prng.int_in gap_rng
              (cfg.app_instrs_per_record - half)
              (cfg.app_instrs_per_record + half)
        in
        Codegen.emit_block gen b gap;
        (match variant with
        | `Baseline ->
            Cost_model.emit_search b ~text_base ~start:offset ~chars_scanned;
            acceleratable := !acceleratable + Cost_model.software_uops ~chars_scanned
        | `Accelerated ->
            Cost_model.emit_search_accel b ~text_base ~start:offset
              ~chars_scanned;
            total_lines :=
              !total_lines
              + List.length
                  (Cost_model.scanned_lines ~text_base ~start:offset
                     ~chars_scanned));
        Trace.Builder.add b
          (Isa.int_alu ~src1:Cost_model.result_reg ~dst:2 ()))
      searches;
    Trace.Builder.build b
  in
  let baseline = build `Baseline in
  let acceleratable_instrs = !acceleratable in
  let accelerated = build `Accelerated in
  let avg_reads = float_of_int !total_lines /. float_of_int cfg.n_records in
  (* A streaming scan over a large corpus rarely finds its text in the
     L1: every line is a first touch. *)
  let pair =
    Meta.make ~name:"regex" ~baseline ~accelerated ~invocations:cfg.n_records
      ~acceleratable_instrs ~avg_reads ~avg_fresh_lines:avg_reads
      ~compute_latency:
        (Tca_regex.Cost_model.accel_compute_latency
           ~chars_scanned:(int_of_float mean_scan))
      ()
  in
  (pair, mean_scan)
