(** Seeded adversarial-input generators for the fault-injection harness.

    [Faultgen] produces hostile values — NaN, infinities, negative zero,
    denormals, huge magnitudes, empty and ragged aggregates — mixed with
    ordinary in-range values, all driven by a deterministic {!Prng} so a
    failing case is reproducible from its seed. The *_spec records mirror
    the shapes of the model's [Params] and the simulator's [Config]
    without depending on those libraries; the fuzz harness maps them onto
    the real smart constructors and asserts that every outcome is an [Ok]
    with finite contents or a structured [Diag.t] — never an escaped
    exception. *)

type t

val create : seed:int -> t
(** Equal seeds yield equal adversarial streams. *)

val fork : t -> t
(** Independent child stream. *)

val float_adversarial : t -> float
(** Any float: NaN, [infinity], [neg_infinity], [0.], [-0.], denormals,
    [max_float]-scale magnitudes, negatives, and ordinary values. *)

val finite_float : t -> lo:float -> hi:float -> float
(** Ordinary finite value in [\[lo, hi\]]. *)

val fraction_adversarial : t -> float
(** Mostly in [\[0, 1\]]; sometimes outside it or non-finite. *)

val positive_adversarial : t -> float
(** Mostly positive and ordinary; sometimes zero, negative, huge, tiny or
    non-finite. *)

val int_adversarial : t -> int
(** Mostly small non-negative; sometimes zero, negative, or huge. *)

val size_adversarial : t -> max:int -> int
(** Mostly in [\[1, max\]]; sometimes 0, negative or far beyond [max]. *)

val array_adversarial : ?max_len:int -> t -> (t -> float) -> float array
(** Array of generated values; sometimes empty. *)

val matrix_adversarial : t -> float array array
(** Small float matrix; sometimes empty, sometimes ragged, cells drawn
    from {!float_adversarial}. *)

(** {2 Engine-layer faults}

    The shapes a misbehaving experiment job or a damaged cache file can
    take, for the engine fault-injection harness. The generator only
    names the fault; mapping it onto a job body lives in
    [Tca_engine.Inject] so this module stays dependency-free. *)

type engine_fault =
  | Raise  (** the job body raises a permanent exception *)
  | Transient_failures of int
      (** the body fails the first [n] attempts ([1 <= n <= 3]) with a
          transient error, then succeeds — exercises bounded retry *)
  | Hang  (** the body spins until the per-job deadline trips *)
  | Corrupt_artifact
      (** the body returns a structurally valid but wrong artifact *)

val engine_fault : t -> engine_fault

val corrupt_string : t -> string -> string
(** Damage a byte string the way torn writes and bit rot do: truncate at
    a random offset (possibly to empty), flip one random bit, or
    truncate then flip. Never returns the input unchanged; the empty
    input yields a single NUL byte. *)

(** Shape of the analytical model's core parameters (mirrors
    [Tca_model.Params.core]). *)
type core_spec = {
  ipc : float;
  rob_size : int;
  issue_width : int;
  commit_stall : float;
  drain_beta : float;
}

val core_spec : t -> core_spec

(** Shape of a workload scenario (mirrors [Tca_model.Params.scenario]):
    exactly one of [factor]/[latency] is meaningful, selected by
    [use_factor]. *)
type scenario_spec = {
  a : float;
  v : float;
  use_factor : bool;
  factor : float;
  latency : float;
  drain_fixed : float option;  (** [Some t] forces a fixed drain time *)
}

val scenario_spec : t -> scenario_spec

(** Shape of the cycle-level simulator's structural knobs (mirrors the
    integer fields of [Tca_uarch.Config.t]). *)
type uarch_spec = {
  dispatch_width : int;
  u_issue_width : int;
  commit_width : int;
  u_rob_size : int;
  iq_size : int;
  lsq_size : int;
  int_alu_units : int;
  int_mult_units : int;
  fp_units : int;
  mem_ports : int;
  frontend_depth : int;
  commit_depth : int;
  speculate_fraction : float option;
  watchdog_cycles : int option;  (** maps onto [Config.max_cycles] *)
}

val uarch_spec : t -> uarch_spec
