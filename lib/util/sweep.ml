open Diag.Syntax

let linspace lo hi n =
  let* lo = Diag.finite ~field:"Sweep.linspace.lo" lo in
  let* hi = Diag.finite ~field:"Sweep.linspace.hi" hi in
  let* n = Diag.at_least ~field:"Sweep.linspace.n" ~min:2 n in
  (* Finite endpoints can still overflow their span (lo = -1e308,
     hi = 1e308); the points would all be infinite. *)
  let* _ = Diag.finite ~field:"Sweep.linspace.range" (hi -. lo) in
  let step = (hi -. lo) /. float_of_int (n - 1) in
  let arr = Array.init n (fun i -> lo +. (float_of_int i *. step)) in
  (* A span within a few ulp of [max_float] passes the range check yet
     overflows at the far endpoint ([(n-1) *. step] rounds up). *)
  if Array.for_all Float.is_finite arr then Ok arr
  else
    Error (Diag.Non_finite { field = "Sweep.linspace.point"; value = infinity })

let linspace_exn lo hi n = Diag.ok_exn (linspace lo hi n)

let logspace lo hi n =
  let* lo = Diag.positive ~field:"Sweep.logspace.lo" lo in
  let* hi = Diag.positive ~field:"Sweep.logspace.hi" hi in
  let* pts = linspace (log10 lo) (log10 hi) n in
  let arr = Array.map (fun e -> 10.0 ** e) pts in
  (* [10.0 ** log10 max_float]-scale endpoints round up to infinity. *)
  if Array.for_all Float.is_finite arr then Ok arr
  else
    Error (Diag.Non_finite { field = "Sweep.logspace.point"; value = infinity })

let logspace_exn lo hi n = Diag.ok_exn (logspace lo hi n)

let int_range lo hi =
  if hi < lo then [||] else Array.init (hi - lo + 1) (fun i -> lo + i)

let geometric_ints lo hi ratio =
  let* _ = Diag.positive_int ~field:"Sweep.geometric_ints.lo" lo in
  let* ratio =
    match Diag.finite ~field:"Sweep.geometric_ints.ratio" ratio with
    | Error _ as e -> e
    | Ok r when r <= 1.0 ->
        Error
          (Diag.Domain
             { field = "Sweep.geometric_ints.ratio"; lo = 1.0; hi = infinity;
               actual = r })
    | Ok r -> Ok r
  in
  (* Bound both hazards of hostile arguments: [float -> int] conversion
     past [max_int] is unspecified (and used to collapse the step to +1,
     turning the loop into ~1e18 iterations), and a ratio barely above 1
     against a huge [hi] yields astronomically many points. *)
  let max_points = 100_000 in
  let rec build acc count x =
    if x > hi then Ok acc
    else if count >= max_points then
      Error
        (Diag.Invalid
           { field = "Sweep.geometric_ints";
             message =
               Printf.sprintf "more than %d points; raise ratio or shrink range"
                 max_points })
    else
      let acc = x :: acc in
      let fnext = Float.round (float_of_int x *. ratio) in
      if fnext > float_of_int hi then Ok acc
      else
        let n = int_of_float fnext in
        let next = if n <= x then x + 1 else n in
        build acc (count + 1) next
  in
  let* pts = build [] 0 lo in
  let pts = match pts with last :: _ when last < hi -> hi :: pts | _ -> pts in
  Ok (Array.of_list (List.rev pts))

let geometric_ints_exn lo hi ratio = Diag.ok_exn (geometric_ints lo hi ratio)
