(** A pluggable parallel-map capability.

    Low layers (the model's sweeps, the simulator's mode comparison)
    accept a [Parmap.t] so a scheduler higher in the stack can inject a
    domain pool without those layers depending on it. The contract every
    implementation must honour:

    - [run f xs] returns exactly [Array.map f xs]: one result per input,
      in input order, regardless of execution order;
    - [f] may run on any domain, concurrently with other elements, so it
      must not share mutable state across elements;
    - if any [f x] raises, [run] raises the exception of the {e
      lowest-indexed} failing element, after all elements have settled.

    [serial] is the identity implementation: plain [Array.map] on the
    calling domain. Code written against this interface is
    deterministic by construction — swapping [serial] for a pool must
    not change any result, only wall-clock time. *)

type t = { run : 'a 'b. ('a -> 'b) -> 'a array -> 'b array }

val serial : t
(** [Array.map] on the calling domain. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** List façade over [run], preserving order. *)

val concat_map_list : t -> ('a -> 'b list) -> 'a list -> 'b list
(** [List.concat_map] with the element bodies run through [run]. *)
