(** Structured diagnostics: the typed error layer of the library.

    Every fallible entry point of the model and the simulator returns
    [('a, Diag.t) result] so that a design-space sweep over thousands of
    parameter points can skip-and-record a bad point instead of aborting,
    and so that callers (the CLI, the fuzz harness) can map a failure to a
    precise, machine-readable diagnostic and a stable exit code.

    Convention: for a converted function [f], [f] returns a [result] and
    [f_exn] is a thin wrapper that raises {!Error} — use it where the
    inputs are correct by construction. An [Ok] result never carries a
    non-finite float. *)

type t =
  | Domain of { field : string; lo : float; hi : float; actual : float }
      (** [actual] falls outside the valid interval [\[lo, hi\]] (the
          closure of the valid set; strict bounds are reported with the
          same interval). *)
  | Non_finite of { field : string; value : float }
      (** A NaN or infinity reached a smart constructor, or a computation
          produced one where a finite number was required. *)
  | Empty_input of { field : string }
      (** An aggregate (mean, peak, summary, ...) over nothing. *)
  | Ragged_input of { field : string; expected : int; actual : int }
      (** Mismatched lengths: ragged matrix rows, label/row count
          mismatch, paired arrays of different sizes. *)
  | Watchdog of { cycles : int; committed : int; total : int }
      (** The simulator's cycle watchdog expired after [cycles] cycles
          with [committed] of [total] trace instructions committed. *)
  | Parse of { field : string; input : string; message : string }
      (** Unparseable textual input (CLI arguments, trace files). *)
  | Invalid of { field : string; message : string }
      (** Structural invariant violation not covered by the variants
          above (e.g. a singular value, an inconsistent configuration). *)
  | Task_failure of {
      job : string;  (** scheduler job name *)
      fingerprint : string;  (** digest of the job's params fingerprint *)
      exn : string;  (** [Printexc.to_string] of the escaped exception *)
      backtrace : string;
          (** raw backtrace at the supervisor's catch point; empty when
              backtrace recording is off. Excluded from {!pp} so the
              rendered diagnostic is identical whatever the scheduling
              mode — surface it separately when debugging. *)
    }
      (** A supervised engine task raised instead of returning an
          artifact. Produced by the scheduler's per-task supervisor, never
          by the model/simulator layers. *)
  | Deadline of { job : string; seconds : float }
      (** A supervised engine task exceeded its per-job wall-clock budget
          of [seconds] (the configured budget, not the measured elapsed
          time, so reports stay deterministic). The engine-level analogue
          of the simulator's {!Watchdog}. *)

exception Error of t
(** Raised by the [*_exn] wrappers. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val exit_code : t -> int
(** Stable process exit code per diagnostic class (documented in the
    README): Parse 2, Domain 3, Non_finite 4, Empty_input 5,
    Ragged_input 6, Invalid 7, Watchdog 8, Task_failure 9, Deadline 10.
    0 and 1 are never returned (success and generic failure). *)

val ok_exn : ('a, t) result -> 'a
(** [Ok x -> x]; [Error d -> raise (Error d)]. *)

val error_to_msg : ('a, t) result -> ('a, [ `Msg of string ]) result
(** Adapter for [Cmdliner.Arg.conv]-style consumers. *)

(** {2 Checks}

    Each check returns its argument on success so it can be chained with
    [let*]. Float checks reject NaN and infinities first. *)

val finite : field:string -> float -> (float, t) result
val in_range : field:string -> lo:float -> hi:float -> float -> (float, t) result
val positive : field:string -> float -> (float, t) result
val non_negative : field:string -> float -> (float, t) result
val positive_int : field:string -> int -> (int, t) result
val at_least : field:string -> min:int -> int -> (int, t) result
val non_empty : field:string -> 'a array -> ('a array, t) result

val same_length :
  field:string -> 'a array -> 'b array -> (unit, t) result
(** [Ragged_input] when the two arrays differ in length. *)

module Syntax : sig
  val ( let* ) : ('a, t) result -> ('a -> ('b, t) result) -> ('b, t) result
  val ( let+ ) : ('a, t) result -> ('a -> 'b) -> ('b, t) result
end
