type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_res t bound =
  match Diag.positive_int ~field:"Prng.int.bound" bound with
  | Error _ as e -> e
  | Ok bound -> Ok (int t bound)

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let int_in_res t lo hi =
  match Diag.at_least ~field:"Prng.int_in.hi" ~min:lo hi with
  | Error _ as e -> e
  | Ok hi ->
      (* [hi - lo + 1] overflows when the range spans most of the int
         domain (e.g. [min_int + 1, max_int]); [int] would then see a
         negative bound. *)
      if hi - lo + 1 <= 0 then
        Error
          (Diag.Invalid
             { field = "Prng.int_in"; message = "range width overflows int" })
      else Ok (int_in t lo hi)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_res t arr =
  match Diag.non_empty ~field:"Prng.choose" arr with
  | Error _ as e -> e
  | Ok arr -> Ok (choose t arr)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = { state = mix (next t) }
