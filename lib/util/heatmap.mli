(** ASCII heatmap rendering for the Fig. 7-style speedup/slowdown maps.

    Values are speedups: [> 1] renders on the "speedup" ramp, [< 1] on the
    "slowdown" ramp (the paper uses red and blue; a terminal gets
    characters of increasing density instead). *)

type t
(** A labelled grid of speedups plus optional overlay markers. Row 0 is
    printed first. *)

val make :
  values:float array array ->
  row_labels:string array ->
  col_labels:string array ->
  (t, Diag.t) result
(** Validates that dimensions agree: [Error (Empty_input _)] on an empty
    grid, [Error (Ragged_input _)] on ragged rows or label/row count
    mismatches. *)

val make_exn :
  values:float array array ->
  row_labels:string array ->
  col_labels:string array ->
  t
(** Raises {!Diag.Error}. *)

val cell_char : float -> char
(** Character for one speedup value: ['#'] strong speedup down to ['.']
    mild, [' '] neutral (within 2% of 1.0), and ['-'/'='/'%'/'@'] for
    increasingly strong slowdown. *)

val render : ?title:string -> t -> string
(** Render grid with axis labels and a legend. *)

val overlay : t -> (int * int) list -> char -> t
(** [overlay t cells c] returns a copy where the listed (row, col) cells
    will render as the marker character [c] (used to draw the heap-manager
    and GreenDroid curves over the map). Out-of-range cells are ignored. *)
