(** Atomic whole-file writes: temp file in the target directory, then
    [Sys.rename].

    Readers of [path] see either the previous contents or the complete
    new contents, never a truncated mix — an interrupted bench, an
    aborted [--out DIR] export or a [kill -9] mid-write can no longer
    leave a half-written JSON for a downstream consumer to choke on.
    The temp file lives in the same directory as the target so the
    rename stays on one filesystem (rename is atomic only then); a
    failed write removes its temp file. *)

val write : string -> string -> (unit, Diag.t) result
(** [write path contents] replaces [path] atomically.
    [Error (Invalid _)] when the directory is unwritable or the rename
    fails; the target is untouched in that case. *)

val write_exn : string -> string -> unit
(** @raise Diag.Error on failure. *)
