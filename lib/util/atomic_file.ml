let write path contents =
  let dir = Filename.dirname path in
  match
    Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path) ".tmp"
  with
  | exception Sys_error message ->
      Error
        (Diag.Invalid
           { field = "Atomic_file.write"; message = path ^ ": " ^ message })
  | tmp -> (
      let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
      match
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc contents);
        Sys.rename tmp path
      with
      | () -> Ok ()
      | exception Sys_error message ->
          cleanup ();
          Error
            (Diag.Invalid
               { field = "Atomic_file.write"; message = path ^ ": " ^ message })
      )

let write_exn path contents = Diag.ok_exn (write path contents)
