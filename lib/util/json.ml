type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b ~indent ~level v =
  let nl_sep lvl =
    if indent then "\n" ^ String.make (2 * lvl) ' ' else ""
  in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape_string s);
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (nl_sep (level + 1));
          write b ~indent ~level:(level + 1) item)
        items;
      Buffer.add_string b (nl_sep level);
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (nl_sep (level + 1));
          Buffer.add_char b '"';
          Buffer.add_string b (escape_string k);
          Buffer.add_string b (if indent then "\": " else "\":");
          write b ~indent ~level:(level + 1) item)
        fields;
      Buffer.add_string b (nl_sep level);
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b ~indent:false ~level:0 v;
  Buffer.contents b

let to_string_indent v =
  let b = Buffer.create 256 in
  write b ~indent:true ~level:0 v;
  Buffer.contents b

let pp fmt v = Format.pp_print_string fmt (to_string v)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None

(* --- parser --- *)

exception Parse_error of int * string

let parse_fail pos msg = raise (Parse_error (pos, msg))

let parse_doc s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> parse_fail !pos (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else parse_fail !pos (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_fail !pos "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
            if !pos >= n then parse_fail !pos "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char b e;
                go ()
            | 'n' -> Buffer.add_char b '\n'; go ()
            | 't' -> Buffer.add_char b '\t'; go ()
            | 'r' -> Buffer.add_char b '\r'; go ()
            | 'b' -> Buffer.add_char b '\b'; go ()
            | 'f' -> Buffer.add_char b '\012'; go ()
            | 'u' ->
                if !pos + 4 > n then parse_fail !pos "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> parse_fail !pos "bad \\u escape"
                in
                pos := !pos + 4;
                (* Encode the code point as UTF-8; surrogate pairs are not
                   recombined (the producers in this repo never emit
                   non-BMP text). *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end;
                go ()
            | _ -> parse_fail (!pos - 1) "unknown escape")
        | c ->
            Buffer.add_char b c;
            go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_int = ref true in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some '0' .. '9' ->
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    if peek () = Some '.' then begin
      is_int := false;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_int := false;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_int then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Out-of-range integer literal: fall back to float. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> parse_fail start "malformed number")
    else
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> parse_fail start "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_fail !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> parse_fail !pos "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> parse_fail !pos "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_fail !pos (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_fail !pos "trailing garbage after document";
  v

let truncate_input s =
  if String.length s <= 64 then s else String.sub s 0 61 ^ "..."

let parse s =
  match parse_doc s with
  | v -> Ok v
  | exception Parse_error (pos, message) ->
      Error
        (Diag.Parse
           {
             field = "Json.parse";
             input = truncate_input s;
             message = Printf.sprintf "at offset %d: %s" pos message;
           })

let parse_exn s = Diag.ok_exn (parse s)
