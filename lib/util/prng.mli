(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the repository (workload generators,
    microbenchmark placement, qcheck seeds for reproduction scripts) draws
    from this generator so that a given seed always reproduces the same
    traces, figures and tables. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. The raising forms are the hot-path APIs for
    generators whose bounds are correct by construction; defensive
    callers use the [*_res] forms below. *)

val int_res : t -> int -> (int, Diag.t) result
(** Checked variant: [Error (Domain _)] when [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val int_in_res : t -> int -> int -> (int, Diag.t) result
(** Checked variant: [Error (Domain _)] on an empty range. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_res : t -> 'a array -> ('a, Diag.t) result
(** Checked variant: [Error (Empty_input _)] on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** Derive an independent child generator (for parallel substreams). *)
