type t = { run : 'a 'b. ('a -> 'b) -> 'a array -> 'b array }

let serial = { run = (fun f xs -> Array.map f xs) }

let map_list p f xs = Array.to_list (p.run f (Array.of_list xs))

let concat_map_list p f xs = List.concat (map_list p f xs)
