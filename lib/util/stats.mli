(** Descriptive statistics over float arrays, used for error reporting
    (model-vs-simulation validation) and benchmark summaries.

    Every aggregate returns [('a, Diag.t) result]: [Error (Empty_input _)]
    on an empty array, [Error (Non_finite _)] when a NaN or infinity
    enters (or would leave) the computation, so a poisoned element can
    never silently corrupt a geomean. The [*_exn] forms raise
    {!Diag.Error} and are for callers whose inputs are correct by
    construction. *)

val mean : float array -> (float, Diag.t) result
(** Arithmetic mean. *)

val mean_exn : float array -> float

val geomean : float array -> (float, Diag.t) result
(** Geometric mean. All elements must be positive and finite. *)

val geomean_exn : float array -> float

val variance : float array -> (float, Diag.t) result
(** Population variance. *)

val variance_exn : float array -> float
val stddev : float array -> (float, Diag.t) result
val stddev_exn : float array -> float
val min : float array -> (float, Diag.t) result
val min_exn : float array -> float
val max : float array -> (float, Diag.t) result
val max_exn : float array -> float
val median : float array -> (float, Diag.t) result
val median_exn : float array -> float

val percentile : float array -> float -> (float, Diag.t) result
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. *)

val percentile_exn : float array -> float -> float

val relative_error : measured:float -> estimated:float -> (float, Diag.t) result
(** [(estimated - measured) / measured]. Positive means the estimate is
    optimistic relative to the measurement. [Error (Invalid _)] when
    [measured = 0]. *)

val relative_error_exn : measured:float -> estimated:float -> float

val abs_relative_error :
  measured:float -> estimated:float -> (float, Diag.t) result

val abs_relative_error_exn : measured:float -> estimated:float -> float

val mape : measured:float array -> estimated:float array -> (float, Diag.t) result
(** Mean absolute percentage error, in percent. [Error (Ragged_input _)]
    when the arrays differ in length. *)

val mape_exn : measured:float array -> estimated:float array -> float
