open Diag.Syntax

let non_empty name xs =
  let* _ = Diag.non_empty ~field:name xs in
  Ok ()

(* Every aggregate checks its own output: a NaN smuggled in through the
   input array surfaces as [Non_finite] instead of poisoning downstream
   geomeans silently. *)
let finite_out name x = Diag.finite ~field:name x

let mean xs =
  let* () = non_empty "Stats.mean" xs in
  finite_out "Stats.mean"
    (Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs))

let mean_exn xs = Diag.ok_exn (mean xs)

let geomean xs =
  let* () = non_empty "Stats.geomean" xs in
  let* sum_logs =
    Array.fold_left
      (fun acc x ->
        let* acc = acc in
        let* x = Diag.positive ~field:"Stats.geomean element" x in
        Ok (acc +. log x))
      (Ok 0.0) xs
  in
  finite_out "Stats.geomean"
    (exp (sum_logs /. float_of_int (Array.length xs)))

let geomean_exn xs = Diag.ok_exn (geomean xs)

let variance xs =
  let* () = non_empty "Stats.variance" xs in
  let* m = mean xs in
  finite_out "Stats.variance"
    (Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int (Array.length xs))

let variance_exn xs = Diag.ok_exn (variance xs)

let stddev xs =
  let* v = variance xs in
  Ok (sqrt v)

let stddev_exn xs = Diag.ok_exn (stddev xs)

let min xs =
  let* () = non_empty "Stats.min" xs in
  finite_out "Stats.min" (Array.fold_left Stdlib.min xs.(0) xs)

let min_exn xs = Diag.ok_exn (min xs)

let max xs =
  let* () = non_empty "Stats.max" xs in
  finite_out "Stats.max" (Array.fold_left Stdlib.max xs.(0) xs)

let max_exn xs = Diag.ok_exn (max xs)

let percentile xs p =
  let* () = non_empty "Stats.percentile" xs in
  let* p = Diag.in_range ~field:"Stats.percentile.p" ~lo:0.0 ~hi:100.0 p in
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then finite_out "Stats.percentile" sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    finite_out "Stats.percentile"
      (((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi)))

let percentile_exn xs p = Diag.ok_exn (percentile xs p)

let median xs = percentile xs 50.0
let median_exn xs = Diag.ok_exn (median xs)

let relative_error ~measured ~estimated =
  let* measured = Diag.finite ~field:"Stats.relative_error.measured" measured in
  let* estimated =
    Diag.finite ~field:"Stats.relative_error.estimated" estimated
  in
  if measured = 0.0 then
    Error (Diag.Invalid
             { field = "Stats.relative_error"; message = "measured = 0" })
  else
    (* Finite operands can still overflow the quotient (tiny [measured],
       huge [estimated]); keep the output-finiteness guarantee. *)
    Diag.finite ~field:"Stats.relative_error" ((estimated -. measured) /. measured)

let relative_error_exn ~measured ~estimated =
  Diag.ok_exn (relative_error ~measured ~estimated)

let abs_relative_error ~measured ~estimated =
  let+ e = relative_error ~measured ~estimated in
  Float.abs e

let abs_relative_error_exn ~measured ~estimated =
  Diag.ok_exn (abs_relative_error ~measured ~estimated)

let mape ~measured ~estimated =
  let* () = Diag.same_length ~field:"Stats.mape" measured estimated in
  let* () = non_empty "Stats.mape" measured in
  let* errs =
    Array.fold_left
      (fun acc (m, e) ->
        let* acc = acc in
        let* err = abs_relative_error ~measured:m ~estimated:e in
        Ok (err :: acc))
      (Ok [])
      (Array.map2 (fun m e -> (m, e)) measured estimated)
  in
  let* m = mean (Array.of_list errs) in
  finite_out "Stats.mape" (100.0 *. m)

let mape_exn ~measured ~estimated = Diag.ok_exn (mape ~measured ~estimated)
