type t = Prng.t

let create ~seed = Prng.create seed
let fork = Prng.split

let specials =
  [|
    Float.nan; infinity; neg_infinity; 0.0; -0.0; Float.min_float;
    -.Float.min_float; max_float; -.max_float; 1e308; -1e308; 1e-300;
    epsilon_float; -1.0; 1.0;
  |]

let finite_float t ~lo ~hi = lo +. Prng.float t (hi -. lo)

let float_adversarial t =
  match Prng.int t 4 with
  | 0 -> Prng.choose t specials
  | 1 -> finite_float t ~lo:(-1e6) ~hi:1e6
  | 2 -> finite_float t ~lo:(-10.0) ~hi:10.0
  | _ -> Float.of_int (Prng.int_in t (-1000) 1000)

let fraction_adversarial t =
  match Prng.int t 8 with
  | 0 -> Prng.choose t specials
  | 1 -> finite_float t ~lo:(-2.0) ~hi:3.0
  | _ -> Prng.float t 1.0

let positive_adversarial t =
  match Prng.int t 8 with
  | 0 -> Prng.choose t specials
  | 1 -> 0.0
  | 2 -> -.Prng.float t 100.0
  | 3 -> 1e300 *. (1.0 +. Prng.float t 8.0)
  | 4 -> 1e-300 *. Prng.float t 1.0
  | _ -> 0.001 +. Prng.float t 100.0

let int_adversarial t =
  match Prng.int t 8 with
  | 0 -> 0
  | 1 -> -Prng.int_in t 1 1000
  | 2 -> max_int - Prng.int t 4
  | 3 -> min_int + Prng.int t 4
  | _ -> Prng.int_in t 1 512

let size_adversarial t ~max =
  match Prng.int t 10 with
  | 0 -> 0
  | 1 -> -Prng.int_in t 1 100
  | 2 -> max * Prng.int_in t 10 1000
  | _ -> Prng.int_in t 1 (Stdlib.max 1 max)

let array_adversarial ?(max_len = 32) t gen =
  let len = if Prng.int t 10 = 0 then 0 else Prng.int_in t 1 max_len in
  Array.init len (fun _ -> gen t)

let matrix_adversarial t =
  let rows = if Prng.int t 10 = 0 then 0 else Prng.int_in t 1 8 in
  let cols = Prng.int_in t 1 8 in
  Array.init rows (fun _ ->
      let c = if Prng.int t 5 = 0 then Prng.int_in t 0 8 else cols in
      Array.init c (fun _ -> float_adversarial t))

(* --- engine-layer faults --- *)

type engine_fault =
  | Raise
  | Transient_failures of int
  | Hang
  | Corrupt_artifact

let engine_fault t =
  match Prng.int t 4 with
  | 0 -> Raise
  | 1 -> Transient_failures (Prng.int_in t 1 4)
  | 2 -> Hang
  | _ -> Corrupt_artifact

(* Bit-flip somewhere in the middle, truncate, or both — the shapes a
   torn write or a bad sector leaves behind. The result is never equal
   to the input (a flip changes one byte; a truncation shortens). *)
let corrupt_string t s =
  let n = String.length s in
  if n = 0 then "\x00"
  else
    let flip_byte str =
      let b = Bytes.of_string str in
      let i = Prng.int t (Bytes.length b) in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int t 8)));
      Bytes.to_string b
    in
    match Prng.int t 3 with
    | 0 -> String.sub s 0 (Prng.int t n) (* truncate, possibly to empty *)
    | 1 -> flip_byte s
    | _ -> flip_byte (String.sub s 0 (1 + Prng.int t n))

type core_spec = {
  ipc : float;
  rob_size : int;
  issue_width : int;
  commit_stall : float;
  drain_beta : float;
}

let core_spec t =
  {
    ipc = positive_adversarial t;
    rob_size = int_adversarial t;
    issue_width = int_adversarial t;
    commit_stall = positive_adversarial t;
    drain_beta = positive_adversarial t;
  }

type scenario_spec = {
  a : float;
  v : float;
  use_factor : bool;
  factor : float;
  latency : float;
  drain_fixed : float option;
}

let scenario_spec t =
  {
    a = fraction_adversarial t;
    v = (if Prng.int t 4 = 0 then fraction_adversarial t
         else Prng.float t 0.02);
    use_factor = Prng.bool t;
    factor = positive_adversarial t;
    latency = positive_adversarial t;
    drain_fixed =
      (if Prng.int t 4 = 0 then Some (positive_adversarial t) else None);
  }

type uarch_spec = {
  dispatch_width : int;
  u_issue_width : int;
  commit_width : int;
  u_rob_size : int;
  iq_size : int;
  lsq_size : int;
  int_alu_units : int;
  int_mult_units : int;
  fp_units : int;
  mem_ports : int;
  frontend_depth : int;
  commit_depth : int;
  speculate_fraction : float option;
  watchdog_cycles : int option;
}

(* Structural knobs skew small — ROB-size-1 cores, single-port memory —
   because the interesting simulator failures live at the degenerate end
   of the design space. *)
let small t = Prng.int_in t 1 8

let uarch_spec t =
  {
    dispatch_width = small t;
    u_issue_width = small t;
    commit_width = small t;
    u_rob_size = (if Prng.int t 3 = 0 then Prng.int_in t 0 2 else Prng.int_in t 2 64);
    iq_size = (if Prng.int t 4 = 0 then 1 else Prng.int_in t 1 64);
    lsq_size = (if Prng.int t 4 = 0 then 1 else Prng.int_in t 1 64);
    int_alu_units = small t;
    int_mult_units = small t;
    fp_units = small t;
    mem_ports = small t;
    frontend_depth = Prng.int_in t 1 16;
    commit_depth = Prng.int_in t 0 8;
    speculate_fraction =
      (if Prng.int t 3 = 0 then Some (fraction_adversarial t) else None);
    watchdog_cycles =
      (if Prng.int t 3 = 0 then Some (Prng.int_in t 1 200) else None);
  }
