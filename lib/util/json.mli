(** Minimal JSON: a value type, compact/indented printers and a strict
    parser. Used by the telemetry exporters ({!Tca_telemetry}) for the
    JSON-lines and Chrome [trace_event] formats, by [Sim_stats.to_json],
    and by [tca trace-report] to read a trace back. Deliberately tiny —
    no external dependency, no streaming — because every producer and
    consumer in this repository handles documents that fit in memory. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape_string : string -> string
(** JSON string escaping, without the surrounding quotes. *)

val to_string : t -> string
(** Compact, single-line serialisation. Non-finite floats are emitted as
    [null] (JSON has no NaN/infinity), matching what browsers accept. *)

val to_string_indent : t -> string
(** Two-space indented serialisation, for human-inspected files. *)

val pp : Format.formatter -> t -> unit
(** Compact form, same as {!to_string}. *)

(** {2 Accessors} — total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert. *)

val to_int_opt : t -> int option
(** [Int] only (an exact [Float] is not silently truncated). *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option

val parse : string -> (t, Diag.t) result
(** Strict parse of one JSON document (trailing whitespace allowed).
    [Error (Parse _)] carries a character offset and reason. Integers
    without fraction/exponent parse as [Int]; everything else numeric as
    [Float]. *)

val parse_exn : string -> t
(** @raise Diag.Error on malformed input. *)
