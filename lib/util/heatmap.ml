type t = {
  values : float array array;
  row_labels : string array;
  col_labels : string array;
  markers : (int * int, char) Hashtbl.t;
}

let make ~values ~row_labels ~col_labels =
  let open Diag.Syntax in
  let* () =
    Diag.same_length ~field:"Heatmap.make.row_labels" values row_labels
  in
  let* _ = Diag.non_empty ~field:"Heatmap.make.values" values in
  (* Zero-column rows would leave render with no x-axis to label. *)
  let* _ = Diag.non_empty ~field:"Heatmap.make.values.(0)" values.(0) in
  let cols = Array.length values.(0) in
  let* () =
    Array.fold_left
      (fun acc row ->
        let* () = acc in
        if Array.length row <> cols then
          Error
            (Diag.Ragged_input
               { field = "Heatmap.make.values"; expected = cols;
                 actual = Array.length row })
        else Ok ())
      (Ok ()) values
  in
  let* () =
    if cols <> Array.length col_labels then
      Error
        (Diag.Ragged_input
           { field = "Heatmap.make.col_labels"; expected = cols;
             actual = Array.length col_labels })
    else Ok ()
  in
  Ok { values; row_labels; col_labels; markers = Hashtbl.create 16 }

let make_exn ~values ~row_labels ~col_labels =
  Diag.ok_exn (make ~values ~row_labels ~col_labels)

(* Thresholds are multiplicative: a 1.5x speedup and a 1/1.5 slowdown get
   symmetric intensity. *)
let cell_char v =
  if v <= 0.0 then '?'
  else
    let lg = log v in
    if Float.abs lg <= log 1.02 then ' '
    else if lg > 0.0 then
      if lg >= log 4.0 then '#'
      else if lg >= log 2.0 then '+'
      else if lg >= log 1.25 then ':'
      else '.'
    else
      let m = -.lg in
      if m >= log 4.0 then '@'
      else if m >= log 2.0 then '%'
      else if m >= log 1.25 then '='
      else '-'

let legend =
  "legend (speedup): '#'>=4x  '+'>=2x  ':'>=1.25x  '.'>1.02x  ' '~1x  \
   slowdown: '-'<1x  '='<=0.8x  '%'<=0.5x  '@'<=0.25x"

let render ?title t =
  let buf = Buffer.create 4096 in
  (match title with
  | Some s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n'
  | None -> ());
  let label_w =
    Array.fold_left (fun w l -> Stdlib.max w (String.length l)) 0 t.row_labels
  in
  Array.iteri
    (fun r row ->
      Buffer.add_string buf
        (Printf.sprintf "%*s |" label_w t.row_labels.(r));
      Array.iteri
        (fun c v ->
          let ch =
            match Hashtbl.find_opt t.markers (r, c) with
            | Some m -> m
            | None -> cell_char v
          in
          Buffer.add_char buf ch)
        row;
      Buffer.add_char buf '\n')
    t.values;
  let cols = Array.length t.col_labels in
  Buffer.add_string buf (Printf.sprintf "%*s +%s\n" label_w "" (String.make cols '-'));
  (* Print a sparse x-axis: first, middle and last column labels. *)
  let picks = [ (0, t.col_labels.(0)); (cols / 2, t.col_labels.(cols / 2)); (cols - 1, t.col_labels.(cols - 1)) ] in
  let axis = Bytes.make (label_w + 2 + cols + 16) ' ' in
  List.iter
    (fun (c, l) ->
      let start = label_w + 2 + c in
      String.iteri
        (fun i ch ->
          let pos = start + i in
          if pos < Bytes.length axis then Bytes.set axis pos ch)
        l)
    picks;
  Buffer.add_string buf (String.trim (Bytes.to_string axis) |> fun s ->
    Printf.sprintf "%*s  %s\n" label_w "" s);
  Buffer.add_string buf legend;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let overlay t cells c =
  let copy =
    {
      t with
      markers = Hashtbl.copy t.markers;
      values = Array.map Array.copy t.values;
    }
  in
  let rows = Array.length t.values in
  let cols = Array.length t.col_labels in
  List.iter
    (fun (r, col) ->
      if r >= 0 && r < rows && col >= 0 && col < cols then
        Hashtbl.replace copy.markers (r, col) c)
    cells;
  copy
