(** Parameter-sweep helpers: linear and logarithmic ranges used by every
    figure driver.

    The range builders return [('a, Diag.t) result] — a degenerate range
    (too few points, non-positive log endpoints, non-finite bounds) is a
    [Domain] or [Non_finite] diagnostic rather than an abort. The [*_exn]
    forms raise {!Diag.Error}. *)

val linspace : float -> float -> int -> (float array, Diag.t) result
(** [linspace lo hi n] is [n >= 2] evenly spaced points including both
    endpoints. *)

val linspace_exn : float -> float -> int -> float array

val logspace : float -> float -> int -> (float array, Diag.t) result
(** [logspace lo hi n] is [n >= 2] points evenly spaced in log10 between
    the positive endpoints [lo] and [hi], inclusive. *)

val logspace_exn : float -> float -> int -> float array

val int_range : int -> int -> int array
(** [int_range lo hi] is [lo; lo+1; ...; hi]. Empty if [hi < lo]. Total. *)

val geometric_ints : int -> int -> float -> (int array, Diag.t) result
(** [geometric_ints lo hi ratio] is the increasing deduplicated sequence
    [lo; lo*ratio; ...] capped at [hi] (always includes [lo]; includes [hi]
    if distinct from the last generated point). Requires [lo > 0] and a
    finite [ratio > 1]. *)

val geometric_ints_exn : int -> int -> float -> int array
