type t =
  | Domain of { field : string; lo : float; hi : float; actual : float }
  | Non_finite of { field : string; value : float }
  | Empty_input of { field : string }
  | Ragged_input of { field : string; expected : int; actual : int }
  | Watchdog of { cycles : int; committed : int; total : int }
  | Parse of { field : string; input : string; message : string }
  | Invalid of { field : string; message : string }
  | Task_failure of {
      job : string;
      fingerprint : string;
      exn : string;
      backtrace : string;
    }
  | Deadline of { job : string; seconds : float }

exception Error of t

let pp fmt = function
  | Domain { field; lo; hi; actual } ->
      Format.fprintf fmt "%s = %g outside [%g, %g]" field actual lo hi
  | Non_finite { field; value } ->
      Format.fprintf fmt "%s is not finite (%g)" field value
  | Empty_input { field } -> Format.fprintf fmt "%s: empty input" field
  | Ragged_input { field; expected; actual } ->
      Format.fprintf fmt "%s: ragged input (expected %d, got %d)" field
        expected actual
  | Watchdog { cycles; committed; total } ->
      Format.fprintf fmt
        "watchdog expired after %d cycles (%d of %d instructions committed)"
        cycles committed total
  | Parse { field; input; message } ->
      Format.fprintf fmt "%s: cannot parse %S (%s)" field input message
  | Invalid { field; message } -> Format.fprintf fmt "%s: %s" field message
  (* The backtrace is deliberately not part of the rendering: it varies
     with the scheduling mode (-j1 vs -jN stack shapes) and with
     OCAMLRUNPARAM, while the rendered diagnostic must be stable enough
     to appear in bit-identical failure reports. *)
  | Task_failure { job; fingerprint; exn; _ } ->
      Format.fprintf fmt "job %s (params %s) failed: uncaught exception %s"
        job fingerprint exn
  | Deadline { job; seconds } ->
      Format.fprintf fmt "job %s exceeded its %gs deadline" job seconds

let to_string d = Format.asprintf "%a" pp d

let exit_code = function
  | Parse _ -> 2
  | Domain _ -> 3
  | Non_finite _ -> 4
  | Empty_input _ -> 5
  | Ragged_input _ -> 6
  | Invalid _ -> 7
  | Watchdog _ -> 8
  | Task_failure _ -> 9
  | Deadline _ -> 10

let ok_exn = function Ok x -> x | Result.Error d -> raise (Error d)

let error_to_msg = function
  | Ok _ as ok -> ok
  | Result.Error d -> Result.Error (`Msg (to_string d))

let finite ~field x =
  if Float.is_finite x then Ok x else Result.Error (Non_finite { field; value = x })

let in_range ~field ~lo ~hi x =
  if not (Float.is_finite x) then
    Result.Error (Non_finite { field; value = x })
  else if x < lo || x > hi then
    Result.Error (Domain { field; lo; hi; actual = x })
  else Ok x

let positive ~field x =
  if not (Float.is_finite x) then
    Result.Error (Non_finite { field; value = x })
  else if x <= 0.0 then
    Result.Error (Domain { field; lo = 0.0; hi = infinity; actual = x })
  else Ok x

let non_negative ~field x = in_range ~field ~lo:0.0 ~hi:infinity x

let at_least ~field ~min n =
  if n < min then
    Result.Error
      (Domain { field; lo = float_of_int min; hi = infinity;
                actual = float_of_int n })
  else Ok n

let positive_int ~field n = at_least ~field ~min:1 n

let non_empty ~field arr =
  if Array.length arr = 0 then Result.Error (Empty_input { field }) else Ok arr

let same_length ~field a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then
    Result.Error (Ragged_input { field; expected = la; actual = lb })
  else Ok ()

module Syntax = struct
  let ( let* ) r f = match r with Ok x -> f x | Result.Error _ as e -> e
  let ( let+ ) r f = match r with Ok x -> Ok (f x) | Result.Error _ as e -> e
end
