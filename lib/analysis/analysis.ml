open Tca_uarch

type report = {
  counts : Trace.counts;
  dag_stats : Dag.stats;
  bounds : Bounds.t;
  findings : Finding.t list;
  derived : Derive.t option;
  derive_error : string option;
}

let analyze ?baseline ?config_break_even ~cfg trace =
  let instrs = trace.Trace.instrs in
  (* Analyze at the configured machine's granularity, not the default:
     footprint aliasing is defined per L1 line. *)
  let line_bytes = cfg.Config.mem.Mem_hier.l1.Cache.line_bytes in
  let dag = Dag.build ~line_bytes instrs in
  let derived, derive_error =
    match baseline with
    | None -> (None, None)
    | Some b -> (
        match Derive.of_pair ~cfg ~baseline:b ~accelerated:trace with
        | Ok d -> (Some d, None)
        | Error diag -> (None, Some (Tca_util.Diag.to_string diag)))
  in
  {
    counts = Trace.counts trace;
    dag_stats = Dag.stats dag;
    bounds = Bounds.compute ~dag cfg instrs;
    findings = Lint.run ~line_bytes ?config_break_even instrs;
    derived;
    derive_error;
  }

let lint ?line_bytes trace = Lint.run_trace ?line_bytes trace
let bounds ~cfg trace = Bounds.compute cfg trace.Trace.instrs

let finding_counts findings =
  let open Tca_util.Json in
  let count s =
    List.length (List.filter (fun f -> Finding.severity f = s) findings)
  in
  Obj
    (List.map
       (fun s -> (Finding.severity_name s, Int (count s)))
       [ Finding.Error; Finding.Warning; Finding.Info ])

let report_to_json r =
  let open Tca_util.Json in
  Obj
    [
      ("counts", Trace.counts_to_json r.counts);
      ("finding_counts", finding_counts r.findings);
      ("dag", Dag.stats_to_json r.dag_stats);
      ("bounds", Bounds.to_json r.bounds);
      ("findings", Lint.findings_to_json r.findings);
      ("derived",
       match r.derived with Some d -> Derive.to_json d | None -> Null);
      ("derive_error",
       match r.derive_error with Some e -> String e | None -> Null);
    ]
