open Tca_uarch

type report = {
  counts : Trace.counts;
  dag_stats : Dag.stats;
  bounds : Bounds.t;
  findings : Finding.t list;
  derived : Derive.t option;
  derive_error : string option;
}

let analyze ?baseline ~cfg trace =
  let instrs = trace.Trace.instrs in
  let dag = Dag.build instrs in
  let derived, derive_error =
    match baseline with
    | None -> (None, None)
    | Some b -> (
        match Derive.of_pair ~cfg ~baseline:b ~accelerated:trace with
        | Ok d -> (Some d, None)
        | Error diag -> (None, Some (Tca_util.Diag.to_string diag)))
  in
  {
    counts = Trace.counts trace;
    dag_stats = Dag.stats dag;
    bounds = Bounds.compute ~dag cfg instrs;
    findings = Lint.run instrs;
    derived;
    derive_error;
  }

let lint trace = Lint.run_trace trace
let bounds ~cfg trace = Bounds.compute cfg trace.Trace.instrs

let report_to_json r =
  let open Tca_util.Json in
  Obj
    [
      ("counts", Trace.counts_to_json r.counts);
      ("dag", Dag.stats_to_json r.dag_stats);
      ("bounds", Bounds.to_json r.bounds);
      ("findings", Lint.findings_to_json r.findings);
      ("derived",
       match r.derived with Some d -> Derive.to_json d | None -> Null);
      ("derive_error",
       match r.derive_error with Some e -> String e | None -> Null);
    ]
