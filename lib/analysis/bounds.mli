(** OSACA-style static performance bounds for a trace on a core config.

    Three independent lower bounds on simulated execution cycles, each
    provably conservative against the cycle-level pipeline model:

    - {b latency bound}: longest chain of simulator-enforced true
      dependences ({!Dag.True_reg}/{!Dag.True_mem}), each instruction
      charged its minimum execution latency and no instruction allowed
      to complete before [floor(index / dispatch_width) + 1 + latency]
      (the dispatch-bandwidth floor), plus the commit depth of the last
      retiring instruction.
    - {b throughput bound}: the tightest of the dispatch/issue/commit
      width ceilings, the per-class functional-unit ceilings, the memory
      port-cycle ceiling (loads that can never forward, accelerator line
      reads and writes — retired stores drain for free), and, under
      [Exclusive] TCA occupancy, the serialized accelerator service sum.
    - {b ROB bound} (Little's law): every instruction holds its ROB slot
      for at least [latency + commit_depth + 1] cycles and at most
      [rob_size] instructions are in flight per cycle.

    [cycles_lower_bound = max] of the three; the IPC upper bound is
    [instrs / cycles_lower_bound]. The fuzz harness and the workload
    tests assert [cycles_lower_bound <= simulated cycles] on every
    completed run. *)

type t = {
  instrs : int;
  latency_bound : int;
  throughput_bound : int;
  rob_bound : int;
  cycles_lower_bound : int;  (** max of the three bounds; 0 when empty *)
  ipc_upper_bound : float;  (** 0 when the trace is empty *)
  critical_path_length : int;
      (** instructions on the binding latency chain *)
}

val min_latency : Tca_uarch.Config.t -> forwardable:bool -> Tca_uarch.Isa.instr -> int
(** Minimum execution latency the pipeline can give this instruction.
    [forwardable] marks a load with an earlier store to the same exact
    address anywhere in the trace (store-to-load forwarding possible). *)

val compute : ?dag:Dag.t -> Tca_uarch.Config.t -> Tca_uarch.Isa.instr array -> t
(** [dag] may be supplied to reuse an already-built DAG; it must have
    been built over the same instruction array. *)

val to_json : t -> Tca_util.Json.t
val pp : Format.formatter -> t -> unit
