(** The trace lint pass: every {!Finding} rule over one linear scan.

    Operates on a raw instruction array (not a validated {!Trace.t}) so
    that degenerate inputs [Trace.validate] would reject — e.g. no-op
    accelerator invocations — can still be diagnosed; [run_trace] is the
    convenience form for already-validated traces.

    A generator is {e clean} when it produces no finding at severity
    {!Finding.Warning} or above: {!Finding.Info} findings (dead writes,
    silent stores, in-place accelerator footprints) are statistically
    unavoidable in randomized instruction streams and only advisory. *)

val run :
  ?line_bytes:int -> ?config_break_even:float ->
  Tca_uarch.Isa.instr array -> Finding.t list
(** Findings in trace order (rule order within one instruction is
    fixed); never raises. [line_bytes] defaults to 64.
    [config_break_even], when given, is a modeled break-even granularity
    (see {!Tca_model.Equations.config_break_even}); a trace whose mean
    instructions-per-invocation falls below it gets a trailing
    {!Finding.Config_granularity} warning. Omitted (the default), the
    rule never fires — configuration-free lint output is unchanged. *)

val run_trace :
  ?line_bytes:int -> ?config_break_even:float ->
  Tca_uarch.Trace.t -> Finding.t list

val max_severity : Finding.t list -> Finding.severity option
val clean : Finding.t list -> bool
(** No finding at {!Finding.Warning} or above. *)

val findings_to_json : Finding.t list -> Tca_util.Json.t
