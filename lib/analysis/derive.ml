open Tca_uarch

type t = {
  invocations : int;
  baseline_instrs : int;
  accelerated_instrs : int;
  acceleratable_instrs : int;
  a : float;
  v : float;
  avg_reads : float;
  avg_writes : float;
  avg_fresh_lines : float;
  avg_compute_latency : float;
  accel_latency : float;
  mean_leading : float;
  mean_trailing : float;
}

let invalid message =
  Error (Tca_util.Diag.Invalid { field = "Derive.of_pair"; message })

let of_pair ~(cfg : Config.t) ~baseline ~accelerated =
  let len_base = Trace.length baseline in
  let len_acc = Trace.length accelerated in
  if len_base = 0 then invalid "empty baseline trace"
  else begin
    (* One static pass over the accelerated trace: invocation count and
       footprint sums, inter-invocation gaps, and an in-order replay of
       the memory stream through the configured L1 to count the lines
       each invocation must fetch fresh. *)
    let l1 = Cache.create cfg.Config.mem.Mem_hier.l1 in
    let inv = ref 0
    and reads = ref 0
    and writes = ref 0
    and fresh = ref 0
    and compute = ref 0 in
    let last_accel = ref (-1) in
    let leading_sum = ref 0 and trailing_sum = ref 0 and trailing_n = ref 0 in
    Array.iteri
      (fun i (ins : Isa.instr) ->
        match ins.Isa.op with
        | Isa.Load | Isa.Store -> ignore (Cache.access l1 ins.Isa.addr)
        | Isa.Accel a ->
            incr inv;
            reads := !reads + Array.length a.Isa.reads;
            writes := !writes + Array.length a.Isa.writes;
            compute := !compute + a.Isa.compute_latency;
            Array.iter
              (fun addr -> if not (Cache.access l1 addr) then incr fresh)
              a.Isa.reads;
            Array.iter (fun addr -> ignore (Cache.access l1 addr)) a.Isa.writes;
            leading_sum := !leading_sum + (i - !last_accel - 1);
            if !last_accel >= 0 then begin
              trailing_sum := !trailing_sum + (i - !last_accel - 1);
              incr trailing_n
            end;
            last_accel := i
        | _ -> ())
      accelerated.Trace.instrs;
    if !inv = 0 then invalid "accelerated trace has no Accel instruction"
    else begin
      (* Instructions after the last invocation close its trailing
         window. *)
      trailing_sum := !trailing_sum + (len_acc - !last_accel - 1);
      incr trailing_n;
      let acceleratable = len_base - (len_acc - !inv) in
      if acceleratable < 0 || acceleratable > len_base then
        invalid
          (Printf.sprintf
             "implied acceleratable count %d outside [0, %d]: not a \
              baseline/accelerated pair"
             acceleratable len_base)
      else begin
        let fi = float_of_int in
        let ni = fi !inv in
        let avg_reads = fi !reads /. ni
        and avg_writes = fi !writes /. ni
        and avg_fresh_lines = fi !fresh /. ni
        and avg_compute_latency = fi !compute /. ni in
        let l1_hit =
          fi cfg.Config.mem.Mem_hier.l1.Cache.hit_latency
        in
        let miss_extra =
          match cfg.Config.mem.Mem_hier.l2 with
          | Some l2 -> fi l2.Cache.hit_latency
          | None -> fi cfg.Config.mem.Mem_hier.mem_latency
        in
        let ports = fi cfg.Config.mem_ports in
        let read_time =
          if avg_reads <= 0.0 then 0.0
          else
            l1_hit
            +. ((avg_reads -. 1.0) /. ports)
            +. (Float.min 1.0 avg_fresh_lines *. miss_extra)
        in
        let accel_latency =
          read_time +. avg_compute_latency +. (avg_writes /. ports)
        in
        Ok
          {
            invocations = !inv;
            baseline_instrs = len_base;
            accelerated_instrs = len_acc;
            acceleratable_instrs = acceleratable;
            a = fi acceleratable /. fi len_base;
            v = ni /. fi len_base;
            avg_reads;
            avg_writes;
            avg_fresh_lines;
            avg_compute_latency;
            accel_latency;
            mean_leading = fi !leading_sum /. ni;
            mean_trailing = fi !trailing_sum /. fi !trailing_n;
          }
      end
    end
  end

let scenario ?drain t =
  Tca_model.Params.scenario ?drain ~a:t.a ~v:t.v
    ~accel:(Tca_model.Params.Latency t.accel_latency) ()

let accel_factor t ~ipc =
  let open Tca_util.Diag.Syntax in
  let* ipc = Tca_util.Diag.positive ~field:"Derive.accel_factor ipc" ipc in
  if t.accel_latency <= 0.0 then
    Error
      (Tca_util.Diag.Invalid
         {
           field = "Derive.accel_factor";
           message = "zero accelerator latency has no finite factor";
         })
  else
    let g = float_of_int t.acceleratable_instrs /. float_of_int t.invocations in
    Tca_util.Diag.finite ~field:"Derive.accel_factor"
      (g /. (t.accel_latency *. ipc))

let to_json t =
  let open Tca_util.Json in
  Obj
    [
      ("invocations", Int t.invocations);
      ("baseline_instrs", Int t.baseline_instrs);
      ("accelerated_instrs", Int t.accelerated_instrs);
      ("acceleratable_instrs", Int t.acceleratable_instrs);
      ("a", Float t.a);
      ("v", Float t.v);
      ("avg_reads", Float t.avg_reads);
      ("avg_writes", Float t.avg_writes);
      ("avg_fresh_lines", Float t.avg_fresh_lines);
      ("avg_compute_latency", Float t.avg_compute_latency);
      ("accel_latency", Float t.accel_latency);
      ("mean_leading", Float t.mean_leading);
      ("mean_trailing", Float t.mean_trailing);
    ]

let pp fmt t =
  Format.fprintf fmt
    "derived: a=%.4f v=%.6f invocations=%d reads=%.1f writes=%.1f fresh=%.2f \
     latency=%.1f windows=%.0f/%.0f"
    t.a t.v t.invocations t.avg_reads t.avg_writes t.avg_fresh_lines
    t.accel_latency t.mean_leading t.mean_trailing
