(** Facade over the static trace analyzer: one call produces the full
    report (instruction counts, DAG statistics, performance bounds, lint
    findings and, when a baseline trace is supplied, the derived
    analytical-model inputs), plus thin aliases for the common single
    passes. *)

type report = {
  counts : Tca_uarch.Trace.counts;
  dag_stats : Dag.stats;
  bounds : Bounds.t;
  findings : Finding.t list;
  derived : Derive.t option;
      (** present when a baseline trace was supplied and derivation
          succeeded *)
  derive_error : string option;
      (** why derivation failed, when a baseline was supplied *)
}

val analyze :
  ?baseline:Tca_uarch.Trace.t ->
  ?config_break_even:float ->
  cfg:Tca_uarch.Config.t ->
  Tca_uarch.Trace.t ->
  report
(** The DAG and lint passes run at the configured machine's L1 line
    size ([cfg.mem.l1]), not the 64-byte default. [config_break_even]
    is forwarded to {!Lint.run}: when given, traces whose mean
    instructions-per-invocation sits below it gain a
    {!Finding.Config_granularity} warning. *)

val lint : ?line_bytes:int -> Tca_uarch.Trace.t -> Finding.t list
(** [Lint.run_trace]; [line_bytes] defaults to 64 — pass the configured
    L1 line size when one is at hand. *)

val bounds : cfg:Tca_uarch.Config.t -> Tca_uarch.Trace.t -> Bounds.t

val report_to_json : report -> Tca_util.Json.t
(** Shares the [counts] schema with [tca trace-report] via
    {!Tca_uarch.Trace.counts_to_json}. Includes a ["finding_counts"]
    object with per-severity totals (["error"], ["warning"], ["info"])
    so CI gates can threshold without walking the findings list. *)
