(** Register and memory dependency DAG over a linear instruction trace.

    Nodes are trace indices; edges always point forward (older to
    younger). Two families of edges are distinguished:

    - {e timing} edges the simulator actually enforces — register true
      dependences through the rename table ({!True_reg}) and
      store-to-load forwarding/blocking on an exact address match
      ({!True_mem}). Only these may enter a critical-path bound.
    - {e dataflow} edges that exist in the program's data but that the
      pipeline model deliberately does not order ({!Mem_data}:
      accelerator read/write sets versus plain loads/stores, resolved at
      cache-line granularity), plus the classic false dependences
      ({!Anti}, {!Output}) that renaming removes.

    Construction is a single linear scan with last-writer/last-reader
    tables, O(instructions + edges). *)

type kind =
  | True_reg  (** read-after-write through an architectural register *)
  | True_mem  (** load after store to the same exact address *)
  | Mem_data
      (** line-granular dataflow between accelerator read/write sets and
          plain memory traffic; {e not} enforced by the simulator *)
  | Anti  (** write-after-read of a register *)
  | Output  (** write-after-write of a register *)

val kind_name : kind -> string

type edge = { src : int; dst : int; kind : kind }

type stats = {
  nodes : int;
  true_reg : int;
  true_mem : int;
  mem_data : int;
  anti : int;
  output : int;
  depth : int;
      (** longest chain of timing edges ({!True_reg}/{!True_mem}),
          counted in nodes; 0 for an empty trace, 1 for a trace with no
          timing edge *)
}

type t

val build : ?line_bytes:int -> Tca_uarch.Isa.instr array -> t
(** [line_bytes] defaults to 64, the cache line size used everywhere in
    the repository. *)

val length : t -> int
val edges : t -> edge list
(** In construction order (sorted by [dst]). *)

val preds : t -> int -> (int * kind) list
(** Predecessors of a node with the connecting edge kind. *)

val stats : t -> stats
val stats_to_json : stats -> Tca_util.Json.t
