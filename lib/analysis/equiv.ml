open Tca_uarch

type strategy = Align | Dataflow

let strategy_name = function Align -> "align" | Dataflow -> "dataflow"

(* Structural instruction equality across variants. PCs are assigned
   sequentially by the trace builder, so the same logical instruction
   sits at a different pc in each variant; only static branch sites
   (recurring pcs the predictor keys on) carry semantic pc identity. *)
let instr_equal (a : Isa.instr) (b : Isa.instr) =
  a.Isa.op = b.Isa.op && a.Isa.src1 = b.Isa.src1 && a.Isa.src2 = b.Isa.src2
  && a.Isa.dst = b.Isa.dst && a.Isa.addr = b.Isa.addr
  && a.Isa.taken = b.Isa.taken
  && match a.Isa.op with Isa.Branch -> a.Isa.pc = b.Isa.pc | _ -> true

type region = {
  ord : int;  (** invocation ordinal, in accelerated-trace order *)
  accel_index : int;  (** accelerated-trace index of the invocation *)
  base_start : int;
  base_len : int;
}

type alignment = {
  n_matched : int;
  base_match : int array;  (** baseline idx -> match id, or -1 (in a region) *)
  accel_match : int array;  (** accelerated idx -> match id, or -1 (an accel) *)
  base_region : int array;  (** baseline idx -> region ordinal, or -1 *)
  regions : region array;
  misaligned : (int * int) option;
      (** first structurally irreconcilable position (baseline idx,
          accelerated idx); indices may equal the trace length when one
          side ran out *)
}

let is_accel (ins : Isa.instr) =
  match ins.Isa.op with Isa.Accel _ -> true | _ -> false

(* Greedy two-pointer alignment: common instructions must match in
   order; every accelerated-side [Accel] opens a region that absorbs
   baseline instructions until the next common instruction (or the next
   invocation) resumes. Between two adjacent invocations the boundary is
   ambiguous and attributed greedily to the later one. *)
let align baseline accelerated =
  let nb = Array.length baseline and na = Array.length accelerated in
  let base_match = Array.make (max nb 1) (-1) in
  let accel_match = Array.make (max na 1) (-1) in
  let base_region = Array.make (max nb 1) (-1) in
  let regions = ref [] in
  let n_regions = ref 0 in
  let n_matched = ref 0 in
  let i = ref 0 and j = ref 0 in
  let misaligned = ref None in
  while !misaligned = None && (!i < nb || !j < na) do
    let common_here =
      !i < nb && !j < na && instr_equal baseline.(!i) accelerated.(!j)
    in
    if !j < na && is_accel accelerated.(!j) && not common_here then begin
      let ord = !n_regions in
      incr n_regions;
      let accel_index = !j in
      incr j;
      let base_start = !i in
      let stop = ref false in
      while not !stop && !i < nb do
        if !j < na && (instr_equal baseline.(!i) accelerated.(!j)
                      || is_accel accelerated.(!j))
        then stop := true
        else begin
          base_region.(!i) <- ord;
          incr i
        end
      done;
      regions :=
        { ord; accel_index; base_start; base_len = !i - base_start }
        :: !regions
    end
    else if common_here then begin
      base_match.(!i) <- !n_matched;
      accel_match.(!j) <- !n_matched;
      incr n_matched;
      incr i;
      incr j
    end
    else misaligned := Some (!i, !j)
  done;
  {
    n_matched = !n_matched;
    base_match;
    accel_match;
    base_region;
    regions = Array.of_list (List.rev !regions);
    misaligned = !misaligned;
  }

(* {2 Verdicts} *)

type witness = {
  location : Effects.loc option;  (** [None]: instruction-stream mismatch *)
  base_index : int;
  accel_index : int;
  base_term : string;
  accel_term : string;
  base_contributors : int list;
  accel_contributors : int list;
  reason : string;
}

type verdict = Equivalent | Divergent of witness

type audit = {
  severity : Finding.severity;
  rule : string;
  count : int;
  detail : string;
}

type report = {
  verdict : verdict;
  strategy : strategy;
  n_base : int;
  n_accel : int;
  invocations : int;
  matched : int;
  regions : int;
  sigma_reg : int;  (** region outputs consumed through accel registers *)
  sigma_mem : int;  (** ... through declared accel write lines *)
  audits : audit list;
}

let equivalent r = r.verdict = Equivalent

(* {2 The aligned-replacement strategy} *)

(* Producer role of a term, relative to an alignment. *)
type role = Rinit | Rcommon of int | Rregion of int | Raccel of int | Rother

let loc_to_string = function
  | Effects.Reg r -> Printf.sprintf "r%d" r
  | Effects.Mem a -> Printf.sprintf "[%#x]" a
  | Effects.Line l -> Printf.sprintf "line[%#x]" l

type cmp = Equal | Diff of int * int

type align_ctx = {
  sb : Effects.t;
  sa : Effects.t;
  al : alignment;
  accel_ord : int array;  (** accelerated idx -> invocation ordinal, or -1 *)
  visited : (int, unit) Hashtbl.t;
  stride : int;
  sigma_channels : (int * Effects.loc, unit) Hashtbl.t;
}

let make_ctx sb sa al =
  let accel_ord = Array.make (max (Array.length al.accel_match) 1) (-1) in
  Array.iteri (fun ord idx -> accel_ord.(idx) <- ord) sa.Effects.accels;
  {
    sb;
    sa;
    al;
    accel_ord;
    visited = Hashtbl.create 4096;
    stride = Array.length sa.Effects.nodes + 1;
    sigma_channels = Hashtbl.create 64;
  }

let role_b ctx term =
  match Effects.producer ctx.sb term with
  | None -> Rinit
  | Some idx ->
      if ctx.al.base_match.(idx) >= 0 then Rcommon ctx.al.base_match.(idx)
      else if ctx.al.base_region.(idx) >= 0 then
        Rregion ctx.al.base_region.(idx)
      else Rother

let role_a ctx term =
  match Effects.producer ctx.sa term with
  | None -> Rinit
  | Some idx ->
      if ctx.accel_ord.(idx) >= 0 then Raccel ctx.accel_ord.(idx)
      else if ctx.al.accel_match.(idx) >= 0 then
        Rcommon ctx.al.accel_match.(idx)
      else Rother

(* Structural term correspondence modulo accelerator semantics: matched
   common instructions correspond pointwise, and a term produced inside
   baseline region [k] corresponds to any output of accelerated
   invocation [k] (the uninterpreted-function binding sigma). Iterative
   with a visited-pair memo shared across the whole check, so total work
   stays linear in the two arenas. *)
let compare_terms ctx tb ta =
  let nodes_b = ctx.sb.Effects.nodes and nodes_a = ctx.sa.Effects.nodes in
  let rec loop stack =
    match stack with
    | [] -> Equal
    | (tb, ta) :: rest ->
        let key = (tb * ctx.stride) + ta in
        if Hashtbl.mem ctx.visited key then loop rest
        else begin
          Hashtbl.add ctx.visited key ();
          match (nodes_b.(tb), nodes_a.(ta)) with
          | Effects.Zero, Effects.Zero -> loop rest
          | Effects.Init_reg r, Effects.Init_reg r' when r = r' -> loop rest
          | Effects.Init_mem a, Effects.Init_mem a' when a = a' -> loop rest
          | Effects.Init_line l, Effects.Init_line l' when l = l' -> loop rest
          | Effects.Op ob, Effects.Op oa
            when ob.cls = oa.cls
                 && ctx.al.base_match.(ob.idx) >= 0
                 && ctx.al.base_match.(ob.idx)
                    = ctx.al.accel_match.(oa.idx) ->
              if Array.length ob.args <> Array.length oa.args
              then Diff (tb, ta)
              else begin
                let acc = ref rest in
                Array.iteri
                  (fun k ab -> acc := (ab, oa.args.(k)) :: !acc)
                  ob.args;
                loop !acc
              end
          | Effects.Accel_app ab, Effects.Accel_app aa
            when ab.unit = aa.unit
                 && ctx.al.base_match.(ab.idx) >= 0
                 && ctx.al.base_match.(ab.idx)
                    = ctx.al.accel_match.(aa.idx) ->
              if Array.length ab.args <> Array.length aa.args
              then Diff (tb, ta)
              else begin
                let acc = ref rest in
                Array.iteri
                  (fun k b_arg -> acc := (b_arg, aa.args.(k)) :: !acc)
                  ab.args;
                loop !acc
              end
          | Effects.Accel_out ob, Effects.Accel_out oa
            when ob.loc = oa.loc ->
              loop ((ob.app, oa.app) :: rest)
          | _, Effects.Accel_out { app; loc } -> (
              match nodes_a.(app) with
              | Effects.Accel_app { ord; _ } -> (
                  match role_b ctx tb with
                  | Rregion k when k = ord ->
                      Hashtbl.replace ctx.sigma_channels (ord, loc) ();
                      loop rest
                  | _ -> Diff (tb, ta))
              | _ -> Diff (tb, ta))
          | _ -> Diff (tb, ta)
        end
  in
  loop [ (tb, ta) ]

(* Aggregated audit accumulation. *)
type audit_acc = {
  mutable scratch_regs : int list;
  mutable region_clobbers_reg : int;
  mutable hidden_addrs : int;
  mutable accel_clobbers : int;
  mutable channel_skew : int;
  mutable accel_extra : int;
  mutable other : audit list;
}

let new_acc () =
  {
    scratch_regs = [];
    region_clobbers_reg = 0;
    hidden_addrs = 0;
    accel_clobbers = 0;
    channel_skew = 0;
    accel_extra = 0;
    other = [];
  }

let acc_to_audits acc =
  let out = ref (List.rev acc.other) in
  let add severity rule count detail =
    if count > 0 then out := { severity; rule; count; detail } :: !out
  in
  add Finding.Info "scratch-reg"
    (List.length acc.scratch_regs)
    (Printf.sprintf "region scratch registers live at trace end: %s"
       (String.concat ", "
          (List.rev_map (Printf.sprintf "r%d") acc.scratch_regs)));
  add Finding.Warning "region-clobbers-reg" acc.region_clobbers_reg
    "baseline region overwrites an application register the accelerated \
     variant leaves intact (dead at trace end)";
  add Finding.Info "hidden-state" acc.hidden_addrs
    "addresses written only inside replaced regions (accelerator-private \
     state not in the declared write footprint)";
  add Finding.Warning "accel-clobbers" acc.accel_clobbers
    "declared accelerator output overwrites an application-written \
     location";
  add Finding.Warning "channel-skew" acc.channel_skew
    "final value comes from different invocation ordinals in the two \
     variants";
  add Finding.Info "accel-extra-output" acc.accel_extra
    "declared accelerator output the baseline regions never produce";
  List.rev !out

let witness_of_terms ctx ?loc ~reason ~root_b ~root_a tb ta =
  let contributors side term root =
    let p =
      match side with
      | `B -> Effects.producer ctx.sb term
      | `A -> Effects.producer ctx.sa term
    in
    List.sort_uniq compare
      (List.filter (fun x -> x >= 0) (root :: Option.to_list p))
  in
  {
    location = loc;
    base_index = root_b;
    accel_index = root_a;
    base_term = Effects.term_to_string ctx.sb tb;
    accel_term = Effects.term_to_string ctx.sa ta;
    base_contributors = contributors `B tb root_b;
    accel_contributors = contributors `A ta root_a;
    reason;
  }

(* Classify one final-state location once [compare_terms] has failed on
   it. Returns [None] when the difference is an allowed (audited)
   consequence of region replacement, [Some reason] when it is a real
   divergence. *)
let classify_final ctx acc ~is_reg loc tb ta =
  let rb = role_b ctx tb and ra = role_a ctx ta in
  match (rb, ra) with
  | Rregion k, Raccel k' when k = k' ->
      (* A declared output channel whose binding was never exercised by a
         common read; still sigma-consistent. *)
      Hashtbl.replace ctx.sigma_channels (k, loc) ();
      None
  | Rregion _, Raccel _ ->
      acc.channel_skew <- acc.channel_skew + 1;
      None
  | Rregion _, Rinit when is_reg ->
      (match loc with
      | Effects.Reg r -> acc.scratch_regs <- r :: acc.scratch_regs
      | _ -> ());
      None
  | Rregion _, Rcommon _ when is_reg ->
      acc.region_clobbers_reg <- acc.region_clobbers_reg + 1;
      None
  | Rregion _, Rinit ->
      acc.hidden_addrs <- acc.hidden_addrs + 1;
      None
  | Rregion k, Rcommon _ ->
      Some
        (Printf.sprintf
           "baseline region %d overwrites application-visible memory that \
            the accelerated variant leaves with the application's value \
            (undeclared accelerator write)"
           k)
  | Rcommon _, Raccel _ ->
      acc.accel_clobbers <- acc.accel_clobbers + 1;
      None
  | Rinit, Raccel _ ->
      acc.accel_extra <- acc.accel_extra + 1;
      None
  | _ ->
      Some
        (if is_reg then "final register values diverge"
         else "final memory values diverge")

let check_align ?(line_bytes = 64) baseline accelerated al =
  let sb = Effects.summarize ~line_bytes baseline in
  let sa = Effects.summarize ~line_bytes accelerated in
  let ctx = make_ctx sb sa al in
  let acc = new_acc () in
  let divergence = ref None in
  let diverge w = if !divergence = None then divergence := Some w in
  (match al.misaligned with
  | Some (bi, ai) ->
      let render arr n k =
        if k >= n then "(end of trace)"
        else Format.asprintf "%a" Isa.pp arr.(k)
      in
      diverge
        {
          location = None;
          base_index = bi;
          accel_index = ai;
          base_term = render baseline (Array.length baseline) bi;
          accel_term = render accelerated (Array.length accelerated) ai;
          base_contributors = (if bi < Array.length baseline then [ bi ] else []);
          accel_contributors =
            (if ai < Array.length accelerated then [ ai ] else []);
          reason =
            "instruction streams cannot be aligned: common instructions \
             diverge structurally outside any replaced region";
        }
  | None ->
      (* Pointwise: every matched instruction must read corresponding
         values. Scanning in match order makes the first failure the
         earliest diverging common instruction. *)
      let n_matched = al.n_matched in
      let b_of_match = Array.make (max n_matched 1) (-1) in
      let a_of_match = Array.make (max n_matched 1) (-1) in
      Array.iteri
        (fun i m -> if m >= 0 then b_of_match.(m) <- i)
        al.base_match;
      Array.iteri
        (fun j m -> if m >= 0 then a_of_match.(m) <- j)
        al.accel_match;
      (* Operand slots of a matched instruction, labelled with the
         architectural location each value arrives through — so a
         divergence witness can name the register or address, not just
         the two terms. Must mirror the arg layout of
         [Effects.summarize]. *)
      let operand_locs (ins : Isa.instr) =
        let reg r = if r = Isa.no_reg then None else Some (Effects.Reg r) in
        match ins.Isa.op with
        | Isa.Load -> [| reg ins.Isa.src1; Some (Effects.Mem ins.Isa.addr) |]
        | Isa.Store | Isa.Int_alu | Isa.Int_mult | Isa.Fp_alu | Isa.Fp_mult
          ->
            [| reg ins.Isa.src1; reg ins.Isa.src2 |]
        | Isa.Branch -> [| reg ins.Isa.src1 |]
        | Isa.Accel _ -> [||]
      in
      let m = ref 0 in
      while !divergence = None && !m < n_matched do
        let bi = b_of_match.(!m) and ai = a_of_match.(!m) in
        let nb = sb.Effects.instr_node.(bi)
        and na = sa.Effects.instr_node.(ai) in
        (match (sb.Effects.nodes.(nb), sa.Effects.nodes.(na)) with
        | Effects.Op ob, Effects.Op oa
          when Array.length ob.args = Array.length oa.args
               && Array.length ob.args = Array.length (operand_locs baseline.(bi))
          ->
            let locs = operand_locs baseline.(bi) in
            let k = ref 0 in
            while !divergence = None && !k < Array.length ob.args do
              (match compare_terms ctx ob.args.(!k) oa.args.(!k) with
              | Equal -> ()
              | Diff (tb, ta) ->
                  diverge
                    (witness_of_terms ctx ?loc:locs.(!k)
                       ~reason:
                         (match locs.(!k) with
                         | Some l ->
                             Printf.sprintf
                               "matched common instructions read diverging \
                                values through %s"
                               (loc_to_string l)
                         | None ->
                             "matched common instructions read diverging \
                              values")
                       ~root_b:bi ~root_a:ai tb ta));
              incr k
            done
        | _ -> (
            match compare_terms ctx nb na with
            | Equal -> ()
            | Diff (tb, ta) ->
                diverge
                  (witness_of_terms ctx
                     ~reason:
                       "matched common instructions read diverging values"
                     ~root_b:bi ~root_a:ai tb ta)));
        incr m
      done;
      (* Final architectural registers. *)
      let r = ref 0 in
      while !divergence = None && !r < Isa.num_arch_regs do
        let tb = sb.Effects.regs.(!r) and ta = sa.Effects.regs.(!r) in
        (match compare_terms ctx tb ta with
        | Equal -> ()
        | Diff (tb', ta') -> (
            let loc = Effects.Reg !r in
            match classify_final ctx acc ~is_reg:true loc tb ta with
            | None -> ()
            | Some reason ->
                diverge
                  (witness_of_terms ctx ~loc ~reason
                     ~root_b:(Option.value ~default:(-1)
                                (Effects.producer sb tb))
                     ~root_a:(Option.value ~default:(-1)
                                (Effects.producer sa ta))
                     tb' ta')));
        incr r
      done;
      (* Final memory image: exact cells, then whole-line owners. *)
      let addrs = Hashtbl.create 1024 in
      Hashtbl.iter (fun a _ -> Hashtbl.replace addrs a ()) sb.Effects.mem;
      Hashtbl.iter (fun a _ -> Hashtbl.replace addrs a ()) sa.Effects.mem;
      let sorted = Hashtbl.fold (fun a () l -> a :: l) addrs [] in
      let sorted = List.sort compare sorted in
      let line_of a = a / line_bytes * line_bytes in
      let side_term (s : Effects.t) a =
        match Hashtbl.find_opt s.Effects.mem a with
        | Some id -> Some (`Cell id)
        | None -> (
            match Hashtbl.find_opt s.Effects.line_owner (line_of a) with
            | Some app -> Some (`Owner app)
            | None -> None)
      in
      List.iter
        (fun a ->
          if !divergence = None then
            let loc = Effects.Mem a in
            match (side_term sb a, side_term sa a) with
            | None, None -> ()
            | Some (`Cell tb), Some (`Cell ta) -> (
                match compare_terms ctx tb ta with
                | Equal -> ()
                | Diff (tb', ta') -> (
                    match classify_final ctx acc ~is_reg:false loc tb ta with
                    | None -> ()
                    | Some reason ->
                        diverge
                          (witness_of_terms ctx ~loc ~reason
                             ~root_b:(Option.value ~default:(-1)
                                        (Effects.producer sb tb))
                             ~root_a:(Option.value ~default:(-1)
                                        (Effects.producer sa ta))
                             tb' ta')))
            | tb_opt, ta_opt -> (
                (* At least one side sees the address only through a
                   whole-line accelerator write (or not at all): classify
                   by producer roles. *)
                let rb =
                  match tb_opt with
                  | None -> Rinit
                  | Some (`Cell id) | Some (`Owner id) -> role_b ctx id
                in
                let ra =
                  match ta_opt with
                  | None -> Rinit
                  | Some (`Cell id) | Some (`Owner id) -> role_a ctx id
                in
                match (rb, ra) with
                | Rregion k, Raccel k' when k = k' ->
                    Hashtbl.replace ctx.sigma_channels (k, loc) ()
                | Rregion _, Raccel _ ->
                    acc.channel_skew <- acc.channel_skew + 1
                | Rregion _, Rinit -> acc.hidden_addrs <- acc.hidden_addrs + 1
                | Rregion k, Rcommon _ ->
                    diverge
                      {
                        location = Some loc;
                        base_index = -1;
                        accel_index = -1;
                        base_term = "(region write)";
                        accel_term = "(application value)";
                        base_contributors = [];
                        accel_contributors = [];
                        reason =
                          Printf.sprintf
                            "baseline region %d overwrites \
                             application-visible memory (undeclared \
                             accelerator write)"
                            k;
                      }
                | Rcommon _, Raccel _ ->
                    acc.accel_clobbers <- acc.accel_clobbers + 1
                | Rinit, Raccel _ -> acc.accel_extra <- acc.accel_extra + 1
                | Rinit, Rinit -> ()
                | _ ->
                    diverge
                      {
                        location = Some loc;
                        base_index = -1;
                        accel_index = -1;
                        base_term =
                          (match tb_opt with
                          | Some (`Cell id) | Some (`Owner id) ->
                              Effects.term_to_string sb id
                          | None -> "(untouched)");
                        accel_term =
                          (match ta_opt with
                          | Some (`Cell id) | Some (`Owner id) ->
                              Effects.term_to_string sa id
                          | None -> "(untouched)");
                        base_contributors = [];
                        accel_contributors = [];
                        reason = "final memory values diverge";
                      }))
        sorted;
      (* Lines owned by an accelerator write with no exact cell on either
         side (fully line-granular state). *)
      let lines = Hashtbl.create 64 in
      Hashtbl.iter (fun l _ -> Hashtbl.replace lines l ()) sb.Effects.line_owner;
      Hashtbl.iter (fun l _ -> Hashtbl.replace lines l ()) sa.Effects.line_owner;
      let lsorted =
        List.sort compare (Hashtbl.fold (fun l () ls -> l :: ls) lines [])
      in
      List.iter
        (fun l ->
          if !divergence = None then
            let loc = Effects.Line l in
            let ob = Hashtbl.find_opt sb.Effects.line_owner l in
            let oa = Hashtbl.find_opt sa.Effects.line_owner l in
            match (ob, oa) with
            | None, None -> ()
            | Some app_b, Some app_a -> (
                match compare_terms ctx app_b app_a with
                | Equal -> ()
                | Diff _ -> (
                    match (role_b ctx app_b, role_a ctx app_a) with
                    | Rregion k, Raccel k' when k = k' ->
                        Hashtbl.replace ctx.sigma_channels (k, loc) ()
                    | Rregion _, Raccel _ ->
                        acc.channel_skew <- acc.channel_skew + 1
                    | _ ->
                        diverge
                          (witness_of_terms ctx ~loc
                             ~reason:"line-granular accelerator state \
                                      diverges"
                             ~root_b:(Option.value ~default:(-1)
                                        (Effects.producer sb app_b))
                             ~root_a:(Option.value ~default:(-1)
                                        (Effects.producer sa app_a))
                             app_b app_a)))
            | None, Some app_a -> (
                match role_a ctx app_a with
                | Raccel _ -> acc.accel_extra <- acc.accel_extra + 1
                | _ -> acc.accel_extra <- acc.accel_extra + 1)
            | Some app_b, None -> (
                match role_b ctx app_b with
                | Rregion _ -> acc.hidden_addrs <- acc.hidden_addrs + 1
                | _ ->
                    diverge
                      {
                        location = Some loc;
                        base_index = -1;
                        accel_index = -1;
                        base_term = Effects.term_to_string sb app_b;
                        accel_term = "(untouched)";
                        base_contributors = [];
                        accel_contributors = [];
                        reason =
                          "baseline accelerator writes a line the \
                           accelerated variant never touches";
                      }))
        lsorted);
  let sigma_reg = ref 0 and sigma_mem = ref 0 in
  Hashtbl.iter
    (fun (_, loc) () ->
      match loc with
      | Effects.Reg _ -> incr sigma_reg
      | Effects.Mem _ | Effects.Line _ -> incr sigma_mem)
    ctx.sigma_channels;
  {
    verdict =
      (match !divergence with None -> Equivalent | Some w -> Divergent w);
    strategy = Align;
    n_base = Array.length baseline;
    n_accel = Array.length accelerated;
    invocations = Array.length sa.Effects.accels;
    matched = al.n_matched;
    regions = Array.length al.regions;
    sigma_reg = !sigma_reg;
    sigma_mem = !sigma_mem;
    audits = acc_to_audits acc;
  }

(* {2 The whole-rewrite (dataflow) strategy}

   For kernels the accelerated variant restructures wholesale (no
   instruction-level correspondence), the contract is the final memory
   image at line granularity: both variants must write exactly the same
   lines, and every memory input a baseline line depends on must be in
   the (transitive) declared read footprint of the accelerated writers.
   Registers are scratch under this contract (audited, not compared). *)

module IS = Set.Make (Int)

let mem_leaf_lines (s : Effects.t) ~line_bytes roots =
  let visited = Hashtbl.create 1024 in
  let leaves = ref IS.empty in
  let stack = ref roots in
  let nodes = s.Effects.nodes in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if not (Hashtbl.mem visited id) then begin
          Hashtbl.add visited id ();
          match nodes.(id) with
          | Effects.Zero | Effects.Init_reg _ -> ()
          | Effects.Init_mem a ->
              leaves := IS.add (a / line_bytes * line_bytes) !leaves
          | Effects.Init_line l -> leaves := IS.add l !leaves
          | Effects.Op { args; _ } | Effects.Accel_app { args; _ } ->
              Array.iter (fun a -> stack := a :: !stack) args
          | Effects.Accel_out { app; _ } -> stack := app :: !stack
        end
  done;
  !leaves

let check_dataflow ?(line_bytes = 64) baseline accelerated =
  let sb = Effects.summarize ~line_bytes baseline in
  let sa = Effects.summarize ~line_bytes accelerated in
  let line_of a = a / line_bytes * line_bytes in
  let writers (s : Effects.t) =
    let per_line : (int, int list ref) Hashtbl.t = Hashtbl.create 256 in
    let add l id =
      match Hashtbl.find_opt per_line l with
      | Some ids -> ids := id :: !ids
      | None -> Hashtbl.add per_line l (ref [ id ])
    in
    Hashtbl.iter (fun a id -> add (line_of a) id) s.Effects.mem;
    Hashtbl.iter (fun l app -> add l app) s.Effects.line_owner;
    per_line
  in
  let wb = writers sb and wa = writers sa in
  let domain tbl =
    List.sort compare (Hashtbl.fold (fun l _ ls -> l :: ls) tbl [])
  in
  let db = domain wb and da = domain wa in
  let divergence = ref None in
  let diverge w = if !divergence = None then divergence := Some w in
  let missing_in name l =
    diverge
      {
        location = Some (Effects.Line l);
        base_index = -1;
        accel_index = -1;
        base_term =
          (match Hashtbl.find_opt wb l with
          | Some ids -> Effects.term_to_string sb (List.hd !ids)
          | None -> "(untouched)");
        accel_term =
          (match Hashtbl.find_opt wa l with
          | Some ids -> Effects.term_to_string sa (List.hd !ids)
          | None -> "(untouched)");
        base_contributors = [];
        accel_contributors = [];
        reason =
          Printf.sprintf
            "written-line domains differ: line %#x is only written by the \
             %s variant"
            l name;
      }
  in
  let rec walk b a =
    match (b, a) with
    | [], [] -> ()
    | lb :: _, [] -> missing_in "baseline" lb
    | [], la :: _ -> missing_in "accelerated" la
    | lb :: rb, la :: ra ->
        if lb = la then (if !divergence = None then walk rb ra)
        else if lb < la then missing_in "baseline" lb
        else missing_in "accelerated" la
  in
  walk db da;
  let overread = ref 0 in
  if !divergence = None then
    List.iter
      (fun l ->
        if !divergence = None then begin
          let roots tbl = match Hashtbl.find_opt tbl l with
            | Some ids -> !ids
            | None -> []
          in
          let lb = mem_leaf_lines sb ~line_bytes (roots wb) in
          let la = mem_leaf_lines sa ~line_bytes (roots wa) in
          if not (IS.subset lb la) then begin
            let missing = IS.min_elt (IS.diff lb la) in
            diverge
              {
                location = Some (Effects.Line l);
                base_index = -1;
                accel_index = -1;
                base_term =
                  Printf.sprintf "depends on line[%#x]" missing;
                accel_term =
                  "declared (transitive) read footprint omits it";
                base_contributors = [];
                accel_contributors = [];
                reason =
                  Printf.sprintf
                    "baseline value of line %#x depends on memory input \
                     line %#x that no accelerated writer reads"
                    l missing;
              }
          end
          else overread := !overread + IS.cardinal (IS.diff la lb)
        end)
      db;
  let audits =
    { severity = Finding.Info;
      rule = "register-contract-skipped";
      count = 1;
      detail =
        "whole-rewrite strategy: final registers are kernel scratch and \
         not compared" }
    ::
    (if !overread > 0 then
       [ { severity = Finding.Info;
           rule = "accel-overread";
           count = !overread;
           detail =
             "line-inputs declared by accelerated writers beyond what the \
              baseline value depends on (summed over written lines)" } ]
     else [])
  in
  {
    verdict =
      (match !divergence with None -> Equivalent | Some w -> Divergent w);
    strategy = Dataflow;
    n_base = Array.length baseline;
    n_accel = Array.length accelerated;
    invocations = Array.length sa.Effects.accels;
    matched = 0;
    regions = 0;
    sigma_reg = 0;
    sigma_mem = 0;
    audits;
  }

(* {2 Entry point} *)

let non_accel_count instrs =
  Array.fold_left
    (fun n ins -> if is_accel ins then n else n + 1)
    0 instrs

let check ?(line_bytes = 64) ?(strategy = `Auto) ~baseline ~accelerated () =
  match strategy with
  | `Align -> check_align ~line_bytes baseline accelerated (align baseline accelerated)
  | `Dataflow -> check_dataflow ~line_bytes baseline accelerated
  | `Auto ->
      let al = align baseline accelerated in
      if al.misaligned = None then
        check_align ~line_bytes baseline accelerated al
      else
        (* An irreconcilable stream: either a mostly-aligned pair with a
           genuine defect (report it), or a wholesale rewrite (fall back
           to the dataflow contract). *)
        let frac =
          float_of_int al.n_matched
          /. float_of_int (max 1 (non_accel_count accelerated))
        in
        if frac >= 0.5 then check_align ~line_bytes baseline accelerated al
        else check_dataflow ~line_bytes baseline accelerated

(* {2 Rendering} *)

let audit_to_json a =
  let open Tca_util.Json in
  Obj
    [
      ("severity", String (Finding.severity_name a.severity));
      ("rule", String a.rule);
      ("count", Int a.count);
      ("detail", String a.detail);
    ]

let witness_to_json w =
  let open Tca_util.Json in
  Obj
    [
      ( "location",
        match w.location with
        | Some l -> String (loc_to_string l)
        | None -> String "instruction-stream" );
      ("base_index", Int w.base_index);
      ("accel_index", Int w.accel_index);
      ("base_term", String w.base_term);
      ("accel_term", String w.accel_term);
      ("base_contributors", List (List.map (fun i -> Int i) w.base_contributors));
      ( "accel_contributors",
        List (List.map (fun i -> Int i) w.accel_contributors) );
      ("reason", String w.reason);
    ]

let report_to_json r =
  let open Tca_util.Json in
  Obj
    [
      ( "verdict",
        String (match r.verdict with
                | Equivalent -> "equivalent"
                | Divergent _ -> "divergent") );
      ("strategy", String (strategy_name r.strategy));
      ("baseline_instrs", Int r.n_base);
      ("accelerated_instrs", Int r.n_accel);
      ("invocations", Int r.invocations);
      ("matched_common", Int r.matched);
      ("regions", Int r.regions);
      ("sigma_reg_channels", Int r.sigma_reg);
      ("sigma_mem_channels", Int r.sigma_mem);
      ( "witness",
        match r.verdict with
        | Equivalent -> Null
        | Divergent w -> witness_to_json w );
      ("audits", List (List.map audit_to_json r.audits));
    ]

let pp_report ppf r =
  let open Format in
  fprintf ppf "verdict:    %s@,"
    (match r.verdict with
    | Equivalent -> "EQUIVALENT"
    | Divergent _ -> "DIVERGENT");
  fprintf ppf "strategy:   %s@," (strategy_name r.strategy);
  fprintf ppf "instrs:     %d baseline / %d accelerated, %d invocations@,"
    r.n_base r.n_accel r.invocations;
  if r.strategy = Align then
    fprintf ppf "aligned:    %d common, %d regions, sigma %d reg / %d mem@,"
      r.matched r.regions r.sigma_reg r.sigma_mem;
  (match r.verdict with
  | Equivalent -> ()
  | Divergent w ->
      fprintf ppf "witness:@,";
      fprintf ppf "  location:    %s@,"
        (match w.location with
        | Some l -> loc_to_string l
        | None -> "instruction stream");
      if w.base_index >= 0 || w.accel_index >= 0 then
        fprintf ppf "  instruction: baseline %d / accelerated %d@,"
          w.base_index w.accel_index;
      fprintf ppf "  baseline:    %s@," w.base_term;
      fprintf ppf "  accelerated: %s@," w.accel_term;
      fprintf ppf "  reason:      %s@," w.reason);
  List.iter
    (fun a ->
      fprintf ppf "%s %s (%d): %s@,"
        (match a.severity with
        | Finding.Info -> "info   "
        | Finding.Warning -> "warning"
        | Finding.Error -> "error  ")
        a.rule a.count a.detail)
    r.audits
