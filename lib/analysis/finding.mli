(** Typed lint findings, the analysis analogue of {!Tca_util.Diag}.

    Every rule the lint pass ({!Lint}) can fire is one constructor with a
    payload precise enough for a tool to act on (instruction index,
    register number, cache-line address). Severities gate CI: the shipped
    workload generators must be clean at {!Warning} and above, while
    {!Info} findings are advisory (register-pressure and dead-memory
    hints that are statistically unavoidable in randomized traces). *)

type severity = Info | Warning | Error

val severity_order : severity -> int
(** [Info] 0, [Warning] 1, [Error] 2 — for threshold comparisons. *)

val severity_name : severity -> string

type t =
  | Use_before_def of { index : int; reg : int }
      (** Instruction [index] reads architectural register [reg] before
          any earlier instruction wrote it. *)
  | Dead_write of { index : int; reg : int; overwritten_at : int }
      (** The value written to [reg] at [index] is overwritten at
          [overwritten_at] without an intervening read. *)
  | Silent_store of { index : int; addr : int; overwritten_at : int }
      (** The store at [index] is overwritten by a later store to the
          same address ([overwritten_at]) with no intervening load;
          live-out stores (never overwritten) are not flagged. *)
  | Accel_dup_read of { index : int; line : int }
      (** The accelerator invocation at [index] lists cache line [line]
          more than once in its read set. *)
  | Accel_dup_write of { index : int; line : int }
      (** Duplicate line in an invocation's write set. *)
  | Accel_rw_overlap of { index : int; line : int }
      (** A line appears in both the read and the write set of the same
          invocation — a read-modify-write footprint. Informational:
          legitimate for in-place accelerators (e.g. the MMA's C tile). *)
  | Accel_app_overlap of { index : int; line : int; app_index : int }
      (** An accelerator read/write line is also touched by a plain
          load/store elsewhere in the trace (instruction [app_index]).
          The simulator enforces no ordering between accelerator memory
          and in-flight software accesses, so aliasing footprints make
          the timing model unsound. *)
  | Branch_site_conflict of { pc : int; srcs : int list }
      (** The static branch site [pc] executes with more than one
          distinct source register ([srcs], sorted). A fixed PC denotes
          fixed instruction bytes, so a genuine site always reads the
          same operand — inconsistent operands mean two co-resident
          generators are aliasing one [site_base] range (and corrupting
          each other's predictor state). *)
  | Noop_accel of { index : int }
      (** An [Accel] with empty read and write sets and zero compute
          latency: a no-op invocation that silently skews the derived
          [a] and [A] model inputs (also rejected by [Trace.validate]). *)
  | No_accel
      (** The trace contains no accelerator invocation, so the TCA model
          inputs [a], [v], [A] cannot be derived from it. *)
  | Empty_trace  (** Zero-length trace. *)
  | Config_granularity of {
      mean_instrs_per_invocation : float;
      break_even : float;
    }
      (** The trace's mean invocation granularity (instructions per
          invocation) sits below a modeled configuration break-even
          threshold (see {!Tca_model.Equations.config_break_even}):
          invocations arrive too often for the configuration mechanism
          to pay for itself. Only fired when the lint pass is given a
          threshold — configuration-free analyses never see it. *)

val severity : t -> severity
val rule_name : t -> string
(** Stable kebab-case rule identifier, e.g. ["use-before-def"]. *)

val message : t -> string
val to_string : t -> string
(** ["severity rule: message"], stable for test matching. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Tca_util.Json.t
(** [{"rule", "severity", "index" (or null), "message"}]. *)
