open Tca_uarch

type kind = True_reg | True_mem | Mem_data | Anti | Output

let kind_name = function
  | True_reg -> "true_reg"
  | True_mem -> "true_mem"
  | Mem_data -> "mem_data"
  | Anti -> "anti"
  | Output -> "output"

type edge = { src : int; dst : int; kind : kind }

type stats = {
  nodes : int;
  true_reg : int;
  true_mem : int;
  mem_data : int;
  anti : int;
  output : int;
  depth : int;
}

type t = {
  n : int;
  edges_rev : edge list;  (** newest first; reversed on demand *)
  preds : (int * kind) list array;
  stats : stats;
}

let length t = t.n
let edges t = List.rev t.edges_rev
let preds t i = t.preds.(i)
let stats t = t.stats

let src_regs (ins : Isa.instr) =
  let r1 = ins.Isa.src1 and r2 = ins.Isa.src2 in
  if r1 = Isa.no_reg then if r2 = Isa.no_reg then [] else [ r2 ]
  else if r2 = Isa.no_reg || r2 = r1 then [ r1 ]
  else [ r1; r2 ]

let build ?(line_bytes = 64) instrs =
  let n = Array.length instrs in
  let line a = a / line_bytes in
  let preds = Array.make n [] in
  let edges_rev = ref [] in
  let true_reg = ref 0
  and true_mem = ref 0
  and mem_data = ref 0
  and anti = ref 0
  and output = ref 0 in
  let add_edge src dst kind =
    edges_rev := { src; dst; kind } :: !edges_rev;
    preds.(dst) <- (src, kind) :: preds.(dst);
    incr
      (match kind with
      | True_reg -> true_reg
      | True_mem -> true_mem
      | Mem_data -> mem_data
      | Anti -> anti
      | Output -> output)
  in
  (* Last-writer / readers-since-last-write per architectural register. *)
  let last_writer = Array.make Isa.num_arch_regs (-1) in
  let readers_since = Array.make Isa.num_arch_regs [] in
  (* Youngest store per exact address (the simulator's forwarding match),
     and youngest writer (store or accelerator write) per cache line for
     the dataflow-only edges. *)
  let last_store : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let line_writer : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let line_accel_writer : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* Timing depth (in nodes) ending at each instruction. *)
  let depth_at = Array.make (max n 1) 1 in
  let max_depth = ref (if n = 0 then 0 else 1) in
  Array.iteri
    (fun i (ins : Isa.instr) ->
      let timing_pred p =
        if depth_at.(p) + 1 > depth_at.(i) then depth_at.(i) <- depth_at.(p) + 1
      in
      List.iter
        (fun r ->
          let w = last_writer.(r) in
          if w >= 0 then begin
            add_edge w i True_reg;
            timing_pred w
          end;
          readers_since.(r) <- i :: readers_since.(r))
        (src_regs ins);
      (match ins.Isa.op with
      | Isa.Load ->
          (match Hashtbl.find_opt last_store ins.Isa.addr with
          | Some st ->
              add_edge st i True_mem;
              timing_pred st
          | None -> ());
          (match Hashtbl.find_opt line_accel_writer (line ins.Isa.addr) with
          | Some w -> add_edge w i Mem_data
          | None -> ())
      | Isa.Store ->
          Hashtbl.replace last_store ins.Isa.addr i;
          Hashtbl.replace line_writer (line ins.Isa.addr) i
      | Isa.Accel a ->
          Array.iter
            (fun addr ->
              match Hashtbl.find_opt line_writer (line addr) with
              | Some w -> add_edge w i Mem_data
              | None -> ())
            a.Isa.reads;
          Array.iter
            (fun addr ->
              Hashtbl.replace line_writer (line addr) i;
              Hashtbl.replace line_accel_writer (line addr) i)
            a.Isa.writes
      | _ -> ());
      let dst = ins.Isa.dst in
      if dst <> Isa.no_reg then begin
        let w = last_writer.(dst) in
        if w >= 0 then add_edge w i Output;
        List.iter (fun r -> if r <> i then add_edge r i Anti) readers_since.(dst);
        last_writer.(dst) <- i;
        readers_since.(dst) <- []
      end;
      if depth_at.(i) > !max_depth then max_depth := depth_at.(i))
    instrs;
  {
    n;
    edges_rev = !edges_rev;
    preds;
    stats =
      {
        nodes = n;
        true_reg = !true_reg;
        true_mem = !true_mem;
        mem_data = !mem_data;
        anti = !anti;
        output = !output;
        depth = !max_depth;
      };
  }

let stats_to_json s =
  let open Tca_util.Json in
  Obj
    [
      ("nodes", Int s.nodes);
      ("true_reg_edges", Int s.true_reg);
      ("true_mem_edges", Int s.true_mem);
      ("mem_data_edges", Int s.mem_data);
      ("anti_edges", Int s.anti);
      ("output_edges", Int s.output);
      ("depth", Int s.depth);
    ]
