(** Semantic equivalence of a baseline/accelerated trace pair.

    The paper's model assumes the accelerated trace {e computes the same
    thing} as the baseline with the acceleratable work replaced by
    invocations; this module checks that assumption statically from the
    {!Effects} summaries of the two traces, and produces a minimal
    divergence witness when it fails.

    Two proof strategies:

    - {b align}: greedy alignment of the two instruction streams (common
      instructions match in order; every accelerated-side invocation
      opens a {e region} absorbing the baseline instructions it
      replaces). Equivalence then means (1) every matched common
      instruction reads corresponding values, where a value produced
      inside baseline region [k] corresponds to any declared output of
      invocation [k] (the uninterpreted-function binding), and (2) the
      final register file and memory image agree location-by-location
      under the same binding. Region-private effects the accelerated
      variant cannot see (scratch registers, hidden allocator state) are
      audited, not failed — except a region write to application-visible
      memory, which is a real divergence (an undeclared accelerator
      write).
    - {b dataflow}: for wholesale kernel rewrites with no
      instruction-level correspondence (dgemm), compares the final
      memory image at line granularity: identical written-line domains,
      and every memory input a baseline line's value depends on must be
      inside the transitive declared read footprint of its accelerated
      writers. Registers are kernel scratch under this contract.

    [`Auto] uses align when the streams align completely, falls back to
    dataflow when fewer than half the common instructions match, and
    reports the misalignment as a divergence in between. *)

type strategy = Align | Dataflow

val strategy_name : strategy -> string

(** {2 Alignment} (exposed for {!Assume}'s footprint audit) *)

type region = {
  ord : int;  (** invocation ordinal, in accelerated-trace order *)
  accel_index : int;  (** accelerated-trace index of the invocation *)
  base_start : int;  (** first baseline index absorbed *)
  base_len : int;
}

type alignment = {
  n_matched : int;
  base_match : int array;  (** baseline idx -> match id, or -1 (in a region) *)
  accel_match : int array;  (** accelerated idx -> match id, or -1 *)
  base_region : int array;  (** baseline idx -> region ordinal, or -1 *)
  regions : region array;
  misaligned : (int * int) option;
      (** first irreconcilable position; an index may equal the trace
          length when that side ran out *)
}

val instr_equal : Tca_uarch.Isa.instr -> Tca_uarch.Isa.instr -> bool
(** Structural equality across variants: ignores [pc] except for
    branches (builder pcs are sequential, branch-site pcs semantic). *)

val align :
  Tca_uarch.Isa.instr array -> Tca_uarch.Isa.instr array -> alignment

(** {2 Verdicts} *)

type witness = {
  location : Effects.loc option;
      (** [None] for an instruction-stream misalignment *)
  base_index : int;  (** instruction index, [-1] for final-state-only *)
  accel_index : int;
  base_term : string;
  accel_term : string;
  base_contributors : int list;  (** contributing baseline instr indices *)
  accel_contributors : int list;
  reason : string;
}

type verdict = Equivalent | Divergent of witness

type audit = {
  severity : Finding.severity;
  rule : string;
  count : int;
  detail : string;
}
(** Allowed-but-noteworthy consequences of region replacement,
    aggregated per rule. *)

type report = {
  verdict : verdict;
  strategy : strategy;
  n_base : int;
  n_accel : int;
  invocations : int;
  matched : int;  (** matched common instructions (align strategy) *)
  regions : int;
  sigma_reg : int;  (** distinct region-output channels bound through
                        accelerator destination registers *)
  sigma_mem : int;  (** ... through declared write lines *)
  audits : audit list;
}

val equivalent : report -> bool

val check :
  ?line_bytes:int ->
  ?strategy:[ `Auto | `Align | `Dataflow ] ->
  baseline:Tca_uarch.Isa.instr array ->
  accelerated:Tca_uarch.Isa.instr array ->
  unit ->
  report
(** [line_bytes] (default 64) must match the footprint granularity the
    traces were generated for; pass the configured L1 line size. Total
    work is linear in the trace sizes for align (memoised pair walk) and
    near-linear for dataflow. *)

val report_to_json : report -> Tca_util.Json.t
val witness_to_json : witness -> Tca_util.Json.t
val pp_report : Format.formatter -> report -> unit
