type severity = Info | Warning | Error

let severity_order = function Info -> 0 | Warning -> 1 | Error -> 2
let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"

type t =
  | Use_before_def of { index : int; reg : int }
  | Dead_write of { index : int; reg : int; overwritten_at : int }
  | Silent_store of { index : int; addr : int; overwritten_at : int }
  | Accel_dup_read of { index : int; line : int }
  | Accel_dup_write of { index : int; line : int }
  | Accel_rw_overlap of { index : int; line : int }
  | Accel_app_overlap of { index : int; line : int; app_index : int }
  | Branch_site_conflict of { pc : int; srcs : int list }
  | Noop_accel of { index : int }
  | No_accel
  | Empty_trace
  | Config_granularity of {
      mean_instrs_per_invocation : float;
      break_even : float;
    }

let severity = function
  | Use_before_def _ -> Warning
  | Dead_write _ -> Info
  | Silent_store _ -> Info
  | Accel_dup_read _ | Accel_dup_write _ -> Warning
  | Accel_rw_overlap _ -> Info
  | Accel_app_overlap _ -> Warning
  | Branch_site_conflict _ -> Warning
  | Noop_accel _ -> Error
  | No_accel -> Info
  | Empty_trace -> Error
  | Config_granularity _ -> Warning

let rule_name = function
  | Use_before_def _ -> "use-before-def"
  | Dead_write _ -> "dead-write"
  | Silent_store _ -> "silent-store"
  | Accel_dup_read _ -> "accel-dup-read"
  | Accel_dup_write _ -> "accel-dup-write"
  | Accel_rw_overlap _ -> "accel-rw-overlap"
  | Accel_app_overlap _ -> "accel-app-overlap"
  | Branch_site_conflict _ -> "branch-site-conflict"
  | Noop_accel _ -> "noop-accel"
  | No_accel -> "no-accel"
  | Empty_trace -> "empty-trace"
  | Config_granularity _ -> "config-break-even"

let index = function
  | Use_before_def { index; _ }
  | Dead_write { index; _ }
  | Silent_store { index; _ }
  | Accel_dup_read { index; _ }
  | Accel_dup_write { index; _ }
  | Accel_rw_overlap { index; _ }
  | Accel_app_overlap { index; _ }
  | Noop_accel { index } ->
      Some index
  | Branch_site_conflict _ | No_accel | Empty_trace | Config_granularity _ ->
      None

let message = function
  | Use_before_def { index; reg } ->
      Printf.sprintf "instruction %d reads r%d before any definition" index reg
  | Dead_write { index; reg; overwritten_at } ->
      Printf.sprintf
        "instruction %d writes r%d, overwritten at %d without a read" index reg
        overwritten_at
  | Silent_store { index; addr; overwritten_at } ->
      Printf.sprintf
        "store %d to 0x%x is overwritten by store %d with no intervening load"
        index addr overwritten_at
  | Accel_dup_read { index; line } ->
      Printf.sprintf "accel %d lists line 0x%x twice in its read set" index line
  | Accel_dup_write { index; line } ->
      Printf.sprintf "accel %d lists line 0x%x twice in its write set" index
        line
  | Accel_rw_overlap { index; line } ->
      Printf.sprintf "accel %d both reads and writes line 0x%x" index line
  | Accel_app_overlap { index; line; app_index } ->
      Printf.sprintf
        "accel %d touches line 0x%x also accessed by load/store at %d (no \
         ordering is enforced between them)"
        index line app_index
  | Branch_site_conflict { pc; srcs } ->
      Printf.sprintf
        "branch site 0x%x reads %d distinct source registers (%s): aliasing \
         site_base ranges"
        pc (List.length srcs)
        (String.concat "," (List.map (Printf.sprintf "r%d") srcs))
  | Noop_accel { index } ->
      Printf.sprintf
        "accel %d has no reads, no writes and zero compute latency" index
  | No_accel -> "trace contains no accelerator invocation"
  | Empty_trace -> "trace is empty"
  | Config_granularity { mean_instrs_per_invocation; break_even } ->
      Printf.sprintf
        "mean invocation granularity (%.0f instructions per invocation) \
         sits below the modeled configuration break-even (%.0f): at this \
         rate the configuration cost outweighs the acceleration (terms \
         (T1)-(T3))"
        mean_instrs_per_invocation break_even

let to_string t =
  Printf.sprintf "%s %s: %s" (severity_name (severity t)) (rule_name t)
    (message t)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let to_json t =
  let open Tca_util.Json in
  Obj
    [
      ("rule", String (rule_name t));
      ("severity", String (severity_name (severity t)));
      ("index", match index t with Some i -> Int i | None -> Null);
      ("message", String (message t));
    ]
