(** Symbolic effect summaries: an abstract interpretation of a trace
    into per-register and per-address value terms.

    Every instruction's result is a term over the initial machine state,
    with accelerator invocations treated as uninterpreted functions of
    their explicit register operand and the contents of their declared
    read lines. The summary is the semantic object the equivalence
    checker ({!Equiv}) compares across a baseline/accelerated trace
    pair, and the structure the fuzz differential validates against the
    concrete reference interpreter ({!interpret}).

    This is the value-flow sibling of {!Dag}: the same last-writer
    machinery (exact-address store cells plus line-granular accelerator
    clobbers), but recording {e which value} flows rather than {e that an
    edge exists}. *)

type loc = Reg of int | Mem of int  (** exact byte address *) | Line of int
    (** line base address (whole-line accelerator write) *)

(** Term nodes. Argument ids always precede the referencing node in the
    arena, so arena order is a topological order. *)
type node =
  | Zero  (** absent operand ([Isa.no_reg]) *)
  | Init_reg of int  (** register's pre-trace value *)
  | Init_mem of int  (** address's pre-trace value *)
  | Init_line of int  (** a whole line's pre-trace value *)
  | Op of { idx : int; cls : int; args : int array }
      (** result of instruction [idx] ([cls] is the
          {!Tca_uarch.Trace.Decoded} op code); for loads [args] is
          [|base; memory cell|], for stores [|base; source|] (the stored
          value), for branches [|src1|] (the tested value) *)
  | Accel_app of { idx : int; ord : int; unit : int; args : int array }
      (** invocation [ord] (0-based, in trace order) of TCA unit [unit]
          at instruction [idx], applied to its register operand and
          read-line terms; heterogeneous units compute different
          functions, so [unit] is part of the node's identity *)
  | Accel_out of { app : int; loc : loc }
      (** projection of one output location of invocation [app] *)

type t = {
  nodes : node array;  (** term arena, topologically ordered *)
  instr_node : int array;  (** node id per instruction index *)
  regs : int array;  (** final term per architectural register *)
  reg_written : bool array;  (** whether the trace ever wrote the register *)
  mem : (int, int) Hashtbl.t;  (** final term per exactly-written address *)
  line_owner : (int, int) Hashtbl.t;
      (** line base -> [Accel_app] node of the youngest whole-line
          accelerator write; covers addresses of the line without an
          exact [mem] cell *)
  accels : int array;  (** instruction index per invocation ordinal *)
  line_bytes : int;
}
(** Treat all fields as read-only. *)

val summarize : ?line_bytes:int -> Tca_uarch.Isa.instr array -> t
(** One linear scan; [line_bytes] (default 64) sets the granularity of
    accelerator read/write footprints. Never raises on inputs accepted
    by {!Tca_uarch.Trace.validate} (and tolerates most that are not). *)

val producer : t -> int -> int option
(** Instruction index that produced a node ([None] for initial-state
    leaves and [Zero]). *)

val term_to_string : ?max_depth:int -> t -> int -> string
(** Compact rendering of a term, truncated below [max_depth] (default 3)
    and eliding wide accelerator argument lists — for divergence
    witnesses, not round-tripping. *)

(** {2 Concrete reference semantics}

    An independent interpreter over concrete integers: initial state and
    operator semantics are fixed deterministic mixing functions, so any
    structural mistake in {!summarize} (a missed clobber, a stale cell,
    a wrong argument) shows up as a final-state disagreement. *)

type concrete = {
  c_regs : int array;
  c_mem : (int, int) Hashtbl.t;
  c_line_owner : (int, int) Hashtbl.t;
}

val interpret : ?line_bytes:int -> Tca_uarch.Isa.instr array -> concrete

val eval : t -> int array
(** Concrete value per arena node under the same initial-state and
    operator definitions as {!interpret}. *)

val check_agreement :
  ?line_bytes:int -> Tca_uarch.Isa.instr array -> (unit, string) result
(** The differential: {!summarize} + {!eval} must reproduce
    {!interpret}'s final registers, memory cells and line owners
    exactly. [Error] names the first disagreeing location. *)
