(** Analytical-model inputs derived statically from a trace pair.

    Everything [Tca_workloads.Meta] records by construction (the workload
    generator knows its own [a], [v], read/write sets) is here recovered
    from the traces alone: the accelerated fraction from the instruction
    count difference, the invocation rate from the [Accel] count, the
    per-invocation footprint from the accelerator read/write sets, and
    the expected fresh (L1-missing) lines per invocation from a static
    cache replay of the accelerated trace. The derived scenario feeds the
    paper's eqs. (1)-(9), closing the model-vs-simulator-vs-static
    three-way cross-check. *)

type t = {
  invocations : int;
  baseline_instrs : int;
  accelerated_instrs : int;
  acceleratable_instrs : int;
      (** baseline instructions replaced by accelerator invocations:
          [baseline - (accelerated - invocations)] *)
  a : float;  (** acceleratable fraction of the baseline *)
  v : float;  (** invocations per baseline instruction *)
  avg_reads : float;  (** accelerator read-set lines per invocation *)
  avg_writes : float;
  avg_fresh_lines : float;
      (** reads missing the L1 in a static replay of the accelerated
          trace through the configured hierarchy *)
  avg_compute_latency : float;
  accel_latency : float;
      (** per-invocation latency estimate in cycles, same formula as
          [Meta.accel_latency_estimate] *)
  mean_leading : float;
      (** mean instructions between an invocation and its predecessor
          (or trace start) in the accelerated trace *)
  mean_trailing : float;
      (** mean instructions between an invocation and its successor (or
          trace end) *)
}

val of_pair :
  cfg:Tca_uarch.Config.t ->
  baseline:Tca_uarch.Trace.t ->
  accelerated:Tca_uarch.Trace.t ->
  (t, Tca_util.Diag.t) result
(** [Error (Invalid _)] when the accelerated trace has no [Accel]
    instruction or the implied acceleratable fraction falls outside
    [0, 1] (the traces are not a baseline/accelerated pair). *)

val scenario :
  ?drain:Tca_interval.Drain.spec -> t ->
  (Tca_model.Params.scenario, Tca_util.Diag.t) result
(** The derived [(a, v, Latency accel_latency)] as a model scenario. *)

val accel_factor : t -> ipc:float -> (float, Tca_util.Diag.t) result
(** The equivalent acceleration factor [A] such that
    [Factor A] reproduces [accel_latency] at the given baseline IPC:
    [A = acceleratable / (v_inv * latency * ipc)] per invocation. *)

val to_json : t -> Tca_util.Json.t
val pp : Format.formatter -> t -> unit
