open Tca_uarch

type flag = {
  severity : Finding.severity;
  rule : string;
  equations : string;
  detail : string;
}

type unit_audit = {
  unit_id : int;
  u_invocations : int;
  u_inv_per_instr : float;
  u_latency_mean : float;
  u_latency_cv : float;
  u_gap_mean : float;
  u_gap_cv : float;
}

type t = {
  invocations : int;
  n_base : int;
  n_accel : int;
  accel_fraction : float;
  inv_per_instr : float;
  gap_mean : float;
  gap_cv : float;
  region_mean : float;
  region_cv : float;
  latency_mean : float;
  latency_cv : float;
  overlap_exposed_frac : float;
  undeclared_read_lines : int;
  overdeclared_read_lines : int;
  undeclared_write_lines : int;
  per_unit : unit_audit list;
  flags : flag list;
}

let mean_cv xs =
  let n = Array.length xs in
  if n = 0 then (Float.nan, Float.nan)
  else begin
    let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
    if n = 1 then (mean, 0.0)
    else begin
      let var =
        Array.fold_left (fun s x -> s +. ((x -. mean) ** 2.0)) 0.0 xs
        /. float_of_int n
      in
      let cv = if mean = 0.0 then 0.0 else sqrt var /. mean in
      (mean, cv)
    end
  end

let is_accel (ins : Isa.instr) =
  match ins.Isa.op with Isa.Accel _ -> true | _ -> false

(* Interior gaps: non-accel instruction counts between consecutive
   invocations of the accelerated trace. *)
let gaps accelerated =
  let acc_idx = ref [] in
  Array.iteri
    (fun i ins -> if is_accel ins then acc_idx := i :: !acc_idx)
    accelerated;
  let idxs = Array.of_list (List.rev !acc_idx) in
  let n = Array.length idxs in
  if n < 2 then [||]
  else Array.init (n - 1) (fun k -> float_of_int (idxs.(k + 1) - idxs.(k) - 1))

module IS = Set.Make (Int)

(* Per-region memory footprints of the replaced baseline code, measured
   against the invocation's declared line sets. A region "input" is a
   load of an address whose last writer is outside the region; a region
   "output" is any store. Both at line granularity, matching the
   declared footprints. *)
let footprint_audit ~line_bytes baseline accelerated (al : Equiv.alignment) =
  let line_of a = a / line_bytes * line_bytes in
  let n_regions = Array.length al.Equiv.regions in
  let reads = Array.make (max n_regions 1) IS.empty in
  let writes = Array.make (max n_regions 1) IS.empty in
  let writer : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  Array.iteri
    (fun idx (ins : Isa.instr) ->
      let region = al.Equiv.base_region.(idx) in
      match ins.Isa.op with
      | Isa.Load ->
          if region >= 0 then begin
            let external_writer =
              match Hashtbl.find_opt writer ins.Isa.addr with
              | None -> true
              | Some w -> al.Equiv.base_region.(w) <> region
            in
            if external_writer then
              reads.(region) <- IS.add (line_of ins.Isa.addr) reads.(region)
          end
      | Isa.Store ->
          Hashtbl.replace writer ins.Isa.addr idx;
          if region >= 0 then
            writes.(region) <- IS.add (line_of ins.Isa.addr) writes.(region)
      | _ -> ())
    baseline;
  let undeclared_r = ref 0 and overdeclared_r = ref 0 and undeclared_w = ref 0 in
  Array.iter
    (fun (r : Equiv.region) ->
      match accelerated.(r.Equiv.accel_index).Isa.op with
      | Isa.Accel { reads = dr; writes = dw; _ } ->
          let declared arr =
            Array.fold_left (fun s a -> IS.add (line_of a) s) IS.empty arr
          in
          let dr = declared dr and dw = declared dw in
          undeclared_r :=
            !undeclared_r + IS.cardinal (IS.diff reads.(r.Equiv.ord) dr);
          overdeclared_r :=
            !overdeclared_r + IS.cardinal (IS.diff dr reads.(r.Equiv.ord));
          undeclared_w :=
            !undeclared_w + IS.cardinal (IS.diff writes.(r.Equiv.ord) dw)
      | _ -> ())
    al.Equiv.regions;
  (!undeclared_r, !overdeclared_r, !undeclared_w)

(* Per-unit view of a multi-unit pair: invocation count, latency and
   same-unit gap statistics for each TCA unit the trace invokes. The gap
   is the instruction distance between consecutive invocations of the
   SAME unit (other units' invocations count as gap instructions), the
   [1/v_i] the composition rule works with. Empty when the pair uses at
   most one unit, so single-unit audits are unchanged. *)
let per_unit_audit ~n_base accelerated =
  let by_unit : (int, (int * float) list ref) Hashtbl.t = Hashtbl.create 4 in
  Array.iteri
    (fun i (ins : Isa.instr) ->
      match ins.Isa.op with
      | Isa.Accel { unit_id; compute_latency; _ } ->
          let cell =
            match Hashtbl.find_opt by_unit unit_id with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add by_unit unit_id l;
                l
          in
          cell := (i, float_of_int compute_latency) :: !cell
      | _ -> ())
    accelerated;
  if Hashtbl.length by_unit <= 1 then []
  else
    Hashtbl.fold (fun u l acc -> (u, List.rev !l) :: acc) by_unit []
    |> List.sort compare
    |> List.map (fun (unit_id, invs) ->
           let lats = Array.of_list (List.map snd invs) in
           let idxs = Array.of_list (List.map fst invs) in
           let n = Array.length idxs in
           let gaps =
             if n < 2 then [||]
             else
               Array.init (n - 1) (fun k ->
                   float_of_int (idxs.(k + 1) - idxs.(k) - 1))
           in
           let u_latency_mean, u_latency_cv = mean_cv lats in
           let u_gap_mean, u_gap_cv = mean_cv gaps in
           {
             unit_id;
             u_invocations = n;
             u_inv_per_instr =
               (if n_base = 0 then 0.0
                else float_of_int n /. float_of_int n_base);
             u_latency_mean;
             u_latency_cv;
             u_gap_mean;
             u_gap_cv;
           })

let audit ?(line_bytes = 64) ?(rob_size = 192)
    ?(config = Tca_model.Params.No_config) ~baseline ~accelerated () =
  let n_base = Array.length baseline in
  let n_accel = Array.length accelerated in
  let latencies = ref [] in
  let invocations = ref 0 in
  Array.iter
    (fun (ins : Isa.instr) ->
      match ins.Isa.op with
      | Isa.Accel { compute_latency; _ } ->
          incr invocations;
          latencies := float_of_int compute_latency :: !latencies
      | _ -> ())
    accelerated;
  let invocations = !invocations in
  let per_unit = per_unit_audit ~n_base accelerated in
  let latency_mean, latency_cv =
    mean_cv (Array.of_list (List.rev !latencies))
  in
  let g = gaps accelerated in
  let gap_mean, gap_cv = mean_cv g in
  let overlap_exposed_frac =
    if Array.length g = 0 then 0.0
    else
      float_of_int
        (Array.fold_left
           (fun n gap -> if gap < float_of_int rob_size then n + 1 else n)
           0 g)
      /. float_of_int (Array.length g)
  in
  let al = Equiv.align baseline accelerated in
  let aligned = al.Equiv.misaligned = None in
  let region_sizes =
    if aligned then
      Array.map
        (fun (r : Equiv.region) -> float_of_int r.Equiv.base_len)
        al.Equiv.regions
    else [||]
  in
  let region_mean, region_cv = mean_cv region_sizes in
  let replaced =
    if aligned then
      Array.fold_left
        (fun s (r : Equiv.region) -> s + r.Equiv.base_len)
        0 al.Equiv.regions
    else
      (* Wholesale rewrite: assume every non-accel accelerated
         instruction has a baseline counterpart. *)
      max 0 (n_base - (n_accel - invocations))
  in
  let accel_fraction =
    if n_base = 0 then 0.0 else float_of_int replaced /. float_of_int n_base
  in
  let inv_per_instr =
    if n_base = 0 then 0.0
    else float_of_int invocations /. float_of_int n_base
  in
  let undeclared_read_lines, overdeclared_read_lines, undeclared_write_lines =
    if aligned then footprint_audit ~line_bytes baseline accelerated al
    else (0, 0, 0)
  in
  let flags = ref [] in
  let flag severity rule equations detail =
    flags := { severity; rule; equations; detail } :: !flags
  in
  if invocations = 0 then
    flag Finding.Error "no-invocations" "(1)-(3)"
      "v = 0: no interval exists, the model inputs a, v, A cannot be \
       derived from this pair";
  let graded cv rule equations what =
    if Float.is_nan cv then ()
    else if cv > 1.0 then
      flag Finding.Warning rule equations
        (Printf.sprintf
           "%s varies strongly across invocations (CV %.2f): the model \
            uses the mean only, and its per-interval times are convex in \
            these quantities"
           what cv)
    else if cv > 0.5 then
      flag Finding.Info rule equations
        (Printf.sprintf "%s varies across invocations (CV %.2f)" what cv)
  in
  graded gap_cv "interval-nonuniform" "(1)-(3)"
    "inter-invocation distance (1/v)";
  graded region_cv "region-size-nonstationary" "(2)-(3)"
    "replaced-region size (a/v)";
  (* With several heterogeneous units the aggregate latency CV mostly
     measures the units' latency spread, which the composition rule
     models per unit — grade each unit's own stationarity instead. *)
  (match per_unit with
  | [] ->
      graded latency_cv "latency-nonstationary" "(2)"
        "invocation compute latency (t_accl)"
  | us ->
      flag Finding.Info "multi-unit" "(C1)-(C4)"
        (Printf.sprintf
           "pair invokes %d TCA units (%s): model inputs are derived per \
            unit and fed to the composition rule"
           (List.length us)
           (String.concat ", "
              (List.map
                 (fun u ->
                   Printf.sprintf "unit %d: %d invocations, t_i %.0f"
                     u.unit_id u.u_invocations u.u_latency_mean)
                 us)));
      List.iter
        (fun u ->
          graded u.u_latency_cv "latency-nonstationary" "(2), (C1)"
            (Printf.sprintf "unit %d invocation compute latency (t_%d)"
               u.unit_id u.unit_id))
        us);
  if not aligned then
    flag Finding.Info "regions-unattributable" "(2)-(3)"
      "the pair does not align instruction-by-instruction (wholesale \
       rewrite); a is estimated from the instruction-count deficit and \
       region-size stationarity is not measurable";
  if overlap_exposed_frac > 0.5 then
    flag Finding.Warning "drain-overlap-exposure" "(4)-(9)"
      (Printf.sprintf
         "%.0f%% of inter-invocation gaps are shorter than the ROB (%d): \
          adjacent invocations are window-co-resident, straining the \
          one-invocation-per-interval tiling behind the per-mode times"
         (100.0 *. overlap_exposed_frac)
         rob_size)
  else if overlap_exposed_frac > 0.25 then
    flag Finding.Info "drain-overlap-exposure" "(4)-(9)"
      (Printf.sprintf
         "%.0f%% of inter-invocation gaps are shorter than the ROB (%d)"
         (100.0 *. overlap_exposed_frac)
         rob_size);
  if undeclared_read_lines > 0 then
    flag Finding.Warning "undeclared-reads" "(2), cache model"
      (Printf.sprintf
         "replaced regions read %d line(s) outside the declared read \
          footprints: the simulator's accelerator memory traffic \
          under-counts"
         undeclared_read_lines);
  if undeclared_write_lines > 0 then
    flag Finding.Warning "undeclared-writes" "(2), cache model"
      (Printf.sprintf
         "replaced regions write %d line(s) outside the declared write \
          footprints (accelerator-private state the timing model never \
          moves)"
         undeclared_write_lines);
  if overdeclared_read_lines > 0 then
    flag Finding.Info "overdeclared-reads" "(2), cache model"
      (Printf.sprintf
         "declared read footprints include %d line(s) the replaced \
          regions never read from application state"
         overdeclared_read_lines);
  (* Configuration-cost preconditions, keyed to the (T1)-(T3) terms the
     caller says it models this pair with. [No_config] (the default)
     emits nothing, keeping configuration-free audits byte-identical. *)
  (match config with
  | Tca_model.Params.No_config -> ()
  | Tca_model.Params.Sync c ->
      flag Finding.Info "config-sync" "(T1)"
        (Printf.sprintf
           "every invocation carries a synchronous configuration cost \
            (%.0f cycles) on its critical path; (T1) adds it to each \
            per-mode interval time"
           c)
  | Tca_model.Params.Queued { t_config = c; depth } ->
      if (not (Float.is_nan gap_cv)) && gap_cv > 1.0 then
        flag Finding.Warning "config-queue-burst" "(T2)"
          (Printf.sprintf
             "invocation stream is bursty (gap CV %.2f): transient \
              bursts can fill the depth-%d descriptor queue, and (T2)'s \
              steady-state bound max(base, %.0f) — which ignores the \
              depth — underestimates the configuration stall"
             gap_cv depth c)
      else
        flag Finding.Info "config-queued" "(T2)"
          (Printf.sprintf
             "descriptor writes (%.0f cycles) overlap execution; (T2) \
              models the steady state as max(base, %.0f), in which the \
              depth-%d queue does not appear — valid for this pair's \
              regular invocation spacing (gap CV %s)"
             c c depth
             (if Float.is_nan gap_cv then "-"
              else Printf.sprintf "%.2f" gap_cv))
  | Tca_model.Params.Preprogrammed { t_config = c; invocations = n } ->
      if invocations > 0 && (n > 2 * invocations || 2 * n < invocations)
      then
        flag Finding.Warning "config-amortization" "(T3)"
          (Printf.sprintf
             "declared amortization horizon (%d invocations) differs \
              from the pair's measured count (%d) by more than 2x: \
              (T3)'s per-invocation share %.0f/%d misstates the \
              one-time cost"
             n invocations c n)
      else
        flag Finding.Info "config-preprog" "(T3)"
          (Printf.sprintf
             "one-time programming cost (%.0f cycles) amortized over %d \
              invocations; (T3) adds %.2f cycles to each interval"
             c n
             (c /. float_of_int (max n 1))));
  {
    invocations;
    n_base;
    n_accel;
    accel_fraction;
    inv_per_instr;
    gap_mean;
    gap_cv;
    region_mean;
    region_cv;
    latency_mean;
    latency_cv;
    overlap_exposed_frac;
    undeclared_read_lines;
    overdeclared_read_lines;
    undeclared_write_lines;
    per_unit;
    flags = List.rev !flags;
  }

let flag_to_json f =
  let open Tca_util.Json in
  Obj
    [
      ("severity", String (Finding.severity_name f.severity));
      ("rule", String f.rule);
      ("equations", String f.equations);
      ("detail", String f.detail);
    ]

let to_json t =
  let open Tca_util.Json in
  Obj
    ([
       ("invocations", Int t.invocations);
      ("baseline_instrs", Int t.n_base);
      ("accelerated_instrs", Int t.n_accel);
      ("accel_fraction", Float t.accel_fraction);
      ("inv_per_instr", Float t.inv_per_instr);
      ("gap_mean", Float t.gap_mean);
      ("gap_cv", Float t.gap_cv);
      ("region_mean", Float t.region_mean);
      ("region_cv", Float t.region_cv);
      ("latency_mean", Float t.latency_mean);
      ("latency_cv", Float t.latency_cv);
      ("overlap_exposed_frac", Float t.overlap_exposed_frac);
      ("undeclared_read_lines", Int t.undeclared_read_lines);
      ("overdeclared_read_lines", Int t.overdeclared_read_lines);
      ("undeclared_write_lines", Int t.undeclared_write_lines);
    ]
    @ (match t.per_unit with
      | [] -> []
      | us ->
          [
            ( "per_unit",
              List
                (List.map
                   (fun u ->
                     Obj
                       [
                         ("unit", Int u.unit_id);
                         ("invocations", Int u.u_invocations);
                         ("inv_per_instr", Float u.u_inv_per_instr);
                         ("latency_mean", Float u.u_latency_mean);
                         ("latency_cv", Float u.u_latency_cv);
                         ("gap_mean", Float u.u_gap_mean);
                         ("gap_cv", Float u.u_gap_cv);
                       ])
                   us) );
          ])
    @ [ ("flags", List (List.map flag_to_json t.flags)) ])

let pp ppf t =
  let open Format in
  let f ppf x = if Float.is_nan x then pp_print_string ppf "-" else fprintf ppf "%.2f" x in
  fprintf ppf "invocations: %d (a %.4f, v %.6f)@," t.invocations
    t.accel_fraction t.inv_per_instr;
  fprintf ppf "gaps:        mean %a, cv %a@," f t.gap_mean f t.gap_cv;
  fprintf ppf "regions:     mean %a, cv %a@," f t.region_mean f t.region_cv;
  fprintf ppf "latency:     mean %a, cv %a@," f t.latency_mean f t.latency_cv;
  fprintf ppf "overlap:     %.0f%% of gaps shorter than ROB@,"
    (100.0 *. t.overlap_exposed_frac);
  fprintf ppf "footprints:  %d undeclared reads, %d undeclared writes, %d \
               overdeclared reads (lines)@,"
    t.undeclared_read_lines t.undeclared_write_lines
    t.overdeclared_read_lines;
  List.iter
    (fun u ->
      fprintf ppf
        "unit %d:      %d invocations (v_%d %.6f), latency mean %a cv %a, \
         gap mean %a cv %a@,"
        u.unit_id u.u_invocations u.unit_id u.u_inv_per_instr f
        u.u_latency_mean f u.u_latency_cv f u.u_gap_mean f u.u_gap_cv)
    t.per_unit;
  List.iter
    (fun fl ->
      fprintf ppf "%s %s %s: %s@,"
        (match fl.severity with
        | Finding.Info -> "info   "
        | Finding.Warning -> "warning"
        | Finding.Error -> "error  ")
        fl.rule fl.equations fl.detail)
    t.flags
