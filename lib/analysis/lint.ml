open Tca_uarch

let src_regs (ins : Isa.instr) =
  let r1 = ins.Isa.src1 and r2 = ins.Isa.src2 in
  if r1 = Isa.no_reg then if r2 = Isa.no_reg then [] else [ r2 ]
  else if r2 = Isa.no_reg || r2 = r1 then [ r1 ]
  else [ r1; r2 ]

let run ?(line_bytes = 64) ?config_break_even instrs =
  let n = Array.length instrs in
  if n = 0 then [ Finding.Empty_trace ]
  else begin
    let line a = a / line_bytes in
    let out = ref [] in
    let emit f = out := f :: !out in
    (* Pre-pass: cache lines the plain load/store stream touches, for the
       accel-vs-application aliasing rule. *)
    let app_lines : (int, int) Hashtbl.t = Hashtbl.create 256 in
    Array.iteri
      (fun i (ins : Isa.instr) ->
        match ins.Isa.op with
        | Isa.Load | Isa.Store ->
            if not (Hashtbl.mem app_lines (line ins.Isa.addr)) then
              Hashtbl.add app_lines (line ins.Isa.addr) i
        | _ -> ())
      instrs;
    let defined = Array.make Isa.num_arch_regs false in
    (* Youngest unread register write, for the dead-write rule. *)
    let pending_write = Array.make Isa.num_arch_regs (-1) in
    (* Unread stores bucketed by cache line, for the silent-store rule:
       an accelerator read/write of the line consumes/clobbers every
       pending store in it. *)
    let pending_stores : (int, (int * int) list) Hashtbl.t =
      Hashtbl.create 256
    in
    (* Distinct non-empty source registers seen at each static branch
       PC: a fixed PC is fixed instruction bytes, so more than one
       operand register means two generators alias the same site. *)
    let branch_sites : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    let saw_accel = ref false in
    let n_accel = ref 0 in
    Array.iteri
      (fun i (ins : Isa.instr) ->
        List.iter
          (fun r ->
            if not defined.(r) then
              emit (Finding.Use_before_def { index = i; reg = r });
            pending_write.(r) <- -1)
          (src_regs ins);
        (match ins.Isa.op with
        | Isa.Load ->
            let l = line ins.Isa.addr in
            (match Hashtbl.find_opt pending_stores l with
            | Some entries ->
                Hashtbl.replace pending_stores l
                  (List.filter (fun (a, _) -> a <> ins.Isa.addr) entries)
            | None -> ())
        | Isa.Store ->
            let l = line ins.Isa.addr in
            let entries =
              Option.value ~default:[] (Hashtbl.find_opt pending_stores l)
            in
            List.iter
              (fun (a, j) ->
                if a = ins.Isa.addr then
                  emit
                    (Finding.Silent_store
                       { index = j; addr = a; overwritten_at = i }))
              entries;
            Hashtbl.replace pending_stores l
              ((ins.Isa.addr, i)
              :: List.filter (fun (a, _) -> a <> ins.Isa.addr) entries)
        | Isa.Branch ->
            if ins.Isa.src1 <> Isa.no_reg then begin
              let srcs =
                Option.value ~default:[]
                  (Hashtbl.find_opt branch_sites ins.Isa.pc)
              in
              if not (List.mem ins.Isa.src1 srcs) then
                Hashtbl.replace branch_sites ins.Isa.pc (ins.Isa.src1 :: srcs)
            end
        | Isa.Accel a ->
            saw_accel := true;
            incr n_accel;
            if
              Array.length a.Isa.reads = 0
              && Array.length a.Isa.writes = 0
              && a.Isa.compute_latency = 0
            then emit (Finding.Noop_accel { index = i });
            let seen_app = Hashtbl.create 8 in
            let check_app l =
              match Hashtbl.find_opt app_lines l with
              | Some app_index when not (Hashtbl.mem seen_app l) ->
                  Hashtbl.add seen_app l ();
                  emit
                    (Finding.Accel_app_overlap { index = i; line = l; app_index })
              | _ -> ()
            in
            let lines_of addrs =
              let seen = Hashtbl.create 8 in
              Array.iter
                (fun addr ->
                  let l = line addr in
                  Hashtbl.replace seen l (1 + Option.value ~default:0 (Hashtbl.find_opt seen l)))
                addrs;
              seen
            in
            let rl = lines_of a.Isa.reads and wl = lines_of a.Isa.writes in
            Hashtbl.iter
              (fun l c ->
                if c > 1 then emit (Finding.Accel_dup_read { index = i; line = l });
                if Hashtbl.mem wl l then
                  emit (Finding.Accel_rw_overlap { index = i; line = l });
                Hashtbl.remove pending_stores l;
                check_app l)
              rl;
            Hashtbl.iter
              (fun l c ->
                if c > 1 then
                  emit (Finding.Accel_dup_write { index = i; line = l });
                Hashtbl.remove pending_stores l;
                check_app l)
              wl
        | Isa.Int_alu | Isa.Int_mult | Isa.Fp_alu | Isa.Fp_mult -> ());
        let dst = ins.Isa.dst in
        if dst <> Isa.no_reg then begin
          if pending_write.(dst) >= 0 then
            emit
              (Finding.Dead_write
                 { index = pending_write.(dst); reg = dst; overwritten_at = i });
          pending_write.(dst) <- i;
          defined.(dst) <- true
        end)
      instrs;
    if not !saw_accel then emit Finding.No_accel;
    (* Configuration-wall check, only when the caller supplies a modeled
       break-even granularity (Equations.config_break_even). The measured
       granularity is the whole inter-invocation interval (1/v in
       instructions), an upper bound on the model's g = a/v — so a
       granularity below the threshold is certainly below break-even. *)
    (match config_break_even with
    | Some break_even when !n_accel > 0 ->
        let mean_instrs_per_invocation =
          float_of_int n /. float_of_int !n_accel
        in
        if mean_instrs_per_invocation < break_even then
          emit
            (Finding.Config_granularity
               { mean_instrs_per_invocation; break_even })
    | _ -> ());
    let conflicts =
      Hashtbl.fold
        (fun pc srcs acc ->
          if List.length srcs > 1 then
            Finding.Branch_site_conflict { pc; srcs = List.sort compare srcs }
            :: acc
          else acc)
        branch_sites []
    in
    let conflicts =
      List.sort
        (fun a b ->
          match (a, b) with
          | ( Finding.Branch_site_conflict { pc = p; _ },
              Finding.Branch_site_conflict { pc = q; _ } ) ->
              compare p q
          | _ -> 0)
        conflicts
    in
    List.rev_append !out conflicts
  end

let run_trace ?line_bytes ?config_break_even t =
  run ?line_bytes ?config_break_even t.Trace.instrs

let max_severity findings =
  List.fold_left
    (fun acc f ->
      let s = Finding.severity f in
      match acc with
      | None -> Some s
      | Some m ->
          if Finding.severity_order s > Finding.severity_order m then Some s
          else acc)
    None findings

let clean findings =
  match max_severity findings with
  | None | Some Finding.Info -> true
  | Some (Finding.Warning | Finding.Error) -> false

let findings_to_json findings =
  Tca_util.Json.List (List.map Finding.to_json findings)
