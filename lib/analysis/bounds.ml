open Tca_uarch

type t = {
  instrs : int;
  latency_bound : int;
  throughput_bound : int;
  rob_bound : int;
  cycles_lower_bound : int;
  ipc_upper_bound : float;
  critical_path_length : int;
}

let cdiv a b = (a + b - 1) / b

(* Store-to-load forwarding completes in one cycle regardless of the
   hierarchy, so any load with an earlier same-address store must be
   charged only 1 cycle to stay a lower bound. *)
let forwardable_loads instrs =
  let stored = Hashtbl.create 256 in
  Array.map
    (fun (ins : Isa.instr) ->
      match ins.Isa.op with
      | Isa.Load -> Hashtbl.mem stored ins.Isa.addr
      | Isa.Store ->
          Hashtbl.replace stored ins.Isa.addr ();
          false
      | _ -> false)
    instrs

let min_latency (cfg : Config.t) ~forwardable (ins : Isa.instr) =
  let l1_hit = cfg.Config.mem.Mem_hier.l1.Cache.hit_latency in
  match ins.Isa.op with
  | Isa.Int_alu | Isa.Branch -> cfg.Config.latencies.Config.int_alu
  | Isa.Int_mult -> cfg.Config.latencies.Config.int_mult
  | Isa.Fp_alu -> cfg.Config.latencies.Config.fp_alu
  | Isa.Fp_mult -> cfg.Config.latencies.Config.fp_mult
  | Isa.Store -> 1
  | Isa.Load -> if forwardable then 1 else l1_hit
  | Isa.Accel a ->
      let reads = if Array.length a.Isa.reads > 0 then l1_hit else 0 in
      let writes = if Array.length a.Isa.writes > 0 then 1 else 0 in
      max 1 (a.Isa.compute_latency + reads + writes)

let compute ?dag (cfg : Config.t) instrs =
  let n = Array.length instrs in
  if n = 0 then
    {
      instrs = 0;
      latency_bound = 0;
      throughput_bound = 0;
      rob_bound = 0;
      cycles_lower_bound = 0;
      ipc_upper_bound = 0.0;
      critical_path_length = 0;
    }
  else begin
    let dag = match dag with Some d -> d | None -> Dag.build instrs in
    let fwd = forwardable_loads instrs in
    let lat = Array.make n 1 in
    Array.iteri
      (fun i ins -> lat.(i) <- min_latency cfg ~forwardable:fwd.(i) ins)
      instrs;
    (* Latency bound: earliest-completion recurrence over the timing
       edges, with the dispatch-bandwidth floor on the earliest issue. *)
    let e = Array.make n 0 in
    let chain = Array.make n 1 in
    let lat_sum = ref 0 in
    for i = 0 to n - 1 do
      let issue = ref ((i / cfg.Config.dispatch_width) + 1) in
      List.iter
        (fun (p, kind) ->
          match kind with
          | Dag.True_reg | Dag.True_mem ->
              if e.(p) > !issue then issue := e.(p);
              if chain.(p) + 1 > chain.(i) then chain.(i) <- chain.(p) + 1
          | Dag.Mem_data | Dag.Anti | Dag.Output -> ())
        (Dag.preds dag i);
      e.(i) <- !issue + lat.(i);
      lat_sum := !lat_sum + lat.(i) + cfg.Config.commit_depth + 1
    done;
    let e_max = ref 0 and critical = ref 0 in
    for i = 0 to n - 1 do
      if e.(i) > !e_max then e_max := e.(i);
      if chain.(i) > !critical then critical := chain.(i)
    done;
    let latency_bound = !e_max + cfg.Config.commit_depth + 1 in
    (* Throughput bound: per-cycle resource ceilings. *)
    let n_int = ref 0
    and n_mult = ref 0
    and n_fp = ref 0
    and port_ops = ref 0
    and accel_service = ref 0 in
    Array.iteri
      (fun i (ins : Isa.instr) ->
        match ins.Isa.op with
        | Isa.Int_alu | Isa.Branch -> incr n_int
        | Isa.Int_mult -> incr n_mult
        | Isa.Fp_alu | Isa.Fp_mult -> incr n_fp
        | Isa.Load -> if not fwd.(i) then incr port_ops
        | Isa.Store -> ()
        | Isa.Accel a ->
            port_ops :=
              !port_ops + Array.length a.Isa.reads + Array.length a.Isa.writes;
            accel_service := !accel_service + lat.(i))
      instrs;
    let widths =
      [
        cdiv n cfg.Config.dispatch_width;
        cdiv n cfg.Config.issue_width;
        cdiv n cfg.Config.commit_width;
        cdiv !n_int cfg.Config.int_alu_units;
        cdiv !n_mult cfg.Config.int_mult_units;
        cdiv !n_fp cfg.Config.fp_units;
        cdiv !port_ops cfg.Config.mem_ports;
        (match cfg.Config.tca_occupancy with
        | Config.Exclusive -> !accel_service
        | Config.Pipelined -> 0);
      ]
    in
    let throughput_bound = List.fold_left max 0 widths in
    (* ROB bound: Little's law over the minimum per-slot residency. *)
    let rob_bound = cdiv !lat_sum cfg.Config.rob_size in
    let cycles_lower_bound = max latency_bound (max throughput_bound rob_bound) in
    {
      instrs = n;
      latency_bound;
      throughput_bound;
      rob_bound;
      cycles_lower_bound;
      ipc_upper_bound = float_of_int n /. float_of_int cycles_lower_bound;
      critical_path_length = !critical;
    }
  end

let to_json b =
  let open Tca_util.Json in
  Obj
    [
      ("instrs", Int b.instrs);
      ("latency_bound", Int b.latency_bound);
      ("throughput_bound", Int b.throughput_bound);
      ("rob_bound", Int b.rob_bound);
      ("cycles_lower_bound", Int b.cycles_lower_bound);
      ("ipc_upper_bound", Float b.ipc_upper_bound);
      ("critical_path_length", Int b.critical_path_length);
    ]

let pp fmt b =
  Format.fprintf fmt
    "instrs %d: cycles >= %d (latency %d, throughput %d, rob %d), IPC <= \
     %.3f, critical path %d instrs"
    b.instrs b.cycles_lower_bound b.latency_bound b.throughput_bound
    b.rob_bound b.ipc_upper_bound b.critical_path_length
