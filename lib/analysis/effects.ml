open Tca_uarch

type loc = Reg of int | Mem of int | Line of int

type node =
  | Zero
  | Init_reg of int
  | Init_mem of int
  | Init_line of int
  | Op of { idx : int; cls : int; args : int array }
  | Accel_app of { idx : int; ord : int; unit : int; args : int array }
  | Accel_out of { app : int; loc : loc }

type t = {
  nodes : node array;
  instr_node : int array;
  regs : int array;
  reg_written : bool array;
  mem : (int, int) Hashtbl.t;
  line_owner : (int, int) Hashtbl.t;
  accels : int array;
  line_bytes : int;
}

(* Growable arena; argument node ids are always created before the node
   that references them, so the arena order is a topological order — the
   evaluator below exploits this to run as one forward pass. *)
type arena = { mutable buf : node array; mutable len : int }

let arena_push a n =
  if a.len = Array.length a.buf then begin
    let buf = Array.make (max 16 (2 * a.len)) Zero in
    Array.blit a.buf 0 buf 0 a.len;
    a.buf <- buf
  end;
  a.buf.(a.len) <- n;
  a.len <- a.len + 1;
  a.len - 1

let line_of ~line_bytes addr = addr / line_bytes * line_bytes

let cls_of op = Trace.Decoded.op_code op

(* Sorted exact-address cells currently live inside one line. *)
let line_cells line_keys mem l =
  match Hashtbl.find_opt line_keys l with
  | None -> []
  | Some addrs ->
      List.filter (Hashtbl.mem mem) (List.sort_uniq compare !addrs)

let summarize ?(line_bytes = 64) instrs =
  let n = Array.length instrs in
  let ar = { buf = Array.make (max 16 (2 * n)) Zero; len = 0 } in
  let zero = arena_push ar Zero in
  let regs = Array.init Isa.num_arch_regs (fun r -> arena_push ar (Init_reg r)) in
  let reg_written = Array.make Isa.num_arch_regs false in
  let mem : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let line_keys : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let line_owner : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let instr_node = Array.make (max n 1) (-1) in
  let accels_rev = ref [] in
  let n_accels = ref 0 in
  let reg_term r = if r = Isa.no_reg then zero else regs.(r) in
  let line_base_term l =
    match Hashtbl.find_opt line_owner l with
    | Some app -> arena_push ar (Accel_out { app; loc = Line l })
    | None -> arena_push ar (Init_line l)
  in
  let mem_term addr =
    match Hashtbl.find_opt mem addr with
    | Some id -> id
    | None -> (
        match Hashtbl.find_opt line_owner (line_of ~line_bytes addr) with
        | Some app -> arena_push ar (Accel_out { app; loc = Mem addr })
        | None -> arena_push ar (Init_mem addr))
  in
  let bind_mem addr id =
    if not (Hashtbl.mem mem addr) then begin
      let l = line_of ~line_bytes addr in
      match Hashtbl.find_opt line_keys l with
      | Some cells -> cells := addr :: !cells
      | None -> Hashtbl.add line_keys l (ref [ addr ])
    end;
    Hashtbl.replace mem addr id
  in
  Array.iteri
    (fun i (ins : Isa.instr) ->
      let cls = cls_of ins.Isa.op in
      match ins.Isa.op with
      | Isa.Int_alu | Isa.Int_mult | Isa.Fp_alu | Isa.Fp_mult ->
          let args = [| reg_term ins.Isa.src1; reg_term ins.Isa.src2 |] in
          let id = arena_push ar (Op { idx = i; cls; args }) in
          instr_node.(i) <- id;
          if ins.Isa.dst <> Isa.no_reg then begin
            regs.(ins.Isa.dst) <- id;
            reg_written.(ins.Isa.dst) <- true
          end
      | Isa.Load ->
          let args = [| reg_term ins.Isa.src1; mem_term ins.Isa.addr |] in
          let id = arena_push ar (Op { idx = i; cls; args }) in
          instr_node.(i) <- id;
          if ins.Isa.dst <> Isa.no_reg then begin
            regs.(ins.Isa.dst) <- id;
            reg_written.(ins.Isa.dst) <- true
          end
      | Isa.Store ->
          let args = [| reg_term ins.Isa.src1; reg_term ins.Isa.src2 |] in
          let id = arena_push ar (Op { idx = i; cls; args }) in
          instr_node.(i) <- id;
          bind_mem ins.Isa.addr id
      | Isa.Branch ->
          let args = [| reg_term ins.Isa.src1 |] in
          instr_node.(i) <- arena_push ar (Op { idx = i; cls; args })
      | Isa.Accel a ->
          let ord = !n_accels in
          incr n_accels;
          accels_rev := i :: !accels_rev;
          (* The invocation is an uninterpreted function of its explicit
             register operand and the current contents of every declared
             read line: the whole-line base value plus each exact cell. *)
          let args = ref [ reg_term ins.Isa.src1 ] in
          Array.iter
            (fun addr ->
              let l = line_of ~line_bytes addr in
              args := line_base_term l :: !args;
              List.iter
                (fun cell -> args := Hashtbl.find mem cell :: !args)
                (line_cells line_keys mem l))
            a.Isa.reads;
          let args = Array.of_list (List.rev !args) in
          let app =
            arena_push ar (Accel_app { idx = i; ord; unit = a.Isa.unit_id; args })
          in
          instr_node.(i) <- app;
          if ins.Isa.dst <> Isa.no_reg then begin
            regs.(ins.Isa.dst) <- arena_push ar (Accel_out { app; loc = Reg ins.Isa.dst });
            reg_written.(ins.Isa.dst) <- true
          end;
          Array.iter
            (fun addr ->
              let l = line_of ~line_bytes addr in
              List.iter
                (fun cell ->
                  Hashtbl.replace mem cell
                    (arena_push ar (Accel_out { app; loc = Mem cell })))
                (line_cells line_keys mem l);
              Hashtbl.replace line_owner l app)
            a.Isa.writes)
    instrs;
  {
    nodes = Array.sub ar.buf 0 ar.len;
    instr_node;
    regs;
    reg_written;
    mem;
    line_owner;
    accels = Array.of_list (List.rev !accels_rev);
    line_bytes;
  }

(* {2 Concrete reference semantics}

   A deliberately independent implementation of the same semantics over
   concrete integers, used as the differential oracle: evaluating the
   symbolic summary under [mix]-defined initial state must reproduce the
   interpreter's final state exactly. *)

let mix a b =
  let x = (a lxor (b * 0x100000001B3)) * 0x2545F4914F6CDD1D in
  x lxor (x lsr 31)

let zero_value = mix 9 9
let init_reg_value r = mix 11 r
let init_mem_value a = mix 12 a
let init_line_value l = mix 13 l

let loc_value = function
  | Reg r -> mix 14 r
  | Mem a -> mix 15 a
  | Line l -> mix 16 l

let op_value cls args = Array.fold_left mix (mix 1 cls) args
(* [unit] is part of the uninterpreted function's identity: the same
   arguments on a different (heterogeneous) unit give a different
   value. *)
let app_value ~unit ord args = Array.fold_left mix (mix (mix 8 ord) unit) args
let out_value app_v loc = mix (mix 10 app_v) (loc_value loc)

type concrete = {
  c_regs : int array;
  c_mem : (int, int) Hashtbl.t;
  c_line_owner : (int, int) Hashtbl.t;
}

let interpret ?(line_bytes = 64) instrs =
  let regs = Array.init Isa.num_arch_regs init_reg_value in
  let mem : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let line_keys : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let line_owner : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let reg_value r = if r = Isa.no_reg then zero_value else regs.(r) in
  let line_base_value l =
    match Hashtbl.find_opt line_owner l with
    | Some app_v -> out_value app_v (Line l)
    | None -> init_line_value l
  in
  let mem_value addr =
    match Hashtbl.find_opt mem addr with
    | Some v -> v
    | None -> (
        match Hashtbl.find_opt line_owner (line_of ~line_bytes addr) with
        | Some app_v -> out_value app_v (Mem addr)
        | None -> init_mem_value addr)
  in
  let bind_mem addr v =
    if not (Hashtbl.mem mem addr) then begin
      let l = line_of ~line_bytes addr in
      match Hashtbl.find_opt line_keys l with
      | Some cells -> cells := addr :: !cells
      | None -> Hashtbl.add line_keys l (ref [ addr ])
    end;
    Hashtbl.replace mem addr v
  in
  let n_accels = ref 0 in
  Array.iter
    (fun (ins : Isa.instr) ->
      let cls = cls_of ins.Isa.op in
      match ins.Isa.op with
      | Isa.Int_alu | Isa.Int_mult | Isa.Fp_alu | Isa.Fp_mult ->
          let v = op_value cls [| reg_value ins.Isa.src1; reg_value ins.Isa.src2 |] in
          if ins.Isa.dst <> Isa.no_reg then regs.(ins.Isa.dst) <- v
      | Isa.Load ->
          let v = op_value cls [| reg_value ins.Isa.src1; mem_value ins.Isa.addr |] in
          if ins.Isa.dst <> Isa.no_reg then regs.(ins.Isa.dst) <- v
      | Isa.Store ->
          let v = op_value cls [| reg_value ins.Isa.src1; reg_value ins.Isa.src2 |] in
          bind_mem ins.Isa.addr v
      | Isa.Branch -> ()
      | Isa.Accel a ->
          let ord = !n_accels in
          incr n_accels;
          let args = ref [ reg_value ins.Isa.src1 ] in
          Array.iter
            (fun addr ->
              let l = line_of ~line_bytes addr in
              args := line_base_value l :: !args;
              List.iter
                (fun cell -> args := Hashtbl.find mem cell :: !args)
                (line_cells line_keys mem l))
            a.Isa.reads;
          let app_v =
            app_value ~unit:a.Isa.unit_id ord (Array.of_list (List.rev !args))
          in
          if ins.Isa.dst <> Isa.no_reg then
            regs.(ins.Isa.dst) <- out_value app_v (Reg ins.Isa.dst);
          Array.iter
            (fun addr ->
              let l = line_of ~line_bytes addr in
              List.iter
                (fun cell ->
                  Hashtbl.replace mem cell (out_value app_v (Mem cell)))
                (line_cells line_keys mem l);
              Hashtbl.replace line_owner l app_v)
            a.Isa.writes)
    instrs;
  { c_regs = regs; c_mem = mem; c_line_owner = line_owner }

let eval t =
  let values = Array.make (Array.length t.nodes) 0 in
  Array.iteri
    (fun id node ->
      values.(id) <-
        (match node with
        | Zero -> zero_value
        | Init_reg r -> init_reg_value r
        | Init_mem a -> init_mem_value a
        | Init_line l -> init_line_value l
        | Op { cls; args; _ } ->
            op_value cls (Array.map (fun a -> values.(a)) args)
        | Accel_app { ord; unit; args; _ } ->
            app_value ~unit ord (Array.map (fun a -> values.(a)) args)
        | Accel_out { app; loc } -> out_value values.(app) loc))
    t.nodes;
  values

let check_agreement ?(line_bytes = 64) instrs =
  let sym = summarize ~line_bytes instrs in
  let conc = interpret ~line_bytes instrs in
  let values = eval sym in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let mismatch = ref None in
  for r = 0 to Isa.num_arch_regs - 1 do
    if !mismatch = None && values.(sym.regs.(r)) <> conc.c_regs.(r) then
      mismatch := Some (Reg r)
  done;
  if !mismatch = None then
    Hashtbl.iter
      (fun addr id ->
        if !mismatch = None then
          match Hashtbl.find_opt conc.c_mem addr with
          | Some v when v = values.(id) -> ()
          | _ -> mismatch := Some (Mem addr))
      sym.mem;
  if !mismatch = None && Hashtbl.length sym.mem <> Hashtbl.length conc.c_mem
  then mismatch := Some (Mem (-1));
  if !mismatch = None then
    Hashtbl.iter
      (fun l app ->
        if !mismatch = None then
          match Hashtbl.find_opt conc.c_line_owner l with
          | Some v when v = values.(app) -> ()
          | _ -> mismatch := Some (Line l))
      sym.line_owner;
  if !mismatch = None
     && Hashtbl.length sym.line_owner <> Hashtbl.length conc.c_line_owner
  then mismatch := Some (Line (-1));
  match !mismatch with
  | None -> Ok ()
  | Some (Reg r) -> fail "symbolic/concrete disagreement at register r%d" r
  | Some (Mem a) -> fail "symbolic/concrete disagreement at address %#x" a
  | Some (Line l) -> fail "symbolic/concrete disagreement at line %#x" l

let producer t id =
  match t.nodes.(id) with
  | Op { idx; _ } | Accel_app { idx; _ } -> Some idx
  | Accel_out { app; _ } -> (
      match t.nodes.(app) with Accel_app { idx; _ } -> Some idx | _ -> None)
  | Zero | Init_reg _ | Init_mem _ | Init_line _ -> None

let op_short cls =
  let open Trace.Decoded in
  if cls = op_int_alu then "alu"
  else if cls = op_int_mult then "mul"
  else if cls = op_fp_alu then "fadd"
  else if cls = op_fp_mult then "fmul"
  else if cls = op_load then "load"
  else if cls = op_store then "store"
  else if cls = op_branch then "br"
  else "accel"

let rec pp_term_depth t buf depth id =
  let add = Buffer.add_string buf in
  match t.nodes.(id) with
  | Zero -> add "_"
  | Init_reg r -> add (Printf.sprintf "init:r%d" r)
  | Init_mem a -> add (Printf.sprintf "init:[%#x]" a)
  | Init_line l -> add (Printf.sprintf "init:line[%#x]" l)
  | Op { idx; cls; args } ->
      add (Printf.sprintf "%s#%d" (op_short cls) idx);
      pp_args t buf depth args
  | Accel_app { ord; idx; unit; args } ->
      add
        (if unit = 0 then Printf.sprintf "accel%d#%d" ord idx
         else Printf.sprintf "accel%d@u%d#%d" ord unit idx);
      pp_args t buf depth args
  | Accel_out { app; loc } -> (
      (match t.nodes.(app) with
      | Accel_app { ord; idx; unit; _ } ->
          add
            (if unit = 0 then Printf.sprintf "accel%d#%d" ord idx
             else Printf.sprintf "accel%d@u%d#%d" ord unit idx)
      | _ -> add "accel?");
      match loc with
      | Reg r -> add (Printf.sprintf ".r%d" r)
      | Mem a -> add (Printf.sprintf ".[%#x]" a)
      | Line l -> add (Printf.sprintf ".line[%#x]" l))

and pp_args t buf depth args =
  let add = Buffer.add_string buf in
  if depth <= 0 then add "(…)"
  else begin
    add "(";
    Array.iteri
      (fun i a ->
        if i > 0 then add ", ";
        (* Wide argument lists (accelerator read sets) are elided past
           the first few entries. *)
        if i >= 4 && i < Array.length args - 1 then (if i = 4 then add "…")
        else pp_term_depth t buf (depth - 1) a)
      args;
    add ")"
  end

let term_to_string ?(max_depth = 3) t id =
  let buf = Buffer.create 64 in
  pp_term_depth t buf max_depth id;
  Buffer.contents buf
