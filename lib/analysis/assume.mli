(** Static audit of the paper's modelling assumptions against a concrete
    trace pair.

    The interval model (MODEL.md, eqs. (1)-(9)) treats the program as a
    tiling of identical intervals: invocations arrive every [1/v]
    instructions, each replaces [a/v] instructions of baseline work,
    each costs the same [t_accl], and each interval's drain/refill is
    independent of its neighbours. None of that is guaranteed by a real
    trace; this module measures how far a pair strays and emits graded
    flags keyed to the equations whose derivation the deviation strains.

    Complements {!Equiv}: equivalence asks whether the accelerated trace
    computes the right thing, this asks whether the model's {e timing}
    abstractions describe the pair the experiments feed it. *)

type flag = {
  severity : Finding.severity;
  rule : string;
  equations : string;  (** MODEL.md equation reference, e.g. ["(4)-(9)"] *)
  detail : string;
}

type unit_audit = {
  unit_id : int;
  u_invocations : int;
  u_inv_per_instr : float;  (** measured [v_i] (per baseline instruction) *)
  u_latency_mean : float;
  u_latency_cv : float;
  u_gap_mean : float;
      (** mean instruction distance between consecutive invocations of
          this unit (other units' invocations count as gap instructions
          — this is the [1/v_i] the composition rule works with) *)
  u_gap_cv : float;
}
(** Per-unit slice of the audit for pairs that invoke several TCA
    units. *)

type t = {
  invocations : int;
  n_base : int;
  n_accel : int;
  accel_fraction : float;  (** measured [a] *)
  inv_per_instr : float;  (** measured [v] (per baseline instruction) *)
  gap_mean : float;
      (** mean non-accel instructions between consecutive invocations;
          [nan] with fewer than two invocations *)
  gap_cv : float;
  region_mean : float;
      (** mean replaced-region size from the {!Equiv.align} attribution;
          [nan] when the pair does not align *)
  region_cv : float;
  latency_mean : float;  (** [nan] with no invocations *)
  latency_cv : float;
  overlap_exposed_frac : float;
      (** fraction of inter-invocation gaps shorter than the ROB *)
  undeclared_read_lines : int;
      (** lines replaced regions read from outside but the invocation
          does not declare (summed over regions) *)
  overdeclared_read_lines : int;
  undeclared_write_lines : int;
  per_unit : unit_audit list;
      (** per-unit breakdown, in unit-id order; empty when the pair
          invokes at most one unit, so single-unit audits (and their
          JSON) are unchanged. Multi-unit pairs get a [multi-unit] info
          flag and per-unit latency-stationarity grading instead of the
          aggregate one (whose CV would mostly measure the units'
          heterogeneity, which the composition rule models). *)
  flags : flag list;
}

val audit :
  ?line_bytes:int ->
  ?rob_size:int ->
  ?config:Tca_model.Params.config_cost ->
  baseline:Tca_uarch.Isa.instr array ->
  accelerated:Tca_uarch.Isa.instr array ->
  unit ->
  t
(** [line_bytes] defaults to 64, [rob_size] to 192; pass the configured
    values ([Cache.line_bytes cfg.mem.l1], [cfg.rob_size]) so the audit
    matches the simulated machine. Footprint metrics are only measured
    when the pair aligns (see {!Equiv.align}); otherwise they are 0 and
    a [regions-unattributable] flag is emitted.

    [config] (default [No_config]: no extra flags, audits and their JSON
    unchanged) states which configuration-cost term the caller models
    the pair with, and emits the matching precondition flag:
    [config-sync] [(T1)] notes the per-invocation critical-path cost;
    [config-queued]/[config-queue-burst] [(T2)] grades the burstiness
    assumption behind the depth-free steady-state bound (warning when
    the gap CV exceeds 1); [config-preprog]/[config-amortization] [(T3)]
    checks the declared amortization horizon against the measured
    invocation count (warning beyond a 2x mismatch). *)

val to_json : t -> Tca_util.Json.t
val pp : Format.formatter -> t -> unit
