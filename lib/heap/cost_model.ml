open Tca_uarch

let malloc_uops = 69
let free_uops = 37
let accel_latency = 1

(* Heap sequences use registers 48..55; application generators stay
   below 48. *)
let result_reg = 48
let r_class = 49
let r_head = 50
let r_next = 51
let r_stat = 52
let r_tmp0 = 53
let r_tmp1 = 54
let r_tmp2 = 55

(* Pad a sequence to its calibrated μop count with a repeating
   TCMalloc-flavoured pattern: size checks and pointer arithmetic spread
   over a few short chains (TCMalloc's fast path has modest ILP) with
   periodic metadata loads/stores. *)
let emit_filler b ~rng ~head_addr ~count =
  for k = 0 to count - 1 do
    match k mod 8 with
    | 3 ->
        let off = 64 + (8 * Tca_util.Prng.int rng 16) in
        Trace.Builder.add b (Isa.load ~dst:r_stat ~addr:(head_addr + off) ())
    | 6 ->
        let off = 64 + (8 * Tca_util.Prng.int rng 16) in
        Trace.Builder.add b
          (Isa.store ~src:r_stat ~addr:(head_addr + off) ())
    | 5 -> Trace.Builder.add b (Isa.int_alu ~src1:r_stat ~dst:r_stat ())
    (* Each temporary chain is seeded from r_stat (always live here: both
       callers load it before padding) on its first link, then
       self-chains — no temporary is ever read before its first write. *)
    | 0 | 4 ->
        let src = if k = 0 then r_stat else r_tmp0 in
        Trace.Builder.add b (Isa.int_alu ~src1:src ~dst:r_tmp0 ())
    | 1 | 7 ->
        let src = if k = 1 then r_stat else r_tmp1 in
        Trace.Builder.add b (Isa.int_alu ~src1:src ~dst:r_tmp1 ())
    | _ ->
        let src = if k = 2 then r_stat else r_tmp2 in
        Trace.Builder.add b (Isa.int_alu ~src1:src ~dst:r_tmp2 ())
  done

let emit_malloc b ~rng ~head_addr =
  let before = Trace.Builder.length b in
  (* Size-to-class computation: a short dependent chain. *)
  Trace.Builder.add b (Isa.int_alu ~dst:r_class ());
  Trace.Builder.add b (Isa.int_alu ~src1:r_class ~dst:r_class ());
  Trace.Builder.add b (Isa.int_alu ~src1:r_class ~dst:r_class ());
  (* Load the free-list head; it becomes the returned pointer. *)
  Trace.Builder.add b (Isa.load ~base:r_class ~dst:r_head ~addr:head_addr ());
  (* Fast-path check: list non-empty. A fixed site PC makes this the
     same static branch at every call, so predictors learn it is never
     taken — the predictable common case. *)
  Trace.Builder.add_at_site b (Isa.branch ~pc:0x100 ~src1:r_head ~taken:false ());
  (* Load the next pointer from the head block and store it back as the
     new list head. *)
  Trace.Builder.add b (Isa.load ~base:r_head ~dst:r_next ~addr:(head_addr + 8) ());
  Trace.Builder.add b (Isa.store ~src:r_next ~addr:head_addr ());
  (* Thread-cache statistics update. *)
  Trace.Builder.add b (Isa.load ~dst:r_stat ~addr:(head_addr + 16) ());
  Trace.Builder.add b (Isa.int_alu ~src1:r_stat ~dst:r_stat ());
  Trace.Builder.add b (Isa.store ~src:r_stat ~addr:(head_addr + 16) ());
  let used = Trace.Builder.length b - before in
  emit_filler b ~rng ~head_addr ~count:(malloc_uops - used - 1);
  (* Return value: pointer produced from the loaded head. *)
  Trace.Builder.add b (Isa.int_alu ~src1:r_head ~dst:result_reg ());
  assert (Trace.Builder.length b - before = malloc_uops)

let emit_free b ~rng ~head_addr ~ptr_reg =
  let before = Trace.Builder.length b in
  (* Class lookup for the freed pointer. *)
  Trace.Builder.add b (Isa.int_alu ~src1:ptr_reg ~dst:r_class ());
  Trace.Builder.add b (Isa.int_alu ~src1:r_class ~dst:r_class ());
  (* Push: old head becomes the block's next pointer, block becomes
     head. *)
  Trace.Builder.add b (Isa.load ~base:r_class ~dst:r_head ~addr:head_addr ());
  Trace.Builder.add b (Isa.store ~src:r_head ~addr:(head_addr + 8) ());
  Trace.Builder.add b (Isa.store ~src:ptr_reg ~addr:head_addr ());
  (* Statistics. *)
  Trace.Builder.add b (Isa.load ~dst:r_stat ~addr:(head_addr + 16) ());
  Trace.Builder.add b (Isa.int_alu ~src1:r_stat ~dst:r_stat ());
  Trace.Builder.add b (Isa.store ~src:r_stat ~addr:(head_addr + 16) ());
  let used = Trace.Builder.length b - before in
  emit_filler b ~rng ~head_addr ~count:(free_uops - used);
  assert (Trace.Builder.length b - before = free_uops)

let emit_malloc_accel b =
  Trace.Builder.add b
    (Isa.accel ~dst:result_reg ~compute_latency:accel_latency ~reads:[||]
       ~writes:[||] ())

let emit_free_accel b ~ptr_reg =
  Trace.Builder.add b
    (Isa.accel ~src1:ptr_reg ~compute_latency:accel_latency ~reads:[||]
       ~writes:[||] ())
