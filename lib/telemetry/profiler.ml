(* Self-time profiler over the wall-clock span events of a sink.

   The input is the same data the Chrome-trace export renders: 'X'
   spans on {!Sink.track_wall}, one lane ([tid]) per recording domain.
   Within a lane, spans produced by nested {!Timing.with_span} calls
   nest perfectly in time, so a single stack sweep recovers the call
   tree and each span's *self* time — its duration minus the time
   covered by its direct children. Self times are what make a "where
   did the wall-clock go" table honest: a driver span that spends 95%
   of its time inside [sim.step] children contributes only its 5% of
   glue to the driver row.

   Attribution: every span name maps to one of six fixed components
   (decode / sim / fork_join / cache / scheduler / other). The
   component table is computed over the *owner lane* — the lane
   holding the [profile.total] span that `tca profile` wraps around
   the whole run. Because that lane's spans nest exactly, the six
   buckets sum to the total span's duration: 100% of the run's
   wall-clock is attributed, by construction. Worker-lane time shows
   up separately in the per-lane and self-time tables (their CPU
   seconds overlap the owner's wall seconds).

   Determinism: for a fixed event list the report is byte-identical —
   all sorts have total tie-breaks and the component key set is fixed
   — which is what the schema-stability test pins. *)

type row = { name : string; calls : int; total_s : float; self_s : float }
type lane = { tid : int; busy_s : float; spans : int; tasks : int }

type t = {
  wall_s : float;
  cpu_s : float;
  owner_tid : int;
  lanes : lane list;
  rows : row list;
  components : (string * float) list;
  attributed_s : float;
  gc : (string * int) list;
}

let total_span_name = "profile.total"

let component_names =
  [ "decode"; "sim"; "fork_join"; "cache"; "scheduler"; "other" ]

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let component_of name =
  (* [task.run]'s self time is the job body's own compute — everything
     the body did not wrap in a named span — so it lands in "other",
     not in scheduler overhead. *)
  if name = total_span_name || name = "task.run" then "other"
  else if has_prefix ~prefix:"sim.decode" name then "decode"
  else if has_prefix ~prefix:"sim." name then "sim"
  else if has_prefix ~prefix:"telemetry." name || has_prefix ~prefix:"sink." name
  then "fork_join"
  else if has_prefix ~prefix:"cache." name then "cache"
  else if
    has_prefix ~prefix:"sched." name
    || has_prefix ~prefix:"pool." name
    || has_prefix ~prefix:"task." name
  then "scheduler"
  else "other"

(* One span being swept: bounds plus the accumulated direct-child time. *)
type node = {
  n_name : string;
  n_ts : float;
  n_end : float;
  n_dur : float;
  mutable n_child : float;
}

let of_events ?registry events =
  let spans =
    List.filter
      (fun (e : Sink.event) ->
        e.Sink.ph = 'X' && e.Sink.pid = Sink.track_wall)
      events
  in
  (* Group by lane (tid), keeping a deterministic lane order. *)
  let lane_tbl : (int, Sink.event list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Sink.event) ->
      match Hashtbl.find_opt lane_tbl e.Sink.tid with
      | Some l -> l := e :: !l
      | None -> Hashtbl.replace lane_tbl e.Sink.tid (ref [ e ]))
    spans;
  let tids =
    Hashtbl.fold (fun tid _ acc -> tid :: acc) lane_tbl []
    |> List.sort compare
  in
  let row_tbl : (string, row ref) Hashtbl.t = Hashtbl.create 32 in
  let add_row name ~total ~self =
    match Hashtbl.find_opt row_tbl name with
    | Some r ->
        r :=
          {
            !r with
            calls = !r.calls + 1;
            total_s = !r.total_s +. total;
            self_s = !r.self_s +. self;
          }
    | None ->
        Hashtbl.replace row_tbl name
          (ref { name; calls = 1; total_s = total; self_s = self })
  in
  let comp_tbl : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let add_comp ~owner name self =
    if owner then begin
      let c = component_of name in
      Hashtbl.replace comp_tbl c
        (self +. Option.value ~default:0.0 (Hashtbl.find_opt comp_tbl c))
    end
  in
  let total_span = ref None in
  (* Find the owner lane first: the one carrying [profile.total]. *)
  let owner_tid =
    let with_total =
      List.filter_map
        (fun tid ->
          let l = !(Hashtbl.find lane_tbl tid) in
          if List.exists (fun (e : Sink.event) -> e.Sink.name = total_span_name) l
          then Some tid
          else None)
        tids
    in
    match with_total with tid :: _ -> tid | [] -> (
      match tids with tid :: _ -> tid | [] -> 0)
  in
  let lanes =
    List.map
      (fun tid ->
        let evs = !(Hashtbl.find lane_tbl tid) in
        (* Parent before child: earlier start first; same start, longer
           first; a final name tie-break keeps the order total. *)
        let sorted =
          List.sort
            (fun (a : Sink.event) (b : Sink.event) ->
              match compare a.Sink.ts b.Sink.ts with
              | 0 -> (
                  match compare b.Sink.dur a.Sink.dur with
                  | 0 -> String.compare a.Sink.name b.Sink.name
                  | c -> c)
              | c -> c)
            evs
        in
        let owner = tid = owner_tid in
        let stack = ref [] in
        let busy = ref 0.0 in
        let tasks = ref 0 in
        let settle n =
          let self = Float.max 0.0 (n.n_dur -. n.n_child) /. 1e6 in
          add_row n.n_name ~total:(n.n_dur /. 1e6) ~self;
          add_comp ~owner n.n_name self
        in
        List.iter
          (fun (e : Sink.event) ->
            if e.Sink.name = "task.run" then incr tasks;
            if e.Sink.name = total_span_name && owner then total_span := Some e;
            let rec pop () =
              match !stack with
              | top :: rest when top.n_end <= e.Sink.ts ->
                  settle top;
                  stack := rest;
                  pop ()
              | _ -> ()
            in
            pop ();
            let n =
              {
                n_name = e.Sink.name;
                n_ts = e.Sink.ts;
                n_end = e.Sink.ts +. e.Sink.dur;
                n_dur = e.Sink.dur;
                n_child = 0.0;
              }
            in
            (match !stack with
            | top :: _ ->
                (* Clamp to the parent's extent so a straggler that
                   crosses its parent's end cannot drive self negative. *)
                top.n_child <-
                  top.n_child +. Float.min n.n_dur (top.n_end -. n.n_ts)
            | [] -> busy := !busy +. (n.n_dur /. 1e6));
            stack := n :: !stack)
          sorted;
        List.iter settle !stack;
        { tid; busy_s = !busy; spans = List.length evs; tasks = !tasks })
      tids
  in
  let wall_s =
    match !total_span with
    | Some e -> e.Sink.dur /. 1e6
    | None -> (
        match spans with
        | [] -> 0.0
        | _ ->
            let lo =
              List.fold_left
                (fun acc (e : Sink.event) -> Float.min acc e.Sink.ts)
                infinity spans
            and hi =
              List.fold_left
                (fun acc (e : Sink.event) ->
                  Float.max acc (e.Sink.ts +. e.Sink.dur))
                neg_infinity spans
            in
            (hi -. lo) /. 1e6)
  in
  let cpu_s = List.fold_left (fun acc l -> acc +. l.busy_s) 0.0 lanes in
  let components =
    List.map
      (fun c -> (c, Option.value ~default:0.0 (Hashtbl.find_opt comp_tbl c)))
      component_names
  in
  let attributed_s = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 components in
  let rows =
    Hashtbl.fold (fun _ r acc -> !r :: acc) row_tbl []
    |> List.sort (fun a b ->
           match compare b.self_s a.self_s with
           | 0 -> String.compare a.name b.name
           | c -> c)
  in
  let gc =
    match registry with
    | None -> []
    | Some reg ->
        List.filter_map
          (fun key ->
            match Metrics.counter_value reg ("task.gc." ^ key) with
            | 0 -> Some (key, 0)
            | n -> Some (key, n))
          [
            "minor_words"; "promoted_words"; "major_words";
            "minor_collections"; "major_collections";
          ]
  in
  { wall_s; cpu_s; owner_tid; lanes; rows; components; attributed_s; gc }

let of_sink sink = of_events ?registry:(Sink.metrics sink) (Sink.events sink)

let attributed_fraction t =
  if t.wall_s > 0.0 then t.attributed_s /. t.wall_s else 1.0

let to_json t =
  let open Tca_util.Json in
  Obj
    [
      ("schema", String "tca-profile-1");
      ("wall_s", Float t.wall_s);
      ("cpu_s", Float t.cpu_s);
      ("owner_tid", Int t.owner_tid);
      ("attributed_s", Float t.attributed_s);
      ("attributed_fraction", Float (attributed_fraction t));
      ("components", Obj (List.map (fun (k, v) -> (k, Float v)) t.components));
      ( "lanes",
        List
          (List.map
             (fun l ->
               Obj
                 [
                   ("tid", Int l.tid);
                   ("busy_s", Float l.busy_s);
                   ("spans", Int l.spans);
                   ("tasks", Int l.tasks);
                 ])
             t.lanes) );
      ( "self_time",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("name", String r.name);
                   ("calls", Int r.calls);
                   ("total_s", Float r.total_s);
                   ("self_s", Float r.self_s);
                 ])
             t.rows) );
      ("gc", Obj (List.map (fun (k, v) -> (k, Int v)) t.gc));
    ]

let pp fmt t =
  Format.fprintf fmt
    "profile: wall %.3f s, cpu %.3f s across %d domain lane(s)@." t.wall_s
    t.cpu_s (List.length t.lanes);
  Format.fprintf fmt
    "component attribution (owner lane, %.1f%% of wall attributed):@."
    (100.0 *. attributed_fraction t);
  List.iter
    (fun (c, s) ->
      Format.fprintf fmt "  %-10s %10.3f s  %5.1f%%@." c s
        (100.0 *. s /. Float.max 1e-9 t.attributed_s))
    t.components;
  if List.length t.lanes > 1 then begin
    Format.fprintf fmt "@.lanes:@.";
    List.iter
      (fun l ->
        Format.fprintf fmt
          "  domain %-4d busy %8.3f s  %5d span(s)  %4d task(s)%s@." l.tid
          l.busy_s l.spans l.tasks
          (if l.tid = t.owner_tid then "  [owner]" else ""))
      t.lanes
  end;
  Format.fprintf fmt "@.self time (all lanes):@.";
  Format.fprintf fmt "  %-28s %8s %12s %12s@." "span" "calls" "total s"
    "self s";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-28s %8d %12.4f %12.4f@." r.name r.calls
        r.total_s r.self_s)
    t.rows;
  match t.gc with
  | [] -> ()
  | gc ->
      Format.fprintf fmt "@.gc (summed over tasks):@.";
      List.iter
        (fun (k, v) -> Format.fprintf fmt "  %-20s %d@." k v)
        gc
