module Counter = struct
  type m = { mutable count : int }

  let add m d = if d > 0 then m.count <- m.count + d
  let incr m = m.count <- m.count + 1
  let value m = m.count
end

module Gauge = struct
  type m = { mutable v : float }

  let set m v = m.v <- v
  let value m = m.v
end

module Histogram = struct
  type m = {
    bounds : float array;  (* strictly increasing *)
    hits : int array;  (* per-bucket, last slot = overflow *)
    mutable n : int;
    mutable total : float;
  }

  let observe m v =
    let rec find i =
      if i >= Array.length m.bounds then Array.length m.bounds
      else if v <= m.bounds.(i) then i
      else find (i + 1)
    in
    let i = find 0 in
    m.hits.(i) <- m.hits.(i) + 1;
    m.n <- m.n + 1;
    m.total <- m.total +. v

  let count m = m.n
  let sum m = m.total

  let buckets m =
    let cum = ref 0 in
    List.init
      (Array.length m.bounds + 1)
      (fun i ->
        cum := !cum + m.hits.(i);
        ((if i < Array.length m.bounds then m.bounds.(i) else infinity), !cum))
end

type instrument =
  | I_counter of Counter.m
  | I_gauge of Gauge.m
  | I_histogram of Histogram.m

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let mismatch name existing wanted =
  Error
    (Tca_util.Diag.Invalid
       {
         field = "Metrics." ^ wanted;
         message =
           Printf.sprintf "%S is already registered as a %s" name
             (kind_name existing);
       })

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_counter c) -> Ok c
  | Some other -> mismatch name other "counter"
  | None ->
      let c = { Counter.count = 0 } in
      Hashtbl.replace t.tbl name (I_counter c);
      Ok c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_gauge g) -> Ok g
  | Some other -> mismatch name other "gauge"
  | None ->
      let g = { Gauge.v = 0.0 } in
      Hashtbl.replace t.tbl name (I_gauge g);
      Ok g

(* 1-2-5 ladder over ten decades: fits wall-clock seconds from
   microseconds up to ~17 minutes. *)
let default_bounds =
  Array.concat
    (List.init 10 (fun d ->
         let scale = 10.0 ** float_of_int (d - 6) in
         [| scale; 2.0 *. scale; 5.0 *. scale |]))

let check_bounds bounds =
  let ok = ref (Array.length bounds > 0) in
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then ok := false
      else if i > 0 && b <= bounds.(i - 1) then ok := false)
    bounds;
  if !ok then Ok ()
  else
    Error
      (Tca_util.Diag.Invalid
         {
           field = "Metrics.histogram";
           message = "bounds must be non-empty, finite and strictly increasing";
         })

let histogram ?(bounds = default_bounds) t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_histogram h) -> Ok h
  | Some other -> mismatch name other "histogram"
  | None -> (
      match check_bounds bounds with
      | Error d -> Error d
      | Ok () ->
          let h =
            {
              Histogram.bounds = Array.copy bounds;
              hits = Array.make (Array.length bounds + 1) 0;
              n = 0;
              total = 0.0;
            }
          in
          Hashtbl.replace t.tbl name (I_histogram h);
          Ok h)

let counter_exn t name = Tca_util.Diag.ok_exn (counter t name)
let gauge_exn t name = Tca_util.Diag.ok_exn (gauge t name)

let histogram_exn ?bounds t name =
  Tca_util.Diag.ok_exn (histogram ?bounds t name)

(* Merge is the single-threaded join step of the multi-domain story:
   each domain accumulates into its own registry and the owner folds
   them together afterwards, in a canonical order. It is total by
   design — a kind or bounds mismatch skips the instrument rather than
   raising, because a telemetry join must never kill a computation that
   already succeeded. *)
let merge_into dst src =
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) src.tbl []
    |> List.sort String.compare
  in
  List.iter
    (fun name ->
      match Hashtbl.find_opt src.tbl name with
      | None -> ()
      | Some (I_counter c) -> (
          match counter dst name with
          | Ok d -> Counter.add d (Counter.value c)
          | Error _ -> ())
      | Some (I_gauge g) -> (
          match gauge dst name with
          | Ok d -> Gauge.set d (Gauge.value g)
          | Error _ -> ())
      | Some (I_histogram h) -> (
          match histogram ~bounds:h.Histogram.bounds dst name with
          | Ok d when d.Histogram.bounds = h.Histogram.bounds ->
              Array.iteri
                (fun i n -> d.Histogram.hits.(i) <- d.Histogram.hits.(i) + n)
                h.Histogram.hits;
              d.Histogram.n <- d.Histogram.n + h.Histogram.n;
              d.Histogram.total <- d.Histogram.total +. h.Histogram.total
          | Ok _ | Error _ -> ()))
    names

let counter_value t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_counter c) -> Counter.value c
  | Some _ | None -> 0

let to_json t =
  let sorted kind =
    Hashtbl.fold
      (fun name i acc -> match kind i with Some j -> (name, j) :: acc | None -> acc)
      t.tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let open Tca_util.Json in
  Obj
    [
      ( "counters",
        Obj
          (sorted (function
            | I_counter c -> Some (Int (Counter.value c))
            | _ -> None)) );
      ( "gauges",
        Obj
          (sorted (function
            | I_gauge g -> Some (Float (Gauge.value g))
            | _ -> None)) );
      ( "histograms",
        Obj
          (sorted (function
            | I_histogram h ->
                Some
                  (Obj
                     [
                       ("count", Int (Histogram.count h));
                       ("sum", Float (Histogram.sum h));
                       ( "buckets",
                         List
                           (List.map
                              (fun (le, n) ->
                                Obj [ ("le", Float le); ("count", Int n) ])
                              (Histogram.buckets h)) );
                     ])
            | _ -> None)) );
    ]
