let t0 = lazy (Unix.gettimeofday ())

let now_us () = (Unix.gettimeofday () -. Lazy.force t0) *. 1e6

let update_registry sink name seconds =
  match Sink.metrics sink with
  | None -> ()
  | Some reg ->
      (match Metrics.histogram reg (name ^ ".seconds") with
      | Ok h -> Metrics.Histogram.observe h seconds
      | Error _ -> ());
      (match Metrics.counter reg (name ^ ".calls") with
      | Ok c -> Metrics.Counter.incr c
      | Error _ -> ())

let record_span telemetry name ~seconds =
  match telemetry with
  | None -> ()
  | Some sink ->
      let dur = Float.max 0.0 (seconds *. 1e6) in
      Sink.span sink ~pid:Sink.track_wall ~cat:"wall"
        ~ts:(now_us () -. dur) ~dur name;
      update_registry sink name seconds

let with_span ?(args = []) telemetry name f =
  match telemetry with
  | None -> f ()
  | Some sink ->
      let start = now_us () in
      let finish () =
        let stop = now_us () in
        Sink.span sink ~pid:Sink.track_wall ~cat:"wall" ~args ~ts:start
          ~dur:(stop -. start) name;
        update_registry sink name ((stop -. start) /. 1e6)
      in
      Fun.protect ~finally:finish f
