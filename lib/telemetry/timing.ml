(* Wall-clock source: CLOCK_MONOTONIC (via the bechamel clock stubs,
   nanosecond int64), not [Unix.gettimeofday]. The wall clock can be
   stepped — NTP corrections, manual adjustment — and a step between a
   span's start and stop used to surface as a negative duration in the
   trace. The monotonic clock cannot go backwards, so durations are
   non-negative by construction (asserted by a regression test). *)

let t0 = lazy (Monotonic_clock.now ())

let now_us () =
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) (Lazy.force t0)) /. 1e3

(* Wall spans are recorded on the lane of the domain that measured
   them: one Chrome pid (the wall track) with one tid per domain, so a
   parallel run opens in Perfetto as a per-domain flamegraph and the
   profiler can compute self-time within each lane independently. *)
let domain_tid () = (Domain.self () :> int)

let update_registry sink name seconds =
  match Sink.metrics sink with
  | None -> ()
  | Some reg ->
      (match Metrics.histogram reg (name ^ ".seconds") with
      | Ok h -> Metrics.Histogram.observe h seconds
      | Error _ -> ());
      (match Metrics.counter reg (name ^ ".calls") with
      | Ok c -> Metrics.Counter.incr c
      | Error _ -> ())

(* Without [ts] the start is back-computed as now - dur, which drifts
   late by however long the caller spent between measuring and
   recording. Callers that know their exact start (the scheduler's
   [task.run]) must pass it: a span whose recorded start is later than
   its first child's breaks the profiler's nesting sweep. *)
let record_span ?(args = []) ?ts telemetry name ~seconds =
  match telemetry with
  | None -> ()
  | Some sink ->
      let dur = Float.max 0.0 (seconds *. 1e6) in
      let ts = match ts with Some t -> t | None -> now_us () -. dur in
      Sink.span sink ~pid:Sink.track_wall ~tid:(domain_tid ()) ~cat:"wall"
        ~args ~ts ~dur name;
      update_registry sink name seconds

let with_span ?(args = []) telemetry name f =
  match telemetry with
  | None -> f ()
  | Some sink ->
      let start = now_us () in
      let finish () =
        let stop = now_us () in
        Sink.span sink ~pid:Sink.track_wall ~tid:(domain_tid ()) ~cat:"wall"
          ~args ~ts:start ~dur:(stop -. start) name;
        update_registry sink name ((stop -. start) /. 1e6)
      in
      Fun.protect ~finally:finish f
