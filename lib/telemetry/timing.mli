(** Wall-clock spans over an optional sink.

    This is the model-side and harness-side instrumentation primitive:
    wrap a sweep, a figure regeneration or a bench target in
    {!with_span} and the elapsed time lands in the sink (on
    {!Sink.track_wall}, in microseconds since the process first used
    this module) and, when the sink carries a registry, in a
    [<name>.seconds] histogram and a [<name>.calls] counter.

    The clock is CLOCK_MONOTONIC, not the adjustable wall clock, so a
    span can never have a negative duration (an NTP step between start
    and stop used to produce one). Spans are recorded with
    [tid = Domain.self ()], giving every domain its own timeline lane
    in the Chrome trace and in {!Profiler} reports.

    All functions accept [Sink.t option] so call sites can pass their
    [?telemetry] argument straight through; [None] runs the thunk with
    zero bookkeeping. Exceptions propagate unchanged, and the span is
    still recorded (spans measure elapsed time, not success). *)

val now_us : unit -> float
(** Microseconds of monotonic time elapsed since this module's first
    use in the process: a stable, never-decreasing base for trace
    timestamps. *)

val domain_tid : unit -> int
(** The calling domain's id, as used for the [tid] of recorded spans. *)

val with_span :
  ?args:(string * Tca_util.Json.t) list ->
  Sink.t option -> string -> (unit -> 'a) -> 'a

val record_span :
  ?args:(string * Tca_util.Json.t) list ->
  ?ts:float ->
  Sink.t option -> string -> seconds:float -> unit
(** Record an externally measured duration. [ts] is the span's start in
    {!now_us} microseconds; when omitted the span is assumed to end
    "now" — only safe if nothing happened between measuring [seconds]
    and this call, since a late recorded start can place a parent after
    its first child and confuse {!Profiler}'s nesting sweep. *)
