(** Wall-clock spans over an optional sink.

    This is the model-side and harness-side instrumentation primitive:
    wrap a sweep, a figure regeneration or a bench target in
    {!with_span} and the elapsed time lands in the sink (on
    {!Sink.track_wall}, in microseconds since the process first used
    this module) and, when the sink carries a registry, in a
    [<name>.seconds] histogram and a [<name>.calls] counter.

    All functions accept [Sink.t option] so call sites can pass their
    [?telemetry] argument straight through; [None] runs the thunk with
    zero bookkeeping. Exceptions propagate unchanged, and the span is
    still recorded (spans measure elapsed time, not success). *)

val now_us : unit -> float
(** Microseconds of wall-clock elapsed since this module's first use in
    the process: a stable base for trace timestamps. *)

val with_span :
  ?args:(string * Tca_util.Json.t) list ->
  Sink.t option -> string -> (unit -> 'a) -> 'a

val record_span : Sink.t option -> string -> seconds:float -> unit
(** Record an externally measured duration that ends "now". *)
