(** Event sink: the collection side of the telemetry layer.

    A sink is an in-memory, append-only buffer of timestamped events —
    counter samples, spans and instants — later rendered by
    {!Exporter} as JSON-lines or a Chrome [trace_event] file.

    The instrumented code (the pipeline, the model sweeps, the CLI)
    takes a [Sink.t option] as an optional [?telemetry] argument:
    [None] is the disabled path and costs one pointer comparison per
    instrumentation site, so a run without telemetry is unperturbed
    both behaviourally and (to measurement noise) in time.
    Instrumentation only ever {e reads} simulator state — enabling a
    sink must never change simulation results, and the fuzz harness
    asserts exactly that.

    Timestamps are abstract doubles: simulator events use the cycle
    number, wall-clock spans ({!Timing}) use microseconds since the
    sink was created. The two families are kept apart by track
    ([pid]): {!track_sim} and {!track_wall}. Within a track, [tid]
    names the lane — wall-clock spans use the recording domain's id,
    so a multi-domain run renders as one Perfetto lane per domain. *)

type t

val create : ?interval:int -> ?metrics:Metrics.t -> unit -> t
(** [interval] (default 256 cycles, min 1) is the sampling period used
    by the simulator's per-interval counters; [metrics] is an optional
    registry the instrumented code may also update (e.g. cumulative
    cycles simulated across runs). *)

val interval : t -> int
val metrics : t -> Metrics.t option

val track_sim : int
(** [pid] for cycle-timestamped simulator events (= 0). *)

val track_wall : int
(** [pid] for wall-clock spans from {!Timing} (= 1). *)

type event = {
  name : string;
  cat : string;
  ph : char;  (** Chrome phase: 'C' counter, 'X' complete span, 'i' instant *)
  ts : float;
  dur : float;  (** meaningful only for ph = 'X' *)
  pid : int;
  tid : int;  (** lane within the track; domain id for wall spans *)
  args : (string * Tca_util.Json.t) list;
}

val counter :
  t -> ?pid:int -> ?tid:int -> ?cat:string -> ts:float -> string ->
  (string * float) list -> unit
(** One sample of a multi-series counter (Chrome 'C'). *)

val span :
  t -> ?pid:int -> ?tid:int -> ?cat:string ->
  ?args:(string * Tca_util.Json.t) list ->
  ts:float -> dur:float -> string -> unit
(** A completed interval of work (Chrome 'X'). Negative durations are
    clamped to 0 rather than rejected: the sink never raises. *)

val instant :
  t -> ?pid:int -> ?tid:int -> ?cat:string ->
  ?args:(string * Tca_util.Json.t) list ->
  ts:float -> string -> unit
(** A point event (Chrome 'i'). *)

val events : t -> event list
(** All events in emission order. *)

val length : t -> int
val clear : t -> unit

(** {2 Fork/join — the multi-domain protocol}

    A sink is a {e single-domain} object: two domains must never push
    into the same sink concurrently. Parallel work instead forks one
    child sink per task, each task records into its own child on its
    own domain, and the owner joins the children back {e in task-index
    order} once all tasks have settled. Because a serial execution
    also emits task [i]'s events before task [i+1]'s, the joined
    event sequence is identical to the serial one — only wall-clock
    timestamps and durations differ. *)

val fork : t -> t
(** A fresh, empty sink with the parent's sampling interval; carries a
    fresh registry iff the parent has one (so instrumented code finds
    the same capabilities on the child). *)

val join : into:t -> t -> unit
(** Append the child's events (in their emission order) to [into], and
    fold the child's registry into [into]'s with
    {!Metrics.merge_into}. The child is not modified and may be joined
    only once unless duplicated events are intended. Must be called
    from the domain that owns [into], after the child's task has
    finished. *)
