(** Self-time profiler over a sink's wall-clock spans.

    Consumes the 'X' spans on {!Sink.track_wall} — one lane per
    recording domain — and recovers, per lane, the span call tree and
    each span's {e self} time (duration minus direct children). On top
    of that it buckets every span name into one of six fixed
    components: [decode], [sim], [fork_join], [cache], [scheduler] and
    [other].

    The component table is computed over the {e owner lane}, the lane
    carrying the {!total_span_name} span that [tca profile] wraps
    around a whole run. Owner-lane spans nest exactly, so the six
    buckets sum to the total span's duration: 100% of the profiled
    wall-clock is attributed. Worker-lane CPU time appears in the
    per-lane and self-time tables.

    The report is a pure function of the event list (plus the optional
    registry): byte-identical output for identical input, with fixed
    component keys and totally-ordered sorts — the schema-stability
    contract the determinism test pins. *)

type row = {
  name : string;
  calls : int;
  total_s : float;  (** summed span durations *)
  self_s : float;  (** summed durations minus direct-children time *)
}

type lane = {
  tid : int;  (** recording domain id *)
  busy_s : float;  (** summed root-span durations on this lane *)
  spans : int;
  tasks : int;  (** number of [task.run] spans (scheduler tasks) *)
}

type t = {
  wall_s : float;
      (** duration of {!total_span_name} when present, else the extent
          of all wall spans *)
  cpu_s : float;  (** summed busy time across lanes *)
  owner_tid : int;
  lanes : lane list;  (** sorted by tid *)
  rows : row list;  (** all lanes, sorted by self time descending *)
  components : (string * float) list;
      (** the six fixed buckets, in fixed order, seconds of owner-lane
          self time each *)
  attributed_s : float;  (** sum of the component buckets *)
  gc : (string * int) list;
      (** [task.gc.*] counter totals from the registry, when present *)
}

val total_span_name : string
(** ["profile.total"] — the whole-run span [tca profile] records. *)

val component_names : string list
(** The six bucket names, in report order. *)

val component_of : string -> string
(** The bucket a span name attributes to. *)

val of_events : ?registry:Metrics.t -> Sink.event list -> t

val of_sink : Sink.t -> t
(** [of_events] over the sink's events and its own registry. *)

val attributed_fraction : t -> float
(** [attributed_s / wall_s]; 1.0 for an empty profile. *)

val to_json : t -> Tca_util.Json.t
(** Schema [tca-profile-1]: fixed keys, fixed component set, rows
    sorted — byte-identical for identical input. *)

val pp : Format.formatter -> t -> unit
