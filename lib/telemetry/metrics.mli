(** Metrics registry: typed, named counters, gauges and histograms.

    Where {!Sink} records a {e timeline} (events at timestamps), the
    registry records {e aggregates}: cumulative counts, last-seen
    values and latency distributions that survive across many runs —
    the shape the bench harness and the CLI export as JSON.

    Registration is idempotent: asking for an existing name returns
    the existing instrument; asking for a name that is registered with
    a {e different} kind returns [Error (Invalid _)] rather than
    silently shadowing it. Names are free-form; the convention in this
    repository is dot-separated lowercase ([sim.cycles],
    [sweep.points]). *)

type t
(** A registry. *)

val create : unit -> t

module Counter : sig
  type m
  (** Monotonically increasing integer count. *)

  val add : m -> int -> unit
  (** Negative deltas are ignored (a counter never goes down). *)

  val incr : m -> unit
  val value : m -> int
end

module Gauge : sig
  type m
  (** Last-written float value. *)

  val set : m -> float -> unit
  val value : m -> float
end

module Histogram : sig
  type m
  (** Fixed-bound bucketed distribution with sum/count, Prometheus
      style: an observation lands in the first bucket whose upper
      bound is [>=] the value, or the implicit overflow bucket. *)

  val observe : m -> float -> unit
  val count : m -> int
  val sum : m -> float

  val buckets : m -> (float * int) list
  (** Upper bound, cumulative count [<=] bound; the overflow bucket is
      reported with bound [infinity]. *)
end

val counter : t -> string -> (Counter.m, Tca_util.Diag.t) result
val gauge : t -> string -> (Gauge.m, Tca_util.Diag.t) result

val histogram :
  ?bounds:float array -> t -> string -> (Histogram.m, Tca_util.Diag.t) result
(** [bounds] must be strictly increasing and finite (checked; default
    a 1-2-5 decade ladder from 1e-6 to 1e3, suitable for seconds).
    [bounds] is only consulted when the histogram does not already
    exist. *)

val counter_exn : t -> string -> Counter.m
val gauge_exn : t -> string -> Gauge.m
val histogram_exn : ?bounds:float array -> t -> string -> Histogram.m

val counter_value : t -> string -> int
(** 0 when absent or not a counter — a read-side convenience that
    never fails. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] folds [src] into [dst]: counters add, gauges
    take [src]'s value (last-write-wins in merge order), histograms with
    identical bounds add bucket-wise. Instruments are merged in sorted
    name order and a kind or bounds mismatch skips that instrument, so
    the fold is total and deterministic. This is the join step of the
    per-domain-registry pattern: registries are single-domain objects;
    accumulate into one registry per domain, then merge on the owner in
    a canonical order. [src] is not modified. *)

val to_json : t -> Tca_util.Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] with
    names sorted, so the output is deterministic. *)
