open Tca_util

let event_json (e : Sink.event) =
  let base =
    [
      ("name", Json.String e.Sink.name);
      ("cat", Json.String e.Sink.cat);
      ("ph", Json.String (String.make 1 e.Sink.ph));
      ("ts", Json.Float e.Sink.ts);
      ("pid", Json.Int e.Sink.pid);
      ("tid", Json.Int 0);
    ]
  in
  let dur = if e.Sink.ph = 'X' then [ ("dur", Json.Float e.Sink.dur) ] else [] in
  (* Instant events need a scope for the viewers; "t" = thread. *)
  let scope = if e.Sink.ph = 'i' then [ ("s", Json.String "t") ] else [] in
  let args =
    match e.Sink.args with [] -> [] | a -> [ ("args", Json.Obj a) ]
  in
  Json.Obj (base @ dur @ scope @ args)

let chrome_trace_json sink =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json (Sink.events sink)));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("producer", Json.String "tca-telemetry");
            ("clock", Json.String "cycles-as-us");
          ] );
    ]

let with_out path f =
  match open_out path with
  | exception Sys_error message ->
      Error (Diag.Invalid { field = "Exporter.write"; message })
  | oc ->
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc);
      Ok ()

let write_chrome_trace sink path =
  with_out path (fun oc ->
      (* Stream event-by-event: a long run's trace never needs the whole
         serialised document in memory at once. *)
      output_string oc "{\"traceEvents\":[";
      List.iteri
        (fun i e ->
          if i > 0 then output_char oc ',';
          output_string oc "\n  ";
          output_string oc (Json.to_string (event_json e)))
        (Sink.events sink);
      output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n")

let write_jsonl ?metrics sink path =
  with_out path (fun oc ->
      let line j =
        output_string oc (Json.to_string j);
        output_char oc '\n'
      in
      line
        (Json.Obj
           [
             ("kind", Json.String "meta");
             ("producer", Json.String "tca-telemetry");
             ("events", Json.Int (Sink.length sink));
             ("interval", Json.Int (Sink.interval sink));
           ]);
      List.iter (fun e -> line (event_json e)) (Sink.events sink);
      match (metrics, Sink.metrics sink) with
      | Some reg, _ | None, Some reg ->
          line
            (Json.Obj
               [ ("kind", Json.String "metrics"); ("metrics", Metrics.to_json reg) ])
      | None, None -> ())

let write_metrics_json reg path =
  with_out path (fun oc ->
      output_string oc (Json.to_string_indent (Metrics.to_json reg));
      output_char oc '\n')
