open Tca_util

let event_json (e : Sink.event) =
  let base =
    [
      ("name", Json.String e.Sink.name);
      ("cat", Json.String e.Sink.cat);
      ("ph", Json.String (String.make 1 e.Sink.ph));
      ("ts", Json.Float e.Sink.ts);
      ("pid", Json.Int e.Sink.pid);
      ("tid", Json.Int e.Sink.tid);
    ]
  in
  let dur = if e.Sink.ph = 'X' then [ ("dur", Json.Float e.Sink.dur) ] else [] in
  (* Instant events need a scope for the viewers; "t" = thread. *)
  let scope = if e.Sink.ph = 'i' then [ ("s", Json.String "t") ] else [] in
  let args =
    match e.Sink.args with [] -> [] | a -> [ ("args", Json.Obj a) ]
  in
  Json.Obj (base @ dur @ scope @ args)

(* Metadata ('M') events naming the process and thread lanes, so the
   tracks read as "simulator (cycles)" / "wall clock" with one "domain
   N" row per recording domain instead of bare pid/tid integers.
   Synthesized at export time from the distinct lanes present — they
   are presentation, not data, and never enter the sink. *)
let lane_metadata events =
  let meta ~pid ?tid name value =
    Json.Obj
      ([
         ("name", Json.String name);
         ("ph", Json.String "M");
         ("pid", Json.Int pid);
       ]
      @ (match tid with Some t -> [ ("tid", Json.Int t) ] | None -> [])
      @ [ ("args", Json.Obj [ ("name", Json.String value) ]) ])
  in
  let seen_pid = Hashtbl.create 4 and seen_lane = Hashtbl.create 8 in
  let out = ref [] in
  List.iter
    (fun (e : Sink.event) ->
      if not (Hashtbl.mem seen_pid e.Sink.pid) then begin
        Hashtbl.replace seen_pid e.Sink.pid ();
        let pname =
          if e.Sink.pid = Sink.track_sim then "simulator (cycles)"
          else if e.Sink.pid = Sink.track_wall then "wall clock"
          else Printf.sprintf "track %d" e.Sink.pid
        in
        out := meta ~pid:e.Sink.pid "process_name" pname :: !out
      end;
      if
        e.Sink.pid = Sink.track_wall
        && not (Hashtbl.mem seen_lane (e.Sink.pid, e.Sink.tid))
      then begin
        Hashtbl.replace seen_lane (e.Sink.pid, e.Sink.tid) ();
        out :=
          meta ~pid:e.Sink.pid ~tid:e.Sink.tid "thread_name"
            (Printf.sprintf "domain %d" e.Sink.tid)
          :: !out
      end)
    events;
  List.rev !out

let chrome_trace_json sink =
  let events = Sink.events sink in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (lane_metadata events @ List.map event_json events) );
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("producer", Json.String "tca-telemetry");
            ("clock", Json.String "cycles-as-us");
          ] );
    ]

let with_out path f =
  match open_out path with
  | exception Sys_error message ->
      Error (Diag.Invalid { field = "Exporter.write"; message })
  | oc ->
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc);
      Ok ()

let write_chrome_trace sink path =
  with_out path (fun oc ->
      (* Stream event-by-event: a long run's trace never needs the whole
         serialised document in memory at once. *)
      let events = Sink.events sink in
      output_string oc "{\"traceEvents\":[";
      List.iteri
        (fun i j ->
          if i > 0 then output_char oc ',';
          output_string oc "\n  ";
          output_string oc (Json.to_string j))
        (lane_metadata events @ List.map event_json events);
      output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n")

let write_jsonl ?metrics sink path =
  with_out path (fun oc ->
      let line j =
        output_string oc (Json.to_string j);
        output_char oc '\n'
      in
      line
        (Json.Obj
           [
             ("kind", Json.String "meta");
             ("producer", Json.String "tca-telemetry");
             ("events", Json.Int (Sink.length sink));
             ("interval", Json.Int (Sink.interval sink));
           ]);
      List.iter (fun e -> line (event_json e)) (Sink.events sink);
      match (metrics, Sink.metrics sink) with
      | Some reg, _ | None, Some reg ->
          line
            (Json.Obj
               [ ("kind", Json.String "metrics"); ("metrics", Metrics.to_json reg) ])
      | None, None -> ())

let write_metrics_json reg path =
  with_out path (fun oc ->
      output_string oc (Json.to_string_indent (Metrics.to_json reg));
      output_char oc '\n')
