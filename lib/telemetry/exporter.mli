(** Render a {!Sink} buffer (and optionally a {!Metrics} registry) to
    the two machine-readable formats:

    - {b Chrome [trace_event]}: a single JSON object
      [{"traceEvents": [...], ...}] loadable in Perfetto
      ({:https://ui.perfetto.dev}) or [chrome://tracing]. Timestamps
      map cycle numbers (or microseconds, for wall-clock spans) onto
      the format's microsecond [ts] field.
    - {b JSON lines}: one JSON object per line — first a [meta] line,
      then every event, then (if a registry is attached) one final
      [metrics] line — for [jq]-style ad-hoc analysis. *)

val chrome_trace_json : Sink.t -> Tca_util.Json.t
(** The trace as a JSON value (used by the golden tests). *)

val event_json : Sink.event -> Tca_util.Json.t
(** One event in [trace_event] dict form. *)

val write_chrome_trace : Sink.t -> string -> (unit, Tca_util.Diag.t) result
(** Write the Chrome trace to a file. [Error (Invalid _)] on I/O
    failure (unwritable path). *)

val write_jsonl :
  ?metrics:Metrics.t -> Sink.t -> string -> (unit, Tca_util.Diag.t) result
(** Write the JSON-lines form; [?metrics] overrides the sink's own
    registry if both are present. *)

val write_metrics_json : Metrics.t -> string -> (unit, Tca_util.Diag.t) result
(** Write just a registry snapshot as one indented JSON document. *)
