type event = {
  name : string;
  cat : string;
  ph : char;
  ts : float;
  dur : float;
  pid : int;
  tid : int;
  args : (string * Tca_util.Json.t) list;
}

type t = {
  sample_interval : int;
  registry : Metrics.t option;
  mutable buf : event array;
  mutable len : int;
}

let track_sim = 0
let track_wall = 1

let dummy =
  {
    name = "";
    cat = "";
    ph = 'i';
    ts = 0.0;
    dur = 0.0;
    pid = 0;
    tid = 0;
    args = [];
  }

let create ?(interval = 256) ?metrics () =
  {
    sample_interval = max 1 interval;
    registry = metrics;
    buf = Array.make 1024 dummy;
    len = 0;
  }

let interval t = t.sample_interval
let metrics t = t.registry

let push t ev =
  if t.len = Array.length t.buf then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  t.buf.(t.len) <- ev;
  t.len <- t.len + 1

let counter t ?(pid = track_sim) ?(tid = 0) ?(cat = "counter") ~ts name series
    =
  push t
    {
      name;
      cat;
      ph = 'C';
      ts;
      dur = 0.0;
      pid;
      tid;
      args = List.map (fun (k, v) -> (k, Tca_util.Json.Float v)) series;
    }

let span t ?(pid = track_sim) ?(tid = 0) ?(cat = "span") ?(args = []) ~ts ~dur
    name =
  push t { name; cat; ph = 'X'; ts; dur = Float.max 0.0 dur; pid; tid; args }

let instant t ?(pid = track_sim) ?(tid = 0) ?(cat = "instant") ?(args = []) ~ts
    name =
  push t { name; cat; ph = 'i'; ts; dur = 0.0; pid; tid; args }

let events t = Array.to_list (Array.sub t.buf 0 t.len)
let length t = t.len
let clear t = t.len <- 0

(* Fork/join: the multi-domain protocol. A sink is a single-domain
   object, so parallel work gets one fork per task and the owner joins
   them back in a canonical (task-index) order — making the merged
   event sequence identical to what a serial run would have produced,
   because a serial run also finishes task i's events before task
   i+1's. *)

let fork t =
  {
    sample_interval = t.sample_interval;
    registry = Option.map (fun _ -> Metrics.create ()) t.registry;
    buf = Array.make 1024 dummy;
    len = 0;
  }

let join ~into child =
  for i = 0 to child.len - 1 do
    push into child.buf.(i)
  done;
  match (into.registry, child.registry) with
  | Some dst, Some src -> Metrics.merge_into dst src
  | _ -> ()
