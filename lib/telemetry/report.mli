(** Summarize a Chrome [trace_event] file produced by {!Exporter}:
    the engine behind [tca trace-report].

    The report answers the three questions the paper's methodology
    keeps asking of a run: where did stall cycles go (top stall
    sources), when was the accelerator busy (occupancy timeline) and
    how did throughput evolve (per-interval dispatch/issue/commit
    table). It consumes the counter/span naming convention of the
    pipeline instrumentation ([sim.stalls], [sim.pipeline], [sim.rob]
    counters; [accel.invoke] spans) and degrades gracefully — a trace
    with none of those events yields an empty but valid report. *)

type interval_row = {
  ts : float;  (** cycle of the sample (end of the interval) *)
  committed : float;
  dispatched : float;
  issued : float;
  stalled : float;  (** sum of stall-reason deltas in the interval *)
  rob_avg : float;  (** mean ROB occupancy over the interval *)
}

type t = {
  events : int;  (** total events in the trace *)
  cycles : float;  (** extent of the simulator track *)
  stall_totals : (string * float) list;  (** per reason, sorted desc *)
  pipeline_totals : (string * float) list;  (** committed/dispatched/issued *)
  accel_spans : int;
  accel_busy : float;  (** summed accelerator span cycles *)
  occupancy : float array;  (** accelerator busy fraction per time bucket *)
  intervals : interval_row list;  (** in trace order *)
  wall_spans : (string * int * float) list;
      (** wall-clock spans: name, calls, total seconds — sorted by total
          desc; present when the trace came from an instrumented sweep *)
}

val buckets : int
(** Number of occupancy-timeline buckets (fixed, 48). *)

val of_json : Tca_util.Json.t -> (t, Tca_util.Diag.t) result
(** Accepts the [{"traceEvents": [...]}] object form or a bare event
    array. [Error (Invalid _)] on any other shape; individual events
    that are not objects are skipped, not fatal. *)

val of_file : string -> (t, Tca_util.Diag.t) result
(** Read and parse the file, then {!of_json}. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering: stall table, ASCII occupancy timeline,
    interval table (elided in the middle when long). *)
