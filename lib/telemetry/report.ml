open Tca_util

type interval_row = {
  ts : float;
  committed : float;
  dispatched : float;
  issued : float;
  stalled : float;
  rob_avg : float;
}

type t = {
  events : int;
  cycles : float;
  stall_totals : (string * float) list;
  pipeline_totals : (string * float) list;
  accel_spans : int;
  accel_busy : float;
  occupancy : float array;
  intervals : interval_row list;
  wall_spans : (string * int * float) list;
}

let buckets = 48

(* One parsed event; only the fields the summary needs. *)
type ev = {
  e_name : string;
  e_ph : string;
  e_ts : float;
  e_dur : float;
  e_pid : int;
  e_args : (string * float) list;
}

let ev_of_json j =
  match j with
  | Json.Obj _ ->
      let str k = Option.bind (Json.member k j) Json.to_string_opt in
      let num k =
        Option.value ~default:0.0
          (Option.bind (Json.member k j) Json.to_float_opt)
      in
      let args =
        match Json.member "args" j with
        | Some (Json.Obj fields) ->
            List.filter_map
              (fun (k, v) ->
                Option.map (fun f -> (k, f)) (Json.to_float_opt v))
              fields
        | _ -> []
      in
      Option.map
        (fun name ->
          {
            e_name = name;
            e_ph = Option.value ~default:"" (str "ph");
            e_ts = num "ts";
            e_dur = num "dur";
            e_pid =
              Option.value ~default:0
                (Option.bind (Json.member "pid" j) Json.to_int_opt);
            e_args = args;
          })
        (str "name")
  | _ -> None

let add_series table (k, v) =
  let prev = try List.assoc k !table with Not_found -> 0.0 in
  table := (k, prev +. v) :: List.remove_assoc k !table

let of_events evs =
  let stall_totals = ref [] in
  let pipeline_totals = ref [] in
  let intervals = ref [] in
  (* Interval rows join three counter streams (sim.stalls, sim.pipeline,
     sim.rob) emitted at the same ts; index them by ts. *)
  let row_tbl : (float, interval_row ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let row ts =
    match Hashtbl.find_opt row_tbl ts with
    | Some r -> r
    | None ->
        let r =
          ref
            {
              ts;
              committed = 0.0;
              dispatched = 0.0;
              issued = 0.0;
              stalled = 0.0;
              rob_avg = 0.0;
            }
        in
        Hashtbl.replace row_tbl ts r;
        order := ts :: !order;
        r
  in
  let cycles = ref 0.0 in
  let accel_spans = ref 0 in
  let accel_busy = ref 0.0 in
  let accel_list = ref [] in
  let wall_tbl : (string, (int * float) ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if e.e_pid = Sink.track_wall then begin
        if e.e_ph = "X" then
          match Hashtbl.find_opt wall_tbl e.e_name with
          | Some r ->
              let n, s = !r in
              r := (n + 1, s +. (e.e_dur /. 1e6))
          | None -> Hashtbl.replace wall_tbl e.e_name (ref (1, e.e_dur /. 1e6))
      end
      else begin
        cycles := Float.max !cycles (e.e_ts +. e.e_dur);
        match (e.e_name, e.e_ph) with
        | "sim.stalls", "C" ->
            List.iter (add_series stall_totals) e.e_args;
            let r = row e.e_ts in
            let s = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 e.e_args in
            r := { !r with stalled = !r.stalled +. s }
        | "sim.pipeline", "C" ->
            List.iter (add_series pipeline_totals) e.e_args;
            let get k = try List.assoc k e.e_args with Not_found -> 0.0 in
            let r = row e.e_ts in
            r :=
              {
                !r with
                committed = !r.committed +. get "committed";
                dispatched = !r.dispatched +. get "dispatched";
                issued = !r.issued +. get "issued";
              }
        | "sim.rob", "C" ->
            let r = row e.e_ts in
            r :=
              {
                !r with
                rob_avg = (try List.assoc "avg" e.e_args with Not_found -> 0.0);
              }
        | "accel.invoke", "X" ->
            incr accel_spans;
            accel_busy := !accel_busy +. e.e_dur;
            accel_list := (e.e_ts, e.e_dur) :: !accel_list
        | _ -> ()
      end)
    evs;
  (* Accelerator-busy fraction per fixed-width time bucket. *)
  let occupancy = Array.make buckets 0.0 in
  if !cycles > 0.0 then begin
    let width = !cycles /. float_of_int buckets in
    List.iter
      (fun (ts, dur) ->
        let lo = ts and hi = ts +. dur in
        let b0 = max 0 (int_of_float (lo /. width)) in
        let b1 = min (buckets - 1) (int_of_float (hi /. width)) in
        for b = b0 to b1 do
          let bl = float_of_int b *. width and bh = float_of_int (b + 1) *. width in
          let overlap = Float.max 0.0 (Float.min hi bh -. Float.max lo bl) in
          occupancy.(b) <- occupancy.(b) +. overlap
        done)
      !accel_list;
    Array.iteri
      (fun i v -> occupancy.(i) <- Float.min 1.0 (v /. width))
      occupancy
  end;
  intervals :=
    List.rev_map (fun ts -> !(row ts)) !order;
  {
    events = List.length evs;
    cycles = !cycles;
    stall_totals =
      List.sort (fun (_, a) (_, b) -> compare b a) !stall_totals;
    pipeline_totals =
      List.sort (fun (a, _) (b, _) -> String.compare a b) !pipeline_totals;
    accel_spans = !accel_spans;
    accel_busy = !accel_busy;
    occupancy;
    intervals = !intervals;
    wall_spans =
      Hashtbl.fold (fun name r acc -> (name, fst !r, snd !r) :: acc) wall_tbl []
      |> List.sort (fun (_, _, a) (_, _, b) -> compare b a);
  }

let of_json j =
  let events =
    match j with
    | Json.Obj _ -> (
        match Json.member "traceEvents" j with
        | Some (Json.List l) -> Ok l
        | _ ->
            Error
              (Diag.Invalid
                 {
                   field = "Report.of_json";
                   message = "object has no \"traceEvents\" array";
                 }))
    | Json.List l -> Ok l
    | _ ->
        Error
          (Diag.Invalid
             {
               field = "Report.of_json";
               message = "expected a trace object or an event array";
             })
  in
  (* 'M' lane-name metadata is presentation synthesized at export time,
     not recorded data — it never enters the report. *)
  Result.map
    (fun l ->
      of_events
        (List.filter
           (fun e -> e.e_ph <> "M")
           (List.filter_map ev_of_json l)))
    events

let of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error message ->
      Error (Diag.Invalid { field = "Report.of_file"; message })
  | contents -> (
      match Json.parse contents with
      | Error d -> Error d
      | Ok j -> of_json j)

let shade f =
  if f <= 0.001 then ' '
  else if f < 0.25 then '.'
  else if f < 0.5 then ':'
  else if f < 0.75 then '|'
  else '#'

let pp fmt t =
  Format.fprintf fmt "trace: %d events over %.0f cycles@." t.events t.cycles;
  (* Stall sources. *)
  let stall_sum = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 t.stall_totals in
  if stall_sum > 0.0 then begin
    Format.fprintf fmt "@.top stall sources (%.0f stalled cycles, %.1f%% of run):@."
      stall_sum
      (100.0 *. stall_sum /. Float.max 1.0 t.cycles);
    List.iter
      (fun (name, v) ->
        if v > 0.0 then
          Format.fprintf fmt "  %-10s %10.0f  %5.1f%%@." name v
            (100.0 *. v /. stall_sum))
      t.stall_totals
  end
  else Format.fprintf fmt "@.no stall counters in trace@.";
  (* Pipeline totals. *)
  if t.pipeline_totals <> [] then begin
    Format.fprintf fmt "@.pipeline totals:";
    List.iter
      (fun (name, v) -> Format.fprintf fmt " %s=%.0f" name v)
      t.pipeline_totals;
    Format.fprintf fmt "@."
  end;
  (* Accelerator occupancy. *)
  Format.fprintf fmt
    "@.accelerator: %d invocations, %.0f busy cycles (%.1f%% occupancy)@."
    t.accel_spans t.accel_busy
    (100.0 *. t.accel_busy /. Float.max 1.0 t.cycles);
  if t.accel_spans > 0 then begin
    Format.fprintf fmt "  timeline [";
    Array.iter (fun f -> Format.pp_print_char fmt (shade f)) t.occupancy;
    Format.fprintf fmt "]@."
  end;
  (* Interval table, elided in the middle when long. *)
  let n = List.length t.intervals in
  if n > 0 then begin
    Format.fprintf fmt "@.intervals (%d):@." n;
    Format.fprintf fmt "  %10s %10s %10s %10s %10s %8s@." "cycle" "committed"
      "dispatched" "issued" "stalled" "rob-avg";
    let show r =
      Format.fprintf fmt "  %10.0f %10.0f %10.0f %10.0f %10.0f %8.1f@." r.ts
        r.committed r.dispatched r.issued r.stalled r.rob_avg
    in
    if n <= 24 then List.iter show t.intervals
    else begin
      List.iteri (fun i r -> if i < 10 then show r) t.intervals;
      Format.fprintf fmt "  %10s (%d rows elided)@." "..." (n - 20);
      List.iteri (fun i r -> if i >= n - 10 then show r) t.intervals
    end
  end;
  (* Wall-clock spans. *)
  if t.wall_spans <> [] then begin
    Format.fprintf fmt "@.wall-clock spans:@.";
    List.iter
      (fun (name, calls, secs) ->
        Format.fprintf fmt "  %-28s %6d calls %12.3f s total %12.3f ms/call@."
          name calls secs
          (1e3 *. secs /. float_of_int (max 1 calls)))
      t.wall_spans
  end
