open Tca_regex

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Independent reference matcher (backtracking over the AST, CPS).
   Deliberately a different algorithm from the engine's NFA/DFA so the
   property test cross-checks two implementations. --- *)

let rec ref_match (p : Pattern.t) (s : string) (i : int) (k : int -> bool) :
    bool =
  match p with
  | Pattern.Empty -> k i
  | Pattern.Char c -> i < String.length s && s.[i] = c && k (i + 1)
  | Pattern.Any -> i < String.length s && k (i + 1)
  | Pattern.Class _ ->
      i < String.length s && Pattern.char_matches p s.[i] && k (i + 1)
  | Pattern.Seq (a, b) -> ref_match a s i (fun j -> ref_match b s j k)
  | Pattern.Alt (a, b) -> ref_match a s i k || ref_match b s i k
  | Pattern.Opt a -> ref_match a s i k || k i
  | Pattern.Plus a -> ref_match (Pattern.Seq (a, Pattern.Star a)) s i k
  | Pattern.Star a ->
      (* Greedy loop with progress check to avoid looping on nullable
         bodies. *)
      let rec loop j =
        ref_match a s j (fun j' -> j' > j && loop j') || k j
      in
      loop i

let ref_matches p s = ref_match p s 0 (fun i -> i = String.length s)

(* --- Pattern parser --- *)

let test_parse_basics () =
  Alcotest.(check bool) "literal" true
    (Pattern.parse "abc" |> Result.is_ok);
  Alcotest.(check bool) "class" true (Pattern.parse "[a-z0-9]" |> Result.is_ok);
  Alcotest.(check bool) "negated class" true
    (Pattern.parse "[^ab]" |> Result.is_ok);
  Alcotest.(check bool) "alternation and group" true
    (Pattern.parse "(ab|cd)*e+f?" |> Result.is_ok);
  Alcotest.(check bool) "escape" true (Pattern.parse "a\\*b" |> Result.is_ok)

let test_parse_errors () =
  let bad s = Alcotest.(check bool) s true (Result.is_error (Pattern.parse s)) in
  bad "(ab";
  bad "ab)";
  bad "[abc";
  bad "*a";
  bad "a|*";
  bad "[z-a]";
  bad "a\\"

let test_parse_structure () =
  match Pattern.parse "a|b" with
  | Ok (Pattern.Alt (Pattern.Char 'a', Pattern.Char 'b')) -> ()
  | _ -> Alcotest.fail "expected Alt(a, b)"

let test_nullable () =
  Alcotest.(check bool) "star" true (Pattern.nullable (Pattern.parse_exn "a*"));
  Alcotest.(check bool) "plus" false (Pattern.nullable (Pattern.parse_exn "a+"));
  Alcotest.(check bool) "opt" true (Pattern.nullable (Pattern.parse_exn "a?"));
  Alcotest.(check bool) "literal" false (Pattern.nullable (Pattern.parse_exn "a"))

let test_char_matches () =
  let cls = Pattern.parse_exn "[a-c0-9]" in
  Alcotest.(check bool) "in range" true (Pattern.char_matches cls 'b');
  Alcotest.(check bool) "digit" true (Pattern.char_matches cls '7');
  Alcotest.(check bool) "out" false (Pattern.char_matches cls 'z');
  let neg = Pattern.parse_exn "[^a-c]" in
  Alcotest.(check bool) "negated out" false (Pattern.char_matches neg 'b');
  Alcotest.(check bool) "negated in" true (Pattern.char_matches neg 'z')

(* Random pattern ASTs over a tiny alphabet, depth-bounded. *)
let pattern_gen =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        (4, map (fun c -> Pattern.Char c) (oneofl [ 'a'; 'b'; 'c' ]));
        (1, return Pattern.Any);
        ( 1,
          map
            (fun negated ->
              Pattern.Class { negated; ranges = [ ('a', 'b') ] })
            bool );
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (2, map2 (fun a b -> Pattern.Seq (a, b)) (node (depth - 1)) (node (depth - 1)));
          (2, map2 (fun a b -> Pattern.Alt (a, b)) (node (depth - 1)) (node (depth - 1)));
          (1, map (fun a -> Pattern.Star a) (node (depth - 1)));
          (1, map (fun a -> Pattern.Plus a) (node (depth - 1)));
          (1, map (fun a -> Pattern.Opt a) (node (depth - 1)));
        ]
  in
  node 3

let string_gen =
  QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range 0 8))

let prop_engine_matches_reference =
  qtest ~count:500 "DFA engine agrees with the backtracking reference"
    (QCheck.make
       ~print:(fun (p, s) -> Printf.sprintf "%s on %S" (Pattern.to_string p) s)
       QCheck.Gen.(pair pattern_gen string_gen))
    (fun (p, s) ->
      let engine = Engine.compile p in
      Engine.matches engine s = ref_matches p s)

let prop_to_string_roundtrip =
  qtest ~count:300 "to_string output reparses to an equivalent pattern"
    (QCheck.make
       ~print:(fun p -> Pattern.to_string p)
       pattern_gen)
    (fun p ->
      match Pattern.parse (Pattern.to_string p) with
      | Error _ -> false
      | Ok p' ->
          (* Equivalence checked behaviourally over a word sample. *)
          let words =
            [ ""; "a"; "b"; "c"; "ab"; "ba"; "abc"; "aab"; "cab"; "bbb"; "acbc" ]
          in
          let e = Engine.compile p and e' = Engine.compile p' in
          List.for_all (fun w -> Engine.matches e w = Engine.matches e' w) words)

(* --- Engine --- *)

let test_matches_known () =
  let e = Engine.compile (Pattern.parse_exn "a*b") in
  Alcotest.(check bool) "b" true (Engine.matches e "b");
  Alcotest.(check bool) "aaab" true (Engine.matches e "aaab");
  Alcotest.(check bool) "aaba rejected" false (Engine.matches e "aaba");
  Alcotest.(check bool) "empty rejected" false (Engine.matches e "");
  let opt = Engine.compile (Pattern.parse_exn "colou?r") in
  Alcotest.(check bool) "color" true (Engine.matches opt "color");
  Alcotest.(check bool) "colour" true (Engine.matches opt "colour")

let test_search_known () =
  let e = Engine.compile (Pattern.parse_exn "ab") in
  let r = Engine.search e "zzabzz" in
  Alcotest.(check bool) "found" true r.Engine.found;
  Alcotest.(check int) "position" 2 r.Engine.start_pos;
  let miss = Engine.search e "zzzz" in
  Alcotest.(check bool) "not found" false miss.Engine.found;
  Alcotest.(check int) "start = length" 4 miss.Engine.start_pos;
  Alcotest.(check bool) "scan cost counted" true (miss.Engine.chars_scanned >= 4)

let test_search_leftmost () =
  let e = Engine.compile (Pattern.parse_exn "b+") in
  let r = Engine.search e "aabbbab" in
  Alcotest.(check int) "leftmost" 2 r.Engine.start_pos

let test_search_default_pattern () =
  let e = Engine.compile (Pattern.parse_exn "err(or)?[0-9]+") in
  let r = Engine.search e "xx error42 yy" in
  Alcotest.(check bool) "found" true r.Engine.found;
  Alcotest.(check int) "at 3" 3 r.Engine.start_pos;
  Alcotest.(check bool) "err7 also matches" true
    (Engine.search e "err7").Engine.found

let test_dfa_states_bounded () =
  let e = Engine.compile (Pattern.parse_exn "(a|b)*abb") in
  for _ = 1 to 50 do
    ignore (Engine.matches e "abababbbaabb")
  done;
  Alcotest.(check bool) "lazy DFA stays small" true (Engine.dfa_states e < 32)

let test_compile_string () =
  Alcotest.(check bool) "ok" true (Result.is_ok (Engine.compile_string "a+"));
  Alcotest.(check bool) "error" true (Result.is_error (Engine.compile_string "("))

(* --- Cost model --- *)

let test_cost_model_uops () =
  Alcotest.(check int) "10 chars" (8 + 60) (Cost_model.software_uops ~chars_scanned:10);
  Alcotest.(check int) "zero clamps to 1" (8 + 6)
    (Cost_model.software_uops ~chars_scanned:0)

let test_cost_model_latency () =
  Alcotest.(check int) "16 chars 1 cycle" 1
    (Cost_model.accel_compute_latency ~chars_scanned:16);
  Alcotest.(check int) "17 chars 2 cycles" 2
    (Cost_model.accel_compute_latency ~chars_scanned:17);
  Alcotest.(check int) "minimum 1" 1 (Cost_model.accel_compute_latency ~chars_scanned:0)

let test_cost_model_lines () =
  Alcotest.(check int) "within one line" 1
    (List.length (Cost_model.scanned_lines ~text_base:0 ~start:0 ~chars_scanned:64));
  Alcotest.(check int) "crossing" 2
    (List.length (Cost_model.scanned_lines ~text_base:0 ~start:60 ~chars_scanned:8))

let test_cost_model_emit_counts () =
  let b = Tca_uarch.Trace.Builder.create () in
  Cost_model.emit_search b ~text_base:0x3000_0000 ~start:0 ~chars_scanned:25;
  Alcotest.(check int) "matches software_uops"
    (Cost_model.software_uops ~chars_scanned:25)
    (Tca_uarch.Trace.Builder.length b)

(* --- Workload --- *)

let test_workload_structure () =
  let cfg =
    Tca_workloads.Regex_workload.config ~n_records:60 ~app_instrs_per_record:100
      ()
  in
  let pair, mean_scan = Tca_workloads.Regex_workload.generate cfg in
  let open Tca_workloads in
  Alcotest.(check int) "invocations" 60 pair.Meta.meta.Meta.invocations;
  Alcotest.(check int) "accels" 60
    (Tca_uarch.Trace.counts pair.Meta.accelerated).Tca_uarch.Trace.accels;
  Alcotest.(check bool) "regex is coarse-grained" true
    (mean_scan > 50.0 && mean_scan <= 256.0);
  Alcotest.(check bool) "line traffic" true
    (pair.Meta.meta.Meta.avg_reads_per_invocation >= 1.0)

let test_workload_validation () =
  Alcotest.check_raises "bad pattern rejected"
    (Invalid_argument
       "Regex_workload.config: bad pattern: position 1: unclosed group")
    (fun () ->
      ignore
        (Tca_workloads.Regex_workload.config ~pattern:"(" ~n_records:10
           ~app_instrs_per_record:10 ()))

let test_workload_determinism () =
  let cfg =
    Tca_workloads.Regex_workload.config ~n_records:30 ~app_instrs_per_record:40
      ~seed:9 ()
  in
  let p1, m1 = Tca_workloads.Regex_workload.generate cfg in
  let p2, m2 = Tca_workloads.Regex_workload.generate cfg in
  let open Tca_workloads in
  Alcotest.(check int) "same baseline"
    (Tca_uarch.Trace.length p1.Meta.baseline)
    (Tca_uarch.Trace.length p2.Meta.baseline);
  Alcotest.(check (float 1e-12)) "same scan" m1 m2

let test_experiment_quick () =
  let rows, mean_scan = Tca_experiments.Regex_val.run ~quick:true () in
  Alcotest.(check int) "4 rows" 4 (List.length rows);
  Alcotest.(check bool) "scan sane" true (mean_scan > 10.0);
  let sim m =
    (List.find
       (fun (r : Tca_experiments.Exp_common.validation_row) ->
         Tca_model.Mode.equal r.Tca_experiments.Exp_common.mode m)
       rows)
      .Tca_experiments.Exp_common.sim_speedup
  in
  (* At ~1300-uop granularity every mode speeds the program up — the
     paper's moderate-granularity regime. *)
  List.iter
    (fun m ->
      Alcotest.(check bool) "all modes speed up" true (sim m > 1.0))
    Tca_model.Mode.all;
  Alcotest.(check bool) "L_T best" true
    (List.for_all (fun m -> sim Tca_model.Mode.L_T >= sim m) Tca_model.Mode.all)

let () =
  Alcotest.run "tca_regex"
    [
      ( "pattern",
        [
          Alcotest.test_case "parse basics" `Quick test_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "structure" `Quick test_parse_structure;
          Alcotest.test_case "nullable" `Quick test_nullable;
          Alcotest.test_case "char matches" `Quick test_char_matches;
          prop_to_string_roundtrip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "matches known" `Quick test_matches_known;
          Alcotest.test_case "search known" `Quick test_search_known;
          Alcotest.test_case "leftmost" `Quick test_search_leftmost;
          Alcotest.test_case "default pattern" `Quick test_search_default_pattern;
          Alcotest.test_case "lazy DFA bounded" `Quick test_dfa_states_bounded;
          Alcotest.test_case "compile_string" `Quick test_compile_string;
          prop_engine_matches_reference;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "uops" `Quick test_cost_model_uops;
          Alcotest.test_case "latency" `Quick test_cost_model_latency;
          Alcotest.test_case "lines" `Quick test_cost_model_lines;
          Alcotest.test_case "emit counts" `Quick test_cost_model_emit_counts;
        ] );
      ( "workload",
        [
          Alcotest.test_case "structure" `Quick test_workload_structure;
          Alcotest.test_case "validation" `Quick test_workload_validation;
          Alcotest.test_case "determinism" `Quick test_workload_determinism;
          Alcotest.test_case "experiment quick" `Slow test_experiment_quick;
        ] );
    ]
