open Tca_logca

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let basic =
  Logca.make ~latency:0.1 ~overhead:100.0 ~compute_index:2.0 ~acceleration:8.0
    ()

let test_make_validation () =
  Alcotest.check_raises "negative latency"
    (Invalid_argument "Logca.make: negative latency") (fun () ->
      ignore
        (Logca.make ~latency:(-1.0) ~overhead:0.0 ~compute_index:1.0
           ~acceleration:2.0 ()));
  Alcotest.check_raises "negative overhead"
    (Invalid_argument "Logca.make: negative overhead") (fun () ->
      ignore
        (Logca.make ~latency:0.0 ~overhead:(-1.0) ~compute_index:1.0
           ~acceleration:2.0 ()));
  Alcotest.check_raises "compute index"
    (Invalid_argument "Logca.make: compute_index must be positive") (fun () ->
      ignore
        (Logca.make ~latency:0.0 ~overhead:0.0 ~compute_index:0.0
           ~acceleration:2.0 ()));
  Alcotest.check_raises "acceleration"
    (Invalid_argument "Logca.make: acceleration must exceed 1") (fun () ->
      ignore
        (Logca.make ~latency:0.0 ~overhead:0.0 ~compute_index:1.0
           ~acceleration:1.0 ()))

let test_times () =
  (* T_C(g) = 2 g; T_A(g) = 100 + 0.1 g + 2 g / 8 *)
  Alcotest.(check bool) "unaccelerated" true
    (feq (Logca.time_unaccelerated basic 50.0) 100.0);
  Alcotest.(check bool) "accelerated" true
    (feq (Logca.time_accelerated basic 50.0) (100.0 +. 5.0 +. 12.5))

let test_time_invalid_granularity () =
  Alcotest.check_raises "g = 0"
    (Invalid_argument "Logca: granularity must be positive") (fun () ->
      ignore (Logca.time_unaccelerated basic 0.0))

let test_speedup_below_above_breakeven () =
  Alcotest.(check bool) "tiny offload loses" true (Logca.speedup basic 1.0 < 1.0);
  Alcotest.(check bool) "large offload wins" true
    (Logca.speedup basic 1.0e6 > 1.0)

let test_break_even () =
  match Logca.break_even basic with
  | None -> Alcotest.fail "break-even expected"
  | Some g1 ->
      Alcotest.(check bool) "speedup(g1) ~ 1" true
        (Float.abs (Logca.speedup basic g1 -. 1.0) < 1e-3);
      Alcotest.(check bool) "below g1 loses" true
        (Logca.speedup basic (g1 /. 2.0) < 1.0)

let test_break_even_never () =
  (* Interface latency worse than the computation: never breaks even. *)
  let t =
    Logca.make ~latency:10.0 ~overhead:10.0 ~compute_index:1.0
      ~acceleration:4.0 ()
  in
  Alcotest.(check bool) "never" true (Logca.break_even t = None)

let test_asymptote () =
  (* beta > tau: pure A. *)
  let t =
    Logca.make ~compute_exponent:2.0 ~latency:1.0 ~overhead:10.0
      ~compute_index:1.0 ~acceleration:16.0 ()
  in
  Alcotest.(check bool) "beta > tau gives A" true
    (feq (Logca.asymptotic_speedup t) 16.0);
  (* beta = tau: closed form c / (l + c/A). *)
  Alcotest.(check bool) "beta = tau closed form" true
    (feq (Logca.asymptotic_speedup basic) (2.0 /. (0.1 +. 0.25)));
  (* beta < tau: interface dominates. *)
  let t2 =
    Logca.make ~latency_exponent:2.0 ~latency:0.1 ~overhead:0.0
      ~compute_index:1.0 ~acceleration:4.0 ()
  in
  Alcotest.(check bool) "beta < tau gives 0" true
    (feq (Logca.asymptotic_speedup t2) 0.0)

let test_g_half () =
  match Logca.g_half basic with
  | None -> Alcotest.fail "g_half expected"
  | Some g ->
      let target = Logca.asymptotic_speedup basic /. 2.0 in
      Alcotest.(check bool) "speedup(g_half) ~ A/2" true
        (Float.abs (Logca.speedup basic g -. target) < 1e-2 *. target);
      (match Logca.break_even basic with
      | Some g1 -> Alcotest.(check bool) "g_half beyond g1" true (g > g1)
      | None -> Alcotest.fail "break-even expected")

let logca_gen =
  QCheck.(
    map
      (fun (l, o, c, a) ->
        Logca.make ~latency:l ~overhead:o ~compute_index:c ~acceleration:a ())
      (quad (float_range 0.0 1.0) (float_range 0.0 1000.0)
         (float_range 0.1 10.0) (float_range 1.1 64.0)))

let prop_speedup_monotone =
  qtest "speedup monotone in granularity (linear exponents)"
    QCheck.(pair logca_gen (pair (float_range 1.0 1e8) (float_range 1.0 1e8)))
    (fun (t, (g1, g2)) ->
      let lo = Float.min g1 g2 and hi = Float.max g1 g2 in
      Logca.speedup t lo <= Logca.speedup t hi +. 1e-9)

let prop_speedup_bounded_by_asymptote =
  qtest "speedup never exceeds the asymptote"
    QCheck.(pair logca_gen (float_range 1.0 1e9))
    (fun (t, g) -> Logca.speedup t g <= Logca.asymptotic_speedup t +. 1e-6)

let prop_speedup_bounded_by_acceleration =
  qtest "speedup never exceeds A"
    QCheck.(pair logca_gen (float_range 1.0 1e9))
    (fun (t, g) -> Logca.speedup t g <= t.Logca.acceleration +. 1e-6)

let () =
  Alcotest.run "tca_logca"
    [
      ( "logca",
        [
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "times" `Quick test_times;
          Alcotest.test_case "invalid granularity" `Quick test_time_invalid_granularity;
          Alcotest.test_case "break-even bracket" `Quick test_speedup_below_above_breakeven;
          Alcotest.test_case "break-even point" `Quick test_break_even;
          Alcotest.test_case "never breaks even" `Quick test_break_even_never;
          Alcotest.test_case "asymptotes" `Quick test_asymptote;
          Alcotest.test_case "g_half" `Quick test_g_half;
          prop_speedup_monotone;
          prop_speedup_bounded_by_asymptote;
          prop_speedup_bounded_by_acceleration;
        ] );
    ]
