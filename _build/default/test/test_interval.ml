open Tca_interval

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* --- Power_law --- *)

let test_calibration_point () =
  (* At the calibration window, draining at the measured IPC. *)
  let fit = Power_law.calibrate ~ipc:2.0 ~window:256 ~beta:2.0 in
  Alcotest.(check bool) "critical path at window" true
    (feq ~eps:1e-6 (Power_law.critical_path fit 256.0) 128.0);
  Alcotest.(check bool) "steady ipc at window" true
    (feq ~eps:1e-6 (Power_law.steady_ipc fit 256.0) 2.0)

let test_calibrate_invalid () =
  Alcotest.check_raises "bad ipc"
    (Invalid_argument "Power_law.calibrate: ipc must be positive") (fun () ->
      ignore (Power_law.calibrate ~ipc:0.0 ~window:10 ~beta:2.0));
  Alcotest.check_raises "bad window"
    (Invalid_argument "Power_law.calibrate: window must be positive")
    (fun () -> ignore (Power_law.calibrate ~ipc:1.0 ~window:0 ~beta:2.0));
  Alcotest.check_raises "bad beta"
    (Invalid_argument "Power_law.calibrate: beta must be positive") (fun () ->
      ignore (Power_law.calibrate ~ipc:1.0 ~window:10 ~beta:0.0))

let test_critical_path_zero () =
  let fit = Power_law.calibrate ~ipc:1.0 ~window:64 ~beta:2.0 in
  Alcotest.(check bool) "w = 0" true (feq (Power_law.critical_path fit 0.0) 0.0);
  Alcotest.(check bool) "w < 0" true
    (feq (Power_law.critical_path fit (-5.0)) 0.0)

let test_window_for_ipc_inverse () =
  let fit = Power_law.calibrate ~ipc:1.5 ~window:128 ~beta:2.0 in
  let w = Power_law.window_for_ipc fit 1.5 in
  Alcotest.(check bool) "inverse recovers window" true (feq ~eps:1e-4 w 128.0)

let test_window_for_ipc_beta1 () =
  let fit = { Power_law.alpha = 1.0; beta = 1.0 } in
  Alcotest.check_raises "beta = 1"
    (Invalid_argument
       "Power_law.window_for_ipc: beta = 1 gives constant IPC") (fun () ->
      ignore (Power_law.window_for_ipc fit 1.0))

let fit_gen =
  QCheck.(
    map
      (fun (ipc, window, beta) ->
        (ipc, window, beta, Power_law.calibrate ~ipc ~window ~beta))
      (triple (float_range 0.2 6.0) (int_range 8 512) (float_range 1.2 3.0)))

let prop_critical_path_monotone =
  qtest "critical path monotone in window"
    QCheck.(pair fit_gen (pair (float_range 1.0 500.0) (float_range 1.0 500.0)))
    (fun ((_, _, _, fit), (w1, w2)) ->
      let lo = Float.min w1 w2 and hi = Float.max w1 w2 in
      Power_law.critical_path fit lo <= Power_law.critical_path fit hi +. 1e-9)

let prop_steady_ipc_monotone =
  qtest "steady IPC grows with window (beta > 1)"
    QCheck.(pair fit_gen (pair (float_range 1.0 500.0) (float_range 1.0 500.0)))
    (fun ((_, _, _, fit), (w1, w2)) ->
      let lo = Float.min w1 w2 and hi = Float.max w1 w2 in
      Power_law.steady_ipc fit lo <= Power_law.steady_ipc fit hi +. 1e-9)

let prop_calibration_consistent =
  qtest "calibrated fit reproduces inputs" fit_gen
    (fun (ipc, window, _, fit) ->
      Float.abs (Power_law.steady_ipc fit (float_of_int window) -. ipc)
      < 1e-6 *. ipc)

(* --- Drain --- *)

let fit = Power_law.calibrate ~ipc:2.0 ~window:256 ~beta:2.0

let test_drain_fixed () =
  let t =
    Drain.time (Drain.Fixed 40.0) ~fit ~window:256 ~interval_instrs:1000.0
      ~non_accl_time:100.0
  in
  Alcotest.(check bool) "fixed used" true (feq t 40.0)

let test_drain_fixed_capped () =
  let t =
    Drain.time (Drain.Fixed 400.0) ~fit ~window:256 ~interval_instrs:1000.0
      ~non_accl_time:100.0
  in
  Alcotest.(check bool) "capped at non-accel work" true (feq t 100.0)

let test_drain_fixed_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Drain.time: negative fixed drain") (fun () ->
      ignore
        (Drain.time (Drain.Fixed (-1.0)) ~fit ~window:256
           ~interval_instrs:10.0 ~non_accl_time:10.0))

let test_drain_auto_full_window () =
  (* Plenty of work: the whole ROB drains at the calibrated rate. *)
  let t =
    Drain.time Drain.Auto ~fit ~window:256 ~interval_instrs:10_000.0
      ~non_accl_time:1.0e9
  in
  Alcotest.(check bool) "l(256) = 128" true (feq ~eps:1e-6 t 128.0)

let test_drain_auto_short_interval () =
  (* Interval shorter than the ROB: only its instructions can be in the
     window. *)
  let t =
    Drain.time Drain.Auto ~fit ~window:256 ~interval_instrs:64.0
      ~non_accl_time:1.0e9
  in
  Alcotest.(check bool) "content-limited" true
    (feq ~eps:1e-6 t (Power_law.critical_path fit 64.0))

let test_drain_auto_capped () =
  let t =
    Drain.time Drain.Auto ~fit ~window:256 ~interval_instrs:10_000.0
      ~non_accl_time:50.0
  in
  Alcotest.(check bool) "capped by t_non_accl" true (feq t 50.0)

let test_drain_refill_aware () =
  let t =
    Drain.time Drain.Refill_aware ~fit ~window:256 ~interval_instrs:10_000.0
      ~non_accl_time:1.0e9
  in
  Alcotest.(check bool) "zero" true (feq t 0.0)

let prop_drain_nonnegative_and_capped =
  qtest "drain in [0, t_non_accl]"
    QCheck.(
      pair
        (oneof
           [
             always Drain.Auto;
             always Drain.Refill_aware;
             map (fun f -> Drain.Fixed f) (float_range 0.0 1000.0);
           ])
        (pair (float_range 0.0 5000.0) (float_range 0.0 5000.0)))
    (fun (spec, (interval_instrs, non_accl_time)) ->
      let t =
        Drain.time spec ~fit ~window:256 ~interval_instrs ~non_accl_time
      in
      t >= 0.0 && t <= non_accl_time +. 1e-9)

let () =
  Alcotest.run "tca_interval"
    [
      ( "power_law",
        [
          Alcotest.test_case "calibration point" `Quick test_calibration_point;
          Alcotest.test_case "calibrate invalid" `Quick test_calibrate_invalid;
          Alcotest.test_case "critical path zero" `Quick test_critical_path_zero;
          Alcotest.test_case "window_for_ipc inverse" `Quick test_window_for_ipc_inverse;
          Alcotest.test_case "window_for_ipc beta 1" `Quick test_window_for_ipc_beta1;
          prop_critical_path_monotone;
          prop_steady_ipc_monotone;
          prop_calibration_consistent;
        ] );
      ( "drain",
        [
          Alcotest.test_case "fixed" `Quick test_drain_fixed;
          Alcotest.test_case "fixed capped" `Quick test_drain_fixed_capped;
          Alcotest.test_case "fixed negative" `Quick test_drain_fixed_negative;
          Alcotest.test_case "auto full window" `Quick test_drain_auto_full_window;
          Alcotest.test_case "auto short interval" `Quick test_drain_auto_short_interval;
          Alcotest.test_case "auto capped" `Quick test_drain_auto_capped;
          Alcotest.test_case "refill aware" `Quick test_drain_refill_aware;
          prop_drain_nonnegative_and_capped;
        ] );
    ]
