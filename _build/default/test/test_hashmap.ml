open Tca_hashmap

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Table --- *)

let test_create_validation () =
  Alcotest.check_raises "capacity range"
    (Invalid_argument "Table.create: capacity_pow2 out of [4, 24]") (fun () ->
      ignore (Table.create ~capacity_pow2:2 ()))

let test_insert_find () =
  let t = Table.create ~capacity_pow2:8 () in
  let r = Table.insert t 42 420 in
  Alcotest.(check bool) "fresh insert" false r.Table.found;
  Alcotest.(check int) "length" 1 (Table.length t);
  let f = Table.find t 42 in
  Alcotest.(check bool) "found" true f.Table.found;
  Alcotest.(check (option int)) "value" (Some 420) f.Table.value;
  let m = Table.find t 43 in
  Alcotest.(check bool) "absent" false m.Table.found

let test_update () =
  let t = Table.create ~capacity_pow2:8 () in
  ignore (Table.insert t 7 1);
  let r = Table.insert t 7 2 in
  Alcotest.(check bool) "update reports existing" true r.Table.found;
  Alcotest.(check int) "no growth" 1 (Table.length t);
  Alcotest.(check (option int)) "new value" (Some 2) (Table.find t 7).Table.value

let test_remove_tombstones () =
  let t = Table.create ~capacity_pow2:8 () in
  (* Force a collision chain, then delete the middle element: later keys
     must remain findable through the tombstone. *)
  ignore (Table.insert t 10 1);
  ignore (Table.insert t 20 2);
  ignore (Table.insert t 30 3);
  let victim = 20 in
  let r = Table.remove t victim in
  Alcotest.(check bool) "removed" true r.Table.found;
  Alcotest.(check int) "length drops" 2 (Table.length t);
  Alcotest.(check bool) "gone" false (Table.find t victim).Table.found;
  Alcotest.(check bool) "others intact" true
    ((Table.find t 10).Table.found && (Table.find t 30).Table.found);
  Alcotest.(check bool) "remove absent" false (Table.remove t 999).Table.found

let test_probe_addresses () =
  let t = Table.create ~base:0x1000 ~capacity_pow2:4 () in
  let r = Table.find t 5 in
  Alcotest.(check int) "one probe on empty table" 1 r.Table.probes;
  Alcotest.(check int) "one address" 1 (List.length r.Table.bucket_addrs);
  List.iter
    (fun a ->
      Alcotest.(check bool) "aligned to bucket" true
        (a >= 0x1000 && (a - 0x1000) mod 16 = 0))
    r.Table.bucket_addrs

let test_full_table_rejected () =
  let t = Table.create ~capacity_pow2:4 () in
  Alcotest.(check bool) "fills then fails" true
    (try
       for k = 0 to 15 do
         ignore (Table.insert t k k)
       done;
       false
     with Failure _ -> true)

let test_negative_key () =
  let t = Table.create ~capacity_pow2:4 () in
  Alcotest.check_raises "negative" (Invalid_argument "Table: negative key")
    (fun () -> ignore (Table.find t (-1)))

let test_mean_probes_grows_with_load () =
  let probes_at load =
    let t = Table.create ~capacity_pow2:10 () in
    let n = int_of_float (load *. 1024.0) in
    for k = 0 to n - 1 do
      ignore (Table.insert t ((k * 7919) + 3) k)
    done;
    let rng = Tca_util.Prng.create 5 in
    let total = ref 0 in
    for _ = 1 to 500 do
      let k = ((Tca_util.Prng.int rng n * 7919) + 3) in
      total := !total + (Table.find t k).Table.probes
    done;
    float_of_int !total /. 500.0
  in
  Alcotest.(check bool) "collisions grow with load factor" true
    (probes_at 0.8 > probes_at 0.2)

(* Reference-model property: the table behaves like Hashtbl under random
   insert/find/remove sequences. *)
let prop_matches_reference =
  qtest "matches a reference map under random ops"
    QCheck.small_int
    (fun seed ->
      let t = Table.create ~capacity_pow2:8 () in
      let reference = Hashtbl.create 64 in
      let rng = Tca_util.Prng.create seed in
      let ok = ref true in
      for _ = 1 to 150 do
        let key = Tca_util.Prng.int rng 64 in
        match Tca_util.Prng.int rng 3 with
        | 0 when Table.length t < 200 ->
            let v = Tca_util.Prng.int rng 1000 in
            ignore (Table.insert t key v);
            Hashtbl.replace reference key v
        | 1 ->
            let r = Table.find t key in
            let expected = Hashtbl.find_opt reference key in
            if r.Table.found <> Option.is_some expected then ok := false;
            if r.Table.found && r.Table.value <> expected then ok := false
        | _ ->
            ignore (Table.remove t key);
            Hashtbl.remove reference key
      done;
      !ok
      && Table.length t = Hashtbl.length reference
      && Table.check_invariants t = Ok ())

(* --- Cost_model --- *)

let test_software_uops () =
  Alcotest.(check int) "1 probe" (6 + 4 + 3) (Cost_model.software_uops ~probes:1);
  Alcotest.(check int) "4 probes" (6 + 16 + 3) (Cost_model.software_uops ~probes:4)

let test_emit_find_counts () =
  let b = Tca_uarch.Trace.Builder.create () in
  Cost_model.emit_find b ~bucket_addrs:[ 0x2000_0000; 0x2000_0010; 0x2000_0040 ];
  Alcotest.(check int) "matches software_uops"
    (Cost_model.software_uops ~probes:3)
    (Tca_uarch.Trace.Builder.length b);
  Alcotest.check_raises "empty probes"
    (Invalid_argument "Cost_model.emit_find: no buckets") (fun () ->
      Cost_model.emit_find b ~bucket_addrs:[])

let test_emit_find_accel_lines () =
  let b = Tca_uarch.Trace.Builder.create () in
  (* Two buckets in the same 64 B line, one in another: two line reads. *)
  Cost_model.emit_find_accel b
    ~bucket_addrs:[ 0x2000_0000; 0x2000_0010; 0x2000_0080 ];
  let t = Tca_uarch.Trace.Builder.build b in
  Alcotest.(check int) "single instruction" 1 (Tca_uarch.Trace.length t);
  match (Tca_uarch.Trace.get t 0).Tca_uarch.Isa.op with
  | Tca_uarch.Isa.Accel a ->
      Alcotest.(check int) "deduplicated lines" 2
        (Array.length a.Tca_uarch.Isa.reads);
      Alcotest.(check int) "compute latency" Cost_model.accel_compute_latency
        a.Tca_uarch.Isa.compute_latency
  | _ -> Alcotest.fail "expected accel"

(* --- Workload --- *)

let test_workload_structure () =
  let cfg =
    Tca_workloads.Hashmap_workload.config ~n_lookups:200
      ~app_instrs_per_lookup:50 ()
  in
  let pair, mean_probes = Tca_workloads.Hashmap_workload.generate cfg in
  let open Tca_workloads in
  Alcotest.(check int) "invocations" 200 pair.Meta.meta.Meta.invocations;
  Alcotest.(check int) "accels" 200
    (Tca_uarch.Trace.counts pair.Meta.accelerated).Tca_uarch.Trace.accels;
  Alcotest.(check int) "no accel in baseline" 0
    (Tca_uarch.Trace.counts pair.Meta.baseline).Tca_uarch.Trace.accels;
  Alcotest.(check bool) "probes at moderate load" true
    (mean_probes >= 1.0 && mean_probes < 4.0);
  Alcotest.(check bool) "TCA reads real lines" true
    (pair.Meta.meta.Meta.avg_reads_per_invocation >= 1.0);
  Alcotest.(check bool) "fresh lines estimated" true
    (pair.Meta.meta.Meta.avg_fresh_lines_per_invocation > 0.0)

let test_workload_validation () =
  Alcotest.check_raises "load factor"
    (Invalid_argument "Hashmap_workload.config: load_factor out of (0, 0.85]")
    (fun () ->
      ignore
        (Tca_workloads.Hashmap_workload.config ~load_factor:0.95 ~n_lookups:10
           ~app_instrs_per_lookup:10 ()))

let test_workload_determinism () =
  let cfg =
    Tca_workloads.Hashmap_workload.config ~n_lookups:100
      ~app_instrs_per_lookup:30 ~seed:3 ()
  in
  let p1, m1 = Tca_workloads.Hashmap_workload.generate cfg in
  let p2, m2 = Tca_workloads.Hashmap_workload.generate cfg in
  let open Tca_workloads in
  Alcotest.(check int) "same baseline"
    (Tca_uarch.Trace.length p1.Meta.baseline)
    (Tca_uarch.Trace.length p2.Meta.baseline);
  Alcotest.(check (float 1e-12)) "same probes" m1 m2

let test_experiment_quick () =
  let rows, mean_probes = Tca_experiments.Hashmap_val.run ~quick:true () in
  Alcotest.(check int) "one gap x 4 modes" 4 (List.length rows);
  Alcotest.(check bool) "probes sane" true (mean_probes >= 1.0);
  (* L_T must be the simulator's best mode here too. *)
  let sim m =
    (List.find
       (fun (r : Tca_experiments.Exp_common.validation_row) ->
         Tca_model.Mode.equal r.Tca_experiments.Exp_common.mode m)
       rows)
      .Tca_experiments.Exp_common.sim_speedup
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) "L_T best" true (sim Tca_model.Mode.L_T >= sim m))
    Tca_model.Mode.all

let () =
  Alcotest.run "tca_hashmap"
    [
      ( "table",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "remove/tombstones" `Quick test_remove_tombstones;
          Alcotest.test_case "probe addresses" `Quick test_probe_addresses;
          Alcotest.test_case "full table" `Quick test_full_table_rejected;
          Alcotest.test_case "negative key" `Quick test_negative_key;
          Alcotest.test_case "probes grow with load" `Quick test_mean_probes_grows_with_load;
          prop_matches_reference;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "software uops" `Quick test_software_uops;
          Alcotest.test_case "emit counts" `Quick test_emit_find_counts;
          Alcotest.test_case "accel lines" `Quick test_emit_find_accel_lines;
        ] );
      ( "workload",
        [
          Alcotest.test_case "structure" `Quick test_workload_structure;
          Alcotest.test_case "validation" `Quick test_workload_validation;
          Alcotest.test_case "determinism" `Quick test_workload_determinism;
          Alcotest.test_case "experiment quick" `Slow test_experiment_quick;
        ] );
    ]
