open Tca_strfn

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Arena --- *)

let arena_with strings =
  let a = Arena.create ~capacity:4096 () in
  let addrs = List.map (Arena.add_string a) strings in
  (a, addrs)

let test_add_string () =
  let a, addrs = arena_with [ "hello"; "world!" ] in
  (match addrs with
  | [ x; y ] ->
      Alcotest.(check int) "NUL-separated layout" (x + 6) y;
      Alcotest.(check bool) "addresses valid" true
        (Arena.address_ok a x && Arena.address_ok a y)
  | _ -> Alcotest.fail "expected two addresses");
  Alcotest.(check bool) "outside invalid" false (Arena.address_ok a 0)

let test_add_string_rejects_nul () =
  let a = Arena.create ~capacity:64 () in
  Alcotest.check_raises "embedded NUL"
    (Invalid_argument "Arena.add_string: embedded NUL") (fun () ->
      ignore (Arena.add_string a "a\000b"))

let test_arena_full () =
  let a = Arena.create ~capacity:4 () in
  Alcotest.(check bool) "full" true
    (try
       ignore (Arena.add_string a "toolong");
       false
     with Failure _ -> true)

let test_strlen () =
  let a, addrs = arena_with [ "hello" ] in
  let s = Arena.strlen a (List.hd addrs) in
  Alcotest.(check int) "length" 5 s.Arena.result;
  Alcotest.(check int) "inspects length + NUL" 6 s.Arena.bytes_inspected;
  Alcotest.(check int) "addresses recorded" 6 (List.length s.Arena.addrs)

let test_strcmp () =
  let a, addrs = arena_with [ "abc"; "abd"; "abc"; "ab" ] in
  let at i = List.nth addrs i in
  Alcotest.(check int) "less" (-1) (Arena.strcmp a (at 0) (at 1)).Arena.result;
  Alcotest.(check int) "greater" 1 (Arena.strcmp a (at 1) (at 0)).Arena.result;
  Alcotest.(check int) "equal" 0 (Arena.strcmp a (at 0) (at 2)).Arena.result;
  Alcotest.(check int) "prefix" 1 (Arena.strcmp a (at 0) (at 3)).Arena.result;
  (* Equal strings inspect both fully including NULs. *)
  Alcotest.(check int) "equal inspects both" 8
    (Arena.strcmp a (at 0) (at 2)).Arena.bytes_inspected

let test_find_char () =
  let a, addrs = arena_with [ "hello" ] in
  let addr = List.hd addrs in
  Alcotest.(check int) "found" 4 (Arena.find_char a addr 'o').Arena.result;
  Alcotest.(check int) "inspects to match" 2
    (Arena.find_char a addr 'e').Arena.bytes_inspected;
  let miss = Arena.find_char a addr 'z' in
  Alcotest.(check int) "missing" (-1) miss.Arena.result;
  Alcotest.(check int) "scans whole string" 6 miss.Arena.bytes_inspected;
  Alcotest.check_raises "NUL needle"
    (Invalid_argument "Arena.find_char: NUL needle") (fun () ->
      ignore (Arena.find_char a addr '\000'))

let string_gen =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 40))

let prop_strlen_matches_stdlib =
  qtest "strlen = String.length"
    (QCheck.make ~print:(fun s -> s) string_gen)
    (fun s ->
      let a = Arena.create ~capacity:128 () in
      let addr = Arena.add_string a s in
      (Arena.strlen a addr).Arena.result = String.length s)

let prop_strcmp_matches_stdlib =
  qtest "strcmp sign = String.compare sign"
    (QCheck.make
       ~print:(fun (x, y) -> Printf.sprintf "%S vs %S" x y)
       QCheck.Gen.(pair string_gen string_gen))
    (fun (x, y) ->
      let a = Arena.create ~capacity:256 () in
      let ax = Arena.add_string a x and ay = Arena.add_string a y in
      (Arena.strcmp a ax ay).Arena.result = compare (String.compare x y) 0)

let prop_find_char_matches_stdlib =
  qtest "find_char = String.index_opt"
    (QCheck.make
       ~print:(fun (s, c) -> Printf.sprintf "%S %c" s c)
       QCheck.Gen.(pair string_gen (char_range 'a' 'z')))
    (fun (s, c) ->
      let a = Arena.create ~capacity:128 () in
      let addr = Arena.add_string a s in
      (Arena.find_char a addr c).Arena.result
      = Option.value ~default:(-1) (String.index_opt s c))

(* --- Cost model --- *)

let test_cost_model () =
  Alcotest.(check int) "uops" (5 + 40) (Cost_model.software_uops ~bytes_inspected:10);
  Alcotest.(check int) "latency 16B" 1
    (Cost_model.accel_compute_latency ~bytes_inspected:16);
  Alcotest.(check int) "latency 33B" 3
    (Cost_model.accel_compute_latency ~bytes_inspected:33);
  let b = Tca_uarch.Trace.Builder.create () in
  Cost_model.emit_call b ~addrs:(List.init 7 (fun i -> 0x4000_0000 + i));
  Alcotest.(check int) "emit matches software_uops"
    (Cost_model.software_uops ~bytes_inspected:7)
    (Tca_uarch.Trace.Builder.length b);
  Alcotest.(check int) "lines deduplicated" 1
    (List.length (Cost_model.lines_of_addrs [ 0x40; 0x41; 0x7F ]))

(* --- Workload --- *)

let test_workload_structure () =
  let cfg =
    Tca_workloads.Strfn_workload.config ~n_calls:80 ~app_instrs_per_call:60 ()
  in
  let pair, mean_bytes = Tca_workloads.Strfn_workload.generate cfg in
  let open Tca_workloads in
  Alcotest.(check int) "invocations" 80 pair.Meta.meta.Meta.invocations;
  Alcotest.(check int) "accels" 80
    (Tca_uarch.Trace.counts pair.Meta.accelerated).Tca_uarch.Trace.accels;
  Alcotest.(check bool) "granularity in the string-fn band" true
    (mean_bytes > 8.0 && mean_bytes < 250.0);
  Alcotest.(check bool) "a sane" true
    (pair.Meta.meta.Meta.a > 0.1 && pair.Meta.meta.Meta.a < 0.9)

let test_workload_determinism () =
  let cfg =
    Tca_workloads.Strfn_workload.config ~n_calls:40 ~app_instrs_per_call:30
      ~seed:5 ()
  in
  let p1, m1 = Tca_workloads.Strfn_workload.generate cfg in
  let p2, m2 = Tca_workloads.Strfn_workload.generate cfg in
  let open Tca_workloads in
  Alcotest.(check int) "same baseline"
    (Tca_uarch.Trace.length p1.Meta.baseline)
    (Tca_uarch.Trace.length p2.Meta.baseline);
  Alcotest.(check (float 1e-12)) "same mean" m1 m2

let test_workload_validation () =
  Alcotest.check_raises "length range"
    (Invalid_argument "Strfn_workload.config: bad length range") (fun () ->
      ignore
        (Tca_workloads.Strfn_workload.config ~min_len:10 ~max_len:5
           ~n_calls:10 ~app_instrs_per_call:10 ()))

let test_experiment_quick () =
  let rows, mean_bytes = Tca_experiments.Strfn_val.run ~quick:true () in
  Alcotest.(check int) "4 rows" 4 (List.length rows);
  Alcotest.(check bool) "bytes sane" true (mean_bytes > 8.0);
  let sim m =
    (List.find
       (fun (r : Tca_experiments.Exp_common.validation_row) ->
         Tca_model.Mode.equal r.Tca_experiments.Exp_common.mode m)
       rows)
      .Tca_experiments.Exp_common.sim_speedup
  in
  Alcotest.(check bool) "L_T best" true
    (List.for_all (fun m -> sim Tca_model.Mode.L_T >= sim m) Tca_model.Mode.all)

let () =
  Alcotest.run "tca_strfn"
    [
      ( "arena",
        [
          Alcotest.test_case "add_string" `Quick test_add_string;
          Alcotest.test_case "rejects NUL" `Quick test_add_string_rejects_nul;
          Alcotest.test_case "full" `Quick test_arena_full;
          Alcotest.test_case "strlen" `Quick test_strlen;
          Alcotest.test_case "strcmp" `Quick test_strcmp;
          Alcotest.test_case "find_char" `Quick test_find_char;
          prop_strlen_matches_stdlib;
          prop_strcmp_matches_stdlib;
          prop_find_char_matches_stdlib;
        ] );
      ("cost_model", [ Alcotest.test_case "counts" `Quick test_cost_model ]);
      ( "workload",
        [
          Alcotest.test_case "structure" `Quick test_workload_structure;
          Alcotest.test_case "determinism" `Quick test_workload_determinism;
          Alcotest.test_case "validation" `Quick test_workload_validation;
          Alcotest.test_case "experiment quick" `Slow test_experiment_quick;
        ] );
    ]
