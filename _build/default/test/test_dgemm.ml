open Tca_dgemm

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Matrix --- *)

let test_matrix_create () =
  let m = Matrix.create 4 in
  Alcotest.(check int) "dim" 4 (Matrix.dim m);
  Alcotest.(check (float 0.0)) "zeroed" 0.0 (Matrix.get m 3 3);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Matrix.create: non-positive dimension") (fun () ->
      ignore (Matrix.create 0))

let test_matrix_get_set () =
  let m = Matrix.create 3 in
  Matrix.set m 1 2 5.0;
  Alcotest.(check (float 0.0)) "set/get" 5.0 (Matrix.get m 1 2);
  Alcotest.check_raises "bounds" (Invalid_argument "Matrix: index out of range")
    (fun () -> ignore (Matrix.get m 3 0))

let test_matrix_random_range () =
  let rng = Tca_util.Prng.create 5 in
  let m = Matrix.random rng 8 in
  for i = 0 to 7 do
    for j = 0 to 7 do
      let x = Matrix.get m i j in
      Alcotest.(check bool) "in [-1, 1)" true (x >= -1.0 && x < 1.0)
    done
  done

let test_matrix_equal_diff () =
  let a = Matrix.create 2 and b = Matrix.create 2 in
  Matrix.set b 0 0 1e-12;
  Alcotest.(check bool) "within eps" true (Matrix.equal a b);
  Matrix.set b 0 0 0.5;
  Alcotest.(check bool) "beyond eps" false (Matrix.equal a b);
  Alcotest.(check (float 1e-12)) "max diff" 0.5 (Matrix.max_abs_diff a b)

let test_multiply_naive_known () =
  (* [[1 2][3 4]] * [[5 6][7 8]] = [[19 22][43 50]] *)
  let a = Matrix.create 2 and b = Matrix.create 2 in
  Matrix.set a 0 0 1.0;
  Matrix.set a 0 1 2.0;
  Matrix.set a 1 0 3.0;
  Matrix.set a 1 1 4.0;
  Matrix.set b 0 0 5.0;
  Matrix.set b 0 1 6.0;
  Matrix.set b 1 0 7.0;
  Matrix.set b 1 1 8.0;
  let c = Matrix.multiply_naive a b in
  Alcotest.(check (float 1e-12)) "c00" 19.0 (Matrix.get c 0 0);
  Alcotest.(check (float 1e-12)) "c01" 22.0 (Matrix.get c 0 1);
  Alcotest.(check (float 1e-12)) "c10" 43.0 (Matrix.get c 1 0);
  Alcotest.(check (float 1e-12)) "c11" 50.0 (Matrix.get c 1 1)

let test_identity () =
  let rng = Tca_util.Prng.create 9 in
  let a = Matrix.random rng 8 in
  let id = Matrix.create 8 in
  for i = 0 to 7 do
    Matrix.set id i i 1.0
  done;
  Alcotest.(check bool) "A * I = A" true
    (Matrix.equal ~eps:1e-12 (Matrix.multiply_naive a id) a)

let test_blocked_equals_naive () =
  let rng = Tca_util.Prng.create 11 in
  let a = Matrix.random rng 16 and b = Matrix.random rng 16 in
  let reference = Matrix.multiply_naive a b in
  List.iter
    (fun block ->
      Alcotest.(check bool)
        (Printf.sprintf "block %d" block)
        true
        (Matrix.equal ~eps:1e-9 (Matrix.multiply_blocked ~block a b) reference))
    [ 2; 4; 8; 16 ]

let test_blocked_invalid () =
  let a = Matrix.create 6 in
  Alcotest.check_raises "block must divide"
    (Invalid_argument "Matrix.multiply_blocked: block must divide dimension")
    (fun () -> ignore (Matrix.multiply_blocked ~block:4 a a))

let prop_blocked_equals_naive =
  qtest "blocked = naive on random matrices"
    QCheck.(pair small_int (int_range 0 2))
    (fun (seed, block_idx) ->
      let rng = Tca_util.Prng.create seed in
      let a = Matrix.random rng 8 and b = Matrix.random rng 8 in
      let block = List.nth [ 2; 4; 8 ] block_idx in
      Matrix.equal ~eps:1e-9
        (Matrix.multiply_blocked ~block a b)
        (Matrix.multiply_naive a b))

let test_addr_of_row_major () =
  Alcotest.(check int) "origin" 1000 (Matrix.addr_of ~base:1000 ~n:4 ~i:0 ~j:0);
  Alcotest.(check int) "next column" 1008 (Matrix.addr_of ~base:1000 ~n:4 ~i:0 ~j:1);
  Alcotest.(check int) "next row" 1032 (Matrix.addr_of ~base:1000 ~n:4 ~i:1 ~j:0)

let test_row_segment_lines () =
  (* 8 doubles starting at a line boundary: exactly one line. *)
  Alcotest.(check int) "aligned segment" 1
    (List.length (Matrix.row_segment_lines ~base:0 ~n:64 ~i:0 ~j:0 ~elems:8));
  (* Straddling: elements 6..13 cross the 64-byte boundary. *)
  Alcotest.(check int) "straddles two lines" 2
    (List.length (Matrix.row_segment_lines ~base:0 ~n:64 ~i:0 ~j:6 ~elems:8));
  Alcotest.check_raises "empty"
    (Invalid_argument "Matrix.row_segment_lines: empty segment") (fun () ->
      ignore (Matrix.row_segment_lines ~base:0 ~n:64 ~i:0 ~j:0 ~elems:0))

(* --- Mma --- *)

let test_mma_dims () =
  Alcotest.(check (list int)) "2 4 8" [ 2; 4; 8 ] Mma.supported_dims;
  Alcotest.(check int) "macs" 64 (Mma.macs_per_invocation 4);
  Alcotest.(check int) "invocations" 512 (Mma.invocations ~n:32 ~dim:4);
  Alcotest.(check int) "latency" 8 (Mma.compute_latency 8)

let test_mma_update_known () =
  (* C += A * B on a 2x2 corner with known values, plus accumulation. *)
  let a = Matrix.create 4 and b = Matrix.create 4 and c = Matrix.create 4 in
  Matrix.set a 0 0 1.0;
  Matrix.set a 0 1 2.0;
  Matrix.set a 1 0 3.0;
  Matrix.set a 1 1 4.0;
  Matrix.set b 0 0 5.0;
  Matrix.set b 0 1 6.0;
  Matrix.set b 1 0 7.0;
  Matrix.set b 1 1 8.0;
  Matrix.set c 0 0 100.0;
  Mma.update ~c ~a ~b ~i:0 ~j:0 ~k:0 ~dim:2;
  Alcotest.(check (float 1e-12)) "accumulates" 119.0 (Matrix.get c 0 0);
  Alcotest.(check (float 1e-12)) "c01" 22.0 (Matrix.get c 0 1)

let test_mma_update_out_of_range () =
  let a = Matrix.create 4 in
  Alcotest.check_raises "range" (Invalid_argument "Mma.update: block out of range")
    (fun () -> Mma.update ~c:a ~a ~b:a ~i:3 ~j:0 ~k:0 ~dim:2)

let test_mma_multiply_equals_naive () =
  let rng = Tca_util.Prng.create 13 in
  let a = Matrix.random rng 32 and b = Matrix.random rng 32 in
  let reference = Matrix.multiply_naive a b in
  List.iter
    (fun dim ->
      Alcotest.(check bool)
        (Printf.sprintf "dim %d" dim)
        true
        (Matrix.equal ~eps:1e-9
           (Mma.multiply_blocked_mma ~block:32 ~dim a b)
           reference))
    Mma.supported_dims

let test_mma_multiply_invalid () =
  let a = Matrix.create 32 in
  Alcotest.check_raises "dim divides block"
    (Invalid_argument "Mma.multiply_blocked_mma: dim must divide block")
    (fun () -> ignore (Mma.multiply_blocked_mma ~block:32 ~dim:5 a a));
  Alcotest.check_raises "invocations dim"
    (Invalid_argument "Mma.invocations: dim must divide n") (fun () ->
      ignore (Mma.invocations ~n:10 ~dim:4))

let prop_mma_equals_naive =
  qtest ~count:20 "MMA decomposition = naive on random 16x16"
    QCheck.(pair small_int (int_range 0 2))
    (fun (seed, dim_idx) ->
      let rng = Tca_util.Prng.create seed in
      let a = Matrix.random rng 16 and b = Matrix.random rng 16 in
      let dim = List.nth Mma.supported_dims dim_idx in
      Matrix.equal ~eps:1e-9
        (Mma.multiply_blocked_mma ~block:16 ~dim a b)
        (Matrix.multiply_naive a b))

let () =
  Alcotest.run "tca_dgemm"
    [
      ( "matrix",
        [
          Alcotest.test_case "create" `Quick test_matrix_create;
          Alcotest.test_case "get/set" `Quick test_matrix_get_set;
          Alcotest.test_case "random range" `Quick test_matrix_random_range;
          Alcotest.test_case "equal/diff" `Quick test_matrix_equal_diff;
          Alcotest.test_case "naive known" `Quick test_multiply_naive_known;
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "blocked = naive" `Quick test_blocked_equals_naive;
          Alcotest.test_case "blocked invalid" `Quick test_blocked_invalid;
          prop_blocked_equals_naive;
          Alcotest.test_case "addr_of layout" `Quick test_addr_of_row_major;
          Alcotest.test_case "row segment lines" `Quick test_row_segment_lines;
        ] );
      ( "mma",
        [
          Alcotest.test_case "dims and counts" `Quick test_mma_dims;
          Alcotest.test_case "update known" `Quick test_mma_update_known;
          Alcotest.test_case "update range" `Quick test_mma_update_out_of_range;
          Alcotest.test_case "multiply = naive" `Quick test_mma_multiply_equals_naive;
          Alcotest.test_case "invalid dims" `Quick test_mma_multiply_invalid;
          prop_mma_equals_naive;
        ] );
    ]
