test/test_strfn.mli:
