test/test_model.ml: Alcotest Array Concurrency Equations Float Granularity Grid List Mode Params Partial Presets QCheck QCheck_alcotest String Tca_interval Tca_model Tca_util Validate
