test/test_util.ml: Alcotest Array Csv Float Fun Gen Heatmap List Prng QCheck QCheck_alcotest Stats String Sweep Table Tca_util
