test/test_strfn.ml: Alcotest Arena Cost_model List Meta Option Printf QCheck QCheck_alcotest String Tca_experiments Tca_model Tca_strfn Tca_uarch Tca_workloads
