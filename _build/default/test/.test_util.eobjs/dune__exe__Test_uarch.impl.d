test/test_uarch.ml: Alcotest Array Bpred Cache Config Filename Float Fun Isa List Mem_hier Pipeline Ports Printf QCheck QCheck_alcotest Sim_stats Simulator String Sys Tca_uarch Tca_util Tlb Trace
