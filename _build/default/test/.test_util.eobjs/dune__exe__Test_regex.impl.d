test/test_regex.ml: Alcotest Cost_model Engine List Meta Pattern Printf QCheck QCheck_alcotest Result String Tca_experiments Tca_model Tca_regex Tca_uarch Tca_workloads
