test/test_dgemm.mli:
