test/test_dgemm.ml: Alcotest List Matrix Mma Printf QCheck QCheck_alcotest Tca_dgemm Tca_util
