test/test_interval.ml: Alcotest Drain Float Power_law QCheck QCheck_alcotest Tca_interval
