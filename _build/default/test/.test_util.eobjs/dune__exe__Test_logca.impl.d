test/test_logca.ml: Alcotest Float Logca QCheck QCheck_alcotest Tca_logca
