test/test_logca.mli:
