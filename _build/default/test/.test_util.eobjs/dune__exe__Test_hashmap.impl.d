test/test_hashmap.ml: Alcotest Array Cost_model Hashtbl List Meta Option QCheck QCheck_alcotest Table Tca_experiments Tca_hashmap Tca_model Tca_uarch Tca_util Tca_workloads
