test/test_heap.ml: Alcotest Cost_model Free_list List Option QCheck QCheck_alcotest Size_class Tca_heap Tca_uarch Tca_util Tcmalloc
