open Tca_heap

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Size_class --- *)

let test_size_class_boundaries () =
  Alcotest.(check (option int)) "1 byte" (Some 0) (Size_class.of_size 1);
  Alcotest.(check (option int)) "32" (Some 0) (Size_class.of_size 32);
  Alcotest.(check (option int)) "33" (Some 1) (Size_class.of_size 33);
  Alcotest.(check (option int)) "64" (Some 1) (Size_class.of_size 64);
  Alcotest.(check (option int)) "65" (Some 2) (Size_class.of_size 65);
  Alcotest.(check (option int)) "96" (Some 2) (Size_class.of_size 96);
  Alcotest.(check (option int)) "97" (Some 3) (Size_class.of_size 97);
  Alcotest.(check (option int)) "128" (Some 3) (Size_class.of_size 128);
  Alcotest.(check (option int)) "129 is large" None (Size_class.of_size 129)

let test_size_class_invalid () =
  Alcotest.check_raises "zero"
    (Invalid_argument "Size_class.of_size: non-positive size") (fun () ->
      ignore (Size_class.of_size 0))

let test_class_bytes () =
  Alcotest.(check int) "class 0" 32 (Size_class.class_bytes 0);
  Alcotest.(check int) "class 3" 128 (Size_class.class_bytes 3);
  Alcotest.check_raises "range"
    (Invalid_argument "Size_class: class index out of range") (fun () ->
      ignore (Size_class.class_bytes 4))

let prop_class_range_consistent =
  qtest "class_range brackets of_size"
    QCheck.(int_range 1 128)
    (fun size ->
      match Size_class.of_size size with
      | None -> false
      | Some cls ->
          let lo, hi = Size_class.class_range cls in
          size >= lo && size <= hi && Size_class.class_bytes cls = hi)

(* --- Free_list --- *)

let test_free_list_lifo () =
  let fl = Free_list.create () in
  Free_list.push fl 1;
  Free_list.push fl 2;
  Alcotest.(check int) "length" 2 (Free_list.length fl);
  Alcotest.(check (option int)) "peek" (Some 2) (Free_list.peek fl);
  Alcotest.(check (option int)) "pop newest" (Some 2) (Free_list.pop fl);
  Alcotest.(check (option int)) "pop older" (Some 1) (Free_list.pop fl);
  Alcotest.(check (option int)) "empty" None (Free_list.pop fl);
  Alcotest.(check bool) "is_empty" true (Free_list.is_empty fl)

let test_free_list_mem_to_list () =
  let fl = Free_list.create () in
  List.iter (Free_list.push fl) [ 10; 20; 30 ];
  Alcotest.(check bool) "mem" true (Free_list.mem fl 20);
  Alcotest.(check bool) "not mem" false (Free_list.mem fl 99);
  Alcotest.(check (list int)) "head first" [ 30; 20; 10 ] (Free_list.to_list fl)

(* --- Tcmalloc --- *)

let test_malloc_basic () =
  let h = Tcmalloc.create () in
  let a = Tcmalloc.malloc h 20 in
  Alcotest.(check (option int)) "class 0" (Some 0) (Tcmalloc.class_of_block h a);
  Alcotest.(check int) "one live block" 1 (Tcmalloc.live_blocks h);
  Alcotest.(check int) "32 live bytes" 32 (Tcmalloc.live_bytes h)

let test_malloc_invalid () =
  let h = Tcmalloc.create () in
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Tcmalloc.malloc: non-positive size") (fun () ->
      ignore (Tcmalloc.malloc h 0))

let test_free_reuse_lifo () =
  let h = Tcmalloc.create () in
  let a = Tcmalloc.malloc h 32 in
  let b = Tcmalloc.malloc h 32 in
  Tcmalloc.free h a;
  Tcmalloc.free h b;
  Alcotest.(check int) "two entries in list" 2 (Tcmalloc.free_list_length h 0);
  Alcotest.(check bool) "would hit" true (Tcmalloc.malloc_hits_free_list h 16);
  (* LIFO: the most recently freed block comes back first. *)
  Alcotest.(check int) "reuse b first" b (Tcmalloc.malloc h 32);
  Alcotest.(check int) "then a" a (Tcmalloc.malloc h 32)

let test_double_free_rejected () =
  let h = Tcmalloc.create () in
  let a = Tcmalloc.malloc h 40 in
  Tcmalloc.free h a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Tcmalloc.free: address not allocated") (fun () ->
      Tcmalloc.free h a)

let test_free_unknown_rejected () =
  let h = Tcmalloc.create () in
  Alcotest.check_raises "unknown"
    (Invalid_argument "Tcmalloc.free: address not allocated") (fun () ->
      Tcmalloc.free h 0xdead)

let test_large_path () =
  let h = Tcmalloc.create () in
  let a = Tcmalloc.malloc h 4096 in
  Alcotest.(check (option int)) "not a class block" None
    (Tcmalloc.class_of_block h a);
  Alcotest.(check bool) "64-aligned" true (Tcmalloc.live_bytes h mod 64 = 0);
  Tcmalloc.free h a;
  Alcotest.(check int) "bytes returned" 0 (Tcmalloc.live_bytes h)

let test_out_of_memory () =
  let h = Tcmalloc.create ~arena_bytes:128 () in
  ignore (Tcmalloc.malloc h 128);
  Alcotest.(check bool) "raises OOM" true
    (try
       ignore (Tcmalloc.malloc h 128);
       false
     with Tcmalloc.Out_of_memory -> true)

let test_freelist_head_addrs () =
  let h = Tcmalloc.create ~base:0x1000000 () in
  let addrs =
    List.init Size_class.num_classes (Tcmalloc.freelist_head_addr h)
  in
  Alcotest.(check int) "distinct" Size_class.num_classes
    (List.length (List.sort_uniq compare addrs));
  List.iter
    (fun a -> Alcotest.(check bool) "below arena" true (a < 0x1000000))
    addrs

let test_no_overlap_sequence () =
  let h = Tcmalloc.create () in
  let rng = Tca_util.Prng.create 77 in
  let live = ref [] in
  for _ = 1 to 2000 do
    if !live = [] || Tca_util.Prng.bool rng then begin
      let size = 1 + Tca_util.Prng.int rng 128 in
      let addr = Tcmalloc.malloc h size in
      let bytes =
        Size_class.class_bytes (Option.get (Size_class.of_size size))
      in
      live := (addr, bytes) :: !live
    end
    else
      match !live with
      | (addr, _) :: rest ->
          Tcmalloc.free h addr;
          live := rest
      | [] -> ()
  done;
  (* No two live blocks overlap. *)
  let sorted = List.sort compare !live in
  let rec check = function
    | (a1, b1) :: ((a2, _) :: _ as rest) ->
        Alcotest.(check bool) "disjoint" true (a1 + b1 <= a2);
        check rest
    | _ -> ()
  in
  check sorted;
  match Tcmalloc.check_invariants h with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let prop_invariants_random_ops =
  qtest ~count:50 "allocator invariants hold under random ops"
    QCheck.(small_int)
    (fun seed ->
      let h = Tcmalloc.create () in
      let rng = Tca_util.Prng.create seed in
      let live = ref [] in
      for _ = 1 to 500 do
        if !live = [] || Tca_util.Prng.bernoulli rng 0.6 then
          live := Tcmalloc.malloc h (1 + Tca_util.Prng.int rng 200) :: !live
        else
          match !live with
          | a :: rest ->
              Tcmalloc.free h a;
              live := rest
          | [] -> ()
      done;
      Tcmalloc.check_invariants h = Ok ())

(* --- Cost_model --- *)

let test_cost_model_counts () =
  let b = Tca_uarch.Trace.Builder.create () in
  let rng = Tca_util.Prng.create 1 in
  Cost_model.emit_malloc b ~rng ~head_addr:0x1000;
  Alcotest.(check int) "malloc is 69 uops" Cost_model.malloc_uops
    (Tca_uarch.Trace.Builder.length b);
  Cost_model.emit_free b ~rng ~head_addr:0x1000 ~ptr_reg:46;
  Alcotest.(check int) "free adds 37 uops"
    (Cost_model.malloc_uops + Cost_model.free_uops)
    (Tca_uarch.Trace.Builder.length b);
  Alcotest.(check int) "published counts" 69 Cost_model.malloc_uops;
  Alcotest.(check int) "published counts" 37 Cost_model.free_uops

let test_cost_model_traces_valid () =
  let b = Tca_uarch.Trace.Builder.create () in
  let rng = Tca_util.Prng.create 2 in
  for _ = 1 to 20 do
    Cost_model.emit_malloc b ~rng ~head_addr:0x1000;
    Cost_model.emit_free b ~rng ~head_addr:0x1000 ~ptr_reg:46
  done;
  let t = Tca_uarch.Trace.Builder.build b in
  Alcotest.(check int) "trace length" (20 * (69 + 37)) (Tca_uarch.Trace.length t)

let test_cost_model_result_reg () =
  let b = Tca_uarch.Trace.Builder.create () in
  let rng = Tca_util.Prng.create 3 in
  Cost_model.emit_malloc b ~rng ~head_addr:0x1000;
  let t = Tca_uarch.Trace.Builder.build b in
  let last = Tca_uarch.Trace.get t (Tca_uarch.Trace.length t - 1) in
  Alcotest.(check int) "pointer lands in result_reg" Cost_model.result_reg
    last.Tca_uarch.Isa.dst

let test_cost_model_accel () =
  let b = Tca_uarch.Trace.Builder.create () in
  Cost_model.emit_malloc_accel b;
  Cost_model.emit_free_accel b ~ptr_reg:46;
  let t = Tca_uarch.Trace.Builder.build b in
  Alcotest.(check int) "two instructions" 2 (Tca_uarch.Trace.length t);
  (match (Tca_uarch.Trace.get t 0).Tca_uarch.Isa.op with
  | Tca_uarch.Isa.Accel a ->
      Alcotest.(check int) "single cycle" Cost_model.accel_latency
        a.Tca_uarch.Isa.compute_latency
  | _ -> Alcotest.fail "expected accel");
  Alcotest.(check int) "malloc TCA writes result_reg" Cost_model.result_reg
    (Tca_uarch.Trace.get t 0).Tca_uarch.Isa.dst;
  Alcotest.(check int) "free TCA consumes pointer" 46
    (Tca_uarch.Trace.get t 1).Tca_uarch.Isa.src1

let test_cost_model_branch_site () =
  (* The fast-path branch must use a stable site PC so predictors train. *)
  let pcs =
    List.init 3 (fun i ->
        let b = Tca_uarch.Trace.Builder.create () in
        let rng = Tca_util.Prng.create i in
        (* Shift the sequence start to prove the branch PC is absolute. *)
        for _ = 0 to i do
          Tca_uarch.Trace.Builder.add b (Tca_uarch.Isa.int_alu ~dst:0 ())
        done;
        Cost_model.emit_malloc b ~rng ~head_addr:0x1000;
        let t = Tca_uarch.Trace.Builder.build b in
        let branch_pc = ref (-1) in
        Tca_uarch.Trace.iter
          (fun ins ->
            if ins.Tca_uarch.Isa.op = Tca_uarch.Isa.Branch then
              branch_pc := ins.Tca_uarch.Isa.pc)
          t;
        !branch_pc)
  in
  match pcs with
  | [ a; b; c ] ->
      Alcotest.(check bool) "stable across calls" true (a = b && b = c && a >= 0)
  | _ -> Alcotest.fail "expected three samples"

let () =
  Alcotest.run "tca_heap"
    [
      ( "size_class",
        [
          Alcotest.test_case "boundaries" `Quick test_size_class_boundaries;
          Alcotest.test_case "invalid" `Quick test_size_class_invalid;
          Alcotest.test_case "class bytes" `Quick test_class_bytes;
          prop_class_range_consistent;
        ] );
      ( "free_list",
        [
          Alcotest.test_case "lifo" `Quick test_free_list_lifo;
          Alcotest.test_case "mem/to_list" `Quick test_free_list_mem_to_list;
        ] );
      ( "tcmalloc",
        [
          Alcotest.test_case "malloc basic" `Quick test_malloc_basic;
          Alcotest.test_case "malloc invalid" `Quick test_malloc_invalid;
          Alcotest.test_case "free/reuse LIFO" `Quick test_free_reuse_lifo;
          Alcotest.test_case "double free" `Quick test_double_free_rejected;
          Alcotest.test_case "free unknown" `Quick test_free_unknown_rejected;
          Alcotest.test_case "large path" `Quick test_large_path;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          Alcotest.test_case "freelist head addrs" `Quick test_freelist_head_addrs;
          Alcotest.test_case "no overlap" `Quick test_no_overlap_sequence;
          prop_invariants_random_ops;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "uop counts" `Quick test_cost_model_counts;
          Alcotest.test_case "traces valid" `Quick test_cost_model_traces_valid;
          Alcotest.test_case "result register" `Quick test_cost_model_result_reg;
          Alcotest.test_case "accel forms" `Quick test_cost_model_accel;
          Alcotest.test_case "stable branch site" `Quick test_cost_model_branch_site;
        ] );
    ]
