open Tca_model

let preset_cell (c : Params.core) =
  Printf.sprintf "ipc=%.1f rob=%d issue=%d t_commit=%.0f" c.Params.ipc
    c.Params.rob_size c.Params.issue_width c.Params.commit_stall

let rows () =
  List.map (fun (sym, meaning) -> [ sym; meaning ]) Params.glossary

let print () =
  print_endline "Table I: analytical model parameters";
  Tca_util.Table.print ~headers:[ "variable"; "name" ] (rows ());
  print_newline ();
  print_endline "Core presets:";
  Tca_util.Table.print ~headers:[ "preset"; "parameters" ]
    (List.map
       (fun name ->
         [ name; preset_cell (Option.get (Presets.by_name name)) ])
       Presets.names)
