lib/experiments/mechanistic_cmp.ml: Bpred Cache Codegen Config Float List Mechanistic Mem_hier Pipeline Printf Sim_stats Tca_interval Tca_uarch Tca_util Tca_workloads Trace
