lib/experiments/fig6.ml: Dgemm_workload Exp_common List Meta Tca_dgemm Tca_model Tca_util Tca_workloads
