lib/experiments/fig8.ml: Array Concurrency List Mode Params Presets Printf Tca_model Tca_util
