lib/experiments/fig5.ml: Exp_common Heap_workload List Tca_heap Tca_model Tca_util Tca_workloads
