lib/experiments/exp_common.ml: Cache Config List Mem_hier Meta Printf Sim_stats Simulator Tca_interval Tca_model Tca_uarch Tca_util Tca_workloads
