lib/experiments/fig4.mli: Exp_common Tca_model
