lib/experiments/fig3.mli: Tca_model
