lib/experiments/partial_spec.ml: Array Config Equations Exp_common List Mode Params Partial Pipeline Presets Printf Sim_stats Tca_model Tca_uarch Tca_util Tca_workloads
