lib/experiments/occupancy.ml: Config Dgemm_workload Exp_common List Meta Pipeline Sim_stats Tca_model Tca_uarch Tca_util Tca_workloads
