lib/experiments/fig7.ml: Array Float Grid List Mode Params Presets Printf Tca_model Tca_util Tca_workloads
