lib/experiments/strfn_val.ml: Exp_common List Meta Printf Strfn_workload Tca_strfn Tca_util Tca_workloads
