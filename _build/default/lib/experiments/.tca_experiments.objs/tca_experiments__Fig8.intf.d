lib/experiments/fig8.mli: Tca_model
