lib/experiments/regex_val.mli: Exp_common
