lib/experiments/logca_cmp.ml: Array Granularity List Mode Params Presets Printf Tca_logca Tca_model Tca_util
