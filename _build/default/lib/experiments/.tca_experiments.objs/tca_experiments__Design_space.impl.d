lib/experiments/design_space.ml: Energy Equations Hw_cost List Mode Params Presets Printf Sensitivity Tca_model Tca_util Tca_workloads
