lib/experiments/mechanistic_cmp.mli:
