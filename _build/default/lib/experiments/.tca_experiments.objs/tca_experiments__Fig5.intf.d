lib/experiments/fig5.mli: Exp_common Tca_model
