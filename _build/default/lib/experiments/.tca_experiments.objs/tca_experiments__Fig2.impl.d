lib/experiments/fig2.ml: Array Granularity List Mode Params Presets Printf Tca_model Tca_util
