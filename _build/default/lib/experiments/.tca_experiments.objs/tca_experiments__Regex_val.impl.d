lib/experiments/regex_val.ml: Exp_common List Meta Printf Regex_workload Tca_regex Tca_util Tca_workloads
