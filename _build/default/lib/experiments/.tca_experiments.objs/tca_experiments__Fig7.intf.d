lib/experiments/fig7.mli: Tca_model
