lib/experiments/hashmap_val.ml: Exp_common Float Hashmap_workload List Meta Printf Tca_hashmap Tca_util Tca_workloads
