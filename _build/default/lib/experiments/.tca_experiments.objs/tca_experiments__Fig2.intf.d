lib/experiments/fig2.mli: Tca_model
