lib/experiments/fig3.ml: Array Bpred Buffer Codegen Config Exp_common Isa List Pipeline Printf Sim_stats Tca_model Tca_uarch Tca_util Tca_workloads Trace
