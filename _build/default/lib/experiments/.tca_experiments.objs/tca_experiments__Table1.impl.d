lib/experiments/table1.ml: List Option Params Presets Printf Tca_model Tca_util
