lib/experiments/strfn_val.mli: Exp_common
