lib/experiments/cores_cmp.ml: Config Exp_common Float Heap_workload List Meta Printf Sim_stats Simulator Tca_model Tca_uarch Tca_util Tca_workloads
