lib/experiments/exp_common.mli: Tca_interval Tca_model Tca_uarch Tca_workloads
