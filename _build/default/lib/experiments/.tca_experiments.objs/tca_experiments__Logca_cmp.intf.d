lib/experiments/logca_cmp.mli: Tca_logca Tca_model
