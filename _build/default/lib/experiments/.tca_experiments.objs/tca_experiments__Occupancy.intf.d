lib/experiments/occupancy.mli: Tca_model
