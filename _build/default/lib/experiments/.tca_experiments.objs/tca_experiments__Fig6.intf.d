lib/experiments/fig6.mli: Exp_common Tca_model
