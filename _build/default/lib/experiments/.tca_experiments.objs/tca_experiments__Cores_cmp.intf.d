lib/experiments/cores_cmp.mli: Tca_model
