lib/experiments/partial_spec.mli:
