lib/experiments/fig4.ml: Codegen Exp_common List Synthetic Tca_model Tca_util Tca_workloads
