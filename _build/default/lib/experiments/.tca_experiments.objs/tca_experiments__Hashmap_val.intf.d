lib/experiments/hashmap_val.mli: Exp_common
