lib/experiments/design_space.mli: Tca_model
