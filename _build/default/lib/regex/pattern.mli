(** Regular-expression abstract syntax and parser (the substrate behind
    the "regular expression" TCA of the paper's Fig. 2, after the
    server-side PHP acceleration work it cites).

    Supported syntax: literal characters, [.] (any), character classes
    [[a-z0-9]] with leading [^] negation, alternation [|], grouping
    [(...)], postfix [*], [+], [?], and backslash escaping. *)

type t =
  | Empty  (** matches the empty string *)
  | Char of char
  | Any
  | Class of { negated : bool; ranges : (char * char) list }
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

val parse : string -> (t, string) result
(** Parse the textual syntax; errors carry a position-tagged message. *)

val parse_exn : string -> t
(** Raises [Invalid_argument] on a malformed pattern. *)

val to_string : t -> string
(** Canonical textual form (parseable by {!parse}). *)

val char_matches : t -> char -> bool
(** For [Char]/[Any]/[Class] nodes: does the node match the character?
    Raises [Invalid_argument] on composite nodes. *)

val nullable : t -> bool
(** Does the pattern match the empty string? *)
