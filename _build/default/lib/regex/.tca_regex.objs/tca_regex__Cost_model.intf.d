lib/regex/cost_model.mli: Tca_uarch
