lib/regex/engine.mli: Pattern
