lib/regex/pattern.mli:
