lib/regex/pattern.ml: List Printf String
