lib/regex/engine.ml: Array Hashtbl Int List Pattern Set String
