open Tca_uarch

let setup_uops = 8
let uops_per_char = 6

let software_uops ~chars_scanned =
  setup_uops + (uops_per_char * max 1 chars_scanned)

let chars_per_cycle = 16

let accel_compute_latency ~chars_scanned =
  max 1 ((chars_scanned + chars_per_cycle - 1) / chars_per_cycle)

(* Registers 60..62: clear of every other generator. *)
let result_reg = 60
let r_state = 61
let r_char = 62

let scan_branch_pc = 0x6800

(* Transition tables live in a small dedicated region (L1-resident, like
   a real DFA's hot rows). *)
let table_base = 0x0030_0000

let scanned_lines ~text_base ~start ~chars_scanned =
  let first = text_base + start in
  let last = first + max 1 chars_scanned - 1 in
  let rec collect acc line =
    if line > last land lnot 63 then List.rev acc
    else collect (line :: acc) (line + 64)
  in
  collect [] (first land lnot 63)

let emit_search b ~text_base ~start ~chars_scanned =
  if chars_scanned < 0 then invalid_arg "Cost_model.emit_search: negative scan";
  (* Setup: load table base, init state, compute start address. *)
  Trace.Builder.add b (Isa.load ~dst:r_state ~addr:table_base ());
  for _ = 1 to setup_uops - 2 do
    Trace.Builder.add b (Isa.int_alu ~src1:r_state ~dst:r_state ())
  done;
  Trace.Builder.add b (Isa.int_alu ~dst:result_reg ());
  let n = max 1 chars_scanned in
  for i = 0 to n - 1 do
    (* load byte; index arithmetic; transition load (state-dependent);
       advance; accept-check branch (taken while scanning). *)
    Trace.Builder.add b
      (Isa.load ~base:result_reg ~dst:r_char ~addr:(text_base + start + i) ());
    Trace.Builder.add b
      (Isa.int_alu ~src1:r_char ~src2:r_state ~dst:r_state ());
    Trace.Builder.add b
      (Isa.load ~base:r_state ~dst:r_state
         ~addr:(table_base + 64 + (8 * ((start + i) mod 256)))
         ());
    Trace.Builder.add b (Isa.int_alu ~src1:result_reg ~dst:result_reg ());
    Trace.Builder.add b (Isa.int_alu ~src1:r_state ~dst:r_state ());
    Trace.Builder.add_at_site b
      (Isa.branch ~pc:scan_branch_pc ~src1:r_state ~taken:(i < n - 1) ())
  done

let emit_search_accel b ~text_base ~start ~chars_scanned =
  if chars_scanned < 0 then
    invalid_arg "Cost_model.emit_search_accel: negative scan";
  let lines = scanned_lines ~text_base ~start ~chars_scanned in
  Trace.Builder.add b
    (Isa.accel ~dst:result_reg
       ~compute_latency:(accel_compute_latency ~chars_scanned)
       ~reads:(Array.of_list lines) ~writes:[||] ())
