(** NFA/DFA regular-expression engine.

    Compilation is Thompson construction to an epsilon-NFA followed by
    lazy subset construction to a DFA (memoised per state set). Matching
    is the classic scan loop: one transition-table lookup per input
    character — the loop the software cost model charges per character
    and the TCA replaces with a hardware DFA scanning a cache line at a
    time. *)

type t

val compile : Pattern.t -> t
val compile_string : string -> (t, string) result

val dfa_states : t -> int
(** DFA states materialised so far (grows lazily with inputs seen). *)

val matches : t -> string -> bool
(** Anchored match of the entire string. *)

type scan_result = {
  found : bool;
  start_pos : int;  (** match start, or the text length if none *)
  chars_scanned : int;
      (** total characters the scan loop inspected (the software cost) *)
}

val search : t -> string -> scan_result
(** Leftmost match semantics: for each start position, run the DFA until
    it accepts (shortest match at that start) or dies; advance on
    failure. [chars_scanned] counts every character inspection, which is
    what the μop cost model and the TCA's memory traffic are built
    from. *)
