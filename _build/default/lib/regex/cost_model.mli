(** μop cost model for software regex scanning and the regex TCA.

    The software scan is the DFA inner loop: per inspected character a
    byte load, transition-table index arithmetic, a transition load and
    an accept-check branch. The TCA is a hardware DFA (as in the
    server-side scripting accelerators the paper cites) that consumes
    {!chars_per_cycle} text bytes per cycle, reading the text's cache
    lines. *)

val setup_uops : int
(** Per-search setup: pattern/table base loads and state init (8). *)

val uops_per_char : int
(** Software μops per inspected character (6). *)

val software_uops : chars_scanned:int -> int

val chars_per_cycle : int
(** TCA scan throughput (16 bytes/cycle). *)

val accel_compute_latency : chars_scanned:int -> int
(** ceil(chars / {!chars_per_cycle}), at least 1. *)

val result_reg : int

val emit_search :
  Tca_uarch.Trace.Builder.t ->
  text_base:int ->
  start:int ->
  chars_scanned:int ->
  unit
(** Append the software scan touching the text bytes actually inspected
    (sequential from [text_base + start]). *)

val emit_search_accel :
  Tca_uarch.Trace.Builder.t ->
  text_base:int ->
  start:int ->
  chars_scanned:int ->
  unit
(** Append the TCA instruction reading the scanned text's lines. *)

val scanned_lines : text_base:int -> start:int -> chars_scanned:int -> int list
(** Distinct 64 B lines the scan touches. *)
