(* Thompson NFA: states are integers; transitions are either epsilon
   edges or a single character-predicate edge per state. *)

type nfa = {
  mutable n_states : int;
  mutable eps : int list array;  (** epsilon successors *)
  mutable edge : (Pattern.t * int) option array;  (** predicate edge *)
}

let add_state nfa =
  let id = nfa.n_states in
  let cap = Array.length nfa.eps in
  if id = cap then begin
    let grow a fill =
      let b = Array.make (2 * cap) fill in
      Array.blit a 0 b 0 cap;
      b
    in
    nfa.eps <- grow nfa.eps [];
    nfa.edge <- grow nfa.edge None
  end;
  nfa.n_states <- id + 1;
  id

let add_eps nfa from to_ = nfa.eps.(from) <- to_ :: nfa.eps.(from)

(* Build the fragment for [node] between fresh entry/exit states;
   returns (entry, exit). *)
let rec build nfa node =
  match node with
  | Pattern.Empty ->
      let s = add_state nfa in
      (s, s)
  | Pattern.Char _ | Pattern.Any | Pattern.Class _ ->
      let entry = add_state nfa in
      let exit_ = add_state nfa in
      nfa.edge.(entry) <- Some (node, exit_);
      (entry, exit_)
  | Pattern.Seq (a, b) ->
      let ea, xa = build nfa a in
      let eb, xb = build nfa b in
      add_eps nfa xa eb;
      (ea, xb)
  | Pattern.Alt (a, b) ->
      let entry = add_state nfa and exit_ = add_state nfa in
      let ea, xa = build nfa a in
      let eb, xb = build nfa b in
      add_eps nfa entry ea;
      add_eps nfa entry eb;
      add_eps nfa xa exit_;
      add_eps nfa xb exit_;
      (entry, exit_)
  | Pattern.Star a ->
      let entry = add_state nfa and exit_ = add_state nfa in
      let ea, xa = build nfa a in
      add_eps nfa entry ea;
      add_eps nfa entry exit_;
      add_eps nfa xa ea;
      add_eps nfa xa exit_;
      (entry, exit_)
  | Pattern.Plus a ->
      let ea, xa = build nfa a in
      let exit_ = add_state nfa in
      add_eps nfa xa ea;
      add_eps nfa xa exit_;
      (ea, exit_)
  | Pattern.Opt a ->
      let entry = add_state nfa and exit_ = add_state nfa in
      let ea, xa = build nfa a in
      add_eps nfa entry ea;
      add_eps nfa entry exit_;
      add_eps nfa xa exit_;
      (entry, exit_)

module IntSet = Set.Make (Int)

type t = {
  nfa : nfa;
  start : int;
  accept : int;
  (* Lazy DFA: canonical NFA-state-set -> dfa id; transition cache. *)
  dfa_ids : (IntSet.t, int) Hashtbl.t;
  dfa_sets : (int, IntSet.t) Hashtbl.t;
  trans : (int * char, int) Hashtbl.t;
  mutable next_dfa : int;
}

let eps_closure nfa set =
  let seen = ref set in
  let rec visit s =
    List.iter
      (fun succ ->
        if not (IntSet.mem succ !seen) then begin
          seen := IntSet.add succ !seen;
          visit succ
        end)
      nfa.eps.(s)
  in
  IntSet.iter visit set;
  !seen

let compile pattern =
  let nfa = { n_states = 0; eps = Array.make 16 []; edge = Array.make 16 None } in
  let start, accept = build nfa pattern in
  let t =
    {
      nfa;
      start;
      accept;
      dfa_ids = Hashtbl.create 64;
      dfa_sets = Hashtbl.create 64;
      trans = Hashtbl.create 256;
      next_dfa = 0;
    }
  in
  t

let compile_string source =
  match Pattern.parse source with
  | Ok p -> Ok (compile p)
  | Error e -> Error e

let dfa_of_set t set =
  match Hashtbl.find_opt t.dfa_ids set with
  | Some id -> id
  | None ->
      let id = t.next_dfa in
      t.next_dfa <- id + 1;
      Hashtbl.replace t.dfa_ids set id;
      Hashtbl.replace t.dfa_sets id set;
      id

let start_state t = dfa_of_set t (eps_closure t.nfa (IntSet.singleton t.start))

let dead_state = -1

let step t dfa_id c =
  match Hashtbl.find_opt t.trans (dfa_id, c) with
  | Some next -> next
  | None ->
      let set = Hashtbl.find t.dfa_sets dfa_id in
      let moved =
        IntSet.fold
          (fun s acc ->
            match t.nfa.edge.(s) with
            | Some (pred, dst) when Pattern.char_matches pred c ->
                IntSet.add dst acc
            | Some _ | None -> acc)
          set IntSet.empty
      in
      let next =
        if IntSet.is_empty moved then dead_state
        else dfa_of_set t (eps_closure t.nfa moved)
      in
      Hashtbl.replace t.trans (dfa_id, c) next;
      next

let accepting t dfa_id =
  dfa_id <> dead_state
  && IntSet.mem t.accept (Hashtbl.find t.dfa_sets dfa_id)

let dfa_states t = t.next_dfa

let matches t text =
  let state = ref (start_state t) in
  (try
     String.iter
       (fun c ->
         state := step t !state c;
         if !state = dead_state then raise Exit)
       text
   with Exit -> ());
  accepting t !state

type scan_result = {
  found : bool;
  start_pos : int;
  chars_scanned : int;
}

let search t text =
  let n = String.length text in
  let scanned = ref 0 in
  let rec try_from start =
    if start > n then { found = false; start_pos = n; chars_scanned = !scanned }
    else begin
      let state = ref (start_state t) in
      if accepting t !state then
        { found = true; start_pos = start; chars_scanned = !scanned }
      else begin
        let result = ref None in
        let i = ref start in
        while !result = None && !i < n do
          incr scanned;
          state := step t !state text.[!i];
          incr i;
          if !state = dead_state then result := Some false
          else if accepting t !state then result := Some true
        done;
        match !result with
        | Some true -> { found = true; start_pos = start; chars_scanned = !scanned }
        | Some false | None -> try_from (start + 1)
      end
    end
  in
  try_from 0
