type t =
  | Empty
  | Char of char
  | Any
  | Class of { negated : bool; ranges : (char * char) list }
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

(* Recursive-descent parser:
     alt    := seq ('|' seq)*
     seq    := repeat*
     repeat := atom ('*' | '+' | '?')*
     atom   := char | '.' | class | '(' alt ')' | '\' char *)

exception Parse_error of int * string

let parse source =
  let n = String.length source in
  let pos = ref 0 in
  let peek () = if !pos < n then Some source.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let parse_class () =
    (* Called just past the '['. *)
    let negated = peek () = Some '^' in
    if negated then advance ();
    let ranges = ref [] in
    let rec collect () =
      match peek () with
      | None -> fail "unterminated character class"
      | Some ']' when !ranges <> [] ->
          advance ();
          List.rev !ranges
      | Some c ->
          advance ();
          let c =
            if c = '\\' then (
              match peek () with
              | Some e ->
                  advance ();
                  e
              | None -> fail "dangling escape in class")
            else if c = ']' then fail "empty character class"
            else c
          in
          (match peek () with
          | Some '-' when !pos + 1 < n && source.[!pos + 1] <> ']' ->
              advance ();
              let hi =
                match peek () with
                | Some h ->
                    advance ();
                    h
                | None -> fail "unterminated range"
              in
              if hi < c then fail "inverted range";
              ranges := (c, hi) :: !ranges
          | _ -> ranges := (c, c) :: !ranges);
          collect ()
    in
    Class { negated; ranges = collect () }
  in
  let rec parse_alt () =
    let left = parse_seq () in
    match peek () with
    | Some '|' ->
        advance ();
        Alt (left, parse_alt ())
    | _ -> left
  and parse_seq () =
    let rec go acc =
      match peek () with
      | None | Some '|' | Some ')' -> acc
      | _ ->
          let r = parse_repeat () in
          go (if acc = Empty then r else Seq (acc, r))
    in
    go Empty
  and parse_repeat () =
    let atom = parse_atom () in
    let rec postfix node =
      match peek () with
      | Some '*' ->
          advance ();
          postfix (Star node)
      | Some '+' ->
          advance ();
          postfix (Plus node)
      | Some '?' ->
          advance ();
          postfix (Opt node)
      | _ -> node
    in
    postfix atom
  and parse_atom () =
    match peek () with
    | None -> fail "expected an atom"
    | Some '(' ->
        advance ();
        let inner = parse_alt () in
        (match peek () with
        | Some ')' ->
            advance ();
            inner
        | _ -> fail "unclosed group")
    | Some '.' ->
        advance ();
        Any
    | Some '[' ->
        advance ();
        parse_class ()
    | Some '\\' ->
        advance ();
        (match peek () with
        | Some c ->
            advance ();
            Char c
        | None -> fail "dangling escape")
    | Some (('*' | '+' | '?' | ')' | '|' | ']') as c) ->
        fail (Printf.sprintf "unexpected %c" c)
    | Some c ->
        advance ();
        Char c
  in
  try
    let ast = parse_alt () in
    if !pos <> n then Error (Printf.sprintf "position %d: trailing input" !pos)
    else Ok ast
  with Parse_error (p, msg) -> Error (Printf.sprintf "position %d: %s" p msg)

let parse_exn source =
  match parse source with
  | Ok t -> t
  | Error msg -> invalid_arg ("Pattern.parse_exn: " ^ msg)

let escape_char c =
  if String.contains "\\.[]()|*+?^" c then Printf.sprintf "\\%c" c
  else String.make 1 c

let rec to_string = function
  | Empty -> ""
  | Char c -> escape_char c
  | Any -> "."
  | Class { negated; ranges } ->
      let body =
        String.concat ""
          (List.map
             (fun (lo, hi) ->
               if lo = hi then escape_char lo
               else Printf.sprintf "%s-%s" (escape_char lo) (escape_char hi))
             ranges)
      in
      Printf.sprintf "[%s%s]" (if negated then "^" else "") body
  | Seq (a, b) -> to_string a ^ to_string b
  | Alt (a, b) -> Printf.sprintf "(%s|%s)" (to_string a) (to_string b)
  | Star a -> group a ^ "*"
  | Plus a -> group a ^ "+"
  | Opt a -> group a ^ "?"

and group node =
  match node with
  | Char _ | Any | Class _ -> to_string node
  | _ -> Printf.sprintf "(%s)" (to_string node)

let char_matches node c =
  match node with
  | Char k -> k = c
  | Any -> true
  | Class { negated; ranges } ->
      let inside = List.exists (fun (lo, hi) -> c >= lo && c <= hi) ranges in
      if negated then not inside else inside
  | Empty | Seq _ | Alt _ | Star _ | Plus _ | Opt _ ->
      invalid_arg "Pattern.char_matches: composite node"

let rec nullable = function
  | Empty -> true
  | Char _ | Any | Class _ -> false
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Star _ | Opt _ -> true
  | Plus a -> nullable a
