(** First-order energy model (paper Section VII: "Program slowdown
    requires the core to run longer, increasing the amount of static
    energy consumed by the core, eroding the energy gains created by the
    accelerator").

    Normalised units: core dynamic energy per instruction = 1. The
    accelerator executes an instruction's worth of work for
    [accel_energy_ratio] (< 1: that efficiency is why energy-motivated
    TCAs exist), and the package burns [static_power] units per cycle
    whether or not work retires. *)

type t = {
  static_power : float;  (** energy units per cycle, entire package *)
  accel_energy_ratio : float;
      (** accelerator dynamic energy per accelerated instruction,
          relative to the core's *)
}

val make : ?static_power:float -> ?accel_energy_ratio:float -> unit -> t
(** Defaults: static 0.5/cycle, accelerator at 0.2x core energy.
    Validates non-negative static power and ratio in [(0, 1\]]. *)

type verdict = {
  mode : Mode.t;
  speedup : float;
  energy : float;  (** per baseline-interval, normalised *)
  relative_energy : float;  (** vs. the software baseline; < 1 saves *)
  edp : float;  (** energy-delay product, normalised to baseline = 1 *)
}

val baseline_energy : t -> Params.core -> Params.scenario -> float
(** Energy of one un-accelerated interval: dynamic (1 per instruction) +
    static (per baseline cycle). *)

val evaluate : t -> Params.core -> Params.scenario -> verdict list
(** All four modes. A mode that slows the program can have
    [relative_energy > 1] even though the accelerator itself is cheaper
    per instruction — the paper's warning, made quantitative. *)

val energy_break_even_speedup : t -> Params.core -> Params.scenario -> float
(** The program speedup below which the TCA stops saving energy, given
    the scenario's dynamic-energy savings. Modes whose predicted speedup
    falls below this line erode the accelerator's gains. *)
