(** Input parameters of the analytical model (paper Table I).

    Core parameters describe the processor; scenario parameters describe
    the workload/accelerator pair under study. *)

type core = {
  ipc : float;  (** average program IPC before acceleration *)
  rob_size : int;  (** [s_ROB] *)
  issue_width : int;  (** [w_issue], front-end dispatch width *)
  commit_stall : float;  (** [t_commit], back-end commit latency in cycles *)
  drain_beta : float;
      (** exponent of the window/critical-path power law (default 2.0,
          the square-root law reported for SPEC2006) *)
}

type accel_time =
  | Factor of float
      (** acceleration factor [A]: the accelerator runs the acceleratable
          instructions at [A * IPC] (paper eq. (2)) *)
  | Latency of float
      (** explicit per-invocation accelerator execution time in cycles,
          "an explicitly provided latency inserted by the architect" *)

type scenario = {
  a : float;  (** fraction of acceleratable code, in [0, 1] *)
  v : float;  (** invocation frequency: invocations / total instructions *)
  accel : accel_time;
  drain : Tca_interval.Drain.spec;  (** [t_drain] override or Auto *)
}

val core : ?commit_stall:float -> ?drain_beta:float ->
  ipc:float -> rob_size:int -> issue_width:int -> unit -> core
(** Smart constructor; validates and raises [Invalid_argument] on
    non-positive parameters. [commit_stall] defaults to 5 cycles,
    [drain_beta] to 2. *)

val scenario : ?drain:Tca_interval.Drain.spec ->
  a:float -> v:float -> accel:accel_time -> unit -> scenario
(** Validates [0 <= a <= 1], [v >= 0], [a >= v] when [v > 0] (an
    invocation covers at least one instruction), positive accel factor /
    non-negative latency. *)

val granularity : scenario -> float
(** [a / v]: average acceleratable instructions per invocation. Raises
    [Invalid_argument] when [v = 0]. *)

val scenario_of_granularity :
  ?drain:Tca_interval.Drain.spec ->
  a:float -> g:float -> accel:accel_time -> unit -> scenario
(** Convenience used by the granularity sweeps: [v = a / g]. *)

val pp_core : Format.formatter -> core -> unit
val pp_scenario : Format.formatter -> scenario -> unit

val glossary : (string * string) list
(** Paper Table I: symbol, meaning. *)
