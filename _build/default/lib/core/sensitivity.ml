type parameter =
  | Ipc
  | Rob_size
  | Issue_width
  | Commit_stall
  | Coverage
  | Frequency
  | Acceleration

let all_parameters =
  [ Ipc; Rob_size; Issue_width; Commit_stall; Coverage; Frequency; Acceleration ]

let parameter_name = function
  | Ipc -> "IPC"
  | Rob_size -> "s_ROB"
  | Issue_width -> "w_issue"
  | Commit_stall -> "t_commit"
  | Coverage -> "a"
  | Frequency -> "v"
  | Acceleration -> "A / latency"

type swing = {
  parameter : parameter;
  mode : Mode.t;
  low : float;
  high : float;
  magnitude : float;
}

let clamp lo hi x = Float.max lo (Float.min hi x)

let perturb (core : Params.core) (s : Params.scenario) param factor =
  match param with
  | Ipc ->
      ( Params.core ~ipc:(core.Params.ipc *. factor)
          ~rob_size:core.Params.rob_size ~issue_width:core.Params.issue_width
          ~commit_stall:core.Params.commit_stall
          ~drain_beta:core.Params.drain_beta (),
        s )
  | Rob_size ->
      ( Params.core ~ipc:core.Params.ipc
          ~rob_size:
            (max 1 (int_of_float (float_of_int core.Params.rob_size *. factor)))
          ~issue_width:core.Params.issue_width
          ~commit_stall:core.Params.commit_stall
          ~drain_beta:core.Params.drain_beta (),
        s )
  | Issue_width ->
      ( Params.core ~ipc:core.Params.ipc ~rob_size:core.Params.rob_size
          ~issue_width:
            (max 1
               (int_of_float (float_of_int core.Params.issue_width *. factor)))
          ~commit_stall:core.Params.commit_stall
          ~drain_beta:core.Params.drain_beta (),
        s )
  | Commit_stall ->
      ( Params.core ~ipc:core.Params.ipc ~rob_size:core.Params.rob_size
          ~issue_width:core.Params.issue_width
          ~commit_stall:(core.Params.commit_stall *. factor)
          ~drain_beta:core.Params.drain_beta (),
        s )
  | Coverage ->
      let a = clamp s.Params.v 1.0 (s.Params.a *. factor) in
      (core, Params.scenario ~drain:s.Params.drain ~a ~v:s.Params.v ~accel:s.Params.accel ())
  | Frequency ->
      let v = clamp 0.0 s.Params.a (s.Params.v *. factor) in
      (core, Params.scenario ~drain:s.Params.drain ~a:s.Params.a ~v ~accel:s.Params.accel ())
  | Acceleration ->
      let accel =
        match s.Params.accel with
        | Params.Factor f -> Params.Factor (f *. factor)
        | Params.Latency l ->
            (* Scaling "acceleration" up means a shorter latency. *)
            Params.Latency (l /. factor)
      in
      (core, Params.scenario ~drain:s.Params.drain ~a:s.Params.a ~v:s.Params.v ~accel ())

let swings ?(delta = 0.2) core s mode =
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Sensitivity.swings: delta out of (0, 1)";
  all_parameters
  |> List.map (fun param ->
         let core_lo, s_lo = perturb core s param (1.0 -. delta) in
         let core_hi, s_hi = perturb core s param (1.0 +. delta) in
         let low = Equations.speedup core_lo s_lo mode in
         let high = Equations.speedup core_hi s_hi mode in
         { parameter = param; mode; low; high; magnitude = Float.abs (high -. low) })
  |> List.sort (fun a b -> compare b.magnitude a.magnitude)

let decision_stable ?(delta = 0.2) core s =
  let best c sc = fst (Equations.best_mode c sc) in
  let nominal = best core s in
  List.for_all
    (fun param ->
      List.for_all
        (fun factor ->
          let c, sc = perturb core s param factor in
          Mode.equal (best c sc) nominal)
        [ 1.0 -. delta; 1.0 +. delta ])
    all_parameters

let headers = [ "parameter"; "mode"; "-delta"; "+delta"; "swing" ]

let rows swings_list =
  List.map
    (fun sw ->
      [
        parameter_name sw.parameter;
        Mode.to_string sw.mode;
        Tca_util.Table.float_cell sw.low;
        Tca_util.Table.float_cell sw.high;
        Tca_util.Table.float_cell sw.magnitude;
      ])
    swings_list
