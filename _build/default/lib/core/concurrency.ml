let coverage_series core ~g ~accel ~coverages mode =
  Array.map
    (fun a ->
      if a <= 0.0 then (a, 1.0)
      else
        let s = Params.scenario_of_granularity ~a ~g ~accel () in
        (a, Equations.speedup core s mode))
    coverages

let ideal_peak_coverage ~accel_factor =
  if accel_factor <= 0.0 then invalid_arg "Concurrency.ideal_peak_coverage";
  accel_factor /. (accel_factor +. 1.0)

let ideal_peak_speedup ~accel_factor =
  if accel_factor <= 0.0 then invalid_arg "Concurrency.ideal_peak_speedup";
  accel_factor +. 1.0

let peak series =
  if Array.length series = 0 then invalid_arg "Concurrency.peak: empty series";
  Array.fold_left
    (fun ((_, by) as best) ((_, y) as cand) -> if y > by then cand else best)
    series.(0) series

let local_maxima series =
  let n = Array.length series in
  let out = ref [] in
  for i = n - 2 downto 1 do
    let _, y_prev = series.(i - 1)
    and ((_, y) as pt) = series.(i)
    and _, y_next = series.(i + 1) in
    if y > y_prev && y > y_next then out := pt :: !out
  done;
  !out
