(** Partial-speculation extension (paper Section VIII, future work).

    Instead of always (L) or never (NL) executing the TCA speculatively,
    a design can speculate only when the leading branches are
    high-confidence. With confidence coverage [p] (the fraction of
    invocations that proceed speculatively), the expected interval time is
    the blend of the L and NL variants of the chosen trailing policy. *)

val mode_time :
  Params.core -> Params.scenario -> trailing:bool -> p_speculate:float -> float
(** [mode_time core s ~trailing ~p_speculate] blends
    [p * t_L_x + (1 - p) * t_NL_x] where [x] is [T] when [trailing],
    else [NT]. Raises [Invalid_argument] unless [0 <= p_speculate <= 1]. *)

val speedup :
  Params.core -> Params.scenario -> trailing:bool -> p_speculate:float -> float

val required_confidence :
  Params.core -> Params.scenario -> trailing:bool -> target_speedup:float ->
  float option
(** Smallest [p] (searched on a fine grid) achieving the target speedup,
    or [None] if even full speculation ([p = 1]) falls short. *)
