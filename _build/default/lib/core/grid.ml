type t = {
  freqs : float array;
  coverages : float array;
  cells : float array array;
}

let compute core ~accel ~freqs ~coverages mode =
  let cells =
    Array.map
      (fun a ->
        Array.map
          (fun v ->
            if v <= 0.0 || a <= 0.0 || a < v then Float.nan
            else
              let s = Params.scenario ~a ~v ~accel () in
              Equations.speedup core s mode)
          freqs)
      coverages
  in
  { freqs; coverages; cells }

let slowdown_fraction t =
  let feasible = ref 0 and slow = ref 0 in
  Array.iter
    (Array.iter (fun x ->
         if not (Float.is_nan x) then begin
           incr feasible;
           if x < 1.0 then incr slow
         end))
    t.cells;
  if !feasible = 0 then 0.0 else float_of_int !slow /. float_of_int !feasible

let accelerator_curve t ~granularity =
  if granularity < 1.0 then invalid_arg "Grid.accelerator_curve: g below 1";
  let nearest_col v =
    let best = ref 0 and best_d = ref infinity in
    Array.iteri
      (fun i f ->
        let d = Float.abs (log f -. log v) in
        if d < !best_d then begin
          best := i;
          best_d := d
        end)
      t.freqs;
    !best
  in
  let cells = ref [] in
  Array.iteri
    (fun row a ->
      let v = a /. granularity in
      if v >= t.freqs.(0) && v <= t.freqs.(Array.length t.freqs - 1) then
        cells := (row, nearest_col v) :: !cells)
    t.coverages;
  List.rev !cells
