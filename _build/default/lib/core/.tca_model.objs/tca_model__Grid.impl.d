lib/core/grid.ml: Array Equations Float List Params
