lib/core/params.mli: Format Tca_interval
