lib/core/mode.ml: Format Int String
