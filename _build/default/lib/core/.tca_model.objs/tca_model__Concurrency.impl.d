lib/core/concurrency.ml: Array Equations Params
