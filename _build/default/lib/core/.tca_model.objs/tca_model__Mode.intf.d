lib/core/mode.mli: Format
