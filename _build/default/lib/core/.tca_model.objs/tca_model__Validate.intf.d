lib/core/validate.mli: Mode
