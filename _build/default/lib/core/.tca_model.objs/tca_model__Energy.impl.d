lib/core/energy.ml: Equations List Mode Params
