lib/core/hw_cost.ml: Equations List Mode
