lib/core/sensitivity.ml: Equations Float List Mode Params Tca_util
