lib/core/hw_cost.mli: Mode Params
