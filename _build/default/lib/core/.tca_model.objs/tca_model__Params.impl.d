lib/core/params.ml: Format Printf Tca_interval
