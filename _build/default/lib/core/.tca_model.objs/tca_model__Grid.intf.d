lib/core/grid.mli: Mode Params
