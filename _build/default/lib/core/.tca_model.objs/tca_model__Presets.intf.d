lib/core/presets.mli: Params
