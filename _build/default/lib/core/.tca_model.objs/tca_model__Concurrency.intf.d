lib/core/concurrency.mli: Mode Params
