lib/core/equations.ml: Float List Mode Params Tca_interval
