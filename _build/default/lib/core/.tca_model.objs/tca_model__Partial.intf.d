lib/core/partial.mli: Params
