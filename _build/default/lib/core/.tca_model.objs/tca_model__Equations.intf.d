lib/core/equations.mli: Mode Params
