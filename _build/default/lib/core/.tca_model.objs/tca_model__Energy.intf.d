lib/core/energy.mli: Mode Params
