lib/core/granularity.mli: Mode Params
