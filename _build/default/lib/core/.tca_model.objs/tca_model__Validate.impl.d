lib/core/validate.ml: Array Float Hashtbl List Mode Option Tca_util
