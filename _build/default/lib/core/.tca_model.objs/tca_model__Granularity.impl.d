lib/core/granularity.ml: Array Equations List Mode Params Tca_util
