lib/core/partial.ml: Equations Mode Params
