lib/core/sensitivity.mli: Mode Params
