lib/core/presets.ml: Params String
