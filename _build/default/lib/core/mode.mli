(** The four degrees of TCA/core concurrency (paper Section III).

    [L]/[NL]: the accelerator may / may not execute concurrently with
    leading instructions (i.e. speculatively, before older instructions
    commit). [T]/[NT]: trailing instructions may / may not be dispatched
    while the accelerator is in flight. *)

type t =
  | NL_NT  (** ROB drain before TCA + dispatch barrier after it *)
  | L_NT   (** speculative TCA, dispatch barrier after it *)
  | NL_T   (** ROB drain before TCA, trailing instructions flow *)
  | L_T    (** full out-of-order integration *)

val all : t list
(** In the paper's presentation order: [NL_NT; L_NT; NL_T; L_T]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val allows_leading : t -> bool
(** [true] iff the TCA executes speculatively, overlapped with leading
    instructions. *)

val allows_trailing : t -> bool
(** [true] iff trailing instructions dispatch while the TCA is in
    flight. *)

val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

val hardware_requirements : t -> string
(** One-line summary of the hardware the mode needs (rollback and/or
    dependency-resolution logic), from Sections III-A..III-D. *)
