type times = {
  t_baseline : float;
  t_accl : float;
  t_non_accl : float;
  t_drain : float;
  t_rob_fill : float;
  t_commit : float;
}

let interval_times (core : Params.core) (s : Params.scenario) =
  if s.v <= 0.0 then invalid_arg "Equations.interval_times: v = 0";
  let t_baseline = 1.0 /. (s.v *. core.ipc) in
  let t_accl =
    match s.accel with
    | Params.Factor a_factor -> s.a /. (s.v *. a_factor *. core.ipc)
    | Params.Latency l -> l
  in
  let t_non_accl = (1.0 -. s.a) /. (s.v *. core.ipc) in
  let fit =
    Tca_interval.Power_law.calibrate ~ipc:core.ipc ~window:core.rob_size
      ~beta:core.drain_beta
  in
  let t_drain =
    Tca_interval.Drain.time s.drain ~fit ~window:core.rob_size
      ~interval_instrs:((1.0 -. s.a) /. s.v)
      ~non_accl_time:t_non_accl
  in
  let t_rob_fill = float_of_int core.rob_size /. float_of_int core.issue_width in
  { t_baseline; t_accl; t_non_accl; t_drain; t_rob_fill; t_commit = core.commit_stall }

let time_of_times (t : times) (mode : Mode.t) =
  match mode with
  | Mode.NL_NT ->
      (* eq. (4): drain, execute, and commit twice (once for the drained
         window, once for the TCA itself). *)
      t.t_non_accl +. t.t_accl +. t.t_drain +. (2.0 *. t.t_commit)
  | Mode.L_NT ->
      (* eq. (5): the TCA overlaps leading work; the front end stalls for
         the TCA's execution and commit only. *)
      t.t_non_accl +. t.t_accl +. t.t_commit
  | Mode.NL_T ->
      (* eqs. (6)-(7): trailing instructions flow until the ROB fills;
         the TCA start is delayed by the drain. *)
      let rob_full =
        Float.max 0.0 (t.t_drain +. t.t_accl +. t.t_commit -. t.t_rob_fill)
      in
      Float.max (t.t_non_accl +. rob_full) (t.t_accl +. t.t_drain +. t.t_commit)
  | Mode.L_T ->
      (* eqs. (8)-(9): full overlap; only a very long TCA that outlives
         the ROB fill stalls the front end. *)
      let rob_full = Float.max 0.0 (t.t_accl -. t.t_rob_fill) in
      Float.max (t.t_non_accl +. rob_full) t.t_accl

let mode_time core s mode = time_of_times (interval_times core s) mode

let speedup core s mode =
  if s.Params.v <= 0.0 then 1.0
  else
    let t = interval_times core s in
    t.t_baseline /. time_of_times t mode

let speedups core s = List.map (fun m -> (m, speedup core s m)) Mode.all

let best_mode core s =
  match speedups core s with
  | [] -> assert false
  | first :: rest ->
      List.fold_left
        (fun ((_, best_s) as best) ((_, cand_s) as cand) ->
          if cand_s > best_s then cand else best)
        first rest

let ideal_speedup core s =
  if s.Params.v <= 0.0 then 1.0
  else
    let t = interval_times core s in
    t.t_baseline /. (t.t_non_accl +. t.t_accl)
