(** Core parameter presets used throughout the paper.

    The high-performance and low-performance cores are given explicitly in
    Section VI ("1.8 IPC, 256 entry ROB, 4-issue" and "0.5 IPC, 64 entry
    ROB, 2-issue"). The ARM A72 parameters behind Fig. 2 are not listed in
    the paper; we transcribe the public A72 microarchitecture (3-wide
    dispatch, 128-entry ROB) with a representative 1.3 IPC. Commit-stall
    values are our documented choices: deeper high-performance pipelines
    get a longer back-end latency. *)

val hp_core : Params.core
(** Mid/high-performance OoO core: IPC 1.8, 256-entry ROB, 4-issue,
    t_commit 8. *)

val lp_core : Params.core
(** Low-performance OoO core: IPC 0.5, 64-entry ROB, 2-issue,
    t_commit 4. *)

val arm_a72 : Params.core
(** ARM Cortex-A72-like core for the Fig. 2 granularity study: IPC 1.3,
    128-entry ROB, 3-issue, t_commit 6. *)

val by_name : string -> Params.core option
(** ["hp"], ["lp"] or ["a72"] (case-insensitive). *)

val names : string list
