type point = {
  id : string;
  mode : Mode.t;
  measured : float;
  estimated : float;
}

type summary = {
  n : int;
  mean_abs_pct : float;
  median_abs_pct : float;
  max_abs_pct : float;
}

let error p =
  Tca_util.Stats.relative_error ~measured:p.measured ~estimated:p.estimated

let summarize points =
  if points = [] then invalid_arg "Validate.summarize: empty";
  let errs =
    Array.of_list (List.map (fun p -> 100.0 *. Float.abs (error p)) points)
  in
  {
    n = Array.length errs;
    mean_abs_pct = Tca_util.Stats.mean errs;
    median_abs_pct = Tca_util.Stats.median errs;
    max_abs_pct = Tca_util.Stats.max errs;
  }

let headers = [ "workload"; "mode"; "measured"; "estimated"; "error" ]

let rows points =
  List.map
    (fun p ->
      [
        p.id;
        Mode.to_string p.mode;
        Tca_util.Table.float_cell p.measured;
        Tca_util.Table.float_cell p.estimated;
        Tca_util.Table.pct_cell (error p);
      ])
    points

let trends_preserved ?(tolerance = 0.02) points =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups p.id) in
      Hashtbl.replace groups p.id (p :: existing))
    points;
  let pair_ok p q =
    let gap = Float.abs (p.measured -. q.measured) /. q.measured in
    gap <= tolerance
    || compare p.measured q.measured = compare p.estimated q.estimated
  in
  Hashtbl.fold
    (fun _ ps acc ->
      acc
      && List.for_all
           (fun p -> List.for_all (fun q -> pair_ok p q) ps)
           ps)
    groups true
