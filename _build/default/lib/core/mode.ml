type t = NL_NT | L_NT | NL_T | L_T

let all = [ NL_NT; L_NT; NL_T; L_T ]

let rank = function NL_NT -> 0 | L_NT -> 1 | NL_T -> 2 | L_T -> 3
let equal a b = rank a = rank b
let compare a b = Int.compare (rank a) (rank b)

let allows_leading = function L_NT | L_T -> true | NL_NT | NL_T -> false
let allows_trailing = function NL_T | L_T -> true | NL_NT | L_NT -> false

let to_string = function
  | NL_NT -> "NL_NT"
  | L_NT -> "L_NT"
  | NL_T -> "NL_T"
  | L_T -> "L_T"

let of_string s =
  match String.uppercase_ascii s with
  | "NL_NT" -> Some NL_NT
  | "L_NT" -> Some L_NT
  | "NL_T" -> Some NL_T
  | "L_T" -> Some L_T
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)

let hardware_requirements = function
  | NL_NT ->
      "none beyond the TCA itself: never squashed (no checkpointing), never \
       concurrent (no dependency checks)"
  | L_NT ->
      "rollback of any TCA-modified state on misspeculation; no trailing \
       dependency hardware"
  | NL_T ->
      "register/memory dependency resolution (LSQ + rename integration) for \
       trailing instructions; no speculation rollback"
  | L_T ->
      "both misspeculation rollback and full register/memory dependency \
       resolution against leading and trailing instructions"
