(** Speedup as a function of accelerator granularity (paper Fig. 2).

    Granularity [g = a / v] is the average number of acceleratable
    instructions covered by one invocation. Coarse accelerators (H.264,
    TPU) live at [g ~ 10^7..10^9] where the four modes coincide;
    fine-grained TCAs (heap manager, string functions) live at
    [g ~ 10..10^3] where mode choice decides between speedup and
    slowdown. *)

type marker = {
  name : string;
  granularity : float;  (** instructions per invocation, estimated *)
}

val reference_markers : marker list
(** The eight points of reference from Fig. 2 (H.264, TPU, GreenDroid,
    speech/STTNI, regex, string functions, hash map, heap management).
    Granularities are estimates, as in the paper ("markers ... are
    estimated for points of reference"). *)

val series :
  Params.core ->
  a:float ->
  accel:Params.accel_time ->
  gs:float array ->
  (Mode.t * (float * float) array) list
(** For each mode, the [(g, speedup)] series over the granularity sweep
    [gs] with fixed acceleratable fraction [a]. *)

val crossover_granularity :
  Params.core -> a:float -> accel:Params.accel_time -> Mode.t -> float option
(** Smallest granularity in a dense internal sweep at which the mode stops
    causing slowdown (speedup >= 1). [None] if it always speeds up, or
    never does, within [1, 1e9]. *)
