(** Hardware-cost model for the four coupling modes (paper Section VIII:
    "a pareto-optimal curve of design implementations could show the
    trade-off between hardware costs, performance").

    Costs are normalised, dimensionless proxies (area/power units
    relative to the bare accelerator datapath = 1.0): speculation support
    needs checkpoint/rollback state, trailing support needs
    register/memory dependency-resolution logic (LSQ and rename
    integration). The defaults are deliberately round engineering
    estimates — the point of the Pareto analysis is ordering and
    dominance, which is robust to the exact constants; all are
    overridable. *)

type t = {
  datapath : float;  (** the accelerator itself; common to all modes *)
  rollback : float;  (** checkpoint + squash logic for L modes *)
  dependency : float;  (** LSQ/rename integration for T modes *)
}

val default : t
(** datapath 1.0, rollback 0.35, dependency 0.5. *)

val make : ?datapath:float -> ?rollback:float -> ?dependency:float -> unit -> t
(** Raises [Invalid_argument] on negative components. *)

val mode_cost : t -> Mode.t -> float
(** Total cost of implementing the TCA in the given mode. *)

type design = {
  mode : Mode.t;
  cost : float;
  speedup : float;
}

val designs : ?cost:t -> Params.core -> Params.scenario -> design list
(** The four design points for a scenario, in [Mode.all] order. *)

val pareto_front : design list -> design list
(** Non-dominated designs (no other design is at least as fast and
    strictly cheaper, or at least as cheap and strictly faster), sorted
    by increasing cost. *)

val dominated : design list -> design list
(** The complement of {!pareto_front}: designs an architect should never
    build for this scenario. *)

val cheapest_at_least : design list -> speedup:float -> design option
(** The cheapest design meeting a speedup target, if any. *)
