(** Model-vs-measurement bookkeeping for the validation experiments
    (paper Figs. 4-6). *)

type point = {
  id : string;  (** workload / configuration label *)
  mode : Mode.t;
  measured : float;  (** simulator speedup *)
  estimated : float;  (** analytical-model speedup *)
}

type summary = {
  n : int;
  mean_abs_pct : float;  (** mean |error| in percent *)
  median_abs_pct : float;
  max_abs_pct : float;
}

val error : point -> float
(** Signed relative error [(estimated - measured) / measured]. *)

val summarize : point list -> summary
(** Raises [Invalid_argument] on an empty list. *)

val rows : point list -> string list list
(** Table rows: id, mode, measured, estimated, error% — ready for
    {!Tca_util.Table.print}. *)

val headers : string list

val trends_preserved : ?tolerance:float -> point list -> bool
(** [true] iff, within every [id] group and for every pair of modes whose
    measured speedups differ by more than [tolerance] (relative, default
    2%), the estimates order that pair the same way — the paper's
    "correctly predicts overarching trends" criterion. Pairs inside the
    tolerance band are measurement ties and don't constrain the model. *)
