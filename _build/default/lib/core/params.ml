type core = {
  ipc : float;
  rob_size : int;
  issue_width : int;
  commit_stall : float;
  drain_beta : float;
}

type accel_time = Factor of float | Latency of float

type scenario = {
  a : float;
  v : float;
  accel : accel_time;
  drain : Tca_interval.Drain.spec;
}

let core ?(commit_stall = 5.0) ?(drain_beta = 2.0) ~ipc ~rob_size ~issue_width
    () =
  if ipc <= 0.0 then invalid_arg "Params.core: ipc must be positive";
  if rob_size <= 0 then invalid_arg "Params.core: rob_size must be positive";
  if issue_width <= 0 then invalid_arg "Params.core: issue_width must be positive";
  if commit_stall < 0.0 then invalid_arg "Params.core: commit_stall must be non-negative";
  if drain_beta <= 0.0 then invalid_arg "Params.core: drain_beta must be positive";
  { ipc; rob_size; issue_width; commit_stall; drain_beta }

let validate_accel = function
  | Factor f when f <= 0.0 ->
      invalid_arg "Params.scenario: acceleration factor must be positive"
  | Latency l when l < 0.0 ->
      invalid_arg "Params.scenario: accelerator latency must be non-negative"
  | Factor _ | Latency _ -> ()

let scenario ?(drain = Tca_interval.Drain.Auto) ~a ~v ~accel () =
  if a < 0.0 || a > 1.0 then invalid_arg "Params.scenario: a must be in [0, 1]";
  if v < 0.0 then invalid_arg "Params.scenario: v must be non-negative";
  if v > 0.0 && a < v then
    invalid_arg "Params.scenario: granularity a/v below one instruction";
  validate_accel accel;
  { a; v; accel; drain }

let granularity s =
  if s.v = 0.0 then invalid_arg "Params.granularity: v = 0";
  s.a /. s.v

let scenario_of_granularity ?drain ~a ~g ~accel () =
  if g < 1.0 then invalid_arg "Params.scenario_of_granularity: g below 1";
  scenario ?drain ~a ~v:(a /. g) ~accel ()

let pp_core fmt c =
  Format.fprintf fmt
    "{ ipc = %.3f; rob = %d; issue = %d; t_commit = %.1f; beta = %.1f }" c.ipc
    c.rob_size c.issue_width c.commit_stall c.drain_beta

let pp_accel fmt = function
  | Factor f -> Format.fprintf fmt "A = %.2fx" f
  | Latency l -> Format.fprintf fmt "latency = %.1f cycles" l

let pp_scenario fmt s =
  Format.fprintf fmt "{ a = %.4f; v = %.6f; %a; drain = %s }" s.a s.v pp_accel
    s.accel
    (match s.drain with
    | Tca_interval.Drain.Auto -> "auto"
    | Tca_interval.Drain.Refill_aware -> "refill-aware"
    | Tca_interval.Drain.Fixed t -> Printf.sprintf "%.1f" t)

let glossary =
  [
    ("a", "% acceleratable code");
    ("v", "invocation frequency (invocations / instruction)");
    ("IPC", "instructions / cycle of the baseline program");
    ("A", "acceleration factor");
    ("s_ROB", "size of the reorder buffer");
    ("w_issue", "issue (dispatch) width");
    ("t_commit", "commit stall (back-end pipeline latency)");
  ]
