(** The LogCA performance model for (loosely-coupled) hardware
    accelerators, after Altaf and Wood, "LogCA: a performance model for
    hardware accelerators" (IEEE CAL 2015).

    LogCA is the prior model this paper positions itself against: it
    targets coarse-grained offload, assumes the CPU idles during
    accelerator execution, and ignores pipeline drain/fill effects — the
    very effects that dominate for tightly-coupled accelerators. We
    implement it as the comparison baseline.

    Parameters, for an offload of granularity [g] (bytes or elements):
    - [l] (Latency): cycles to move data to/from the accelerator,
      per unit of granularity (scaled by [g^tau]);
    - [o] (overhead): fixed cycles to set up an invocation;
    - [c] (Computational index): host cycles of work per unit, scaled by
      [g^beta] ([beta = 1] for linear algorithms);
    - [acceleration]: peak speedup [A] of the accelerator on the kernel. *)

type t = {
  latency : float;  (** [l]: interface latency coefficient *)
  latency_exponent : float;  (** [tau]: usually 1 (linear in data moved) *)
  overhead : float;  (** [o]: fixed invocation overhead, cycles *)
  compute_index : float;  (** [c]: host cycles per unit of granularity *)
  compute_exponent : float;  (** [beta]: algorithmic complexity exponent *)
  acceleration : float;  (** [A > 1] *)
}

val make :
  ?latency_exponent:float ->
  ?compute_exponent:float ->
  latency:float ->
  overhead:float ->
  compute_index:float ->
  acceleration:float ->
  unit ->
  t
(** Raises [Invalid_argument] on non-positive [compute_index] or
    [acceleration <= 1], or negative latency/overhead. Exponents default
    to 1. *)

val time_unaccelerated : t -> float -> float
(** [c * g^beta]. *)

val time_accelerated : t -> float -> float
(** [o + l * g^tau + c * g^beta / A]. *)

val speedup : t -> float -> float
(** [time_unaccelerated / time_accelerated] at granularity [g > 0]. *)

val break_even : t -> float option
(** [g1]: smallest granularity with speedup >= 1, found by bisection on
    [1, 1e12]. [None] if the accelerator never breaks even in range. *)

val g_half : t -> float option
(** [g_{A/2}]: granularity reaching half the peak speedup, by bisection.
    [None] if unreachable in [1, 1e12]. *)

val asymptotic_speedup : t -> float
(** Limit of [speedup] as [g -> infinity]: [A] when [beta > tau]; the
    closed-form ratio when [beta = tau]; [0] when the interface scales
    worse than the computation ([beta < tau]). *)
