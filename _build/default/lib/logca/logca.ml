type t = {
  latency : float;
  latency_exponent : float;
  overhead : float;
  compute_index : float;
  compute_exponent : float;
  acceleration : float;
}

let make ?(latency_exponent = 1.0) ?(compute_exponent = 1.0) ~latency ~overhead
    ~compute_index ~acceleration () =
  if latency < 0.0 then invalid_arg "Logca.make: negative latency";
  if overhead < 0.0 then invalid_arg "Logca.make: negative overhead";
  if compute_index <= 0.0 then invalid_arg "Logca.make: compute_index must be positive";
  if acceleration <= 1.0 then invalid_arg "Logca.make: acceleration must exceed 1";
  if latency_exponent < 0.0 || compute_exponent <= 0.0 then
    invalid_arg "Logca.make: bad exponent";
  {
    latency;
    latency_exponent;
    overhead;
    compute_index;
    compute_exponent;
    acceleration;
  }

let check_granularity g =
  if g <= 0.0 then invalid_arg "Logca: granularity must be positive"

let time_unaccelerated t g =
  check_granularity g;
  t.compute_index *. (g ** t.compute_exponent)

let time_accelerated t g =
  check_granularity g;
  t.overhead
  +. (t.latency *. (g ** t.latency_exponent))
  +. (t.compute_index *. (g ** t.compute_exponent) /. t.acceleration)

let speedup t g = time_unaccelerated t g /. time_accelerated t g

(* Find the smallest g in [1, 1e12] with f g >= target, assuming f is
   monotonically increasing over the searched range. *)
let bisect_threshold f target =
  let lo = 1.0 and hi = 1.0e12 in
  if f hi < target then None
  else if f lo >= target then Some lo
  else
    let rec loop lo hi iters =
      if iters = 0 || (hi -. lo) /. hi < 1.0e-9 then Some hi
      else
        let mid = sqrt (lo *. hi) in
        if f mid >= target then loop lo mid (iters - 1)
        else loop mid hi (iters - 1)
    in
    loop lo hi 200

let break_even t = bisect_threshold (speedup t) 1.0

let asymptotic_speedup t =
  if t.compute_exponent > t.latency_exponent then t.acceleration
  else if t.compute_exponent < t.latency_exponent then 0.0
  else
    (* c g^b / (l g^b + c g^b / A) as g -> inf *)
    t.compute_index /. (t.latency +. (t.compute_index /. t.acceleration))

let g_half t =
  let target = asymptotic_speedup t /. 2.0 in
  if target <= 0.0 then None else bisect_threshold (speedup t) target
