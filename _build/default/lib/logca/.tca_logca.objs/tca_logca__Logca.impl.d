lib/logca/logca.ml:
