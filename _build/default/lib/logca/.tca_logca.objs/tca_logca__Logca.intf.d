lib/logca/logca.mli:
