(** TCMalloc-style size classes. The paper's heap microbenchmark draws
    from four classes: 0-32 B, 33-64 B, 65-96 B and 97-128 B. *)

val num_classes : int
(** 4 *)

val max_small_size : int
(** 128 bytes: the largest size served from a class free list. *)

val of_size : int -> int option
(** [of_size bytes] is the class index in [0, num_classes) for an
    allocation of [bytes], or [None] when [bytes > max_small_size].
    Raises [Invalid_argument] for [bytes <= 0]. *)

val class_bytes : int -> int
(** Rounded allocation size of a class: 32, 64, 96 or 128. Raises
    [Invalid_argument] for an out-of-range index. *)

val class_range : int -> int * int
(** Inclusive [min, max] request sizes mapped to a class. *)
