(** A working TCMalloc-style small-object allocator over a byte arena.

    Serves the four size classes from per-class LIFO free lists, carving
    fresh blocks from a bump pointer when a list is empty. This is the
    functional substrate behind the heap-accelerator workload: the
    generated μop sequences and TCA invocations correspond to real
    allocator operations with real addresses, so the common case the
    paper assumes (the accelerator always has a pointer to return and a
    slot to accept a free) is established by construction, not asserted. *)

type t

val create : ?base:int -> ?arena_bytes:int -> unit -> t
(** [base] is the arena's start address (default 0x1000_0000, clear of
    the workload generators' static data); [arena_bytes] defaults to
    16 MB. *)

exception Out_of_memory

val malloc : t -> int -> int
(** [malloc t size] returns the block address. Sizes above
    {!Size_class.max_small_size} are bump-allocated (large-object path).
    Raises [Invalid_argument] on non-positive sizes, [Out_of_memory] when
    the arena is exhausted. *)

val free : t -> int -> unit
(** Returns a block to its class free list. Raises [Invalid_argument] on
    an address that is not currently allocated (catches double-free). *)

val malloc_hits_free_list : t -> int -> bool
(** Would [malloc size] be served from a free list (the accelerated fast
    path) rather than the bump pointer? *)

val free_list_length : t -> int -> int
(** Current length of a class's free list. *)

val live_blocks : t -> int
val live_bytes : t -> int
val arena_used : t -> int

val class_of_block : t -> int -> int option
(** Size class of a currently-allocated block. *)

val freelist_head_addr : t -> int -> int
(** Address of the metadata word holding a class's free-list head — the
    location the software malloc sequence loads and stores, kept
    L1-resident like TCMalloc's thread cache. *)

val check_invariants : t -> (unit, string) result
(** No block is both live and free; free lists are duplicate-free; all
    blocks lie inside the arena and are class-aligned. *)
