type t = {
  base : int;
  arena_bytes : int;
  mutable bump : int;  (** next never-allocated address *)
  free_lists : Free_list.t array;
  live : (int, int) Hashtbl.t;  (** block address -> class (or -1: large) *)
  large_sizes : (int, int) Hashtbl.t;  (** large block address -> bytes *)
  mutable live_bytes : int;
}

exception Out_of_memory

let default_base = 0x1000_0000

let create ?(base = default_base) ?(arena_bytes = 16 * 1024 * 1024) () =
  if base < 0 then invalid_arg "Tcmalloc.create: negative base";
  if arena_bytes <= 0 then invalid_arg "Tcmalloc.create: empty arena";
  {
    base;
    arena_bytes;
    bump = base;
    free_lists = Array.init Size_class.num_classes (fun _ -> Free_list.create ());
    live = Hashtbl.create 1024;
    large_sizes = Hashtbl.create 16;
    live_bytes = 0;
  }

let bump_alloc t bytes =
  let addr = t.bump in
  if addr + bytes > t.base + t.arena_bytes then raise Out_of_memory;
  t.bump <- addr + bytes;
  addr

let malloc t size =
  if size <= 0 then invalid_arg "Tcmalloc.malloc: non-positive size";
  match Size_class.of_size size with
  | Some cls ->
      let bytes = Size_class.class_bytes cls in
      let addr =
        match Free_list.pop t.free_lists.(cls) with
        | Some addr -> addr
        | None -> bump_alloc t bytes
      in
      Hashtbl.replace t.live addr cls;
      t.live_bytes <- t.live_bytes + bytes;
      addr
  | None ->
      (* Large-object path: bump allocation, 64 B aligned. *)
      let bytes = (size + 63) / 64 * 64 in
      let addr = bump_alloc t bytes in
      Hashtbl.replace t.live addr (-1);
      Hashtbl.replace t.large_sizes addr bytes;
      t.live_bytes <- t.live_bytes + bytes;
      addr

let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg "Tcmalloc.free: address not allocated"
  | Some (-1) ->
      let bytes = Hashtbl.find t.large_sizes addr in
      Hashtbl.remove t.large_sizes addr;
      Hashtbl.remove t.live addr;
      t.live_bytes <- t.live_bytes - bytes
      (* Large blocks are not recycled; TCMalloc returns them to the page
         heap, which this model does not need. *)
  | Some cls ->
      Hashtbl.remove t.live addr;
      t.live_bytes <- t.live_bytes - Size_class.class_bytes cls;
      Free_list.push t.free_lists.(cls) addr

let malloc_hits_free_list t size =
  match Size_class.of_size size with
  | None -> false
  | Some cls -> not (Free_list.is_empty t.free_lists.(cls))

let free_list_length t cls = Free_list.length t.free_lists.(cls)
let live_blocks t = Hashtbl.length t.live
let live_bytes t = t.live_bytes
let arena_used t = t.bump - t.base
let class_of_block t addr =
  match Hashtbl.find_opt t.live addr with
  | Some c when c >= 0 -> Some c
  | Some _ | None -> None

(* Free-list heads live in a compact metadata block just below the
   arena, one 8-byte word per class. *)
let freelist_head_addr t cls =
  let _ = Size_class.class_bytes cls in
  t.base - (8 * Size_class.num_classes) + (8 * cls)

let check_invariants t =
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  (* Free lists must not contain live or duplicate blocks. *)
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun fl ->
      List.iter
        (fun addr ->
          if Hashtbl.mem t.live addr then
            fail (Printf.sprintf "block %#x is both live and free" addr);
          if Hashtbl.mem seen addr then
            fail (Printf.sprintf "block %#x appears twice in free lists" addr);
          Hashtbl.replace seen addr ();
          if addr < t.base || addr >= t.base + t.arena_bytes then
            fail (Printf.sprintf "free block %#x outside arena" addr))
        (Free_list.to_list fl))
    t.free_lists;
  Hashtbl.iter
    (fun addr _cls ->
      if addr < t.base || addr >= t.base + t.arena_bytes then
        fail (Printf.sprintf "live block %#x outside arena" addr))
    t.live;
  match !err with None -> Ok () | Some msg -> Error msg
