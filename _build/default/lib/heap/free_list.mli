(** A per-class free list: a LIFO stack of block addresses, mirroring a
    TCMalloc thread-cache list. *)

type t

val create : unit -> t
val push : t -> int -> unit
val pop : t -> int option
val peek : t -> int option
val length : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool
(** Linear scan; intended for invariant checking, not hot paths. *)

val to_list : t -> int list
(** Head first; non-destructive. *)
