lib/heap/size_class.mli:
