lib/heap/tcmalloc.mli:
