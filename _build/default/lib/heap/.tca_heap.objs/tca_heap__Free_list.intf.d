lib/heap/free_list.mli:
