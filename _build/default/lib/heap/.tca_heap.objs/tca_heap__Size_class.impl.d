lib/heap/size_class.ml:
