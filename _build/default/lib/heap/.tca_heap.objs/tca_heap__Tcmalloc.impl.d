lib/heap/tcmalloc.ml: Array Free_list Hashtbl List Printf Size_class
