lib/heap/free_list.ml: List
