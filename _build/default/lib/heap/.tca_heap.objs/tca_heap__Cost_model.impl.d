lib/heap/cost_model.ml: Isa Tca_uarch Tca_util Trace
