lib/heap/cost_model.mli: Tca_uarch Tca_util
