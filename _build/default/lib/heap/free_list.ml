type t = { mutable items : int list; mutable len : int }

let create () = { items = []; len = 0 }

let push t addr =
  t.items <- addr :: t.items;
  t.len <- t.len + 1

let pop t =
  match t.items with
  | [] -> None
  | x :: rest ->
      t.items <- rest;
      t.len <- t.len - 1;
      Some x

let peek t = match t.items with [] -> None | x :: _ -> Some x
let length t = t.len
let is_empty t = t.len = 0
let mem t addr = List.mem addr t.items
let to_list t = t.items
