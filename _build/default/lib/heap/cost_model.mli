(** μop cost model for software heap operations and the heap TCA.

    Calibration (paper Section IV, citing Gope's measurements of
    TCMalloc): malloc is about 69 x86 μops / 39 cycles, free about
    37 μops / 20 cycles; the proposed heap-manager accelerator replaces
    either call with a single-cycle TCA instruction that hits in its
    hardware free-list tables. *)

val malloc_uops : int
(** 69 *)

val free_uops : int
(** 37 *)

val accel_latency : int
(** 1 cycle *)

(** Registers the heap sequences use (kept clear of the workload
    generators' application registers). *)

val result_reg : int
(** Register receiving the malloc'd pointer (software and TCA variants
    agree, so trailing application code depends on it identically). *)

val emit_malloc :
  Tca_uarch.Trace.Builder.t ->
  rng:Tca_util.Prng.t ->
  head_addr:int ->
  unit
(** Append the 69-μop software malloc sequence for the class whose
    free-list head lives at [head_addr]: class computation, free-list head
    load, empty check, next-pointer load, head update store, statistics
    maintenance, and filler reflecting TCMalloc's slow-path checks. The
    pointer lands in {!result_reg}. *)

val emit_free :
  Tca_uarch.Trace.Builder.t ->
  rng:Tca_util.Prng.t ->
  head_addr:int ->
  ptr_reg:int ->
  unit
(** Append the 37-μop software free sequence pushing the block in
    [ptr_reg] onto the list at [head_addr]. *)

val emit_malloc_accel : Tca_uarch.Trace.Builder.t -> unit
(** Append the single TCA instruction replacing malloc; its destination
    is {!result_reg}. *)

val emit_free_accel : Tca_uarch.Trace.Builder.t -> ptr_reg:int -> unit
(** Append the single TCA instruction replacing free, consuming the
    pointer register (dependency on the application code preserved). *)
