let num_classes = 4
let granule = 32
let max_small_size = num_classes * granule

let of_size bytes =
  if bytes <= 0 then invalid_arg "Size_class.of_size: non-positive size";
  if bytes > max_small_size then None else Some ((bytes - 1) / granule)

let check_class c =
  if c < 0 || c >= num_classes then
    invalid_arg "Size_class: class index out of range"

let class_bytes c =
  check_class c;
  (c + 1) * granule

let class_range c =
  check_class c;
  ((c * granule) + 1, (c + 1) * granule)
