(** First-order mechanistic CPI model, after Eyerman et al. (TOCS 2009)
    — the framework the TCA paper builds its accelerator model on.

    Estimates a program's IPC on an out-of-order core from event counts,
    with no simulation:

    - a base term limited by dispatch width or the code's
      dependence-chain issue rate ([max (1/D) (1/chain_ipc)]) — time the
      work costs no matter what;
    - a branch-misprediction term. In a decoupled OoO core the window
      backlog keeps executing useful work while a mispredicted branch
      resolves, so the *lost* time per event is the front-end redirect
      plus the re-dispatch of the backlog the front end had banked
      ([frontend_depth + occupancy / D]); the backlog itself follows from
      the dispatch surplus and the event spacing, making the model a
      small fixed point;
    - an exposed long-miss term: DRAM-missing loads cost the memory
      latency divided by the achievable memory-level parallelism.

    With this module the whole TCA design flow runs without a
    cycle-level simulator: estimate IPC here, feed it to
    {!Tca_model.Equations}. *)

type machine = {
  dispatch_width : int;
  rob_size : int;
  frontend_depth : int;  (** redirect penalty, cycles *)
  mem_latency : int;  (** DRAM latency, cycles *)
}

type workload_stats = {
  chain_ipc : float;
      (** dependence-limited issue rate of the code (instructions per
          cycle the backend sustains with a full window) *)
  branch_rate : float;  (** branches per instruction *)
  mispredict_rate : float;
      (** mispredictions per branch (hardware-counter measurable) *)
  load_rate : float;  (** loads per instruction *)
  dram_miss_rate : float;
      (** loads that miss all cache levels, per load (short misses are
          assumed hidden by the window) *)
  mlp : float;  (** overlapped DRAM misses (memory-level parallelism) *)
}

val machine :
  ?mem_latency:int -> dispatch_width:int ->
  rob_size:int -> frontend_depth:int -> unit -> machine
(** Validates positive widths/depths; [mem_latency] defaults to 100. *)

val stats :
  ?branch_rate:float -> ?mispredict_rate:float -> ?load_rate:float ->
  ?dram_miss_rate:float -> ?mlp:float -> chain_ipc:float -> unit ->
  workload_stats
(** Rates default to 0 and [mlp] to 1; validates rates in [\[0, 1\]],
    positive [chain_ipc] and [mlp >= 1]. *)

type breakdown = {
  base_cpi : float;
  mispredict_cpi : float;
  memory_cpi : float;
  total_cpi : float;
  ipc : float;
  window_occupancy : float;
      (** estimated backlog at a misprediction event *)
}

val evaluate : machine -> workload_stats -> breakdown
val ipc : machine -> workload_stats -> float
