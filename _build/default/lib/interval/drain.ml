type spec = Auto | Fixed of float | Refill_aware

let time spec ~fit ~window ~interval_instrs ~non_accl_time =
  let raw =
    match spec with
    | Fixed t ->
        if t < 0.0 then invalid_arg "Drain.time: negative fixed drain";
        t
    | Auto ->
        let content = Float.min (float_of_int window) interval_instrs in
        Power_law.critical_path fit content
    | Refill_aware -> 0.0
  in
  Float.max 0.0 (Float.min raw non_accl_time)
