(** Power-law relation between an out-of-order instruction window and the
    critical-path length of the instructions it holds, after Eyerman,
    Eeckhout, Karkhanis and Smith, "A mechanistic performance model for
    superscalar out-of-order processors" (TOCS 2009).

    The fit is [W = alpha * l(W)^beta]: a window of [W] instructions has an
    average dependence critical path of [l(W) = (W / alpha)^(1/beta)]
    cycles. For SPEC-like workloads [beta ~ 2] (the square-root law). The
    steady-state IPC of a core whose window keeps refilling is
    [W / l(W)], which is how we calibrate [alpha] from a measured program
    IPC without needing per-program dependence profiles. *)

type fit = { alpha : float; beta : float }

val calibrate : ipc:float -> window:int -> beta:float -> fit
(** [calibrate ~ipc ~window ~beta] chooses [alpha] such that a full window
    of [window] instructions drains at exactly the measured [ipc]
    (i.e. [window / l(window) = ipc]). Raises [Invalid_argument] when
    [ipc <= 0], [window <= 0] or [beta <= 0]. *)

val critical_path : fit -> float -> float
(** [critical_path fit w] is [l(w) = (w / alpha)^(1/beta)] cycles, the
    expected time to drain a window holding [w] instructions. [w <= 0]
    yields [0]. *)

val steady_ipc : fit -> float -> float
(** [steady_ipc fit w] is [w / l(w)], the sustainable issue rate with a
    window of size [w]. *)

val window_for_ipc : fit -> float -> float
(** Inverse of [steady_ipc]: the window size needed to sustain a target
    IPC. Useful for limit studies. *)
