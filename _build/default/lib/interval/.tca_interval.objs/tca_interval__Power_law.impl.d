lib/interval/power_law.ml:
