lib/interval/drain.ml: Float Power_law
