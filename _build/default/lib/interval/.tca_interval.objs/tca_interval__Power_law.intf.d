lib/interval/power_law.mli:
