lib/interval/mechanistic.mli:
