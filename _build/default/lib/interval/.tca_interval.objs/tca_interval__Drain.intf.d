lib/interval/drain.mli: Power_law
