lib/interval/mechanistic.ml: Float Printf
