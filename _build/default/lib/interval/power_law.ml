type fit = { alpha : float; beta : float }

let calibrate ~ipc ~window ~beta =
  if ipc <= 0.0 then invalid_arg "Power_law.calibrate: ipc must be positive";
  if window <= 0 then invalid_arg "Power_law.calibrate: window must be positive";
  if beta <= 0.0 then invalid_arg "Power_law.calibrate: beta must be positive";
  let w = float_of_int window in
  (* l(W) = W / ipc at the calibration point, and alpha = W / l^beta. *)
  let l = w /. ipc in
  { alpha = w /. (l ** beta); beta }

let critical_path fit w =
  if w <= 0.0 then 0.0 else (w /. fit.alpha) ** (1.0 /. fit.beta)

let steady_ipc fit w =
  if w <= 0.0 then 0.0 else w /. critical_path fit w

(* steady_ipc(W) = alpha^(1/beta) * W^(1 - 1/beta); solve for W. *)
let window_for_ipc fit ipc =
  if ipc <= 0.0 then invalid_arg "Power_law.window_for_ipc: ipc must be positive";
  if fit.beta = 1.0 then invalid_arg "Power_law.window_for_ipc: beta = 1 gives constant IPC";
  let exponent = 1.0 -. (1.0 /. fit.beta) in
  (ipc /. (fit.alpha ** (1.0 /. fit.beta))) ** (1.0 /. exponent)
