type machine = {
  dispatch_width : int;
  rob_size : int;
  frontend_depth : int;
  mem_latency : int;
}

type workload_stats = {
  chain_ipc : float;
  branch_rate : float;
  mispredict_rate : float;
  load_rate : float;
  dram_miss_rate : float;
  mlp : float;
}

let machine ?(mem_latency = 100) ~dispatch_width ~rob_size ~frontend_depth () =
  if dispatch_width < 1 then invalid_arg "Mechanistic.machine: dispatch_width below 1";
  if rob_size < 2 then invalid_arg "Mechanistic.machine: rob_size below 2";
  if frontend_depth < 0 then invalid_arg "Mechanistic.machine: negative frontend_depth";
  if mem_latency < 1 then invalid_arg "Mechanistic.machine: mem_latency below 1";
  { dispatch_width; rob_size; frontend_depth; mem_latency }

let check_rate name r =
  if r < 0.0 || r > 1.0 then
    invalid_arg (Printf.sprintf "Mechanistic.stats: %s out of [0, 1]" name)

let stats ?(branch_rate = 0.0) ?(mispredict_rate = 0.0) ?(load_rate = 0.0)
    ?(dram_miss_rate = 0.0) ?(mlp = 1.0) ~chain_ipc () =
  if chain_ipc <= 0.0 then invalid_arg "Mechanistic.stats: chain_ipc must be positive";
  if mlp < 1.0 then invalid_arg "Mechanistic.stats: mlp below 1";
  check_rate "branch_rate" branch_rate;
  check_rate "mispredict_rate" mispredict_rate;
  check_rate "load_rate" load_rate;
  check_rate "dram_miss_rate" dram_miss_rate;
  { chain_ipc; branch_rate; mispredict_rate; load_rate; dram_miss_rate; mlp }

type breakdown = {
  base_cpi : float;
  mispredict_cpi : float;
  memory_cpi : float;
  total_cpi : float;
  ipc : float;
  window_occupancy : float;
}

let evaluate m w =
  let d = float_of_int m.dispatch_width in
  let base_cpi = Float.max (1.0 /. d) (1.0 /. w.chain_ipc) in
  let memory_cpi =
    w.load_rate *. w.dram_miss_rate *. float_of_int m.mem_latency /. w.mlp
  in
  let events = w.branch_rate *. w.mispredict_rate in
  (* Occupancy at an event depends on the event spacing, which depends on
     the CPI being computed: a short fixed point. The front end banks
     min(rob, surplus * spacing / 2) instructions ahead of the backend;
     each event costs the redirect plus re-dispatching that backlog. *)
  let rec iterate cpi k =
    let occ =
      if events <= 0.0 then 0.0
      else
        let cycles_between = cpi /. events in
        let surplus = Float.max 0.0 (d -. w.chain_ipc) in
        Float.min (float_of_int m.rob_size) (surplus *. cycles_between /. 2.0)
    in
    let mispredict_cpi =
      events *. (float_of_int m.frontend_depth +. (occ /. d))
    in
    let next = base_cpi +. memory_cpi +. mispredict_cpi in
    if k = 0 || Float.abs (next -. cpi) < 1e-9 then (next, occ, mispredict_cpi)
    else iterate next (k - 1)
  in
  let total_cpi, window_occupancy, mispredict_cpi =
    iterate (base_cpi +. memory_cpi) 100
  in
  {
    base_cpi;
    mispredict_cpi;
    memory_cpi;
    total_cpi;
    ipc = 1.0 /. total_cpi;
    window_occupancy;
  }

let ipc m w = (evaluate m w).ipc
