(** Reorder-buffer drain-time estimation (paper Section III-A).

    When a non-speculative TCA reaches dispatch, the core must drain the
    window of leading instructions before the accelerator may execute. The
    drain lasts for the critical-path length of whatever the window holds.
    The paper either takes an explicit drain time from the user or
    estimates it from program IPC and ROB size via the power law, capped
    at the interval's non-accelerated work [t_non_accl] ("if t_non_accl is
    smaller than t_drain ... t_non_accl is used instead"). *)

type spec =
  | Auto  (** estimate from the power-law fit (the paper's default) *)
  | Fixed of float  (** cycles, supplied by the user *)
  | Refill_aware
      (** zero extra drain: when the front end can dispatch ahead of a
          backend whose throughput does not scale with window occupancy
          (dependence-chain-limited code), the post-barrier window refill
          absorbs the drain entirely — the interval still completes in
          [t_non_accl]. The paper's [Auto] estimate applies to workloads
          whose ILP grows with window size (the SPEC-like square-root
          law); [Refill_aware] is the other analytical limit, and matches
          chain-structured microbenchmarks. See EXPERIMENTS.md. *)

val time :
  spec ->
  fit:Power_law.fit ->
  window:int ->
  interval_instrs:float ->
  non_accl_time:float ->
  float
(** [time spec ~fit ~window ~interval_instrs ~non_accl_time] is the drain
    penalty in cycles. In [Auto] mode the window content is
    [min window interval_instrs] (a short interval cannot fill the ROB)
    and the result is additionally capped at [non_accl_time]. A [Fixed]
    time is also capped at [non_accl_time], matching the paper's rule. *)
