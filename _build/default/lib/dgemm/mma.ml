let supported_dims = [ 2; 4; 8 ]

let update ~c ~a ~b ~i ~j ~k ~dim =
  let n = Matrix.dim a in
  if dim <= 0 || i + dim > n || j + dim > n || k + dim > n then
    invalid_arg "Mma.update: block out of range";
  for di = 0 to dim - 1 do
    for dj = 0 to dim - 1 do
      let acc = ref (Matrix.get c (i + di) (j + dj)) in
      for dk = 0 to dim - 1 do
        acc := !acc +. (Matrix.get a (i + di) (k + dk) *. Matrix.get b (k + dk) (j + dj))
      done;
      Matrix.set c (i + di) (j + dj) !acc
    done
  done

let multiply_blocked_mma ~block ~dim a b =
  let n = Matrix.dim a in
  if n <> Matrix.dim b then invalid_arg "Mma.multiply_blocked_mma: dimension mismatch";
  if block <= 0 || n mod block <> 0 then
    invalid_arg "Mma.multiply_blocked_mma: block must divide dimension";
  if dim <= 0 || block mod dim <> 0 then
    invalid_arg "Mma.multiply_blocked_mma: dim must divide block";
  let c = Matrix.create n in
  let nb = n / block and nd = block / dim in
  for bi = 0 to nb - 1 do
    for bj = 0 to nb - 1 do
      for bk = 0 to nb - 1 do
        for si = 0 to nd - 1 do
          for sj = 0 to nd - 1 do
            for sk = 0 to nd - 1 do
              update ~c ~a ~b
                ~i:((bi * block) + (si * dim))
                ~j:((bj * block) + (sj * dim))
                ~k:((bk * block) + (sk * dim))
                ~dim
            done
          done
        done
      done
    done
  done;
  c

let macs_per_invocation dim = dim * dim * dim

let invocations ~n ~dim =
  if n mod dim <> 0 then invalid_arg "Mma.invocations: dim must divide n";
  let blocks = n / dim in
  blocks * blocks * blocks

let compute_latency dim = dim
