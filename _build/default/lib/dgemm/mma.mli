(** Functional semantics of the matrix-multiply-accumulate TCAs: a
    [dim x dim] sub-block update [C += A * B], the operation the 2x2, 4x4
    and 8x8 accelerators perform per invocation (paper Section IV-C). *)

val supported_dims : int list
(** [2; 4; 8] *)

val update :
  c:Matrix.t -> a:Matrix.t -> b:Matrix.t ->
  i:int -> j:int -> k:int -> dim:int -> unit
(** [update ~c ~a ~b ~i ~j ~k ~dim] performs
    [C(i..i+dim, j..j+dim) += A(i..i+dim, k..k+dim) * B(k..k+dim,
    j..j+dim)]. Raises [Invalid_argument] on out-of-range blocks. *)

val multiply_blocked_mma : block:int -> dim:int -> Matrix.t -> Matrix.t -> Matrix.t
(** The full blocked DGEMM with the inner element-wise kernel replaced by
    [dim x dim] MMA invocations — numerically identical to
    {!Matrix.multiply_naive} (validated by the test suite). *)

val macs_per_invocation : int -> int
(** [dim^3]. *)

val invocations : n:int -> dim:int -> int
(** Total TCA invocations for an [n x n] product: [(n / dim)^3]. *)

val compute_latency : int -> int
(** Modelled accelerator compute time for one invocation: [dim] cycles
    (a [dim^2]-lane MAC array consuming one operand column per cycle,
    Volta-tensor-core-like). *)
