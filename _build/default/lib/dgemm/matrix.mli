(** Dense square double-precision matrices, row-major, with the blocked
    multiplication the paper's DGEMM study uses (32x32 blocks sized so
    two input and one output block stay resident in a 32 kB L1). *)

type t

val create : int -> t
(** [create n] is an [n x n] zero matrix. Raises [Invalid_argument] for
    [n <= 0]. *)

val random : Tca_util.Prng.t -> int -> t
(** Entries uniform in [[-1, 1)]. *)

val dim : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val equal : ?eps:float -> t -> t -> bool
(** Element-wise comparison with absolute tolerance (default 1e-9). *)

val max_abs_diff : t -> t -> float

val multiply_naive : t -> t -> t
(** Triply-nested-loop reference product. *)

val multiply_blocked : block:int -> t -> t -> t
(** Blocked product accumulating [block x block] partial products —
    the paper's software baseline structure. [block] must divide the
    dimension. *)

val addr_of : base:int -> n:int -> i:int -> j:int -> int
(** Byte address of element [(i, j)] of an [n x n] matrix laid out
    row-major at [base] (8 bytes per element) — shared by the trace
    generators so simulated cache behaviour matches the real layout. *)

val row_segment_lines :
  base:int -> n:int -> i:int -> j:int -> elems:int -> int list
(** Distinct 64 B line addresses covering elements [(i, j) .. (i, j +
    elems - 1)]. *)
