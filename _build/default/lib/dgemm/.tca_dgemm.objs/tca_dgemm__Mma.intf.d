lib/dgemm/mma.mli: Matrix
