lib/dgemm/mma.ml: Matrix
