lib/dgemm/matrix.ml: Array Float List Tca_util
