lib/dgemm/matrix.mli: Tca_util
