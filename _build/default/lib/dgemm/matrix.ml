type t = { n : int; data : float array }

let create n =
  if n <= 0 then invalid_arg "Matrix.create: non-positive dimension";
  { n; data = Array.make (n * n) 0.0 }

let random rng n =
  let m = create n in
  for i = 0 to (n * n) - 1 do
    m.data.(i) <- Tca_util.Prng.float rng 2.0 -. 1.0
  done;
  m

let dim m = m.n

let check_index m i j =
  if i < 0 || i >= m.n || j < 0 || j >= m.n then
    invalid_arg "Matrix: index out of range"

let get m i j =
  check_index m i j;
  m.data.((i * m.n) + j)

let set m i j x =
  check_index m i j;
  m.data.((i * m.n) + j) <- x

let max_abs_diff a b =
  if a.n <> b.n then invalid_arg "Matrix.max_abs_diff: dimension mismatch";
  let worst = ref 0.0 in
  for k = 0 to (a.n * a.n) - 1 do
    worst := Float.max !worst (Float.abs (a.data.(k) -. b.data.(k)))
  done;
  !worst

let equal ?(eps = 1e-9) a b = a.n = b.n && max_abs_diff a b <= eps

let multiply_naive a b =
  if a.n <> b.n then invalid_arg "Matrix.multiply_naive: dimension mismatch";
  let n = a.n in
  let c = create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (a.data.((i * n) + k) *. b.data.((k * n) + j))
      done;
      c.data.((i * n) + j) <- !acc
    done
  done;
  c

let multiply_blocked ~block a b =
  if a.n <> b.n then invalid_arg "Matrix.multiply_blocked: dimension mismatch";
  let n = a.n in
  if block <= 0 || n mod block <> 0 then
    invalid_arg "Matrix.multiply_blocked: block must divide dimension";
  let c = create n in
  let nb = n / block in
  for bi = 0 to nb - 1 do
    for bj = 0 to nb - 1 do
      for bk = 0 to nb - 1 do
        (* Accumulate the (bi, bj) output block's partial product. *)
        let i0 = bi * block and j0 = bj * block and k0 = bk * block in
        for i = i0 to i0 + block - 1 do
          for j = j0 to j0 + block - 1 do
            let acc = ref c.data.((i * n) + j) in
            for k = k0 to k0 + block - 1 do
              acc := !acc +. (a.data.((i * n) + k) *. b.data.((k * n) + j))
            done;
            c.data.((i * n) + j) <- !acc
          done
        done
      done
    done
  done;
  c

let addr_of ~base ~n ~i ~j = base + (8 * ((i * n) + j))

let row_segment_lines ~base ~n ~i ~j ~elems =
  if elems <= 0 then invalid_arg "Matrix.row_segment_lines: empty segment";
  let first = addr_of ~base ~n ~i ~j in
  let last = first + (8 * elems) - 1 in
  let first_line = first land lnot 63 in
  let last_line = last land lnot 63 in
  let rec collect acc line =
    if line > last_line then List.rev acc else collect (line :: acc) (line + 64)
  in
  collect [] first_line
