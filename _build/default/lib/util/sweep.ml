let linspace lo hi n =
  if n < 2 then invalid_arg "Sweep.linspace: need at least 2 points";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i -> lo +. (float_of_int i *. step))

let logspace lo hi n =
  if lo <= 0.0 || hi <= 0.0 then invalid_arg "Sweep.logspace: positive endpoints required";
  let pts = linspace (log10 lo) (log10 hi) n in
  Array.map (fun e -> 10.0 ** e) pts

let int_range lo hi =
  if hi < lo then [||] else Array.init (hi - lo + 1) (fun i -> lo + i)

let geometric_ints lo hi ratio =
  if lo <= 0 || ratio <= 1.0 then invalid_arg "Sweep.geometric_ints: lo > 0 and ratio > 1 required";
  let rec build acc x =
    if x > hi then acc
    else
      let next =
        let n = int_of_float (Float.round (float_of_int x *. ratio)) in
        if n <= x then x + 1 else n
      in
      build (x :: acc) next
  in
  let pts = build [] lo in
  let pts = match pts with last :: _ when last < hi -> hi :: pts | _ -> pts in
  Array.of_list (List.rev pts)
