let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let geomean xs =
  check_nonempty "Stats.geomean" xs;
  let sum_logs =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive element";
        acc +. log x)
      0.0 xs
  in
  exp (sum_logs /. float_of_int (Array.length xs))

let variance xs =
  check_nonempty "Stats.variance" xs;
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
  /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let min xs =
  check_nonempty "Stats.min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check_nonempty "Stats.max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let median xs = percentile xs 50.0

let relative_error ~measured ~estimated =
  if measured = 0.0 then invalid_arg "Stats.relative_error: measured = 0";
  (estimated -. measured) /. measured

let abs_relative_error ~measured ~estimated =
  Float.abs (relative_error ~measured ~estimated)

let mape ~measured ~estimated =
  if Array.length measured <> Array.length estimated then
    invalid_arg "Stats.mape: length mismatch";
  check_nonempty "Stats.mape" measured;
  let errs =
    Array.map2
      (fun m e -> abs_relative_error ~measured:m ~estimated:e)
      measured estimated
  in
  100.0 *. mean errs
