lib/util/table.ml: Buffer List Printf Stdlib String
