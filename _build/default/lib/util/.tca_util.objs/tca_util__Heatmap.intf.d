lib/util/heatmap.mli:
