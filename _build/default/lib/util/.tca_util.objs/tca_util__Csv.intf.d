lib/util/csv.mli:
