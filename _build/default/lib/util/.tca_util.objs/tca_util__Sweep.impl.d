lib/util/sweep.ml: Array Float List
