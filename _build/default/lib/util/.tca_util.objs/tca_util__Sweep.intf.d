lib/util/sweep.mli:
