lib/util/heatmap.ml: Array Buffer Bytes Float Hashtbl List Printf Stdlib String
