lib/util/prng.mli:
