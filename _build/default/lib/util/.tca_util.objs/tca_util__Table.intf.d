lib/util/table.mli:
