lib/util/stats.mli:
