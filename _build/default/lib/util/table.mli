(** Column-aligned ASCII table rendering for the bench harness and CLI.

    All figure drivers print their rows through this module so the output
    that regenerates each paper table/figure has a uniform, diffable
    format. *)

type align = Left | Right

val render :
  ?aligns:align list -> headers:string list -> string list list -> string
(** [render ~headers rows] lays out [rows] under [headers] with a separator
    rule. Each row must have the same arity as [headers]; raises
    [Invalid_argument] otherwise. Default alignment is [Right] for cells
    that parse as numbers would be overkill — it is [Left] for the first
    column and [Right] for the rest unless [aligns] is given. *)

val print : ?aligns:align list -> headers:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point formatting, default 3 decimals. *)

val pct_cell : ?decimals:int -> float -> string
(** [pct_cell x] renders the fraction [x] as a percentage with a [%]
    suffix, default 1 decimal. *)
