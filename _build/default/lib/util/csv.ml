let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  else s

let line fields = String.concat "," (List.map escape fields)

let to_string ~header rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let write_file path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header rows))
