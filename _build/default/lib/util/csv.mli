(** Minimal CSV emission (RFC 4180 quoting) so every figure driver can dump
    machine-readable series next to the ASCII rendering. *)

val escape : string -> string
(** Quote a field if it contains a comma, quote or newline. *)

val line : string list -> string
(** One CSV record, no trailing newline. *)

val to_string : header:string list -> string list list -> string
(** Full document with header row and trailing newline. *)

val write_file : string -> header:string list -> string list list -> unit
