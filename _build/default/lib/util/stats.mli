(** Descriptive statistics over float arrays, used for error reporting
    (model-vs-simulation validation) and benchmark summaries. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val geomean : float array -> float
(** Geometric mean. All elements must be positive. *)

val variance : float array -> float
(** Population variance. *)

val stddev : float array -> float

val min : float array -> float
val max : float array -> float

val median : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. *)

val relative_error : measured:float -> estimated:float -> float
(** [(estimated - measured) / measured]. Positive means the estimate is
    optimistic relative to the measurement. *)

val abs_relative_error : measured:float -> estimated:float -> float

val mape : measured:float array -> estimated:float array -> float
(** Mean absolute percentage error, in percent. *)
