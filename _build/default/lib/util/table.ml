type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let default_aligns n = List.init n (fun i -> if i = 0 then Left else Right)

let render ?aligns ~headers rows =
  let arity = List.length headers in
  List.iteri
    (fun i row ->
      if List.length row <> arity then
        invalid_arg
          (Printf.sprintf "Table.render: row %d has %d cells, expected %d" i
             (List.length row) arity))
    rows;
  let aligns =
    match aligns with
    | Some a when List.length a = arity -> a
    | Some _ -> invalid_arg "Table.render: aligns arity mismatch"
    | None -> default_aligns arity
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> Stdlib.max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let buf = Buffer.create 1024 in
  let emit_row cells =
    let padded =
      List.map2 (fun (a, w) c -> pad a w c) (List.combine aligns widths) cells
    in
    Buffer.add_string buf (String.concat "  " padded);
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  Buffer.add_string buf
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?aligns ~headers rows = print_string (render ?aligns ~headers rows)

let float_cell ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x

let pct_cell ?(decimals = 1) x = Printf.sprintf "%.*f%%" decimals (100.0 *. x)
