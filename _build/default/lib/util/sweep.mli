(** Parameter-sweep helpers: linear and logarithmic ranges used by every
    figure driver. *)

val linspace : float -> float -> int -> float array
(** [linspace lo hi n] is [n >= 2] evenly spaced points including both
    endpoints. *)

val logspace : float -> float -> int -> float array
(** [logspace lo hi n] is [n >= 2] points evenly spaced in log10 between
    the positive endpoints [lo] and [hi], inclusive. *)

val int_range : int -> int -> int array
(** [int_range lo hi] is [lo; lo+1; ...; hi]. Empty if [hi < lo]. *)

val geometric_ints : int -> int -> float -> int array
(** [geometric_ints lo hi ratio] is the increasing deduplicated sequence
    [lo; lo*ratio; ...] capped at [hi] (always includes [lo]; includes [hi]
    if distinct from the last generated point). *)
