type config = {
  entries : int;
  assoc : int;
  page_bits : int;
  walk_latency : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config ?(assoc = 4) ?(page_bits = 12) ?(walk_latency = 30) ~entries () =
  if not (is_pow2 entries) then invalid_arg "Tlb.config: entries not a power of two";
  if assoc <= 0 || entries mod assoc <> 0 then invalid_arg "Tlb.config: bad associativity";
  if not (is_pow2 (entries / assoc)) then invalid_arg "Tlb.config: set count not a power of two";
  if page_bits < 6 || page_bits > 30 then invalid_arg "Tlb.config: page_bits out of [6, 30]";
  if walk_latency < 1 then invalid_arg "Tlb.config: walk_latency below 1";
  { entries; assoc; page_bits; walk_latency }

type t = {
  cfg : config;
  tags : int array;
  stamps : int array;
  set_mask : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create cfg =
  let sets = cfg.entries / cfg.assoc in
  {
    cfg;
    tags = Array.make cfg.entries (-1);
    stamps = Array.make cfg.entries 0;
    set_mask = sets - 1;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let access t addr =
  let page = addr lsr t.cfg.page_bits in
  let base = (page land t.set_mask) * t.cfg.assoc in
  t.clock <- t.clock + 1;
  let rec find w = if w = t.cfg.assoc then -1 else if t.tags.(base + w) = page then base + w else find (w + 1) in
  let idx = find 0 in
  if idx >= 0 then begin
    t.stamps.(idx) <- t.clock;
    t.hits <- t.hits + 1;
    0
  end
  else begin
    t.misses <- t.misses + 1;
    let victim = ref base in
    for w = 1 to t.cfg.assoc - 1 do
      if t.stamps.(base + w) < t.stamps.(!victim) then victim := base + w
    done;
    t.tags.(!victim) <- page;
    t.stamps.(!victim) <- t.clock;
    t.cfg.walk_latency
  end

let hits t = t.hits
let misses t = t.misses
