type config = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  hit_latency : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config ?(line_bytes = 64) ?(hit_latency = 2) ~size_bytes ~assoc () =
  if not (is_pow2 line_bytes) then invalid_arg "Cache.config: line_bytes not a power of two";
  if assoc <= 0 then invalid_arg "Cache.config: assoc must be positive";
  if hit_latency < 1 then invalid_arg "Cache.config: hit_latency below 1";
  if size_bytes <= 0 || size_bytes mod (line_bytes * assoc) <> 0 then
    invalid_arg "Cache.config: size not divisible by line_bytes * assoc";
  let sets = size_bytes / (line_bytes * assoc) in
  if not (is_pow2 sets) then invalid_arg "Cache.config: set count not a power of two";
  { size_bytes; line_bytes; assoc; hit_latency }

type t = {
  cfg : config;
  tags : int array;  (** [set * assoc + way]; -1 = invalid *)
  stamps : int array;  (** LRU age stamps, larger = more recent *)
  set_mask : int;
  line_shift : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create cfg =
  let sets = cfg.size_bytes / (cfg.line_bytes * cfg.assoc) in
  {
    cfg;
    tags = Array.make (sets * cfg.assoc) (-1);
    stamps = Array.make (sets * cfg.assoc) 0;
    set_mask = sets - 1;
    line_shift = log2 cfg.line_bytes;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let locate t addr =
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  (line, set * t.cfg.assoc)

let find_way t base line =
  let rec go w =
    if w = t.cfg.assoc then -1
    else if t.tags.(base + w) = line then base + w
    else go (w + 1)
  in
  go 0

let probe t addr =
  let line, base = locate t addr in
  find_way t base line >= 0

let access t addr =
  let line, base = locate t addr in
  t.clock <- t.clock + 1;
  let idx = find_way t base line in
  if idx >= 0 then begin
    t.stamps.(idx) <- t.clock;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* Evict the LRU way (or fill an invalid one). *)
    let victim = ref base in
    for w = 1 to t.cfg.assoc - 1 do
      if t.stamps.(base + w) < t.stamps.(!victim) then victim := base + w
    done;
    let invalid = find_way t base (-1) in
    let slot = if invalid >= 0 then invalid else !victim in
    t.tags.(slot) <- line;
    t.stamps.(slot) <- t.clock;
    false
  end

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let num_sets t = t.set_mask + 1
let line_bytes t = t.cfg.line_bytes
