(** Convenience drivers on top of {!Pipeline}: run a workload's baseline
    and accelerated traces across the four TCA couplings, the common
    shape of every validation experiment. *)

type mode_result = {
  coupling : Config.coupling;
  stats : Sim_stats.t;
  speedup : float;  (** baseline cycles / accelerated cycles *)
}

type comparison = {
  baseline : Sim_stats.t;
  modes : mode_result list;  (** in [Config.all_couplings] order *)
}

val measure_ipc : Config.t -> Trace.t -> float
(** IPC of a trace on the given core (coupling irrelevant when the trace
    holds no accelerator instructions). *)

val compare_modes :
  cfg:Config.t -> baseline:Trace.t -> accelerated:Trace.t -> comparison
(** Run the baseline once and the accelerated trace under all four
    couplings. *)

val find_mode_result : comparison -> Config.coupling -> mode_result
(** Raises [Not_found] if absent. *)
