type kind =
  | Perfect
  | Always_taken
  | Bimodal of int
  | Gshare of int
  | Tournament of int

type table = { counters : Bytes.t; mask : int }

type gshare_state = { tbl : table; mutable history : int }

type tournament_state = {
  bimodal : table;
  gshare : gshare_state;
  chooser : table;  (** >= 2: trust gshare *)
}

type t = P | AT | BM of table | GS of gshare_state | TN of tournament_state

let make_table bits =
  if bits < 1 || bits > 24 then invalid_arg "Bpred.create: bits out of range";
  let n = 1 lsl bits in
  (* Initialise to weakly taken (2). *)
  { counters = Bytes.make n '\002'; mask = n - 1 }

let make_gshare bits = { tbl = make_table bits; history = 0 }

let create = function
  | Perfect -> P
  | Always_taken -> AT
  | Bimodal bits -> BM (make_table bits)
  | Gshare bits -> GS (make_gshare bits)
  | Tournament bits ->
      TN
        {
          bimodal = make_table bits;
          gshare = make_gshare bits;
          chooser = make_table bits;
        }

let counter tbl idx = Char.code (Bytes.get tbl.counters (idx land tbl.mask))

let set_counter tbl idx v =
  Bytes.set tbl.counters (idx land tbl.mask) (Char.chr v)

let index_of_pc pc = pc lsr 2

let bimodal_predict tbl pc = counter tbl (index_of_pc pc) >= 2
let gshare_predict g pc = counter g.tbl (index_of_pc pc lxor g.history) >= 2

let predict t ~pc =
  match t with
  | P | AT -> true
  | BM tbl -> bimodal_predict tbl pc
  | GS g -> gshare_predict g pc
  | TN s ->
      if counter s.chooser (index_of_pc pc) >= 2 then gshare_predict s.gshare pc
      else bimodal_predict s.bimodal pc

let train tbl idx taken =
  let c = counter tbl idx in
  let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
  set_counter tbl idx c'

let gshare_update g pc taken =
  train g.tbl (index_of_pc pc lxor g.history) taken;
  g.history <- ((g.history lsl 1) lor Bool.to_int taken) land g.tbl.mask

let update t ~pc ~taken =
  match t with
  | P | AT -> ()
  | BM tbl -> train tbl (index_of_pc pc) taken
  | GS g -> gshare_update g pc taken
  | TN s ->
      let bm_correct = bimodal_predict s.bimodal pc = taken in
      let gs_correct = gshare_predict s.gshare pc = taken in
      (* Chooser moves toward whichever component was right when they
         disagree. *)
      if bm_correct <> gs_correct then
        train s.chooser (index_of_pc pc) gs_correct;
      train s.bimodal (index_of_pc pc) taken;
      gshare_update s.gshare pc taken

let is_perfect = function P -> true | AT | BM _ | GS _ | TN _ -> false
