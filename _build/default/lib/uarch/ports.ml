type t = {
  width : int;
  horizon : int;
  used : int array;  (** indexed by [cycle mod horizon] *)
  cell_cycle : int array;  (** which cycle each cell currently counts *)
}

let create ~width ~horizon =
  if width < 1 then invalid_arg "Ports.create: width below 1";
  if horizon < 2 then invalid_arg "Ports.create: horizon below 2";
  {
    width;
    horizon;
    used = Array.make horizon 0;
    cell_cycle = Array.make horizon (-1);
  }

let usage_at t c =
  let idx = c mod t.horizon in
  if t.cell_cycle.(idx) = c then t.used.(idx) else 0

let book t c =
  let idx = c mod t.horizon in
  if t.cell_cycle.(idx) <> c then begin
    t.cell_cycle.(idx) <- c;
    t.used.(idx) <- 0
  end;
  t.used.(idx) <- t.used.(idx) + 1

let advance _t ~now:_ = ()

let reserve t ~now =
  let rec go c =
    if c - now >= t.horizon then
      failwith "Ports.reserve: reservation horizon exhausted"
    else if usage_at t c < t.width then begin
      book t c;
      c
    end
    else go (c + 1)
  in
  go now

let width t = t.width
