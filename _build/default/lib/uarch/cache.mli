(** One level of set-associative cache with LRU replacement.

    Timing-only: no data storage, no writeback traffic (documented
    first-order abstraction — dirty-eviction bandwidth does not interact
    with the TCA coupling modes under study). *)

type config = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  hit_latency : int;  (** cycles for a hit at this level *)
}

val config :
  ?line_bytes:int -> ?hit_latency:int -> size_bytes:int -> assoc:int -> unit ->
  config
(** Validates power-of-two sizes and divisibility; [line_bytes] defaults
    to 64, [hit_latency] to 2. *)

type t

val create : config -> t

val access : t -> int -> bool
(** [access t addr] probes the set for [addr]'s line. On a hit, promotes
    to MRU and returns [true]. On a miss, fills the line (evicting LRU)
    and returns [false]. *)

val probe : t -> int -> bool
(** Non-mutating lookup: is the line currently resident? *)

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
val num_sets : t -> int
val line_bytes : t -> int
