type stall_breakdown = {
  rob_full : int;
  iq_full : int;
  lsq_full : int;
  serialize : int;
  redirect : int;
  drained : int;
}

type t = {
  cycles : int;
  committed : int;
  ipc : float;
  branches : int;
  mispredicts : int;
  l1 : Mem_hier.level_stats;
  l2 : Mem_hier.level_stats option;
  accel_invocations : int;
  accel_busy_cycles : int;
  accel_wait_for_head_cycles : int;
  avg_rob_occupancy : float;
  avg_rob_at_accel_dispatch : float;
  dtlb : Mem_hier.level_stats option;
  stalls : stall_breakdown;
}

let mispredict_rate t =
  if t.branches = 0 then 0.0
  else float_of_int t.mispredicts /. float_of_int t.branches

let l1_miss_rate t =
  let total = t.l1.Mem_hier.hits + t.l1.Mem_hier.misses in
  if total = 0 then 0.0 else float_of_int t.l1.Mem_hier.misses /. float_of_int total

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cycles       %d@,committed    %d@,ipc          %.3f@,branches     \
     %d (%.2f%% mispredicted)@,l1           %d hits / %d misses@,accel        \
     %d invocations, %d busy cycles, %d head-wait cycles@,rob          \
     avg %.1f, %.1f at accel dispatch@,stalls       \
     rob=%d iq=%d lsq=%d serialize=%d redirect=%d drained=%d@]"
    t.cycles t.committed t.ipc t.branches
    (100.0 *. mispredict_rate t)
    t.l1.Mem_hier.hits t.l1.Mem_hier.misses t.accel_invocations
    t.accel_busy_cycles t.accel_wait_for_head_cycles t.avg_rob_occupancy
    t.avg_rob_at_accel_dispatch t.stalls.rob_full
    t.stalls.iq_full t.stalls.lsq_full t.stalls.serialize t.stalls.redirect
    t.stalls.drained

let speedup ~baseline ~accelerated =
  if accelerated.cycles = 0 then invalid_arg "Sim_stats.speedup: zero cycles";
  float_of_int baseline.cycles /. float_of_int accelerated.cycles
