(** Aggregate results of one simulation run. *)

type stall_breakdown = {
  rob_full : int;
  iq_full : int;
  lsq_full : int;
  serialize : int;  (** dispatch barrier behind an in-flight NT TCA *)
  redirect : int;  (** front end waiting on a branch redirect *)
  drained : int;  (** nothing left to dispatch *)
}

type t = {
  cycles : int;
  committed : int;
  ipc : float;
  branches : int;
  mispredicts : int;
  l1 : Mem_hier.level_stats;
  l2 : Mem_hier.level_stats option;
  accel_invocations : int;
  accel_busy_cycles : int;
      (** cycles with at least one TCA instruction executing *)
  accel_wait_for_head_cycles : int;
      (** cycles a ready NL-mode TCA spent waiting to reach the ROB head *)
  avg_rob_occupancy : float;  (** mean ROB entries over all cycles *)
  avg_rob_at_accel_dispatch : float;
      (** mean ROB entries at the moment a TCA dispatches — the window
          the NL modes must drain *)
  dtlb : Mem_hier.level_stats option;
      (** data-TLB hits/misses when a DTLB is configured *)
  stalls : stall_breakdown;
}

val mispredict_rate : t -> float
val l1_miss_rate : t -> float

val pp : Format.formatter -> t -> unit

val speedup : baseline:t -> accelerated:t -> float
(** Ratio of baseline to accelerated cycle counts. *)
