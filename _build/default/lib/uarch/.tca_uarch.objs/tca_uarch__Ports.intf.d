lib/uarch/ports.mli:
