lib/uarch/config.mli: Bpred Mem_hier Tlb
