lib/uarch/cache.mli:
