lib/uarch/trace.mli: Isa
