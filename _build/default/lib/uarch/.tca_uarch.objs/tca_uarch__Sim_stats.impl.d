lib/uarch/sim_stats.ml: Format Mem_hier
