lib/uarch/cache.ml: Array
