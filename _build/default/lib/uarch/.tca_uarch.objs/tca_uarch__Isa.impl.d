lib/uarch/isa.ml: Array Format Printf
