lib/uarch/pipeline.mli: Config Sim_stats Trace
