lib/uarch/isa.mli: Format
