lib/uarch/sim_stats.mli: Format Mem_hier
