lib/uarch/tlb.mli:
