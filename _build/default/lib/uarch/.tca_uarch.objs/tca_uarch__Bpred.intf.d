lib/uarch/bpred.mli:
