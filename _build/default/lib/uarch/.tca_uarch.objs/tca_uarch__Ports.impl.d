lib/uarch/ports.ml: Array
