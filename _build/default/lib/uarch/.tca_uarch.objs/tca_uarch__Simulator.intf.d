lib/uarch/simulator.mli: Config Sim_stats Trace
