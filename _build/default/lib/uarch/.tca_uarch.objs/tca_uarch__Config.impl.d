lib/uarch/config.ml: Bpred Cache List Mem_hier Tlb
