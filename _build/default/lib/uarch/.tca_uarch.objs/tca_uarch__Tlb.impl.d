lib/uarch/tlb.ml: Array
