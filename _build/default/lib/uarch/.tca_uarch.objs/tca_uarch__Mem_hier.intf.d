lib/uarch/mem_hier.mli: Cache
