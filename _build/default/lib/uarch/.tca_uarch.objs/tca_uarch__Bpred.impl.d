lib/uarch/bpred.ml: Bool Bytes Char
