lib/uarch/simulator.ml: Config List Pipeline Sim_stats
