lib/uarch/trace.ml: Array Buffer Fun Isa List Printf String
