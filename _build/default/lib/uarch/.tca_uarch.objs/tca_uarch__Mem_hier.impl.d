lib/uarch/mem_hier.ml: Cache Option
