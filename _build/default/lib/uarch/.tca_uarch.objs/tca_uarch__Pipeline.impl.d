lib/uarch/pipeline.ml: Array Bpred Config Isa List Mem_hier Option Ports Printf Sim_stats Tlb Trace
