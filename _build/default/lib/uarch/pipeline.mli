(** Cycle-level out-of-order pipeline: dispatch, OoO issue, execute,
    in-order commit, with TCA coupling semantics.

    Mechanisms (paper Section IV):
    - an [Accel] instruction occupies one ROB entry and commits in order;
    - with [allow_leading = false] it is non-speculative: it may begin
      execution only once it reaches the ROB head (window drain);
    - with [allow_trailing = false] it serialises the pipeline: no younger
      instruction dispatches until it commits;
    - its memory requests arbitrate for the core's memory ports with
      age-order priority, at most one 64 B line per request.

    Trace-driven approximation: mispredicted branches stall the front end
    from their dispatch until resolution plus the redirect penalty, and
    wrong-path instructions are not executed; consequently speculative
    TCAs are never actually squashed (the paper's modes differ in timing,
    which is what is under study, not recovery cost). *)

type probe = {
  on_cycle :
    cycle:int -> dispatched:int -> issued:int -> executing:int ->
    rob_occupancy:int -> unit;
}

val run : ?probe:probe -> Config.t -> Trace.t -> Sim_stats.t
(** Simulate the full trace to completion. Raises [Invalid_argument] on an
    invalid configuration and [Failure] if the safety cycle cap is
    exceeded (deadlock guard). *)
