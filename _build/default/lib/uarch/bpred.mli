(** Branch direction predictors.

    The simulator is trace-driven, so a mispredicted branch stalls the
    front end from its dispatch until resolution plus the redirect
    penalty (the standard trace-driven approximation: no wrong-path
    instructions are simulated). *)

type kind =
  | Perfect  (** always right — isolates TCA effects from branch noise *)
  | Always_taken
  | Bimodal of int  (** 2-bit counters, [2^bits] entries *)
  | Gshare of int  (** global history XOR pc, 2-bit counters *)
  | Tournament of int
      (** bimodal + gshare with a per-PC chooser (Alpha 21264 style):
          history-correlated branches use gshare, history-agnostic biased
          branches fall back to bimodal *)

type t

val create : kind -> t

val predict : t -> pc:int -> bool
(** Prediction only; does not update state. For [Perfect] the caller
    should treat the prediction as always matching the outcome (the
    pipeline special-cases it). *)

val update : t -> pc:int -> taken:bool -> unit
(** Train counters and (for gshare) shift the actual outcome into the
    global history. *)

val is_perfect : t -> bool
