(** Data TLB: set-associative translation cache with a fixed page-walk
    penalty on a miss — one of the event classes the paper's interval
    framework counts ("branch mispredictions, ICache misses, TLB misses,
    short/long DCache misses"). *)

type config = {
  entries : int;  (** total entries, power of two *)
  assoc : int;
  page_bits : int;  (** log2 of the page size (default 12 = 4 kB) *)
  walk_latency : int;  (** cycles added to a miss *)
}

val config :
  ?assoc:int -> ?page_bits:int -> ?walk_latency:int -> entries:int -> unit ->
  config
(** Defaults: 4-way, 4 kB pages, 30-cycle walk. Validates power-of-two
    geometry. *)

type t

val create : config -> t

val access : t -> int -> int
(** [access t addr] returns the translation latency contribution: 0 on a
    TLB hit, [walk_latency] on a miss (filling the entry). *)

val hits : t -> int
val misses : t -> int
