type config = {
  l1 : Cache.config;
  l2 : Cache.config option;
  mem_latency : int;
}

let config ?l2 ?(mem_latency = 100) ~l1 () =
  if mem_latency < 1 then invalid_arg "Mem_hier.config: mem_latency below 1";
  { l1; l2; mem_latency }

type t = { cfg : config; l1 : Cache.t; l2 : Cache.t option }

let create cfg =
  { cfg; l1 = Cache.create cfg.l1; l2 = Option.map Cache.create cfg.l2 }

let l1_resident t addr = Cache.probe t.l1 addr

let load_latency t addr =
  if Cache.access t.l1 addr then t.cfg.l1.Cache.hit_latency
  else
    match t.l2 with
    | None -> t.cfg.l1.Cache.hit_latency + t.cfg.mem_latency
    | Some l2 ->
        let l2_cfg_latency =
          match t.cfg.l2 with Some c -> c.Cache.hit_latency | None -> assert false
        in
        if Cache.access l2 addr then
          t.cfg.l1.Cache.hit_latency + l2_cfg_latency
        else t.cfg.l1.Cache.hit_latency + l2_cfg_latency + t.cfg.mem_latency

let store t addr =
  let (_ : bool) = Cache.access t.l1 addr in
  match t.l2 with
  | None -> ()
  | Some l2 ->
      let (_ : bool) = Cache.access l2 addr in
      ()

type level_stats = { hits : int; misses : int }

let l1_stats t = { hits = Cache.hits t.l1; misses = Cache.misses t.l1 }

let l2_stats t =
  Option.map (fun c -> { hits = Cache.hits c; misses = Cache.misses c }) t.l2

let reset_stats t =
  Cache.reset_stats t.l1;
  Option.iter Cache.reset_stats t.l2
