(** Two-level cache hierarchy plus a flat-latency main memory. *)

type config = {
  l1 : Cache.config;
  l2 : Cache.config option;
  mem_latency : int;  (** cycles for a DRAM access beyond the last level *)
}

val config :
  ?l2:Cache.config -> ?mem_latency:int -> l1:Cache.config -> unit -> config
(** [mem_latency] defaults to 100 cycles. *)

type t

val create : config -> t

val l1_resident : t -> int -> bool
(** Non-mutating: would a load of this address hit the L1 right now? *)

val load_latency : t -> int -> int
(** Total latency of a read: L1 hit latency on a hit; otherwise L1 + L2
    (+ memory) latencies accumulated. Fills all levels on the way. *)

val store : t -> int -> unit
(** Commit-time store: write-allocate into all levels; the pipeline
    charges no latency (retired stores drain in the background, a
    documented abstraction). *)

type level_stats = { hits : int; misses : int }

val l1_stats : t -> level_stats
val l2_stats : t -> level_stats option
val reset_stats : t -> unit
