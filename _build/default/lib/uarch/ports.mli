(** Cycle-granular bandwidth reservation for shared memory ports.

    Core loads and accelerator line requests all book slots here, which
    models the paper's "all memory requests required by the accelerator
    pass through arbitration for shared access to the core's LSQ and
    memory hierarchy" with age-order priority (older instructions issue,
    and therefore reserve, first). *)

type t

val create : width:int -> horizon:int -> t
(** [width] slots per cycle; reservations may land at most [horizon]
    cycles in the future. *)

val reserve : t -> now:int -> int
(** Book one slot at the earliest cycle [>= now] with spare capacity and
    return that cycle. Raises [Failure] if the horizon is exhausted
    (indicates a configuration error, not a program condition). *)

val advance : t -> now:int -> unit
(** No-op kept for interface stability: cells are re-tagged lazily by
    {!reserve}, so no explicit aging is needed. *)

val width : t -> int
