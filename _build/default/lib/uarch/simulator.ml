type mode_result = {
  coupling : Config.coupling;
  stats : Sim_stats.t;
  speedup : float;
}

type comparison = {
  baseline : Sim_stats.t;
  modes : mode_result list;
}

let measure_ipc cfg trace =
  let stats = Pipeline.run cfg trace in
  stats.Sim_stats.ipc

let compare_modes ~cfg ~baseline ~accelerated =
  let base_stats = Pipeline.run cfg baseline in
  let modes =
    List.map
      (fun coupling ->
        let stats = Pipeline.run (Config.with_coupling cfg coupling) accelerated in
        {
          coupling;
          stats;
          speedup = Sim_stats.speedup ~baseline:base_stats ~accelerated:stats;
        })
      Config.all_couplings
  in
  { baseline = base_stats; modes }

let find_mode_result comparison coupling =
  List.find
    (fun r -> Config.coupling_name r.coupling = Config.coupling_name coupling)
    comparison.modes
