(** μop cost model for software string functions and the string TCA.

    Software: the classic byte loop — load, compare, branch, advance —
    per inspected byte, plus setup. Accelerated: an SSE4.2/STTNI-style
    instruction processing {!bytes_per_cycle} bytes per cycle, reading
    the inspected bytes' cache lines. *)

val setup_uops : int
(** 5: argument moves and pointer setup. *)

val uops_per_byte : int
(** 4 for single-string scans; strcmp inspects two streams so its cost
    uses the byte count from the scan (which already counts both). *)

val software_uops : bytes_inspected:int -> int

val bytes_per_cycle : int
(** 16, one XMM-width comparison per cycle. *)

val accel_compute_latency : bytes_inspected:int -> int

val result_reg : int

val emit_call :
  Tca_uarch.Trace.Builder.t -> addrs:int list -> unit
(** Append the software byte loop touching the scan's addresses. *)

val emit_call_accel :
  Tca_uarch.Trace.Builder.t -> addrs:int list -> bytes_inspected:int -> unit
(** Append the TCA instruction reading the scan's distinct lines. *)

val lines_of_addrs : int list -> int list
