(** A byte arena holding NUL-terminated strings at known addresses — the
    substrate behind the string-function TCA (the "string functions"
    marker of the paper's Fig. 2, after the SSE4.2 STTNI work and the
    server-side PHP acceleration the paper cites).

    The functions below are real byte-level implementations whose
    per-call work (bytes inspected) drives both the software μop cost and
    the accelerated instruction's memory traffic. *)

type t

val create : ?base:int -> capacity:int -> unit -> t
(** [base] defaults to 0x4000_0000. *)

val add_string : t -> string -> int
(** Copy a string (plus NUL) into the arena; returns its address. Raises
    [Failure] when full, [Invalid_argument] if the string contains
    NUL. *)

val address_ok : t -> int -> bool

type scan = {
  result : int;  (** function-specific: length / compare sign / index *)
  bytes_inspected : int;
  addrs : int list;  (** distinct byte addresses read, in order *)
}

val strlen : t -> int -> scan
(** Bytes inspected = length + 1 (the NUL). *)

val strcmp : t -> int -> int -> scan
(** [result] is -1/0/1; inspects both strings up to the first difference
    (two reads per step). *)

val find_char : t -> int -> char -> scan
(** memchr over the string: [result] is the index or -1; inspects up to
    and including the match (or the NUL). *)
