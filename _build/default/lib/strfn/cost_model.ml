open Tca_uarch

let setup_uops = 5
let uops_per_byte = 4

let software_uops ~bytes_inspected =
  setup_uops + (uops_per_byte * max 1 bytes_inspected)

let bytes_per_cycle = 16

let accel_compute_latency ~bytes_inspected =
  max 1 ((bytes_inspected + bytes_per_cycle - 1) / bytes_per_cycle)

(* Register 44/45: below the heap (46+) and codegen windows. *)
let result_reg = 44
let r_ptr = 45

let loop_branch_pc = 0x7000

let emit_call b ~addrs =
  if addrs = [] then invalid_arg "Cost_model.emit_call: empty scan";
  Trace.Builder.add b (Isa.int_alu ~dst:r_ptr ());
  for _ = 1 to setup_uops - 2 do
    Trace.Builder.add b (Isa.int_alu ~src1:r_ptr ~dst:r_ptr ())
  done;
  Trace.Builder.add b (Isa.int_alu ~dst:result_reg ());
  let n = List.length addrs in
  List.iteri
    (fun i addr ->
      Trace.Builder.add b (Isa.load ~base:r_ptr ~dst:result_reg ~addr ());
      Trace.Builder.add b (Isa.int_alu ~src1:result_reg ~dst:result_reg ());
      Trace.Builder.add_at_site b
        (Isa.branch ~pc:loop_branch_pc ~src1:result_reg ~taken:(i < n - 1) ());
      Trace.Builder.add b (Isa.int_alu ~src1:r_ptr ~dst:r_ptr ()))
    addrs

let lines_of_addrs addrs =
  List.sort_uniq compare (List.map (fun a -> a land lnot 63) addrs)

let emit_call_accel b ~addrs ~bytes_inspected =
  if addrs = [] then invalid_arg "Cost_model.emit_call_accel: empty scan";
  Trace.Builder.add b
    (Isa.accel ~dst:result_reg
       ~compute_latency:(accel_compute_latency ~bytes_inspected)
       ~reads:(Array.of_list (lines_of_addrs addrs))
       ~writes:[||] ())
