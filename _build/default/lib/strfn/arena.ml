type t = {
  base : int;
  bytes : Bytes.t;
  mutable used : int;
}

let create ?(base = 0x4000_0000) ~capacity () =
  if capacity <= 0 then invalid_arg "Arena.create: empty capacity";
  { base; bytes = Bytes.make capacity '\000'; used = 0 }

let add_string t s =
  if String.contains s '\000' then
    invalid_arg "Arena.add_string: embedded NUL";
  let n = String.length s + 1 in
  if t.used + n > Bytes.length t.bytes then failwith "Arena.add_string: full";
  let addr = t.base + t.used in
  Bytes.blit_string s 0 t.bytes t.used (String.length s);
  Bytes.set t.bytes (t.used + String.length s) '\000';
  t.used <- t.used + n;
  addr

let address_ok t addr = addr >= t.base && addr < t.base + t.used

let byte t addr =
  if not (address_ok t addr) then invalid_arg "Arena: address out of range";
  Bytes.get t.bytes (addr - t.base)

type scan = {
  result : int;
  bytes_inspected : int;
  addrs : int list;
}

let strlen t addr =
  let rec go i acc =
    let a = addr + i in
    let c = byte t a in
    if c = '\000' then
      { result = i; bytes_inspected = i + 1; addrs = List.rev (a :: acc) }
    else go (i + 1) (a :: acc)
  in
  go 0 []

let strcmp t addr_a addr_b =
  let rec go i acc inspected =
    let aa = addr_a + i and ab = addr_b + i in
    let ca = byte t aa and cb = byte t ab in
    let acc = ab :: aa :: acc and inspected = inspected + 2 in
    if ca <> cb then
      {
        result = (if ca < cb then -1 else 1);
        bytes_inspected = inspected;
        addrs = List.rev acc;
      }
    else if ca = '\000' then
      { result = 0; bytes_inspected = inspected; addrs = List.rev acc }
    else go (i + 1) acc inspected
  in
  go 0 [] 0

let find_char t addr needle =
  if needle = '\000' then invalid_arg "Arena.find_char: NUL needle";
  let rec go i acc =
    let a = addr + i in
    let c = byte t a in
    let acc = a :: acc in
    if c = needle then
      { result = i; bytes_inspected = i + 1; addrs = List.rev acc }
    else if c = '\000' then
      { result = -1; bytes_inspected = i + 1; addrs = List.rev acc }
    else go (i + 1) acc
  in
  go 0 []
