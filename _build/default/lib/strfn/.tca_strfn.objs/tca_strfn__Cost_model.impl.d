lib/strfn/cost_model.ml: Array Isa List Tca_uarch Trace
