lib/strfn/arena.ml: Bytes List String
