lib/strfn/cost_model.mli: Tca_uarch
