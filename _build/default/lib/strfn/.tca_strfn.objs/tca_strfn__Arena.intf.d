lib/strfn/arena.mli:
