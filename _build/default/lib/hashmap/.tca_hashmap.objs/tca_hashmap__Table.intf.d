lib/hashmap/table.mli:
