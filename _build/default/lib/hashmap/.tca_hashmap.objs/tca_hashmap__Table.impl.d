lib/hashmap/table.ml: Array Bytes Char List Printf
