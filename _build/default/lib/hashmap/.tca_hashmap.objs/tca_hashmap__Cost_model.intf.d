lib/hashmap/cost_model.mli: Tca_uarch
