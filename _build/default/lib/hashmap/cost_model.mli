(** μop cost model for software hash-map probes and the hash-map TCA.

    The software sequence is the classic linear-probe loop: hash
    computation, then per inspected bucket a key load, a compare and a
    conditional branch, plus index arithmetic. The accelerated version is
    a single TCA instruction whose memory requests are exactly the cache
    lines of the buckets the real table probed, with a short compute
    latency (the hash unit plus comparators). *)

val hash_uops : int
(** μops to compute the hash and initial index (6). *)

val uops_per_probe : int
(** μops per inspected bucket in software (4: load key, compare, branch,
    advance). *)

val tail_uops : int
(** μops after the loop: load the value, produce the result (3). *)

val software_uops : probes:int -> int
(** Total software μops for an operation with the given probe count. *)

val accel_compute_latency : int
(** 2 cycles: hash plus parallel compare. *)

val result_reg : int
(** Register receiving the looked-up value (software and TCA agree). *)

val emit_find :
  Tca_uarch.Trace.Builder.t ->
  bucket_addrs:int list ->
  unit
(** Append the software probe sequence touching exactly the given bucket
    addresses (from {!Table.probe_result}). *)

val emit_find_accel :
  Tca_uarch.Trace.Builder.t ->
  bucket_addrs:int list ->
  unit
(** Append the single TCA instruction reading the probed buckets'
    lines. *)
