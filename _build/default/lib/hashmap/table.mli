(** An open-addressing (linear-probing) hash table over a flat arena —
    the substrate behind the hash-map TCA case study (one of the paper's
    Fig. 2 fine-grained reference accelerators, after the PHP
    server-side acceleration work the paper cites).

    Layout matters here: bucket [i] lives at [base + 16 * i] (8-byte key,
    8-byte value), so the trace generators can emit the exact cache-line
    traffic a software probe sequence — or the accelerated probe
    instruction — would produce. *)

type t

val create : ?base:int -> capacity_pow2:int -> unit -> t
(** [capacity_pow2] is the log2 of the bucket count (4..24). [base]
    defaults to 0x2000_0000 (clear of the other workloads' regions). *)

val capacity : t -> int
val length : t -> int
val load_factor : t -> float

type probe_result = {
  found : bool;
  probes : int;  (** buckets inspected, >= 1 *)
  bucket_addrs : int list;  (** byte address of each inspected bucket *)
  value : int option;
}

val find : t -> int -> probe_result
(** Lookup with full probe trace. Keys are non-negative; raises
    [Invalid_argument] otherwise. *)

val insert : t -> int -> int -> probe_result
(** Insert or update; raises [Failure] when the table is full. The probe
    trace covers the buckets inspected to find the slot. *)

val remove : t -> int -> probe_result
(** Tombstone deletion; [found = false] when absent. *)

val mean_probes : t -> float
(** Average probes per operation since creation (cost-model
    calibration). *)

val check_invariants : t -> (unit, string) result
(** Every stored key is findable; length matches occupied slots. *)
