(* Slot states: we keep keys/values in int arrays plus a state byte per
   bucket (0 empty, 1 occupied, 2 tombstone). *)

type t = {
  base : int;
  mask : int;
  keys : int array;
  values : int array;
  state : Bytes.t;
  mutable len : int;
  mutable total_probes : int;
  mutable total_ops : int;
}

let bucket_bytes = 16

let create ?(base = 0x2000_0000) ~capacity_pow2 () =
  if capacity_pow2 < 4 || capacity_pow2 > 24 then
    invalid_arg "Table.create: capacity_pow2 out of [4, 24]";
  let n = 1 lsl capacity_pow2 in
  {
    base;
    mask = n - 1;
    keys = Array.make n 0;
    values = Array.make n 0;
    state = Bytes.make n '\000';
    len = 0;
    total_probes = 0;
    total_ops = 0;
  }

let capacity t = t.mask + 1
let length t = t.len
let load_factor t = float_of_int t.len /. float_of_int (capacity t)

type probe_result = {
  found : bool;
  probes : int;
  bucket_addrs : int list;
  value : int option;
}

let hash key =
  (* splitmix-style scramble, as a hardware hash unit would compute. *)
  let h = key * 0x9E3779B9 in
  let h = h lxor (h lsr 16) in
  h land max_int

let check_key key = if key < 0 then invalid_arg "Table: negative key"

let bucket_addr t idx = t.base + (bucket_bytes * idx)

let slot_state t idx = Bytes.get t.state idx |> Char.code

let record t probes =
  t.total_probes <- t.total_probes + probes;
  t.total_ops <- t.total_ops + 1

(* Walk the probe sequence until [stop] says where to end. Returns the
   final index, the probe count and the visited bucket addresses. *)
let probe_seq t key stop =
  let start = hash key land t.mask in
  let rec go idx probes addrs =
    let addrs = bucket_addr t idx :: addrs in
    if stop idx then (idx, probes, List.rev addrs)
    else if probes > t.mask then
      failwith "Table: probe sequence exhausted (table full?)"
    else go ((idx + 1) land t.mask) (probes + 1) addrs
  in
  go start 1 []

let find t key =
  check_key key;
  let idx, probes, addrs =
    probe_seq t key (fun idx ->
        match slot_state t idx with
        | 0 -> true (* empty: key absent *)
        | 1 -> t.keys.(idx) = key
        | _ -> false (* tombstone: keep probing *))
  in
  record t probes;
  let found = slot_state t idx = 1 && t.keys.(idx) = key in
  {
    found;
    probes;
    bucket_addrs = addrs;
    value = (if found then Some t.values.(idx) else None);
  }

let insert t key value =
  check_key key;
  if t.len > capacity t * 7 / 8 then failwith "Table.insert: table full";
  (* Probe until the key or a truly-empty slot: an existing key may live
     beyond a tombstone, and inserting at the tombstone first would
     create a duplicate. The first tombstone seen is remembered as the
     placement slot for a fresh key. *)
  let first_tombstone = ref (-1) in
  let idx, probes, addrs =
    probe_seq t key (fun idx ->
        match slot_state t idx with
        | 0 -> true
        | 1 -> t.keys.(idx) = key
        | _ ->
            if !first_tombstone < 0 then first_tombstone := idx;
            false)
  in
  record t probes;
  let existed = slot_state t idx = 1 && t.keys.(idx) = key in
  let slot =
    if existed then idx
    else if !first_tombstone >= 0 then !first_tombstone
    else idx
  in
  if not existed then t.len <- t.len + 1;
  Bytes.set t.state slot '\001';
  t.keys.(slot) <- key;
  t.values.(slot) <- value;
  { found = existed; probes; bucket_addrs = addrs; value = Some value }

let remove t key =
  check_key key;
  let idx, probes, addrs =
    probe_seq t key (fun idx ->
        match slot_state t idx with
        | 0 -> true
        | 1 -> t.keys.(idx) = key
        | _ -> false)
  in
  record t probes;
  let found = slot_state t idx = 1 && t.keys.(idx) = key in
  if found then begin
    Bytes.set t.state idx '\002';
    t.len <- t.len - 1
  end;
  { found; probes; bucket_addrs = addrs; value = None }

let mean_probes t =
  if t.total_ops = 0 then 0.0
  else float_of_int t.total_probes /. float_of_int t.total_ops

let check_invariants t =
  let occupied = ref 0 in
  let err = ref None in
  for idx = 0 to t.mask do
    if slot_state t idx = 1 then begin
      incr occupied;
      let r = find t t.keys.(idx) in
      if not r.found then
        if !err = None then
          err := Some (Printf.sprintf "stored key %d not findable" t.keys.(idx))
    end
  done;
  if !err = None && !occupied <> t.len then
    err := Some (Printf.sprintf "length %d but %d occupied slots" t.len !occupied);
  match !err with None -> Ok () | Some m -> Error m
