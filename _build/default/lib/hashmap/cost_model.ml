open Tca_uarch

let hash_uops = 6
let uops_per_probe = 4
let tail_uops = 3
let software_uops ~probes = hash_uops + (uops_per_probe * probes) + tail_uops
let accel_compute_latency = 2

(* Registers 56..59; clear of the app window, the heap sequences and the
   dgemm kernel. *)
let result_reg = 56
let r_idx = 57
let r_key = 58

(* The probe loop branch is one static site (the loop back edge),
   biased taken for long probe chains and not-taken for 1-probe hits —
   predictors see realistic behaviour. *)
let probe_branch_pc = 0x6000

let emit_find b ~bucket_addrs =
  if bucket_addrs = [] then invalid_arg "Cost_model.emit_find: no buckets";
  (* Hash computation: dependent scramble chain. *)
  Trace.Builder.add b (Isa.int_alu ~dst:r_idx ());
  for _ = 1 to hash_uops - 1 do
    Trace.Builder.add b (Isa.int_alu ~src1:r_idx ~dst:r_idx ())
  done;
  let n = List.length bucket_addrs in
  List.iteri
    (fun i addr ->
      (* Load the bucket key (address depends on the index register),
         compare, loop branch (taken while probing continues), advance. *)
      Trace.Builder.add b (Isa.load ~base:r_idx ~dst:r_key ~addr ());
      Trace.Builder.add b (Isa.int_alu ~src1:r_key ~src2:r_idx ~dst:r_key ());
      Trace.Builder.add_at_site b
        (Isa.branch ~pc:probe_branch_pc ~src1:r_key ~taken:(i < n - 1) ());
      Trace.Builder.add b (Isa.int_alu ~src1:r_idx ~dst:r_idx ()))
    bucket_addrs;
  (* Tail: load the value from the final bucket, produce the result. *)
  let last = List.nth bucket_addrs (n - 1) in
  Trace.Builder.add b (Isa.load ~base:r_idx ~dst:result_reg ~addr:(last + 8) ());
  Trace.Builder.add b (Isa.int_alu ~src1:result_reg ~dst:result_reg ());
  Trace.Builder.add b (Isa.int_alu ~src1:result_reg ~dst:result_reg ())

let line_of addr = addr land lnot 63

let emit_find_accel b ~bucket_addrs =
  if bucket_addrs = [] then invalid_arg "Cost_model.emit_find_accel: no buckets";
  let lines = List.sort_uniq compare (List.map line_of bucket_addrs) in
  Trace.Builder.add b
    (Isa.accel ~dst:result_reg ~compute_latency:accel_compute_latency
       ~reads:(Array.of_list lines) ~writes:[||] ())
