(** String-function microbenchmark: a mix of strlen / strcmp / find_char
    calls over a real string arena (log-normal-ish length distribution),
    with per-call byte counts from the actual string data. Granularity
    lands in the low-hundreds-of-μops band of the paper's Fig. 2
    "string functions" marker. *)

type config = {
  n_calls : int;
  n_strings : int;
  min_len : int;
  max_len : int;
  app_instrs_per_call : int;
  app : Codegen.config;
  seed : int;
}

val config :
  ?n_strings:int -> ?min_len:int -> ?max_len:int -> ?app:Codegen.config ->
  ?seed:int -> n_calls:int -> app_instrs_per_call:int -> unit -> config
(** Defaults: 512 strings of 8..120 characters. *)

val generate : config -> Meta.pair * float
(** The pair plus the mean bytes inspected per call. *)
