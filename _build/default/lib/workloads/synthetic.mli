(** The adaptive synthetic microbenchmark (paper Sections IV and V-A).

    A program of [n_units] equal units of application code; [n_chunks]
    randomly chosen units are acceleratable. The baseline runs them as
    ordinary code; the accelerated variant replaces each chosen unit with
    a single TCA instruction. Increasing [n_chunks] raises both the
    invocation frequency and the acceleratable fraction together, exactly
    as the paper's sweep does, and random placement deliberately violates
    the model's uniform-distribution assumption. *)

type config = {
  n_units : int;
  unit_len : int;  (** instructions per unit *)
  n_chunks : int;  (** acceleratable units, [<= n_units] *)
  accel_latency : int;  (** TCA execution cycles per invocation *)
  app : Codegen.config;
  seed : int;
}

val config :
  ?unit_len:int ->
  ?app:Codegen.config ->
  ?seed:int ->
  n_units:int ->
  n_chunks:int ->
  accel_latency:int ->
  unit ->
  config
(** [unit_len] defaults to 50, [app] to
    {!Codegen.model_friendly_config}, [seed] to 1. Validates
    [0 <= n_chunks <= n_units], positive lengths. *)

val latency_for_factor :
  unit_len:int -> ipc:float -> accel_factor:float -> int
(** The TCA latency equivalent to running a unit at [accel_factor * ipc]:
    [round (unit_len / (accel_factor * ipc))], at least 1 — how the
    experiments translate a desired [A] into an instruction latency. *)

val generate : config -> Meta.pair
