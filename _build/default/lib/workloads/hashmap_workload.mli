(** Hash-map lookup microbenchmark: application code interleaved with
    lookups against a real open-addressing table (pre-populated to a
    configurable load factor). The baseline expands each lookup into the
    software probe loop touching the exact buckets the table probed; the
    accelerated variant issues one TCA instruction reading the same
    cache lines. Probe counts — and therefore both the software cost and
    the TCA's memory traffic — come from the genuine table state, not a
    constant. *)

type config = {
  n_lookups : int;
  app_instrs_per_lookup : int;
  capacity_pow2 : int;  (** table size: 2^k buckets *)
  load_factor : float;  (** fill level before the benchmark, in (0, 0.85] *)
  hit_fraction : float;  (** fraction of lookups finding their key *)
  app : Codegen.config;
  seed : int;
}

val config :
  ?capacity_pow2:int -> ?load_factor:float -> ?hit_fraction:float ->
  ?app:Codegen.config -> ?seed:int ->
  n_lookups:int -> app_instrs_per_lookup:int -> unit -> config
(** Defaults: 2^14 buckets, load 0.6, 90% hits. *)

val generate : config -> Meta.pair * float
(** The pair plus the measured mean probes per lookup (granularity
    calibration: mean software μops = [Tca_hashmap.Cost_model.software_uops]
    at that probe count). [meta.avg_reads_per_invocation] reflects the
    real per-lookup line traffic. *)
