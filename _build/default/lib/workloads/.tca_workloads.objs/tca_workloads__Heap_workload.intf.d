lib/workloads/heap_workload.mli: Codegen Meta
