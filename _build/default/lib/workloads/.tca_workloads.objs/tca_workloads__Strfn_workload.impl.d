lib/workloads/strfn_workload.ml: Arena Array Codegen Cost_model Float Isa List Meta String Tca_strfn Tca_uarch Tca_util Trace
