lib/workloads/codegen.mli: Tca_uarch Tca_util
