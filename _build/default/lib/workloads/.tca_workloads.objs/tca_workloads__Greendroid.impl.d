lib/workloads/greendroid.ml: Array List Tca_heap Tca_util
