lib/workloads/codegen.ml: Array Isa Tca_uarch Tca_util Trace
