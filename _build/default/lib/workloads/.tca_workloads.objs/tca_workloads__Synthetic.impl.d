lib/workloads/synthetic.ml: Array Codegen Float Fun Isa Meta Tca_uarch Tca_util Trace
