lib/workloads/meta.mli: Format Tca_uarch
