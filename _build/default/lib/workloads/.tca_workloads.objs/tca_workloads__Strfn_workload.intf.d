lib/workloads/strfn_workload.mli: Codegen Meta
