lib/workloads/synthetic.mli: Codegen Meta
