lib/workloads/dgemm_workload.ml: Array Isa List Matrix Meta Mma Printf Tca_dgemm Tca_uarch Trace
