lib/workloads/regex_workload.mli: Codegen Meta
