lib/workloads/hashmap_workload.mli: Codegen Meta
