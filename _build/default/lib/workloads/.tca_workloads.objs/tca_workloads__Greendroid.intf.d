lib/workloads/greendroid.mli:
