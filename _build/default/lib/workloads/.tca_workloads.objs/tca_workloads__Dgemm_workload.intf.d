lib/workloads/dgemm_workload.mli: Meta Tca_uarch
