lib/workloads/meta.ml: Float Format Tca_uarch
