lib/workloads/regex_workload.ml: Array Bytes Codegen Cost_model Engine Isa List Meta Pattern Printf String Tca_regex Tca_uarch Tca_util Trace
