lib/workloads/heap_workload.ml: Array Codegen Cost_model Isa Meta Option Size_class Tca_heap Tca_uarch Tca_util Tcmalloc Trace
