lib/workloads/hashmap_workload.ml: Array Codegen Cost_model Float Isa List Meta Table Tca_hashmap Tca_uarch Tca_util Trace
