(** Shared description of a baseline/accelerated workload pair: the
    quantities the analytical model takes as inputs ([a], [v], accelerator
    timing) plus bookkeeping for the experiment drivers. *)

type t = {
  name : string;
  baseline_instrs : int;
  accelerated_instrs : int;  (** including the TCA instructions *)
  invocations : int;
  acceleratable_instrs : int;
      (** baseline instructions replaced by TCA invocations *)
  v : float;  (** invocations / baseline instructions *)
  a : float;  (** acceleratable / baseline instructions *)
  avg_reads_per_invocation : float;  (** TCA cache-line read requests *)
  avg_writes_per_invocation : float;
  avg_fresh_lines_per_invocation : float;
      (** read lines expected NOT to be L1-resident (first touch within
          the blocking reuse pattern) — drives the miss term of the
          latency estimate *)
  compute_latency : int;  (** TCA compute cycles per invocation *)
}

type pair = {
  baseline : Tca_uarch.Trace.t;
  accelerated : Tca_uarch.Trace.t;
  meta : t;
}

val make :
  name:string ->
  baseline:Tca_uarch.Trace.t ->
  accelerated:Tca_uarch.Trace.t ->
  invocations:int ->
  acceleratable_instrs:int ->
  ?avg_reads:float ->
  ?avg_writes:float ->
  ?avg_fresh_lines:float ->
  compute_latency:int ->
  unit ->
  pair
(** Derives [v], [a] and the instruction counts; validates
    [0 <= a <= 1]. *)

val accel_latency_estimate :
  t -> l1_hit_latency:int -> ?miss_extra_latency:int -> mem_ports:int ->
  unit -> float
(** First-order architect's estimate of one TCA invocation's execution
    time: L1 hit latency for the first line, one line per port per cycle
    thereafter, a next-level penalty when fresh (non-resident) lines are
    expected ([miss_extra_latency], e.g. the L2 hit latency; overlapping
    misses charge one depth), then compute, then write injection — the
    "explicitly provided latency" fed to the model for memory-traffic
    TCAs. *)

val pp : Format.formatter -> t -> unit
