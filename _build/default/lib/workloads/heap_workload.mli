(** The heap-manager microbenchmark (paper Sections IV and V-B).

    Application code interleaved with malloc/free calls over the four
    TCMalloc size classes, driven by a real {!Tca_heap.Tcmalloc} instance
    so every call operates on genuine allocator state. Free lists are
    pre-warmed so malloc always hits a class list — the accelerator's
    common case, as the paper assumes. The baseline expands each call to
    the calibrated 69/37-μop software sequence; the accelerated variant
    emits one single-cycle TCA instruction instead. Trailing application
    code consumes the malloc'd pointer, preserving the
    pointer-dependency the paper discusses. *)

type config = {
  n_calls : int;  (** total malloc + free call sites *)
  app_instrs_per_call : int;  (** mean application μops between calls *)
  app : Codegen.config;
  seed : int;
}

val config :
  ?app:Codegen.config -> ?seed:int ->
  n_calls:int -> app_instrs_per_call:int -> unit -> config
(** Validates positive counts. [seed] defaults to 1. *)

val generate : config -> Meta.pair
(** The pair plus meta; [meta.compute_latency] is the 1-cycle heap TCA. *)

val expected_call_fraction : config -> float
(** Rough a-priori acceleratable fraction, for sizing sweeps:
    [avg_call_uops / (avg_call_uops + app_instrs_per_call)]. *)
