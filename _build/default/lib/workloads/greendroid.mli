(** GreenDroid-style fine-grained accelerated functions (paper
    Section VI).

    GreenDroid maps hot functions of mobile SoC workloads onto
    energy-motivated conservation cores with an assumed acceleration
    factor of 1.5x. The paper uses the nine functions of the GreenDroid
    study, with straight-through execution assumed for the
    highest-invocation-frequency placement. The original per-function
    statistics are not reprinted in the paper, so the instruction counts
    below are representative values in the "hundreds of instructions"
    range the paper describes (documented substitution; only the
    (granularity, A) pairs enter the model). *)

type fn = {
  name : string;
  static_instrs : int;  (** instructions per straight-through invocation *)
}

val functions : fn list
(** Nine functions. *)

val accel_factor : float
(** 1.5, "since GreenDroid is motivated by energy efficiency rather than
    performance". *)

val granularities : unit -> float array
(** Static instruction counts of the nine functions, as granularities for
    placement on the Fig. 7 maps. *)

val mean_granularity : unit -> float

val heap_manager_granularity : float
(** The heap TCA's granularity for the Fig. 7 overlay: the average
    software malloc/free cost it replaces ((69 + 37) / 2 = 53 μops). *)
