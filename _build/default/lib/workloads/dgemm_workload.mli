(** Blocked dense matrix-multiplication traces (paper Sections IV and
    V-C).

    The software baseline computes an [n x n] double-precision product
    through [block x block] (default 32x32) sub-matrix partial products —
    the blocking that keeps two input blocks and one output block resident
    in a 32 kB L1. The accelerated variants replace the element-wise
    inner kernel with [dim x dim] multiply-accumulate TCA invocations
    (dim in 2, 4, 8) whose memory requests name the exact cache lines of
    the real row-major layout, issued through the core's shared memory
    ports.

    The paper simulates n = 512; that is supported but slow in a
    cycle-level simulator, so experiments default to smaller n with
    identical blocking (same L1-resident working set and per-block
    instruction mix — the quantities the model consumes). *)

type config = {
  n : int;
  block : int;
  seed : int;
  a_base : int;
  b_base : int;
  c_base : int;
}

val config : ?block:int -> ?seed:int -> n:int -> unit -> config
(** [block] defaults to 32 and must divide [n]; matrices are laid out
    contiguously from 0x0200_0000. *)

val baseline : config -> Tca_uarch.Trace.t
(** Element-wise blocked kernel. *)

val pair : config -> dim:int -> Meta.pair
(** Baseline plus the [dim x dim]-MMA-accelerated variant. [dim] must be
    one of {!Tca_dgemm.Mma.supported_dims} and divide [block]. *)

val kernel_uops_per_element : config -> int
(** Baseline inner-kernel μops per output element per k-block — used by
    size estimations in the experiments. *)
