(** Regular-expression scanning microbenchmark: a log-scanning loop that
    searches each fixed-size text record for a pattern, using the real
    NFA/DFA engine to determine how many characters each search inspects.
    The baseline expands every search into the DFA software loop touching
    the actual text bytes; the accelerated variant issues one TCA
    instruction per record reading the scanned lines (a hardware DFA at
    16 bytes/cycle). Granularity lands in the ~10^3-μop band of the
    paper's Fig. 2 "regular expression" marker. *)

type config = {
  n_records : int;
  record_len : int;  (** characters per record *)
  pattern : string;
  match_fraction : float;  (** records with a planted match *)
  app_instrs_per_record : int;
  app : Codegen.config;
  seed : int;
}

val config :
  ?record_len:int -> ?pattern:string -> ?match_fraction:float ->
  ?app:Codegen.config -> ?seed:int ->
  n_records:int -> app_instrs_per_record:int -> unit -> config
(** Defaults: 256-char records, pattern ["err(or)?[0-9]+"], 30% planted
    matches. Raises [Invalid_argument] on a malformed pattern. *)

val generate : config -> Meta.pair * float
(** The pair plus the mean characters scanned per search. *)
