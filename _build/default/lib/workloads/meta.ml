type t = {
  name : string;
  baseline_instrs : int;
  accelerated_instrs : int;
  invocations : int;
  acceleratable_instrs : int;
  v : float;
  a : float;
  avg_reads_per_invocation : float;
  avg_writes_per_invocation : float;
  avg_fresh_lines_per_invocation : float;
  compute_latency : int;
}

type pair = {
  baseline : Tca_uarch.Trace.t;
  accelerated : Tca_uarch.Trace.t;
  meta : t;
}

let make ~name ~baseline ~accelerated ~invocations ~acceleratable_instrs
    ?(avg_reads = 0.0) ?(avg_writes = 0.0) ?(avg_fresh_lines = 0.0)
    ~compute_latency () =
  let baseline_instrs = Tca_uarch.Trace.length baseline in
  if baseline_instrs = 0 then invalid_arg "Meta.make: empty baseline";
  let nb = float_of_int baseline_instrs in
  let a = float_of_int acceleratable_instrs /. nb in
  if a < 0.0 || a > 1.0 then invalid_arg "Meta.make: acceleratable fraction out of range";
  {
    baseline;
    accelerated;
    meta =
      {
        name;
        baseline_instrs;
        accelerated_instrs = Tca_uarch.Trace.length accelerated;
        invocations;
        acceleratable_instrs;
        v = float_of_int invocations /. nb;
        a;
        avg_reads_per_invocation = avg_reads;
        avg_writes_per_invocation = avg_writes;
        avg_fresh_lines_per_invocation = avg_fresh_lines;
        compute_latency;
      };
  }

let accel_latency_estimate t ~l1_hit_latency ?(miss_extra_latency = 0)
    ~mem_ports () =
  let ports = float_of_int mem_ports in
  let read_time =
    if t.avg_reads_per_invocation <= 0.0 then 0.0
    else
      let miss_depth =
        (* Overlapping non-blocking misses cost one extra depth when any
           fresh line is expected. *)
        Float.min 1.0 t.avg_fresh_lines_per_invocation
        *. float_of_int miss_extra_latency
      in
      float_of_int l1_hit_latency
      +. ((t.avg_reads_per_invocation -. 1.0) /. ports)
      +. miss_depth
  in
  let write_time = t.avg_writes_per_invocation /. ports in
  read_time +. float_of_int t.compute_latency +. write_time

let pp fmt t =
  Format.fprintf fmt
    "%s: baseline=%d accel=%d invocations=%d v=%.6f a=%.4f reads=%.1f \
     writes=%.1f compute=%d"
    t.name t.baseline_instrs t.accelerated_instrs t.invocations t.v t.a
    t.avg_reads_per_invocation t.avg_writes_per_invocation t.compute_latency
