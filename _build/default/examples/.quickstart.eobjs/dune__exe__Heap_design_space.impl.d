examples/heap_design_space.ml: Equations Greendroid Heap_workload List Mode Params Partial Presets Printf Tca_experiments Tca_heap Tca_model Tca_util Tca_workloads
