examples/greendroid_study.mli:
