examples/early_design.mli:
