examples/quickstart.mli:
