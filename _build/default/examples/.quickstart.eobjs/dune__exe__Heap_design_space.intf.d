examples/heap_design_space.mli:
