examples/dgemm_modes.ml: Dgemm_workload Format List Matrix Meta Mma Printf Tca_dgemm Tca_experiments Tca_uarch Tca_util Tca_workloads
