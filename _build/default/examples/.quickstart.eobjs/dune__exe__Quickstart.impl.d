examples/quickstart.ml: Concurrency Equations Format List Mode Params Presets Tca_model
