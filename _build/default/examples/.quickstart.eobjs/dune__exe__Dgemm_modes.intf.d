examples/dgemm_modes.mli:
