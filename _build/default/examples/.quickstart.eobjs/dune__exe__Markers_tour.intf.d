examples/markers_tour.mli:
