examples/greendroid_study.ml: Equations Greendroid List Mode Params Presets Printf String Tca_model Tca_util Tca_workloads
