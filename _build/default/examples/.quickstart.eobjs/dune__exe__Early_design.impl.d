examples/early_design.ml: Energy Equations Hw_cost List Mode Params Printf Sensitivity Tca_interval Tca_model Tca_util
