#!/usr/bin/env bash
# Golden-drift guard for CI: regenerate test/golden/*.golden with the
# current tree's simulator and fail if any pinned byte moved or a pin is
# missing from git. The golden test in test/test_uarch.ml already fails
# when the *simulator* drifts away from the committed pins; this script
# closes the converse hole — a semantic change whose author reran
# gen_golden but forgot to commit the result (or hand-edited a pin)
# would otherwise land with stale goldens and a green test.
#
# Run from the repository root:
#
#   scripts/check_golden_drift.sh
#
# Exit codes: 0 pins match the tree, 1 drift detected (the diff is
# printed), 2 environment problems (not a git checkout, build failure).
set -eu

cd "$(dirname "$0")/.."

if ! git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
  echo "check_golden_drift: not inside a git work tree" >&2
  exit 2
fi

if ! git diff --quiet -- test/golden || ! git diff --cached --quiet -- test/golden; then
  echo "check_golden_drift: test/golden already has uncommitted changes; commit or restore them first" >&2
  git status --short -- test/golden >&2
  exit 2
fi

if ! dune build test/gen_golden.exe; then
  echo "check_golden_drift: failed to build test/gen_golden.exe" >&2
  exit 2
fi

dune exec test/gen_golden.exe -- test/golden

untracked=$(git ls-files --others --exclude-standard -- test/golden)
if [ -n "$untracked" ]; then
  echo "check_golden_drift: regeneration produced pins that are not committed:" >&2
  echo "$untracked" >&2
  exit 1
fi

if ! git diff --exit-code -- test/golden; then
  echo "check_golden_drift: committed golden pins are stale — rerun 'dune exec test/gen_golden.exe -- test/golden' and commit the result together with the semantic change that moved them" >&2
  exit 1
fi

echo "check_golden_drift: OK ($(git ls-files -- test/golden | wc -l | tr -d ' ') pins match the tree)"
