#!/usr/bin/env bash
# Docs-drift guard for code identifiers: every backtick-quoted
# `Equations.*`, `Params.*`, `Tca_unit.*` or `Sim_stats.*` value/field
# mentioned in MODEL.md / DESIGN.md must exist in the corresponding
# interface (.mli) — so a rename in lib/ can't leave the derivation
# docs pointing at symbols that no longer exist.
#
# This is a lexical check against the .mli files (val names, record
# fields, constructors), deliberately cheap: it proves the documented
# symbol surface exists without compiling anything. Run from the
# repository root:
#
#   scripts/check_docs_symbols.sh
set -u

DOCS=${DOCS:-"MODEL.md DESIGN.md"}

# module prefix -> interface file that must declare the symbol
iface_of() {
  case $1 in
    Equations) echo lib/core/equations.mli ;;
    Params) echo lib/core/params.mli ;;
    Tca_unit) echo lib/uarch/tca_unit.mli ;;
    Sim_stats) echo lib/uarch/sim_stats.mli ;;
    *) echo "" ;;
  esac
}

fail=0
checked=0

# Backticked single identifiers like `Params.config_cost` or
# `Equations.config_break_even`. Longer backtick spans (expressions,
# qualified sub-fields, code fragments) are skipped: only the exact
# two-component form is a checkable symbol reference.
refs=$(grep -ohE '`(Equations|Params|Tca_unit|Sim_stats)\.[a-z_][A-Za-z0-9_]*`' $DOCS \
  | tr -d '`' | sort -u)

if [ -z "$refs" ]; then
  echo "check_docs_symbols: no symbol references found in $DOCS (extractor broken?)" >&2
  exit 2
fi

for ref in $refs; do
  module=${ref%%.*}
  symbol=${ref#*.}
  iface=$(iface_of "$module")
  if [ -z "$iface" ] || [ ! -f "$iface" ]; then
    echo "FAIL: no interface mapped for $ref" >&2
    fail=1
    continue
  fi
  checked=$((checked + 1))
  # Accept any of: a val declaration, a record field, or use as a
  # field/val name anywhere in the interface (covers inline records).
  if ! grep -qE "(^|[^A-Za-z0-9_'])${symbol}([^A-Za-z0-9_']|$)" "$iface"; then
    echo "FAIL: $ref documented but '$symbol' does not appear in $iface" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs_symbols: documentation drifted from the interfaces (see above)" >&2
  exit 1
fi
echo "check_docs_symbols: $checked documented symbol(s) validated against the .mli files"
