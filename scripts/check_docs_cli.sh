#!/usr/bin/env bash
# Docs-drift guard: every `tca ...` command shown in a fenced code block
# of README.md / EXPERIMENTS.md must name a real subcommand, and every
# long option it shows must be accepted by that subcommand's --help.
#
# This is a --help-level check: it proves the documented surface exists
# (subcommand spelled right, flags not renamed/removed) without running
# the experiments themselves. Run from the repository root:
#
#   dune build bin/tca.exe && scripts/check_docs_cli.sh
#
# TCA overrides the binary under test (default _build/default/bin/tca.exe).
set -u

TCA=${TCA:-_build/default/bin/tca.exe}
DOCS=${DOCS:-"README.md EXPERIMENTS.md"}

if [ ! -x "$TCA" ]; then
  echo "check_docs_cli: $TCA not built (dune build bin/tca.exe first)" >&2
  exit 2
fi

fail=0
checked=0

# Lines inside ``` fences that invoke tca, directly or via dune exec;
# normalized to start with "tca ".
extract_commands() {
  awk '
    /^```/ { fence = !fence; next }
    !fence { next }
    { line = $0 }
    line ~ /^(\$ )?dune exec bin\/tca\.exe --( |$)/ {
      sub(/^(\$ )?dune exec bin\/tca\.exe --[ ]?/, "tca ", line); print line; next
    }
    line ~ /^(\$ )?tca([ ]|$)/ {
      sub(/^\$ /, "", line); print line
    }
  ' "$@"
}

while IFS= read -r line; do
  # Drop trailing inline comments and the leading "tca".
  cmd=${line%%#*}
  set -- $cmd
  shift # "tca"
  if [ $# -eq 0 ]; then
    echo "FAIL: bare 'tca' with no subcommand documented" >&2
    fail=1
    continue
  fi
  sub=$1
  checked=$((checked + 1))
  if ! help_out=$("$TCA" "$sub" --help=plain 2>&1); then
    echo "FAIL: documented subcommand does not exist: tca $sub" >&2
    echo "      (from: $line)" >&2
    fail=1
    continue
  fi
  # Every long option the docs show must appear in the help text.
  for tok in "$@"; do
    case $tok in
      --*=*) flag=${tok%%=*} ;;
      --*) flag=$tok ;;
      *) continue ;;
    esac
    if ! printf '%s' "$help_out" | grep -q -- "$flag"; then
      echo "FAIL: tca $sub --help does not mention documented option $flag" >&2
      echo "      (from: $line)" >&2
      fail=1
    fi
  done
done <<EOF
$(extract_commands $DOCS)
EOF

if [ "$checked" -eq 0 ]; then
  echo "check_docs_cli: no fenced tca commands found in $DOCS (extractor broken?)" >&2
  exit 2
fi

if [ "$fail" -ne 0 ]; then
  echo "check_docs_cli: documentation drifted from the CLI (see above)" >&2
  exit 1
fi
echo "check_docs_cli: $checked documented command(s) validated against $TCA"
